// Tests for the schedule explorer: trace serialization, record/replay
// determinism, delta-debugging shrinking, and the sweep driver. The
// "failing protocol" throughout is a healthy MinBFT/PBFT cluster checked
// against a deliberately broken invariant (bounded-executions), which
// gives a guaranteed, deterministic violation to exercise the machinery.
#include <gtest/gtest.h>

#include "explore/explorer.h"
#include "explore/record_replay.h"
#include "explore/scenario.h"
#include "explore/shrink.h"

namespace unidir::explore {
namespace {

TEST(ScheduleTrace, DecisionSerdeRoundTrips) {
  ScheduleTrace t;
  t.decisions.push_back(
      {DecisionKind::Send, {1, 2, 7, 0xDEADBEEFULL}, false, 13, 1});
  t.decisions.push_back(
      {DecisionKind::Copies, {0, 4, 52, 42}, false, 0, 3});
  t.decisions.push_back(
      {DecisionKind::Release, {3, 1, 9, 99}, true, 0, 1});
  const ScheduleTrace back = ScheduleTrace::from_hex(t.to_hex());
  EXPECT_EQ(back, t);
  EXPECT_NE(t.summary().find("3 decisions"), std::string::npos);
}

TEST(ScheduleTrace, DecodeRejectsBadKind) {
  serde::Writer w;
  w.uvarint(1);  // one decision
  w.u8(9);       // invalid DecisionKind
  EXPECT_THROW(serde::decode<ScheduleTrace>(w.buffer()),
               serde::DecodeError);
}

TEST(ScenarioSpec, SerdeRoundTripsThroughHex) {
  const ScenarioSpec spec = ScenarioSpec::materialize(
      ProtocolKind::Pbft, AdversaryKind::Duplicating, 11);
  const ScenarioSpec back = ScenarioSpec::from_hex(spec.to_hex());
  EXPECT_EQ(back, spec);
  EXPECT_NE(spec.describe().find("pbft"), std::string::npos);
  EXPECT_NE(spec.describe().find("duplicating"), std::string::npos);
}

TEST(ScenarioSpec, MaterializeIsDeterministicPerSeed) {
  const auto a = ScenarioSpec::materialize(ProtocolKind::MinBft,
                                           AdversaryKind::RandomDelay, 5);
  const auto b = ScenarioSpec::materialize(ProtocolKind::MinBft,
                                           AdversaryKind::RandomDelay, 5);
  const auto c = ScenarioSpec::materialize(ProtocolKind::MinBft,
                                           AdversaryKind::RandomDelay, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ReplayAdversary, FallsBackWhenTraceHasNoDecision) {
  ScheduleTrace t;
  sim::Envelope known;
  known.from = 0;
  known.to = 1;
  known.channel = 3;
  known.payload = bytes_of("known");
  t.decisions.push_back(
      {DecisionKind::Send, MessageKey::of(known), false, 17, 1});

  ReplayAdversary replay(t);
  sim::Rng rng(1);
  EXPECT_EQ(replay.on_send(known, rng), Time{17});

  sim::Envelope unknown = known;
  unknown.payload = bytes_of("never recorded");
  EXPECT_EQ(replay.on_send(unknown, rng), Time{1});  // fallback
  EXPECT_EQ(replay.copies(unknown, rng), 1u);
  EXPECT_EQ(replay.matched(), 1u);
  EXPECT_EQ(replay.missed(), 2u);
}

TEST(ReplayAdversary, SameKeyDecisionsReplayInRecordingOrder) {
  sim::Envelope env;
  env.from = 2;
  env.to = 5;
  env.channel = 1;
  env.payload = bytes_of("resend");
  ScheduleTrace t;
  t.decisions.push_back({DecisionKind::Send, MessageKey::of(env), false, 4, 1});
  t.decisions.push_back({DecisionKind::Send, MessageKey::of(env), true, 0, 1});
  t.decisions.push_back({DecisionKind::Send, MessageKey::of(env), false, 9, 1});

  ReplayAdversary replay(t);
  sim::Rng rng(1);
  EXPECT_EQ(replay.on_send(env, rng), Time{4});
  EXPECT_EQ(replay.on_send(env, rng), std::nullopt);  // the recorded hold
  EXPECT_EQ(replay.on_send(env, rng), Time{9});
}

// The core promise: recording an execution and replaying its trace on a
// fresh world reproduces the execution byte-for-byte — every process
// observes an identical transcript.
class RecordReplay
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, AdversaryKind>> {
};

TEST_P(RecordReplay, ReplayIsByteIdentical) {
  const auto [protocol, adversary] = GetParam();
  const ScenarioSpec spec = ScenarioSpec::materialize(protocol, adversary, 9);
  const InvariantRegistry reg = InvariantRegistry::standard_smr();

  RunOutcome recorded = run_scenario(spec, reg, RunMode::Record);
  ASSERT_FALSE(recorded.violation.has_value())
      << recorded.violation->describe() << " — " << spec.describe();
  ASSERT_GT(recorded.trace.decisions.size(), 0u);

  const RunOutcome replayed =
      run_scenario(spec, reg, RunMode::Replay, &recorded.trace);
  EXPECT_EQ(replayed.replay_missed, 0u);
  EXPECT_EQ(replayed.fingerprint, recorded.fingerprint);
  EXPECT_EQ(replayed.completed, recorded.completed);
  EXPECT_EQ(replayed.final_time, recorded.final_time);
  EXPECT_EQ(replayed.net.messages_delivered, recorded.net.messages_delivered);
  // Every recorded decision was consumed, in order.
  EXPECT_EQ(replayed.trace, recorded.trace);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RecordReplay,
    ::testing::Combine(::testing::Values(ProtocolKind::MinBft,
                                         ProtocolKind::Pbft),
                       ::testing::Values(AdversaryKind::RandomDelay,
                                         AdversaryKind::Duplicating,
                                         AdversaryKind::Gst)));

// Acceptance scenario: a sweep with an injected broken invariant must
// yield a shrunken trace that replays to the same violation
// deterministically.
TEST(Shrink, InjectedViolationShrinksAndReplaysDeterministically) {
  InvariantRegistry reg = InvariantRegistry::standard_smr();
  reg.add(bounded_executions(2));

  const ScenarioSpec spec = ScenarioSpec::materialize(
      ProtocolKind::MinBft, AdversaryKind::RandomDelay, 7);
  ASSERT_GT(spec.requests.size(), 3u);

  RunOutcome out = run_scenario(spec, reg, RunMode::Record);
  ASSERT_TRUE(out.violation.has_value());
  EXPECT_EQ(out.violation->invariant, "bounded-executions");

  const ShrinkOutcome shr = shrink_failure(spec, out.trace, reg,
                                           out.violation->invariant);
  // Minimal failing workload: 3 requests beat the bound of 2; crashes are
  // noise and must all be removed; every surviving delay collapses to 1.
  EXPECT_EQ(shr.spec.requests.size(), 3u);
  EXPECT_EQ(shr.spec.crashes.size(), 0u);
  EXPECT_LE(shr.trace.decisions.size(), out.trace.decisions.size());
  for (const ScheduleDecision& d : shr.trace.decisions) {
    if (d.kind == DecisionKind::Copies) {
      EXPECT_EQ(d.copies, 1u);
    } else if (!d.held) {
      EXPECT_EQ(d.delay, 1u) << d.describe();
    }
  }

  const RunOutcome r1 =
      run_scenario(shr.spec, reg, RunMode::Replay, &shr.trace);
  const RunOutcome r2 =
      run_scenario(shr.spec, reg, RunMode::Replay, &shr.trace);
  ASSERT_TRUE(r1.violation.has_value());
  ASSERT_TRUE(r2.violation.has_value());
  EXPECT_EQ(r1.violation->invariant, "bounded-executions");
  EXPECT_EQ(r1.violation->message, r2.violation->message);
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
}

// The shrunken artifact survives serialization: decode from hex and the
// violation still reproduces (the "standalone artifact" property).
TEST(Shrink, ShrunkArtifactSurvivesHexRoundTrip) {
  InvariantRegistry reg = InvariantRegistry::standard_smr();
  reg.add(bounded_executions(1));

  const ScenarioSpec spec = ScenarioSpec::materialize(
      ProtocolKind::Pbft, AdversaryKind::Duplicating, 3);
  RunOutcome out = run_scenario(spec, reg, RunMode::Record);
  ASSERT_TRUE(out.violation.has_value());
  const ShrinkOutcome shr =
      shrink_failure(spec, out.trace, reg, out.violation->invariant);

  const ScenarioSpec spec2 = ScenarioSpec::from_hex(shr.spec.to_hex());
  const ScheduleTrace trace2 = ScheduleTrace::from_hex(shr.trace.to_hex());
  const RunOutcome replayed =
      run_scenario(spec2, reg, RunMode::Replay, &trace2);
  ASSERT_TRUE(replayed.violation.has_value());
  EXPECT_EQ(replayed.violation->invariant, "bounded-executions");
}

TEST(Explorer, SweepFindsShrinksAndCertifiesInjectedBug) {
  SweepPlan plan;
  plan.protocols = {ProtocolKind::MinBft};
  plan.adversaries = {AdversaryKind::RandomDelay};
  plan.seeds = 3;
  plan.seed_base = 1;

  InvariantRegistry reg = InvariantRegistry::standard_smr();
  reg.add(bounded_executions(2));

  const ExplorationReport report = Explorer(plan, reg).run();
  EXPECT_EQ(report.runs, 3u);
  ASSERT_GE(report.findings.size(), 1u);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.violation.invariant, "bounded-executions");
    EXPECT_TRUE(f.deterministic) << f.replay_snippet();
    EXPECT_LE(f.shrunk_trace.decisions.size(), f.recorded_decisions);
    EXPECT_EQ(f.shrunk_spec.crashes.size(), 0u);
    EXPECT_NE(f.replay_snippet().find("ScenarioSpec::from_hex"),
              std::string::npos);
    EXPECT_NE(f.replay_snippet().find("ScheduleTrace::from_hex"),
              std::string::npos);
  }
  EXPECT_NE(report.summary().find("3 executions"), std::string::npos);
}

TEST(Explorer, CleanSweepReportsNoFindings) {
  SweepPlan plan;
  plan.protocols = {ProtocolKind::Pbft};
  plan.adversaries = {AdversaryKind::Gst};
  plan.seeds = 2;
  plan.seed_base = 1;

  const ExplorationReport report =
      Explorer(plan, InvariantRegistry::standard_smr()).run();
  EXPECT_EQ(report.runs, 2u);
  EXPECT_TRUE(report.findings.empty());
}

// A mutated protocol knob (MinBFT commit quorum of n instead of the
// default f+1 — legal but over-strict) is expressible in the spec,
// recordable and replayable like any scenario — the knob for deliberately
// mis-tuned runs.
TEST(Scenario, MutatedCommitQuorumKnobRoundTrips) {
  ScenarioSpec spec = ScenarioSpec::materialize(ProtocolKind::MinBft,
                                                AdversaryKind::RandomDelay, 2);
  spec.commit_quorum = spec.n;  // every replica must confirm
  spec.crashes.clear();  // quorum n tolerates no crash; keep the run live
  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  RunOutcome recorded = run_scenario(spec, reg, RunMode::Record);
  const RunOutcome replayed =
      run_scenario(spec, reg, RunMode::Replay, &recorded.trace);
  EXPECT_EQ(replayed.fingerprint, recorded.fingerprint);
  EXPECT_EQ(ScenarioSpec::from_hex(spec.to_hex()).commit_quorum, spec.n);
}

}  // namespace
}  // namespace unidir::explore
