// Payload copy-on-write semantics: copies share one buffer, mutation
// detaches, and the cached content hash tracks the buffer it was computed
// over. The duplication/hold/release paths in Network lean on exactly these
// properties to keep adversarial copies zero-copy.
#include <gtest/gtest.h>

#include "common/payload.h"

namespace unidir {
namespace {

Bytes some_bytes() { return bytes_of("the quick brown fox"); }

TEST(Payload, CopiesShareOneBuffer) {
  const Payload a{some_bytes()};
  const Payload b = a;      // NOLINT(performance-unnecessary-copy-initialization)
  const Payload c = b;      // NOLINT(performance-unnecessary-copy-initialization)

  EXPECT_TRUE(a.shares_buffer_with(b));
  EXPECT_TRUE(a.shares_buffer_with(c));
  EXPECT_EQ(a.use_count(), 3u);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST(Payload, DroppingCopiesReleasesTheBuffer) {
  const Payload a{some_bytes()};
  {
    const Payload b = a;  // NOLINT(performance-unnecessary-copy-initialization)
    EXPECT_EQ(a.use_count(), 2u);
  }
  EXPECT_EQ(a.use_count(), 1u);
}

TEST(Payload, MutateDetachesSharedBuffer) {
  const Payload a{some_bytes()};
  Payload b = a;
  b.mutate()[0] = 'T';

  EXPECT_FALSE(a.shares_buffer_with(b));
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(b.use_count(), 1u);
  EXPECT_EQ(a.bytes(), some_bytes());  // original untouched
  EXPECT_EQ(b[0], 'T');
}

TEST(Payload, MutateWhenUniqueKeepsTheBuffer) {
  Payload a{some_bytes()};
  const std::uint8_t* before = a.data();
  a.mutate()[0] = 'T';
  EXPECT_EQ(a.data(), before);
}

TEST(Payload, FnvIsCachedPerBufferAndInvalidatedByMutation) {
  const Payload a{some_bytes()};
  const Payload b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a.fnv(), fnv1a64(a.span()));
  EXPECT_EQ(a.fnv(), b.fnv());  // shared buffer -> shared cache

  Payload c = a;
  c.mutate()[0] = 'T';
  EXPECT_EQ(c.fnv(), fnv1a64(c.span()));
  EXPECT_NE(c.fnv(), a.fnv());
  EXPECT_EQ(a.fnv(), fnv1a64(a.span()));  // original cache still right
}

TEST(Payload, EmptyAndDefaultBehaveAsEmptyBytes) {
  const Payload def;
  EXPECT_TRUE(def.empty());
  EXPECT_EQ(def.size(), 0u);
  EXPECT_EQ(def.fnv(), fnv1a64(ByteSpan{}));
  EXPECT_EQ(def, Payload{Bytes{}});
}

TEST(Payload, EqualityComparesContentAcrossDistinctBuffers) {
  const Payload a{some_bytes()};
  const Payload b{some_bytes()};
  EXPECT_FALSE(a.shares_buffer_with(b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, some_bytes());
  EXPECT_NE(a, Payload{bytes_of("other")});
}

TEST(Payload, CopyOfSnapshotsTheSpan) {
  Bytes original = some_bytes();
  const Payload p = Payload::copy_of(ByteSpan(original.data(), original.size()));
  original[0] = 'X';
  EXPECT_EQ(p.bytes(), some_bytes());
}

}  // namespace
}  // namespace unidir
