#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/check.h"

namespace unidir {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xAB, 0xFF, 0x7F};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsInvalidDigits) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, StringRoundTrip) {
  const std::string s = "hello \x01 world";
  EXPECT_EQ(string_of(bytes_of(s)), s);
}

TEST(Bytes, Append) {
  Bytes a = {1, 2};
  const Bytes b = {3, 4};
  append(a, b);
  EXPECT_EQ(a, (Bytes{1, 2, 3, 4}));
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

TEST(Check, CheckThrowsInternalError) {
  EXPECT_THROW(UNIDIR_CHECK(false), InternalError);
  EXPECT_NO_THROW(UNIDIR_CHECK(true));
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(UNIDIR_REQUIRE(false), std::invalid_argument);
  EXPECT_NO_THROW(UNIDIR_REQUIRE(true));
}

TEST(Check, MessagesIncludeContext) {
  try {
    UNIDIR_CHECK_MSG(false, "custom context");
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace unidir
