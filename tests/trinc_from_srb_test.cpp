// Experiment E1: the paper's Theorem 1 — SRB implements the TrInc
// interface. Exercised over the trusted SRB primitive (SrbHub) under
// adversarial schedules, plus a Byzantine host bypassing the local
// monotonicity refusal.
#include <gtest/gtest.h>

#include "broadcast/srb_hub.h"
#include "sim/adversaries.h"
#include "test_util.h"
#include "trusted/trinc_from_srb.h"

namespace unidir::trusted {
namespace {

using broadcast::SrbHub;
using broadcast::SrbHubEndpoint;
using testutil::Node;

constexpr sim::Channel kSrbCh = 40;

struct Fixture {
  sim::World world;
  SrbHub hub;
  std::vector<Node*> nodes;
  std::vector<std::unique_ptr<SrbHubEndpoint>> endpoints;
  std::vector<std::unique_ptr<TrincFromSrb>> trincs;

  Fixture(std::size_t n, std::uint64_t seed, Time max_delay = 30)
      : world(seed, std::make_unique<sim::RandomDelayAdversary>(1, max_delay)),
        hub(world, kSrbCh) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(&world.spawn<Node>());
      endpoints.push_back(hub.make_endpoint(*nodes.back()));
      trincs.push_back(std::make_unique<TrincFromSrb>(
          *endpoints.back(), nodes.back()->id()));
    }
    world.start();
  }
};

TEST(TrincFromSrb, Theorem1Property1CorrectAttestEventuallyChecks) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Fixture fx(4, seed);
    const auto a = fx.trincs[0]->attest(1, bytes_of("m"));
    ASSERT_TRUE(a.has_value());
    fx.world.run_to_quiescence();
    for (auto& t : fx.trincs)
      EXPECT_TRUE(t->check(*a, 0)) << "seed " << seed;
  }
}

TEST(TrincFromSrb, Theorem1Property2UnattestedNeverChecks) {
  Fixture fx(4, 9);
  (void)fx.trincs[0]->attest(1, bytes_of("real"));
  fx.world.run_to_quiescence();
  SrbAttestation forged;
  forged.owner = 0;
  forged.broadcast_seq = 1;
  forged.seq = 1;
  forged.message = bytes_of("never attested");
  for (auto& t : fx.trincs) EXPECT_FALSE(t->check(forged, 0));
  // Wrong owner claim also fails.
  SrbAttestation real{0, 1, 1, bytes_of("real")};
  for (auto& t : fx.trincs) {
    EXPECT_TRUE(t->check(real, 0));
    EXPECT_FALSE(t->check(real, 1));
  }
}

TEST(TrincFromSrb, CheckIsFalseBeforeDeliveryTrueAfter) {
  auto adversary = std::make_unique<sim::PartitionAdversary>();
  auto* part = adversary.get();
  sim::World w(3, std::move(adversary));
  SrbHub hub(w, kSrbCh);
  std::vector<Node*> nodes;
  std::vector<std::unique_ptr<SrbHubEndpoint>> eps;
  std::vector<std::unique_ptr<TrincFromSrb>> trincs;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(&w.spawn<Node>());
    eps.push_back(hub.make_endpoint(*nodes.back()));
    trincs.push_back(std::make_unique<TrincFromSrb>(*eps.back(),
                                                    nodes.back()->id()));
  }
  part->block({0}, {2});
  w.start();
  const auto a = trincs[0]->attest(1, bytes_of("m"));
  w.run_to_quiescence();
  EXPECT_TRUE(trincs[1]->check(*a, 0));
  EXPECT_FALSE(trincs[2]->check(*a, 0));  // copy still held
  part->clear();
  w.network().flush_held();
  w.run_to_quiescence();
  EXPECT_TRUE(trincs[2]->check(*a, 0));  // "eventually"
}

TEST(TrincFromSrb, LocalMonotonicityRefusal) {
  Fixture fx(3, 2);
  ASSERT_TRUE(fx.trincs[0]->attest(5, bytes_of("a")).has_value());
  EXPECT_FALSE(fx.trincs[0]->attest(5, bytes_of("b")).has_value());
  EXPECT_FALSE(fx.trincs[0]->attest(3, bytes_of("c")).has_value());
  ASSERT_TRUE(fx.trincs[0]->attest(6, bytes_of("d")).has_value());
}

TEST(TrincFromSrb, ByzantineCounterReuseFilteredConsistently) {
  // A Byzantine host bypasses the local refusal and broadcasts two
  // attestation messages with the SAME counter value c. The C[q] filter
  // keeps only the first (in SRB order) — identically at every correct
  // process, because SRB delivers the same stream everywhere.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Fixture fx(4, seed);
    // Bypass: write the wire format directly, twice, same c.
    serde::Writer w1;
    w1.u8(1);  // wire tag of trinc-attest
    w1.uvarint(7);
    w1.bytes(bytes_of("first"));
    serde::Writer w2;
    w2.u8(1);
    w2.uvarint(7);
    w2.bytes(bytes_of("second"));
    fx.world.mark_byzantine(fx.nodes[0]->id());
    fx.endpoints[0]->broadcast(w1.take());
    fx.endpoints[0]->broadcast(w2.take());
    fx.world.run_to_quiescence();

    SrbAttestation first{0, 1, 7, bytes_of("first")};
    SrbAttestation second{0, 2, 7, bytes_of("second")};
    for (std::size_t i = 1; i < 4; ++i) {
      EXPECT_TRUE(fx.trincs[i]->check(first, 0)) << "seed " << seed;
      EXPECT_FALSE(fx.trincs[i]->check(second, 0)) << "seed " << seed;
      EXPECT_EQ(fx.trincs[i]->counter_of(0), 7u);
    }
  }
}

TEST(TrincFromSrb, GapsInCounterValuesAccepted) {
  Fixture fx(3, 4);
  const auto a = fx.trincs[0]->attest(10, bytes_of("x"));
  const auto b = fx.trincs[0]->attest(100, bytes_of("y"));
  fx.world.run_to_quiescence();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(fx.trincs[i]->check(*a, 0));
    EXPECT_TRUE(fx.trincs[i]->check(*b, 0));
    EXPECT_EQ(fx.trincs[i]->counter_of(0), 100u);
  }
}

TEST(TrincFromSrb, MalformedBroadcastAttestsNothing) {
  Fixture fx(3, 5);
  fx.world.mark_byzantine(fx.nodes[0]->id());
  fx.endpoints[0]->broadcast(Bytes{0xFF, 0xFF, 0xFF});
  fx.world.run_to_quiescence();
  EXPECT_EQ(fx.trincs[1]->counter_of(0), 0u);
  EXPECT_EQ(fx.trincs[2]->counter_of(0), 0u);
}

TEST(TrincFromSrb, ConcurrentAttestersDoNotInterfere) {
  Fixture fx(5, 6);
  std::vector<SrbAttestation> all;
  for (std::size_t i = 0; i < 5; ++i)
    for (SeqNum c = 1; c <= 3; ++c)
      all.push_back(*fx.trincs[i]->attest(
          c, bytes_of("p" + std::to_string(i) + "c" + std::to_string(c))));
  fx.world.run_to_quiescence();
  for (auto& t : fx.trincs)
    for (const auto& a : all) EXPECT_TRUE(t->check(a, a.owner));
}

}  // namespace
}  // namespace unidir::trusted
