#include <gtest/gtest.h>

#include "common/serde.h"
#include "crypto/signature.h"

namespace unidir::crypto {
namespace {

TEST(Signature, SignVerifyRoundTrip) {
  KeyRegistry registry;
  const Signer signer = registry.generate_key();
  const Bytes msg = bytes_of("broadcast (1, m)");
  const Signature sig = signer.sign(msg);
  EXPECT_TRUE(registry.verify(sig, msg));
}

TEST(Signature, RejectsTamperedMessage) {
  KeyRegistry registry;
  const Signer signer = registry.generate_key();
  const Signature sig = signer.sign(bytes_of("value v"));
  EXPECT_FALSE(registry.verify(sig, bytes_of("value w")));
}

TEST(Signature, RejectsTamperedMac) {
  KeyRegistry registry;
  const Signer signer = registry.generate_key();
  const Bytes msg = bytes_of("value v");
  Signature sig = signer.sign(msg);
  sig.mac[0] ^= 0x01;
  EXPECT_FALSE(registry.verify(sig, msg));
}

TEST(Signature, RejectsWrongKeyClaim) {
  // A Byzantine process relabelling its signature as another's must fail:
  // the mac was computed under a different secret.
  KeyRegistry registry;
  const Signer alice = registry.generate_key();
  const Signer bob = registry.generate_key();
  const Bytes msg = bytes_of("equivocation attempt");
  Signature sig = alice.sign(msg);
  sig.key = bob.key();
  EXPECT_FALSE(registry.verify(sig, msg));
}

TEST(Signature, RejectsUnknownKey) {
  KeyRegistry registry;
  Signature sig;
  sig.key = 999;
  sig.mac = Bytes(32, 0);
  EXPECT_FALSE(registry.verify(sig, bytes_of("m")));
}

TEST(Signature, DistinctKeysProduceDistinctSignatures) {
  KeyRegistry registry;
  const Signer a = registry.generate_key();
  const Signer b = registry.generate_key();
  EXPECT_NE(a.key(), b.key());
  const Bytes msg = bytes_of("m");
  EXPECT_NE(a.sign(msg).mac, b.sign(msg).mac);
}

TEST(Signature, TransferableAcrossVerifiers) {
  // Anyone holding the registry can verify — the "transferable" property.
  KeyRegistry registry;
  const Signer signer = registry.generate_key();
  const Bytes msg = bytes_of("forwarded proof");
  const Signature sig = signer.sign(msg);
  // Simulate a chain of forwards: serialize, parse, verify.
  const Bytes wire = serde::encode(sig);
  const auto parsed = serde::decode<Signature>(wire);
  EXPECT_EQ(parsed, sig);
  EXPECT_TRUE(registry.verify(parsed, msg));
}

TEST(Signature, NullSignerThrows) {
  const Signer s;
  EXPECT_FALSE(s.valid());
  EXPECT_THROW((void)s.sign(bytes_of("m")), std::invalid_argument);
}

TEST(Signature, SerdeRoundTrip) {
  KeyRegistry registry;
  const Signer signer = registry.generate_key();
  const Signature sig = signer.sign(bytes_of("x"));
  EXPECT_EQ(serde::decode<Signature>(serde::encode(sig)), sig);
}

TEST(Signature, DeterministicAcrossRegistriesWithSameHistory) {
  // Whole-world reproducibility: two registries that generate keys in the
  // same order produce identical signatures.
  KeyRegistry r1;
  KeyRegistry r2;
  const Signer s1 = r1.generate_key();
  const Signer s2 = r2.generate_key();
  const Bytes msg = bytes_of("replay");
  EXPECT_EQ(s1.sign(msg), s2.sign(msg));
}

}  // namespace
}  // namespace unidir::crypto
