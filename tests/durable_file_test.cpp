// FileDurableStore (runtime/durable_file.h) — the file-backed NVRAM model
// behind the chaos harness (ctest label: chaos):
//
//  - serialize/parse round-trips and strict rejection of every torn or
//    garbled variant of a valid image (sweep over all byte positions);
//  - the dual-image commit: after a corrupt store.img the store falls back
//    to store.prev instead of booting empty, and generations stay
//    monotonic across reopen;
//  - World integration: a process whose durable store is file-backed
//    survives crash/restart across *separate store instances* (the real
//    kill -9 path, minus the process boundary);
//  - USIG counter-then-send: a sealed counter written through set_nvram
//    continues after "power loss", while the volatile variant rewinds —
//    the PR-4 negative experiment against real files.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "runtime/durable_file.h"
#include "sim/adversaries.h"
#include "sim/world.h"
#include "trusted/usig.h"
#include "test_util.h"

namespace unidir {
namespace {

using runtime::FileDurableStore;

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

Bytes slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void spew(const std::filesystem::path& p, const Bytes& data) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << p;
}

TEST(DurableFileImage, SerializeParseRoundTrip) {
  std::map<std::string, Bytes> entries;
  entries["minbft/state"] = bytes_of("some protocol image");
  entries["usig/sealed"] = bytes_of("sealed counter");
  entries["empty"] = Bytes{};
  const Bytes image = FileDurableStore::serialize_image(entries, 42);

  std::uint64_t gen = 0;
  const auto parsed = FileDurableStore::parse_image(image, &gen);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, entries);
  EXPECT_EQ(gen, 42u);
}

TEST(DurableFileImage, EmptyImageRoundTripsAndTrailingGarbageRejects) {
  const Bytes image = FileDurableStore::serialize_image({}, 1);
  EXPECT_TRUE(FileDurableStore::parse_image(image).has_value());

  Bytes extra = image;
  extra.push_back(0);
  EXPECT_FALSE(FileDurableStore::parse_image(extra).has_value())
      << "trailing garbage must reject the whole image";
}

// The heart of the torn-write story: every possible truncation and every
// possible single-byte garble of a valid image must be rejected by the
// strict parser — no partial maps, no throws.
TEST(DurableFileImage, EveryTruncationAndGarbleIsRejected) {
  std::map<std::string, Bytes> entries;
  entries["a"] = bytes_of("alpha");
  entries["b"] = bytes_of("beta");
  entries["key/with/slashes"] = bytes_of("value value value");
  const Bytes image = FileDurableStore::serialize_image(entries, 7);
  ASSERT_TRUE(FileDurableStore::parse_image(image).has_value());

  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    const Bytes torn(image.begin(),
                     image.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(FileDurableStore::parse_image(torn).has_value())
        << "image truncated to " << cut << " bytes parsed";
  }
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0xff}}) {
      Bytes garbled = image;
      garbled[pos] ^= flip;
      // The trailer CRC covers every preceding byte (and a flipped trailer
      // no longer matches them), so NO single-byte flip may parse.
      EXPECT_FALSE(FileDurableStore::parse_image(garbled).has_value())
          << "image with byte " << pos << " ^ " << int(flip) << " parsed";
    }
  }
}

TEST(DurableFileStore, FreshDirectoryStartsEmptyAndPersistsAcrossReopen) {
  const auto dir = fresh_dir("durable_fresh");
  {
    FileDurableStore store(dir);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.stats().recovered);
    EXPECT_EQ(store.generation(), 0u);
    store.put("k1", bytes_of("v1"));
    store.put_value<std::uint64_t>("count", 9);
    EXPECT_EQ(store.generation(), 2u);
    EXPECT_EQ(store.stats().commits, 2u);
  }
  FileDurableStore reopened(dir);
  EXPECT_TRUE(reopened.stats().recovered);
  EXPECT_FALSE(reopened.stats().loaded_fallback);
  EXPECT_EQ(reopened.generation(), 2u);
  ASSERT_NE(reopened.get("k1"), nullptr);
  EXPECT_EQ(*reopened.get("k1"), bytes_of("v1"));
  EXPECT_EQ(reopened.get_value<std::uint64_t>("count"),
            std::optional<std::uint64_t>{9});
}

TEST(DurableFileStore, EraseAndClearPersist) {
  const auto dir = fresh_dir("durable_erase");
  {
    FileDurableStore store(dir);
    store.put("keep", bytes_of("x"));
    store.put("drop", bytes_of("y"));
    store.erase("drop");
  }
  {
    FileDurableStore reopened(dir);
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_TRUE(reopened.contains("keep"));
    EXPECT_FALSE(reopened.contains("drop"));
    reopened.clear();
  }
  FileDurableStore empty(dir);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.stats().recovered) << "an empty image is still an image";
}

// Sweep torn writes at the FILE level: for every truncation point of
// store.img, a fresh open must land on the previous good image (store.prev
// present) — never a partial state, never a throw.
TEST(DurableFileStore, TornImageFallsBackToPreviousGoodImage) {
  const auto dir = fresh_dir("durable_torn");
  {
    FileDurableStore store(dir);
    store.put("gen1", bytes_of("old"));   // commit 1 -> store.img
    store.put("gen2", bytes_of("new"));   // commit 2 -> rotates 1 to prev
  }
  const Bytes good_img = slurp(dir / "store.img");
  const Bytes good_prev = slurp(dir / "store.prev");
  ASSERT_FALSE(good_img.empty());
  ASSERT_FALSE(good_prev.empty());

  for (std::size_t cut = 0; cut < good_img.size(); ++cut) {
    spew(dir / "store.img",
         Bytes(good_img.begin(),
               good_img.begin() + static_cast<std::ptrdiff_t>(cut)));
    FileDurableStore store(dir);
    EXPECT_TRUE(store.stats().loaded_fallback) << "cut=" << cut;
    EXPECT_GE(store.stats().images_rejected, 1u) << "cut=" << cut;
    EXPECT_EQ(store.generation(), 1u) << "cut=" << cut;
    EXPECT_EQ(store.size(), 1u) << "cut=" << cut;
    EXPECT_TRUE(store.contains("gen1")) << "cut=" << cut;
    EXPECT_FALSE(store.contains("gen2"))
        << "cut=" << cut << ": partial new state leaked through";
  }
  // Restore and confirm the sweep left the directory usable.
  spew(dir / "store.img", good_img);
  FileDurableStore store(dir);
  EXPECT_FALSE(store.stats().loaded_fallback);
  EXPECT_EQ(store.generation(), 2u);
}

TEST(DurableFileStore, BothImagesCorruptBootsCleanlyEmpty) {
  const auto dir = fresh_dir("durable_both_bad");
  {
    FileDurableStore store(dir);
    store.put("k", bytes_of("v"));
    store.put("k2", bytes_of("v2"));
  }
  spew(dir / "store.img", bytes_of("not an image at all"));
  spew(dir / "store.prev", Bytes{0xde, 0xad});
  FileDurableStore store(dir);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.stats().recovered);
  EXPECT_EQ(store.stats().images_rejected, 2u);
  // A store that lost everything must still be able to move forward.
  store.put("fresh", bytes_of("start"));
  FileDurableStore reopened(dir);
  EXPECT_TRUE(reopened.contains("fresh"));
}

TEST(DurableFileStore, HigherGenerationImageWinsRegardlessOfFilename) {
  // If a crash lands between the two renames, store.prev can briefly hold
  // the NEWEST image while store.img holds the older one (or none). The
  // opener must pick by generation, not by name.
  const auto dir = fresh_dir("durable_genwins");
  std::filesystem::create_directories(dir);
  std::map<std::string, Bytes> older, newer;
  older["k"] = bytes_of("old");
  newer["k"] = bytes_of("new");
  spew(dir / "store.img", FileDurableStore::serialize_image(older, 3));
  spew(dir / "store.prev", FileDurableStore::serialize_image(newer, 4));
  FileDurableStore store(dir);
  EXPECT_EQ(store.generation(), 4u);
  ASSERT_NE(store.get("k"), nullptr);
  EXPECT_EQ(*store.get("k"), bytes_of("new"));
}

TEST(DurableFileStore, EveryCommitLeavesTwoIndependentlyValidImages) {
  // The atomicity argument rests on this invariant: at any instant after
  // the second commit, BOTH files on disk parse as complete images, so any
  // kill -9 between syscalls leaves at least one good state.
  const auto dir = fresh_dir("durable_invariant");
  FileDurableStore store(dir);
  for (int k = 0; k < 5; ++k) {
    store.put("key" + std::to_string(k), bytes_of("value"));
    EXPECT_TRUE(
        FileDurableStore::parse_image(slurp(dir / "store.img")).has_value())
        << "after commit " << k + 1;
    if (k >= 1) {
      EXPECT_TRUE(
          FileDurableStore::parse_image(slurp(dir / "store.prev")).has_value())
          << "after commit " << k + 1;
    }
  }
}

// ---- World integration -----------------------------------------------------------

TEST(DurableFileWorld, InstalledFileStoreSurvivesCrashRestart) {
  const auto dir = fresh_dir("durable_world");
  struct Counter final : sim::Process {
    int recovered_from = -1;

   protected:
    void on_start() override {
      world().durable(id()).put_value<std::uint64_t>("count", 7);
    }
    void on_recover(sim::DurableStore& durable) override {
      if (const auto v = durable.get_value<std::uint64_t>("count"))
        recovered_from = static_cast<int>(*v);
    }
  };
  {
    sim::World world(1, std::make_unique<sim::ImmediateAdversary>());
    auto& p = world.spawn<Counter>();
    world.install_durable(p.id(), std::make_unique<FileDurableStore>(dir));
    world.start();
    world.run_to_quiescence();
    world.crash(p.id());
    world.restart(p.id());
    EXPECT_EQ(p.recovered_from, 7) << "in-process restart lost the record";
  }
  // The kill -9 shape: a brand-new World and store instance over the same
  // directory boots the process straight into on_recover.
  sim::World world2(2, std::make_unique<sim::ImmediateAdversary>());
  auto& p2 = world2.spawn<Counter>();
  world2.install_durable(p2.id(), std::make_unique<FileDurableStore>(dir));
  world2.boot_recovering(p2.id());
  world2.start();
  world2.run_to_quiescence();
  EXPECT_EQ(p2.recovered_from, 7) << "cross-process restart lost the record";
  EXPECT_EQ(world2.metrics().counter_value("fault.recovery_boots"), 1u);
}

// ---- USIG write-through ----------------------------------------------------------

TEST(DurableFileUsig, SealedCounterWrittenThroughNvramSurvivesPowerLoss) {
  const auto dir = fresh_dir("durable_usig");
  crypto::KeyRegistry keys;
  trusted::UsigEnclave usig(keys);
  {
    FileDurableStore store(dir);
    usig.set_nvram([&store](const Bytes& sealed) {
      store.put("usig/sealed", sealed);
    });
    EXPECT_EQ(usig.create_ui(bytes_of("m1")).counter, 1u);
    EXPECT_EQ(usig.create_ui(bytes_of("m2")).counter, 2u);
  }
  // Power loss: the enclave's volatile counter rewinds, then the restart
  // path reloads the sealed blob from disk.
  usig.reset_for_power_loss();
  FileDurableStore store(dir);
  const Bytes* sealed = store.get("usig/sealed");
  ASSERT_NE(sealed, nullptr);
  usig.load_state(*sealed);
  const auto ui = usig.create_ui(bytes_of("m3"));
  EXPECT_EQ(ui.counter, 3u) << "restored counter must continue, not rewind";
  EXPECT_TRUE(trusted::UsigEnclave::verify_ui(keys, usig.key(), ui,
                                              bytes_of("m3")));
}

TEST(DurableFileUsig, VolatileCounterRewindsAfterPowerLoss) {
  // The negative control: without the nvram sink nothing reaches disk, so
  // a power loss re-issues counter 1 for a different message — the
  // equivocation the durable path exists to prevent.
  crypto::KeyRegistry keys;
  trusted::UsigEnclave usig(keys);
  const auto before = usig.create_ui(bytes_of("original"));
  usig.reset_for_power_loss();
  const auto after = usig.create_ui(bytes_of("conflicting"));
  EXPECT_EQ(after.counter, before.counter);
  EXPECT_TRUE(trusted::UsigEnclave::verify_ui(keys, usig.key(), before,
                                              bytes_of("original")));
  EXPECT_TRUE(trusted::UsigEnclave::verify_ui(keys, usig.key(), after,
                                              bytes_of("conflicting")));
}

}  // namespace
}  // namespace unidir
