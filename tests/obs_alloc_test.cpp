// Allocation-count regression tests for the tracer's recording path.
//
// DESIGN.md §10 promises that recording allocates nothing: enable()
// preallocates the ring and TraceEvent stores string-literal pointers, so
// a complete()/instant() call is a branch plus a struct copy. These tests
// count global operator new calls around recording loops to pin that, and
// pin the stronger claim that a *disabled* tracer records nothing at all.
//
// Same shape as serde_alloc_test.cpp: own binary (it replaces global
// operator new), and the counting half is compiled out under sanitizers,
// whose interceptors own the allocator.
#include <gtest/gtest.h>

#include "obs/tracer.h"

namespace unidir::obs {
namespace {

// Always-on behavior check so this binary has coverage even where the
// allocation-counting half below is compiled out.
TEST(TracerAlloc, DisabledTracerRecordsNothing) {
  Tracer t;
  for (int i = 0; i < 1000; ++i) {
    t.complete("span", "cat", 0, static_cast<Time>(i), 1, "k", 7);
    t.instant("mark", "cat", 0, static_cast<Time>(i));
  }
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

}  // namespace
}  // namespace unidir::obs

#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace unidir::obs {
namespace {

std::uint64_t allocations_during(const std::function<void()>& body) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  body();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(TracerAlloc, DisabledRecordingAllocatesNothing) {
  Tracer t;
  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 10'000; ++i) {
      t.complete("span", "cat", 1, static_cast<Time>(i), 2, "k0", 1, "k1", 2);
      t.instant("mark", "cat", 1, static_cast<Time>(i));
    }
  });
  EXPECT_EQ(allocs, 0u) << "a disabled tracer must be a branch, not a malloc";
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(TracerAlloc, EnabledRecordingAllocatesNothingAfterEnable) {
  Tracer t;
  t.enable(1024);
  const std::uint64_t allocs = allocations_during([&] {
    // 20k events through a 1k ring: exercises both the fill and the
    // overwrite path without ever growing the ring.
    for (int i = 0; i < 10'000; ++i) {
      t.complete("span", "cat", 1, static_cast<Time>(i), 2, "k0", 1, "k1", 2);
      t.instant("mark", "cat", 1, static_cast<Time>(i));
    }
  });
  EXPECT_EQ(allocs, 0u) << "recording reallocated despite the preallocated ring";
#if !defined(UNIDIR_OBS_NO_TRACING)
  EXPECT_EQ(t.recorded(), 1024u);
  EXPECT_EQ(t.dropped(), 20'000u - 1024u);
#else
  EXPECT_EQ(t.recorded(), 0u);  // stub: enable() is a no-op
#endif
}

}  // namespace
}  // namespace unidir::obs

#endif  // !sanitizers
