#include <gtest/gtest.h>

#include "agreement/minbft.h"
#include "agreement/state_machines.h"
#include "sim/adversaries.h"

namespace unidir::agreement {
namespace {

struct Cluster {
  sim::World world;
  SgxUsigDirectory usigs;
  std::vector<MinBftReplica*> replicas;
  std::vector<SmrClient*> clients;
  std::size_t n;
  std::size_t f;

  Cluster(std::size_t n_, std::size_t f_, std::size_t num_clients,
          std::uint64_t seed, Time max_delay = 10,
          MinBftReplica::Options extra = {})
      : world(seed, std::make_unique<sim::RandomDelayAdversary>(1, max_delay)),
        usigs(world.keys()),
        n(n_),
        f(f_) {
    MinBftReplica::Options options = extra;
    options.f = f;
    for (ProcessId i = 0; i < n; ++i) options.replicas.push_back(i);
    for (std::size_t i = 0; i < n; ++i)
      replicas.push_back(&world.spawn<MinBftReplica>(
          options, usigs, std::make_unique<KvStateMachine>()));
    SmrClient::Options copt;
    copt.replicas = options.replicas;
    copt.f = f;
    for (std::size_t i = 0; i < num_clients; ++i)
      clients.push_back(&world.spawn<SmrClient>(copt));
  }

  void expect_consistent(const char* context) {
    std::vector<std::pair<ProcessId, const ExecutionLog*>>
        logs;
    for (auto* r : replicas)
      if (world.correct(r->id()))
        logs.emplace_back(r->id(), &r->execution_log());
    const auto divergence = check_execution_consistency(logs);
    EXPECT_FALSE(divergence.has_value()) << context << ": " << *divergence;
  }
};

TEST(MinBft, BasicKvOperations) {
  Cluster c(3, 1, 1, 42);
  Bytes got_back;
  c.clients[0]->submit(KvStateMachine::put_op("k", "v1"));
  c.clients[0]->submit(KvStateMachine::get_op("k"),
                       [&](const Bytes& r) { got_back = r; });
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(c.clients[0]->completed(), 2u);
  EXPECT_EQ(got_back, bytes_of("v1"));
  c.expect_consistent("basic");
  for (auto* r : c.replicas) EXPECT_EQ(r->executed_count(), 2u);
  EXPECT_EQ(c.replicas[0]->state_digest(), c.replicas[1]->state_digest());
  EXPECT_EQ(c.replicas[0]->state_digest(), c.replicas[2]->state_digest());
}

struct SweepCase {
  std::size_t n;
  std::size_t f;
  std::size_t clients;
  int ops_per_client;
  std::uint64_t seed;
};

class MinBftSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MinBftSweep, AllRequestsCompleteConsistently) {
  const auto& p = GetParam();
  Cluster c(p.n, p.f, p.clients, p.seed);
  for (std::size_t i = 0; i < p.clients; ++i)
    for (int k = 0; k < p.ops_per_client; ++k)
      c.clients[i]->submit(KvStateMachine::put_op(
          "key" + std::to_string(k), "c" + std::to_string(i)));
  c.world.start();
  c.world.run_to_quiescence();
  for (auto* cl : c.clients)
    EXPECT_EQ(cl->completed(), static_cast<std::uint64_t>(p.ops_per_client));
  c.expect_consistent("sweep");
  const auto expected =
      static_cast<std::uint64_t>(p.clients) *
      static_cast<std::uint64_t>(p.ops_per_client);
  for (auto* r : c.replicas) EXPECT_EQ(r->executed_count(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinBftSweep,
    ::testing::Values(SweepCase{3, 1, 1, 8, 1}, SweepCase{3, 1, 2, 5, 2},
                      SweepCase{3, 1, 3, 4, 3}, SweepCase{5, 2, 2, 5, 4},
                      SweepCase{5, 2, 3, 3, 5}, SweepCase{7, 3, 2, 4, 6},
                      SweepCase{9, 4, 1, 5, 7}));

TEST(MinBft, ToleratesFCrashedBackups) {
  Cluster c(5, 2, 1, 9);
  c.world.crash(3);
  c.world.crash(4);
  for (int k = 0; k < 5; ++k)
    c.clients[0]->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(c.clients[0]->completed(), 5u);
  c.expect_consistent("crashed backups");
  EXPECT_EQ(c.replicas[0]->view(), 0u);  // no view change was needed
}

TEST(MinBft, PrimaryCrashTriggersViewChangeAndRecovers) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Cluster c(3, 1, 1, seed);
    for (int k = 0; k < 4; ++k)
      c.clients[0]->submit(
          KvStateMachine::put_op("k" + std::to_string(k), "v"));
    c.world.start();
    // Let some requests through, then kill the view-0 primary.
    c.world.run_until([&] { return c.clients[0]->completed() >= 1; });
    c.world.crash(0);
    c.world.run_to_quiescence();
    EXPECT_EQ(c.clients[0]->completed(), 4u) << "seed " << seed;
    c.expect_consistent("primary crash");
    for (auto* r : c.replicas) {
      if (c.world.correct(r->id())) {
        EXPECT_GT(r->view(), 0u) << "seed " << seed;
      }
    }
  }
}

TEST(MinBft, PrimaryCrashBeforeAnyProposal) {
  // The primary dies before the first request arrives: replicas' request
  // timers must still drive a view change and serve the client.
  Cluster c(3, 1, 1, 11);
  c.world.crash(0);
  c.clients[0]->submit(KvStateMachine::put_op("k", "v"));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(c.clients[0]->completed(), 1u);
  c.expect_consistent("dead primary");
}

TEST(MinBft, CascadedPrimaryFailures) {
  // Views 0 and 1's primaries both crash; view 2 must serve.
  Cluster c(5, 2, 1, 13);
  c.world.crash(0);
  c.world.crash(1);
  for (int k = 0; k < 3; ++k)
    c.clients[0]->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(c.clients[0]->completed(), 3u);
  c.expect_consistent("cascaded failures");
  for (auto* r : c.replicas) {
    if (c.world.correct(r->id())) {
      EXPECT_GE(r->view(), 2u);
    }
  }
}

TEST(MinBft, ExactlyOnceUnderAggressiveResends) {
  Cluster c(3, 1, 1, 17, /*max_delay=*/30);
  // Resend much faster than the network settles: duplicates guaranteed.
  // (Options are baked into the client at spawn; rebuild with a custom
  // client instead.)
  SmrClient::Options copt;
  copt.replicas = {0, 1, 2};
  copt.f = 1;
  copt.resend_timeout = 5;
  auto& eager = c.world.spawn<SmrClient>(copt);
  eager.submit(KvStateMachine::put_op("x", "1"));
  eager.submit(KvStateMachine::get_op("x"));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(eager.completed(), 2u);
  // Exactly-once: each replica executed each request a single time.
  for (auto* r : c.replicas) EXPECT_EQ(r->executed_count(), 2u);
  c.expect_consistent("resends");
}

TEST(MinBft, CheckpointsStabilize) {
  MinBftReplica::Options extra;
  extra.checkpoint_interval = 4;
  Cluster c(3, 1, 1, 19, 10, extra);
  for (int k = 0; k < 9; ++k)
    c.clients[0]->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(c.clients[0]->completed(), 9u);
  for (auto* r : c.replicas) EXPECT_GE(r->stable_checkpoint(), 8u);
}

TEST(MinBft, ByzantineBackupCannotForgeOrDisrupt) {
  // Replica 2 is Byzantine: it spams garbage commits, fake checkpoints and
  // relabelled UIs. With n=3, f=1 the two correct replicas (incl. the
  // primary) still commit, and nothing fake enters the logs.
  Cluster c(3, 1, 1, 23);

  class Disruptor final : public sim::Process {
   public:
    UsigDirectory* usigs = nullptr;
    void on_start() override {
      // Garbage on the protocol channel, every few ticks for a while.
      for (Time t = 1; t < 200; t += 10) {
        set_timer(t, [this] {
          broadcast(kMinBftCh, Bytes{0xde, 0xad, 0xbe, 0xef});
          // A syntactically valid PREPARE claiming to be the primary,
          // but with the wrong USIG (ours, not the primary's).
          Command fake;
          fake.client = 99;
          fake.request_id = 1;
          fake.op = bytes_of("evil");
          broadcast(kMinBftCh, MinBftReplica::encode_prepare_for_test(
                                   *usigs, id(), 0, fake));
        });
      }
    }
  };

  auto& byz = c.world.spawn<Disruptor>();
  byz.usigs = &c.usigs;
  c.world.mark_byzantine(byz.id());
  // The disruptor is NOT in the replica set; also corrupt replica 2 by
  // crashing it (worst allowed: f=1 fault total... use the disruptor as
  // the fault and keep all replicas up).
  for (int k = 0; k < 4; ++k)
    c.clients[0]->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(c.clients[0]->completed(), 4u);
  c.expect_consistent("disruptor");
  for (auto* r : c.replicas) {
    EXPECT_EQ(r->executed_count(), 4u);
    for (const ExecutionRecord& rec : r->execution_log().records())
      EXPECT_NE(rec.command.op, bytes_of("evil"));
  }
}

TEST(MinBft, EquivocatingPrimaryCannotForkTheLog) {
  // A Byzantine primary (replica 0) proposes DIFFERENT commands to the two
  // backups. The USIG makes counter reuse impossible, so the conflicting
  // proposals occupy different counters; whatever subset commits, the two
  // correct replicas' logs must stay prefix-consistent.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::World world(seed, std::make_unique<sim::RandomDelayAdversary>(1, 8));
    SgxUsigDirectory usigs(world.keys());
    MinBftReplica::Options options;
    options.f = 1;
    options.replicas = {0, 1, 2};
    options.view_change_timeout = 100;

    class EquivocatingPrimary final : public sim::Process {
     public:
      UsigDirectory* usigs = nullptr;
      void on_start() override {
        Command left;
        left.client = 50;
        left.request_id = 1;
        left.op = KvStateMachine::put_op("k", "left");
        Command right;
        right.client = 50;
        right.request_id = 2;
        right.op = KvStateMachine::put_op("k", "right");
        // Counter 1 → replica 1 only; counter 2 → replica 2 only.
        send(1, kMinBftCh, MinBftReplica::encode_prepare_for_test(
                               *usigs, id(), 0, left));
        send(2, kMinBftCh, MinBftReplica::encode_prepare_for_test(
                               *usigs, id(), 0, right));
      }
    };

    auto& byz = world.spawn<EquivocatingPrimary>();
    byz.usigs = &usigs;
    world.mark_byzantine(byz.id());
    std::vector<MinBftReplica*> backups;
    for (ProcessId i = 1; i <= 2; ++i)
      backups.push_back(&world.spawn<MinBftReplica>(
          options, usigs, std::make_unique<KvStateMachine>()));
    world.start();
    world.run_to_quiescence();

    std::vector<std::pair<ProcessId, const ExecutionLog*>>
        logs;
    for (auto* r : backups) logs.emplace_back(r->id(), &r->execution_log());
    const auto divergence = check_execution_consistency(logs);
    EXPECT_FALSE(divergence.has_value()) << *divergence << " seed " << seed;
  }
}

// ---- the USIG provider is interchangeable (the paper's class claim) ---------

TEST(UsigDirectory, TrincBackedCreateVerify) {
  crypto::KeyRegistry keys;
  TrincUsigDirectory usigs(keys);
  const Bytes msg = bytes_of("PREPARE v=0");
  const auto ui = usigs.create_ui(3, msg);
  EXPECT_EQ(ui.counter, 1u);
  EXPECT_TRUE(usigs.verify(3, ui, msg));
  EXPECT_FALSE(usigs.verify(3, ui, bytes_of("other")));
  EXPECT_FALSE(usigs.verify(4, ui, msg));
  const auto ui2 = usigs.create_ui(3, msg);
  EXPECT_EQ(ui2.counter, 2u);
  EXPECT_TRUE(usigs.verify(3, ui2, msg));
}

TEST(UsigDirectory, TrincBackedRejectsCounterRelabel) {
  crypto::KeyRegistry keys;
  TrincUsigDirectory usigs(keys);
  const Bytes msg = bytes_of("m");
  auto ui = usigs.create_ui(0, msg);
  ui.counter = 9;
  EXPECT_FALSE(usigs.verify(0, ui, msg));
  ui.counter = 0;
  EXPECT_FALSE(usigs.verify(0, ui, msg));
}

TEST(MinBft, RunsUnchangedOverTrincBackedUsig) {
  // The whole point of the paper's trusted-log class: swap SGX for TrInc
  // and nothing above the USIG interface changes.
  sim::World world(31, std::make_unique<sim::RandomDelayAdversary>(1, 10));
  TrincUsigDirectory usigs(world.keys());
  MinBftReplica::Options options;
  options.f = 1;
  options.replicas = {0, 1, 2};
  std::vector<MinBftReplica*> replicas;
  for (int i = 0; i < 3; ++i)
    replicas.push_back(&world.spawn<MinBftReplica>(
        options, usigs, std::make_unique<KvStateMachine>()));
  SmrClient::Options copt;
  copt.replicas = options.replicas;
  copt.f = 1;
  auto& client = world.spawn<SmrClient>(copt);
  for (int k = 0; k < 5; ++k)
    client.submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
  world.start();
  // Exercise the view change on TrInc UIs too.
  world.run_until([&] { return client.completed() >= 2; });
  world.crash(0);
  world.run_to_quiescence();
  EXPECT_EQ(client.completed(), 5u);
  std::vector<std::pair<ProcessId, const ExecutionLog*>> logs;
  for (auto* r : replicas)
    if (world.correct(r->id()))
      logs.emplace_back(r->id(), &r->execution_log());
  EXPECT_FALSE(check_execution_consistency(logs).has_value());
}

TEST(MinBft, PipelinedClientCompletesAllRequestsConsistently) {
  Cluster c(3, 1, 0, 37);
  SmrClient::Options copt;
  copt.replicas = {0, 1, 2};
  copt.f = 1;
  copt.max_outstanding = 8;
  auto& client = c.world.spawn<SmrClient>(copt);
  for (int k = 0; k < 24; ++k)
    client.submit(KvStateMachine::put_op("k" + std::to_string(k % 5),
                                         "v" + std::to_string(k)));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(client.completed(), 24u);
  EXPECT_EQ(client.outstanding(), 0u);
  c.expect_consistent("pipelined");
  for (auto* r : c.replicas) EXPECT_EQ(r->executed_count(), 24u);
}

TEST(MinBft, ConservativeCommitQuorumStillSafeAndLive) {
  MinBftReplica::Options extra;
  extra.commit_quorum = 3;  // all of n=3 — the conservative-quorum ablation
  Cluster c(3, 1, 1, 41, 10, extra);
  for (int k = 0; k < 4; ++k)
    c.clients[0]->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(c.clients[0]->completed(), 4u);
  c.expect_consistent("conservative quorum");
}

TEST(MinBft, CommitQuorumBoundsValidated) {
  sim::World world(1, std::make_unique<sim::ImmediateAdversary>());
  SgxUsigDirectory usigs(world.keys());
  MinBftReplica::Options options;
  options.f = 1;
  options.replicas = {0, 1, 2};
  options.commit_quorum = 1;  // below f+1
  EXPECT_THROW(world.spawn<MinBftReplica>(options, usigs,
                                          std::make_unique<KvStateMachine>()),
               std::invalid_argument);
  options.commit_quorum = 4;  // above n
  EXPECT_THROW(world.spawn<MinBftReplica>(options, usigs,
                                          std::make_unique<KvStateMachine>()),
               std::invalid_argument);
}

TEST(MinBft, SurvivesPartialSynchronyChaosBeforeGst) {
  // True partial synchrony: before GST messages straggle up to ~200 ticks,
  // far beyond the 100-tick view-change timeout — spurious view changes
  // WILL fire. After GST (delta=5) everything must stabilize: all
  // requests complete, logs consistent.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::World world(seed,
                     std::make_unique<sim::GstAdversary>(
                         /*gst=*/500, /*delta=*/5, /*pre extra=*/200));
    SgxUsigDirectory usigs(world.keys());
    MinBftReplica::Options options;
    options.f = 1;
    options.replicas = {0, 1, 2};
    options.view_change_timeout = 100;
    std::vector<MinBftReplica*> replicas;
    for (int i = 0; i < 3; ++i)
      replicas.push_back(&world.spawn<MinBftReplica>(
          options, usigs, std::make_unique<KvStateMachine>()));
    SmrClient::Options copt;
    copt.replicas = options.replicas;
    copt.f = 1;
    copt.resend_timeout = 150;
    auto& client = world.spawn<SmrClient>(copt);
    for (int k = 0; k < 5; ++k)
      client.submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
    world.start();
    world.run_to_quiescence();
    EXPECT_EQ(client.completed(), 5u) << "seed " << seed;
    std::vector<std::pair<ProcessId, const ExecutionLog*>>
        logs;
    for (auto* r : replicas) logs.emplace_back(r->id(), &r->execution_log());
    const auto divergence = check_execution_consistency(logs);
    EXPECT_FALSE(divergence.has_value()) << *divergence << " seed " << seed;
  }
}

TEST(MinBft, RejectsTooSmallReplicaGroups) {
  sim::World world(1, std::make_unique<sim::ImmediateAdversary>());
  SgxUsigDirectory usigs(world.keys());
  MinBftReplica::Options options;
  options.f = 1;
  options.replicas = {0, 1};  // n=2 < 2f+1
  EXPECT_THROW(world.spawn<MinBftReplica>(options, usigs,
                                          std::make_unique<KvStateMachine>()),
               std::invalid_argument);
}

}  // namespace
}  // namespace unidir::agreement
