// Crash-recovery semantics (ctest label: recovery), bottom-up:
//
//  - simulator/world: restarts bump the incarnation epoch so pre-crash
//    timers never fire; in-flight traffic to a crashed process is dropped
//    and counted (NetworkStats::dropped_crashed); DurableStore survives
//    restart while everything else is rebuilt in on_recover.
//  - trusted devices: USIG / TrInc / A2M state round-trips through
//    save/load (sealed storage), and reset_for_power_loss demonstrably
//    rewinds counters — the hazard the durable path exists to prevent.
//  - client: bounded retries give up after max_attempts and surface the
//    abandonment ("smr-gave-up" output, gave_up() counter) without faking
//    a result.
//  - protocols: a restarted MinBFT/PBFT replica recovers from its durable
//    image, catches up via state transfer, and rejoins with no divergence;
//    both protocols prune their view-change archives at the stable
//    checkpoint.
#include <gtest/gtest.h>

#include "agreement/minbft.h"
#include "agreement/pbft.h"
#include "agreement/state_machines.h"
#include "runtime/real_runtime.h"
#include "runtime/sim_runtime.h"
#include "sim/adversaries.h"
#include "trusted/a2m.h"
#include "trusted/trinc.h"
#include "trusted/usig.h"
#include "test_util.h"

namespace unidir {
namespace {

using agreement::KvStateMachine;
using agreement::MinBftReplica;
using agreement::PbftReplica;
using agreement::SgxUsigDirectory;
using agreement::SmrClient;
using testutil::Node;

// ---- sim layer ------------------------------------------------------------------

TEST(CrashRecoverySim, PreCrashTimersAreSuppressedAfterRestart) {
  sim::World world(1, std::make_unique<sim::ImmediateAdversary>());
  bool pre_crash_fired = false;
  bool post_restart_fired = false;
  auto& node = world.spawn<Node>();
  node.on_start_fn = [&] {
    node.set_timer(50, [&] { pre_crash_fired = true; });
  };
  world.start();
  world.simulator().at(10, [&] { world.crash(node.id()); });
  world.simulator().at(20, [&] {
    world.restart(node.id());
    node.set_timer(5, [&] { post_restart_fired = true; });
  });
  world.run_to_quiescence();
  EXPECT_FALSE(pre_crash_fired)
      << "a timer armed in incarnation 0 fired in incarnation 1";
  EXPECT_TRUE(post_restart_fired);
  EXPECT_EQ(world.incarnation(node.id()), 1u);
}

// The same incarnation-epoch guarantee, stated ONCE against the runtime
// interface and instantiated on both backends (satellite: timer-epoch
// semantics are a World contract, not a simulator artifact). The real
// backend runs loopback-only — no socket, no receiver thread — so the
// whole schedule is a single loop thread's timer heap and the test is as
// deterministic as the sim one.
class CrashRecoveryTimerEpoch : public ::testing::TestWithParam<bool> {
 protected:
  static std::unique_ptr<runtime::Runtime> make_runtime() {
    if (GetParam()) {
      runtime::RealRuntimeOptions o;
      o.tick_ns = 200'000;  // 0.2ms ticks: the 80-tick schedule is ~16ms
      return std::make_unique<runtime::RealRuntime>(o);
    }
    return std::make_unique<runtime::SimRuntime>(
        /*seed=*/1, std::make_unique<sim::ImmediateAdversary>());
  }
};

TEST_P(CrashRecoveryTimerEpoch, PreCrashTimersAreSuppressedOnBothBackends) {
  sim::World world(/*seed=*/1, make_runtime());
  bool pre_crash_fired = false;
  bool post_restart_fired = false;
  bool finished = false;
  auto& node = world.spawn<Node>();
  node.on_start_fn = [&] {
    node.set_timer(50, [&] { pre_crash_fired = true; });
  };
  world.start();
  // Harness events go straight to the Clock — below the epoch filter — so
  // they run regardless of the crash, on either backend.
  runtime::Clock& clock = world.runtime().clock();
  clock.arm(10, [&] { world.crash(node.id()); });
  clock.arm(20, [&] {
    world.restart(node.id());
    node.set_timer(5, [&] { post_restart_fired = true; });
  });
  clock.arm(80, [&] { finished = true; });
  ASSERT_TRUE(world.run_until([&] { return finished; }));
  EXPECT_FALSE(pre_crash_fired)
      << "a timer armed in incarnation 0 fired in incarnation 1";
  EXPECT_TRUE(post_restart_fired);
  EXPECT_EQ(world.incarnation(node.id()), 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, CrashRecoveryTimerEpoch,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& p) {
                           return p.param ? std::string("RealRuntime")
                                          : std::string("SimRuntime");
                         });

TEST(CrashRecoverySim, InFlightMessagesToCrashedProcessAreDroppedAndCounted) {
  // Delay every message by 10 ticks, crash the receiver at tick 5: the
  // message is in flight at crash time and must be dropped, not delivered
  // to the dead process (and not replayed to its next incarnation).
  struct Receiver final : sim::Process {
    int received = 0;

   protected:
    void on_message(ProcessId, sim::Channel, const Bytes&) override {
      ++received;
    }
  };
  sim::World world(1, std::make_unique<sim::RandomDelayAdversary>(10, 10));
  auto& sender = world.spawn<Node>();
  auto& receiver = world.spawn<Receiver>();
  sender.on_start_fn = [&] { sender.send(receiver.id(), 1, bytes_of("hi")); };
  world.start();
  world.simulator().at(5, [&] { world.crash(receiver.id()); });
  // Restart only after the scheduled delivery time (t=10): the message
  // must be dropped at the dead endpoint, not buffered for the next
  // incarnation.
  world.simulator().at(15, [&] { world.restart(receiver.id()); });
  world.run_to_quiescence();
  EXPECT_EQ(receiver.received, 0);
  EXPECT_EQ(world.network().stats().dropped_crashed, 1u);
}

TEST(CrashRecoverySim, DurableStoreSurvivesRestartAndVolatileStateDoesNot) {
  struct Counter final : sim::Process {
    int volatile_count = 0;
    int recovered_from = -1;

   protected:
    void on_start() override {
      volatile_count = 7;
      world().durable(id()).put_value<std::uint64_t>("count", 7);
    }
    void on_recover(sim::DurableStore& durable) override {
      volatile_count = 0;  // rebuilt, not remembered
      if (const auto v = durable.get_value<std::uint64_t>("count"))
        recovered_from = static_cast<int>(*v);
    }
  };
  sim::World world(1, std::make_unique<sim::ImmediateAdversary>());
  auto& p = world.spawn<Counter>();
  world.start();
  world.run_to_quiescence();  // lets on_start write the durable record
  world.crash(p.id());
  p.volatile_count = 99;  // garbage written "while dead"
  world.restart(p.id());
  EXPECT_EQ(p.volatile_count, 0);
  EXPECT_EQ(p.recovered_from, 7);
}

// ---- trusted devices ------------------------------------------------------------

TEST(CrashRecoveryTrusted, UsigCounterSurvivesSealedSaveLoad) {
  crypto::KeyRegistry keys;
  trusted::UsigEnclave usig(keys);
  const auto ui1 = usig.create_ui(bytes_of("m1"));
  const auto ui2 = usig.create_ui(bytes_of("m2"));
  EXPECT_EQ(ui1.counter, 1u);
  EXPECT_EQ(ui2.counter, 2u);

  const Bytes sealed = usig.save_state();
  usig.load_state(sealed);  // the restart path
  const auto ui3 = usig.create_ui(bytes_of("m3"));
  EXPECT_EQ(ui3.counter, 3u) << "sealed counter must continue, not rewind";
  EXPECT_TRUE(
      trusted::UsigEnclave::verify_ui(keys, usig.key(), ui3, bytes_of("m3")));
}

TEST(CrashRecoveryTrusted, UsigPowerLossReenablesCounterReuse) {
  crypto::KeyRegistry keys;
  trusted::UsigEnclave usig(keys);
  const auto before = usig.create_ui(bytes_of("original"));
  usig.reset_for_power_loss();
  const auto after = usig.create_ui(bytes_of("conflicting"));
  // Same counter, two different messages, both verifying: equivocation.
  EXPECT_EQ(after.counter, before.counter);
  EXPECT_TRUE(trusted::UsigEnclave::verify_ui(keys, usig.key(), before,
                                              bytes_of("original")));
  EXPECT_TRUE(trusted::UsigEnclave::verify_ui(keys, usig.key(), after,
                                              bytes_of("conflicting")));
}

TEST(CrashRecoveryTrusted, TrinketCountersSurviveSaveLoad) {
  crypto::KeyRegistry keys;
  trusted::TrincAuthority authority(keys);
  trusted::Trinket t = authority.make_trinket(0);
  ASSERT_TRUE(t.attest(5, bytes_of("m")).has_value());
  const Bytes nvram = t.save_counters();

  t.load_counters(nvram);
  EXPECT_FALSE(t.attest(5, bytes_of("other")).has_value())
      << "restored counter must still reject a used seq-num";
  EXPECT_TRUE(t.attest(6, bytes_of("next")).has_value());

  t.reset_for_power_loss();
  const auto reused = t.attest(5, bytes_of("conflicting"));
  ASSERT_TRUE(reused.has_value()) << "volatile counters rewind — the hazard";
  EXPECT_TRUE(authority.check(*reused, 0));
}

TEST(CrashRecoveryTrusted, A2mLogsSurviveSaveLoad) {
  crypto::KeyRegistry keys;
  trusted::A2mAuthority authority{keys};
  trusted::A2m dev = authority.make_device(0);
  const trusted::LogId log = dev.create_log();
  ASSERT_TRUE(dev.append(log, bytes_of("x")).has_value());
  ASSERT_TRUE(dev.append(log, bytes_of("y")).has_value());

  const Bytes saved = dev.save_state();
  dev.load_state(saved);
  EXPECT_EQ(dev.append(log, bytes_of("z")), std::optional<SeqNum>{3});
  const auto e = dev.end(log, bytes_of("n"));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->value, bytes_of("z"));

  dev.reset_for_power_loss();
  EXPECT_EQ(dev.append(dev.create_log(), bytes_of("fresh")),
            std::optional<SeqNum>{1});
}

// ---- client back-off ------------------------------------------------------------

TEST(CrashRecoveryClient, GivesUpAfterMaxAttemptsWithoutFakingAResult) {
  // Every replica is dead, so no reply will ever arrive. The client must
  // stop retrying after max_attempts, let the run quiesce, and report the
  // abandonment without invoking the done callback.
  sim::World world(3, std::make_unique<sim::RandomDelayAdversary>(1, 4));
  SgxUsigDirectory usigs(world.keys());
  MinBftReplica::Options opt;
  opt.f = 1;
  for (ProcessId i = 0; i < 3; ++i) opt.replicas.push_back(i);
  std::vector<MinBftReplica*> replicas;
  for (ProcessId i = 0; i < 3; ++i)
    replicas.push_back(&world.spawn<MinBftReplica>(
        opt, usigs, std::make_unique<KvStateMachine>()));

  SmrClient::Options copt;
  copt.replicas = opt.replicas;
  copt.f = 1;
  copt.resend_timeout = 20;
  copt.max_attempts = 3;
  auto& client = world.spawn<SmrClient>(copt);

  for (ProcessId i = 0; i < 3; ++i) world.crash(i);
  bool done_called = false;
  client.submit(KvStateMachine::put_op("k", "v"),
                [&](const Bytes&) { done_called = true; });
  world.start();
  world.run_to_quiescence();

  EXPECT_EQ(client.completed(), 0u);
  EXPECT_EQ(client.gave_up(), 1u);
  EXPECT_EQ(client.outstanding(), 0u);
  EXPECT_FALSE(done_called);
  EXPECT_EQ(world.transcript(client.id()).outputs("smr-gave-up").size(), 1u);
}

TEST(CrashRecoveryClient, UnlimitedRetriesOutliveALongOutage) {
  // Default max_attempts = 0: the request survives a full-cluster outage
  // and completes once replicas come back.
  sim::World world(5, std::make_unique<sim::RandomDelayAdversary>(1, 4));
  SgxUsigDirectory usigs(world.keys());
  MinBftReplica::Options opt;
  opt.f = 1;
  for (ProcessId i = 0; i < 3; ++i) opt.replicas.push_back(i);
  for (ProcessId i = 0; i < 3; ++i)
    world.spawn<MinBftReplica>(opt, usigs,
                               std::make_unique<KvStateMachine>());
  SmrClient::Options copt;
  copt.replicas = opt.replicas;
  copt.f = 1;
  copt.resend_timeout = 20;
  auto& client = world.spawn<SmrClient>(copt);
  client.submit(KvStateMachine::put_op("k", "v"));

  for (ProcessId i = 0; i < 3; ++i) world.crash(i);
  for (ProcessId i = 0; i < 3; ++i)
    world.simulator().at(200 + i, [&world, &usigs, i] {
      usigs.restart_device(i, /*durable_state=*/true);
      world.restart(i);
    });
  world.start();
  world.run_to_quiescence();
  EXPECT_EQ(client.completed(), 1u);
  EXPECT_EQ(client.gave_up(), 0u);
}

// ---- protocol recovery ----------------------------------------------------------

struct MinBftRecoveryCluster {
  sim::World world;
  SgxUsigDirectory usigs;
  std::vector<MinBftReplica*> replicas;
  SmrClient* client = nullptr;

  explicit MinBftRecoveryCluster(std::uint64_t seed, std::size_t n = 3,
                                 SeqNum checkpoint_interval = 2)
      : world(seed, std::make_unique<sim::RandomDelayAdversary>(1, 6)),
        usigs(world.keys()) {
    MinBftReplica::Options opt;
    opt.f = (n - 1) / 2;
    opt.checkpoint_interval = checkpoint_interval;
    for (ProcessId i = 0; i < n; ++i) opt.replicas.push_back(i);
    for (ProcessId i = 0; i < n; ++i)
      replicas.push_back(&world.spawn<MinBftReplica>(
          opt, usigs, std::make_unique<KvStateMachine>()));
    SmrClient::Options copt;
    copt.replicas = opt.replicas;
    copt.f = opt.f;
    copt.resend_timeout = 100;
    client = &world.spawn<SmrClient>(copt);
  }

  void restart(ProcessId victim, bool durable_trusted = true) {
    usigs.restart_device(victim, durable_trusted);
    world.restart(victim);
  }

  void expect_consistent(const char* context) {
    std::vector<std::pair<ProcessId, const agreement::ExecutionLog*>> logs;
    for (auto* r : replicas)
      if (world.correct(r->id()))
        logs.emplace_back(r->id(), &r->execution_log());
    const auto divergence = agreement::check_execution_consistency(logs);
    EXPECT_FALSE(divergence.has_value()) << context << ": " << *divergence;
  }
};

TEST(CrashRecoveryMinBft, RestartedBackupCatchesUpViaStateTransfer) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    MinBftRecoveryCluster c(seed);
    for (int k = 0; k < 8; ++k)
      c.client->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
    c.world.start();
    c.world.run_until([&] { return c.client->completed() >= 2; });
    c.world.crash(2);
    c.world.run_until([&] { return c.client->completed() >= 5; });
    c.restart(2);
    c.world.run_to_quiescence();

    EXPECT_EQ(c.client->completed(), 8u) << "seed " << seed;
    EXPECT_EQ(c.replicas[2]->recoveries(), 1u);
    EXPECT_EQ(c.replicas[2]->executed_count(), 8u)
        << "seed " << seed << ": recovered replica did not catch up";
    c.expect_consistent("minbft restart");
    EXPECT_EQ(c.replicas[2]->state_digest(), c.replicas[0]->state_digest());
  }
}

TEST(CrashRecoveryMinBft, RestartedPrimaryRejoinsWithoutEquivocating) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    MinBftRecoveryCluster c(seed);
    for (int k = 0; k < 8; ++k)
      c.client->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
    c.world.start();
    c.world.run_until([&] { return c.client->completed() >= 2; });
    c.world.crash(0);  // the view-0 primary
    c.world.run_until([&] { return c.client->completed() >= 4; });
    c.restart(0);
    c.world.run_to_quiescence();

    EXPECT_EQ(c.client->completed(), 8u) << "seed " << seed;
    c.expect_consistent("minbft primary restart");
    EXPECT_EQ(c.replicas[0]->executed_count(), 8u) << "seed " << seed;
  }
}

TEST(CrashRecoveryMinBft, ArchivePrunesAtStableCheckpoint) {
  MinBftRecoveryCluster c(3, 3, /*checkpoint_interval=*/2);
  for (int k = 0; k < 6; ++k)
    c.client->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
  c.world.start();
  c.world.run_to_quiescence();
  for (auto* r : c.replicas) {
    EXPECT_GE(r->stable_checkpoint(), 4u);
    // The archive holds only slots above the stable checkpoint.
    EXPECT_LE(r->vc_archive_size(), 6u - r->stable_checkpoint());
    // The log's pruned prefix is folded into its base digest.
    EXPECT_EQ(r->execution_log().base(), r->stable_checkpoint());
    EXPECT_EQ(r->execution_log().size(), 6u);
  }
  c.expect_consistent("pruned");
}

struct PbftRecoveryCluster {
  sim::World world;
  std::vector<PbftReplica*> replicas;
  SmrClient* client = nullptr;

  explicit PbftRecoveryCluster(std::uint64_t seed, std::size_t n = 4,
                               SeqNum checkpoint_interval = 2)
      : world(seed, std::make_unique<sim::RandomDelayAdversary>(1, 6)) {
    PbftReplica::Options opt;
    opt.f = (n - 1) / 3;
    opt.checkpoint_interval = checkpoint_interval;
    for (ProcessId i = 0; i < n; ++i) opt.replicas.push_back(i);
    for (ProcessId i = 0; i < n; ++i)
      replicas.push_back(&world.spawn<PbftReplica>(
          opt, std::make_unique<KvStateMachine>()));
    SmrClient::Options copt;
    copt.replicas = opt.replicas;
    copt.f = opt.f;
    copt.resend_timeout = 100;
    client = &world.spawn<SmrClient>(copt);
  }

  void expect_consistent(const char* context) {
    std::vector<std::pair<ProcessId, const agreement::ExecutionLog*>> logs;
    for (auto* r : replicas)
      if (world.correct(r->id()))
        logs.emplace_back(r->id(), &r->execution_log());
    const auto divergence = agreement::check_execution_consistency(logs);
    EXPECT_FALSE(divergence.has_value()) << context << ": " << *divergence;
  }
};

TEST(CrashRecoveryPbft, RestartedBackupCatchesUpViaStateTransfer) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    PbftRecoveryCluster c(seed);
    for (int k = 0; k < 8; ++k)
      c.client->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
    c.world.start();
    c.world.run_until([&] { return c.client->completed() >= 2; });
    c.world.crash(3);
    c.world.run_until([&] { return c.client->completed() >= 5; });
    c.world.restart(3);
    c.world.run_to_quiescence();

    EXPECT_EQ(c.client->completed(), 8u) << "seed " << seed;
    EXPECT_EQ(c.replicas[3]->recoveries(), 1u);
    EXPECT_EQ(c.replicas[3]->executed_count(), 8u)
        << "seed " << seed << ": recovered replica did not catch up";
    c.expect_consistent("pbft restart");
  }
}

TEST(CrashRecoveryPbft, RestartedPrimaryDoesNotReuseSequenceNumbers) {
  // The (view, next-seq) journal is what keeps an honest restarted primary
  // from re-assigning sequence numbers ("equivocation by amnesia"). With
  // the journal, restarting the view-0 primary mid-run stays safe AND its
  // own log stays prefix-consistent with the others.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    PbftRecoveryCluster c(seed);
    for (int k = 0; k < 8; ++k)
      c.client->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
    c.world.start();
    c.world.run_until([&] { return c.client->completed() >= 2; });
    c.world.crash(0);
    c.world.run_until([&] { return c.client->completed() >= 4; });
    c.world.restart(0);
    c.world.run_to_quiescence();

    EXPECT_EQ(c.client->completed(), 8u) << "seed " << seed;
    c.expect_consistent("pbft primary restart");
    EXPECT_EQ(c.replicas[0]->executed_count(), 8u) << "seed " << seed;
  }
}

TEST(CrashRecoveryPbft, ArchivePrunesAtStableCheckpoint) {
  PbftRecoveryCluster c(7, 4, /*checkpoint_interval=*/2);
  for (int k = 0; k < 6; ++k)
    c.client->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
  c.world.start();
  c.world.run_to_quiescence();
  for (auto* r : c.replicas) {
    EXPECT_GE(r->stable_checkpoint(), 4u);
    EXPECT_LE(r->vc_archive_size(), 6u - r->stable_checkpoint());
    EXPECT_EQ(r->execution_log().base(), r->stable_checkpoint());
    EXPECT_EQ(r->execution_log().size(), 6u);
  }
  c.expect_consistent("pbft pruned");
}

}  // namespace
}  // namespace unidir
