// Parallel batched signature verification (ctest label: verify): the
// ordered VerifyRunner, the multi-buffer SHA-256 / HMAC batch lanes, the
// KeyRegistry batch memo, the batched USIG verifier, and — the property
// everything above exists to preserve — fingerprint identity between
// serial and threaded verification across full protocol sweeps.
//
// The determinism contract (DESIGN.md §12): verify_threads is a pure
// wall-clock knob. Work closures are pure and write only preassigned
// slots; everything order-sensitive runs on the submitting thread in
// submission order. These tests would catch any violation either directly
// (release-order property) or end-to-end (fingerprint sweep).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "agreement/usig_directory.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "crypto/verify_runner.h"
#include "explore/scenario.h"
#include "sim/rng.h"

namespace unidir {
namespace {

using crypto::Digest;
using crypto::HmacJob;
using crypto::HmacKey;
using crypto::KeyRegistry;
using crypto::Sha256;
using crypto::ShaJob;
using crypto::Signature;
using crypto::VerifyJob;
using crypto::VerifyRunner;

Bytes random_bytes(sim::Rng& rng, std::size_t len) {
  Bytes b(len);
  for (auto& c : b) c = static_cast<std::uint8_t>(rng.below(256));
  return b;
}

// ---- ordered release -------------------------------------------------------

TEST(VerifyRunner, ReleasesInSubmissionOrderDespiteOutOfOrderWork) {
  VerifyRunner runner(4);
  ASSERT_EQ(runner.threads(), 4u);
  std::vector<int> released;
  std::atomic<int> work_done{0};
  constexpr int kTasks = 32;
  for (int i = 0; i < kTasks; ++i) {
    // Earlier submissions sleep longer, so workers finish roughly in
    // reverse submission order — the adversarial schedule for a runner
    // that promises ordered release.
    const auto nap = std::chrono::microseconds((kTasks - i) * 50);
    runner.submit(
        [nap, &work_done] {
          std::this_thread::sleep_for(nap);
          work_done.fetch_add(1, std::memory_order_relaxed);
        },
        [i, &released] { released.push_back(i); });
  }
  runner.flush();
  EXPECT_EQ(work_done.load(), kTasks);
  ASSERT_EQ(released.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(released[static_cast<std::size_t>(i)], i);
}

TEST(VerifyRunner, SerialModeRunsInlineAndCountsTheSame) {
  // threads = 1: no pool, submit() runs work immediately, flush() runs the
  // releases. The stats must match what a pool would report.
  VerifyRunner runner(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    runner.submit([i, &order] { order.push_back(i); },
                  [i, &order] { order.push_back(100 + i); });
  runner.flush();
  // All work ran before any release (work inline at submit, releases at
  // flush), both in submission order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 100, 101, 102, 103, 104}));
  const VerifyRunner::Stats s = runner.stats();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.released, 5u);
  EXPECT_EQ(s.flushes, 1u);
  EXPECT_EQ(s.max_queue_depth, 5u);
}

TEST(VerifyRunner, StatsCountSubmissionsNotWorkerProgress) {
  // Identical submission sequences must yield identical stats regardless
  // of thread count — the snapshot-determinism requirement.
  auto drive = [](std::size_t threads) {
    VerifyRunner runner(threads);
    for (int epoch = 0; epoch < 3; ++epoch) {
      for (int i = 0; i < 7; ++i) runner.submit([] {});
      runner.flush();
    }
    return runner.stats();
  };
  const VerifyRunner::Stats a = drive(1);
  const VerifyRunner::Stats b = drive(4);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.released, b.released);
  EXPECT_EQ(a.flushes, b.flushes);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
}

// ---- multi-buffer hash lanes ----------------------------------------------

TEST(ShaBatch, BitIdenticalToSerialAcrossSizesAndResume) {
  sim::Rng rng(42);
  std::vector<Bytes> msgs;
  // Block-boundary and padding-seam sizes, then a randomized spread.
  for (std::size_t len : {0u, 1u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u,
                          127u, 128u, 129u, 200u, 1000u})
    msgs.push_back(random_bytes(rng, len));
  for (int rep = 0; rep < 50; ++rep)
    msgs.push_back(random_bytes(rng, rng.below(300)));

  std::vector<ShaJob> jobs(msgs.size());
  std::vector<Digest> out(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i)
    jobs[i] = ShaJob{nullptr, ByteSpan(msgs[i].data(), msgs[i].size()),
                     &out[i]};
  Sha256::hash_batch(jobs.data(), jobs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i)
    EXPECT_EQ(out[i], Sha256::hash(ByteSpan(msgs[i].data(), msgs[i].size())))
        << "message " << i << " (len " << msgs[i].size() << ")";
}

TEST(ShaBatch, ResumesHmacMidstatesBitIdentically) {
  sim::Rng rng(7);
  const Bytes key = random_bytes(rng, 32);
  HmacKey hk{ByteSpan(key.data(), key.size())};
  std::vector<Bytes> msgs;
  for (int rep = 0; rep < 40; ++rep)
    msgs.push_back(random_bytes(rng, rng.below(200)));
  std::vector<HmacJob> jobs(msgs.size());
  std::vector<Digest> out(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i)
    jobs[i] = HmacJob{&hk, ByteSpan(msgs[i].data(), msgs[i].size()), &out[i]};
  crypto::hmac_sha256_batch(jobs.data(), jobs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i)
    EXPECT_EQ(out[i], hk.mac(ByteSpan(msgs[i].data(), msgs[i].size())))
        << "message " << i;
}

TEST(ShaBatch, ReportsAtLeastTheFallbackLaneCount) {
  EXPECT_GE(Sha256::batch_lanes(), 2u);
}

// ---- registry batch + memo -------------------------------------------------

TEST(VerifyBatch, MatchesSerialVerdictsIncludingForgeries) {
  KeyRegistry keys;
  crypto::Signer s1 = keys.generate_key();
  crypto::Signer s2 = keys.generate_key();
  sim::Rng rng(3);

  std::vector<Bytes> msgs;
  std::vector<Signature> sigs;
  for (int i = 0; i < 24; ++i) {
    msgs.push_back(random_bytes(rng, 40 + rng.below(60)));
    sigs.push_back((i % 2 ? s2 : s1).sign(ByteSpan(msgs.back().data(),
                                                   msgs.back().size())));
  }
  // Forge a few: wrong key id, flipped mac byte.
  sigs[3].key = 999;                       // unknown key
  sigs[5].mac[0] ^= 0x01;                  // corrupted mac
  std::swap(sigs[7], sigs[8]);             // right key, wrong message

  std::vector<VerifyJob> jobs(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i)
    jobs[i] = VerifyJob{&sigs[i], ByteSpan(msgs[i].data(), msgs[i].size()),
                        false};
  keys.verify_batch(jobs.data(), jobs.size());

  for (std::size_t i = 0; i < msgs.size(); ++i)
    EXPECT_EQ(jobs[i].ok,
              keys.verify(sigs[i], ByteSpan(msgs[i].data(), msgs[i].size())))
        << "job " << i;
  EXPECT_TRUE(jobs[0].ok);
  EXPECT_FALSE(jobs[3].ok);
  EXPECT_FALSE(jobs[5].ok);
  EXPECT_FALSE(jobs[7].ok);
  EXPECT_FALSE(jobs[8].ok);
}

TEST(VerifyBatch, MemoDedupesWithinAndAcrossBatches) {
  KeyRegistry keys;
  crypto::Signer signer = keys.generate_key();
  const Bytes msg = bytes_of("the same message, many times");
  const Signature sig = signer.sign(ByteSpan(msg.data(), msg.size()));

  // Signing already computed (and memoized) one MAC.
  const std::uint64_t macs_after_sign = keys.verify_stats().macs;

  std::vector<VerifyJob> jobs(8);
  for (auto& j : jobs)
    j = VerifyJob{&sig, ByteSpan(msg.data(), msg.size()), false};
  keys.verify_batch(jobs.data(), jobs.size());
  for (const auto& j : jobs) EXPECT_TRUE(j.ok);
  // All eight hit the memo entry installed by sign(): zero new MACs.
  EXPECT_EQ(keys.verify_stats().macs, macs_after_sign);
  EXPECT_EQ(keys.verify_stats().memo_hits, 8u);

  // A second batch is pure memo too.
  keys.verify_batch(jobs.data(), jobs.size());
  EXPECT_EQ(keys.verify_stats().macs, macs_after_sign);
  EXPECT_EQ(keys.verify_stats().memo_hits, 16u);
}

TEST(VerifyBatch, IntraBatchDuplicatesComputeTheMacOnce) {
  // Key material derives deterministically from the registry's internal
  // seed stream, so a twin registry produces signatures this one can
  // verify — without sign() having planted a memo entry here. The batch
  // then sees six memo *misses* for one message: the first computes the
  // MAC, the other five dedup inside the batch.
  KeyRegistry verifier;
  KeyRegistry twin;
  (void)verifier.generate_key();
  crypto::Signer signer = twin.generate_key();
  const Bytes msg = bytes_of("fresh batch-duplicated message");
  const Signature sig = signer.sign(ByteSpan(msg.data(), msg.size()));

  const std::uint64_t macs_before = verifier.verify_stats().macs;
  std::vector<VerifyJob> jobs(6);
  for (auto& j : jobs)
    j = VerifyJob{&sig, ByteSpan(msg.data(), msg.size()), false};
  verifier.verify_batch(jobs.data(), jobs.size());
  for (const auto& j : jobs) EXPECT_TRUE(j.ok);
  EXPECT_EQ(verifier.verify_stats().macs, macs_before + 1);
  // The dedup hits are counted as memo hits — what the serial loop would
  // have reported, since job 1's install precedes job 2's lookup there.
  EXPECT_EQ(verifier.verify_stats().memo_hits, 5u);
}

// ---- batched USIG verification ---------------------------------------------

TEST(UsigBatch, MatchesSerialVerifyIncludingTamperedJobs) {
  crypto::KeyRegistry keys;
  agreement::SgxUsigDirectory usigs(keys);
  std::vector<Bytes> msgs;
  std::vector<trusted::UniqueIdentifier> uis;
  for (int i = 0; i < 8; ++i) {
    msgs.push_back(bytes_of("usig message " + std::to_string(i)));
    uis.push_back(usigs.create_ui(static_cast<ProcessId>(i % 3),
                                  msgs.back()));
  }
  // Tamper: wrong message for UI 2, forged digest for UI 4, wrong device
  // for UI 6, unknown device for UI 7.
  std::vector<agreement::UsigVerifyJob> jobs(msgs.size());
  const Bytes wrong = bytes_of("substituted");
  for (std::size_t i = 0; i < msgs.size(); ++i)
    jobs[i] = agreement::UsigVerifyJob{static_cast<ProcessId>(i % 3),
                                       &uis[i], &msgs[i], false};
  jobs[2].message = &wrong;
  uis[4].digest[0] ^= 0xFF;
  jobs[6].p = static_cast<ProcessId>((6 % 3) + 1);  // someone else's device
  jobs[7].p = 42;                                   // no such device

  usigs.verify_batch(jobs.data(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(jobs[i].ok, usigs.verify(jobs[i].p, *jobs[i].ui,
                                       *jobs[i].message))
        << "job " << i;
  EXPECT_TRUE(jobs[0].ok);
  EXPECT_FALSE(jobs[2].ok);
  EXPECT_FALSE(jobs[4].ok);
  EXPECT_FALSE(jobs[6].ok);
  EXPECT_FALSE(jobs[7].ok);
}

TEST(UsigBatch, DefaultDirectoryImplementationIsTheSerialLoop) {
  // TrincUsigDirectory does not override verify_batch; the base-class
  // default must agree with per-job verify().
  crypto::KeyRegistry keys;
  agreement::TrincUsigDirectory usigs(keys);
  const Bytes m0 = bytes_of("trinc message 0");
  const Bytes m1 = bytes_of("trinc message 1");
  const auto ui0 = usigs.create_ui(0, m0);
  const auto ui1 = usigs.create_ui(1, m1);
  agreement::UsigVerifyJob jobs[3] = {
      {0, &ui0, &m0, false},
      {1, &ui1, &m1, false},
      {1, &ui0, &m0, false},  // wrong device for this UI
  };
  usigs.verify_batch(jobs, 3);
  EXPECT_TRUE(jobs[0].ok);
  EXPECT_TRUE(jobs[1].ok);
  EXPECT_FALSE(jobs[2].ok);
}

// ---- end-to-end: serial vs threaded fingerprint identity -------------------

TEST(VerifyThreads, FingerprintIdenticalAcrossThreadCountsFullSweep) {
  // The whole PR's contract in one sweep: for 25 seeds per protocol, a
  // batched scenario (the verification-heaviest configuration) produces a
  // byte-identical fingerprint and identical signature counters whether
  // verification runs inline or on a 4-thread pool.
  const explore::InvariantRegistry reg =
      explore::InvariantRegistry::standard_smr();
  constexpr std::uint64_t kSeeds = 25;
  for (const auto protocol :
       {explore::ProtocolKind::MinBft, explore::ProtocolKind::Pbft}) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      explore::ScenarioSpec spec = explore::ScenarioSpec::materialize_batched(
          protocol, explore::AdversaryKind::RandomDelay, seed);
      explore::ScenarioSpec threaded = spec;
      threaded.verify_threads = 4;

      const explore::RunOutcome serial = explore::run_scenario(spec, reg);
      const explore::RunOutcome parallel =
          explore::run_scenario(threaded, reg);

      ASSERT_FALSE(serial.violation.has_value()) << spec.describe();
      ASSERT_FALSE(parallel.violation.has_value()) << threaded.describe();
      EXPECT_EQ(serial.fingerprint, parallel.fingerprint)
          << "seed " << seed << ": " << spec.describe();
      EXPECT_EQ(serial.completed, parallel.completed);
      EXPECT_EQ(serial.final_time, parallel.final_time);
      // Verification counters are part of the determinism contract: the
      // pool must not change what was verified, memoized, or computed.
      EXPECT_EQ(serial.sig.verifies, parallel.sig.verifies);
      EXPECT_EQ(serial.sig.memo_hits, parallel.sig.memo_hits);
      EXPECT_EQ(serial.sig.macs, parallel.sig.macs);
      EXPECT_EQ(serial.sig.batches, parallel.sig.batches);
      EXPECT_EQ(serial.sig.batch_jobs, parallel.sig.batch_jobs);
    }
  }
}

TEST(VerifyThreads, SpecFieldRoundTripsAndValidates) {
  explore::ScenarioSpec spec = explore::ScenarioSpec::materialize(
      explore::ProtocolKind::MinBft, explore::AdversaryKind::Immediate, 5);
  spec.verify_threads = 4;
  const explore::ScenarioSpec back =
      explore::ScenarioSpec::from_hex(spec.to_hex());
  EXPECT_EQ(back, spec);
  EXPECT_NE(spec.describe().find("vthreads=4"), std::string::npos);
  // Default stays out of describe().
  spec.verify_threads = 1;
  EXPECT_EQ(spec.describe().find("vthreads"), std::string::npos);
  // Decode rejects absurd pool sizes.
  spec.verify_threads = 100'000;
  EXPECT_THROW((void)explore::ScenarioSpec::from_hex(spec.to_hex()),
               serde::DecodeError);
}

TEST(VerifyThreads, RunnerMetricsPublishedOnlyWhenPoolExists) {
  const explore::InvariantRegistry reg =
      explore::InvariantRegistry::standard_smr();
  explore::ScenarioSpec spec = explore::ScenarioSpec::materialize_batched(
      explore::ProtocolKind::MinBft, explore::AdversaryKind::Immediate, 2);
  const explore::RunOutcome serial = explore::run_scenario(spec, reg);
  EXPECT_EQ(serial.metrics.counters.count("runner.submitted"), 0u);

  spec.verify_threads = 2;
  const explore::RunOutcome threaded = explore::run_scenario(spec, reg);
  EXPECT_EQ(threaded.metrics.counters.count("runner.submitted"), 1u);
  EXPECT_EQ(threaded.metrics.counter_or("runner.released", 0),
            threaded.metrics.counter_or("runner.submitted", 0));
}

}  // namespace
}  // namespace unidir
