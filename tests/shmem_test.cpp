#include <gtest/gtest.h>

#include "shmem/acl.h"
#include "shmem/memory_host.h"
#include "shmem/registers.h"
#include "sim/adversaries.h"
#include "sim/world.h"

namespace unidir::shmem {
namespace {

// ---- ACL -------------------------------------------------------------------

TEST(Acl, DeniesByDefault) {
  AccessControlList acl;
  EXPECT_FALSE(acl.allowed("write", 0));
  EXPECT_FALSE(acl.allowed("read", 0));
}

TEST(Acl, SingleGrant) {
  AccessControlList acl;
  acl.allow("write", 3);
  EXPECT_TRUE(acl.allowed("write", 3));
  EXPECT_FALSE(acl.allowed("write", 4));
  EXPECT_FALSE(acl.allowed("read", 3));
}

TEST(Acl, Wildcard) {
  AccessControlList acl;
  acl.allow_all("read");
  EXPECT_TRUE(acl.allowed("read", 0));
  EXPECT_TRUE(acl.allowed("read", 999));
}

TEST(Acl, Revoke) {
  AccessControlList acl;
  acl.allow("write", 3);
  acl.revoke("write", 3);
  EXPECT_FALSE(acl.allowed("write", 3));
}

TEST(Acl, SwmrFactory) {
  const AccessControlList acl = AccessControlList::swmr(2);
  EXPECT_TRUE(acl.allowed("write", 2));
  EXPECT_FALSE(acl.allowed("write", 1));
  EXPECT_TRUE(acl.allowed("read", 0));
  EXPECT_TRUE(acl.allowed("read", 7));
}

// ---- SWMR register ----------------------------------------------------------

TEST(SwmrRegister, OwnerWritesEveryoneReads) {
  SwmrRegister<int> reg(/*owner=*/1, /*initial=*/0);
  EXPECT_EQ(reg.write(1, 42), WriteStatus::Ok);
  EXPECT_EQ(reg.read(0), 42);
  EXPECT_EQ(reg.read(5), 42);
}

TEST(SwmrRegister, NonOwnerWriteDenied) {
  SwmrRegister<int> reg(1, 7);
  EXPECT_EQ(reg.write(2, 99), WriteStatus::AccessDenied);
  EXPECT_EQ(reg.read(0), 7);
  EXPECT_EQ(reg.version(), 0u);
}

TEST(SwmrRegister, OverwritesAllowed) {
  SwmrRegister<int> reg(0, 0);
  EXPECT_EQ(reg.write(0, 1), WriteStatus::Ok);
  EXPECT_EQ(reg.write(0, 2), WriteStatus::Ok);
  EXPECT_EQ(reg.read(1), 2);
  EXPECT_EQ(reg.version(), 2u);
}

// ---- SWMR log ----------------------------------------------------------------

TEST(SwmrLog, AppendAndRead) {
  SwmrLog<std::string> log(0);
  EXPECT_EQ(log.append(0, "a"), WriteStatus::Ok);
  EXPECT_EQ(log.append(0, "b"), WriteStatus::Ok);
  EXPECT_EQ(log.read(3), (std::vector<std::string>{"a", "b"}));
}

TEST(SwmrLog, NonOwnerAppendDenied) {
  SwmrLog<std::string> log(0);
  EXPECT_EQ(log.append(1, "evil"), WriteStatus::AccessDenied);
  EXPECT_TRUE(log.read(0).empty());
}

TEST(SwmrLog, ReadFromIndex) {
  SwmrLog<int> log(0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(log.append(0, i), WriteStatus::Ok);
  EXPECT_EQ(log.read_from(1, 3), (std::vector<int>{3, 4}));
  EXPECT_TRUE(log.read_from(1, 5).empty());
  EXPECT_TRUE(log.read_from(1, 100).empty());
}

// ---- Sticky register ----------------------------------------------------------

TEST(StickyRegister, FirstWriteWins) {
  StickyRegister<int> sticky;
  EXPECT_FALSE(sticky.set());
  EXPECT_EQ(sticky.write(0, 5), WriteStatus::Ok);
  EXPECT_EQ(sticky.write(1, 9), WriteStatus::AlreadySet);
  EXPECT_EQ(sticky.read(2), std::optional<int>{5});
  EXPECT_TRUE(sticky.set());
}

TEST(StickyRegister, SameValueRewriteStillRejected) {
  StickyRegister<int> sticky;
  EXPECT_EQ(sticky.write(0, 5), WriteStatus::Ok);
  EXPECT_EQ(sticky.write(0, 5), WriteStatus::AlreadySet);
}

TEST(StickyRegister, AclRestrictsWriters) {
  AccessControlList acl;
  acl.allow("write", 1);
  acl.allow_all("read");
  StickyRegister<int> sticky(acl);
  EXPECT_EQ(sticky.write(0, 5), WriteStatus::AccessDenied);
  EXPECT_FALSE(sticky.set());
  EXPECT_EQ(sticky.write(1, 7), WriteStatus::Ok);
  EXPECT_EQ(sticky.read(0), std::optional<int>{7});
}

TEST(StickyBitAlias, BehavesAsWriteOnceBool) {
  StickyBit bit;
  EXPECT_EQ(bit.read(0), std::optional<bool>{});
  EXPECT_EQ(bit.write(3, true), WriteStatus::Ok);
  EXPECT_EQ(bit.write(4, false), WriteStatus::AlreadySet);
  EXPECT_EQ(bit.read(0), std::optional<bool>{true});
}

// ---- MemoryHost ----------------------------------------------------------------

TEST(MemoryHost, InvocationLinearizesThenResponds) {
  sim::Simulator simulator;
  MemoryHost host(simulator, sim::Rng(1));
  SwmrRegister<int> reg(0, 0);

  int observed = -1;
  host.invoke<WriteStatus>(
      0, [&] { return reg.write(0, 10); },
      [&](WriteStatus s) {
        EXPECT_EQ(s, WriteStatus::Ok);
        host.invoke<int>(
            0, [&] { return reg.read(0); }, [&](int v) { observed = v; });
      });
  simulator.run();
  EXPECT_EQ(observed, 10);
}

TEST(MemoryHost, OperationsAreAtomic) {
  // Many concurrent increments through read-modify-write *as a single op*
  // must not lose updates (each closure runs atomically at linearization).
  sim::Simulator simulator;
  MemoryHost host(simulator, sim::Rng(7));
  int counter = 0;
  for (int i = 0; i < 100; ++i) {
    host.invoke<int>(0, [&] { return ++counter; }, [](int) {});
  }
  simulator.run();
  EXPECT_EQ(counter, 100);
}

TEST(MemoryHost, ResponsesToCrashedCallersDropped) {
  sim::Simulator simulator;
  MemoryHost host(simulator, sim::Rng(3));
  bool crashed = false;
  host.set_crashed([&](ProcessId) { return crashed; });
  int responses = 0;
  host.invoke<int>(0, [] { return 1; }, [&](int) { ++responses; });
  crashed = true;  // crash before any event runs
  simulator.run();
  EXPECT_EQ(responses, 0);
  EXPECT_EQ(host.invocations(), 1u);
  EXPECT_EQ(host.responses(), 0u);
}

TEST(MemoryHost, AdversaryOrdersConcurrentOps) {
  // Two writers invoke concurrently; with different seeds the linearization
  // order differs — the adversary really controls ordering.
  auto final_value = [](std::uint64_t seed) {
    sim::Simulator simulator;
    MemoryHost host(simulator, sim::Rng(seed), {.max_to_linearize = 10});
    SwmrRegister<int> reg(0, 0);
    // Both writes legal (owner writes twice, values 1 then 2, invoked
    // concurrently).
    host.invoke<WriteStatus>(0, [&] { return reg.write(0, 1); },
                             [](WriteStatus) {});
    host.invoke<WriteStatus>(0, [&] { return reg.write(0, 2); },
                             [](WriteStatus) {});
    simulator.run();
    return reg.read(1);
  };
  bool saw_one = false;
  bool saw_two = false;
  for (std::uint64_t seed = 0; seed < 64 && !(saw_one && saw_two); ++seed) {
    const int v = final_value(seed);
    saw_one |= (v == 1);
    saw_two |= (v == 2);
  }
  EXPECT_TRUE(saw_one);
  EXPECT_TRUE(saw_two);
}

TEST(MemoryHost, DelaysRespectBounds) {
  sim::Simulator simulator;
  MemoryHost host(simulator, sim::Rng(9),
                  {.max_to_linearize = 4, .max_to_respond = 5});
  Time responded_at = 0;
  host.invoke<int>(0, [] { return 0; },
                   [&](int) { responded_at = simulator.now(); });
  simulator.run();
  EXPECT_GE(responded_at, 2u);  // 1 + 1 minimum
  EXPECT_LE(responded_at, 9u);  // 4 + 5 maximum
}

}  // namespace
}  // namespace unidir::shmem
