// Cross-cutting robustness properties: replay attacks, whole-system
// determinism, and decoder hardening against arbitrary bytes.
#include <gtest/gtest.h>

#include "agreement/minbft.h"
#include "agreement/state_machines.h"
#include "broadcast/bracha.h"
#include "broadcast/srb_from_uni.h"
#include "broadcast/srb_hub.h"
#include "common/log.h"
#include "sim/adversaries.h"
#include "test_util.h"
#include "trusted/a2m.h"
#include "trusted/trinc.h"

namespace unidir {
namespace {

using testutil::Node;

constexpr sim::Channel kCh = 35;

/// Captures every payload it receives on a channel and re-broadcasts each
/// one verbatim (now originating from itself) — the classic replay attack.
class Replayer final : public sim::Process {
 public:
  explicit Replayer(sim::Channel channel) {
    register_channel(channel, [this, channel](ProcessId, const Bytes& payload) {
      if (replayed_ > 200) return;  // bound the noise
      ++replayed_;
      broadcast(channel, payload);
    });
  }

 private:
  int replayed_ = 0;
};

TEST(Replay, SrbHubCopiesAreHarmlesslyIdempotent) {
  // Replayed hub-signed copies are genuine, so they may arrive again —
  // sequencing and duplicate suppression must keep deliveries exactly-once.
  sim::World w(3, std::make_unique<sim::RandomDelayAdversary>(1, 10));
  broadcast::SrbHub hub(w, kCh);
  std::vector<std::unique_ptr<broadcast::SrbHubEndpoint>> eps;
  for (int i = 0; i < 3; ++i)
    eps.push_back(hub.make_endpoint(w.spawn<Node>()));
  auto& attacker = w.spawn<Replayer>(kCh);
  w.mark_byzantine(attacker.id());
  w.start();
  for (int k = 0; k < 5; ++k)
    eps[0]->broadcast(bytes_of("m" + std::to_string(k)));
  w.run_to_quiescence();
  for (auto& ep : eps) {
    EXPECT_EQ(ep->delivered().size(), 5u);
    EXPECT_EQ(ep->delivered_up_to(0), 5u);
  }
}

TEST(Replay, MinBftExecutesExactlyOnceUnderProtocolReplay) {
  sim::World w(5, std::make_unique<sim::RandomDelayAdversary>(1, 8));
  agreement::SgxUsigDirectory usigs(w.keys());
  agreement::MinBftReplica::Options options;
  options.f = 1;
  options.replicas = {0, 1, 2};
  std::vector<agreement::MinBftReplica*> replicas;
  for (int i = 0; i < 3; ++i)
    replicas.push_back(&w.spawn<agreement::MinBftReplica>(
        options, usigs, std::make_unique<agreement::KvStateMachine>()));
  auto& attacker = w.spawn<Replayer>(agreement::kMinBftCh);
  w.mark_byzantine(attacker.id());
  agreement::SmrClient::Options copt;
  copt.replicas = options.replicas;
  copt.f = 1;
  auto& client = w.spawn<agreement::SmrClient>(copt);
  for (int k = 0; k < 4; ++k)
    client.submit(agreement::KvStateMachine::put_op("k" + std::to_string(k),
                                                    "v"));
  w.start();
  w.run_to_quiescence();
  EXPECT_EQ(client.completed(), 4u);
  for (auto* r : replicas) EXPECT_EQ(r->executed_count(), 4u);
}

TEST(Replay, BrachaUnaffectedByEchoReplay) {
  sim::World w(9, std::make_unique<sim::RandomDelayAdversary>(1, 8));
  std::vector<std::unique_ptr<broadcast::BrachaEndpoint>> eps;
  for (int i = 0; i < 4; ++i)
    eps.push_back(std::make_unique<broadcast::BrachaEndpoint>(
        w.spawn<Node>(), kCh, 5, 1));
  auto& attacker = w.spawn<Replayer>(kCh);
  w.mark_byzantine(attacker.id());
  w.start();
  eps[0]->broadcast(bytes_of("once"));
  w.run_to_quiescence();
  for (auto& ep : eps) {
    ASSERT_EQ(ep->delivered().size(), 1u);
    EXPECT_EQ(ep->delivered()[0].message, bytes_of("once"));
  }
}

// ---- duplicating network (at-least-once delivery) --------------------------------

TEST(Duplication, SrbHubStaysExactlyOnce) {
  sim::World w(5, std::make_unique<sim::DuplicatingAdversary>(4, 10));
  broadcast::SrbHub hub(w, kCh);
  std::vector<std::unique_ptr<broadcast::SrbHubEndpoint>> eps;
  for (int i = 0; i < 3; ++i)
    eps.push_back(hub.make_endpoint(w.spawn<Node>()));
  w.start();
  for (int k = 0; k < 8; ++k)
    eps[1]->broadcast(bytes_of("m" + std::to_string(k)));
  w.run_to_quiescence();
  EXPECT_GT(w.network().stats().messages_duplicated, 0u);
  for (auto& ep : eps) EXPECT_EQ(ep->delivered().size(), 8u);
}

TEST(Duplication, BrachaStaysExactlyOnce) {
  sim::World w(5, std::make_unique<sim::DuplicatingAdversary>(3, 8));
  std::vector<std::unique_ptr<broadcast::BrachaEndpoint>> eps;
  for (int i = 0; i < 4; ++i)
    eps.push_back(std::make_unique<broadcast::BrachaEndpoint>(
        w.spawn<Node>(), kCh, 4, 1));
  w.start();
  eps[0]->broadcast(bytes_of("only once"));
  w.run_to_quiescence();
  for (auto& ep : eps) EXPECT_EQ(ep->delivered().size(), 1u);
}

TEST(Duplication, MinBftStaysExactlyOnceAndConsistent) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::World w(seed, std::make_unique<sim::DuplicatingAdversary>(3, 8));
    agreement::SgxUsigDirectory usigs(w.keys());
    agreement::MinBftReplica::Options options;
    options.f = 1;
    options.replicas = {0, 1, 2};
    std::vector<agreement::MinBftReplica*> replicas;
    for (int i = 0; i < 3; ++i)
      replicas.push_back(&w.spawn<agreement::MinBftReplica>(
          options, usigs, std::make_unique<agreement::KvStateMachine>()));
    agreement::SmrClient::Options copt;
    copt.replicas = options.replicas;
    copt.f = 1;
    auto& client = w.spawn<agreement::SmrClient>(copt);
    for (int k = 0; k < 4; ++k)
      client.submit(
          agreement::KvStateMachine::put_op("k" + std::to_string(k), "v"));
    w.start();
    w.run_to_quiescence();
    EXPECT_EQ(client.completed(), 4u) << "seed " << seed;
    std::vector<std::pair<ProcessId,
                          const agreement::ExecutionLog*>>
        logs;
    for (auto* r : replicas) {
      EXPECT_EQ(r->executed_count(), 4u) << "seed " << seed;
      logs.emplace_back(r->id(), &r->execution_log());
    }
    EXPECT_FALSE(
        agreement::check_execution_consistency(logs).has_value());
  }
}

// ---- whole-system determinism ----------------------------------------------------

std::vector<Bytes> run_minbft_digest(std::uint64_t seed) {
  sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, 12));
  agreement::SgxUsigDirectory usigs(w.keys());
  agreement::MinBftReplica::Options options;
  options.f = 1;
  options.replicas = {0, 1, 2};
  std::vector<agreement::MinBftReplica*> replicas;
  for (int i = 0; i < 3; ++i)
    replicas.push_back(&w.spawn<agreement::MinBftReplica>(
        options, usigs, std::make_unique<agreement::KvStateMachine>()));
  agreement::SmrClient::Options copt;
  copt.replicas = options.replicas;
  copt.f = 1;
  auto& client = w.spawn<agreement::SmrClient>(copt);
  for (int k = 0; k < 6; ++k)
    client.submit(agreement::KvStateMachine::put_op("k" + std::to_string(k),
                                                    "v" + std::to_string(k)));
  w.start();
  w.run_until([&] { return client.completed() >= 2; });
  w.crash(0);  // include a fault + view change in the determinism check
  w.run_to_quiescence();

  // Fingerprint: every process's full transcript.
  std::vector<Bytes> fingerprint;
  for (ProcessId p = 0; p < w.size(); ++p) {
    serde::Writer enc;
    for (const auto& ev : w.transcript(p).events()) {
      enc.u8(static_cast<std::uint8_t>(ev.kind));
      enc.uvarint(ev.from == kNoProcess ? 0 : ev.from + 1);
      enc.uvarint(ev.channel);
      enc.str(ev.tag);
      enc.bytes(ev.payload);
    }
    fingerprint.push_back(enc.take());
  }
  return fingerprint;
}

TEST(Determinism, FullMinBftRunReplaysBitIdentically) {
  EXPECT_EQ(run_minbft_digest(404), run_minbft_digest(404));
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(run_minbft_digest(404), run_minbft_digest(405));
}

// ---- decoder hardening -----------------------------------------------------------

TEST(FuzzDecode, ArbitraryBytesNeverCrashTheDecoders) {
  // Feed pseudo-random byte strings to every wire decoder; each must
  // either parse or throw DecodeError — nothing else.
  sim::Rng rng(20260706);
  for (int round = 0; round < 2000; ++round) {
    Bytes junk(rng.below(60), 0);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));

    auto try_decode = [&](auto tag) {
      using T = decltype(tag);
      try {
        (void)serde::decode<T>(junk);
      } catch (const serde::DecodeError&) {
        // expected for most inputs
      }
    };
    try_decode(crypto::Signature{});
    try_decode(trusted::TrincAttestation{});
    try_decode(trusted::A2mAttestation{});
    try_decode(broadcast::SignedVal{});
    try_decode(broadcast::L1Proof{});
    try_decode(broadcast::L2Proof{});
    try_decode(broadcast::UniSlotPayload{});
    try_decode(agreement::Command{});
    try_decode(agreement::Reply{});
  }
}

TEST(FuzzDecode, MutatedValidMessagesNeverCrash) {
  // Take a valid encoded proof and flip bytes — decoders must stay total.
  sim::World w(1, std::make_unique<sim::ImmediateAdversary>());
  auto& node = w.spawn<Node>();
  broadcast::SignedVal val;
  val.sender = node.id();
  val.seq = 3;
  val.msg = bytes_of("payload");
  val.sender_sig = node.signer().sign(val.signing_bytes());
  const Bytes good = serde::encode(val);

  sim::Rng rng(99);
  for (int round = 0; round < 500; ++round) {
    Bytes mutated = good;
    const std::size_t at = static_cast<std::size_t>(rng.below(mutated.size()));
    mutated[at] = static_cast<std::uint8_t>(rng.below(256));
    try {
      const auto parsed = serde::decode<broadcast::SignedVal>(mutated);
      // If it parses, a mutated signature/message must not verify as the
      // original value unless the mutation was a no-op.
      if (!(parsed.signing_bytes() == val.signing_bytes() &&
            parsed.sender_sig == val.sender_sig)) {
        EXPECT_TRUE(!broadcast::valid_signed_val(w, parsed) ||
                    mutated == good);
      }
    } catch (const serde::DecodeError&) {
    }
  }
}

// ---- logger -----------------------------------------------------------------------

TEST(Log, ThresholdFilters) {
  const auto saved = log::threshold();
  log::set_threshold(log::Level::Error);
  EXPECT_EQ(log::threshold(), log::Level::Error);
  UNIDIR_INFO("should be filtered (not crash)");
  UNIDIR_ERROR("visible line for coverage");
  log::set_threshold(saved);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log::level_name(log::Level::Trace), "TRACE");
  EXPECT_STREQ(log::level_name(log::Level::Warn), "WARN");
  EXPECT_STREQ(log::level_name(log::Level::Off), "OFF");
}

}  // namespace
}  // namespace unidir
