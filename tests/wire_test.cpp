// Unit tests for the typed wire layer: router registration, the hardened
// decode boundary (unknown tag / malformed body / trailing bytes / empty
// payload / peer filter — each dropped *counted*), and the encode-side
// stats of wire::send / broadcast / multicast.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/adversaries.h"
#include "sim/world.h"
#include "wire/channels.h"
#include "wire/router.h"

namespace unidir::wire {
namespace {

constexpr Channel kTestCh = 7;  // ad-hoc id < 50: private toy world

struct PingMsg {
  static constexpr MsgDesc kDesc{1, "wt-ping"};

  std::uint64_t value = 0;

  void encode(serde::Writer& w) const { w.uvarint(value); }
  static PingMsg decode(serde::Reader& r) { return {r.uvarint()}; }
};

struct PongMsg {
  static constexpr MsgDesc kDesc{2, "wt-pong"};

  Bytes note;

  void encode(serde::Writer& w) const { w.bytes(note); }
  static PongMsg decode(serde::Reader& r) { return {r.bytes()}; }
};

/// Same tag as PingMsg — registering both on one router must throw.
struct ClashMsg {
  static constexpr MsgDesc kDesc{1, "wt-clash"};

  void encode(serde::Writer&) const {}
  static ClashMsg decode(serde::Reader&) { return {}; }
};

/// Routes kTestCh; exposes raw sends so tests can inject Byzantine bytes.
class Peer final : public sim::Process {
 public:
  std::vector<std::uint64_t> pings;
  std::vector<Bytes> pongs;

  Peer() : router_(*this, kTestCh) {
    router_.on<PingMsg>(
        [this](ProcessId, PingMsg m) { pings.push_back(m.value); });
    router_.on<PongMsg>(
        [this](ProcessId, PongMsg m) { pongs.push_back(std::move(m.note)); });
  }

  Router& router() { return router_; }

  void send_ping(ProcessId to, std::uint64_t value) {
    router_.send(to, PingMsg{value});
  }
  void send_raw(ProcessId to, Bytes bytes) {
    send(to, kTestCh, std::move(bytes));
  }

 private:
  Router router_;
};

struct WireRouterTest : ::testing::Test {
  sim::World world{1, std::make_unique<sim::ImmediateAdversary>()};
  Peer& a = world.spawn<Peer>();
  Peer& b = world.spawn<Peer>();
  Peer& c = world.spawn<Peer>();

  void SetUp() override { world.start(); }

  const ChannelStats& stats() { return world.wire_stats().channel(kTestCh); }
};

TEST_F(WireRouterTest, TypedRoundTripCountsBothDirections) {
  a.send_ping(b.id(), 42);
  world.run_to_quiescence();

  ASSERT_EQ(b.pings, (std::vector<std::uint64_t>{42}));
  const ChannelStats& cs = stats();
  EXPECT_EQ(cs.sent, 1u);
  EXPECT_EQ(cs.received, 1u);
  EXPECT_GT(cs.bytes_sent, 0u);
  EXPECT_EQ(cs.bytes_sent, cs.bytes_received);
  EXPECT_EQ(cs.dropped_malformed, 0u);

  const auto it = cs.types.find(PingMsg::kDesc.tag);
  ASSERT_NE(it, cs.types.end());
  EXPECT_STREQ(it->second.name, "wt-ping");
  EXPECT_EQ(it->second.sent, 1u);
  EXPECT_EQ(it->second.received, 1u);
}

TEST_F(WireRouterTest, DuplicateTagRegistrationThrows) {
  EXPECT_THROW(
      a.router().on<ClashMsg>([](ProcessId, ClashMsg) {}),
      std::invalid_argument);
}

TEST_F(WireRouterTest, UnknownTagIsCountedNotSilent) {
  serde::Writer w;
  w.u8(99);  // no handler registered for this tag
  a.send_raw(b.id(), w.take());
  world.run_to_quiescence();

  EXPECT_EQ(stats().dropped_unknown_tag, 1u);
  EXPECT_TRUE(b.pings.empty());
  EXPECT_TRUE(b.pongs.empty());
}

TEST_F(WireRouterTest, EmptyPayloadIsMalformed) {
  a.send_raw(b.id(), Bytes{});
  world.run_to_quiescence();
  EXPECT_EQ(stats().dropped_malformed, 1u);
}

TEST_F(WireRouterTest, TruncatedBodyIsMalformedPerType) {
  Bytes bytes = encode_tagged(PongMsg{bytes_of("hello")});
  bytes.resize(bytes.size() - 3);  // cut into the body
  a.send_raw(b.id(), std::move(bytes));
  world.run_to_quiescence();

  const ChannelStats& cs = stats();
  EXPECT_EQ(cs.dropped_malformed, 1u);
  const auto it = cs.types.find(PongMsg::kDesc.tag);
  ASSERT_NE(it, cs.types.end());
  EXPECT_EQ(it->second.dropped_malformed, 1u);
  EXPECT_EQ(it->second.received, 0u);
  EXPECT_TRUE(b.pongs.empty());
}

TEST_F(WireRouterTest, TrailingBytesViolateExactConsume) {
  Bytes bytes = encode_tagged(PingMsg{7});
  bytes.push_back(0xAB);  // spliced suffix
  a.send_raw(b.id(), std::move(bytes));
  world.run_to_quiescence();

  EXPECT_EQ(stats().dropped_malformed, 1u);
  EXPECT_TRUE(b.pings.empty());
}

TEST_F(WireRouterTest, PeerFilterDropsAreCounted) {
  const ProcessId only = a.id();
  b.router().set_peer_filter([only](ProcessId p) { return p == only; });

  c.send_ping(b.id(), 1);
  a.send_ping(b.id(), 2);
  world.run_to_quiescence();

  EXPECT_EQ(b.pings, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(stats().dropped_filtered, 1u);
}

TEST_F(WireRouterTest, BroadcastAndMulticastShareStats) {
  wire::broadcast(a, kTestCh, PingMsg{5});                       // b and c
  wire::multicast(world, a.id(), {b.id(), c.id()}, kTestCh,
                  PongMsg{bytes_of("hi")});
  world.run_to_quiescence();

  const ChannelStats& cs = stats();
  EXPECT_EQ(cs.sent, 4u);
  EXPECT_EQ(cs.received, 4u);
  EXPECT_EQ(b.pings, (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(c.pings, (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(b.pongs.size(), 1u);
  EXPECT_EQ(c.pongs.size(), 1u);
}

TEST(WireDetachedRouter, HardensWithoutHub) {
  // Detached flavour with a null hub: the decode boundary still drops
  // malformed input, it just cannot account for it.
  Router router([]() -> StatsHub* { return nullptr; }, kTrincAttestCh);
  std::vector<std::uint64_t> got;
  router.on<PingMsg>([&](ProcessId, PingMsg m) { got.push_back(m.value); });

  router.dispatch(0, encode_tagged(PingMsg{11}));
  router.dispatch(0, Bytes{});  // malformed: no crash, no delivery
  serde::Writer w;
  w.u8(42);
  router.dispatch(0, w.take());  // unknown tag: dropped

  EXPECT_EQ(got, (std::vector<std::uint64_t>{11}));
}

TEST(WireDetachedRouter, CountsIntoSuppliedHub) {
  StatsHub hub;
  Router router([&hub]() { return &hub; }, kNoneqPayloadCh);
  router.on<PingMsg>([](ProcessId, PingMsg) {});

  router.dispatch(0, encode_tagged(PingMsg{3}));
  Bytes cut = encode_tagged(PingMsg{1'000'000});
  cut.resize(1);  // tag survives, body gone
  router.dispatch(0, std::move(cut));

  // Channel-level `received` counts arrivals at the boundary (including
  // ones later dropped); the per-type counter only counts full decodes.
  const ChannelStats& cs = hub.channel(kNoneqPayloadCh);
  EXPECT_EQ(cs.received, 2u);
  EXPECT_EQ(cs.dropped_malformed, 1u);
  const auto it = cs.types.find(PingMsg::kDesc.tag);
  ASSERT_NE(it, cs.types.end());
  EXPECT_EQ(it->second.received, 1u);
  EXPECT_EQ(it->second.dropped_malformed, 1u);
}

}  // namespace
}  // namespace unidir::wire
