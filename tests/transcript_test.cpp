#include <gtest/gtest.h>

#include "sim/adversaries.h"
#include "sim/world.h"

namespace unidir::sim {
namespace {

TEST(Transcript, RecordsMessagesInDeliveryOrder) {
  Transcript t;
  t.record_message(1, 0, bytes_of("a"));
  t.record_message(2, 0, bytes_of("b"));
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].from, 1u);
  EXPECT_EQ(t.events()[1].from, 2u);
}

TEST(Transcript, OutputsFilteredByTag) {
  Transcript t;
  t.record_output("deliver", bytes_of("x"));
  t.record_message(1, 0, bytes_of("a"));
  t.record_output("commit", bytes_of("y"));
  t.record_output("deliver", bytes_of("z"));
  const auto delivers = t.outputs("deliver");
  ASSERT_EQ(delivers.size(), 2u);
  EXPECT_EQ(delivers[0].payload, bytes_of("x"));
  EXPECT_EQ(delivers[1].payload, bytes_of("z"));
  EXPECT_EQ(t.outputs("commit").size(), 1u);
  EXPECT_TRUE(t.outputs("nothing").empty());
}

TEST(Transcript, IndistinguishabilityIsExactEquality) {
  Transcript a;
  Transcript b;
  a.record_message(1, 5, bytes_of("m"));
  b.record_message(1, 5, bytes_of("m"));
  EXPECT_TRUE(a.indistinguishable_from(b));
  EXPECT_EQ(a.first_divergence(b), -1);

  b.record_output("deliver", bytes_of("v"));
  EXPECT_FALSE(a.indistinguishable_from(b));
  EXPECT_EQ(a.first_divergence(b), 1);
}

TEST(Transcript, DivergenceDetectsDifferentSenders) {
  Transcript a;
  Transcript b;
  a.record_message(1, 0, bytes_of("m"));
  b.record_message(2, 0, bytes_of("m"));
  EXPECT_EQ(a.first_divergence(b), 0);
}

TEST(Transcript, DivergenceDetectsPayloadDifference) {
  Transcript a;
  Transcript b;
  a.record_message(1, 0, bytes_of("m"));
  a.record_message(1, 0, bytes_of("x"));
  b.record_message(1, 0, bytes_of("m"));
  b.record_message(1, 0, bytes_of("y"));
  EXPECT_EQ(a.first_divergence(b), 1);
}

TEST(Transcript, EmptyTranscriptsAreIndistinguishable) {
  Transcript a;
  Transcript b;
  EXPECT_TRUE(a.indistinguishable_from(b));
  EXPECT_EQ(a.first_divergence(b), -1);
}

TEST(Transcript, EmptyVersusNonEmptyDivergesAtZero) {
  Transcript a;
  Transcript b;
  b.record_message(1, 0, bytes_of("m"));
  EXPECT_FALSE(a.indistinguishable_from(b));
  EXPECT_EQ(a.first_divergence(b), 0);
  EXPECT_EQ(b.first_divergence(a), 0);  // symmetric
}

TEST(Transcript, DivergenceAtZeroOnEventKind) {
  // Same position, same payload — but one saw a message and the other
  // produced an output. Kind alone must distinguish them.
  Transcript a;
  Transcript b;
  a.record_message(1, 0, bytes_of("m"));
  b.record_output("deliver", bytes_of("m"));
  EXPECT_FALSE(a.indistinguishable_from(b));
  EXPECT_EQ(a.first_divergence(b), 0);
}

TEST(Transcript, TagOnlyDifferenceDistinguishes) {
  Transcript a;
  Transcript b;
  a.record_output("deliver", bytes_of("v"));
  b.record_output("commit", bytes_of("v"));
  EXPECT_FALSE(a.indistinguishable_from(b));
  EXPECT_EQ(a.first_divergence(b), 0);
}

TEST(Transcript, DescribeIsHumanReadable) {
  Transcript t;
  t.record_message(3, 9, bytes_of("hello"));
  t.record_output("deliver", bytes_of("v"));
  EXPECT_NE(t.events()[0].describe().find("recv"), std::string::npos);
  EXPECT_NE(t.events()[1].describe().find("deliver"), std::string::npos);
}

// End-to-end: identical worlds produce identical transcripts; a world where
// an extra message is delivered produces a distinguishable transcript.
constexpr Channel kData = 1;

class Sink final : public Process {
 protected:
  void on_message(ProcessId, Channel, const Bytes& payload) override {
    output("got", payload);
  }
};

class Pusher final : public Process {
 public:
  explicit Pusher(int count) : count_(count) {}

 protected:
  void on_start() override {
    for (int i = 0; i < count_; ++i)
      send(1, kData, bytes_of("m" + std::to_string(i)));
  }

 private:
  int count_;
};

TEST(Transcript, IdenticalExecutionsIndistinguishable) {
  auto run = [](int count) {
    auto w = std::make_unique<World>(5, std::make_unique<ImmediateAdversary>());
    w->spawn<Pusher>(count);
    w->spawn<Sink>();
    w->start();
    w->run_to_quiescence();
    return w;
  };
  auto w1 = run(3);
  auto w2 = run(3);
  auto w3 = run(4);
  EXPECT_TRUE(w1->transcript(1).indistinguishable_from(w2->transcript(1)));
  EXPECT_FALSE(w1->transcript(1).indistinguishable_from(w3->transcript(1)));
}

}  // namespace
}  // namespace unidir::sim
