// Experiment E6: very weak agreement from one unidirectional round
// (n > f), plus the negative control showing zero-directional rounds are
// NOT enough — the empirical content of the paper's claim that
// unidirectionality strictly helps.
#include <gtest/gtest.h>

#include "agreement/very_weak.h"
#include "rounds/msg_rounds.h"
#include "rounds/shmem_uni_round.h"
#include "sim/adversaries.h"
#include "test_util.h"

namespace unidir::agreement {
namespace {

using testutil::Node;

constexpr sim::Channel kRoundCh = 60;
constexpr Time kDelta = 4;

/// Hosts one agreement instance over a given driver.
class VwaNode final : public sim::Process {
 public:
  std::unique_ptr<rounds::RoundDriver> driver;
  std::unique_ptr<VeryWeakAgreement> vwa;
  Bytes input;

 protected:
  void on_start() override { vwa->run(input, nullptr); }
};

/// Agreement modulo ⊥: the set of non-⊥ committed values has size <= 1.
void expect_vwa_agreement(const std::vector<VwaNode*>& nodes,
                          const sim::World& w, const char* context) {
  std::set<Bytes> committed;
  for (const VwaNode* n : nodes) {
    if (!w.correct(n->id())) continue;
    ASSERT_TRUE(n->vwa->committed()) << context;
    if (n->vwa->value()) committed.insert(*n->vwa->value());
  }
  EXPECT_LE(committed.size(), 1u) << context;
}

TEST(VeryWeakAgreement, AllCorrectSameInputCommitsThatValue) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
    std::vector<VwaNode*> nodes;
    for (int i = 0; i < 4; ++i) {
      auto& n = w.spawn<VwaNode>();
      n.driver = std::make_unique<rounds::DeltaSyncRoundDriver>(n, kRoundCh,
                                                                2 * kDelta);
      n.vwa = std::make_unique<VeryWeakAgreement>(n, *n.driver);
      n.input = bytes_of("consensus!");
      nodes.push_back(&n);
    }
    w.start();
    w.run_to_quiescence();
    for (auto* n : nodes) {
      ASSERT_TRUE(n->vwa->committed());
      ASSERT_TRUE(n->vwa->value().has_value()) << "seed " << seed;
      EXPECT_EQ(*n->vwa->value(), bytes_of("consensus!"));
    }
  }
}

TEST(VeryWeakAgreement, MixedInputsAgreementModuloBot) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
    std::vector<VwaNode*> nodes;
    for (int i = 0; i < 5; ++i) {
      auto& n = w.spawn<VwaNode>();
      n.driver = std::make_unique<rounds::DeltaSyncRoundDriver>(n, kRoundCh,
                                                                2 * kDelta);
      n.vwa = std::make_unique<VeryWeakAgreement>(n, *n.driver);
      n.input = bytes_of(i < 3 ? "alpha" : "beta");
      nodes.push_back(&n);
    }
    w.start();
    w.run_to_quiescence();
    expect_vwa_agreement(nodes, w, "mixed inputs");
  }
}

TEST(VeryWeakAgreement, WorksOnSharedMemoryRounds) {
  sim::World w(3, std::make_unique<sim::ImmediateAdversary>());
  shmem::MemoryHost memory(w.simulator(), sim::Rng(4));
  rounds::ShmemRoundBoard board(3);
  std::vector<VwaNode*> nodes;
  for (std::size_t i = 0; i < 3; ++i) {
    auto& n = w.spawn<VwaNode>();
    n.driver = std::make_unique<rounds::ShmemUniRoundDriver>(
        memory, board, static_cast<ProcessId>(i));
    n.vwa = std::make_unique<VeryWeakAgreement>(n, *n.driver);
    n.input = bytes_of(i == 0 ? "x" : "y");
    nodes.push_back(&n);
  }
  w.start();
  w.run_to_quiescence();
  expect_vwa_agreement(nodes, w, "shmem rounds");
}

TEST(VeryWeakAgreement, EquivocatorCannotSplitNonBotCommits) {
  // n = f+1 with f=1: ONE Byzantine process sends "left" to one correct
  // process and "right" to the other by raw round messages. Each correct
  // process still receives the other's value (unidirectionality among the
  // correct), so at most one non-⊥ value survives.
  class Equivocator final : public sim::Process {
   public:
    void on_start() override {
      send(1, kRoundCh,
           wire::encode_tagged(rounds::RoundMsg{1, bytes_of("left")}));
      send(2, kRoundCh,
           wire::encode_tagged(rounds::RoundMsg{1, bytes_of("right")}));
    }
  };

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
    auto& byz = w.spawn<Equivocator>();
    w.mark_byzantine(byz.id());
    std::vector<VwaNode*> nodes;
    for (int i = 0; i < 2; ++i) {
      auto& n = w.spawn<VwaNode>();
      n.driver = std::make_unique<rounds::DeltaSyncRoundDriver>(n, kRoundCh,
                                                                2 * kDelta);
      n.vwa = std::make_unique<VeryWeakAgreement>(n, *n.driver);
      n.input = bytes_of("honest");
      nodes.push_back(&n);
    }
    w.start();
    w.run_to_quiescence();
    expect_vwa_agreement(nodes, w, "equivocator");
  }
}

TEST(VeryWeakAgreement, ZeroDirectionalRoundsViolateAgreement) {
  // Negative control (why unidirectionality matters): with asynchronous
  // n−f-quorum rounds and a partition, two correct groups commit
  // different non-⊥ values — the very failure the unidirectional round
  // rules out.
  auto adversary = std::make_unique<sim::PartitionAdversary>();
  adversary->block_bidirectional({0, 1}, {2, 3});
  sim::World w(5, std::move(adversary));
  std::vector<VwaNode*> nodes;
  for (int i = 0; i < 4; ++i) {
    auto& n = w.spawn<VwaNode>();
    n.driver = std::make_unique<rounds::AsyncZeroRoundDriver>(n, kRoundCh,
                                                              /*n=*/4,
                                                              /*f=*/2);
    n.vwa = std::make_unique<VeryWeakAgreement>(n, *n.driver);
    n.input = bytes_of(i < 2 ? "east" : "west");
    nodes.push_back(&n);
  }
  w.start();
  w.run_to_quiescence();
  std::set<Bytes> committed;
  for (auto* n : nodes) {
    ASSERT_TRUE(n->vwa->committed());
    if (n->vwa->value()) committed.insert(*n->vwa->value());
  }
  EXPECT_EQ(committed.size(), 2u);  // the violation, as predicted
}

}  // namespace
}  // namespace unidir::agreement
