#include <gtest/gtest.h>

#include "agreement/pbft.h"
#include "agreement/state_machines.h"
#include "sim/adversaries.h"

namespace unidir::agreement {
namespace {

struct Cluster {
  sim::World world;
  std::vector<PbftReplica*> replicas;
  std::vector<SmrClient*> clients;
  std::size_t n;
  std::size_t f;

  Cluster(std::size_t n_, std::size_t f_, std::size_t num_clients,
          std::uint64_t seed, Time max_delay = 10)
      : world(seed, std::make_unique<sim::RandomDelayAdversary>(1, max_delay)),
        n(n_),
        f(f_) {
    PbftReplica::Options options;
    options.f = f;
    for (ProcessId i = 0; i < n; ++i) options.replicas.push_back(i);
    for (std::size_t i = 0; i < n; ++i)
      replicas.push_back(&world.spawn<PbftReplica>(
          options, std::make_unique<KvStateMachine>()));
    SmrClient::Options copt;
    copt.replicas = options.replicas;
    copt.f = f;
    for (std::size_t i = 0; i < num_clients; ++i)
      clients.push_back(&world.spawn<SmrClient>(copt));
  }

  void expect_consistent(const char* context) {
    std::vector<std::pair<ProcessId, const ExecutionLog*>>
        logs;
    for (auto* r : replicas)
      if (world.correct(r->id()))
        logs.emplace_back(r->id(), &r->execution_log());
    const auto divergence = check_execution_consistency(logs);
    EXPECT_FALSE(divergence.has_value()) << context << ": " << *divergence;
  }
};

TEST(Pbft, BasicKvOperations) {
  Cluster c(4, 1, 1, 42);
  Bytes got_back;
  c.clients[0]->submit(KvStateMachine::put_op("k", "v1"));
  c.clients[0]->submit(KvStateMachine::get_op("k"),
                       [&](const Bytes& r) { got_back = r; });
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(c.clients[0]->completed(), 2u);
  EXPECT_EQ(got_back, bytes_of("v1"));
  c.expect_consistent("basic");
  for (auto* r : c.replicas) {
    EXPECT_EQ(r->executed_count(), 2u);
    EXPECT_EQ(r->state_digest(), c.replicas[0]->state_digest());
  }
}

struct SweepCase {
  std::size_t n;
  std::size_t f;
  std::size_t clients;
  int ops_per_client;
  std::uint64_t seed;
};

class PbftSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PbftSweep, AllRequestsCompleteConsistently) {
  const auto& p = GetParam();
  Cluster c(p.n, p.f, p.clients, p.seed);
  for (std::size_t i = 0; i < p.clients; ++i)
    for (int k = 0; k < p.ops_per_client; ++k)
      c.clients[i]->submit(KvStateMachine::put_op(
          "key" + std::to_string(k), "c" + std::to_string(i)));
  c.world.start();
  c.world.run_to_quiescence();
  for (auto* cl : c.clients)
    EXPECT_EQ(cl->completed(), static_cast<std::uint64_t>(p.ops_per_client));
  c.expect_consistent("sweep");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PbftSweep,
    ::testing::Values(SweepCase{4, 1, 1, 8, 1}, SweepCase{4, 1, 2, 5, 2},
                      SweepCase{7, 2, 2, 4, 3}, SweepCase{7, 2, 3, 3, 4},
                      SweepCase{10, 3, 2, 3, 5}, SweepCase{13, 4, 1, 4, 6}));

TEST(Pbft, ToleratesFCrashedBackups) {
  Cluster c(7, 2, 1, 9);
  c.world.crash(5);
  c.world.crash(6);
  for (int k = 0; k < 5; ++k)
    c.clients[0]->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(c.clients[0]->completed(), 5u);
  c.expect_consistent("crashed backups");
  EXPECT_EQ(c.replicas[0]->view(), 0u);
}

TEST(Pbft, PrimaryCrashTriggersViewChangeAndRecovers) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Cluster c(4, 1, 1, seed);
    for (int k = 0; k < 4; ++k)
      c.clients[0]->submit(
          KvStateMachine::put_op("k" + std::to_string(k), "v"));
    c.world.start();
    c.world.run_until([&] { return c.clients[0]->completed() >= 1; });
    c.world.crash(0);
    c.world.run_to_quiescence();
    EXPECT_EQ(c.clients[0]->completed(), 4u) << "seed " << seed;
    c.expect_consistent("primary crash");
    for (auto* r : c.replicas) {
      if (c.world.correct(r->id())) {
        EXPECT_GT(r->view(), 0u) << "seed " << seed;
      }
    }
  }
}

TEST(Pbft, PrimaryCrashBeforeAnyProposal) {
  Cluster c(4, 1, 1, 11);
  c.world.crash(0);
  c.clients[0]->submit(KvStateMachine::put_op("k", "v"));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(c.clients[0]->completed(), 1u);
  c.expect_consistent("dead primary");
}

TEST(Pbft, ExactlyOnceUnderAggressiveResends) {
  Cluster c(4, 1, 0, 17, /*max_delay=*/30);
  SmrClient::Options copt;
  copt.replicas = {0, 1, 2, 3};
  copt.f = 1;
  copt.resend_timeout = 5;
  auto& eager = c.world.spawn<SmrClient>(copt);
  eager.submit(KvStateMachine::put_op("x", "1"));
  eager.submit(KvStateMachine::get_op("x"));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(eager.completed(), 2u);
  for (auto* r : c.replicas) EXPECT_EQ(r->executed_count(), 2u);
  c.expect_consistent("resends");
}

TEST(Pbft, EquivocatingPrimaryCannotCommitConflictingCommands) {
  // The Byzantine primary pre-prepares DIFFERENT commands under the SAME
  // sequence number to the two halves of the backup set. Without a
  // non-equivocation device this is possible to *attempt* — PBFT's
  // prepare phase exists precisely to keep it from committing.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::World world(seed, std::make_unique<sim::RandomDelayAdversary>(1, 8));
    PbftReplica::Options options;
    options.f = 1;
    options.replicas = {0, 1, 2, 3};
    options.view_change_timeout = 150;

    class EquivocatingPrimary final : public sim::Process {
     public:
      void on_start() override {
        Command left;
        left.client = 77;
        left.request_id = 1;
        left.op = KvStateMachine::put_op("k", "left");
        Command right;
        right.client = 77;
        right.request_id = 1;  // SAME identity, conflicting content
        right.op = KvStateMachine::put_op("k", "right");
        send(1, kPbftCh,
             PbftReplica::encode_preprepare_for_test(signer(), 0, 1, left));
        send(2, kPbftCh,
             PbftReplica::encode_preprepare_for_test(signer(), 0, 1, left));
        send(3, kPbftCh,
             PbftReplica::encode_preprepare_for_test(signer(), 0, 1, right));
      }
    };

    auto& byz = world.spawn<EquivocatingPrimary>();
    world.mark_byzantine(byz.id());
    std::vector<PbftReplica*> backups;
    for (ProcessId i = 1; i <= 3; ++i)
      backups.push_back(&world.spawn<PbftReplica>(
          options, std::make_unique<KvStateMachine>()));
    world.start();
    world.run_to_quiescence();

    // Consistency must survive; in particular "left" and "right" must not
    // both appear at slot-1 positions of different replicas.
    std::vector<std::pair<ProcessId, const ExecutionLog*>>
        logs;
    for (auto* r : backups) logs.emplace_back(r->id(), &r->execution_log());
    const auto divergence = check_execution_consistency(logs);
    EXPECT_FALSE(divergence.has_value()) << *divergence << " seed " << seed;
  }
}

TEST(Pbft, CheckpointsStabilize) {
  Cluster c(4, 1, 1, 19);
  for (int k = 0; k < 20; ++k)
    c.clients[0]->submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(c.clients[0]->completed(), 20u);
  for (auto* r : c.replicas) EXPECT_GE(r->stable_checkpoint(), 16u);
}

TEST(Pbft, PipelinedClientCompletesAllRequestsConsistently) {
  Cluster c(4, 1, 0, 37);
  SmrClient::Options copt;
  copt.replicas = {0, 1, 2, 3};
  copt.f = 1;
  copt.max_outstanding = 8;
  auto& client = c.world.spawn<SmrClient>(copt);
  for (int k = 0; k < 24; ++k)
    client.submit(KvStateMachine::put_op("k" + std::to_string(k % 5),
                                         "v" + std::to_string(k)));
  c.world.start();
  c.world.run_to_quiescence();
  EXPECT_EQ(client.completed(), 24u);
  c.expect_consistent("pipelined");
  for (auto* r : c.replicas) EXPECT_EQ(r->executed_count(), 24u);
}

TEST(Pbft, SurvivesPartialSynchronyChaosBeforeGst) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::World world(seed, std::make_unique<sim::GstAdversary>(500, 5, 200));
    PbftReplica::Options options;
    options.f = 1;
    options.replicas = {0, 1, 2, 3};
    options.view_change_timeout = 100;
    std::vector<PbftReplica*> replicas;
    for (int i = 0; i < 4; ++i)
      replicas.push_back(&world.spawn<PbftReplica>(
          options, std::make_unique<KvStateMachine>()));
    SmrClient::Options copt;
    copt.replicas = options.replicas;
    copt.f = 1;
    copt.resend_timeout = 150;
    auto& client = world.spawn<SmrClient>(copt);
    for (int k = 0; k < 5; ++k)
      client.submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
    world.start();
    world.run_to_quiescence();
    EXPECT_EQ(client.completed(), 5u) << "seed " << seed;
    std::vector<std::pair<ProcessId, const ExecutionLog*>>
        logs;
    for (auto* r : replicas) logs.emplace_back(r->id(), &r->execution_log());
    const auto divergence = check_execution_consistency(logs);
    EXPECT_FALSE(divergence.has_value()) << *divergence << " seed " << seed;
  }
}

TEST(Pbft, RejectsTooSmallReplicaGroups) {
  sim::World world(1, std::make_unique<sim::ImmediateAdversary>());
  PbftReplica::Options options;
  options.f = 1;
  options.replicas = {0, 1, 2};  // n=3 < 3f+1
  EXPECT_THROW(
      world.spawn<PbftReplica>(options, std::make_unique<KvStateMachine>()),
      std::invalid_argument);
}

}  // namespace
}  // namespace unidir::agreement
