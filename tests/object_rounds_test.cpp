// The paper's §3.2 claim in full generality: PEATS and sticky registers —
// not just SWMR registers — implement unidirectional rounds, and
// Algorithm 1 (SRB) runs unchanged on top of them.
#include <gtest/gtest.h>

#include "broadcast/srb_from_uni.h"
#include "rounds/checkers.h"
#include "rounds/object_uni_round.h"
#include "sim/adversaries.h"

namespace unidir::rounds {
namespace {

class Runner final : public sim::Process {
 public:
  std::unique_ptr<RoundDriver> driver;
  int target = 0;

 protected:
  void on_start() override { go(); }

 private:
  void go() {
    if (driver->completed_rounds() >= static_cast<RoundNum>(target)) return;
    driver->start_round(bytes_of("p" + std::to_string(id())),
                        [this](RoundNum, const std::vector<Received>&) {
                          go();
                        });
  }
};

enum class Kind { Peats, Sticky };

struct Case {
  Kind kind;
  std::size_t n;
  int rounds;
  std::uint64_t seed;
};

class ObjectUniRoundP : public ::testing::TestWithParam<Case> {};

TEST_P(ObjectUniRoundP, UnidirectionalityHolds) {
  const auto& c = GetParam();
  sim::World w(c.seed, std::make_unique<sim::ImmediateAdversary>());
  shmem::MemoryHost memory(w.simulator(), sim::Rng(c.seed * 7 + 3),
                           {.max_to_linearize = 5, .max_to_respond = 5});
  PeatsRoundBoard peats(c.n);
  StickyRoundBoard sticky(c.n);

  std::vector<Runner*> runners;
  for (std::size_t i = 0; i < c.n; ++i) {
    auto& r = w.spawn<Runner>();
    if (c.kind == Kind::Peats) {
      r.driver = std::make_unique<PeatsUniRoundDriver>(
          memory, peats, static_cast<ProcessId>(i));
    } else {
      r.driver = std::make_unique<StickyUniRoundDriver>(
          memory, sticky, static_cast<ProcessId>(i));
    }
    r.target = c.rounds;
    runners.push_back(&r);
  }
  w.start();
  w.run_to_quiescence();

  std::vector<ProcessHistory> hist;
  for (auto* r : runners) {
    EXPECT_EQ(r->driver->completed_rounds(),
              static_cast<RoundNum>(c.rounds));
    hist.push_back(history_of(r->id(), *r->driver));
  }
  const auto violation = check_unidirectional(hist);
  EXPECT_FALSE(violation.has_value()) << violation->describe();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ObjectUniRoundP,
    ::testing::Values(Case{Kind::Peats, 2, 6, 1}, Case{Kind::Peats, 3, 5, 2},
                      Case{Kind::Peats, 5, 4, 3}, Case{Kind::Peats, 7, 3, 4},
                      Case{Kind::Sticky, 2, 6, 5},
                      Case{Kind::Sticky, 3, 5, 6},
                      Case{Kind::Sticky, 5, 4, 7},
                      Case{Kind::Sticky, 7, 3, 8}));

TEST(ObjectUniRound, PeatsBoardIndexesPerOwner) {
  PeatsRoundBoard board(3);
  EXPECT_TRUE(board.publish(1, RoundMsg{1, bytes_of("ok")}));
  EXPECT_TRUE(board.publish(1, RoundMsg{2, bytes_of("second")}));
  EXPECT_EQ(board.read_from(0, 1, 0).size(), 2u);
  EXPECT_EQ(board.read_from(0, 1, 1).size(), 1u);
  EXPECT_TRUE(board.read_from(0, 2, 0).empty());
}

TEST(ObjectUniRound, StickyCellsAreWriteOnce) {
  StickyRoundBoard board(2);
  EXPECT_TRUE(board.publish(0, RoundMsg{1, bytes_of("first")}));
  // publish() always targets the next free cell, so the append succeeds;
  // write-once-ness shows at read time: history is immutable and ordered.
  EXPECT_TRUE(board.publish(0, RoundMsg{2, bytes_of("second")}));
  const auto all = board.read_from(1, 0, 0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].message, bytes_of("first"));
  EXPECT_EQ(all[1].message, bytes_of("second"));
}

TEST(ObjectUniRound, Algorithm1RunsOverPeatsAndSticky) {
  // The full stack: SRB (Algorithm 1) over each exotic board.
  for (int kind = 0; kind < 2; ++kind) {
    class Node final : public sim::Process {
     public:
      std::unique_ptr<RoundDriver> driver;
      std::unique_ptr<broadcast::UniSrbEndpoint> srb;
      std::vector<Bytes> to_broadcast;
      void on_start() override {
        for (auto& m : to_broadcast) srb->broadcast(m);
        srb->start();
      }
    };
    sim::World w(42 + static_cast<std::uint64_t>(kind),
                 std::make_unique<sim::ImmediateAdversary>());
    shmem::MemoryHost memory(w.simulator(), sim::Rng(43));
    PeatsRoundBoard peats(3);
    StickyRoundBoard sticky(3);
    std::vector<Node*> nodes;
    for (std::size_t i = 0; i < 3; ++i) {
      auto& node = w.spawn<Node>();
      if (kind == 0) {
        node.driver = std::make_unique<PeatsUniRoundDriver>(
            memory, peats, static_cast<ProcessId>(i));
      } else {
        node.driver = std::make_unique<StickyUniRoundDriver>(
            memory, sticky, static_cast<ProcessId>(i));
      }
      node.srb = std::make_unique<broadcast::UniSrbEndpoint>(
          node, *node.driver, 3, 1);
      nodes.push_back(&node);
    }
    nodes[0]->to_broadcast = {bytes_of("a"), bytes_of("b")};
    w.start();
    w.run_to_quiescence();
    std::vector<broadcast::SrbView> views;
    for (auto* node : nodes)
      views.push_back({node->id(), node->srb.get(), node->to_broadcast});
    const auto violation = broadcast::check_srb(views);
    EXPECT_FALSE(violation.has_value())
        << broadcast::to_string(violation->kind) << ": " << violation->detail
        << " (kind " << kind << ")";
  }
}

}  // namespace
}  // namespace unidir::rounds
