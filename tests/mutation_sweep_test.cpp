// Deterministic fuzz sweep (ctest label: fuzz): every protocol family runs
// under the MutatingAdversary — truncated, bit-flipped and spliced payloads
// on a randomly-delayed network — and must (a) never crash, (b) keep its
// *safety* invariants among correct processes, and (c) visibly absorb the
// corruption: the wire layer's dropped_malformed counters must be nonzero
// aggregated across the sweep, proving the bytes actually hit the hardened
// decode boundary rather than bypassing it.
//
// Liveness is deliberately NOT asserted: a mutated network is allowed to
// lose any message (corruption == drop at the decode boundary), so "every
// request completes" or SRB validity/agreement may legitimately fail. What
// must survive arbitrary byte rewriting is consistency — no two correct
// processes act on different values for the same slot, and no process acts
// on a value nobody sent (signatures stop fabrication).
//
// Replay note: mutations happen at send time inside the adversary, so a
// recorded trace captures post-mutation scheduling but ReplayAdversary
// cannot re-impose the byte rewrites. Fuzz repros therefore re-run the
// spec in Direct mode — same seed, same bytes (the simulator is
// deterministic end-to-end).
#include <gtest/gtest.h>

#include "agreement/dolev_strong.h"
#include "broadcast/echo.h"
#include "broadcast/srb_hub.h"
#include "explore/scenario.h"
#include "sim/adversaries.h"
#include "test_util.h"

namespace unidir {
namespace {

using broadcast::Delivery;
using testutil::Node;

std::unique_ptr<sim::Adversary> fuzz_net(std::uint32_t rate_percent) {
  sim::MutatingAdversary::Options o;
  o.rate_percent = rate_percent;
  return std::make_unique<sim::MutatingAdversary>(
      std::make_unique<sim::RandomDelayAdversary>(1, 8), o);
}

// ---- SMR (MinBFT / PBFT, through the scenario harness) --------------------

void run_smr_fuzz(explore::ProtocolKind protocol) {
  // Safety-only registry: prefix-consistent logs and digest equality.
  explore::InvariantRegistry registry;
  registry.add(explore::smr_prefix_consistency())
      .add(explore::smr_digest_equality());

  std::uint64_t dropped_malformed = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    explore::ScenarioSpec spec = explore::ScenarioSpec::materialize(
        protocol, explore::AdversaryKind::Mutating, seed);
    // Budget calibrated to a few seconds per seed: a mutated network can
    // drive a laggard into solo view-change churn, and each cycle
    // broadcasts its whole archive — the cap bounds that, and a stalled
    // run is a pass, not a hang.
    spec.max_events = 60'000;
    const explore::RunOutcome out = explore::run_scenario(spec, registry);
    EXPECT_FALSE(out.violation.has_value())
        << out.violation->describe() << "\n  scenario: " << spec.describe();
    EXPECT_GT(out.net.messages_mutated, 0u) << spec.describe();
    dropped_malformed += out.wire.total_dropped_malformed();
  }
  EXPECT_GT(dropped_malformed, 0u)
      << "no payload ever failed to decode — mutations are not reaching "
         "the wire layer's decode boundary";
}

TEST(MutationSweep, MinBftSafetyHoldsUnderByteCorruption) {
  run_smr_fuzz(explore::ProtocolKind::MinBft);
}

TEST(MutationSweep, PbftSafetyHoldsUnderByteCorruption) {
  run_smr_fuzz(explore::ProtocolKind::Pbft);
}

// ---- SRB implementations --------------------------------------------------

constexpr sim::Channel kSrbCh = 20;

/// Cross-process consistency and integrity at quiescence: for every
/// delivered (sender, seq), all correct processes that delivered the slot
/// hold the same value, and — when the sender is correct — that value is
/// exactly what it broadcast.
void check_srb_safety(
    const std::vector<const broadcast::SrbEndpoint*>& endpoints,
    const std::vector<std::vector<Bytes>>& bcasts) {
  std::map<std::pair<ProcessId, SeqNum>, Bytes> agreed;
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    for (const Delivery& d : endpoints[i]->delivered()) {
      const auto key = std::make_pair(d.sender, d.seq);
      auto [it, fresh] = agreed.emplace(key, d.message);
      EXPECT_EQ(it->second, d.message)
          << "processes disagree on (" << d.sender << ", " << d.seq << ")";
      if (d.sender < bcasts.size()) {
        ASSERT_LE(d.seq, bcasts[d.sender].size()) << "fabricated seq";
        EXPECT_EQ(d.message, bcasts[d.sender][d.seq - 1]) << "fabricated value";
      }
    }
  }
}

TEST(MutationSweep, SrbHubStaysConsistentUnderByteCorruption) {
  std::uint64_t dropped = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::World world(seed, fuzz_net(30));
    broadcast::SrbHub hub(world, kSrbCh);
    std::vector<Node*> nodes;
    std::vector<std::unique_ptr<broadcast::SrbHubEndpoint>> endpoints;
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(&world.spawn<Node>());
      endpoints.push_back(hub.make_endpoint(*nodes.back()));
    }
    world.start();
    std::vector<std::vector<Bytes>> bcasts(4);
    for (int k = 0; k < 6; ++k) {
      const Bytes m = bytes_of("hub" + std::to_string(k));
      endpoints[static_cast<std::size_t>(k % 4)]->broadcast(m);
      bcasts[static_cast<std::size_t>(k % 4)].push_back(m);
    }
    world.run_to_quiescence();

    std::vector<const broadcast::SrbEndpoint*> eps;
    for (auto& ep : endpoints) eps.push_back(ep.get());
    check_srb_safety(eps, bcasts);
    dropped += world.wire_stats().total_dropped_malformed();
    EXPECT_GT(world.network().stats().messages_mutated, 0u);
  }
  EXPECT_GT(dropped, 0u);
}

TEST(MutationSweep, EchoBroadcastStaysConsistentUnderByteCorruption) {
  std::uint64_t dropped = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::World world(seed, fuzz_net(30));
    std::vector<Node*> nodes;
    std::vector<std::unique_ptr<broadcast::EchoBroadcastEndpoint>> endpoints;
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(&world.spawn<Node>());
      endpoints.push_back(std::make_unique<broadcast::EchoBroadcastEndpoint>(
          *nodes.back(), kSrbCh, 4, 1));
    }
    world.start();
    std::vector<std::vector<Bytes>> bcasts(4);
    for (int k = 0; k < 5; ++k) {
      const Bytes m = bytes_of("echo" + std::to_string(k));
      endpoints[0]->broadcast(m);
      bcasts[0].push_back(m);
    }
    world.run_to_quiescence();

    std::vector<const broadcast::SrbEndpoint*> eps;
    for (auto& ep : endpoints) eps.push_back(ep.get());
    check_srb_safety(eps, bcasts);
    dropped += world.wire_stats().total_dropped_malformed();
  }
  EXPECT_GT(dropped, 0u);
}

// ---- Dolev–Strong ---------------------------------------------------------

TEST(MutationSweep, DolevStrongNeverCommitsFabricatedValues) {
  // Byte corruption breaks the synchronous-reliable-links model, so
  // agreement and validity may fail — what must hold is that signatures
  // stop fabrication: a correct process commits the sender's real input or
  // nothing at all.
  std::uint64_t dropped = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::World world(seed, fuzz_net(25));
    struct DsNode final : sim::Process {
      std::unique_ptr<agreement::DolevStrongBroadcast> ds;
      std::optional<Bytes> input;

     protected:
      void on_start() override { ds->run(input, nullptr); }
    };
    std::vector<DsNode*> nodes;
    for (int i = 0; i < 4; ++i) {
      auto& node = world.spawn<DsNode>();
      agreement::DolevStrongBroadcast::Options o;
      o.sender = 0;
      o.f = 1;
      o.round_length = 9;  // delays in [1, 8]
      node.ds = std::make_unique<agreement::DolevStrongBroadcast>(node, o);
      nodes.push_back(&node);
    }
    const Bytes input = bytes_of("genuine");
    nodes[0]->input = input;
    world.start();
    world.run_to_quiescence();
    for (DsNode* node : nodes) {
      if (node->ds->value().has_value()) {
        EXPECT_EQ(*node->ds->value(), input) << "node " << node->id();
      }
    }
    dropped += world.wire_stats().total_dropped_malformed();
  }
  EXPECT_GT(dropped, 0u);
}

}  // namespace
}  // namespace unidir
