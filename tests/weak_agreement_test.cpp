// The Preliminaries claim (§2): non-equivocation + transferable signatures
// solve weak Byzantine agreement with any corrupt minority (n >= 2f+1).
#include <gtest/gtest.h>

#include "agreement/weak_agreement.h"
#include "sim/adversaries.h"

namespace unidir::agreement {
namespace {

TEST(FirstWriteStateMachine, FirstWriteSticks) {
  FirstWriteStateMachine m;
  EXPECT_EQ(m.apply(FirstWriteStateMachine::write_op(bytes_of("a"))),
            bytes_of("a"));
  EXPECT_EQ(m.apply(FirstWriteStateMachine::write_op(bytes_of("b"))),
            bytes_of("a"));
  EXPECT_EQ(*m.value(), bytes_of("a"));
}

TEST(FirstWriteStateMachine, MalformedProposalIsNoOp) {
  FirstWriteStateMachine m;
  const auto before = m.digest();
  EXPECT_EQ(m.apply(Bytes{0xFF, 0xFF}), Bytes{});
  EXPECT_EQ(m.digest(), before);
  EXPECT_EQ(m.apply(FirstWriteStateMachine::write_op(bytes_of("v"))),
            bytes_of("v"));
}

struct WaCase {
  std::size_t n;
  std::size_t f;
  std::uint64_t seed;
  bool same_inputs;
};

class WeakAgreementP : public ::testing::TestWithParam<WaCase> {};

TEST_P(WeakAgreementP, AgreementTerminationAndWeakValidity) {
  const auto& c = GetParam();
  sim::World world(c.seed,
                   std::make_unique<sim::RandomDelayAdversary>(1, 10));
  SgxUsigDirectory usigs(world.keys());
  std::vector<Bytes> inputs;
  for (std::size_t i = 0; i < c.n; ++i)
    inputs.push_back(bytes_of(c.same_inputs ? "unanimous"
                                            : "in" + std::to_string(i)));
  WeakAgreementCluster cluster(world, usigs,
                               {.n = c.n, .f = c.f}, inputs);
  world.start();
  world.run_to_quiescence();

  ASSERT_TRUE(cluster.all_committed(world));
  std::set<Bytes> committed;
  for (std::size_t i = 0; i < c.n; ++i) committed.insert(*cluster.value_of(i));
  EXPECT_EQ(committed.size(), 1u);  // agreement
  if (c.same_inputs) {
    EXPECT_EQ(*committed.begin(), bytes_of("unanimous"));  // weak validity
  } else {
    // Some party's input won (the protocol never invents values).
    bool found = false;
    for (const Bytes& in : inputs)
      if (in == *committed.begin()) found = true;
    EXPECT_TRUE(found);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeakAgreementP,
    ::testing::Values(WaCase{3, 1, 1, true}, WaCase{3, 1, 2, false},
                      WaCase{5, 2, 3, true}, WaCase{5, 2, 4, false},
                      WaCase{7, 3, 5, true}, WaCase{7, 3, 6, false}));

TEST(WeakAgreement, ToleratesCorruptMinorityCrashes) {
  // f of 2f+1 parties crash (including the initial primary): the
  // remaining majority still agrees and terminates — the "any minority"
  // tolerance the claim advertises.
  sim::World world(9, std::make_unique<sim::RandomDelayAdversary>(1, 10));
  SgxUsigDirectory usigs(world.keys());
  std::vector<Bytes> inputs = {bytes_of("a"), bytes_of("b"), bytes_of("c"),
                               bytes_of("d"), bytes_of("e")};
  WeakAgreementCluster cluster(world, usigs, {.n = 5, .f = 2}, inputs);
  world.crash(0);  // replica 0 (view-0 primary)
  world.crash(1);  // replica 1
  world.crash(5);  // party 0's client too (it cannot commit)
  world.start();
  world.run_to_quiescence();

  std::set<Bytes> committed;
  for (std::size_t i = 1; i < 5; ++i) {
    ASSERT_TRUE(cluster.value_of(i).has_value()) << "party " << i;
    committed.insert(*cluster.value_of(i));
  }
  EXPECT_EQ(committed.size(), 1u);
}

TEST(WeakAgreement, RejectsMajorityFaultConfigurations) {
  sim::World world(1, std::make_unique<sim::ImmediateAdversary>());
  SgxUsigDirectory usigs(world.keys());
  EXPECT_THROW(WeakAgreementCluster(world, usigs, {.n = 4, .f = 2},
                                    std::vector<Bytes>(4, bytes_of("v"))),
               std::invalid_argument);
}

}  // namespace
}  // namespace unidir::agreement
