// Batched + pipelined SMR sweeps (ctest label: batch): request batching,
// slot pipelining and the client-fleet workload generator, validated
// against the full standard_smr registry — including the batch-atomicity
// checker — across seeds, adversaries, crash+restart schedules and byte
// corruption.
//
// Five claims, matching DESIGN.md §11:
//
//  1. COMPATIBILITY: with batch_size = 1 and pipeline_depth = 1 both
//     protocols run the original wire protocol bit-for-bit — the golden
//     fingerprints below were captured before batching existed.
//  2. SAFETY+LIVENESS: with batching and pipelining on, every invariant of
//     the standard SMR registry holds across 50-seed sweeps per protocol,
//     under every network adversary, composed with crash+restart pairs and
//     with byte-level corruption (safety only there).
//  3. ATOMICITY: every request in a committed batch executes exactly once
//     in slot order; split batches, reorderings, double executions and
//     cross-replica membership disagreements are caught (synthetic
//     negative transcripts prove the checker has teeth).
//  4. DEDUP: a client retry that lands in a second batch after its
//     original batch committed is answered from the reply cache, not
//     re-executed — byzantine-driven regression tests per protocol.
//  5. TOOLING: batched scenarios record/replay byte-identically, produce
//     thread-count-independent fingerprints under ParallelRunner, and
//     shrink toward the unbatched defaults (irrelevant workload clients
//     dropped).
#include <gtest/gtest.h>

#include <algorithm>

#include "agreement/minbft.h"
#include "agreement/pbft.h"
#include "agreement/state_machines.h"
#include "explore/parallel.h"
#include "explore/scenario.h"
#include "explore/shrink.h"
#include "sim/adversaries.h"
#include "sim/workload.h"

namespace unidir::explore {
namespace {

constexpr std::uint64_t kSweepSeeds = 50;

InvariantRegistry safety_only() {
  InvariantRegistry r;
  r.add(smr_prefix_consistency()).add(smr_digest_equality());
  r.add(batch_atomicity());
  return r;
}

// ---- spec plumbing ---------------------------------------------------------

TEST(BatchingSpec, SerdeRoundTripsBatchAndWorkloadFields) {
  ScenarioSpec spec = ScenarioSpec::materialize_batched(
      ProtocolKind::MinBft, AdversaryKind::RandomDelay, 3);
  ASSERT_GT(spec.batch_size, 1u);
  ASSERT_GT(spec.replica_pipeline, 1u);
  ASSERT_TRUE(spec.workload.enabled());
  const ScenarioSpec back = ScenarioSpec::from_hex(spec.to_hex());
  EXPECT_EQ(back, spec);
  EXPECT_NE(spec.describe().find("batch="), std::string::npos);
  EXPECT_NE(spec.describe().find("workload="), std::string::npos);
}

TEST(BatchingSpec, MaterializeBatchedIsDeterministicAndKeepsBaseDraw) {
  const auto a = ScenarioSpec::materialize_batched(
      ProtocolKind::Pbft, AdversaryKind::RandomDelay, 11);
  const auto b = ScenarioSpec::materialize_batched(
      ProtocolKind::Pbft, AdversaryKind::RandomDelay, 11);
  EXPECT_EQ(a, b);
  // The base draw is shared with materialize(): the batching knobs come
  // from a separate stream, so existing sweeps keep their scenarios.
  const auto base = ScenarioSpec::materialize(ProtocolKind::Pbft,
                                              AdversaryKind::RandomDelay, 11);
  EXPECT_EQ(a.requests, base.requests);
  EXPECT_EQ(a.max_delay, base.max_delay);
  EXPECT_EQ(a.crashes, base.crashes);
  // Recovery variant: batching knobs on top of the recovery draw.
  const auto rec = ScenarioSpec::materialize_batched_recovery(
      ProtocolKind::Pbft, AdversaryKind::RandomDelay, 11);
  EXPECT_EQ(rec.batch_size, a.batch_size);
  EXPECT_EQ(rec.workload, a.workload);
  ASSERT_FALSE(rec.recoveries.empty());
}

TEST(BatchingSpec, DecodeRejectsZeroBatchKnobs) {
  ScenarioSpec spec = ScenarioSpec::materialize_batched(
      ProtocolKind::MinBft, AdversaryKind::Immediate, 1);
  spec.batch_size = 0;
  EXPECT_THROW((void)ScenarioSpec::from_hex(spec.to_hex()),
               serde::DecodeError);
  spec.batch_size = 4;
  spec.replica_pipeline = 0;
  EXPECT_THROW((void)ScenarioSpec::from_hex(spec.to_hex()),
               serde::DecodeError);
}

// ---- workload generator ----------------------------------------------------

TEST(WorkloadPlan, DeterministicAndPerClientStable) {
  sim::WorkloadSpec w;
  w.clients = 4;
  w.requests_per_client = 6;
  w.open_loop = true;
  w.mean_interarrival = 5;
  w.seed = 9;
  const auto a = w.plan();
  const auto b = w.plan();
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a, b);
  // Dropping clients never perturbs the survivors' schedules — the
  // shrinker depends on this.
  sim::WorkloadSpec fewer = w;
  fewer.clients = 2;
  const auto c = fewer.plan();
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], a[0]);
  EXPECT_EQ(c[1], a[1]);
}

TEST(WorkloadPlan, OpenLoopArrivalsMonotoneClosedLoopImmediate) {
  sim::WorkloadSpec w;
  w.clients = 3;
  w.requests_per_client = 8;
  w.open_loop = true;
  w.mean_interarrival = 7;
  w.key_space = 5;
  w.seed = 4;
  for (const auto& plan : w.plan()) {
    ASSERT_EQ(plan.arrivals.size(), 8u);
    Time prev = 0;
    for (const auto& a : plan.arrivals) {
      EXPECT_GT(a.at, prev) << "open-loop arrivals strictly increase";
      prev = a.at;
      EXPECT_LT(a.key, 5u);
    }
  }
  w.open_loop = false;
  for (const auto& plan : w.plan())
    for (const auto& a : plan.arrivals)
      EXPECT_EQ(a.at, 0u) << "closed-loop submits everything upfront";
}

TEST(WorkloadPlan, HotKeySkewConcentratesOnHotSet) {
  sim::WorkloadSpec w;
  w.clients = 2;
  w.requests_per_client = 40;
  w.key_space = 64;
  w.hot_key_percent = 100;
  w.hot_keys = 2;
  w.seed = 6;
  for (const auto& plan : w.plan())
    for (const auto& a : plan.arrivals)
      EXPECT_LT(a.key, 2u) << "100% hot traffic stays on the hot set";
  w.hot_key_percent = 0;
  std::uint64_t beyond = 0;
  for (const auto& plan : w.plan())
    for (const auto& a : plan.arrivals)
      if (a.key >= 2) ++beyond;
  EXPECT_GT(beyond, 0u) << "uniform traffic uses the whole key space";
}

// ---- compatibility ---------------------------------------------------------

// Golden fingerprints captured at the commit immediately preceding the
// batching change. The default knobs (batch_size = 1, pipeline_depth = 1)
// must keep both protocols byte-for-byte on the original wire protocol —
// same messages, same ordering, same transcripts.
TEST(BatchingCompat, DefaultKnobsFingerprintIdenticalToPreBatching) {
  struct Golden {
    const char* name;
    ScenarioSpec spec;
    std::uint64_t completed;
    const char* fingerprint;
  };
  const std::vector<Golden> goldens = {
      {"minbft-rd-1",
       ScenarioSpec::materialize(ProtocolKind::MinBft,
                                 AdversaryKind::RandomDelay, 1),
       9, "dd4a1ae0dee6976f360846ab8a2721dd38a3a6266d67d0767be86d43a1b08b14"},
      {"pbft-rd-2",
       ScenarioSpec::materialize(ProtocolKind::Pbft,
                                 AdversaryKind::RandomDelay, 2),
       10, "34ba204824cdd259a0cc60bbb3dc6b8479fd4e2983dcb83e6e433365bcaea338"},
      {"minbft-gst-3",
       ScenarioSpec::materialize(ProtocolKind::MinBft, AdversaryKind::Gst, 3),
       7, "2c4a12c12f52cbdb1c4dc8b92e28347285470c14b161f534efd82ebd8d8f4900"},
      {"pbft-dup-4",
       ScenarioSpec::materialize(ProtocolKind::Pbft,
                                 AdversaryKind::Duplicating, 4),
       9, "df36600a1bb30529394bd131a871d347b0d1386ce45b2bb42230122f3cb7dbe9"},
      {"minbft-rec-5",
       ScenarioSpec::materialize_recovery(ProtocolKind::MinBft,
                                          AdversaryKind::RandomDelay, 5),
       10, "24db12c7f7e41b0906acde02219cd28df1ce524cd7a0966148fcd0e412c35856"},
      {"pbft-rec-6",
       ScenarioSpec::materialize_recovery(ProtocolKind::Pbft,
                                          AdversaryKind::RandomDelay, 6),
       4, "ac03ae6bf192dcd5590cb13576c4cd43145947284101b12ce024f5505c771df2"},
  };
  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  for (const Golden& g : goldens) {
    EXPECT_EQ(g.spec.batch_size, 1u) << g.name;
    EXPECT_EQ(g.spec.replica_pipeline, 1u) << g.name;
    const RunOutcome out = run_scenario(g.spec, reg);
    EXPECT_EQ(out.completed, g.completed) << g.name;
    EXPECT_EQ(unidir::to_hex(ByteSpan(out.fingerprint.data(),
                                      out.fingerprint.size())),
              g.fingerprint)
        << g.name << ": the unbatched wire protocol changed";
  }
}

TEST(BatchingCompat, BatchedKnobsActuallyChangeTheExecution) {
  // The converse guard: if the batched fingerprint ever collapses onto the
  // unbatched one, the knobs silently stopped reaching the replicas.
  const ScenarioSpec batched = ScenarioSpec::materialize_batched(
      ProtocolKind::MinBft, AdversaryKind::RandomDelay, 5);
  ScenarioSpec plain = batched;
  plain.batch_size = 1;
  plain.replica_pipeline = 1;
  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  const RunOutcome a = run_scenario(batched, reg);
  const RunOutcome b = run_scenario(plain, reg);
  EXPECT_FALSE(a.violation.has_value());
  EXPECT_FALSE(b.violation.has_value());
  EXPECT_EQ(a.expected, b.expected);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

// ---- sweeps ----------------------------------------------------------------

class BatchedSweepMatrix : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(BatchedSweepMatrix, FiftySeedsKeepEveryInvariant) {
  const ProtocolKind protocol = GetParam();
  const InvariantRegistry registry = InvariantRegistry::standard_smr();
  for (std::uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
    const ScenarioSpec spec = ScenarioSpec::materialize_batched(
        protocol, AdversaryKind::RandomDelay, seed);
    const RunOutcome out = run_scenario(spec, registry);
    EXPECT_FALSE(out.violation.has_value())
        << out.violation->describe() << "\n  scenario: " << spec.describe();
    EXPECT_EQ(out.completed, out.expected) << spec.describe();
    EXPECT_EQ(out.gave_up, 0u) << spec.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, BatchedSweepMatrix,
                         ::testing::Values(ProtocolKind::MinBft,
                                           ProtocolKind::Pbft));

class BatchedAdversaryMatrix
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, AdversaryKind>> {
};

TEST_P(BatchedAdversaryMatrix, InvariantsHoldUnderAdversary) {
  const auto [protocol, adversary] = GetParam();
  const InvariantRegistry registry = InvariantRegistry::standard_smr();
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const ScenarioSpec spec =
        ScenarioSpec::materialize_batched(protocol, adversary, seed);
    const RunOutcome out = run_scenario(spec, registry);
    EXPECT_FALSE(out.violation.has_value())
        << out.violation->describe() << "\n  scenario: " << spec.describe();
    EXPECT_EQ(out.completed, out.expected) << spec.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BatchedAdversaryMatrix,
    ::testing::Combine(::testing::Values(ProtocolKind::MinBft,
                                         ProtocolKind::Pbft),
                       ::testing::Values(AdversaryKind::Immediate,
                                         AdversaryKind::Duplicating,
                                         AdversaryKind::Gst)));

class BatchedRecoveryMatrix : public ::testing::TestWithParam<ProtocolKind> {
};

TEST_P(BatchedRecoveryMatrix, CrashRestartSchedulesKeepEveryInvariant) {
  const ProtocolKind protocol = GetParam();
  const InvariantRegistry registry = InvariantRegistry::standard_smr();
  std::uint64_t total_recoveries = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const ScenarioSpec spec = ScenarioSpec::materialize_batched_recovery(
        protocol, AdversaryKind::RandomDelay, seed);
    total_recoveries += spec.recoveries.size();
    const RunOutcome out = run_scenario(spec, registry);
    EXPECT_FALSE(out.violation.has_value())
        << out.violation->describe() << "\n  scenario: " << spec.describe();
    EXPECT_EQ(out.gave_up, 0u) << spec.describe();
  }
  EXPECT_GE(total_recoveries, 25u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, BatchedRecoveryMatrix,
                         ::testing::Values(ProtocolKind::MinBft,
                                           ProtocolKind::Pbft));

class BatchedFuzzMatrix : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(BatchedFuzzMatrix, SafetyHoldsUnderByteCorruption) {
  // MutatingAdversary composed with batching: corruption may stall
  // liveness (mutation == drop at the decode boundary), so only safety —
  // including batch atomicity — is asserted, and the run must not crash.
  const ProtocolKind protocol = GetParam();
  const InvariantRegistry registry = safety_only();
  std::uint64_t mutated = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ScenarioSpec spec = ScenarioSpec::materialize_batched(
        protocol, AdversaryKind::Mutating, seed);
    spec.max_events = 120'000;  // a stalled run is a pass, not a hang
    spec.client_max_attempts = 6;
    const RunOutcome out = run_scenario(spec, registry);
    EXPECT_FALSE(out.violation.has_value())
        << out.violation->describe() << "\n  scenario: " << spec.describe();
    mutated += out.net.messages_mutated;
  }
  EXPECT_GT(mutated, 0u) << "mutations never reached the network";
}

INSTANTIATE_TEST_SUITE_P(Protocols, BatchedFuzzMatrix,
                         ::testing::Values(ProtocolKind::MinBft,
                                           ProtocolKind::Pbft));

// ---- amortization ----------------------------------------------------------

TEST(BatchingSweep, BatchingAmortizesProtocolMessagesAndSignatures) {
  // Same workload, batched vs unbatched: the batch path must send fewer
  // protocol messages (one slot certifies many requests). This is the
  // functional core of the throughput claim bench_hotpath quantifies.
  ScenarioSpec plain;
  plain.protocol = ProtocolKind::MinBft;
  plain.adversary = AdversaryKind::Immediate;
  plain.seed = 3;
  plain.n = 3;
  plain.f = 1;
  plain.requests.clear();
  plain.workload.clients = 4;
  plain.workload.requests_per_client = 8;
  plain.workload.max_outstanding = 4;
  plain.workload.key_space = 8;
  plain.workload.seed = 3;
  ScenarioSpec batched = plain;
  batched.batch_size = 8;
  batched.replica_pipeline = 4;
  batched.batch_timeout_ticks = 2;

  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  const RunOutcome p = run_scenario(plain, reg);
  const RunOutcome b = run_scenario(batched, reg);
  ASSERT_FALSE(p.violation.has_value()) << p.violation->describe();
  ASSERT_FALSE(b.violation.has_value()) << b.violation->describe();
  EXPECT_EQ(p.completed, 32u);
  EXPECT_EQ(b.completed, 32u);
  EXPECT_LT(b.net.messages_sent, p.net.messages_sent)
      << "batching should amortize per-slot protocol traffic";
}

// ---- tooling ---------------------------------------------------------------

TEST(BatchingSweep, BatchedScenariosReplayByteIdentically) {
  for (const ProtocolKind protocol :
       {ProtocolKind::MinBft, ProtocolKind::Pbft}) {
    const ScenarioSpec spec = ScenarioSpec::materialize_batched(
        protocol, AdversaryKind::RandomDelay, 17);
    const InvariantRegistry reg = InvariantRegistry::standard_smr();

    const RunOutcome recorded = run_scenario(spec, reg, RunMode::Record);
    ASSERT_FALSE(recorded.violation.has_value())
        << recorded.violation->describe() << " — " << spec.describe();
    ASSERT_GT(recorded.trace.decisions.size(), 0u);

    const RunOutcome replayed =
        run_scenario(spec, reg, RunMode::Replay, &recorded.trace);
    EXPECT_EQ(replayed.replay_missed, 0u) << protocol_name(protocol);
    EXPECT_EQ(replayed.fingerprint, recorded.fingerprint)
        << protocol_name(protocol);
    EXPECT_EQ(replayed.completed, recorded.completed);
    EXPECT_EQ(replayed.final_time, recorded.final_time);
  }
}

TEST(BatchingSweep, SerialAndParallelFingerprintsMatch) {
  std::vector<ScenarioSpec> specs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    specs.push_back(ScenarioSpec::materialize_batched(
        ProtocolKind::MinBft, AdversaryKind::RandomDelay, seed));
    specs.push_back(ScenarioSpec::materialize_batched(
        ProtocolKind::Pbft, AdversaryKind::RandomDelay, seed));
  }
  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  const std::vector<RunOutcome> serial =
      ParallelRunner(1).run_scenarios(specs, reg);
  const std::vector<RunOutcome> parallel =
      ParallelRunner(4).run_scenarios(specs, reg);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].fingerprint, parallel[i].fingerprint)
        << "spec " << i << ": " << specs[i].describe();
    EXPECT_EQ(serial[i].completed, parallel[i].completed);
  }
}

TEST(BatchingSweep, ShrinkerResetsBatchKnobsAndDropsWorkload) {
  // bounded-executions fails on the legacy requests alone, so the batch
  // knobs and the whole workload fleet are noise the shrinker must remove.
  InvariantRegistry reg = InvariantRegistry::standard_smr();
  reg.add(bounded_executions(2));

  const ScenarioSpec spec = ScenarioSpec::materialize_batched(
      ProtocolKind::MinBft, AdversaryKind::RandomDelay, 7);
  ASSERT_GT(spec.batch_size, 1u);
  ASSERT_TRUE(spec.workload.enabled());
  ASSERT_GT(spec.requests.size(), 3u);

  RunOutcome out = run_scenario(spec, reg, RunMode::Record);
  ASSERT_TRUE(out.violation.has_value());
  ASSERT_EQ(out.violation->invariant, "bounded-executions");

  const ShrinkOutcome shr =
      shrink_failure(spec, out.trace, reg, out.violation->invariant);
  EXPECT_EQ(shr.spec.batch_size, 1u);
  EXPECT_EQ(shr.spec.replica_pipeline, 1u);
  EXPECT_FALSE(shr.spec.workload.enabled());
  EXPECT_EQ(shr.spec.requests.size(), 3u);

  const RunOutcome r1 =
      run_scenario(shr.spec, reg, RunMode::Replay, &shr.trace);
  ASSERT_TRUE(r1.violation.has_value());
  EXPECT_EQ(r1.violation->invariant, "bounded-executions");
}

TEST(BatchingSweep, ShrinkerTrimsWorkloadWhenItIsTheOnlyLoad) {
  InvariantRegistry reg = InvariantRegistry::standard_smr();
  reg.add(bounded_executions(2));

  ScenarioSpec spec = ScenarioSpec::materialize_batched(
      ProtocolKind::MinBft, AdversaryKind::RandomDelay, 9);
  spec.requests.clear();  // fleet-only load: the workload cannot be dropped
  spec.workload.clients = 4;
  spec.workload.requests_per_client = 8;

  RunOutcome out = run_scenario(spec, reg, RunMode::Record);
  ASSERT_TRUE(out.violation.has_value());
  ASSERT_EQ(out.violation->invariant, "bounded-executions");

  const ShrinkOutcome shr =
      shrink_failure(spec, out.trace, reg, out.violation->invariant);
  EXPECT_TRUE(shr.spec.workload.enabled())
      << "the only load source must survive";
  EXPECT_LT(shr.spec.workload.clients * shr.spec.workload.requests_per_client,
            32u);
  EXPECT_EQ(shr.spec.batch_size, 1u);
  EXPECT_EQ(shr.spec.replica_pipeline, 1u);
}

}  // namespace
}  // namespace unidir::explore
