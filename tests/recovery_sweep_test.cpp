// Crash-restart sweeps (ctest label: recovery): the recovery adversary —
// randomized crash+restart schedules on top of a randomly-delayed network —
// across 50 seeds per protocol.
//
// Three claims, matching DESIGN.md §9:
//
//  1. POSITIVE: with durable trusted state every invariant of the standard
//     SMR registry holds — safety (prefix consistency, digest equality)
//     AND liveness (every request completes; replicas come back, so
//     unlimited client retries must eventually land).
//  2. NEGATIVE: the same sweep with volatile trusted state (counters
//     rewind at restart — reset_for_power_loss) re-enables equivocation,
//     and the registry catches real safety violations. This is the paper's
//     classification made executable: the trusted log's power derives from
//     state that must survive the host's crashes.
//  3. TOOLING: recovery scenarios record, replay byte-identically, and
//     shrink like any other scenario — crash+restart pairs are explicit
//     spec data, and irrelevant ones are dropped by the shrinker.
//
// Plus the composed fuzz: crash-restart schedules UNDER byte corruption
// (MutatingAdversary). No crash, safety holds among correct processes.
#include <gtest/gtest.h>

#include "agreement/state_machines.h"
#include "explore/scenario.h"
#include "explore/shrink.h"

namespace unidir::explore {
namespace {

constexpr std::uint64_t kSweepSeeds = 50;

InvariantRegistry safety_only() {
  InvariantRegistry r;
  r.add(smr_prefix_consistency()).add(smr_digest_equality());
  return r;
}

TEST(RecoverySweep, SpecSerdeRoundTripsWithRecoveryFields) {
  ScenarioSpec spec = ScenarioSpec::materialize_recovery(
      ProtocolKind::MinBft, AdversaryKind::RandomDelay, 3);
  spec.volatile_trusted_state = true;
  spec.client_max_attempts = 7;
  ASSERT_FALSE(spec.recoveries.empty());
  const ScenarioSpec back = ScenarioSpec::from_hex(spec.to_hex());
  EXPECT_EQ(back, spec);
  EXPECT_NE(spec.describe().find("recoveries=["), std::string::npos);
  EXPECT_NE(spec.describe().find("volatile-trusted"), std::string::npos);
}

TEST(RecoverySweep, MaterializeRecoveryIsDeterministicAndKeepsBaseDraw) {
  const auto a = ScenarioSpec::materialize_recovery(
      ProtocolKind::Pbft, AdversaryKind::RandomDelay, 11);
  const auto b = ScenarioSpec::materialize_recovery(
      ProtocolKind::Pbft, AdversaryKind::RandomDelay, 11);
  EXPECT_EQ(a, b);
  // The base draw is shared with materialize(): same workload and knobs,
  // so existing sweeps keep their per-seed scenarios.
  const auto base = ScenarioSpec::materialize(ProtocolKind::Pbft,
                                              AdversaryKind::RandomDelay, 11);
  EXPECT_EQ(a.requests, base.requests);
  EXPECT_EQ(a.max_delay, base.max_delay);
  EXPECT_TRUE(a.crashes.empty());
  ASSERT_FALSE(a.recoveries.empty());
  for (const RecoveryEvent& ev : a.recoveries)
    EXPECT_GT(ev.restart_at, ev.crash_at);
}

class RecoverySweepMatrix : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RecoverySweepMatrix, DurableStateKeepsEveryInvariant) {
  const ProtocolKind protocol = GetParam();
  const InvariantRegistry registry = InvariantRegistry::standard_smr();
  std::uint64_t total_recoveries = 0;
  for (std::uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
    const ScenarioSpec spec = ScenarioSpec::materialize_recovery(
        protocol, AdversaryKind::RandomDelay, seed);
    total_recoveries += spec.recoveries.size();
    const RunOutcome out = run_scenario(spec, registry);
    EXPECT_FALSE(out.violation.has_value())
        << out.violation->describe() << "\n  scenario: " << spec.describe();
    EXPECT_EQ(out.gave_up, 0u) << spec.describe();
  }
  EXPECT_GE(total_recoveries, kSweepSeeds)
      << "every drawn scenario restarts at least one replica";
}

INSTANTIATE_TEST_SUITE_P(Protocols, RecoverySweepMatrix,
                         ::testing::Values(ProtocolKind::MinBft,
                                           ProtocolKind::Pbft));

// Builds the targeted equivocation schedule for `seed`. The recycled-counter
// attack needs a backup with a one-slot hole exactly where the rewound
// primary's counter stream will land, so the crash times are hand-placed
// (with per-seed jitter) rather than drawn:
//
//   - Backup P (replica 2) crashes just after persisting its first
//     execution, so its durable image says "cursor = counter 2" while its
//     peers move on. It restarts with a real image — not blank — and its
//     recovery probes fire into a dead cluster, so no StateReply fills the
//     hole first.
//   - Primary A (replica 0) crashes after executing one entry more, then
//     restarts with its USIG counter rewound to 1. The client's remaining
//     requests make it re-issue counters 2, 3, ... for commands that never
//     held them — counter 2 drops into P's cursor hole, and P executes a
//     different command at a log position A's branch already assigned.
//   - Replica Q (1) crashes right after A and never returns: the only
//     replica whose vote could form a view-change quorum and re-align the
//     branches stays silent, and the crashed-at-end process is excluded
//     from the invariant context anyway.
//
// From counter 3 onward both branches execute the same commands in
// lockstep, so the two logs stay the SAME length: install_bundle's strict
// size test can never overwrite either branch, and the fork is frozen into
// the end state where the registry reads it. The chain digests through the
// divergence point differ even after pruning (prefix consistency hashes
// the pruned prefix), and the state digests differ at equal executed
// counts (digest equality).
ScenarioSpec targeted_equivocation_spec(std::uint64_t seed) {
  ScenarioSpec spec = ScenarioSpec::materialize_recovery(
      ProtocolKind::MinBft, AdversaryKind::RandomDelay, seed);
  spec.n = 3;
  spec.f = 1;
  spec.max_delay = 6;  // keep hop latency small so the jitter scan below
                       // lands inside the one-slot fork window
  while (spec.requests.size() < 5)
    spec.requests.push_back(agreement::KvStateMachine::put_op("key-pad", "v"));
  spec.requests.resize(5);
  spec.pipeline_depth = 1;  // serial client: give-ups pace the counter climb
  spec.resend_timeout = 20;
  spec.client_max_attempts = 4;
  spec.view_change_timeout = 600;
  // Persist at every execution: the restarting replicas resume from real
  // images whose cursors bracket the in-flight slot.
  spec.checkpoint_interval = 1;
  // The forked run cannot quiesce (the rewound primary's stranded request
  // retries solo view changes forever); the cap ends it with the forked
  // logs intact for the registry.
  spec.max_events = 30'000;
  const Time tc = 12 + (seed % 6) * 2;        // P's crash: rid2 in flight
  const Time d0 = 6 + ((seed >> 1) % 4) * 2;  // A's crash: rid3 in flight
  spec.recoveries.clear();
  spec.crashes.clear();
  spec.recoveries.push_back({2, tc, tc + 120});
  spec.recoveries.push_back({0, tc + d0, tc + 140});
  spec.crashes.push_back({1, tc + d0 + 2});
  return spec;
}

TEST(RecoverySweep, VolatileTrustedStateBreaksMinBftSafety) {
  // The negative experiment, paired with its control: the same targeted
  // crash schedule runs twice per seed. With durable trusted state the
  // rewound primary is impossible — its device resumes past every counter
  // it ever issued, the backup's hole stays empty until state transfer
  // fills it, and safety holds in every seed. With volatile state
  // (restart_device wipes the counter — power-loss semantics) the very
  // same schedule re-enables equivocation, and the registry must catch a
  // real fork in a healthy fraction of seeds. The jitter windows don't hit
  // the in-flight slot in every seed — network delays are seed-drawn — so
  // the assertion is "at least one caught fork", not per-seed.
  const InvariantRegistry registry = safety_only();
  std::uint64_t violations = 0;
  for (std::uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
    ScenarioSpec spec = targeted_equivocation_spec(seed);

    spec.volatile_trusted_state = false;
    const RunOutcome control = run_scenario(spec, registry);
    EXPECT_FALSE(control.violation.has_value())
        << "durable control forked: " << control.violation->describe()
        << "\n  scenario: " << spec.describe();

    spec.volatile_trusted_state = true;
    const RunOutcome out = run_scenario(spec, registry);
    if (out.violation) {
      ++violations;
      EXPECT_TRUE(out.violation->invariant == "smr-prefix-consistency" ||
                  out.violation->invariant == "smr-digest-equality")
          << out.violation->describe();
    }
  }
  EXPECT_GT(violations, 0u)
      << "volatile trusted state never produced an observable safety "
         "violation — the negative experiment lost its teeth";
}

TEST(RecoverySweep, RecoveryScenariosReplayByteIdentically) {
  for (const ProtocolKind protocol :
       {ProtocolKind::MinBft, ProtocolKind::Pbft}) {
    const ScenarioSpec spec = ScenarioSpec::materialize_recovery(
        protocol, AdversaryKind::RandomDelay, 17);
    const InvariantRegistry reg = InvariantRegistry::standard_smr();

    const RunOutcome recorded = run_scenario(spec, reg, RunMode::Record);
    ASSERT_FALSE(recorded.violation.has_value())
        << recorded.violation->describe() << " — " << spec.describe();
    ASSERT_GT(recorded.trace.decisions.size(), 0u);

    const RunOutcome replayed =
        run_scenario(spec, reg, RunMode::Replay, &recorded.trace);
    EXPECT_EQ(replayed.replay_missed, 0u) << protocol_name(protocol);
    EXPECT_EQ(replayed.fingerprint, recorded.fingerprint)
        << protocol_name(protocol);
    EXPECT_EQ(replayed.completed, recorded.completed);
    EXPECT_EQ(replayed.final_time, recorded.final_time);
  }
}

TEST(RecoverySweep, ShrinkerDropsIrrelevantRecoveryEvents) {
  // bounded-executions fails on workload size alone; the crash+restart
  // schedule is noise the shrinker must remove (whole pairs at a time),
  // and the shrunk artifact must still replay to the same violation.
  InvariantRegistry reg = InvariantRegistry::standard_smr();
  reg.add(bounded_executions(2));

  const ScenarioSpec spec = ScenarioSpec::materialize_recovery(
      ProtocolKind::MinBft, AdversaryKind::RandomDelay, 7);
  ASSERT_FALSE(spec.recoveries.empty());
  ASSERT_GT(spec.requests.size(), 3u);

  RunOutcome out = run_scenario(spec, reg, RunMode::Record);
  ASSERT_TRUE(out.violation.has_value());
  ASSERT_EQ(out.violation->invariant, "bounded-executions");

  const ShrinkOutcome shr =
      shrink_failure(spec, out.trace, reg, out.violation->invariant);
  EXPECT_EQ(shr.spec.recoveries.size(), 0u);
  EXPECT_EQ(shr.spec.requests.size(), 3u);

  const RunOutcome r1 = run_scenario(shr.spec, reg, RunMode::Replay, &shr.trace);
  const RunOutcome r2 = run_scenario(shr.spec, reg, RunMode::Replay, &shr.trace);
  ASSERT_TRUE(r1.violation.has_value());
  EXPECT_EQ(r1.violation->invariant, "bounded-executions");
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
}

class RecoveryFuzzMatrix : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RecoveryFuzzMatrix, SafetyHoldsUnderRestartsPlusByteCorruption) {
  // Composed adversary: crash-restart schedules UNDER the mutating network.
  // Corruption may stall liveness (mutation == drop at the decode
  // boundary), so only safety is asserted — and the run must not crash.
  const ProtocolKind protocol = GetParam();
  const InvariantRegistry registry = safety_only();
  std::uint64_t mutated = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ScenarioSpec spec = ScenarioSpec::materialize_recovery(
        protocol, AdversaryKind::Mutating, seed);
    spec.max_events = 60'000;  // a stalled run is a pass, not a hang
    spec.client_max_attempts = 6;
    const RunOutcome out = run_scenario(spec, registry);
    EXPECT_FALSE(out.violation.has_value())
        << out.violation->describe() << "\n  scenario: " << spec.describe();
    mutated += out.net.messages_mutated;
  }
  EXPECT_GT(mutated, 0u) << "mutations never reached the network";
}

INSTANTIATE_TEST_SUITE_P(Protocols, RecoveryFuzzMatrix,
                         ::testing::Values(ProtocolKind::MinBft,
                                           ProtocolKind::Pbft));

}  // namespace
}  // namespace unidir::explore
