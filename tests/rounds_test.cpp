#include <gtest/gtest.h>

#include <memory>

#include "rounds/checkers.h"
#include "rounds/msg_rounds.h"
#include "rounds/shmem_uni_round.h"
#include "sim/adversaries.h"
#include "sim/world.h"

namespace unidir::rounds {
namespace {

constexpr sim::Channel kRoundCh = 10;

/// Drives `target` rounds back-to-back with whatever driver it is given.
class RoundRunner final : public sim::Process {
 public:
  std::unique_ptr<RoundDriver> driver;
  int target = 0;
  Time start_delay = 0;

 protected:
  void on_start() override {
    if (start_delay == 0) {
      go();
    } else {
      set_timer(start_delay, [this] { go(); });
    }
  }

 private:
  void go() {
    if (driver->completed_rounds() >= static_cast<RoundNum>(target)) return;
    const auto r = driver->completed_rounds() + 1;
    driver->start_round(bytes_of("p" + std::to_string(id()) + "-r" +
                                 std::to_string(r)),
                        [this](RoundNum, const std::vector<Received>&) {
                          go();
                        });
  }
};

std::vector<ProcessHistory> histories(const std::vector<RoundRunner*>& runners,
                                      const sim::World& w) {
  std::vector<ProcessHistory> out;
  for (const RoundRunner* r : runners)
    if (w.correct(r->id())) out.push_back(history_of(r->id(), *r->driver));
  return out;
}

// ---- shared-memory unidirectional rounds (paper §3.2) -----------------------

struct ShmemUniCase {
  std::size_t n;
  int rounds;
  std::uint64_t seed;
  bool full_reads;
};

class ShmemUniRoundP : public ::testing::TestWithParam<ShmemUniCase> {};

TEST_P(ShmemUniRoundP, UnidirectionalityHoldsOnEverySchedule) {
  const auto& param = GetParam();
  sim::World w(param.seed, std::make_unique<sim::ImmediateAdversary>());
  shmem::MemoryHost memory(w.simulator(), sim::Rng(param.seed * 31 + 7),
                           {.max_to_linearize = 5, .max_to_respond = 5});
  memory.set_crashed([&w](ProcessId p) { return w.crashed(p); });
  ShmemRoundBoard board(param.n);

  std::vector<RoundRunner*> runners;
  for (std::size_t i = 0; i < param.n; ++i) {
    auto& r = w.spawn<RoundRunner>();
    auto driver = std::make_unique<ShmemUniRoundDriver>(
        memory, board, static_cast<ProcessId>(i));
    driver->set_full_reads(param.full_reads);
    r.driver = std::move(driver);
    r.target = param.rounds;
    runners.push_back(&r);
  }
  w.start();
  w.run_to_quiescence();

  for (const RoundRunner* r : runners)
    EXPECT_EQ(r->driver->completed_rounds(),
              static_cast<RoundNum>(param.rounds));

  const auto violation = check_unidirectional(histories(runners, w));
  EXPECT_FALSE(violation.has_value())
      << violation->describe() << " (seed " << param.seed << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShmemUniRoundP,
    ::testing::Values(
        ShmemUniCase{2, 10, 1, true}, ShmemUniCase{2, 10, 2, true},
        ShmemUniCase{3, 8, 3, true}, ShmemUniCase{3, 8, 4, true},
        ShmemUniCase{5, 6, 5, true}, ShmemUniCase{5, 6, 6, true},
        ShmemUniCase{7, 5, 7, true}, ShmemUniCase{7, 5, 8, true},
        ShmemUniCase{4, 10, 9, false}, ShmemUniCase{4, 10, 10, false},
        ShmemUniCase{6, 6, 11, false}, ShmemUniCase{8, 4, 12, false}));

TEST(ShmemUniRound, MessagesCarrySenderContent) {
  sim::World w(42, std::make_unique<sim::ImmediateAdversary>());
  shmem::MemoryHost memory(w.simulator(), sim::Rng(43));
  ShmemRoundBoard board(3);
  std::vector<RoundRunner*> runners;
  for (std::size_t i = 0; i < 3; ++i) {
    auto& r = w.spawn<RoundRunner>();
    r.driver = std::make_unique<ShmemUniRoundDriver>(
        memory, board, static_cast<ProcessId>(i));
    r.target = 3;
    runners.push_back(&r);
  }
  w.start();
  w.run_to_quiescence();
  // Every received message must be exactly what the sender sent in that round.
  for (const RoundRunner* r : runners) {
    for (const RoundRecord& rec : r->driver->history()) {
      for (const Received& got : rec.received) {
        const auto& sender_hist = runners[got.from]->driver->history();
        ASSERT_GE(sender_hist.size(), rec.round);
        EXPECT_EQ(got.message, sender_hist[rec.round - 1].sent);
      }
    }
  }
}

TEST(ShmemUniRound, SlowProcessStillSatisfiesUnidirectionality) {
  // One process starts its rounds much later; for every common round the
  // laggard must read the fast processes' old entries.
  sim::World w(7, std::make_unique<sim::ImmediateAdversary>());
  shmem::MemoryHost memory(w.simulator(), sim::Rng(8));
  ShmemRoundBoard board(3);
  std::vector<RoundRunner*> runners;
  for (std::size_t i = 0; i < 3; ++i) {
    auto& r = w.spawn<RoundRunner>();
    r.driver = std::make_unique<ShmemUniRoundDriver>(
        memory, board, static_cast<ProcessId>(i));
    r.target = 5;
    if (i == 2) r.start_delay = 500;  // long after the others finished
    runners.push_back(&r);
  }
  w.start();
  w.run_to_quiescence();
  EXPECT_EQ(runners[2]->driver->completed_rounds(), 5u);
  EXPECT_FALSE(check_unidirectional(histories(runners, w)).has_value());
  // The laggard in fact received *everything*: others' appends linearized
  // long before its reads.
  for (const RoundRecord& rec : runners[2]->driver->history())
    EXPECT_EQ(rec.received.size(), 2u) << "round " << rec.round;
}

TEST(ShmemUniRound, IncrementalAndFullReadsObserveSameRounds) {
  auto run = [](bool full) {
    sim::World w(99, std::make_unique<sim::ImmediateAdversary>());
    shmem::MemoryHost memory(w.simulator(), sim::Rng(100));
    ShmemRoundBoard board(4);
    std::vector<RoundRunner*> runners;
    for (std::size_t i = 0; i < 4; ++i) {
      auto& r = w.spawn<RoundRunner>();
      auto d = std::make_unique<ShmemUniRoundDriver>(
          memory, board, static_cast<ProcessId>(i));
      d->set_full_reads(full);
      r.driver = std::move(d);
      r.target = 6;
      runners.push_back(&r);
    }
    w.start();
    w.run_to_quiescence();
    std::vector<std::vector<RoundRecord>> hist;
    for (auto* r : runners) hist.push_back(r->driver->history());
    return hist;
  };
  // Identical seeds → identical linearization schedule → identical views.
  EXPECT_EQ(run(true).size(), run(false).size());
  const auto full = run(true);
  const auto incr = run(false);
  for (std::size_t i = 0; i < full.size(); ++i)
    for (std::size_t r = 0; r < full[i].size(); ++r)
      EXPECT_EQ(full[i][r].received, incr[i][r].received)
          << "process " << i << " round " << r + 1;
}

TEST(ShmemUniRound, StartingTwoRoundsAtOnceRejected) {
  sim::World w(1, std::make_unique<sim::ImmediateAdversary>());
  shmem::MemoryHost memory(w.simulator(), sim::Rng(2));
  ShmemRoundBoard board(1);
  ShmemUniRoundDriver driver(memory, board, 0);
  driver.start_round(bytes_of("a"), nullptr);
  EXPECT_THROW(driver.start_round(bytes_of("b"), nullptr),
               std::invalid_argument);
}

// ---- zero-directional rounds -------------------------------------------------

TEST(AsyncZeroRound, TerminatesWithFSilentProcesses) {
  constexpr std::size_t kN = 7;
  constexpr std::size_t kF = 3;
  sim::World w(5, std::make_unique<sim::RandomDelayAdversary>(1, 10));
  std::vector<RoundRunner*> runners;
  for (std::size_t i = 0; i < kN; ++i) {
    auto& r = w.spawn<RoundRunner>();
    r.driver = std::make_unique<AsyncZeroRoundDriver>(r, kRoundCh, kN, kF);
    r.target = (i < kN - kF) ? 5 : 0;  // the last f processes never send
    runners.push_back(&r);
  }
  for (std::size_t i = kN - kF; i < kN; ++i) w.crash(runners[i]->id());
  w.start();
  w.run_to_quiescence();
  for (std::size_t i = 0; i < kN - kF; ++i)
    EXPECT_EQ(runners[i]->driver->completed_rounds(), 5u) << "process " << i;
}

TEST(AsyncZeroRound, PartitionYieldsZeroDirectionality) {
  // n=4, f=2: split into {0,1} | {2,3}. Each side reaches its n−f = 2
  // quorum locally, so rounds end with no cross-partition reception — the
  // unidirectionality checker must find a violation. This is the
  // excutable content of "asynchrony is only zero-directional".
  constexpr std::size_t kN = 4;
  constexpr std::size_t kF = 2;
  auto adversary = std::make_unique<sim::PartitionAdversary>();
  auto* part = adversary.get();
  sim::World w(11, std::move(adversary));
  std::vector<RoundRunner*> runners;
  for (std::size_t i = 0; i < kN; ++i) {
    auto& r = w.spawn<RoundRunner>();
    r.driver = std::make_unique<AsyncZeroRoundDriver>(r, kRoundCh, kN, kF);
    r.target = 3;
    runners.push_back(&r);
  }
  part->block_bidirectional({0, 1}, {2, 3});
  w.start();
  w.run_to_quiescence();
  for (auto* r : runners) EXPECT_EQ(r->driver->completed_rounds(), 3u);
  const auto violation = check_unidirectional(histories(runners, w));
  ASSERT_TRUE(violation.has_value());
  // The violating pair straddles the partition.
  EXPECT_NE((violation->p < 2), (violation->q < 2));
}

TEST(AsyncZeroRound, ByzantineDuplicatesCountOnce) {
  // A Byzantine process sends three different round-1 messages; only the
  // first is kept, and the quorum is not inflated.
  constexpr std::size_t kN = 4;
  constexpr std::size_t kF = 1;

  class Spammer final : public sim::Process {
   protected:
    void on_start() override {
      for (int i = 0; i < 3; ++i)
        broadcast(kRoundCh,
                  wire::encode_tagged(RoundMsg{
                      1, bytes_of("spam" + std::to_string(i))}));
    }
  };

  sim::World w(3, std::make_unique<sim::ImmediateAdversary>());
  // Spawn the spammer first so its burst is delivered before the correct
  // processes reach their quorum — the duplicates are then live, not late.
  auto& spammer = w.spawn<Spammer>();
  w.mark_byzantine(spammer.id());
  std::vector<RoundRunner*> runners;
  for (std::size_t i = 0; i + 1 < kN; ++i) {
    auto& r = w.spawn<RoundRunner>();
    r.driver = std::make_unique<AsyncZeroRoundDriver>(r, kRoundCh, kN, kF);
    r.target = 1;
    runners.push_back(&r);
  }
  w.start();
  w.run_to_quiescence();
  for (auto* r : runners) {
    ASSERT_EQ(r->driver->completed_rounds(), 1u);
    const auto& rec = r->driver->history()[0];
    int from_spammer = 0;
    for (const auto& got : rec.received)
      if (got.from == spammer.id()) ++from_spammer;
    EXPECT_EQ(from_spammer, 1);
    // First spam message wins.
    for (const auto& got : rec.received) {
      if (got.from == spammer.id()) {
        EXPECT_EQ(got.message, bytes_of("spam0"));
      }
    }
  }
}

TEST(AsyncZeroRound, MalformedMessagesDropped) {
  constexpr std::size_t kN = 3;

  class Garbler final : public sim::Process {
   protected:
    void on_start() override {
      broadcast(kRoundCh, Bytes{0xFF, 0xFF, 0xFF, 0xFF});
    }
  };

  sim::World w(3, std::make_unique<sim::ImmediateAdversary>());
  std::vector<RoundRunner*> runners;
  for (std::size_t i = 0; i + 1 < kN; ++i) {
    auto& r = w.spawn<RoundRunner>();
    r.driver = std::make_unique<AsyncZeroRoundDriver>(r, kRoundCh, kN, 1);
    r.target = 1;
    runners.push_back(&r);
  }
  auto& g = w.spawn<Garbler>();
  w.mark_byzantine(g.id());
  w.start();
  w.run_to_quiescence();
  for (auto* r : runners) {
    ASSERT_EQ(r->driver->completed_rounds(), 1u);
    for (const auto& got : r->driver->history()[0].received)
      EXPECT_NE(got.from, g.id());
  }
}

// ---- lock-step bidirectional rounds -----------------------------------------

TEST(LockstepBiRound, BidirectionalityUnderBoundedDelay) {
  constexpr Time kDelta = 5;
  constexpr Time kRoundLen = kDelta + 1;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
    std::vector<RoundRunner*> runners;
    for (std::size_t i = 0; i < 4; ++i) {
      auto& r = w.spawn<RoundRunner>();
      r.driver = std::make_unique<LockstepBiRoundDriver>(r, kRoundCh, kRoundLen);
      r.target = 5;
      runners.push_back(&r);
    }
    w.start();
    w.run_to_quiescence();
    for (auto* r : runners) EXPECT_EQ(r->driver->completed_rounds(), 5u);
    const auto violation = check_bidirectional(histories(runners, w));
    EXPECT_FALSE(violation.has_value())
        << violation->describe() << " (seed " << seed << ")";
  }
}

TEST(LockstepBiRound, CrashedProcessDoesNotBreakOthers) {
  constexpr Time kRoundLen = 6;
  sim::World w(9, std::make_unique<sim::RandomDelayAdversary>(1, 5));
  std::vector<RoundRunner*> runners;
  for (std::size_t i = 0; i < 3; ++i) {
    auto& r = w.spawn<RoundRunner>();
    r.driver = std::make_unique<LockstepBiRoundDriver>(r, kRoundCh, kRoundLen);
    r.target = 4;
    runners.push_back(&r);
  }
  w.crash(runners[0]->id());
  w.start();
  w.run_to_quiescence();
  EXPECT_EQ(runners[0]->driver->completed_rounds(), 0u);
  for (std::size_t i = 1; i < 3; ++i)
    EXPECT_EQ(runners[i]->driver->completed_rounds(), 4u);
  EXPECT_FALSE(
      check_bidirectional(histories(runners, w)).has_value());
}

// ---- Δ-synchronous rounds ------------------------------------------------------

TEST(DeltaSyncRound, TwoDeltaWaitGivesUnidirectionality) {
  // The paper: in the Δ-synchronous model *without* synchronized clocks,
  // waiting 2Δ per round guarantees unidirectional (not bidirectional)
  // communication. Stagger the start times to break clock alignment.
  constexpr Time kDelta = 4;
  for (std::uint64_t seed : {10u, 11u, 12u, 13u}) {
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
    std::vector<RoundRunner*> runners;
    for (std::size_t i = 0; i < 4; ++i) {
      auto& r = w.spawn<RoundRunner>();
      r.driver = std::make_unique<DeltaSyncRoundDriver>(r, kRoundCh, 2 * kDelta);
      r.target = 5;
      r.start_delay = (i * 3) % 7;  // desynchronized starts
      runners.push_back(&r);
    }
    w.start();
    w.run_to_quiescence();
    const auto violation = check_unidirectional(histories(runners, w));
    EXPECT_FALSE(violation.has_value())
        << violation->describe() << " (seed " << seed << ")";
  }
}

TEST(DeltaSyncRound, ShortWaitCanViolateUnidirectionality) {
  // Waiting less than Δ lets two staggered processes miss each other in
  // both directions; some seed exhibits it.
  constexpr Time kDelta = 8;
  bool violated = false;
  for (std::uint64_t seed = 0; seed < 30 && !violated; ++seed) {
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(
                           kDelta / 2, kDelta));
    std::vector<RoundRunner*> runners;
    for (std::size_t i = 0; i < 2; ++i) {
      auto& r = w.spawn<RoundRunner>();
      r.driver = std::make_unique<DeltaSyncRoundDriver>(r, kRoundCh, 2);
      r.target = 3;
      runners.push_back(&r);
    }
    w.start();
    w.run_to_quiescence();
    violated = check_unidirectional(histories(runners, w)).has_value();
  }
  EXPECT_TRUE(violated);
}

}  // namespace
}  // namespace unidir::rounds
