// Direct unit coverage for the directionality checkers and the
// SrbEndpoint base-class contract (the property checkers' foundations
// deserve their own tests — a bug here would silently weaken every
// experiment built on them).
#include <gtest/gtest.h>

#include "broadcast/srb.h"
#include "rounds/checkers.h"

namespace unidir {
namespace {

using rounds::DirectionalityViolation;
using rounds::ProcessHistory;
using rounds::Received;
using rounds::RoundRecord;

RoundRecord record(RoundNum round, std::vector<Received> received) {
  RoundRecord r;
  r.round = round;
  r.sent = bytes_of("m");
  r.received = std::move(received);
  return r;
}

TEST(Checkers, ReceivedFromFindsSenders) {
  std::vector<RoundRecord> hist = {record(1, {{2, bytes_of("x")}}),
                                   record(2, {})};
  ProcessHistory p{1, &hist};
  EXPECT_TRUE(rounds::received_from(p, 2, 1));
  EXPECT_FALSE(rounds::received_from(p, 3, 1));
  EXPECT_FALSE(rounds::received_from(p, 2, 2));
  // Rounds beyond the history are simply "not received".
  EXPECT_FALSE(rounds::received_from(p, 2, 99));
}

TEST(Checkers, ReceivedFromRejectsRoundZero) {
  std::vector<RoundRecord> hist = {record(1, {})};
  ProcessHistory p{1, &hist};
  EXPECT_THROW((void)rounds::received_from(p, 2, 0), std::invalid_argument);
}

TEST(Checkers, UnidirectionalAcceptsOneWayExchanges) {
  // p heard q in round 1; q heard nothing. One direction suffices.
  std::vector<RoundRecord> hp = {record(1, {{2, bytes_of("x")}})};
  std::vector<RoundRecord> hq = {record(1, {})};
  EXPECT_FALSE(rounds::check_unidirectional({{1, &hp}, {2, &hq}})
                   .has_value());
}

TEST(Checkers, UnidirectionalFlagsMutualSilence) {
  std::vector<RoundRecord> hp = {record(1, {{2, bytes_of("x")}}),
                                 record(2, {})};
  std::vector<RoundRecord> hq = {record(1, {{1, bytes_of("y")}}),
                                 record(2, {})};
  const auto violation = rounds::check_unidirectional({{1, &hp}, {2, &hq}});
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->round, 2u);
  EXPECT_NE(violation->describe().find("round 2"), std::string::npos);
}

TEST(Checkers, UnidirectionalOnlyComparesCommonRounds) {
  // q only ran one round; p's later lonely rounds are not violations.
  std::vector<RoundRecord> hp = {record(1, {{2, bytes_of("x")}}),
                                 record(2, {}), record(3, {})};
  std::vector<RoundRecord> hq = {record(1, {})};
  EXPECT_FALSE(rounds::check_unidirectional({{1, &hp}, {2, &hq}})
                   .has_value());
}

TEST(Checkers, BidirectionalNeedsBothDirections) {
  std::vector<RoundRecord> hp = {record(1, {{2, bytes_of("x")}})};
  std::vector<RoundRecord> hq = {record(1, {})};
  const auto violation = rounds::check_bidirectional({{1, &hp}, {2, &hq}});
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->round, 1u);

  std::vector<RoundRecord> hq2 = {record(1, {{1, bytes_of("y")}})};
  EXPECT_FALSE(rounds::check_bidirectional({{1, &hp}, {2, &hq2}})
                   .has_value());
}

TEST(Checkers, SingleProcessIsVacuouslyFine) {
  std::vector<RoundRecord> hp = {record(1, {})};
  EXPECT_FALSE(rounds::check_unidirectional({{1, &hp}}).has_value());
  EXPECT_FALSE(rounds::check_bidirectional({{1, &hp}}).has_value());
}

// ---- SrbEndpoint base contract -----------------------------------------------

class FakeEndpoint final : public broadcast::SrbEndpoint {
 public:
  void broadcast(Bytes) override {}
  void inject(ProcessId sender, SeqNum seq, Bytes message) {
    record_delivery({sender, seq, std::move(message)});
  }
};

TEST(SrbEndpoint, TracksPerSenderHighWater) {
  FakeEndpoint ep;
  EXPECT_EQ(ep.delivered_up_to(7), 0u);
  ep.inject(7, 1, bytes_of("a"));
  ep.inject(7, 2, bytes_of("b"));
  ep.inject(8, 1, bytes_of("c"));
  EXPECT_EQ(ep.delivered_up_to(7), 2u);
  EXPECT_EQ(ep.delivered_up_to(8), 1u);
  EXPECT_EQ(ep.delivered().size(), 3u);
}

TEST(SrbEndpoint, RejectsOutOfOrderImplementations) {
  // The base class defends the sequencing property against buggy
  // implementations: delivering 2 before 1 is an internal error.
  FakeEndpoint ep;
  EXPECT_THROW(ep.inject(7, 2, bytes_of("skip")), InternalError);
  ep.inject(7, 1, bytes_of("a"));
  EXPECT_THROW(ep.inject(7, 1, bytes_of("dup")), InternalError);
}

TEST(SrbEndpoint, DeliveryCallbackObservesEachDelivery) {
  FakeEndpoint ep;
  std::vector<SeqNum> seen;
  ep.set_deliver([&](const broadcast::Delivery& d) {
    seen.push_back(d.seq);
  });
  ep.inject(1, 1, bytes_of("a"));
  ep.inject(1, 2, bytes_of("b"));
  EXPECT_EQ(seen, (std::vector<SeqNum>{1, 2}));
}

}  // namespace
}  // namespace unidir
