// The runtime boundary (ctest label: unit): Clock/Transport/Runtime
// contracts that must hold identically on BOTH backends, plus what is
// specific to each —
//
//  - RuntimeStats: the wall-clock rate arithmetic that moved here out of
//    SimulatorStats. The run_wall_ns == 0 edge (fresh stats, coarse clock)
//    must read as rate 0, not NaN/inf, on either backend.
//  - Clock::cancel: tombstoned on both backends; cancelling a fired or
//    unknown id is a no-op.
//  - RealRuntime's timer heap: fires in (deadline, arm-order) order on one
//    loop thread — deterministic, so it is testable under the unit label.
//  - Datagram framing: round-trip, and the hardening contract (nullopt,
//    never a throw, for malformed input).
//  - A World on RealRuntime in loopback-only mode (no socket, no threads —
//    sanitizer-cheap): provisioned id space, local delivery, and counted
//    drops for unaddressable ids.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/serde.h"

#include "runtime/frame.h"
#include "runtime/real_runtime.h"
#include "runtime/runtime.h"
#include "runtime/sim_runtime.h"
#include "sim/adversaries.h"
#include "sim/world.h"
#include "test_util.h"

namespace unidir::runtime {
namespace {

using testutil::Node;

// Loopback-only real runtime: no socket, no receiver thread, ticks short
// enough that timer-driven tests finish in milliseconds.
RealRuntimeOptions loopback_options() {
  RealRuntimeOptions o;
  o.tick_ns = 100'000;  // 0.1ms per tick
  return o;
}

// ---- RuntimeStats (satellite: wall-time accounting moved behind Runtime) ---

TEST(RuntimeStats, ZeroWallTimeIsZeroRateNotInfinity) {
  RuntimeStats s;
  EXPECT_EQ(s.events_per_sec(), 0.0);
  s.executed = 42;  // events counted, wall time never measured
  EXPECT_EQ(s.events_per_sec(), 0.0);
}

TEST(RuntimeStats, FreshSimBackendReportsZeroRate) {
  SimRuntime rt(/*seed=*/1, std::make_unique<sim::ImmediateAdversary>());
  EXPECT_EQ(rt.stats().run_wall_ns, 0u);
  EXPECT_EQ(rt.stats().events_per_sec(), 0.0);
}

TEST(RuntimeStats, FreshRealBackendReportsZeroRate) {
  RealRuntime rt(loopback_options());
  EXPECT_EQ(rt.stats().run_wall_ns, 0u);
  EXPECT_EQ(rt.stats().events_per_sec(), 0.0);
}

TEST(RuntimeStats, SimBackendAccountsWallTimeAcrossRuns) {
  SimRuntime rt(/*seed=*/1, std::make_unique<sim::ImmediateAdversary>());
  // Enough events that even a coarse steady_clock registers the run.
  int fired = 0;
  for (int i = 0; i < 20'000; ++i)
    rt.clock().arm(static_cast<Time>(i % 50), [&fired] { ++fired; });
  const std::size_t n = rt.run(SIZE_MAX);
  EXPECT_EQ(n, 20'000u);
  EXPECT_EQ(fired, 20'000);
  EXPECT_EQ(rt.stats().executed, 20'000u);
  EXPECT_GT(rt.stats().run_wall_ns, 0u);
  EXPECT_GT(rt.stats().events_per_sec(), 0.0);
  // And the simulator's OWN stats stayed wall-clock-free (they no longer
  // carry the field at all; executed matches what the runtime reports).
  EXPECT_EQ(rt.simulator().stats().executed, 20'000u);
}

TEST(RuntimeStats, RealBackendAccountsWallTimeAcrossRuns) {
  RealRuntime rt(loopback_options());
  int fired = 0;
  for (int i = 0; i < 100; ++i) rt.clock().arm(0, [&fired] { ++fired; });
  const std::size_t n = rt.run(SIZE_MAX);  // drains, then quiesces (no socket)
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(rt.stats().executed, 100u);
  EXPECT_GT(rt.stats().run_wall_ns, 0u);
}

// ---- transport-health fields and shard virtuals ---------------------------

TEST(RuntimeStats, TransportHealthFieldsDefaultClean) {
  // Generic harnesses poll these to decide "is this process still a
  // functioning cluster member"; both backends must start clean, and the
  // sim backend (whose network cannot fail this way) stays clean forever.
  RuntimeStats s;
  EXPECT_EQ(s.frames_send_failed, 0u);
  EXPECT_EQ(s.frames_oversized, 0u);
  EXPECT_FALSE(s.receiver_dead);

  SimRuntime sim_rt(/*seed=*/1, std::make_unique<sim::ImmediateAdversary>());
  sim_rt.clock().arm(1, [] {});
  sim_rt.run(SIZE_MAX);
  EXPECT_EQ(sim_rt.stats().frames_send_failed, 0u);
  EXPECT_FALSE(sim_rt.stats().receiver_dead);
}

TEST(RuntimeShards, SingleLoopBackendsReportOneShardAndRouteArmFor) {
  // The shard interface must be callable uniformly: a single-loop backend
  // is one shard, never reports a calling shard, aggregates into
  // shard_stats(0), and arm_for degenerates to a plain clock arm.
  SimRuntime rt(/*seed=*/1, std::make_unique<sim::ImmediateAdversary>());
  EXPECT_EQ(rt.execution_shards(), 1u);
  EXPECT_EQ(rt.calling_shard(), kNoShard);
  bool fired = false;
  rt.arm_for(/*owner=*/3, 1, [&fired] { fired = true; });
  rt.run(SIZE_MAX);
  EXPECT_TRUE(fired);
  EXPECT_EQ(rt.shard_stats(0).executed, rt.stats().executed);
}

TEST(RuntimeShards, ShardedRealBackendSplitsStatsByShard) {
  RealRuntimeOptions o = loopback_options();
  o.shards = 2;
  RealRuntime rt(o);
  EXPECT_EQ(rt.execution_shards(), 2u);
  EXPECT_EQ(rt.calling_shard(), kNoShard);  // not a loop thread
  // Three timers for owner 0 (shard 0), one for owner 1 (shard 1).
  for (int i = 0; i < 3; ++i) rt.arm_for(0, 1, [] {});
  rt.arm_for(1, 1, [] {});
  rt.run(SIZE_MAX);
  EXPECT_EQ(rt.shard_stats(0).executed, 3u);
  EXPECT_EQ(rt.shard_stats(1).executed, 1u);
  EXPECT_EQ(rt.stats().executed, 4u);  // the aggregate is the sum
}

// ---- Clock::cancel ---------------------------------------------------------

TEST(Clock, CancelSuppressesPendingTimerOnSimBackend) {
  SimRuntime rt(/*seed=*/1, std::make_unique<sim::ImmediateAdversary>());
  bool fired = false;
  const TimerId id = rt.clock().arm(5, [&fired] { fired = true; });
  rt.clock().cancel(id);
  rt.run(SIZE_MAX);
  EXPECT_FALSE(fired);
  rt.clock().cancel(id);         // cancelling a consumed id: no-op
  rt.clock().cancel(kNoTimer);   // and the null id: no-op
}

TEST(Clock, CancelSuppressesPendingTimerOnRealBackend) {
  RealRuntime rt(loopback_options());
  bool fired = false;
  bool other_fired = false;
  const TimerId id = rt.clock().arm(2, [&fired] { fired = true; });
  rt.clock().arm(3, [&other_fired] { other_fired = true; });
  rt.clock().cancel(id);
  rt.run(SIZE_MAX);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(other_fired);
  rt.clock().cancel(id);  // already gone: no-op
}

TEST(Clock, CancelAfterFireIsANoOp) {
  SimRuntime rt(/*seed=*/1, std::make_unique<sim::ImmediateAdversary>());
  int fired = 0;
  const TimerId id = rt.clock().arm(1, [&fired] { ++fired; });
  rt.run(SIZE_MAX);
  EXPECT_EQ(fired, 1);
  rt.clock().cancel(id);  // must not poison a later timer's id reuse path
  bool later = false;
  rt.clock().arm(1, [&later] { later = true; });
  rt.run(SIZE_MAX);
  EXPECT_TRUE(later);
}

// ---- RealRuntime timer ordering -------------------------------------------

TEST(RealRuntimeTimers, FireInDeadlineOrder) {
  RealRuntime rt(loopback_options());
  std::vector<int> order;
  rt.clock().arm(3, [&order] { order.push_back(3); });
  rt.clock().arm(1, [&order] { order.push_back(1); });
  rt.clock().arm(2, [&order] { order.push_back(2); });
  rt.run(SIZE_MAX);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealRuntimeTimers, EqualDeadlinesFireInArmOrder) {
  RealRuntime rt(loopback_options());
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    rt.clock().arm(1, [&order, i] { order.push_back(i); });
  rt.run(SIZE_MAX);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RealRuntimeTimers, HandlerMayArmFurtherTimers) {
  RealRuntime rt(loopback_options());
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 4) rt.clock().arm(0, chain);
  };
  rt.clock().arm(0, chain);
  rt.run(SIZE_MAX);
  EXPECT_EQ(depth, 4);
}

// ---- frame codec -----------------------------------------------------------

TEST(Frame, RoundTrips) {
  const Bytes payload = bytes_of("prepare(v=2, s=17)");
  const Bytes wire = encode_frame(3, 9, 44, payload);
  const auto f = decode_frame(wire);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->from, 3u);
  EXPECT_EQ(f->to, 9u);
  EXPECT_EQ(f->channel, 44u);
  EXPECT_EQ(f->payload, payload);
}

TEST(Frame, RoundTripsEmptyPayload) {
  const Bytes wire = encode_frame(0, 1, 0, ByteSpan{});
  const auto f = decode_frame(wire);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->payload.empty());
}

TEST(Frame, RejectsWrongMagic) {
  Bytes wire = encode_frame(1, 2, 3, bytes_of("x"));
  wire[0] ^= 0x01;  // varint low byte of the magic
  EXPECT_FALSE(decode_frame(wire).has_value());
}

TEST(Frame, RejectsEveryTruncation) {
  const Bytes wire = encode_frame(7, 8, 9, bytes_of("payload bytes"));
  for (std::size_t len = 0; len < wire.size(); ++len)
    EXPECT_FALSE(decode_frame(ByteSpan(wire.data(), len)).has_value())
        << "truncation to " << len << " bytes decoded";
}

TEST(Frame, RejectsTrailingBytes) {
  Bytes wire = encode_frame(1, 2, 3, bytes_of("x"));
  wire.push_back(0x00);
  EXPECT_FALSE(decode_frame(wire).has_value());
}

TEST(Frame, RejectsOutOfRangeIds) {
  // Hand-build a frame whose `from` varint exceeds ProcessId's 32 bits.
  serde::Writer w;
  w.uvarint(kFrameMagic);
  w.uvarint(std::uint64_t{1} << 40);  // from: too wide for ProcessId
  w.uvarint(1);
  w.uvarint(1);
  w.bytes(ByteSpan{});
  EXPECT_FALSE(decode_frame(w.take()).has_value());
}

TEST(Frame, GarbageNeverThrows) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_NO_THROW((void)decode_frame(junk));
  }
}

// ---- World on the real backend, loopback-only ------------------------------

TEST(RealWorld, LoopbackPingPong) {
  sim::World world(/*seed=*/5,
                   std::make_unique<RealRuntime>(loopback_options()));
  ASSERT_FALSE(world.simulated());

  struct Echo final : sim::Process {
    int got = 0;

   protected:
    void on_message(ProcessId from, Channel channel,
                    const Bytes& payload) override {
      ++got;
      if (payload.size() < 4) {
        Bytes next = payload;
        next.push_back(0xAB);
        send(from, channel, std::move(next));
      }
    }
  };

  auto& a = world.spawn<Echo>();
  auto& b = world.spawn<Echo>();
  world.start();
  // Harness-injected opener, attributed to b so the echo bounces a <-> b.
  world.send_message(b.id(), a.id(), 7, Bytes{0x01});
  world.run_to_quiescence();
  // 1 byte → a, 2 → b, 3 → a, 4 → b (stops growing at size 4).
  EXPECT_EQ(a.got, 2);
  EXPECT_EQ(b.got, 2);

  const auto& rt = dynamic_cast<const RealRuntime&>(world.runtime());
  // Four local messages: the injected opener plus three echoes.
  EXPECT_EQ(rt.udp_stats().loopback_messages, 4u);
  EXPECT_EQ(rt.udp_stats().frames_sent, 0u);  // no socket involved
}

TEST(RealWorld, ProvisionedWorldDropsSendsToUnspawnedIds) {
  sim::World world(/*seed=*/5,
                   std::make_unique<RealRuntime>(loopback_options()));
  world.provision(3);
  ASSERT_TRUE(world.is_local(0) == false);  // provisioned but not spawned

  auto& n = world.spawn_at<Node>(0);
  n.on_start_fn = [&] {
    n.send(1, 7, bytes_of("to nobody"));  // id 1 never spawned, no peer
    n.send(0, 7, bytes_of("to self"));    // loopback to the only local id
  };
  world.start();
  world.run_to_quiescence();

  const auto& rt = dynamic_cast<const RealRuntime&>(world.runtime());
  EXPECT_EQ(rt.udp_stats().frames_no_peer, 1u);
  EXPECT_EQ(rt.udp_stats().loopback_messages, 1u);
}

TEST(RealWorld, ProvisionDerivesTheSameKeysInEveryProcess) {
  // Two OS processes of a distributed deployment are modelled by two
  // Worlds provisioning the same (seed, total) — their registries must
  // agree on every process's key id, or signatures would not transfer.
  sim::World host_a(/*seed=*/11,
                    std::make_unique<RealRuntime>(loopback_options()));
  sim::World host_b(/*seed=*/11,
                    std::make_unique<RealRuntime>(loopback_options()));
  host_a.provision(4);
  host_b.provision(4);
  for (ProcessId p = 0; p < 4; ++p)
    EXPECT_EQ(host_a.key_of(p), host_b.key_of(p));

  // And a signature minted under host_a's registry verifies under
  // host_b's — the portable-trusted-setup property the real transport
  // relies on.
  auto& signer_side = host_a.spawn_at<Node>(2);
  const Bytes msg = bytes_of("transferable");
  const crypto::Signature sig = signer_side.signer().sign(msg);
  EXPECT_TRUE(host_b.keys().verify(sig, msg));
}

TEST(RealWorld, RunUntilHonorsPredicateAndCap) {
  sim::World world(/*seed=*/5,
                   std::make_unique<RealRuntime>(loopback_options()));
  auto& n = world.spawn<Node>();
  int ticks = 0;
  // Lives at test scope: set_timer copies it, and each copy's body refers
  // back here, so the self-rescheduling chain never dangles.
  std::function<void()> tick = [&] {
    ++ticks;
    n.set_timer(1, tick);
  };
  n.on_start_fn = [&] { tick(); };
  world.start();
  EXPECT_TRUE(world.run_until([&] { return ticks >= 10; }, 100'000));
  EXPECT_GE(ticks, 10);
  // A predicate that never holds on a loopback-only world ends at
  // quiescence or the cap — here the cap, since the chain never stops.
  EXPECT_FALSE(world.run_until([] { return false; }, 25));
}

}  // namespace
}  // namespace unidir::runtime
