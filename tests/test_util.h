// Shared helpers for protocol tests.
#pragma once

#include <functional>

#include "sim/world.h"

namespace unidir::testutil {

/// A generic host process whose start behaviour is assigned per test.
class Node final : public sim::Process {
 public:
  std::function<void()> on_start_fn;

 protected:
  void on_start() override {
    if (on_start_fn) on_start_fn();
  }
};

}  // namespace unidir::testutil
