// Randomized fault-injection sweep ("mini-Jepsen"): for many seeds, run an
// SMR cluster under a randomly drawn adversary with randomly timed crashes
// of up to f replicas (primaries included), and check the two invariants
// that must never move:
//   safety   — correct replicas' execution logs stay prefix-consistent and
//              end in identical state digests;
//   liveness — with at most f crashes and an eventually-fair network,
//              every client request completes.
#include <gtest/gtest.h>

#include "agreement/minbft.h"
#include "agreement/pbft.h"
#include "agreement/state_machines.h"
#include "sim/adversaries.h"

namespace unidir::agreement {
namespace {

struct SweepOutcome {
  std::uint64_t completed = 0;
  std::uint64_t expected = 0;
  std::optional<std::string> divergence;
  bool digests_match = true;
};

template <typename MakeReplica, typename Replica>
SweepOutcome run_fault_sweep(std::uint64_t seed, std::size_t n,
                             std::size_t f, MakeReplica make_replica,
                             std::vector<Replica*>& replicas) {
  sim::Rng plan(seed * 0x9E3779B97F4A7C15ULL + 1);

  // Randomly drawn benign-to-nasty network.
  const Time max_delay = plan.range(2, 20);
  sim::World world(seed, std::make_unique<sim::RandomDelayAdversary>(
                             1, max_delay));
  std::vector<ProcessId> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back(static_cast<ProcessId>(i));
  for (std::size_t i = 0; i < n; ++i)
    replicas.push_back(make_replica(world, ids, f));

  SmrClient::Options copt;
  copt.replicas = ids;
  copt.f = f;
  copt.resend_timeout = 200;
  copt.max_outstanding = plan.range(1, 4);
  auto& client = world.spawn<SmrClient>(copt);
  const int requests = static_cast<int>(plan.range(4, 10));
  for (int k = 0; k < requests; ++k)
    client.submit(KvStateMachine::put_op("key" + std::to_string(k % 3),
                                         "v" + std::to_string(k)));

  // Crash schedule: up to f replicas, uniformly chosen, at random times.
  const std::size_t crashes = plan.range(0, f);
  std::vector<ProcessId> victims = ids;
  plan.shuffle(victims);
  for (std::size_t c = 0; c < crashes; ++c) {
    const ProcessId victim = victims[c];
    const Time when = plan.range(1, 400);
    world.simulator().at(when, [&world, victim] { world.crash(victim); });
  }

  world.start();
  world.run_to_quiescence();

  SweepOutcome out;
  out.completed = client.completed();
  out.expected = static_cast<std::uint64_t>(requests);

  std::vector<std::pair<ProcessId, const std::vector<ExecutionRecord>*>>
      logs;
  for (auto* r : replicas)
    if (world.correct(r->id()))
      logs.emplace_back(r->id(), &r->execution_log());
  out.divergence = check_execution_consistency(logs);

  // Replicas with equal execution counts must hold identical state.
  for (std::size_t i = 0; i < replicas.size(); ++i)
    for (std::size_t j = i + 1; j < replicas.size(); ++j) {
      auto* a = replicas[i];
      auto* b = replicas[j];
      if (!world.correct(a->id()) || !world.correct(b->id())) continue;
      if (a->executed_count() == b->executed_count() &&
          a->state_digest() != b->state_digest())
        out.digests_match = false;
    }
  return out;
}

class MinBftFaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinBftFaultSweep, InvariantsHoldUnderRandomFaults) {
  const std::uint64_t seed = GetParam();
  std::vector<MinBftReplica*> replicas;
  sim::Rng pick(seed);
  const std::size_t f = pick.range(1, 2);
  const std::size_t n = 2 * f + 1;
  SgxUsigDirectory* usigs = nullptr;
  std::unique_ptr<SgxUsigDirectory> usigs_owner;
  const SweepOutcome out = run_fault_sweep<
      std::function<MinBftReplica*(sim::World&, const std::vector<ProcessId>&,
                                   std::size_t)>,
      MinBftReplica>(
      seed, n, f,
      [&](sim::World& w, const std::vector<ProcessId>& ids,
          std::size_t f_) -> MinBftReplica* {
        if (!usigs) {
          usigs_owner = std::make_unique<SgxUsigDirectory>(w.keys());
          usigs = usigs_owner.get();
        }
        MinBftReplica::Options o;
        o.replicas = ids;
        o.f = f_;
        o.view_change_timeout = 150;
        return &w.spawn<MinBftReplica>(o, *usigs,
                                       std::make_unique<KvStateMachine>());
      },
      replicas);
  EXPECT_FALSE(out.divergence.has_value()) << *out.divergence << " seed "
                                           << seed;
  EXPECT_TRUE(out.digests_match) << "seed " << seed;
  EXPECT_EQ(out.completed, out.expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinBftFaultSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

class PbftFaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PbftFaultSweep, InvariantsHoldUnderRandomFaults) {
  const std::uint64_t seed = GetParam();
  std::vector<PbftReplica*> replicas;
  sim::Rng pick(seed ^ 0xABCDEF);
  const std::size_t f = pick.range(1, 2);
  const std::size_t n = 3 * f + 1;
  const SweepOutcome out = run_fault_sweep<
      std::function<PbftReplica*(sim::World&, const std::vector<ProcessId>&,
                                 std::size_t)>,
      PbftReplica>(
      seed, n, f,
      [&](sim::World& w, const std::vector<ProcessId>& ids,
          std::size_t f_) -> PbftReplica* {
        PbftReplica::Options o;
        o.replicas = ids;
        o.f = f_;
        o.view_change_timeout = 150;
        return &w.spawn<PbftReplica>(o, std::make_unique<KvStateMachine>());
      },
      replicas);
  EXPECT_FALSE(out.divergence.has_value()) << *out.divergence << " seed "
                                           << seed;
  EXPECT_TRUE(out.digests_match) << "seed " << seed;
  EXPECT_EQ(out.completed, out.expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftFaultSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace unidir::agreement
