// Randomized fault-injection sweep ("mini-Jepsen"), run through the
// schedule explorer: for many seeds, materialize an explicit ScenarioSpec
// (randomly drawn adversary parameters, workload, and crash plan with up
// to f crashes, primaries included) and check the standard SMR invariant
// registry — safety (prefix-consistent logs, digest equality) and
// liveness (every client request completes under an eventually-fair
// network).
//
// Running through run_scenario rather than ad-hoc harness code means any
// failing seed here can be turned into a minimal committed artifact:
// record it (RunMode::Record), shrink it (shrink_failure), and paste the
// resulting hex pair into a regression test — see EXPERIMENTS.md,
// "Record → replay → shrink".
//
// Seed counts are deliberately asymmetric to stay CI-fast: the benign
// random-delay adversary gets the widest sweep; the duplicating and GST
// adversaries (satellite coverage: at-least-once delivery and partial
// synchrony) get a smaller but still multi-seed slice each.
#include <gtest/gtest.h>

#include "explore/scenario.h"

namespace unidir::explore {
namespace {

class FaultSweep
    : public ::testing::TestWithParam<
          std::tuple<ProtocolKind, AdversaryKind, std::uint64_t>> {};

TEST_P(FaultSweep, InvariantsHoldUnderRandomFaults) {
  const auto [protocol, adversary, seed] = GetParam();
  const ScenarioSpec spec = ScenarioSpec::materialize(protocol, adversary,
                                                      seed);
  const RunOutcome out =
      run_scenario(spec, InvariantRegistry::standard_smr());
  EXPECT_FALSE(out.violation.has_value())
      << out.violation->describe() << "\n  scenario: " << spec.describe()
      << "\n  reproduce: record this spec (RunMode::Record), shrink with "
         "shrink_failure(), and replay — see EXPERIMENTS.md";
}

INSTANTIATE_TEST_SUITE_P(
    RandomDelay, FaultSweep,
    ::testing::Combine(::testing::Values(ProtocolKind::MinBft,
                                         ProtocolKind::Pbft),
                       ::testing::Values(AdversaryKind::RandomDelay),
                       ::testing::Range<std::uint64_t>(1, 21)));

INSTANTIATE_TEST_SUITE_P(
    Duplicating, FaultSweep,
    ::testing::Combine(::testing::Values(ProtocolKind::MinBft,
                                         ProtocolKind::Pbft),
                       ::testing::Values(AdversaryKind::Duplicating),
                       ::testing::Range<std::uint64_t>(1, 9)));

INSTANTIATE_TEST_SUITE_P(
    Gst, FaultSweep,
    ::testing::Combine(::testing::Values(ProtocolKind::MinBft,
                                         ProtocolKind::Pbft),
                       ::testing::Values(AdversaryKind::Gst),
                       ::testing::Range<std::uint64_t>(1, 9)));

}  // namespace
}  // namespace unidir::explore
