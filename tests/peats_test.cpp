#include <gtest/gtest.h>

#include "shmem/peats.h"

namespace unidir::shmem {
namespace {

Tuple tup(std::initializer_list<std::string_view> fields) {
  Tuple t;
  for (auto f : fields) t.push_back(bytes_of(f));
  return t;
}

TEST(TupleTemplate, ExactMatch) {
  const TupleTemplate pattern{{bytes_of("a"), bytes_of("b")}};
  EXPECT_TRUE(pattern.matches(tup({"a", "b"})));
  EXPECT_FALSE(pattern.matches(tup({"a", "c"})));
}

TEST(TupleTemplate, WildcardsMatchAnything) {
  TupleTemplate pattern = TupleTemplate::any(2);
  EXPECT_TRUE(pattern.matches(tup({"x", "y"})));
  EXPECT_FALSE(pattern.matches(tup({"x"})));  // arity mismatch
  EXPECT_FALSE(pattern.matches(tup({"x", "y", "z"})));
}

TEST(TupleTemplate, TaggedFixesFirstField) {
  TupleTemplate pattern = TupleTemplate::tagged(bytes_of("vote"), 3);
  EXPECT_TRUE(pattern.matches(tup({"vote", "1", "yes"})));
  EXPECT_FALSE(pattern.matches(tup({"veto", "1", "yes"})));
}

TEST(Peats, OutThenRdp) {
  Peats space;
  EXPECT_TRUE(space.out(0, tup({"k", "v"})));
  const auto got = space.rdp(1, TupleTemplate::tagged(bytes_of("k"), 2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, tup({"k", "v"}));
  EXPECT_EQ(space.size(), 1u);  // rdp is non-destructive
}

TEST(Peats, InpRemoves) {
  Peats space;
  EXPECT_TRUE(space.out(0, tup({"k", "v"})));
  const auto got = space.inp(1, TupleTemplate::any(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(space.size(), 0u);
  EXPECT_FALSE(space.rdp(1, TupleTemplate::any(2)).has_value());
}

TEST(Peats, MatchIsInsertionOrdered) {
  Peats space;
  EXPECT_TRUE(space.out(0, tup({"k", "first"})));
  EXPECT_TRUE(space.out(0, tup({"k", "second"})));
  EXPECT_EQ(*space.rdp(0, TupleTemplate::tagged(bytes_of("k"), 2)),
            tup({"k", "first"}));
  EXPECT_EQ(*space.inp(0, TupleTemplate::tagged(bytes_of("k"), 2)),
            tup({"k", "first"}));
  EXPECT_EQ(*space.rdp(0, TupleTemplate::tagged(bytes_of("k"), 2)),
            tup({"k", "second"}));
}

TEST(Peats, CasInsertsWhenNoMatch) {
  Peats space;
  const auto prior = space.cas(0, TupleTemplate::tagged(bytes_of("lock"), 2),
                               tup({"lock", "p0"}));
  EXPECT_FALSE(prior.has_value());
  EXPECT_EQ(space.size(), 1u);
}

TEST(Peats, CasReturnsExistingWithoutInserting) {
  Peats space;
  EXPECT_TRUE(space.out(0, tup({"lock", "p0"})));
  const auto prior = space.cas(1, TupleTemplate::tagged(bytes_of("lock"), 2),
                               tup({"lock", "p1"}));
  ASSERT_TRUE(prior.has_value());
  EXPECT_EQ(*prior, tup({"lock", "p0"}));
  EXPECT_EQ(space.size(), 1u);  // p1's tuple was not inserted
}

TEST(Peats, SingleWriterPolicy) {
  Peats space(Peats::single_writer(2));
  EXPECT_FALSE(space.out(0, tup({"k", "v"})));
  EXPECT_TRUE(space.out(2, tup({"k", "v"})));
  EXPECT_TRUE(space.rdp(0, TupleTemplate::any(2)).has_value());  // reads open
  EXPECT_FALSE(space.inp(2, TupleTemplate::any(2)).has_value());  // no removal
  EXPECT_EQ(space.size(), 1u);
}

TEST(Peats, OneOutPerProcessPolicy) {
  Peats space(Peats::one_out_per_process());
  // Must tag the tuple with own id.
  EXPECT_FALSE(space.out(1, tup({"0", "value"})));
  EXPECT_TRUE(space.out(1, tup({"1", "value"})));
  // Second out by the same process denied — state-dependent policy.
  EXPECT_FALSE(space.out(1, tup({"1", "other"})));
  EXPECT_TRUE(space.out(2, tup({"2", "value"})));
  EXPECT_EQ(space.size(), 2u);
}

TEST(Peats, BothCombinatorIsConjunction) {
  int calls = 0;
  PeatsPolicy count_calls = [&calls](const PeatsRequest&, const Peats&) {
    ++calls;
    return true;
  };
  Peats space(Peats::both(count_calls, Peats::single_writer(0)));
  EXPECT_TRUE(space.out(0, tup({"k"})));
  EXPECT_FALSE(space.out(1, tup({"k"})));
  EXPECT_EQ(calls, 2);
}

TEST(Peats, RdpAllCollectsEveryMatchInOrder) {
  Peats space;
  EXPECT_TRUE(space.out(0, tup({"k", "1"})));
  EXPECT_TRUE(space.out(0, tup({"j", "x"})));
  EXPECT_TRUE(space.out(0, tup({"k", "2"})));
  const auto all = space.rdp_all(1, TupleTemplate::tagged(bytes_of("k"), 2));
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], tup({"k", "1"}));
  EXPECT_EQ(all[1], tup({"k", "2"}));
  EXPECT_TRUE(space.rdp_all(1, TupleTemplate::tagged(bytes_of("z"), 2))
                  .empty());
}

TEST(Peats, RdpAllRespectsPolicyDenial) {
  // A policy that denies all reads: rdp_all returns empty, exactly like a
  // no-match — same indistinguishability as rdp.
  Peats space([](const PeatsRequest& req, const Peats&) {
    return req.op == PeatsOp::Out;
  });
  EXPECT_TRUE(space.out(0, tup({"k", "v"})));
  EXPECT_TRUE(space.rdp_all(0, TupleTemplate::any(2)).empty());
}

TEST(Peats, DenialAndNoMatchIndistinguishable) {
  Peats space(Peats::single_writer(0));
  EXPECT_TRUE(space.out(0, tup({"k", "v"})));
  // inp is denied by policy; rdp with a non-matching template finds nothing.
  // Both give nullopt — callers cannot distinguish.
  EXPECT_EQ(space.inp(0, TupleTemplate::any(2)), std::nullopt);
  EXPECT_EQ(space.rdp(0, TupleTemplate::tagged(bytes_of("zz"), 2)),
            std::nullopt);
}

}  // namespace
}  // namespace unidir::shmem
