// FaultPlan / FaultyTransport (runtime/fault.h) — the chaos harness's
// deterministic adversary (ctest label: chaos):
//
//  - FaultPlan text and serde round-trips; malformed text fails as a whole
//    (nullopt), never silently runs a different experiment;
//  - FaultyTransport decision semantics against a recording transport and
//    a manual clock: drop, duplicate, delay (deferred re-send through the
//    clock), payload corruption (never a no-op flip), partition epochs
//    (listed-and-different-groups drops, unlisted is unrestricted);
//  - determinism: the same plan replays the same decision sequence;
//  - end-to-end sim sweeps: MinBFT and PBFT clusters complete a workload
//    and stay consistent under a lossy/delaying/corrupting plan, with the
//    corrupt payloads dying at the wire::Router decode boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "agreement/minbft.h"
#include "agreement/pbft.h"
#include "agreement/state_machines.h"
#include "agreement/usig_directory.h"
#include "runtime/fault.h"
#include "sim/adversaries.h"
#include "sim/world.h"

namespace unidir {
namespace {

using agreement::KvStateMachine;
using agreement::MinBftReplica;
using agreement::PbftReplica;
using agreement::SgxUsigDirectory;
using agreement::SmrClient;
using runtime::FaultPlan;
using runtime::FaultyTransport;
using runtime::PartitionEpoch;

// ---- FaultPlan serialization -----------------------------------------------------

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_per_million = 20'000;
  plan.duplicate_per_million = 10'000;
  plan.delay_per_million = 50'000;
  plan.corrupt_per_million = 5'000;
  plan.delay_min_ticks = 200;
  plan.delay_max_ticks = 2'000;
  plan.partitions.push_back(PartitionEpoch{1'000, 5'000, {{0, 1}, {2, 3}}});
  plan.partitions.push_back(PartitionEpoch{9'000, 9'500, {{2}, {0}}});
  return plan;
}

TEST(FaultPlanCodec, TextRoundTrips) {
  const FaultPlan plan = sample_plan();
  const auto parsed = FaultPlan::parse_text(plan.to_text());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, plan);
}

TEST(FaultPlanCodec, SerdeRoundTrips) {
  const FaultPlan plan = sample_plan();
  EXPECT_EQ(serde::decode<FaultPlan>(serde::encode(plan)), plan);
}

TEST(FaultPlanCodec, TextToleratesCommentsBlanksAndUnknownKeys) {
  const auto parsed = FaultPlan::parse_text(
      "# a chaos run\n"
      "\n"
      "seed=7   # trailing comment\n"
      "  drop = 1000  \r\n"
      "future_knob=123\n"
      "partition=10:20:0,1|2\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, 7u);
  EXPECT_EQ(parsed->drop_per_million, 1'000u);
  ASSERT_EQ(parsed->partitions.size(), 1u);
  EXPECT_EQ(parsed->partitions[0],
            (PartitionEpoch{10, 20, {{0, 1}, {2}}}));
}

TEST(FaultPlanCodec, MalformedTextFailsWholesale) {
  const char* bad[] = {
      "drop=fast",                 // non-numeric value
      "drop=10 000",               // junk after the number
      "drop",                      // no '='
      "drop=-5",                   // sign not allowed
      "partition=10:20",           // missing groups field
      "partition=20:10:0|1",       // end <= start
      "partition=10:20:0|x",       // non-numeric id
      "delay_min=50\ndelay_max=5", // inverted delay window
  };
  for (const char* text : bad)
    EXPECT_FALSE(FaultPlan::parse_text(text).has_value()) << text;
}

TEST(FaultPlanCodec, DefaultPlanHasNoFaults) {
  EXPECT_FALSE(FaultPlan{}.any_faults());
  EXPECT_TRUE(sample_plan().any_faults());
  FaultPlan partition_only;
  partition_only.partitions.push_back(PartitionEpoch{0, 1, {{0}, {1}}});
  EXPECT_TRUE(partition_only.any_faults());
}

// ---- FaultyTransport unit semantics ----------------------------------------------

struct RecordingTransport final : runtime::Transport {
  struct Sent {
    ProcessId from;
    ProcessId to;
    Channel channel;
    Bytes payload;
  };
  std::vector<Sent> sent;

  void send(ProcessId from, ProcessId to, Channel channel,
            Payload payload) override {
    sent.push_back({from, to, channel, payload.bytes()});
  }
  void set_deliver(DeliverFn) override {}
  std::size_t peer_count() const override { return 0; }
};

/// Minimal hand-cranked clock: now() is set by the test; fire() runs every
/// armed callback whose deadline has passed, in arm order.
struct ManualClock final : runtime::Clock {
  struct Armed {
    Time deadline;
    std::function<void()> fn;
  };
  Time current = 0;
  std::vector<Armed> armed;

  Time now() const override { return current; }
  runtime::TimerId arm(Time delay, std::function<void()> fn) override {
    armed.push_back({current + delay, std::move(fn)});
    return runtime::TimerId(armed.size());
  }
  void cancel(runtime::TimerId) override {}
  void advance_to(Time t) {
    current = t;
    std::vector<Armed> pending;
    std::vector<Armed> due;
    for (auto& a : armed)
      (a.deadline <= t ? due : pending).push_back(std::move(a));
    armed = std::move(pending);
    for (auto& a : due) a.fn();
  }
};

TEST(FaultyTransport, CertainDropLosesEverything) {
  RecordingTransport inner;
  ManualClock clock;
  FaultPlan plan;
  plan.drop_per_million = 1'000'000;
  FaultyTransport faulty(inner, clock, plan);
  for (int k = 0; k < 10; ++k) faulty.send(0, 1, 3, bytes_of("m"));
  EXPECT_TRUE(inner.sent.empty());
  EXPECT_EQ(faulty.stats().dropped, 10u);
  EXPECT_EQ(faulty.stats().forwarded, 0u);
}

TEST(FaultyTransport, CertainDuplicateDoublesEverySend) {
  RecordingTransport inner;
  ManualClock clock;
  FaultPlan plan;
  plan.duplicate_per_million = 1'000'000;
  FaultyTransport faulty(inner, clock, plan);
  for (int k = 0; k < 5; ++k) faulty.send(0, 1, 3, bytes_of("m"));
  EXPECT_EQ(inner.sent.size(), 10u);
  EXPECT_EQ(faulty.stats().duplicated, 5u);
  EXPECT_EQ(faulty.stats().forwarded, 5u);
}

TEST(FaultyTransport, CertainDelayDefersThroughTheClock) {
  RecordingTransport inner;
  ManualClock clock;
  FaultPlan plan;
  plan.delay_per_million = 1'000'000;
  plan.delay_min_ticks = 5;
  plan.delay_max_ticks = 5;
  FaultyTransport faulty(inner, clock, plan);
  faulty.send(0, 1, 3, bytes_of("deferred"));
  EXPECT_TRUE(inner.sent.empty()) << "delayed send leaked through early";
  EXPECT_EQ(faulty.stats().delayed, 1u);
  clock.advance_to(4);
  EXPECT_TRUE(inner.sent.empty());
  clock.advance_to(5);
  ASSERT_EQ(inner.sent.size(), 1u);
  EXPECT_EQ(inner.sent[0].payload, bytes_of("deferred"));
  EXPECT_EQ(inner.sent[0].to, 1u);
}

TEST(FaultyTransport, CertainCorruptionAlwaysChangesThePayload) {
  RecordingTransport inner;
  ManualClock clock;
  FaultPlan plan;
  plan.corrupt_per_million = 1'000'000;
  FaultyTransport faulty(inner, clock, plan);
  const Bytes original = bytes_of("payload bytes here");
  for (int k = 0; k < 20; ++k) faulty.send(0, 1, 3, Bytes(original));
  ASSERT_EQ(inner.sent.size(), 20u);
  for (const auto& s : inner.sent) {
    EXPECT_EQ(s.payload.size(), original.size());
    EXPECT_NE(s.payload, original) << "corruption was a no-op flip";
  }
  EXPECT_EQ(faulty.stats().corrupted, 20u);
  // An empty payload has nothing to flip and must not crash.
  faulty.send(0, 1, 3, Payload{});
  EXPECT_EQ(inner.sent.size(), 21u);
}

TEST(FaultyTransport, CorruptionCopiesOnWriteBeforeFlipping) {
  // Multicast shares one COW buffer across links; corrupting one link's
  // copy must not reach into the others.
  RecordingTransport inner;
  ManualClock clock;
  FaultPlan plan;
  plan.corrupt_per_million = 1'000'000;
  FaultyTransport faulty(inner, clock, plan);
  const Payload shared(bytes_of("shared buffer"));
  faulty.send(0, 1, 3, shared);
  EXPECT_EQ(shared.bytes(), bytes_of("shared buffer"))
      << "corruption mutated the sender's shared buffer";
}

TEST(FaultyTransport, PartitionEpochSplitsListedGroupsOnly) {
  RecordingTransport inner;
  ManualClock clock;
  FaultPlan plan;
  plan.partitions.push_back(PartitionEpoch{10, 20, {{0, 1}, {2, 3}}});
  FaultyTransport faulty(inner, clock, plan);

  clock.current = 9;  // before the epoch: everything flows
  faulty.send(0, 2, 1, bytes_of("m"));
  EXPECT_EQ(inner.sent.size(), 1u);

  clock.current = 10;  // inside the epoch
  faulty.send(0, 2, 1, bytes_of("m"));  // across groups: dropped
  faulty.send(2, 1, 1, bytes_of("m"));  // across groups (other way): dropped
  EXPECT_EQ(inner.sent.size(), 1u);
  faulty.send(0, 1, 1, bytes_of("m"));  // same group: flows
  faulty.send(0, 4, 1, bytes_of("m"));  // unlisted peer: unrestricted
  faulty.send(4, 3, 1, bytes_of("m"));
  EXPECT_EQ(inner.sent.size(), 4u);

  clock.current = 20;  // epoch end is exclusive: healed
  faulty.send(0, 2, 1, bytes_of("m"));
  EXPECT_EQ(inner.sent.size(), 5u);
  EXPECT_EQ(faulty.stats().partitioned, 2u);
}

TEST(FaultyTransport, SameSeedReplaysTheSameDecisions) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_per_million = 300'000;
  plan.duplicate_per_million = 200'000;
  plan.corrupt_per_million = 100'000;
  auto run = [&plan] {
    RecordingTransport inner;
    ManualClock clock;
    FaultyTransport faulty(inner, clock, plan);
    for (int k = 0; k < 200; ++k)
      faulty.send(0, 1, 1, bytes_of("msg" + std::to_string(k)));
    std::vector<Bytes> delivered;
    for (const auto& s : inner.sent) delivered.push_back(s.payload);
    return std::make_pair(faulty.stats(), delivered);
  };
  const auto [stats_a, sent_a] = run();
  const auto [stats_b, sent_b] = run();
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  EXPECT_EQ(stats_a.duplicated, stats_b.duplicated);
  EXPECT_EQ(stats_a.corrupted, stats_b.corrupted);
  EXPECT_EQ(stats_a.forwarded, stats_b.forwarded);
  EXPECT_EQ(sent_a, sent_b) << "same plan, different byte stream";
  // And the faults actually engaged at these rates.
  EXPECT_GT(stats_a.dropped, 0u);
  EXPECT_GT(stats_a.duplicated, 0u);
  EXPECT_GT(stats_a.corrupted, 0u);
}

// ---- end-to-end sim sweeps -------------------------------------------------------

FaultPlan sweep_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_per_million = 80'000;      // 8% loss
  plan.duplicate_per_million = 50'000;
  plan.delay_per_million = 100'000;
  plan.delay_min_ticks = 1;
  plan.delay_max_ticks = 8;
  plan.corrupt_per_million = 30'000;
  return plan;
}

TEST(FaultPlanSweep, MinBftCompletesAndStaysConsistentUnderFaults) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::World world(seed, std::make_unique<sim::RandomDelayAdversary>(1, 4));
    world.install_fault_plan(sweep_plan(seed));
    SgxUsigDirectory usigs(world.keys());
    MinBftReplica::Options opt;
    opt.f = 1;
    for (ProcessId i = 0; i < 3; ++i) opt.replicas.push_back(i);
    std::vector<MinBftReplica*> replicas;
    for (ProcessId i = 0; i < 3; ++i)
      replicas.push_back(&world.spawn<MinBftReplica>(
          opt, usigs, std::make_unique<KvStateMachine>()));
    SmrClient::Options copt;
    copt.replicas = opt.replicas;
    copt.f = 1;
    copt.resend_timeout = 100;
    copt.resend_jitter = 16;
    auto& client = world.spawn<SmrClient>(copt);
    for (int k = 0; k < 6; ++k)
      client.submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
    world.start();
    // Under message LOSS, quiescence is not guaranteed — a replica that
    // missed a commit quorum and sees no further traffic retries view
    // changes indefinitely — so the gate is the client's closed loop plus
    // prefix consistency, the same gate the chaos harness uses.
    ASSERT_TRUE(world.run_until([&] { return client.completed() >= 6; }))
        << "seed " << seed << ": workload never completed";

    EXPECT_EQ(client.completed(), 6u) << "seed " << seed;
    std::vector<std::pair<ProcessId, const agreement::ExecutionLog*>> logs;
    for (auto* r : replicas) logs.emplace_back(r->id(), &r->execution_log());
    const auto divergence = agreement::check_execution_consistency(logs);
    EXPECT_FALSE(divergence.has_value()) << "seed " << seed << ": "
                                         << *divergence;

    const auto* fstats = world.fault_stats();
    ASSERT_NE(fstats, nullptr);
    EXPECT_GT(fstats->dropped + fstats->delayed + fstats->duplicated, 0u)
        << "seed " << seed << ": the plan never engaged";
    if (fstats->corrupted > 0) {
      EXPECT_GT(world.wire_stats().total_dropped_malformed(), 0u)
          << "seed " << seed
          << ": corrupted payloads were not rejected at the wire";
    }
  }
}

TEST(FaultPlanSweep, PbftCompletesAndStaysConsistentUnderFaults) {
  for (std::uint64_t seed = 4; seed <= 6; ++seed) {
    sim::World world(seed, std::make_unique<sim::RandomDelayAdversary>(1, 4));
    world.install_fault_plan(sweep_plan(seed));
    PbftReplica::Options opt;
    opt.f = 1;
    for (ProcessId i = 0; i < 4; ++i) opt.replicas.push_back(i);
    std::vector<PbftReplica*> replicas;
    for (ProcessId i = 0; i < 4; ++i)
      replicas.push_back(&world.spawn<PbftReplica>(
          opt, std::make_unique<KvStateMachine>()));
    SmrClient::Options copt;
    copt.replicas = opt.replicas;
    copt.f = 1;
    copt.resend_timeout = 100;
    copt.resend_jitter = 16;
    auto& client = world.spawn<SmrClient>(copt);
    for (int k = 0; k < 6; ++k)
      client.submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
    world.start();
    ASSERT_TRUE(world.run_until([&] { return client.completed() >= 6; }))
        << "seed " << seed << ": workload never completed";

    EXPECT_EQ(client.completed(), 6u) << "seed " << seed;
    std::vector<std::pair<ProcessId, const agreement::ExecutionLog*>> logs;
    for (auto* r : replicas) logs.emplace_back(r->id(), &r->execution_log());
    const auto divergence = agreement::check_execution_consistency(logs);
    EXPECT_FALSE(divergence.has_value()) << "seed " << seed << ": "
                                         << *divergence;
  }
}

TEST(FaultPlanSweep, PartitionHealsAndTheClusterStillCommits) {
  // Isolate the MinBFT view-0 primary from its backups for a window that
  // the workload straddles. The backups hold the f+1 quorum, so a view
  // change restores progress during the partition; the client (unlisted,
  // hence unrestricted) completes everything.
  sim::World world(11, std::make_unique<sim::RandomDelayAdversary>(1, 4));
  FaultPlan plan;
  plan.seed = 11;
  plan.partitions.push_back(PartitionEpoch{50, 3'000, {{0}, {1, 2}}});
  world.install_fault_plan(plan);
  SgxUsigDirectory usigs(world.keys());
  MinBftReplica::Options opt;
  opt.f = 1;
  for (ProcessId i = 0; i < 3; ++i) opt.replicas.push_back(i);
  std::vector<MinBftReplica*> replicas;
  for (ProcessId i = 0; i < 3; ++i)
    replicas.push_back(&world.spawn<MinBftReplica>(
        opt, usigs, std::make_unique<KvStateMachine>()));
  SmrClient::Options copt;
  copt.replicas = opt.replicas;
  copt.f = 1;
  copt.resend_timeout = 100;
  auto& client = world.spawn<SmrClient>(copt);
  client.submit(KvStateMachine::put_op("k0", "v"));
  client.submit(KvStateMachine::put_op("k1", "v"));
  world.simulator().at(100, [&] {
    client.submit(KvStateMachine::put_op("k2", "v"));
    client.submit(KvStateMachine::put_op("k3", "v"));
  });
  world.start();
  ASSERT_TRUE(world.run_until([&] { return client.completed() >= 4; }))
      << "cluster never recovered from the partition";

  EXPECT_GT(world.fault_stats()->partitioned, 0u)
      << "the partition never bit";
  // The isolated primary lost its view; the survivors carry the workload.
  std::size_t caught_up = 0;
  for (auto* r : replicas)
    if (r->executed_count() >= 4u) ++caught_up;
  EXPECT_GE(caught_up, 2u);
  std::vector<std::pair<ProcessId, const agreement::ExecutionLog*>> logs;
  for (auto* r : replicas) logs.emplace_back(r->id(), &r->execution_log());
  const auto divergence = agreement::check_execution_consistency(logs);
  EXPECT_FALSE(divergence.has_value()) << *divergence;
}

TEST(FaultPlanSweep, SameWorldSeedAndPlanReproduceTheSameRun) {
  auto run = [] {
    sim::World world(5, std::make_unique<sim::RandomDelayAdversary>(1, 4));
    world.install_fault_plan(sweep_plan(5));
    SgxUsigDirectory usigs(world.keys());
    MinBftReplica::Options opt;
    opt.f = 1;
    for (ProcessId i = 0; i < 3; ++i) opt.replicas.push_back(i);
    std::vector<MinBftReplica*> replicas;
    for (ProcessId i = 0; i < 3; ++i)
      replicas.push_back(&world.spawn<MinBftReplica>(
          opt, usigs, std::make_unique<KvStateMachine>()));
    SmrClient::Options copt;
    copt.replicas = opt.replicas;
    copt.f = 1;
    copt.resend_timeout = 100;
    auto& client = world.spawn<SmrClient>(copt);
    for (int k = 0; k < 4; ++k)
      client.submit(KvStateMachine::put_op("k" + std::to_string(k), "v"));
    world.start();
    EXPECT_TRUE(world.run_until([&] { return client.completed() >= 4; }));
    return std::make_pair(*world.fault_stats(),
                          replicas[0]->execution_log().digest_through(
                              replicas[0]->execution_log().size()));
  };
  const auto [stats_a, digest_a] = run();
  const auto [stats_b, digest_b] = run();
  EXPECT_EQ(stats_a.forwarded, stats_b.forwarded);
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  EXPECT_EQ(stats_a.delayed, stats_b.delayed);
  EXPECT_EQ(stats_a.corrupted, stats_b.corrupted);
  EXPECT_EQ(digest_a, digest_b);
}

}  // namespace
}  // namespace unidir
