// Real-time loopback smoke (ctest label: realtime): the full MinBFT stack —
// USIG attestation, batching, the typed wire boundary, the SMR client —
// running over ACTUAL UDP sockets on 127.0.0.1, one World (= one modelled
// OS process) per replica and one for the client, each on its own thread.
//
// What this buys beyond the simulator: the datagram framing, the receiver
// thread / event-loop handoff, the peer addressing, the ephemeral-port
// rendezvous, and the deterministic cross-process key derivation are all
// exercised for real. What it deliberately does NOT claim: determinism —
// delivery order is whatever the kernel does, which is exactly why the
// invariant checked at the end is the protocol's (prefix-consistent
// execution logs), not a fingerprint.
//
// Excluded from the ASan/UBSan CI shards (label filter) but included in
// TSan: the interesting bugs here are cross-thread.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "agreement/minbft.h"
#include "agreement/state_machines.h"
#include "runtime/real_runtime.h"
#include "sim/world.h"

namespace unidir {
namespace {

using agreement::KvStateMachine;
using agreement::MinBftReplica;
using agreement::SgxUsigDirectory;
using agreement::SmrClient;
using runtime::RealRuntime;
using runtime::RealRuntimeOptions;

constexpr std::size_t kReplicas = 4;  // n = 4, f = 1 (commit quorum f+1)
constexpr std::size_t kF = 1;
constexpr std::size_t kTotal = kReplicas + 1;  // + the client, id 4
constexpr ProcessId kClientId = 4;
constexpr std::uint64_t kSeed = 42;
constexpr std::uint64_t kRequests = 8;

// 0.2ms ticks: MinBFT's view-change timeout (300 ticks) becomes 60ms and
// the client's resend base (400 ticks) 80ms — snappy on loopback, yet far
// above its RTT, so retries stay bounded.
constexpr std::uint64_t kTickNs = 200'000;

/// One modelled OS process: a World over its own RealRuntime + socket,
/// the shared-by-derivation key registry, and its single local process.
struct Host {
  explicit Host(std::unique_ptr<runtime::Runtime> rt,
                std::size_t total = kTotal)
      : world(kSeed, std::move(rt)), usigs(world.keys()) {
    world.provision(total);
    // Materialize every replica's enclave in id order: enclave keys are
    // generated deterministically after the provisioned process keys, so
    // all five hosts derive identical registries and UIs verify anywhere.
    for (ProcessId p = 0; p < kReplicas; ++p) usigs.enclave_for(p);
  }

  sim::World world;
  SgxUsigDirectory usigs;
};

TEST(RealTimeLoopback, MinBftCommitsAClosedLoopWorkloadOverUdp) {
  // Bind every socket first (port 0 = ephemeral), then exchange the
  // resolved ports — the rendezvous a deployment would do via config.
  std::vector<std::unique_ptr<RealRuntime>> runtimes;
  for (std::size_t i = 0; i < kTotal; ++i) {
    RealRuntimeOptions o;
    o.tick_ns = kTickNs;
    o.listen = "127.0.0.1:0";
    runtimes.push_back(std::make_unique<RealRuntime>(o));
    ASSERT_GT(runtimes.back()->bound_port(), 0);
  }
  std::vector<std::uint16_t> ports;
  for (const auto& rt : runtimes) ports.push_back(rt->bound_port());
  for (std::size_t i = 0; i < kTotal; ++i)
    for (ProcessId p = 0; p < kTotal; ++p)
      if (p != i) runtimes[i]->add_peer(p, "127.0.0.1", ports[p]);

  // Keep loop-control handles; ownership moves into the Worlds.
  std::vector<RealRuntime*> controls;
  for (auto& rt : runtimes) controls.push_back(rt.get());

  MinBftReplica::Options ropt;
  ropt.f = kF;
  for (ProcessId p = 0; p < kReplicas; ++p) ropt.replicas.push_back(p);

  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<MinBftReplica*> replicas;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    hosts.push_back(std::make_unique<Host>(std::move(runtimes[p])));
    replicas.push_back(&hosts.back()->world.spawn_at<MinBftReplica>(
        p, ropt, hosts.back()->usigs,
        std::make_unique<KvStateMachine>()));
    hosts.back()->world.start();
  }

  auto client_host = std::make_unique<Host>(std::move(runtimes[kClientId]));
  SmrClient::Options copt;
  copt.replicas = ropt.replicas;
  copt.f = kF;
  copt.max_attempts = 25;  // bounded retries: give up instead of spinning
  auto& client =
      client_host->world.spawn_at<SmrClient>(kClientId, copt);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const std::string key = "k" + std::to_string(i % 3);
    if (i % 3 == 2)
      client.submit(KvStateMachine::get_op(key));
    else
      client.submit(KvStateMachine::put_op(key, "v" + std::to_string(i)));
  }
  client_host->world.start();

  // Replica loops: run until the test says done. The predicate is an
  // atomic read, re-checked after every event and every bounded wait, so
  // shutdown needs no extra machinery beyond stores + stop().
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    sim::World* w = &hosts[p]->world;
    threads.emplace_back([w, &done] {
      w->run_until([&done] { return done.load(std::memory_order_relaxed); },
                   SIZE_MAX);
    });
  }

  // Client loop on this thread, with a wall-clock safety net far above
  // anything a healthy run needs.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  const bool committed = client_host->world.run_until(
      [&] {
        return client.completed() + client.gave_up() >= kRequests ||
               std::chrono::steady_clock::now() > deadline;
      },
      SIZE_MAX);
  EXPECT_TRUE(committed);
  EXPECT_EQ(client.completed(), kRequests);
  EXPECT_EQ(client.gave_up(), 0u) << "client abandoned requests";

  done.store(true, std::memory_order_relaxed);
  for (auto* c : controls) c->stop();  // wakes any loop parked in a wait
  for (auto& t : threads) t.join();

  // Threads are joined: replica state is safe to read from here.
  std::vector<std::pair<ProcessId, const agreement::ExecutionLog*>> logs;
  for (ProcessId p = 0; p < kReplicas; ++p)
    logs.emplace_back(p, &replicas[p]->execution_log());
  const auto divergence = agreement::check_execution_consistency(logs);
  EXPECT_FALSE(divergence.has_value()) << *divergence;

  // Commit quorum is f+1 = 2, so at least that many replicas executed the
  // full workload.
  std::size_t caught_up = 0;
  for (auto* r : replicas)
    if (r->executed_count() >= kRequests) ++caught_up;
  EXPECT_GE(caught_up, kF + 1);

  // The wire survived: every datagram either decoded through both
  // hardening layers or was counted, and nothing was dropped for want of
  // an address.
  for (ProcessId p = 0; p < kTotal; ++p) {
    const auto us = controls[p]->udp_stats();
    EXPECT_EQ(us.frames_no_peer, 0u) << "host " << p;
    EXPECT_EQ(us.frames_malformed, 0u) << "host " << p;
    EXPECT_GT(us.frames_sent, 0u) << "host " << p;
  }
}

// ---- shutdown ordering -----------------------------------------------------------
//
// The teardown path is where loop thread, receiver thread and destructor
// meet; these tests (TSan-covered) pin the contract: stop() is callable
// from any thread and from inside a handler, and the destructor joins the
// receiver and discards still-armed timers no matter what state the run
// was abandoned in.

TEST(RealTimeShutdown, StopMidDeliveryWithTimersArmedJoinsCleanly) {
  auto make = [] {
    RealRuntimeOptions o;
    o.tick_ns = 100'000;  // 0.1ms ticks keep the pump hot
    o.listen = "127.0.0.1:0";
    return std::make_unique<RealRuntime>(o);
  };
  auto a = make();
  auto b = make();
  a->add_peer(1, "127.0.0.1", b->bound_port());
  b->add_peer(0, "127.0.0.1", a->bound_port());
  a->transport().set_local([](ProcessId p) { return p == 0; });
  b->transport().set_local([](ProcessId p) { return p == 1; });
  a->transport().set_deliver(
      [](ProcessId, ProcessId, Channel, const Payload&) {});
  std::atomic<std::uint64_t> received_b{0};
  b->transport().set_deliver(
      [&](ProcessId, ProcessId, Channel, const Payload&) {
        received_b.fetch_add(1, std::memory_order_relaxed);
      });

  // Long-deadline timers that will still be armed at teardown, on both
  // sides — the destructor must discard them, not wait for them.
  for (int k = 0; k < 64; ++k) {
    a->clock().arm(10'000'000, [] {});
    b->clock().arm(10'000'000, [] {});
  }
  // A self-rearming pump keeps datagrams in flight for the whole test, so
  // stop() lands while the receiver thread is mid-delivery.
  std::function<void()> pump = [&] {
    for (int k = 0; k < 8; ++k)
      a->transport().send(0, 1, 7, bytes_of("chaff"));
    a->clock().arm(1, pump);
  };
  a->clock().arm(1, pump);

  std::thread loop_a([&] { a->run(SIZE_MAX); });
  std::thread loop_b([&] { b->run(SIZE_MAX); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received_b.load(std::memory_order_relaxed) < 100 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(received_b.load(std::memory_order_relaxed), 100u)
      << "traffic never flowed; the shutdown below would prove nothing";

  // Stop the RECEIVING side first: a keeps firing datagrams at a runtime
  // that is tearing down, which is exactly the hazardous interleaving.
  b->stop();
  loop_b.join();
  b.reset();  // destructor: joins b's receiver while a still sends
  a->stop();
  loop_a.join();
  EXPECT_GT(a->udp_stats().frames_sent, 0u);
}

TEST(RealTimeShutdown, StopFromInsideATimerHandler) {
  RealRuntimeOptions o;
  o.tick_ns = 100'000;
  o.listen = "127.0.0.1:0";
  RealRuntime rt(o);
  rt.transport().set_deliver(
      [](ProcessId, ProcessId, Channel, const Payload&) {});
  for (int k = 0; k < 32; ++k) rt.clock().arm(10'000'000, [] {});
  bool late_fired = false;
  rt.clock().arm(1, [&] { rt.stop(); });
  rt.clock().arm(10'000'000, [&] { late_fired = true; });
  rt.run(SIZE_MAX);
  EXPECT_TRUE(rt.stopped());
  EXPECT_FALSE(late_fired) << "run() outlived stop() by a long timer";
}

TEST(RealTimeShutdown, DestroyWithoutEverRunningJoinsTheReceiver) {
  // Construction starts the receiver thread; destruction must join it even
  // if run() was never called and timers are still armed. Iterate a few
  // times to give TSan interleavings to chew on.
  for (int i = 0; i < 8; ++i) {
    RealRuntimeOptions o;
    o.listen = "127.0.0.1:0";
    RealRuntime rt(o);
    rt.clock().arm(10'000'000, [] {});
    ASSERT_GT(rt.bound_port(), 0);
  }
}

// ---- send-path loss accounting ---------------------------------------------
//
// The regression suite for the silent-loss bugs the batched-I/O PR fixed:
// before, an oversized frame died as an unchecked kernel EMSGSIZE and a
// rejected sendto was reported as delivered traffic. Each test drives the
// REAL failure (actual kernel errno, not a mock) and asserts it lands in
// the right counter — in udp_stats() and, for generic harnesses, mirrored
// in RuntimeStats.

TEST(RealTimeSendAccounting, OversizedFrameIsRefusedAtEncodeTime) {
  RealRuntimeOptions o;
  o.listen = "127.0.0.1:0";
  o.max_datagram = 128;
  RealRuntime rt(o);
  rt.add_peer(1, "127.0.0.1", rt.bound_port());
  rt.transport().set_deliver(
      [](ProcessId, ProcessId, Channel, const Payload&) {});

  rt.transport().send(0, 1, 7, Bytes(4096, std::uint8_t{0xAB}));
  auto us = rt.udp_stats();
  EXPECT_EQ(us.frames_oversized, 1u);
  EXPECT_EQ(us.frames_sent, 0u) << "an oversized frame reached the socket";
  EXPECT_EQ(us.frames_send_failed, 0u);
  EXPECT_EQ(rt.stats().frames_oversized, 1u);

  // The limit is per frame, not a poisoned channel: a fitting frame on the
  // same channel still goes out.
  rt.transport().send(0, 1, 7, bytes_of("small"));
  EXPECT_EQ(rt.udp_stats().frames_sent, 1u);
}

TEST(RealTimeSendAccounting, KernelRejectionIsCountedNotSilent) {
  // Raising max_datagram PAST the IPv4 UDP payload maximum lets a 70KB
  // frame through the encode-time check, so sendto itself must fail —
  // a genuine kernel EMSGSIZE, the exact path that used to lose frames
  // without a trace.
  RealRuntimeOptions o;
  o.listen = "127.0.0.1:0";
  o.max_datagram = 200'000;
  RealRuntime rt(o);
  rt.add_peer(1, "127.0.0.1", rt.bound_port());
  rt.transport().set_deliver(
      [](ProcessId, ProcessId, Channel, const Payload&) {});

  rt.transport().send(0, 1, 7, Bytes(70'000, std::uint8_t{0x5A}));
  auto us = rt.udp_stats();
  EXPECT_EQ(us.frames_send_failed, 1u);
  EXPECT_EQ(us.frames_sent, 0u) << "a rejected send was reported delivered";
  EXPECT_EQ(us.frames_oversized, 0u);
  EXPECT_EQ(rt.stats().frames_send_failed, 1u);
}

TEST(RealTimeSendAccounting, BatchedFlushCountsEveryKernelRejection) {
  // Sends staged from inside the loop take the sendmmsg flush path; mix
  // doomed and healthy frames in one burst. sendmmsg only reports -1 when
  // the FIRST datagram fails, so the flush must count that one and keep
  // going instead of abandoning (or infinitely retrying) the burst.
  RealRuntimeOptions o;
  o.listen = "127.0.0.1:0";
  o.max_datagram = 200'000;
  o.send_batch = 8;
  RealRuntime rt(o);
  rt.add_peer(1, "127.0.0.1", rt.bound_port());
  rt.transport().set_deliver(
      [](ProcessId, ProcessId, Channel, const Payload&) {});

  rt.clock().arm(0, [&] {
    for (int k = 0; k < 3; ++k)
      rt.transport().send(0, 1, 7, Bytes(70'000, std::uint8_t(k)));
    for (int k = 0; k < 2; ++k) rt.transport().send(0, 1, 7, bytes_of("ok"));
    rt.stop();
  });
  rt.run(SIZE_MAX);

  auto us = rt.udp_stats();
  EXPECT_EQ(us.frames_send_failed, 3u);
  EXPECT_EQ(us.frames_sent, 2u);
}

TEST(RealTimeReceiverDeath, DeadReceiverRaisesTheFlagInsteadOfServingDeaf) {
  RealRuntimeOptions o;
  o.listen = "127.0.0.1:0";
  RealRuntime rt(o);
  rt.transport().set_deliver(
      [](ProcessId, ProcessId, Channel, const Payload&) {});
  ASSERT_FALSE(rt.stats().receiver_dead);

  // Yank the socket out from under the receiver thread: dup2 a non-socket
  // over the fd, so its next receive returns a real ENOTSOCK — neither a
  // timeout nor shutdown. The thread must record the death and exit; a
  // polling harness (minbft_kv exits 4 on this flag) sees a failed member
  // instead of a process that answers nothing forever.
  const int null_fd = ::open("/dev/null", O_RDONLY);
  ASSERT_GE(null_fd, 0);
  ASSERT_GE(::dup2(null_fd, rt.native_handle()), 0);
  ::close(null_fd);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!rt.stats().receiver_dead &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(rt.stats().receiver_dead);
  EXPECT_TRUE(rt.udp_stats().receiver_dead);
}

// ---- batched receive equivalence -------------------------------------------

TEST(RealTimeBatchedReceive, MmsgAndPortablePathsDeliverIdentically) {
  // Same sender, same frame sequence, two receivers — one draining bursts
  // with recvmmsg, one on the single-datagram recvfrom fallback. Loopback
  // UDP preserves per-socket order, so both must deliver the SAME
  // (from, to, channel, payload) sequence, byte for byte: the batch path
  // may change syscall economics, never what the protocol sees.
  using Delivered = std::tuple<ProcessId, ProcessId, Channel, Bytes>;
  constexpr std::size_t kFrames = 64;

  auto make_rx = [](bool mmsg, ProcessId local,
                    std::vector<Delivered>* got,
                    std::atomic<std::size_t>* count) {
    RealRuntimeOptions o;
    o.listen = "127.0.0.1:0";
    o.use_recvmmsg = mmsg;
    o.recv_batch = 8;
    auto rt = std::make_unique<RealRuntime>(o);
    rt->transport().set_local([local](ProcessId p) { return p == local; });
    rt->transport().set_deliver([got, count](ProcessId from, ProcessId to,
                                             Channel ch,
                                             const Payload& payload) {
      // Runs on the single loop thread; the test thread only reads the
      // vector after stop() + thread join.
      got->emplace_back(from, to, ch,
                        Bytes(payload.bytes().begin(), payload.bytes().end()));
      count->fetch_add(1, std::memory_order_release);
    });
    return rt;
  };

  std::vector<Delivered> got_mmsg, got_portable;
  std::atomic<std::size_t> n_mmsg{0}, n_portable{0};
  auto rx_m = make_rx(true, 1, &got_mmsg, &n_mmsg);
  auto rx_p = make_rx(false, 2, &got_portable, &n_portable);

  RealRuntimeOptions so;
  so.listen = "127.0.0.1:0";
  RealRuntime sender(so);
  sender.add_peer(1, "127.0.0.1", rx_m->bound_port());
  sender.add_peer(2, "127.0.0.1", rx_p->bound_port());
  sender.transport().set_deliver(
      [](ProcessId, ProcessId, Channel, const Payload&) {});

  const auto rx_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::thread tm([&] {
    rx_m->run_until(
        [&] {
          return n_mmsg.load(std::memory_order_acquire) >= kFrames ||
                 std::chrono::steady_clock::now() > rx_deadline;
        },
        SIZE_MAX);
  });
  std::thread tp([&] {
    rx_p->run_until(
        [&] {
          return n_portable.load(std::memory_order_acquire) >= kFrames ||
                 std::chrono::steady_clock::now() > rx_deadline;
        },
        SIZE_MAX);
  });

  for (std::size_t i = 0; i < kFrames; ++i) {
    // Varying sizes and channels so a mis-stitched burst (wrong length,
    // swapped payload) cannot escape the comparison.
    Bytes payload(i * 7 + 1, static_cast<std::uint8_t>(i));
    const Channel ch = static_cast<Channel>(i % 3 + 1);
    sender.transport().send(0, 1, ch, Bytes(payload));
    sender.transport().send(0, 2, ch, std::move(payload));
  }

  tm.join();
  tp.join();
  rx_m->stop();
  rx_p->stop();

  ASSERT_EQ(got_mmsg.size(), static_cast<std::size_t>(kFrames));
  ASSERT_EQ(got_portable.size(), static_cast<std::size_t>(kFrames));
  for (std::size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(std::get<0>(got_mmsg[i]), std::get<0>(got_portable[i]));
    EXPECT_EQ(std::get<2>(got_mmsg[i]), std::get<2>(got_portable[i]));
    EXPECT_EQ(std::get<3>(got_mmsg[i]), std::get<3>(got_portable[i]))
        << "payload mismatch at frame " << i;
  }
  // Both decoded everything; the batch path differs only in syscall count.
  EXPECT_EQ(rx_m->udp_stats().frames_malformed, 0u);
  EXPECT_EQ(rx_p->udp_stats().frames_malformed, 0u);
  EXPECT_LE(rx_m->udp_stats().recv_syscalls,
            rx_p->udp_stats().recv_syscalls);
}

// ---- event-loop shards -----------------------------------------------------

TEST(RealTimeSharded, TimersRunOnTheirOwnersShard) {
  // Loopback-only: with no socket the global pending count makes run()
  // quiesce once every timer fired, even across shards.
  RealRuntimeOptions o;
  o.shards = 4;
  RealRuntime rt(o);
  rt.transport().set_deliver(
      [](ProcessId, ProcessId, Channel, const Payload&) {});

  constexpr std::size_t kOwners = 8;
  std::array<std::atomic<std::size_t>, kOwners> ran_on;
  for (auto& a : ran_on) a.store(runtime::kNoShard);
  for (ProcessId owner = 0; owner < kOwners; ++owner)
    rt.arm_for(owner, 1, [&rt, &ran_on, owner] {
      ran_on[owner].store(rt.calling_shard(), std::memory_order_relaxed);
    });
  rt.run(SIZE_MAX);

  for (std::size_t owner = 0; owner < kOwners; ++owner)
    EXPECT_EQ(ran_on[owner].load(), owner % 4)
        << "timer for owner " << owner << " ran on a foreign shard";
}

TEST(RealTimeSharded, CrossShardLoopbackDeliversOnTheTargetsShard) {
  RealRuntimeOptions o;
  o.shards = 4;
  RealRuntime rt(o);
  constexpr std::size_t kIds = 8;
  rt.transport().set_local([](ProcessId p) { return p < kIds; });
  std::array<std::atomic<std::size_t>, kIds> delivered_on;
  for (auto& a : delivered_on) a.store(runtime::kNoShard);
  rt.transport().set_deliver([&rt, &delivered_on](ProcessId, ProcessId to,
                                                  Channel, const Payload&) {
    delivered_on[to].store(rt.calling_shard(), std::memory_order_relaxed);
  });

  // One sender on shard 0 fans out to every local id: 0 and 4 take the
  // same-shard fast path, the rest cross shards through their inboxes.
  rt.arm_for(0, 1, [&rt] {
    for (ProcessId to = 0; to < kIds; ++to)
      rt.transport().send(0, to, 5, bytes_of("x"));
  });
  rt.run(SIZE_MAX);

  for (std::size_t to = 0; to < kIds; ++to)
    EXPECT_EQ(delivered_on[to].load(), to % 4)
        << "message for " << to << " was handled on a foreign shard";
  EXPECT_EQ(rt.udp_stats().loopback_messages, kIds);
}

TEST(RealTimeSharded, ClientFleetCommitsAcrossShardsAndConservesFrames) {
  // The TSan centerpiece: a client World whose RealRuntime runs THREE
  // event-loop shards hosting six SmrClients, against four single-shard
  // replica Worlds — every cross-thread seam (sharded inboxes, batched
  // receiver fan-out, sendmmsg staging, per-shard wire stats) under real
  // concurrency. Afterwards, on this lossless loopback cluster, the
  // frame-conservation identity must hold exactly across the whole
  // cluster: sent == received + malformed, failed == oversized == 0 —
  // the cluster-level form of the send-path accounting above.
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kShards = 3;
  constexpr std::uint64_t kPerClient = 4;
  constexpr std::size_t kAll = kReplicas + kClients;

  std::vector<std::unique_ptr<RealRuntime>> runtimes;
  for (std::size_t i = 0; i <= kReplicas; ++i) {
    RealRuntimeOptions o;
    o.tick_ns = kTickNs;
    o.listen = "127.0.0.1:0";
    if (i == kReplicas) o.shards = kShards;  // the fleet's runtime
    runtimes.push_back(std::make_unique<RealRuntime>(o));
  }
  std::vector<std::uint16_t> ports;
  for (const auto& rt : runtimes) ports.push_back(rt->bound_port());
  for (std::size_t i = 0; i < runtimes.size(); ++i)
    for (ProcessId p = 0; p < kAll; ++p) {
      const std::size_t owner = p < kReplicas ? p : kReplicas;
      if (owner != i) runtimes[i]->add_peer(p, "127.0.0.1", ports[owner]);
    }
  std::vector<RealRuntime*> controls;
  for (auto& rt : runtimes) controls.push_back(rt.get());

  MinBftReplica::Options ropt;
  ropt.f = kF;
  for (ProcessId p = 0; p < kReplicas; ++p) ropt.replicas.push_back(p);

  std::vector<std::unique_ptr<Host>> hosts;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    hosts.push_back(std::make_unique<Host>(std::move(runtimes[p]), kAll));
    hosts.back()->world.spawn_at<MinBftReplica>(
        p, ropt, hosts.back()->usigs, std::make_unique<KvStateMachine>());
    hosts.back()->world.start();
  }

  auto fleet_host =
      std::make_unique<Host>(std::move(runtimes[kReplicas]), kAll);
  SmrClient::Options copt;
  copt.replicas = ropt.replicas;
  copt.f = kF;
  copt.max_attempts = 25;
  copt.resend_jitter = 64;
  // The fleet World's run_until predicate executes on shard 0 while other
  // shards run client handlers, so it may read only this atomic —
  // incremented by done callbacks, which run on each client's own shard.
  std::atomic<std::uint64_t> done{0};
  for (std::size_t c = 0; c < kClients; ++c) {
    auto& client = fleet_host->world.spawn_at<SmrClient>(
        static_cast<ProcessId>(kReplicas + c), copt);
    for (std::uint64_t i = 0; i < kPerClient; ++i)
      client.submit(
          KvStateMachine::put_op("k" + std::to_string(i % 3),
                                 "c" + std::to_string(c) + "v" +
                                     std::to_string(i)),
          [&done](const Bytes&) {
            done.fetch_add(1, std::memory_order_relaxed);
          });
  }
  fleet_host->world.start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    sim::World* w = &hosts[p]->world;
    threads.emplace_back([w, &stop] {
      w->run_until([&stop] { return stop.load(std::memory_order_relaxed); },
                   SIZE_MAX);
    });
  }

  constexpr std::uint64_t kOffered = kClients * kPerClient;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  fleet_host->world.run_until(
      [&] {
        return done.load(std::memory_order_relaxed) >= kOffered ||
               std::chrono::steady_clock::now() > deadline;
      },
      SIZE_MAX);
  EXPECT_EQ(done.load(), kOffered);

  // Every shard hosting clients must have actually executed events — the
  // fleet is sharded in fact, not just in configuration.
  RealRuntime* fleet_rt = controls[kReplicas];
  ASSERT_EQ(fleet_rt->execution_shards(), kShards);
  for (std::size_t s = 0; s < kShards; ++s)
    EXPECT_GT(fleet_rt->shard_stats(s).executed, 0u)
        << "shard " << s << " sat idle";

  // Frame conservation: wait for the replicas' tail traffic (commits,
  // checkpoints) to quiesce — counters stable across two reads — then
  // demand the identity exactly.
  auto totals = [&] {
    std::array<std::uint64_t, 6> t{};
    for (auto* c : controls) {
      const auto us = c->udp_stats();
      t[0] += us.frames_sent;
      t[1] += us.frames_received;
      t[2] += us.frames_malformed;
      t[3] += us.frames_send_failed;
      t[4] += us.frames_oversized;
      t[5] += us.frames_no_peer;
    }
    return t;
  };
  auto prev = totals();
  for (int i = 0; i < 40; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const auto cur = totals();
    if (cur == prev && cur[0] == cur[1] + cur[2]) break;
    prev = cur;
  }
  const auto t = totals();
  EXPECT_EQ(t[0], t[1] + t[2]) << "sent != received + malformed: a frame "
                                  "vanished without a counter";
  EXPECT_EQ(t[2], 0u) << "malformed frames on a clean wire";
  EXPECT_EQ(t[3], 0u) << "kernel send rejections on loopback";
  EXPECT_EQ(t[4], 0u) << "oversized frames in a stock workload";
  EXPECT_EQ(t[5], 0u) << "sends to unaddressable ids";

  stop.store(true, std::memory_order_relaxed);
  for (auto* c : controls) c->stop();
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace unidir
