// Real-time loopback smoke (ctest label: realtime): the full MinBFT stack —
// USIG attestation, batching, the typed wire boundary, the SMR client —
// running over ACTUAL UDP sockets on 127.0.0.1, one World (= one modelled
// OS process) per replica and one for the client, each on its own thread.
//
// What this buys beyond the simulator: the datagram framing, the receiver
// thread / event-loop handoff, the peer addressing, the ephemeral-port
// rendezvous, and the deterministic cross-process key derivation are all
// exercised for real. What it deliberately does NOT claim: determinism —
// delivery order is whatever the kernel does, which is exactly why the
// invariant checked at the end is the protocol's (prefix-consistent
// execution logs), not a fingerprint.
//
// Excluded from the ASan/UBSan CI shards (label filter) but included in
// TSan: the interesting bugs here are cross-thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "agreement/minbft.h"
#include "agreement/state_machines.h"
#include "runtime/real_runtime.h"
#include "sim/world.h"

namespace unidir {
namespace {

using agreement::KvStateMachine;
using agreement::MinBftReplica;
using agreement::SgxUsigDirectory;
using agreement::SmrClient;
using runtime::RealRuntime;
using runtime::RealRuntimeOptions;

constexpr std::size_t kReplicas = 4;  // n = 4, f = 1 (commit quorum f+1)
constexpr std::size_t kF = 1;
constexpr std::size_t kTotal = kReplicas + 1;  // + the client, id 4
constexpr ProcessId kClientId = 4;
constexpr std::uint64_t kSeed = 42;
constexpr std::uint64_t kRequests = 8;

// 0.2ms ticks: MinBFT's view-change timeout (300 ticks) becomes 60ms and
// the client's resend base (400 ticks) 80ms — snappy on loopback, yet far
// above its RTT, so retries stay bounded.
constexpr std::uint64_t kTickNs = 200'000;

/// One modelled OS process: a World over its own RealRuntime + socket,
/// the shared-by-derivation key registry, and its single local process.
struct Host {
  explicit Host(std::unique_ptr<runtime::Runtime> rt)
      : world(kSeed, std::move(rt)), usigs(world.keys()) {
    world.provision(kTotal);
    // Materialize every replica's enclave in id order: enclave keys are
    // generated deterministically after the provisioned process keys, so
    // all five hosts derive identical registries and UIs verify anywhere.
    for (ProcessId p = 0; p < kReplicas; ++p) usigs.enclave_for(p);
  }

  sim::World world;
  SgxUsigDirectory usigs;
};

TEST(RealTimeLoopback, MinBftCommitsAClosedLoopWorkloadOverUdp) {
  // Bind every socket first (port 0 = ephemeral), then exchange the
  // resolved ports — the rendezvous a deployment would do via config.
  std::vector<std::unique_ptr<RealRuntime>> runtimes;
  for (std::size_t i = 0; i < kTotal; ++i) {
    RealRuntimeOptions o;
    o.tick_ns = kTickNs;
    o.listen = "127.0.0.1:0";
    runtimes.push_back(std::make_unique<RealRuntime>(o));
    ASSERT_GT(runtimes.back()->bound_port(), 0);
  }
  std::vector<std::uint16_t> ports;
  for (const auto& rt : runtimes) ports.push_back(rt->bound_port());
  for (std::size_t i = 0; i < kTotal; ++i)
    for (ProcessId p = 0; p < kTotal; ++p)
      if (p != i) runtimes[i]->add_peer(p, "127.0.0.1", ports[p]);

  // Keep loop-control handles; ownership moves into the Worlds.
  std::vector<RealRuntime*> controls;
  for (auto& rt : runtimes) controls.push_back(rt.get());

  MinBftReplica::Options ropt;
  ropt.f = kF;
  for (ProcessId p = 0; p < kReplicas; ++p) ropt.replicas.push_back(p);

  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<MinBftReplica*> replicas;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    hosts.push_back(std::make_unique<Host>(std::move(runtimes[p])));
    replicas.push_back(&hosts.back()->world.spawn_at<MinBftReplica>(
        p, ropt, hosts.back()->usigs,
        std::make_unique<KvStateMachine>()));
    hosts.back()->world.start();
  }

  auto client_host = std::make_unique<Host>(std::move(runtimes[kClientId]));
  SmrClient::Options copt;
  copt.replicas = ropt.replicas;
  copt.f = kF;
  copt.max_attempts = 25;  // bounded retries: give up instead of spinning
  auto& client =
      client_host->world.spawn_at<SmrClient>(kClientId, copt);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const std::string key = "k" + std::to_string(i % 3);
    if (i % 3 == 2)
      client.submit(KvStateMachine::get_op(key));
    else
      client.submit(KvStateMachine::put_op(key, "v" + std::to_string(i)));
  }
  client_host->world.start();

  // Replica loops: run until the test says done. The predicate is an
  // atomic read, re-checked after every event and every bounded wait, so
  // shutdown needs no extra machinery beyond stores + stop().
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    sim::World* w = &hosts[p]->world;
    threads.emplace_back([w, &done] {
      w->run_until([&done] { return done.load(std::memory_order_relaxed); },
                   SIZE_MAX);
    });
  }

  // Client loop on this thread, with a wall-clock safety net far above
  // anything a healthy run needs.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  const bool committed = client_host->world.run_until(
      [&] {
        return client.completed() + client.gave_up() >= kRequests ||
               std::chrono::steady_clock::now() > deadline;
      },
      SIZE_MAX);
  EXPECT_TRUE(committed);
  EXPECT_EQ(client.completed(), kRequests);
  EXPECT_EQ(client.gave_up(), 0u) << "client abandoned requests";

  done.store(true, std::memory_order_relaxed);
  for (auto* c : controls) c->stop();  // wakes any loop parked in a wait
  for (auto& t : threads) t.join();

  // Threads are joined: replica state is safe to read from here.
  std::vector<std::pair<ProcessId, const agreement::ExecutionLog*>> logs;
  for (ProcessId p = 0; p < kReplicas; ++p)
    logs.emplace_back(p, &replicas[p]->execution_log());
  const auto divergence = agreement::check_execution_consistency(logs);
  EXPECT_FALSE(divergence.has_value()) << *divergence;

  // Commit quorum is f+1 = 2, so at least that many replicas executed the
  // full workload.
  std::size_t caught_up = 0;
  for (auto* r : replicas)
    if (r->executed_count() >= kRequests) ++caught_up;
  EXPECT_GE(caught_up, kF + 1);

  // The wire survived: every datagram either decoded through both
  // hardening layers or was counted, and nothing was dropped for want of
  // an address.
  for (ProcessId p = 0; p < kTotal; ++p) {
    const auto us = controls[p]->udp_stats();
    EXPECT_EQ(us.frames_no_peer, 0u) << "host " << p;
    EXPECT_EQ(us.frames_malformed, 0u) << "host " << p;
    EXPECT_GT(us.frames_sent, 0u) << "host " << p;
  }
}

// ---- shutdown ordering -----------------------------------------------------------
//
// The teardown path is where loop thread, receiver thread and destructor
// meet; these tests (TSan-covered) pin the contract: stop() is callable
// from any thread and from inside a handler, and the destructor joins the
// receiver and discards still-armed timers no matter what state the run
// was abandoned in.

TEST(RealTimeShutdown, StopMidDeliveryWithTimersArmedJoinsCleanly) {
  auto make = [] {
    RealRuntimeOptions o;
    o.tick_ns = 100'000;  // 0.1ms ticks keep the pump hot
    o.listen = "127.0.0.1:0";
    return std::make_unique<RealRuntime>(o);
  };
  auto a = make();
  auto b = make();
  a->add_peer(1, "127.0.0.1", b->bound_port());
  b->add_peer(0, "127.0.0.1", a->bound_port());
  a->transport().set_local([](ProcessId p) { return p == 0; });
  b->transport().set_local([](ProcessId p) { return p == 1; });
  a->transport().set_deliver(
      [](ProcessId, ProcessId, Channel, const Payload&) {});
  std::atomic<std::uint64_t> received_b{0};
  b->transport().set_deliver(
      [&](ProcessId, ProcessId, Channel, const Payload&) {
        received_b.fetch_add(1, std::memory_order_relaxed);
      });

  // Long-deadline timers that will still be armed at teardown, on both
  // sides — the destructor must discard them, not wait for them.
  for (int k = 0; k < 64; ++k) {
    a->clock().arm(10'000'000, [] {});
    b->clock().arm(10'000'000, [] {});
  }
  // A self-rearming pump keeps datagrams in flight for the whole test, so
  // stop() lands while the receiver thread is mid-delivery.
  std::function<void()> pump = [&] {
    for (int k = 0; k < 8; ++k)
      a->transport().send(0, 1, 7, bytes_of("chaff"));
    a->clock().arm(1, pump);
  };
  a->clock().arm(1, pump);

  std::thread loop_a([&] { a->run(SIZE_MAX); });
  std::thread loop_b([&] { b->run(SIZE_MAX); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received_b.load(std::memory_order_relaxed) < 100 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(received_b.load(std::memory_order_relaxed), 100u)
      << "traffic never flowed; the shutdown below would prove nothing";

  // Stop the RECEIVING side first: a keeps firing datagrams at a runtime
  // that is tearing down, which is exactly the hazardous interleaving.
  b->stop();
  loop_b.join();
  b.reset();  // destructor: joins b's receiver while a still sends
  a->stop();
  loop_a.join();
  EXPECT_GT(a->udp_stats().frames_sent, 0u);
}

TEST(RealTimeShutdown, StopFromInsideATimerHandler) {
  RealRuntimeOptions o;
  o.tick_ns = 100'000;
  o.listen = "127.0.0.1:0";
  RealRuntime rt(o);
  rt.transport().set_deliver(
      [](ProcessId, ProcessId, Channel, const Payload&) {});
  for (int k = 0; k < 32; ++k) rt.clock().arm(10'000'000, [] {});
  bool late_fired = false;
  rt.clock().arm(1, [&] { rt.stop(); });
  rt.clock().arm(10'000'000, [&] { late_fired = true; });
  rt.run(SIZE_MAX);
  EXPECT_TRUE(rt.stopped());
  EXPECT_FALSE(late_fired) << "run() outlived stop() by a long timer";
}

TEST(RealTimeShutdown, DestroyWithoutEverRunningJoinsTheReceiver) {
  // Construction starts the receiver thread; destruction must join it even
  // if run() was never called and timers are still armed. Iterate a few
  // times to give TSan interleavings to chew on.
  for (int i = 0; i < 8; ++i) {
    RealRuntimeOptions o;
    o.listen = "127.0.0.1:0";
    RealRuntime rt(o);
    rt.clock().arm(10'000'000, [] {});
    ASSERT_GT(rt.bound_port(), 0);
  }
}

}  // namespace
}  // namespace unidir
