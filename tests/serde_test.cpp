#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/serde.h"

namespace unidir::serde {
namespace {

template <typename T>
T round_trip(const T& v) {
  return decode<T>(encode(v));
}

TEST(Serde, UnsignedVarints) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL,
                          16384ULL, ~0ULL, 1ULL << 63}) {
    EXPECT_EQ(round_trip(v), v) << v;
  }
}

TEST(Serde, SignedVarints) {
  const std::vector<std::int64_t> values = {
      0, 1, -1, 63, -64, 1000000, -1000000,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  for (std::int64_t v : values) {
    EXPECT_EQ(round_trip(v), v) << v;
  }
}

TEST(Serde, VarintEncodingIsCompact) {
  EXPECT_EQ(encode(std::uint64_t{0}).size(), 1u);
  EXPECT_EQ(encode(std::uint64_t{127}).size(), 1u);
  EXPECT_EQ(encode(std::uint64_t{128}).size(), 2u);
  EXPECT_EQ(encode(~std::uint64_t{0}).size(), 10u);
}

TEST(Serde, NarrowIntegerRangeChecked) {
  const Bytes wide = encode(std::uint64_t{300});
  EXPECT_THROW(decode<std::uint8_t>(wide), DecodeError);
  EXPECT_EQ(decode<std::uint16_t>(wide), 300u);
}

TEST(Serde, Booleans) {
  EXPECT_EQ(round_trip(true), true);
  EXPECT_EQ(round_trip(false), false);
  EXPECT_THROW(decode<bool>(Bytes{2}), DecodeError);
}

TEST(Serde, BytesAndStrings) {
  const Bytes b = {0, 1, 2, 255};
  EXPECT_EQ(round_trip(b), b);
  const std::string s = "sequenced reliable broadcast";
  EXPECT_EQ(round_trip(s), s);
  EXPECT_EQ(round_trip(std::string{}), "");
}

TEST(Serde, Vectors) {
  const std::vector<std::uint64_t> v = {1, 2, 3, 1ULL << 40};
  EXPECT_EQ(round_trip(v), v);
  EXPECT_EQ(round_trip(std::vector<std::uint64_t>{}),
            std::vector<std::uint64_t>{});
}

TEST(Serde, NestedContainers) {
  const std::vector<std::vector<std::string>> v = {{"a", "b"}, {}, {"c"}};
  EXPECT_EQ(round_trip(v), v);
}

TEST(Serde, Optionals) {
  EXPECT_EQ(round_trip(std::optional<std::uint64_t>{42}),
            std::optional<std::uint64_t>{42});
  EXPECT_EQ(round_trip(std::optional<std::uint64_t>{}),
            std::optional<std::uint64_t>{});
}

TEST(Serde, Pairs) {
  const std::pair<std::string, std::uint64_t> p = {"seq", 7};
  EXPECT_EQ(round_trip(p), p);
}

TEST(Serde, Maps) {
  const std::map<std::uint32_t, std::string> m = {{1, "one"}, {2, "two"}};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Serde, TruncatedInputRejected) {
  Bytes enc = encode(std::string("hello"));
  enc.pop_back();
  EXPECT_THROW(decode<std::string>(enc), DecodeError);
}

TEST(Serde, TrailingGarbageRejected) {
  Bytes enc = encode(std::uint64_t{5});
  enc.push_back(0);
  EXPECT_THROW(decode<std::uint64_t>(enc), DecodeError);
}

TEST(Serde, NonCanonicalVarintRejected) {
  // 0x80 0x00 is a two-byte encoding of 0; the canonical one is 0x00.
  const Bytes non_canonical = {0x80, 0x00};
  EXPECT_THROW(decode<std::uint64_t>(non_canonical), DecodeError);
}

TEST(Serde, AbsurdVectorLengthRejectedBeforeAllocation) {
  Writer w;
  w.uvarint(1ULL << 40);  // claims 2^40 elements in a 6-byte buffer
  EXPECT_THROW(decode<std::vector<std::uint64_t>>(w.buffer()), DecodeError);
}

TEST(Serde, DeterministicEncoding) {
  const std::map<std::uint32_t, std::string> m = {{3, "c"}, {1, "a"}, {2, "b"}};
  EXPECT_EQ(encode(m), encode(m));
  // std::map iterates in key order, so insertion order cannot matter.
  std::map<std::uint32_t, std::string> m2;
  m2.emplace(1, "a");
  m2.emplace(2, "b");
  m2.emplace(3, "c");
  EXPECT_EQ(encode(m), encode(m2));
}

struct Point {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  bool operator==(const Point&) const = default;
  void encode(Writer& w) const {
    w.uvarint(x);
    w.uvarint(y);
  }
  static Point decode(Reader& r) {
    Point p;
    p.x = r.uvarint();
    p.y = r.uvarint();
    return p;
  }
};

TEST(Serde, UserTypesViaMemberFunctions) {
  const Point p{10, 20};
  EXPECT_EQ(round_trip(p), p);
  const std::vector<Point> pts = {{1, 2}, {3, 4}};
  EXPECT_EQ(round_trip(pts), pts);
}

}  // namespace
}  // namespace unidir::serde
