#include <gtest/gtest.h>

#include "core/classification.h"
#include "core/separation.h"

namespace unidir::core {
namespace {

// ---- E3: SRB cannot implement unidirectionality --------------------------------

struct SepCase {
  std::size_t n;
  std::size_t f;
  std::uint64_t seed;
};

class SrbUniSeparationP : public ::testing::TestWithParam<SepCase> {};

TEST_P(SrbUniSeparationP, TheoremReproduced) {
  const auto& c = GetParam();
  const SrbUniSeparation r = run_srb_uni_separation(c.n, c.f, c.seed);
  EXPECT_TRUE(r.rounds_completed) << r.describe();
  EXPECT_TRUE(r.q_cannot_tell_1_from_3) << r.describe();
  EXPECT_TRUE(r.q_cannot_tell_2_from_3) << r.describe();
  EXPECT_TRUE(r.c1_cannot_tell_2_from_3) << r.describe();
  EXPECT_TRUE(r.c2_cannot_tell_1_from_3) << r.describe();
  EXPECT_TRUE(r.unidirectionality_violated) << r.describe();
  EXPECT_TRUE(r.holds());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SrbUniSeparationP,
                         ::testing::Values(SepCase{5, 2, 1}, SepCase{5, 2, 2},
                                           SepCase{6, 2, 3}, SepCase{7, 3, 4},
                                           SepCase{8, 3, 5},
                                           SepCase{9, 4, 6}));

TEST(SrbUniSeparation, RejectsParametersOutsideTheTheorem) {
  EXPECT_THROW(run_srb_uni_separation(3, 1, 1), std::invalid_argument);
  EXPECT_THROW(run_srb_uni_separation(4, 2, 1), std::invalid_argument);
}

// ---- E7: RB cannot solve very weak agreement with n <= 2f ----------------------

class RbVwaP : public ::testing::TestWithParam<std::pair<std::size_t,
                                                         std::uint64_t>> {};

TEST_P(RbVwaP, FiveWorldArgumentReproduced) {
  const auto& [n, seed] = GetParam();
  const RbVwaImpossibility r = run_rb_vwa_impossibility(n, seed);
  EXPECT_TRUE(r.all_terminated) << r.describe();
  EXPECT_TRUE(r.p_cannot_tell_1_from_2) << r.describe();
  EXPECT_TRUE(r.p_cannot_tell_2_from_5) << r.describe();
  EXPECT_TRUE(r.q_cannot_tell_3_from_4) << r.describe();
  EXPECT_TRUE(r.q_cannot_tell_4_from_5) << r.describe();
  EXPECT_TRUE(r.agreement_violated) << r.describe();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RbVwaP,
                         ::testing::Values(std::pair{std::size_t{2}, 1ull},
                                           std::pair{std::size_t{4}, 2ull},
                                           std::pair{std::size_t{6}, 3ull},
                                           std::pair{std::size_t{8}, 4ull}));

TEST(RbVwaImpossibility, RejectsOddN) {
  EXPECT_THROW(run_rb_vwa_impossibility(3, 1), std::invalid_argument);
}

// ---- E10: the full classification report (Figure 1) ----------------------------

TEST(Classification, AllExecutableEdgesPass) {
  const ClassificationReport report =
      build_classification_report(/*seed=*/7, /*quick=*/true);
  for (const ClassificationEdge& e : report.edges())
    EXPECT_NE(e.evidence, Evidence::ExperimentFailed) << e.describe();
  EXPECT_TRUE(report.all_experiments_passed());
}

TEST(Classification, ReportContainsEveryClassAndEdge) {
  const ClassificationReport report = build_classification_report(11, true);
  // 6 executable edges + 3 literature edges.
  EXPECT_EQ(report.edges().size(), 9u);
  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("UNIDIRECTIONAL"), std::string::npos);
  EXPECT_NE(rendered.find("SEQUENCED RELIABLE BROADCAST"), std::string::npos);
  EXPECT_NE(rendered.find("TrInc"), std::string::npos);
  EXPECT_NE(rendered.find("all executable edges reproduced"),
            std::string::npos);
  EXPECT_NE(rendered.find("EXPERIMENT PASSED"), std::string::npos);
  EXPECT_EQ(rendered.find("FAILED"), std::string::npos);
}

TEST(Classification, EnumRendering) {
  EXPECT_STREQ(to_string(PowerClass::Unidirectional), "unidirectional");
  EXPECT_NE(mechanisms_of(PowerClass::Unidirectional).find("SWMR"),
            std::string::npos);
  EXPECT_NE(mechanisms_of(PowerClass::SequencedRb).find("A2M"),
            std::string::npos);
}

TEST(Classification, DeterministicAcrossSeeds) {
  // The verdicts (not the transcripts) must be seed-independent: the
  // theorems hold on every schedule we generate.
  for (std::uint64_t seed : {1ull, 99ull, 12345ull})
    EXPECT_TRUE(build_classification_report(seed, true)
                    .all_experiments_passed())
        << "seed " << seed;
}

}  // namespace
}  // namespace unidir::core
