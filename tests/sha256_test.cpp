#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "crypto/sha256.h"

namespace unidir::crypto {
namespace {

std::string hash_hex(std::string_view msg) {
  const Digest d = Sha256::hash(bytes_of(msg));
  return to_hex(ByteSpan(d.data(), d.size()));
}

// NIST FIPS 180-4 / well-known test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, QuickBrownFox) {
  EXPECT_EQ(hash_hex("The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, static_cast<std::uint8_t>('a'));
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const Digest d = h.finish();
  EXPECT_EQ(to_hex(ByteSpan(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "incremental hashing must match one-shot hashing regardless of "
      "chunk boundaries, including boundaries at 64-byte block edges";
  const Digest whole = Sha256::hash(bytes_of(msg));
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(bytes_of(msg.substr(0, split)));
    h.update(bytes_of(msg.substr(split)));
    EXPECT_EQ(h.finish(), whole) << "split at " << split;
  }
}

TEST(Sha256, BoundaryLengths) {
  // Exercise padding at lengths around the 56-byte and 64-byte boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg(len, 0x42);
    const Digest a = Sha256::hash(msg);
    Sha256 h;
    for (std::size_t i = 0; i < len; ++i)
      h.update(ByteSpan(&msg[i], 1));
    EXPECT_EQ(h.finish(), a) << "len " << len;
  }
}

TEST(Sha256, ReuseAfterFinishRejected) {
  Sha256 h;
  h.update(bytes_of("x"));
  (void)h.finish();
  EXPECT_THROW(h.update(bytes_of("y")), InternalError);
  EXPECT_THROW((void)h.finish(), InternalError);
}

TEST(Sha256, DigestBytesRoundTrip) {
  const Digest d = Sha256::hash(bytes_of("round trip"));
  EXPECT_EQ(digest_from_bytes(digest_bytes(d)), d);
}

TEST(Sha256, DigestFromBytesRejectsWrongSize) {
  EXPECT_THROW(digest_from_bytes(Bytes(31, 0)), std::invalid_argument);
  EXPECT_THROW(digest_from_bytes(Bytes(33, 0)), std::invalid_argument);
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  // Not a security proof, just a smoke test over many short inputs.
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const Digest d = Sha256::hash(bytes_of("input-" + std::to_string(i)));
    seen.insert(to_hex(ByteSpan(d.data(), d.size())));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace unidir::crypto
