#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace unidir::sim {
namespace {

TEST(Simulator, StartsAtTimeZeroIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, FifoWithinSameTime) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.at(5, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  Time fired_at = 0;
  sim.at(10, [&] {
    sim.after(5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 15u);
}

TEST(Simulator, SchedulingInPastRejected) {
  Simulator sim;
  sim.at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.at(5, [] {}), std::invalid_argument);
}

TEST(Simulator, NullActionRejected) {
  Simulator sim;
  EXPECT_THROW(sim.at(1, nullptr), std::invalid_argument);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.after(1, recurse);
  };
  sim.at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99u);
}

TEST(Simulator, RunRespectsEventCap) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.after(1, forever); };
  sim.at(0, forever);
  const std::size_t ran = sim.run(1000);
  EXPECT_EQ(ran, 1000u);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, RunUntilPredicate) {
  Simulator sim;
  int counter = 0;
  std::function<void()> tick = [&] {
    ++counter;
    sim.after(1, tick);
  };
  sim.at(0, tick);
  EXPECT_TRUE(sim.run_until([&] { return counter == 42; }));
  EXPECT_EQ(counter, 42);
}

TEST(Simulator, RunUntilReturnsFalseWhenQueueDrains) {
  Simulator sim;
  sim.at(1, [] {});
  EXPECT_FALSE(sim.run_until([] { return false; }));
}

TEST(Simulator, RunToTimeAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(5, [&] { ++fired; });
  sim.at(15, [&] { ++fired; });
  sim.run_to_time(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.at(static_cast<Time>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 7u);
}

}  // namespace
}  // namespace unidir::sim
