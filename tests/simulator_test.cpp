#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "sim/simulator.h"

namespace unidir::sim {
namespace {

TEST(Simulator, StartsAtTimeZeroIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, FifoWithinSameTime) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.at(5, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  Time fired_at = 0;
  sim.at(10, [&] {
    sim.after(5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 15u);
}

TEST(Simulator, SchedulingInPastRejected) {
  Simulator sim;
  sim.at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.at(5, [] {}), std::invalid_argument);
}

TEST(Simulator, NullActionRejected) {
  Simulator sim;
  EXPECT_THROW(sim.at(1, nullptr), std::invalid_argument);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.after(1, recurse);
  };
  sim.at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99u);
}

TEST(Simulator, RunRespectsEventCap) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.after(1, forever); };
  sim.at(0, forever);
  const std::size_t ran = sim.run(1000);
  EXPECT_EQ(ran, 1000u);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, RunUntilPredicate) {
  Simulator sim;
  int counter = 0;
  std::function<void()> tick = [&] {
    ++counter;
    sim.after(1, tick);
  };
  sim.at(0, tick);
  EXPECT_TRUE(sim.run_until([&] { return counter == 42; }));
  EXPECT_EQ(counter, 42);
}

TEST(Simulator, RunUntilReturnsFalseWhenQueueDrains) {
  Simulator sim;
  sim.at(1, [] {});
  EXPECT_FALSE(sim.run_until([] { return false; }));
}

TEST(Simulator, RunToTimeAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(5, [&] { ++fired; });
  sim.at(15, [&] { ++fired; });
  sim.run_to_time(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.at(static_cast<Time>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulator, StatsCountRingAndHeapRouting) {
  Simulator sim;
  // Events within [now, now+8) take the ring wheel; farther ones the heap.
  sim.after(0, [] {});
  sim.after(1, [] {});
  sim.after(7, [] {});   // last wheel slot
  sim.after(8, [] {});   // first heap time
  sim.after(20, [] {});
  EXPECT_EQ(sim.stats().ring_fast_path, 3u);
  EXPECT_EQ(sim.stats().heap_events, 2u);
  EXPECT_EQ(sim.stats().scheduled, 5u);
  EXPECT_EQ(sim.stats().peak_pending, 5u);
  sim.run();
  EXPECT_EQ(sim.stats().executed, 5u);
  EXPECT_EQ(sim.stats().peak_pending, 5u);  // high-water mark sticks
  // Wall-time accounting deliberately does NOT live here any more: it moved
  // behind the runtime interface (runtime::RuntimeStats), so the simulator's
  // own counters stay deterministic. See runtime_test.cpp for the rate tests.
}

TEST(Simulator, RingAndHeapInterleaveInTimeSeqOrder) {
  // Mix near events (rings) with far events (heap) at colliding times and
  // check the global (time, seq) order survives the split data structures.
  Simulator sim;
  std::vector<int> order;
  sim.at(9, [&] { order.push_back(20); });           // heap (t = now + 9)
  sim.at(0, [&] {                                    // ring[0]
    order.push_back(0);
    sim.after(1, [&] { order.push_back(10); });      // ring at t=1, before 20
    sim.after(9, [&] { order.push_back(21); });      // heap at t=9, after 20
  });
  sim.at(1, [&] { order.push_back(11); });           // ring[1]
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 11, 10, 20, 21}));
}

TEST(Simulator, WheelReusesRingsAcrossItsWindow) {
  // Schedule onto every wheel slot repeatedly while time advances, so each
  // ring cycles through many distinct virtual times; FIFO-within-time and
  // global time order must both survive.
  Simulator sim;
  std::vector<Time> fired;
  std::function<void(int)> wave = [&](int depth) {
    if (depth == 0) return;
    for (Time d = 0; d < 8; ++d)
      sim.after(d, [&fired, &sim] { fired.push_back(sim.now()); });
    sim.after(5, [&wave, depth] { wave(depth - 1); });
  };
  sim.at(0, [&] { wave(6); });
  sim.run();
  ASSERT_EQ(fired.size(), 6u * 8u);
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_LE(fired[i - 1], fired[i]);
}

TEST(Simulator, ManySameTickEventsStayFifoThroughRingGrowth) {
  Simulator sim;
  std::vector<int> order;
  sim.at(0, [&] {
    for (int i = 0; i < 1000; ++i) sim.after(1, [&order, i] { order.push_back(i); });
  });
  sim.run();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, LargeCapturesFallBackToHeapStorage) {
  // Captures beyond InlineFn's inline buffer must still execute correctly
  // (pointer-indirected storage) and move with their slab slot.
  Simulator sim;
  std::array<std::uint64_t, 32> big{};  // 256 bytes > kInlineSize
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * 3 + 1;
  std::uint64_t sum = 0;
  sim.at(1, [big, &sum] {
    for (std::uint64_t v : big) sum += v;
  });
  sim.run();
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < big.size(); ++i) expect += i * 3 + 1;
  EXPECT_EQ(sum, expect);
}

TEST(InlineFn, MoveTransfersTheCallable) {
  int calls = 0;
  InlineFn a([&calls] { ++calls; });
  InlineFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  InlineFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFn, DestroysCapturedState) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    InlineFn fn([t = std::move(token)] { (void)*t; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace unidir::sim
