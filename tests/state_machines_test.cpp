#include <gtest/gtest.h>

#include "agreement/state_machines.h"

namespace unidir::agreement {
namespace {

TEST(KvStateMachine, PutGetDel) {
  KvStateMachine kv;
  EXPECT_EQ(kv.apply(KvStateMachine::put_op("a", "1")), Bytes{});
  EXPECT_EQ(kv.apply(KvStateMachine::get_op("a")), bytes_of("1"));
  EXPECT_EQ(kv.apply(KvStateMachine::put_op("a", "2")), bytes_of("1"));
  EXPECT_EQ(kv.apply(KvStateMachine::del_op("a")), bytes_of("2"));
  EXPECT_EQ(kv.apply(KvStateMachine::get_op("a")), Bytes{});
  EXPECT_EQ(kv.size(), 0u);
}

TEST(KvStateMachine, DigestTracksState) {
  KvStateMachine a;
  KvStateMachine b;
  EXPECT_EQ(a.digest(), b.digest());
  (void)a.apply(KvStateMachine::put_op("k", "v"));
  EXPECT_NE(a.digest(), b.digest());
  (void)b.apply(KvStateMachine::put_op("k", "v"));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(KvStateMachine, DigestOrderIndependentOfInsertionOrder) {
  // Digest is over the sorted table, so different op orders that reach the
  // same state agree — important for checkpoint comparison.
  KvStateMachine a;
  KvStateMachine b;
  (void)a.apply(KvStateMachine::put_op("x", "1"));
  (void)a.apply(KvStateMachine::put_op("y", "2"));
  (void)b.apply(KvStateMachine::put_op("y", "2"));
  (void)b.apply(KvStateMachine::put_op("x", "1"));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(KvStateMachine, UnknownOpsAreDeterministicNoOps) {
  KvStateMachine kv;
  const auto before = kv.digest();
  EXPECT_EQ(kv.apply(Bytes{0x7F, 0x01, 0x02}), Bytes{});
  EXPECT_EQ(kv.digest(), before);
}

TEST(CounterStateMachine, AddAndRead) {
  CounterStateMachine c;
  EXPECT_EQ(serde::decode<std::int64_t>(
                c.apply(CounterStateMachine::add_op(5))),
            5);
  EXPECT_EQ(serde::decode<std::int64_t>(
                c.apply(CounterStateMachine::add_op(-2))),
            3);
  EXPECT_EQ(serde::decode<std::int64_t>(
                c.apply(CounterStateMachine::read_op())),
            3);
  EXPECT_EQ(c.value(), 3);
}

TEST(CounterStateMachine, DigestTracksValue) {
  CounterStateMachine a;
  CounterStateMachine b;
  EXPECT_EQ(a.digest(), b.digest());
  (void)a.apply(CounterStateMachine::add_op(1));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(ExecutionDeduper, CachesRepliesPerRequestId) {
  ExecutionDeduper dedup;
  Command c;
  c.client = 1;
  c.request_id = 5;
  c.op = bytes_of("op");
  EXPECT_FALSE(dedup.lookup(c).has_value());
  dedup.record(c, bytes_of("result"));
  EXPECT_EQ(dedup.lookup(c), std::optional<Bytes>(bytes_of("result")));
  // A different (older, pipelined) request id is independent.
  Command old = c;
  old.request_id = 3;
  EXPECT_FALSE(dedup.lookup(old).has_value());
  dedup.record(old, bytes_of("older"));
  EXPECT_EQ(dedup.lookup(old), std::optional<Bytes>(bytes_of("older")));
  EXPECT_EQ(dedup.lookup(c), std::optional<Bytes>(bytes_of("result")));
  // Other clients are independent.
  Command other = c;
  other.client = 2;
  EXPECT_FALSE(dedup.lookup(other).has_value());
}

TEST(ExecutionConsistency, DetectsDivergence) {
  Command a;
  a.client = 1;
  a.request_id = 1;
  Command b;
  b.client = 2;
  b.request_id = 1;
  ExecutionLog log1, log2, log3, prefix;
  log1.append({a, {}});
  log1.append({b, {}});
  log2.append({a, {}});
  log2.append({b, {}});
  log3.append({b, {}});
  log3.append({a, {}});
  prefix.append({a, {}});

  using LogRef =
      std::pair<ProcessId, const ExecutionLog*>;
  EXPECT_FALSE(check_execution_consistency(
                   std::vector<LogRef>{{0, &log1}, {1, &log2}})
                   .has_value());
  EXPECT_TRUE(check_execution_consistency(
                  std::vector<LogRef>{{0, &log1}, {1, &log3}})
                  .has_value());
  // Prefixes are fine — a lagging replica is not divergent.
  EXPECT_FALSE(check_execution_consistency(
                   std::vector<LogRef>{{0, &log1}, {1, &prefix}})
                   .has_value());
}

}  // namespace
}  // namespace unidir::agreement
