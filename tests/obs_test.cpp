// Unit tests for the obs layer: rate helper, histograms, metrics registry,
// tracer ring buffer and the Chrome-trace exporter.
//
// The exporter test pins the JSON byte-for-byte — determinism of the trace
// artifact is a stated guarantee (DESIGN.md §10), so any formatting drift
// must be a deliberate golden update here.
#include <gtest/gtest.h>

#include "explore/parallel.h"
#include "obs/metrics.h"
#include "obs/rate.h"
#include "obs/tracer.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

namespace unidir::obs {
namespace {

// ---- rate_per_sec (satellite: events_per_sec division-by-zero) -------------

TEST(Rate, ZeroWallTimeIsZeroRateNotInfinity) {
  EXPECT_EQ(rate_per_sec(0, 0), 0.0);
  EXPECT_EQ(rate_per_sec(12345, 0), 0.0);
}

TEST(Rate, ConvertsNanosecondsToPerSecond) {
  EXPECT_DOUBLE_EQ(rate_per_sec(1000, 1'000'000'000), 1000.0);
  EXPECT_DOUBLE_EQ(rate_per_sec(1, 2'000'000'000), 0.5);
}

// Regression: RuntimeStats and ParallelStats used to each hand-roll this
// division; a fresh (never-run) stats object must report 0, not NaN/inf.
// (The wall-time fields moved from SimulatorStats to runtime::RuntimeStats,
// which both execution backends share — see also runtime_test.cpp.)
TEST(Rate, FreshStatsObjectsReportZero) {
  runtime::RuntimeStats rt_stats;
  EXPECT_EQ(rt_stats.events_per_sec(), 0.0);
  rt_stats.executed = 42;  // counted events but no measured wall time
  EXPECT_EQ(rt_stats.events_per_sec(), 0.0);

  explore::ParallelStats par_stats;
  EXPECT_EQ(par_stats.events_per_sec(), 0.0);
  par_stats.total_events = 42;
  EXPECT_EQ(par_stats.events_per_sec(), 0.0);
}

// ---- histograms ------------------------------------------------------------

TEST(Histogram, RecordsIntoPowerOfTwoBuckets) {
  Histogram h;
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(10'000);  // above the last bound -> overflow bucket
  const HistogramData& d = h.data();
  EXPECT_EQ(d.count, 4u);
  EXPECT_EQ(d.sum, 1u + 2u + 3u + 10'000u);
  EXPECT_EQ(d.max, 10'000u);
  EXPECT_EQ(d.counts.front(), 1u);  // bucket [0,1]
  EXPECT_EQ(d.counts.back(), 1u);   // overflow
}

TEST(Histogram, QuantileReturnsBucketUpperBoundClampedToMax) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(3);  // bucket bound 4
  h.record(100);  // bucket bound 128
  const HistogramData& d = h.data();
  EXPECT_EQ(d.quantile(0.50), 4u);
  EXPECT_EQ(d.quantile(0.99), 4u);
  // The p100 sample sits in the [65,128] bucket, but the observed max (100)
  // is exact and tighter than the bound.
  EXPECT_EQ(d.quantile(1.0), 100u);
  EXPECT_EQ(d.max, 100u);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.data().quantile(0.5), 0u);
  EXPECT_EQ(h.data().quantile(1.0), 0u);
}

TEST(Histogram, OverflowQuantileIsExactMax) {
  Histogram h;
  h.record(1'000'000);
  EXPECT_EQ(h.data().quantile(0.5), 1'000'000u);
}

TEST(Histogram, MergeSumsBucketsAndIntoEmptyCopiesWholesale) {
  Histogram a;
  Histogram b;
  a.record(2);
  a.record(5);
  b.record(5);
  b.record(9'999);

  HistogramData merged;  // starts empty, no bounds
  merged.merge(a.data());
  EXPECT_EQ(merged, a.data());
  merged.merge(b.data());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.sum, 2u + 5u + 5u + 9'999u);
  EXPECT_EQ(merged.max, 9'999u);
  // Both 5s share a bucket after the merge.
  EXPECT_EQ(merged.quantile(0.75), 8u);
}

// ---- metrics registry ------------------------------------------------------

TEST(Metrics, CountersGaugesAndSnapshotsCompareEqual) {
  MetricsRegistry reg;
  reg.add("a.events");
  reg.add("a.events", 9);
  reg.set_counter("b.level", 7);
  reg.set_gauge("c.depth", -3);
  reg.histogram("d.ticks").record(42);

  EXPECT_EQ(reg.counter_value("a.events"), 10u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);

  const MetricsSnapshot s1 = reg.snapshot();
  const MetricsSnapshot s2 = reg.snapshot();
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.counter_or("b.level", 0), 7u);
  EXPECT_EQ(s1.counter_or("missing", 123), 123u);
  ASSERT_NE(s1.find_histogram("d.ticks"), nullptr);
  EXPECT_EQ(s1.find_histogram("d.ticks")->count, 1u);
  EXPECT_EQ(s1.find_histogram("missing"), nullptr);

  reg.add("a.events");
  EXPECT_NE(reg.snapshot(), s1);
}

TEST(Metrics, HistogramReferencesStayStableAcrossInserts) {
  MetricsRegistry reg;
  Histogram& first = reg.histogram("one");
  for (char c = 'a'; c <= 'z'; ++c) reg.histogram(std::string("h.") + c);
  first.record(5);
  EXPECT_EQ(reg.snapshot().find_histogram("one")->count, 1u);
}

TEST(Metrics, ToTextIsSortedAndDeterministic) {
  MetricsRegistry reg;
  reg.set_counter("zz", 1);
  reg.set_counter("aa", 2);
  reg.set_gauge("g", 5);
  reg.histogram("h").record(3);
  const std::string text = reg.snapshot().to_text();
  EXPECT_EQ(text,
            "counter aa 2\n"
            "counter zz 1\n"
            "gauge g 5\n"
            "histogram h count=1 sum=3 p50=3 p95=3 p99=3 max=3\n");
  EXPECT_EQ(text, reg.snapshot().to_text());
}

// ---- tracer ----------------------------------------------------------------

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer t;
  t.complete("span", "cat", 1, 10, 5);
  t.instant("mark", "cat", 2, 20);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, EmptyTraceJsonSkeletonIsStable) {
  // Both the real tracer and the UNIDIR_OBS_NO_TRACING stub must emit this
  // exact skeleton so downstream tooling always gets valid JSON.
  Tracer t;
  EXPECT_EQ(t.to_chrome_json(),
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
}

#if !defined(UNIDIR_OBS_NO_TRACING)

TEST(Tracer, RecordsOldestFirstAfterEnable) {
  Tracer t;
  t.enable(8);
  EXPECT_TRUE(t.enabled());
  t.instant("first", "cat", 1, 100);
  t.complete("second", "cat", 2, 200, 50);
  ASSERT_EQ(t.recorded(), 2u);
  const std::vector<TraceEvent> evs = t.events();
  EXPECT_STREQ(evs[0].name, "first");
  EXPECT_EQ(evs[0].ph, 'i');
  EXPECT_STREQ(evs[1].name, "second");
  EXPECT_EQ(evs[1].ph, 'X');
  EXPECT_EQ(evs[1].dur, 50u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDropped) {
  Tracer t;
  t.enable(4);
  const char* names[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (std::uint64_t i = 0; i < 6; ++i)
    t.instant(names[i], "cat", 0, static_cast<Time>(i));
  EXPECT_EQ(t.recorded(), 4u);
  EXPECT_EQ(t.dropped(), 2u);
  const std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_STREQ(evs.front().name, "e2");  // e0, e1 overwritten
  EXPECT_STREQ(evs.back().name, "e5");
}

TEST(Tracer, DisableStopsRecordingClearResets) {
  Tracer t;
  t.enable(4);
  t.instant("kept", "cat", 0, 1);
  t.disable();
  t.instant("ignored", "cat", 0, 2);
  EXPECT_EQ(t.recorded(), 1u);
  t.clear();
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, ChromeJsonGoldenBytes) {
  Tracer t;
  t.enable(8);
  t.complete("commit", "smr", 3, 120, 17, "counter", 9);
  t.instant("crash", "fault", 1, 400);
  t.complete("msg", "net", 2, 10, 4, "from", 1, "ch", 50);
  EXPECT_EQ(t.to_chrome_json(),
            "{\"traceEvents\":[\n"
            "{\"name\":\"commit\",\"cat\":\"smr\",\"ph\":\"X\",\"pid\":0,"
            "\"tid\":3,\"ts\":120,\"dur\":17,\"args\":{\"counter\":9}},\n"
            "{\"name\":\"crash\",\"cat\":\"fault\",\"ph\":\"i\",\"pid\":0,"
            "\"tid\":1,\"ts\":400,\"s\":\"t\"},\n"
            "{\"name\":\"msg\",\"cat\":\"net\",\"ph\":\"X\",\"pid\":0,"
            "\"tid\":2,\"ts\":10,\"dur\":4,\"args\":{\"from\":1,\"ch\":50}}"
            "\n],\"displayTimeUnit\":\"ms\"}\n");
}

#else  // UNIDIR_OBS_NO_TRACING

TEST(Tracer, StubStaysInertEvenWhenEnabled) {
  Tracer t;
  t.enable(1024);
  EXPECT_FALSE(t.enabled());
  t.instant("mark", "cat", 0, 1);
  t.complete("span", "cat", 0, 1, 1);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.to_chrome_json(),
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
}

#endif  // UNIDIR_OBS_NO_TRACING

}  // namespace
}  // namespace unidir::obs
