// The bidirectional power class, executed: Dolev–Strong broadcast in f+1
// lock-step rounds (any n > f), and strong-validity agreement (n >= 2f+1)
// — what synchrony achieves and unidirectionality provably cannot.
#include <gtest/gtest.h>

#include "agreement/dolev_strong.h"
#include "sim/adversaries.h"

namespace unidir::agreement {
namespace {

constexpr Time kDelta = 5;
constexpr Time kRoundLen = kDelta + 1;

class DsNode final : public sim::Process {
 public:
  std::unique_ptr<DolevStrongBroadcast> ds;
  std::optional<Bytes> input;

 protected:
  void on_start() override { ds->run(input, nullptr); }
};

struct DsFixture {
  sim::World world;
  std::vector<DsNode*> nodes;

  DsFixture(std::size_t n, std::size_t f, ProcessId sender,
            std::uint64_t seed)
      : world(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta)) {
    for (std::size_t i = 0; i < n; ++i) {
      auto& node = world.spawn<DsNode>();
      DolevStrongBroadcast::Options o;
      o.sender = sender;
      o.f = f;
      o.round_length = kRoundLen;
      node.ds = std::make_unique<DolevStrongBroadcast>(node, o);
      nodes.push_back(&node);
    }
  }
};

struct DsCase {
  std::size_t n;
  std::size_t f;
  std::uint64_t seed;
};

class DolevStrongP : public ::testing::TestWithParam<DsCase> {};

TEST_P(DolevStrongP, CorrectSenderAllCommitItsValue) {
  const auto& c = GetParam();
  DsFixture fx(c.n, c.f, /*sender=*/0, c.seed);
  fx.nodes[0]->input = bytes_of("decided");
  fx.world.start();
  fx.world.run_to_quiescence();
  for (auto* node : fx.nodes) {
    ASSERT_TRUE(node->ds->committed());
    ASSERT_TRUE(node->ds->value().has_value()) << "node " << node->id();
    EXPECT_EQ(*node->ds->value(), bytes_of("decided"));
  }
}

// Note n = f+1 and even n = f+2 configurations: Dolev–Strong tolerates any
// number of faults below n — far beyond the asynchronous third.
INSTANTIATE_TEST_SUITE_P(Sweep, DolevStrongP,
                         ::testing::Values(DsCase{2, 1, 1}, DsCase{3, 1, 2},
                                           DsCase{3, 2, 3}, DsCase{4, 2, 4},
                                           DsCase{5, 3, 5}, DsCase{7, 2, 6},
                                           DsCase{7, 6, 7}));

TEST(DolevStrong, SilentSenderCommitsBotEverywhere) {
  DsFixture fx(4, 2, /*sender=*/0, 9);
  fx.world.crash(0);
  fx.world.start();
  fx.world.run_to_quiescence();
  for (std::size_t i = 1; i < 4; ++i) {
    ASSERT_TRUE(fx.nodes[i]->ds->committed());
    EXPECT_FALSE(fx.nodes[i]->ds->value().has_value());
  }
}

/// Byzantine sender: signs two values and shows each to half the group in
/// round 1. The relays in round 2 expose the equivocation — everyone must
/// commit the SAME thing (here: ⊥, both values having been extracted).
class EquivocatingDsSender final : public sim::Process {
 public:
  sim::Channel channel = 90;

  void on_start() override {
    for (ProcessId p = 1; p < world().size(); ++p) {
      const Bytes value = bytes_of(p % 2 == 0 ? "left" : "right");
      serde::Writer inner;
      inner.str("dolev-strong");
      inner.uvarint(id());
      inner.uvarint(channel);
      inner.bytes(value);
      serde::Writer wire;
      wire.bytes(value);
      wire.uvarint(1);  // one signature
      wire.uvarint(id());
      signer().sign(inner.buffer()).encode(wire);
      send(p, channel, wire.take());
    }
  }
};

TEST(DolevStrong, EquivocatingSenderYieldsAgreementOnBot) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
    auto& byz = w.spawn<EquivocatingDsSender>();
    w.mark_byzantine(byz.id());
    std::vector<DsNode*> nodes;
    for (int i = 0; i < 4; ++i) {
      auto& node = w.spawn<DsNode>();
      DolevStrongBroadcast::Options o;
      o.sender = byz.id();
      o.f = 1;
      o.round_length = kRoundLen;
      node.ds = std::make_unique<DolevStrongBroadcast>(node, o);
      nodes.push_back(&node);
    }
    w.start();
    w.run_to_quiescence();
    // Agreement: all correct commit the same outcome.
    std::set<std::optional<Bytes>> outcomes;
    for (auto* node : nodes) {
      ASSERT_TRUE(node->ds->committed()) << "seed " << seed;
      outcomes.insert(node->ds->value());
    }
    EXPECT_EQ(outcomes.size(), 1u) << "seed " << seed;
    // With relays working, the equivocation is exposed: the outcome is ⊥.
    EXPECT_FALSE(nodes[0]->ds->value().has_value()) << "seed " << seed;
  }
}

TEST(DolevStrong, ForgedChainsRejected) {
  DsFixture fx(3, 1, /*sender=*/0, 11);
  // No input run: instead a Byzantine non-sender (node 2) fabricates a
  // chain without the sender's signature.
  fx.nodes[0]->input = std::nullopt;  // sender stays silent...
  // ...actually the sender must provide input; re-point the fabrication
  // test: sender broadcasts "real", node 2 relays a forged "fake" chain
  // signed only by itself.
  fx.nodes[0]->input = bytes_of("real");
  fx.world.mark_byzantine(fx.nodes[2]->id());
  auto& forger = *fx.nodes[2];
  fx.world.simulator().at(1, [&forger] {
    serde::Writer wire;
    wire.bytes(bytes_of("fake"));
    wire.uvarint(1);
    wire.uvarint(forger.id());
    serde::Writer inner;
    inner.str("dolev-strong");
    inner.uvarint(0);  // claims instance sender 0 but cannot sign for it
    inner.uvarint(90);
    inner.bytes(bytes_of("fake"));
    forger.signer().sign(inner.buffer()).encode(wire);
    forger.broadcast(90, wire.take());
  });
  fx.world.start();
  fx.world.run_to_quiescence();
  EXPECT_EQ(*fx.nodes[1]->ds->value(), bytes_of("real"));
}

// ---- strong agreement --------------------------------------------------------

class SaNode final : public sim::Process {
 public:
  std::unique_ptr<StrongAgreement> sa;
  Bytes input;

 protected:
  void on_start() override { sa->run(input, nullptr); }
};

TEST(StrongAgreement, StrongValidityWithByzantineMinority) {
  // n = 2f+1 = 5, f = 2: the two Byzantine processes stay silent (the
  // worst they can do against strong validity is fail to vote); all
  // correct processes share input v — all must commit v. Impossible under
  // unidirectionality with n <= 3f (here n=5 <= 6): this is the
  // bidirectional separation made executable.
  sim::World w(13, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
  std::vector<SaNode*> nodes;
  for (int i = 0; i < 5; ++i) {
    auto& node = w.spawn<SaNode>();
    StrongAgreement::Options o;
    o.n = 5;
    o.f = 2;
    o.round_length = kRoundLen;
    node.sa = std::make_unique<StrongAgreement>(node, o);
    node.input = bytes_of("the-one-value");
    nodes.push_back(&node);
  }
  w.crash(3);
  w.crash(4);
  w.start();
  w.run_to_quiescence();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(nodes[static_cast<std::size_t>(i)]->sa->committed());
    EXPECT_EQ(nodes[static_cast<std::size_t>(i)]->sa->value(),
              bytes_of("the-one-value"));
  }
}

TEST(StrongAgreement, MixedInputsStillAgree) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
    std::vector<SaNode*> nodes;
    for (int i = 0; i < 5; ++i) {
      auto& node = w.spawn<SaNode>();
      StrongAgreement::Options o;
      o.n = 5;
      o.f = 2;
      o.round_length = kRoundLen;
      node.sa = std::make_unique<StrongAgreement>(node, o);
      node.input = bytes_of(i < 2 ? "alpha" : "beta");
      nodes.push_back(&node);
    }
    w.start();
    w.run_to_quiescence();
    std::set<Bytes> committed;
    for (auto* node : nodes) {
      ASSERT_TRUE(node->sa->committed()) << "seed " << seed;
      committed.insert(node->sa->value());
    }
    EXPECT_EQ(committed.size(), 1u) << "seed " << seed;
    EXPECT_EQ(*committed.begin(), bytes_of("beta"));  // plurality (3 vs 2)
  }
}

TEST(StrongAgreement, RejectsSubMajorityConfigurations) {
  sim::World w(1, std::make_unique<sim::ImmediateAdversary>());
  auto& node = w.spawn<SaNode>();
  StrongAgreement::Options o;
  o.n = 4;
  o.f = 2;  // n < 2f+1
  EXPECT_THROW(StrongAgreement(node, o), std::invalid_argument);
}

}  // namespace
}  // namespace unidir::agreement
