#include <gtest/gtest.h>

#include "broadcast/srb_from_uni.h"
#include "rounds/msg_rounds.h"
#include "rounds/shmem_uni_round.h"
#include "sim/adversaries.h"
#include "test_util.h"

namespace unidir::broadcast {
namespace {

using testutil::Node;

constexpr sim::Channel kRoundCh = 30;
constexpr Time kDelta = 4;

/// Host that owns a round driver and an Algorithm-1 endpoint.
class UniNode final : public sim::Process {
 public:
  std::unique_ptr<rounds::RoundDriver> driver;
  std::unique_ptr<UniSrbEndpoint> srb;
  std::vector<Bytes> to_broadcast;
  Time start_delay = 0;

 protected:
  void on_start() override {
    auto go = [this] {
      for (auto& m : to_broadcast) srb->broadcast(m);
      srb->start();
    };
    if (start_delay == 0) {
      go();
    } else {
      set_timer(start_delay, go);
    }
  }
};

enum class DriverKind { ShmemUni, DeltaSync };

struct UniFixture {
  sim::World world;
  std::unique_ptr<shmem::MemoryHost> memory;
  std::unique_ptr<rounds::ShmemRoundBoard> board;
  std::vector<UniNode*> nodes;
  std::size_t n;
  std::size_t t;

  UniFixture(std::size_t n_, std::size_t t_, std::uint64_t seed,
             DriverKind kind)
      : world(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta)),
        n(n_),
        t(t_) {
    if (kind == DriverKind::ShmemUni) {
      memory = std::make_unique<shmem::MemoryHost>(
          world.simulator(), sim::Rng(seed * 17 + 3),
          shmem::MemoryOptions{.max_to_linearize = 3, .max_to_respond = 3});
      memory->set_crashed(
          [this](ProcessId p) { return world.crashed(p); });
      board = std::make_unique<rounds::ShmemRoundBoard>(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto& node = world.spawn<UniNode>();
      if (kind == DriverKind::ShmemUni) {
        node.driver = std::make_unique<rounds::ShmemUniRoundDriver>(
            *memory, *board, static_cast<ProcessId>(i));
      } else {
        node.driver = std::make_unique<rounds::DeltaSyncRoundDriver>(
            node, kRoundCh, 2 * kDelta);
      }
      node.srb = std::make_unique<UniSrbEndpoint>(node, *node.driver, n, t);
      nodes.push_back(&node);
    }
  }

  std::vector<SrbView> views() const {
    std::vector<SrbView> out;
    for (const UniNode* node : nodes) {
      if (!world.correct(node->id())) continue;
      out.push_back({node->id(), node->srb.get(), node->to_broadcast});
    }
    return out;
  }
};

struct UniCase {
  std::size_t n;
  std::size_t t;
  std::uint64_t seed;
  DriverKind kind;
  int messages;
};

class UniSrbP : public ::testing::TestWithParam<UniCase> {};

TEST_P(UniSrbP, SingleSenderAllProperties) {
  const auto& c = GetParam();
  UniFixture fx(c.n, c.t, c.seed, c.kind);
  for (int k = 0; k < c.messages; ++k)
    fx.nodes[0]->to_broadcast.push_back(bytes_of("m" + std::to_string(k)));
  fx.world.start();
  fx.world.run_to_quiescence();
  const auto violation = check_srb(fx.views());
  EXPECT_FALSE(violation.has_value())
      << to_string(violation->kind) << ": " << violation->detail;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UniSrbP,
    ::testing::Values(
        UniCase{3, 1, 1, DriverKind::ShmemUni, 3},
        UniCase{3, 1, 2, DriverKind::ShmemUni, 3},
        UniCase{5, 2, 3, DriverKind::ShmemUni, 2},
        UniCase{5, 2, 4, DriverKind::ShmemUni, 2},
        UniCase{7, 3, 5, DriverKind::ShmemUni, 2},
        UniCase{3, 1, 6, DriverKind::DeltaSync, 3},
        UniCase{3, 1, 7, DriverKind::DeltaSync, 3},
        UniCase{5, 2, 8, DriverKind::DeltaSync, 2},
        UniCase{5, 2, 9, DriverKind::DeltaSync, 2},
        UniCase{7, 3, 10, DriverKind::DeltaSync, 2}));

TEST(UniSrb, MultipleConcurrentSenders) {
  UniFixture fx(5, 2, 42, DriverKind::ShmemUni);
  for (std::size_t i = 0; i < 5; ++i)
    for (int k = 0; k < 2; ++k)
      fx.nodes[i]->to_broadcast.push_back(
          bytes_of("s" + std::to_string(i) + "k" + std::to_string(k)));
  fx.world.start();
  fx.world.run_to_quiescence();
  const auto violation = check_srb(fx.views());
  EXPECT_FALSE(violation.has_value())
      << to_string(violation->kind) << ": " << violation->detail;
}

TEST(UniSrb, LaggardCatchesUpViaPersistentBoard) {
  // One process starts long after the sender finished; on shared memory
  // the L2 proofs persist in the board, so it must still deliver all.
  UniFixture fx(3, 1, 77, DriverKind::ShmemUni);
  fx.nodes[0]->to_broadcast = {bytes_of("a"), bytes_of("b"), bytes_of("c")};
  fx.nodes[2]->start_delay = 3000;
  fx.world.start();
  fx.world.run_to_quiescence();
  EXPECT_EQ(fx.nodes[2]->srb->delivered_up_to(0), 3u);
  EXPECT_FALSE(check_srb(fx.views()).has_value());
}

TEST(UniSrb, SenderCrashMidstreamIsSafe) {
  // The sender crashes after its broadcasts may have only partially
  // spread. Whatever is delivered must still satisfy agreement/sequencing
  // among the survivors (validity no longer applies to a crashed sender).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    UniFixture fx(5, 2, 100 + seed, DriverKind::ShmemUni);
    fx.nodes[0]->to_broadcast = {bytes_of("x"), bytes_of("y")};
    fx.world.start();
    // Let a random prefix of the execution run, then crash the sender.
    fx.world.simulator().run_to_time(5 + seed * 7);
    fx.world.crash(fx.nodes[0]->id());
    fx.world.run_to_quiescence();
    std::vector<SrbView> survivors;
    for (std::size_t i = 1; i < 5; ++i)
      survivors.push_back({fx.nodes[i]->id(), fx.nodes[i]->srb.get(), {}});
    // Drop validity inputs (sender excluded); remaining checks must hold.
    const auto violation = check_srb(survivors);
    EXPECT_FALSE(violation.has_value())
        << to_string(violation->kind) << ": " << violation->detail
        << " seed=" << seed;
  }
}

TEST(UniSrb, EnginesParkAfterIdleLimit) {
  UniFixture fx(3, 1, 5, DriverKind::ShmemUni);
  fx.nodes[1]->to_broadcast = {bytes_of("one")};
  fx.world.start();
  fx.world.run_to_quiescence();
  for (auto* node : fx.nodes) {
    EXPECT_TRUE(node->srb->parked());
    EXPECT_EQ(node->srb->delivered_up_to(1), 1u);
  }
}

TEST(UniSrb, RequiresMajorityCorrect) {
  sim::World w(1, std::make_unique<sim::ImmediateAdversary>());
  auto& node = w.spawn<UniNode>();
  rounds::DeltaSyncRoundDriver driver(node, kRoundCh, 2 * kDelta);
  EXPECT_THROW(UniSrbEndpoint(node, driver, 4, 2), std::invalid_argument);
}

// ---- the equivocation attack ---------------------------------------------------
//
// A Byzantine sender (with t−1 Byzantine friends implicit in t) sends
// sender-signed value "left" to even-indexed victims and "right" to odd
// ones, counter-signs both itself, and adaptively compiles L1 proofs the
// moment a victim's copy vote becomes public — the strongest strategy short
// of breaking signatures. Unidirectionality must poison at least one side
// before both can compile conflicting L1 proofs.
class UniEquivocator final : public sim::Process {
 public:
  std::size_t t = 1;

  void on_start() override {
    register_channel(kRoundCh, [this](ProcessId from, const Bytes& payload) {
      on_round_traffic(from, payload);
    });

    left_ = make_val(bytes_of("left"));
    right_ = make_val(bytes_of("right"));
    for (ProcessId p = 0; p < world().size(); ++p) {
      if (p == id()) continue;
      const SignedVal& v = (p % 2 == 0) ? left_ : right_;
      UniSlotPayload slot;
      slot.my_vals = {v};
      slot.copies = {{v, my_vote(v)}};
      // Stuff several upcoming round numbers so the victims see the value
      // whatever round they are in.
      for (RoundNum r = 1; r <= 4; ++r)
        send(p, kRoundCh,
             wire::encode_tagged(
                 rounds::RoundMsg{r, wire::encode_tagged(slot)}));
    }
  }

 private:
  SignedVal make_val(Bytes msg) {
    SignedVal v;
    v.sender = id();
    v.seq = 1;
    v.msg = std::move(msg);
    v.sender_sig = signer().sign(v.signing_bytes());
    return v;
  }

  CopyVote my_vote(const SignedVal& v) {
    CopyVote c;
    c.copier = id();
    c.sig = signer().sign(CopyVote::signing_bytes(v));
    return c;
  }

  void on_round_traffic(ProcessId from, const Bytes& payload) {
    rounds::RoundMsg rm;
    UniSlotPayload slot;
    try {
      rm = serde::decode<rounds::RoundMsg>(payload);
      slot = serde::decode<UniSlotPayload>(rm.message);
    } catch (const serde::DecodeError&) {
      return;
    }
    // Harvest victims' copy votes for my values.
    for (const auto& [val, vote] : slot.copies) {
      if (val.sender != id() || vote.copier != from) continue;
      harvested_[val.msg][vote.copier] = vote;
      try_compile_and_push(val, rm.round);
    }
  }

  void try_compile_and_push(const SignedVal& val, RoundNum seen_round) {
    auto& votes = harvested_[val.msg];
    if (votes.size() + 1 < t + 1) return;  // +1 for my own vote
    L1Proof l1;
    l1.val = val;
    l1.copies.push_back(my_vote(val));
    for (const auto& [copier, vote] : votes) l1.copies.push_back(vote);
    l1.compiler = id();
    l1.compiler_sig = signer().sign(l1.signing_bytes());

    UniSlotPayload slot;
    slot.my_vals = {val};
    slot.copies = {{val, my_vote(val)}};
    slot.l1s = {l1};
    for (ProcessId p = 0; p < world().size(); ++p) {
      if (p == id()) continue;
      const bool is_left_victim = (p % 2 == 0);
      if (is_left_victim != (val.msg == bytes_of("left"))) continue;
      for (RoundNum r = seen_round + 1; r <= seen_round + 4; ++r)
        send(p, kRoundCh,
             wire::encode_tagged(
                 rounds::RoundMsg{r, wire::encode_tagged(slot)}));
    }
  }

  SignedVal left_;
  SignedVal right_;
  std::map<Bytes, std::map<ProcessId, CopyVote>> harvested_;
};

TEST(UniSrb, EquivocatingSenderCannotSplitDeliveries) {
  int poisonings = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    // n=3, t=1: Byzantine sender (id 0) + two correct victims.
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
    auto& byz = w.spawn<UniEquivocator>();
    byz.t = 1;
    w.mark_byzantine(byz.id());
    std::vector<UniNode*> victims;
    for (int i = 0; i < 2; ++i) {
      auto& node = w.spawn<UniNode>();
      node.driver = std::make_unique<rounds::DeltaSyncRoundDriver>(
          node, kRoundCh, 2 * kDelta);
      node.srb = std::make_unique<UniSrbEndpoint>(node, *node.driver, 3, 1);
      victims.push_back(&node);
    }
    w.start();
    w.run_to_quiescence();

    // SAFETY: the two correct victims must never deliver different values
    // for (byz, seq 1).
    std::set<Bytes> delivered;
    for (auto* v : victims)
      for (const Delivery& d : v->srb->delivered())
        if (d.sender == byz.id() && d.seq == 1) delivered.insert(d.message);
    EXPECT_LE(delivered.size(), 1u) << "seed " << seed;

    for (auto* v : victims)
      if (v->srb->poisoned(byz.id())) ++poisonings;
  }
  // The attack must actually have been observed (otherwise this test is
  // vacuous): across seeds, some victim detected the equivocation.
  EXPECT_GT(poisonings, 0);
}

// ---- proof validators -------------------------------------------------------------

class ValidatorFixture : public ::testing::Test {
 protected:
  ValidatorFixture()
      : world(1, std::make_unique<sim::ImmediateAdversary>()) {
    for (int i = 0; i < 4; ++i) nodes.push_back(&world.spawn<Node>());
  }

  SignedVal val(ProcessId sender, SeqNum seq, std::string_view msg) {
    SignedVal v;
    v.sender = sender;
    v.seq = seq;
    v.msg = bytes_of(msg);
    v.sender_sig = node_signer(sender).sign(v.signing_bytes());
    return v;
  }

  CopyVote vote(ProcessId copier, const SignedVal& v) {
    CopyVote c;
    c.copier = copier;
    c.sig = node_signer(copier).sign(CopyVote::signing_bytes(v));
    return c;
  }

  L1Proof l1(ProcessId compiler, const SignedVal& v,
             std::initializer_list<ProcessId> copiers) {
    L1Proof p;
    p.val = v;
    for (ProcessId c : copiers) p.copies.push_back(vote(c, v));
    p.compiler = compiler;
    p.compiler_sig = node_signer(compiler).sign(p.signing_bytes());
    return p;
  }

  const crypto::Signer& node_signer(ProcessId p) {
    return nodes[p]->signer();
  }

  sim::World world;
  std::vector<testutil::Node*> nodes;
};

TEST_F(ValidatorFixture, ValidSignedValAccepted) {
  EXPECT_TRUE(valid_signed_val(world, val(0, 1, "m")));
}

TEST_F(ValidatorFixture, SeqZeroRejected) {
  SignedVal v = val(0, 1, "m");
  v.seq = 0;
  EXPECT_FALSE(valid_signed_val(world, v));
}

TEST_F(ValidatorFixture, ForeignKeyRejected) {
  SignedVal v = val(0, 1, "m");
  v.sender = 1;  // claims p1 but signed by p0
  EXPECT_FALSE(valid_signed_val(world, v));
}

TEST_F(ValidatorFixture, TamperedMessageRejected) {
  SignedVal v = val(0, 1, "m");
  v.msg = bytes_of("m'");
  EXPECT_FALSE(valid_signed_val(world, v));
}

TEST_F(ValidatorFixture, ValidCopyAccepted) {
  const SignedVal v = val(0, 1, "m");
  EXPECT_TRUE(valid_copy(world, v, vote(2, v)));
}

TEST_F(ValidatorFixture, CopyOverDifferentValueRejected) {
  const SignedVal v = val(0, 1, "m");
  const SignedVal other = val(0, 1, "x");
  CopyVote c = vote(2, other);
  EXPECT_FALSE(valid_copy(world, v, c));
}

TEST_F(ValidatorFixture, L1NeedsTPlus1DistinctCopiers) {
  const SignedVal v = val(0, 1, "m");
  EXPECT_TRUE(valid_l1(world, l1(1, v, {1, 2}), 1));
  EXPECT_FALSE(valid_l1(world, l1(1, v, {1}), 1));
  // Duplicated copier does not count twice.
  L1Proof dup = l1(1, v, {2, 2});
  EXPECT_FALSE(valid_l1(world, dup, 1));
}

TEST_F(ValidatorFixture, L1CompilerSignatureBinds) {
  const SignedVal v = val(0, 1, "m");
  L1Proof p = l1(1, v, {1, 2});
  p.compiler = 3;  // relabel: signature no longer matches
  EXPECT_FALSE(valid_l1(world, p, 1));
}

TEST_F(ValidatorFixture, L2NeedsDistinctCompilers) {
  const SignedVal v = val(0, 1, "m");
  L2Proof good;
  good.val = v;
  good.l1s = {l1(1, v, {1, 2}), l1(2, v, {1, 2})};
  EXPECT_TRUE(valid_l2(world, good, 1));

  L2Proof same_compiler;
  same_compiler.val = v;
  same_compiler.l1s = {l1(1, v, {1, 2}), l1(1, v, {1, 2})};
  EXPECT_FALSE(valid_l2(world, same_compiler, 1));
}

TEST_F(ValidatorFixture, L2WithMismatchedValuesRejected) {
  const SignedVal v = val(0, 1, "m");
  const SignedVal other = val(0, 1, "x");
  L2Proof p;
  p.val = v;
  p.l1s = {l1(1, v, {1, 2}), l1(2, other, {1, 2})};
  EXPECT_FALSE(valid_l2(world, p, 1));
}

TEST_F(ValidatorFixture, WireRoundTrips) {
  const SignedVal v = val(3, 9, "payload");
  EXPECT_TRUE(valid_signed_val(
      world, serde::decode<SignedVal>(serde::encode(v))));
  const L1Proof p = l1(2, v, {1, 2, 3});
  const L1Proof parsed = serde::decode<L1Proof>(serde::encode(p));
  EXPECT_TRUE(valid_l1(world, parsed, 2));
  L2Proof l2;
  l2.val = v;
  l2.l1s = {l1(1, v, {1, 2}), l1(2, v, {2, 3})};
  EXPECT_TRUE(valid_l2(world, serde::decode<L2Proof>(serde::encode(l2)), 1));
}

}  // namespace
}  // namespace unidir::broadcast
