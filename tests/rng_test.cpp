#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sim/rng.h"

namespace unidir::sim {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroRejected) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeFullDomain) {
  Rng rng(11);
  (void)rng.range(0, ~std::uint64_t{0});  // must not hang or throw
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i)
    ++counts[static_cast<std::size_t>(rng.below(kBuckets))];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, PickReturnsElement) {
  Rng rng(29);
  const std::vector<int> v = {10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, PickEmptyRejected) {
  Rng rng(29);
  const std::vector<int> v;
  EXPECT_THROW((void)rng.pick(v), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  // The child stream should not mirror the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == child.next()) ++equal;
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace unidir::sim
