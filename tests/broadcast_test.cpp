#include <gtest/gtest.h>

#include "broadcast/bracha.h"
#include "broadcast/noneq.h"
#include "broadcast/rb_uni_round.h"
#include "broadcast/srb_hub.h"
#include "rounds/checkers.h"
#include "rounds/msg_rounds.h"
#include "sim/adversaries.h"
#include "test_util.h"

namespace unidir::broadcast {
namespace {

using testutil::Node;

constexpr sim::Channel kSrbCh = 20;
constexpr sim::Channel kRoundCh = 21;

// ---- SrbHub (trusted primitive) ----------------------------------------------

struct HubFixture {
  sim::World world;
  SrbHub hub;
  std::vector<Node*> nodes;
  std::vector<std::unique_ptr<SrbHubEndpoint>> endpoints;

  HubFixture(std::size_t n, std::uint64_t seed,
             std::unique_ptr<sim::Adversary> adversary)
      : world(seed, std::move(adversary)), hub(world, kSrbCh) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(&world.spawn<Node>());
      endpoints.push_back(hub.make_endpoint(*nodes.back()));
    }
  }

  std::vector<SrbView> views(const std::vector<std::vector<Bytes>>& bcasts) {
    std::vector<SrbView> out;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!world.correct(nodes[i]->id())) continue;
      out.push_back({nodes[i]->id(), endpoints[i].get(), bcasts[i]});
    }
    return out;
  }
};

TEST(SrbHub, DeliversToEveryoneIncludingSender) {
  HubFixture fx(4, 1, std::make_unique<sim::ImmediateAdversary>());
  fx.world.start();
  fx.endpoints[0]->broadcast(bytes_of("hello"));
  fx.world.run_to_quiescence();
  for (auto& ep : fx.endpoints) {
    ASSERT_EQ(ep->delivered().size(), 1u);
    EXPECT_EQ(ep->delivered()[0],
              (Delivery{0, 1, bytes_of("hello")}));
  }
}

TEST(SrbHub, SequencesUnderHeavyReordering) {
  HubFixture fx(3, 7, std::make_unique<sim::RandomDelayAdversary>(1, 100));
  fx.world.start();
  std::vector<std::vector<Bytes>> bcasts(3);
  for (int k = 0; k < 20; ++k) {
    const Bytes m = bytes_of("m" + std::to_string(k));
    fx.endpoints[1]->broadcast(m);
    bcasts[1].push_back(m);
  }
  fx.world.run_to_quiescence();
  EXPECT_FALSE(check_srb(fx.views(bcasts)).has_value());
  // Explicit order check at one receiver.
  const auto& log = fx.endpoints[2]->delivered();
  ASSERT_EQ(log.size(), 20u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].seq, i + 1);
    EXPECT_EQ(log[i].message, bcasts[1][i]);
  }
}

TEST(SrbHub, InterleavedSendersKeepPerSenderOrder) {
  HubFixture fx(5, 9, std::make_unique<sim::RandomDelayAdversary>(1, 50));
  fx.world.start();
  std::vector<std::vector<Bytes>> bcasts(5);
  for (int k = 0; k < 10; ++k) {
    for (std::size_t s = 0; s < 5; ++s) {
      const Bytes m = bytes_of("s" + std::to_string(s) + "k" +
                               std::to_string(k));
      fx.endpoints[s]->broadcast(m);
      bcasts[s].push_back(m);
    }
  }
  fx.world.run_to_quiescence();
  EXPECT_FALSE(check_srb(fx.views(bcasts)).has_value());
}

TEST(SrbHub, SpoofedWireMessagesRejected) {
  HubFixture fx(3, 3, std::make_unique<sim::ImmediateAdversary>());
  fx.world.start();
  // Process 2 (Byzantine) injects a fake delivery claiming to be from 0.
  fx.world.mark_byzantine(fx.nodes[2]->id());
  serde::Writer w;
  w.uvarint(0);            // sender
  w.uvarint(1);            // seq
  w.bytes(bytes_of("fake"));
  crypto::Signature bogus;
  bogus.key = fx.world.key_of(2);
  bogus.mac = Bytes(32, 0xAB);
  bogus.encode(w);
  fx.nodes[2]->broadcast(kSrbCh, w.take());
  fx.world.run_to_quiescence();
  EXPECT_TRUE(fx.endpoints[0]->delivered().empty());
  EXPECT_TRUE(fx.endpoints[1]->delivered().empty());
}

TEST(SrbHub, HeldCopiesAreSimplyNotYetDelivered) {
  // The trusted primitive prevents equivocation but NOT partitions: a held
  // copy never arrives, and nothing in the primitive can force it.
  auto adversary = std::make_unique<sim::PartitionAdversary>();
  auto* part = adversary.get();
  HubFixture fx(3, 5, std::move(adversary));
  part->block({0}, {2});
  fx.world.start();
  fx.endpoints[0]->broadcast(bytes_of("m"));
  fx.world.run_to_quiescence();
  EXPECT_EQ(fx.endpoints[1]->delivered().size(), 1u);
  EXPECT_TRUE(fx.endpoints[2]->delivered().empty());
  // Heal: the copy flows.
  part->clear();
  fx.world.network().flush_held();
  fx.world.run_to_quiescence();
  EXPECT_EQ(fx.endpoints[2]->delivered().size(), 1u);
}

// ---- Bracha -------------------------------------------------------------------

struct BrachaFixture {
  sim::World world;
  std::vector<Node*> nodes;
  std::vector<std::unique_ptr<BrachaEndpoint>> endpoints;
  std::size_t n;
  std::size_t f;

  BrachaFixture(std::size_t n_, std::size_t f_, std::uint64_t seed,
                Time max_delay = 20)
      : world(seed, std::make_unique<sim::RandomDelayAdversary>(1, max_delay)),
        n(n_),
        f(f_) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(&world.spawn<Node>());
      endpoints.push_back(
          std::make_unique<BrachaEndpoint>(*nodes.back(), kSrbCh, n, f));
    }
  }
};

TEST(Bracha, RequiresNGreaterThan3F) {
  sim::World w(1, std::make_unique<sim::ImmediateAdversary>());
  auto& node = w.spawn<Node>();
  EXPECT_THROW(BrachaEndpoint(node, kSrbCh, 3, 1), std::invalid_argument);
  EXPECT_THROW(BrachaEndpoint(node, kSrbCh, 6, 2), std::invalid_argument);
}

struct BrachaCase {
  std::size_t n;
  std::size_t f;
  std::uint64_t seed;
  int messages;
};

class BrachaP : public ::testing::TestWithParam<BrachaCase> {};

TEST_P(BrachaP, SrbPropertiesHold) {
  const auto& c = GetParam();
  BrachaFixture fx(c.n, c.f, c.seed);
  fx.world.start();
  std::vector<std::vector<Bytes>> bcasts(c.n);
  for (int k = 0; k < c.messages; ++k) {
    const Bytes m = bytes_of("msg" + std::to_string(k));
    fx.endpoints[0]->broadcast(m);
    bcasts[0].push_back(m);
  }
  fx.world.run_to_quiescence();
  std::vector<SrbView> views;
  for (std::size_t i = 0; i < c.n; ++i)
    views.push_back({fx.nodes[i]->id(), fx.endpoints[i].get(), bcasts[i]});
  const auto violation = check_srb(views);
  EXPECT_FALSE(violation.has_value())
      << to_string(violation->kind) << ": " << violation->detail;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BrachaP,
    ::testing::Values(BrachaCase{4, 1, 1, 5}, BrachaCase{4, 1, 2, 5},
                      BrachaCase{7, 2, 3, 4}, BrachaCase{7, 2, 4, 4},
                      BrachaCase{10, 3, 5, 3}, BrachaCase{13, 4, 6, 2}));

TEST(Bracha, ToleratesFCrashes) {
  BrachaFixture fx(7, 2, 11);
  fx.world.crash(fx.nodes[5]->id());
  fx.world.crash(fx.nodes[6]->id());
  fx.world.start();
  fx.endpoints[0]->broadcast(bytes_of("survives"));
  fx.world.run_to_quiescence();
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(fx.endpoints[i]->delivered().size(), 1u) << i;
    EXPECT_EQ(fx.endpoints[i]->delivered()[0].message, bytes_of("survives"));
  }
}

/// Byzantine sender: hand-crafts INITIAL wires with different values to
/// different halves of the group.
class EquivocatingBrachaSender final : public sim::Process {
 public:
  void on_start() override {
    for (ProcessId p = 0; p < world().size(); ++p) {
      if (p == id()) continue;
      serde::Writer w;
      w.u8(1);  // INITIAL
      w.uvarint(id());
      w.uvarint(1);  // seq
      w.bytes(bytes_of(p % 2 == 0 ? "left" : "right"));
      send(p, kSrbCh, w.take());
    }
  }
};

TEST(Bracha, EquivocatingSenderCannotSplitDelivery) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, 20));
    auto& byz = w.spawn<EquivocatingBrachaSender>();
    w.mark_byzantine(byz.id());
    std::vector<std::unique_ptr<BrachaEndpoint>> eps;
    std::vector<Node*> nodes;
    for (int i = 0; i < 6; ++i) {
      nodes.push_back(&w.spawn<Node>());
      eps.push_back(std::make_unique<BrachaEndpoint>(*nodes.back(), kSrbCh,
                                                     7, 2));
    }
    w.start();
    w.run_to_quiescence();
    // Agreement: all correct processes that delivered seq 1 from the
    // Byzantine sender delivered the same value.
    std::set<Bytes> delivered_values;
    for (auto& ep : eps)
      for (const Delivery& d : ep->delivered())
        if (d.sender == byz.id()) delivered_values.insert(d.message);
    EXPECT_LE(delivered_values.size(), 1u) << "seed " << seed;
    // And totality: if one delivered, all did (Bracha's READY amplification).
    std::size_t deliverers = 0;
    for (auto& ep : eps)
      if (!ep->delivered().empty()) ++deliverers;
    EXPECT_TRUE(deliverers == 0 || deliverers == eps.size())
        << "seed " << seed;
  }
}

TEST(Bracha, QuadraticMessageComplexity) {
  BrachaFixture fx(10, 3, 21, /*max_delay=*/3);
  fx.world.start();
  fx.endpoints[0]->broadcast(bytes_of("count me"));
  fx.world.run_to_quiescence();
  // 1 INITIAL broadcast + n ECHO broadcasts + n READY broadcasts,
  // each n-1 messages: total (2n+1)(n-1).
  const auto sent = fx.world.network().stats().messages_sent;
  EXPECT_EQ(sent, (2 * 10 + 1) * (10 - 1));
}

// ---- non-equivocating broadcast from unidirectional rounds --------------------

TEST(NonEqBroadcast, CorrectSenderAllCommitValue) {
  constexpr Time kDelta = 4;
  sim::World w(3, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
  std::vector<Node*> nodes;
  std::vector<std::unique_ptr<rounds::DeltaSyncRoundDriver>> drivers;
  std::vector<std::unique_ptr<NonEqBroadcast>> bcasts;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(&w.spawn<Node>());
    drivers.push_back(std::make_unique<rounds::DeltaSyncRoundDriver>(
        *nodes.back(), kRoundCh, 2 * kDelta));
    bcasts.push_back(
        std::make_unique<NonEqBroadcast>(*nodes.back(), *drivers.back(),
                                         /*sender=*/0));
  }
  for (int i = 0; i < 4; ++i) {
    Node* node = nodes[static_cast<std::size_t>(i)];
    NonEqBroadcast* b = bcasts[static_cast<std::size_t>(i)].get();
    node->on_start_fn = [b, i] {
      b->run(i == 0 ? std::optional<Bytes>(bytes_of("decided-v"))
                    : std::nullopt,
             nullptr);
    };
  }
  w.start();
  w.run_to_quiescence();
  for (auto& b : bcasts) {
    ASSERT_TRUE(b->committed());
    ASSERT_TRUE(b->value().has_value());
    EXPECT_EQ(*b->value(), bytes_of("decided-v"));
  }
}

/// Byzantine sender for NonEqBroadcast: sends different signed values to
/// the two halves by injecting raw round messages.
class EquivocatingNoneqSender final : public sim::Process {
 public:
  void on_start() override {
    for (ProcessId p = 0; p < world().size(); ++p) {
      if (p == id()) continue;
      const Bytes value = bytes_of(p % 2 == 0 ? "vA" : "vB");
      serde::Writer inner;
      inner.str("noneq-bcast");
      inner.uvarint(id());
      inner.bytes(value);
      const crypto::Signature sig = signer().sign(inner.buffer());
      // NoneqBatch (tag 1) with one element, wrapped in RoundMsg round 1.
      serde::Writer vals;
      vals.u8(1);  // wire tag of noneq-batch
      vals.uvarint(1);
      vals.bytes(value);
      sig.encode(vals);
      send(p, kRoundCh,
           wire::encode_tagged(rounds::RoundMsg{1, vals.take()}));
    }
  }
};

TEST(NonEqBroadcast, EquivocatorCausesBotOrSingleValue) {
  constexpr Time kDelta = 4;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
    auto& byz = w.spawn<EquivocatingNoneqSender>();
    w.mark_byzantine(byz.id());
    std::vector<Node*> nodes;
    std::vector<std::unique_ptr<rounds::DeltaSyncRoundDriver>> drivers;
    std::vector<std::unique_ptr<NonEqBroadcast>> bcasts;
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(&w.spawn<Node>());
      drivers.push_back(std::make_unique<rounds::DeltaSyncRoundDriver>(
          *nodes.back(), kRoundCh, 2 * kDelta));
      bcasts.push_back(std::make_unique<NonEqBroadcast>(
          *nodes.back(), *drivers.back(), byz.id()));
      Node* node = nodes.back();
      NonEqBroadcast* b = bcasts.back().get();
      node->on_start_fn = [b] { b->run(std::nullopt, nullptr); };
    }
    w.start();
    w.run_to_quiescence();
    std::set<Bytes> committed_values;
    for (auto& b : bcasts) {
      ASSERT_TRUE(b->committed()) << "seed " << seed;
      if (b->value()) committed_values.insert(*b->value());
    }
    EXPECT_LE(committed_values.size(), 1u) << "seed " << seed;
  }
}

// ---- unidirectional rounds from RB (f=1 corner case) --------------------------

class RbUniRunner final : public sim::Process {
 public:
  std::unique_ptr<RbUniRoundDriver> driver;
  int target = 0;

 protected:
  void on_start() override { go(); }

 private:
  void go() {
    if (driver->completed_rounds() >= static_cast<RoundNum>(target)) return;
    driver->start_round(bytes_of("r" + std::to_string(
                                          driver->completed_rounds() + 1)),
                        [this](RoundNum, const std::vector<rounds::Received>&) {
                          go();
                        });
  }
};

TEST(RbUniRound, UnidirectionalityHoldsUnderPairPartition) {
  // Block the direct link between processes 0 and 1 in both directions:
  // the relays must smuggle at least one direction per round.
  for (std::size_t n : {3u, 4u, 5u}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      auto adversary = std::make_unique<sim::PartitionAdversary>();
      adversary->block_bidirectional({0}, {1});
      sim::World w(seed, std::move(adversary));
      SrbHub hub(w, kSrbCh);
      std::vector<RbUniRunner*> runners;
      for (std::size_t i = 0; i < n; ++i) runners.push_back(&w.spawn<RbUniRunner>());
      // Drivers check n >= 3 at construction, so attach after spawning all.
      for (auto* r : runners) {
        r->driver = std::make_unique<RbUniRoundDriver>(*r, hub);
        r->target = 4;
      }
      w.start();
      w.run_to_quiescence();
      std::vector<rounds::ProcessHistory> hist;
      for (auto* r : runners) {
        EXPECT_EQ(r->driver->completed_rounds(), 4u)
            << "n=" << n << " seed=" << seed;
        hist.push_back(rounds::history_of(r->id(), *r->driver));
      }
      const auto violation = rounds::check_unidirectional(hist);
      EXPECT_FALSE(violation.has_value())
          << violation->describe() << " n=" << n << " seed=" << seed;
    }
  }
}

TEST(RbUniRound, ToleratesOneCrashedProcess) {
  sim::World w(13, std::make_unique<sim::RandomDelayAdversary>(1, 6));
  SrbHub hub(w, kSrbCh);
  std::vector<RbUniRunner*> runners;
  for (std::size_t i = 0; i < 4; ++i) runners.push_back(&w.spawn<RbUniRunner>());
  for (auto* r : runners) {
    r->driver = std::make_unique<RbUniRoundDriver>(*r, hub);
    r->target = 3;
  }
  w.crash(runners[3]->id());
  w.start();
  w.run_to_quiescence();
  std::vector<rounds::ProcessHistory> hist;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(runners[i]->driver->completed_rounds(), 3u);
    hist.push_back(rounds::history_of(runners[i]->id(), *runners[i]->driver));
  }
  EXPECT_FALSE(rounds::check_unidirectional(hist).has_value());
}

TEST(RbUniRound, RequiresAtLeastThreeProcesses) {
  sim::World w(1, std::make_unique<sim::ImmediateAdversary>());
  SrbHub hub(w, kSrbCh);
  auto& a = w.spawn<Node>();
  (void)w.spawn<Node>();
  EXPECT_THROW(RbUniRoundDriver(a, hub), std::invalid_argument);
}

}  // namespace
}  // namespace unidir::broadcast
