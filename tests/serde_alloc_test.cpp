// Allocation-count regression tests for the serde Writer.
//
// The Writer's appends are on the signing/hashing path of every protocol
// message; Writer::reserve() plus the internal geometric `ensure` are what
// keep a message encode at O(1) allocations. These tests count global
// operator new calls around encode loops and pin that behavior, so a later
// "simplification" that reintroduces per-append reallocation fails loudly.
//
// The whole file is compiled out under sanitizers: replacing global
// operator new would fight their interceptors for no coverage gain.
#include <gtest/gtest.h>

#include "common/serde.h"

namespace unidir::serde {
namespace {

// Always-on reserve() behavior check, so this binary has coverage even
// where the allocation-counting half below is compiled out.
TEST(SerdeAlloc, ReserveKeepsContentsAndGrowsCapacity) {
  Writer w;
  w.u8(0x42);
  w.reserve(1 << 16);
  w.bytes(Bytes(1024, 0xCD));
  EXPECT_EQ(w.buffer()[0], 0x42);
  EXPECT_EQ(w.buffer().size(), 1u + 2u + 1024u);  // u8 + varint(1024) + data
}

}  // namespace
}  // namespace unidir::serde

#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace unidir::serde {
namespace {

std::uint64_t allocations_during(const std::function<void()>& body) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  body();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(SerdeAlloc, ReservedWriterAppendsWithoutAllocating) {
  const Bytes chunk(64, 0xAB);
  Writer w;
  w.reserve(100 * (chunk.size() + 10));
  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 100; ++i) w.bytes(chunk);
  });
  EXPECT_EQ(allocs, 0u) << "appends reallocated despite an exact reserve()";
  EXPECT_EQ(w.buffer().size(), 100 * (chunk.size() + 1));
}

TEST(SerdeAlloc, LargeBytesAppendAllocatesAtMostOnce) {
  const Bytes blob(64 * 1024, 0x5A);
  Writer w;
  const std::uint64_t allocs =
      allocations_during([&] { w.bytes(blob); });
  EXPECT_LE(allocs, 1u)
      << "length-prefixed append should reserve prefix+payload in one step";
}

TEST(SerdeAlloc, ManySmallAppendsStayAmortized) {
  // 4096 two-byte appends total ~12 KB; geometric growth from empty means
  // at most ~log2(12K) reallocations. The regression this guards against —
  // reserving to the exact size on every append — would cost 4096.
  const Bytes tiny{0x01, 0x02};
  Writer w;
  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 4096; ++i) w.bytes(tiny);
  });
  EXPECT_LE(allocs, 32u) << "per-append reallocation detected";
}

}  // namespace
}  // namespace unidir::serde

#endif  // !sanitizers
