#include <gtest/gtest.h>

#include "crypto/hmac.h"

namespace unidir::crypto {
namespace {

std::string hmac_hex(const Bytes& key, const Bytes& msg) {
  const Digest d = hmac_sha256(key, msg);
  return to_hex(ByteSpan(d.data(), d.size()));
}

// RFC 4231 test vectors.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_hex(key, bytes_of("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      hmac_hex(bytes_of("Jefe"), bytes_of("what do ya want for nothing?")),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(hmac_hex(key, msg),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hmac_hex(key, bytes_of("Test Using Larger Than Block-Size Key - "
                                   "Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const Bytes msg = bytes_of("same message");
  EXPECT_NE(hmac_sha256(bytes_of("key-a"), msg),
            hmac_sha256(bytes_of("key-b"), msg));
}

TEST(Hmac, MessageSensitivity) {
  const Bytes key = bytes_of("same key");
  EXPECT_NE(hmac_sha256(key, bytes_of("message a")),
            hmac_sha256(key, bytes_of("message b")));
}

TEST(Hmac, EmptyKeyAndMessageAccepted) {
  const Digest d = hmac_sha256({}, {});
  EXPECT_EQ(d.size(), kSha256DigestSize);
}

}  // namespace
}  // namespace unidir::crypto
