#include <gtest/gtest.h>

#include "trusted/a2m.h"
#include "trusted/a2m_from_trinc.h"
#include "trusted/sgx.h"
#include "trusted/trinc.h"
#include "trusted/usig.h"

namespace unidir::trusted {
namespace {

// ---- TrInc ---------------------------------------------------------------------

class TrincFixture : public ::testing::Test {
 protected:
  crypto::KeyRegistry keys;
  TrincAuthority authority{keys};
};

TEST_F(TrincFixture, AttestAndCheck) {
  Trinket t = authority.make_trinket(0);
  const auto a = t.attest(1, bytes_of("m"));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->prev, 0u);
  EXPECT_EQ(a->seq, 1u);
  EXPECT_TRUE(authority.check(*a, 0));
}

TEST_F(TrincFixture, CounterReuseRefused) {
  Trinket t = authority.make_trinket(0);
  ASSERT_TRUE(t.attest(5, bytes_of("m")).has_value());
  EXPECT_FALSE(t.attest(5, bytes_of("other")).has_value());
  EXPECT_FALSE(t.attest(4, bytes_of("other")).has_value());
  EXPECT_EQ(t.last_used(), 5u);
}

TEST_F(TrincFixture, SkippingForwardAllowedAndPrevTracksGaps) {
  Trinket t = authority.make_trinket(0);
  ASSERT_TRUE(t.attest(2, bytes_of("a")).has_value());
  const auto b = t.attest(10, bytes_of("b"));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->prev, 2u);  // receivers can detect the gap
  EXPECT_EQ(b->seq, 10u);
}

TEST_F(TrincFixture, NonEquivocationNoTwoMessagesOneCounter) {
  // The defining property: once (c, m) is attested, no attestation for
  // (c, m') can ever exist — there is simply no code path that makes one.
  Trinket t = authority.make_trinket(0);
  const auto first = t.attest(3, bytes_of("m"));
  ASSERT_TRUE(first.has_value());
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(t.attest(3, bytes_of("m" + std::to_string(i))).has_value());
}

TEST_F(TrincFixture, CheckRejectsWrongOwner) {
  Trinket t0 = authority.make_trinket(0);
  (void)authority.make_trinket(1);
  const auto a = t0.attest(1, bytes_of("m"));
  EXPECT_FALSE(authority.check(*a, 1));
}

TEST_F(TrincFixture, CheckRejectsTampering) {
  Trinket t = authority.make_trinket(0);
  auto a = *t.attest(1, bytes_of("m"));
  auto tampered = a;
  tampered.message = bytes_of("m'");
  EXPECT_FALSE(authority.check(tampered, 0));
  tampered = a;
  tampered.seq = 2;
  EXPECT_FALSE(authority.check(tampered, 0));
  tampered = a;
  tampered.prev = 7;
  EXPECT_FALSE(authority.check(tampered, 0));
}

TEST_F(TrincFixture, CheckRejectsUnissuedDevice) {
  TrincAttestation a;
  a.owner = 9;
  EXPECT_FALSE(authority.check(a, 9));
}

TEST_F(TrincFixture, CountersAreIndependent) {
  Trinket t = authority.make_trinket(0);
  ASSERT_TRUE(t.attest_on(1, 5, bytes_of("a")).has_value());
  ASSERT_TRUE(t.attest_on(2, 1, bytes_of("b")).has_value());
  EXPECT_FALSE(t.attest_on(1, 5, bytes_of("x")).has_value());
  ASSERT_TRUE(t.attest_on(2, 2, bytes_of("c")).has_value());
  EXPECT_EQ(t.last_used(1), 5u);
  EXPECT_EQ(t.last_used(2), 2u);
  EXPECT_EQ(t.last_used(0), 0u);
}

TEST_F(TrincFixture, OneTrinketPerOwner) {
  (void)authority.make_trinket(0);
  EXPECT_THROW((void)authority.make_trinket(0), std::invalid_argument);
}

TEST_F(TrincFixture, AttestationWireRoundTrip) {
  Trinket t = authority.make_trinket(0);
  const auto a = *t.attest(1, bytes_of("m"));
  const auto parsed = serde::decode<TrincAttestation>(serde::encode(a));
  EXPECT_EQ(parsed, a);
  EXPECT_TRUE(authority.check(parsed, 0));
}

// ---- A2M ----------------------------------------------------------------------

class A2mFixture : public ::testing::Test {
 protected:
  crypto::KeyRegistry keys;
  A2mAuthority authority{keys};
};

TEST_F(A2mFixture, AppendLookupEnd) {
  A2m dev = authority.make_device(0);
  const LogId log = dev.create_log();
  EXPECT_EQ(dev.append(log, bytes_of("x")), std::optional<SeqNum>{1});
  EXPECT_EQ(dev.append(log, bytes_of("y")), std::optional<SeqNum>{2});

  const auto lk = dev.lookup(log, 1, bytes_of("nonce"));
  ASSERT_TRUE(lk.has_value());
  EXPECT_EQ(lk->value, bytes_of("x"));
  EXPECT_EQ(lk->nonce, bytes_of("nonce"));
  EXPECT_TRUE(authority.check(*lk, 0));

  const auto e = dev.end(log, bytes_of("n2"));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 2u);
  EXPECT_EQ(e->value, bytes_of("y"));
  EXPECT_TRUE(authority.check(*e, 0));
}

TEST_F(A2mFixture, LookupOutOfRangeFails) {
  A2m dev = authority.make_device(0);
  const LogId log = dev.create_log();
  EXPECT_FALSE(dev.lookup(log, 1, {}).has_value());
  (void)dev.append(log, bytes_of("x"));
  EXPECT_FALSE(dev.lookup(log, 0, {}).has_value());
  EXPECT_FALSE(dev.lookup(log, 2, {}).has_value());
}

TEST_F(A2mFixture, UnknownLogFails) {
  A2m dev = authority.make_device(0);
  EXPECT_FALSE(dev.append(99, bytes_of("x")).has_value());
  EXPECT_FALSE(dev.lookup(99, 1, {}).has_value());
  EXPECT_FALSE(dev.end(99, {}).has_value());
  EXPECT_FALSE(dev.length(99).has_value());
}

TEST_F(A2mFixture, EmptyLogEndAttestsZero) {
  A2m dev = authority.make_device(0);
  const LogId log = dev.create_log();
  const auto e = dev.end(log, bytes_of("z"));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 0u);
  EXPECT_TRUE(e->value.empty());
  EXPECT_TRUE(authority.check(*e, 0));
}

TEST_F(A2mFixture, PastEntriesImmutable) {
  // There is no mutation API; appends never change earlier attestations.
  A2m dev = authority.make_device(0);
  const LogId log = dev.create_log();
  (void)dev.append(log, bytes_of("first"));
  const auto before = dev.lookup(log, 1, bytes_of("n"));
  for (int i = 0; i < 10; ++i) (void)dev.append(log, bytes_of("later"));
  const auto after = dev.lookup(log, 1, bytes_of("n"));
  ASSERT_TRUE(before && after);
  EXPECT_EQ(before->value, after->value);
  EXPECT_TRUE(authority.check(*after, 0));
}

TEST_F(A2mFixture, MultipleLogsIndependent) {
  A2m dev = authority.make_device(0);
  const LogId a = dev.create_log();
  const LogId b = dev.create_log();
  (void)dev.append(a, bytes_of("in-a"));
  EXPECT_EQ(dev.length(a), std::optional<SeqNum>{1});
  EXPECT_EQ(dev.length(b), std::optional<SeqNum>{0});
}

TEST_F(A2mFixture, NonceBoundIntoAttestation) {
  A2m dev = authority.make_device(0);
  const LogId log = dev.create_log();
  (void)dev.append(log, bytes_of("x"));
  auto a = *dev.lookup(log, 1, bytes_of("fresh"));
  a.nonce = bytes_of("replayed");  // replay under a different challenge
  EXPECT_FALSE(authority.check(a, 0));
}

TEST_F(A2mFixture, CrossDeviceCheckFails) {
  A2m d0 = authority.make_device(0);
  (void)authority.make_device(1);
  const LogId log = d0.create_log();
  (void)d0.append(log, bytes_of("x"));
  const auto a = *d0.lookup(log, 1, {});
  EXPECT_FALSE(authority.check(a, 1));
}

TEST_F(A2mFixture, AttestationWireRoundTrip) {
  A2m dev = authority.make_device(0);
  const LogId log = dev.create_log();
  (void)dev.append(log, bytes_of("x"));
  const auto a = *dev.lookup(log, 1, bytes_of("n"));
  const auto parsed = serde::decode<A2mAttestation>(serde::encode(a));
  EXPECT_EQ(parsed, a);
  EXPECT_TRUE(authority.check(parsed, 0));
}

// ---- A2M from TrInc (Levin et al. reduction) -----------------------------------

class A2mFromTrincFixture : public ::testing::Test {
 protected:
  crypto::KeyRegistry keys;
  TrincAuthority authority{keys};
};

TEST_F(A2mFromTrincFixture, BehavesLikeA2m) {
  A2mFromTrinc dev(authority.make_trinket(0));
  const LogId log = dev.create_log();
  EXPECT_EQ(dev.append(log, bytes_of("x")), std::optional<SeqNum>{1});
  EXPECT_EQ(dev.append(log, bytes_of("y")), std::optional<SeqNum>{2});

  const auto lk = dev.lookup(log, 1, bytes_of("n"));
  ASSERT_TRUE(lk.has_value());
  EXPECT_EQ(lk->value, bytes_of("x"));
  EXPECT_TRUE(A2mFromTrinc::check(authority, *lk, 0));

  const auto e = dev.end(log, bytes_of("n"));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 2u);
  EXPECT_EQ(e->value, bytes_of("y"));
  EXPECT_TRUE(A2mFromTrinc::check(authority, *e, 0));
}

TEST_F(A2mFromTrincFixture, ValueSubstitutionDetected) {
  // The untrusted storage is compromised: the host rewrites an entry. The
  // TrInc attestation no longer matches — append-only preserved.
  A2mFromTrinc dev(authority.make_trinket(0));
  const LogId log = dev.create_log();
  (void)dev.append(log, bytes_of("honest"));
  auto a = *dev.lookup(log, 1, {});
  a.value = bytes_of("rewritten");
  EXPECT_FALSE(A2mFromTrinc::check(authority, a, 0));
}

TEST_F(A2mFromTrincFixture, SeqRelabelDetected) {
  A2mFromTrinc dev(authority.make_trinket(0));
  const LogId log = dev.create_log();
  (void)dev.append(log, bytes_of("x"));
  (void)dev.append(log, bytes_of("y"));
  auto a = *dev.lookup(log, 1, {});
  a.seq = 2;  // claim the entry sits at a different index
  EXPECT_FALSE(A2mFromTrinc::check(authority, a, 0));
}

TEST_F(A2mFromTrincFixture, CrossLogRelabelDetected) {
  A2mFromTrinc dev(authority.make_trinket(0));
  const LogId la = dev.create_log();
  const LogId lb = dev.create_log();
  (void)dev.append(la, bytes_of("x"));
  (void)lb;
  auto a = *dev.lookup(la, 1, {});
  a.log = lb;
  EXPECT_FALSE(A2mFromTrinc::check(authority, a, 0));
}

TEST_F(A2mFromTrincFixture, MultipleLogsUseIndependentCounters) {
  A2mFromTrinc dev(authority.make_trinket(0));
  const LogId a = dev.create_log();
  const LogId b = dev.create_log();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(dev.append(a, bytes_of("a" + std::to_string(i))).has_value());
    ASSERT_TRUE(dev.append(b, bytes_of("b" + std::to_string(i))).has_value());
  }
  EXPECT_EQ(dev.length(a), std::optional<SeqNum>{3});
  EXPECT_EQ(dev.length(b), std::optional<SeqNum>{3});
  EXPECT_TRUE(A2mFromTrinc::check(authority, *dev.lookup(b, 2, {}), 0));
}

TEST_F(A2mFromTrincFixture, EmptyLogEnd) {
  A2mFromTrinc dev(authority.make_trinket(0));
  const LogId log = dev.create_log();
  const auto e = dev.end(log, {});
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 0u);
  EXPECT_TRUE(A2mFromTrinc::check(authority, *e, 0));
}

// ---- SGX enclave ----------------------------------------------------------------

TEST(SgxEnclave, ProgramRunsOverSealedState) {
  crypto::KeyRegistry keys;
  // A toy accumulator: state is a running total of input lengths.
  SgxEnclave enclave(
      keys,
      [](Bytes& state, const Bytes& input) {
        auto total = serde::decode<std::uint64_t>(state) + input.size();
        state = serde::encode(total);
        return serde::encode(total);
      },
      serde::encode(std::uint64_t{0}));
  EXPECT_EQ(serde::decode<std::uint64_t>(enclave.call(bytes_of("abc")).output),
            3u);
  EXPECT_EQ(serde::decode<std::uint64_t>(enclave.call(bytes_of("de")).output),
            5u);
}

TEST(SgxEnclave, OutputsAreAttested) {
  crypto::KeyRegistry keys;
  SgxEnclave enclave(
      keys, [](Bytes&, const Bytes& in) { return in; }, {});
  const SealedOutput out = enclave.call(bytes_of("echo"));
  EXPECT_TRUE(SgxEnclave::verify(keys, enclave.attestation_key(), out));

  SealedOutput forged = out;
  forged.output = bytes_of("not echo");
  EXPECT_FALSE(SgxEnclave::verify(keys, enclave.attestation_key(), forged));
}

TEST(SgxEnclave, DistinctEnclavesDistinctKeys) {
  crypto::KeyRegistry keys;
  auto echo = [](Bytes&, const Bytes& in) { return in; };
  SgxEnclave a(keys, echo, {});
  SgxEnclave b(keys, echo, {});
  EXPECT_NE(a.attestation_key(), b.attestation_key());
  const SealedOutput out = a.call(bytes_of("m"));
  EXPECT_FALSE(SgxEnclave::verify(keys, b.attestation_key(), out));
}

// ---- USIG -----------------------------------------------------------------------

TEST(Usig, CreateAndVerify) {
  crypto::KeyRegistry keys;
  UsigEnclave usig(keys);
  const Bytes msg = bytes_of("PREPARE v=0 s=1");
  const UniqueIdentifier ui = usig.create_ui(msg);
  EXPECT_EQ(ui.counter, 1u);
  EXPECT_TRUE(UsigEnclave::verify_ui(keys, usig.key(), ui, msg));
}

TEST(Usig, CountersAreSequential) {
  crypto::KeyRegistry keys;
  UsigEnclave usig(keys);
  for (SeqNum expected = 1; expected <= 20; ++expected)
    EXPECT_EQ(usig.create_ui(bytes_of("m")).counter, expected);
  EXPECT_EQ(usig.last_counter(), 20u);
}

TEST(Usig, VerifyBindsMessage) {
  crypto::KeyRegistry keys;
  UsigEnclave usig(keys);
  const UniqueIdentifier ui = usig.create_ui(bytes_of("real"));
  EXPECT_FALSE(UsigEnclave::verify_ui(keys, usig.key(), ui, bytes_of("fake")));
}

TEST(Usig, CounterRelabelDetected) {
  crypto::KeyRegistry keys;
  UsigEnclave usig(keys);
  const Bytes msg = bytes_of("m");
  UniqueIdentifier ui = usig.create_ui(msg);
  ui.counter = 7;  // claim a different counter value
  EXPECT_FALSE(UsigEnclave::verify_ui(keys, usig.key(), ui, msg));
}

TEST(Usig, CrossReplicaVerifyFails) {
  crypto::KeyRegistry keys;
  UsigEnclave u0(keys);
  UsigEnclave u1(keys);
  const Bytes msg = bytes_of("m");
  const UniqueIdentifier ui = u0.create_ui(msg);
  EXPECT_FALSE(UsigEnclave::verify_ui(keys, u1.key(), ui, msg));
}

TEST(Usig, NonEquivocationTwoMessagesNeverShareACounter) {
  crypto::KeyRegistry keys;
  UsigEnclave usig(keys);
  std::set<SeqNum> counters;
  for (int i = 0; i < 50; ++i) {
    const auto ui = usig.create_ui(bytes_of("m" + std::to_string(i)));
    EXPECT_TRUE(counters.insert(ui.counter).second)
        << "counter " << ui.counter << " reused";
  }
}

TEST(Usig, WireRoundTrip) {
  crypto::KeyRegistry keys;
  UsigEnclave usig(keys);
  const Bytes msg = bytes_of("m");
  const UniqueIdentifier ui = usig.create_ui(msg);
  const auto parsed = serde::decode<UniqueIdentifier>(serde::encode(ui));
  EXPECT_EQ(parsed, ui);
  EXPECT_TRUE(UsigEnclave::verify_ui(keys, usig.key(), parsed, msg));
}

}  // namespace
}  // namespace unidir::trusted
