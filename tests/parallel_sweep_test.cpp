// ParallelRunner determinism: fanning scenarios across threads must change
// wall-clock time only. Per-scenario RunOutcome fingerprints (a hash over
// every transcript plus completion and final time) from a parallel run are
// compared byte-for-byte against a serial run of the same specs, and
// against run_scenario called directly — three paths, one answer.
#include <gtest/gtest.h>

#include "explore/parallel.h"

namespace unidir::explore {
namespace {

std::vector<ScenarioSpec> mixed_grid(std::uint64_t seeds) {
  std::vector<ScenarioSpec> specs;
  for (ProtocolKind p : {ProtocolKind::MinBft, ProtocolKind::Pbft})
    for (AdversaryKind a : {AdversaryKind::RandomDelay,
                            AdversaryKind::Duplicating, AdversaryKind::Gst})
      for (std::uint64_t s = 1; s <= seeds; ++s)
        specs.push_back(ScenarioSpec::materialize(p, a, s));
  return specs;
}

TEST(ParallelSweep, FingerprintsMatchSerialRun) {
  const std::vector<ScenarioSpec> specs = mixed_grid(3);  // 18 scenarios
  const InvariantRegistry reg = InvariantRegistry::standard_smr();

  const ParallelRunner serial(1);
  const std::vector<RunOutcome> s = serial.run_scenarios(specs, reg);

  const ParallelRunner parallel(4);
  const std::vector<RunOutcome> p = parallel.run_scenarios(specs, reg);

  ASSERT_EQ(s.size(), specs.size());
  ASSERT_EQ(p.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(s[i].fingerprint, p[i].fingerprint)
        << "scenario " << i << ": " << specs[i].describe();
    EXPECT_EQ(s[i].events, p[i].events);
    EXPECT_EQ(s[i].completed, p[i].completed);
    EXPECT_EQ(s[i].final_time, p[i].final_time);
    EXPECT_EQ(s[i].violation.has_value(), p[i].violation.has_value());
  }
}

TEST(ParallelSweep, MatchesDirectRunScenario) {
  const std::vector<ScenarioSpec> specs = mixed_grid(1);  // 6 scenarios
  const InvariantRegistry reg = InvariantRegistry::standard_smr();

  const ParallelRunner parallel(3);
  const std::vector<RunOutcome> p = parallel.run_scenarios(specs, reg);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunOutcome direct = run_scenario(specs[i], reg);
    EXPECT_EQ(direct.fingerprint, p[i].fingerprint)
        << "scenario " << i << ": " << specs[i].describe();
  }
}

TEST(ParallelSweep, StatsCoverTheBatch) {
  const std::vector<ScenarioSpec> specs = mixed_grid(1);
  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  const ParallelRunner runner(2);
  const std::vector<RunOutcome> out = runner.run_scenarios(specs, reg);

  std::uint64_t events = 0;
  for (const RunOutcome& o : out) events += o.events;
  const ParallelStats& st = runner.last_stats();
  EXPECT_EQ(st.scenarios, specs.size());
  EXPECT_EQ(st.total_events, events);
  EXPECT_GE(st.threads, 1u);
  EXPECT_LE(st.threads, 2u);
  EXPECT_GT(st.wall_ns, 0u);
}

TEST(ParallelSweep, EmptyBatchAndMoreThreadsThanWork) {
  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  const ParallelRunner runner(8);
  EXPECT_TRUE(runner.run_scenarios({}, reg).empty());

  const std::vector<ScenarioSpec> one = {
      ScenarioSpec::materialize(ProtocolKind::MinBft,
                                AdversaryKind::RandomDelay, 1)};
  const std::vector<RunOutcome> out = runner.run_scenarios(one, reg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].fingerprint, run_scenario(one[0], reg).fingerprint);
}

}  // namespace
}  // namespace unidir::explore
