#include <gtest/gtest.h>

#include "sim/adversaries.h"
#include "sim/world.h"

namespace unidir::sim {
namespace {

constexpr Channel kPing = 1;
constexpr Channel kPong = 2;

/// Replies kPong to every kPing; counts what it sees.
class Echo final : public Process {
 public:
  int pings = 0;
  int pongs = 0;

  void ping(ProcessId to) { send(to, kPing, bytes_of("ping")); }

 protected:
  void on_message(ProcessId from, Channel channel, const Bytes&) override {
    if (channel == kPing) {
      ++pings;
      send(from, kPong, bytes_of("pong"));
    } else if (channel == kPong) {
      ++pongs;
    }
  }
};

TEST(Network, PingPongWithImmediateDelivery) {
  World w(1, std::make_unique<ImmediateAdversary>());
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  w.run_to_quiescence();
  a.ping(b.id());
  w.run_to_quiescence();
  EXPECT_EQ(b.pings, 1);
  EXPECT_EQ(a.pongs, 1);
}

TEST(Network, BroadcastReachesAllButSelf) {
  World w(1, std::make_unique<ImmediateAdversary>());
  std::vector<Echo*> ps;
  for (int i = 0; i < 5; ++i) ps.push_back(&w.spawn<Echo>());
  w.start();
  ps[0]->broadcast(kPing, bytes_of("ping"));
  w.run_to_quiescence();
  EXPECT_EQ(ps[0]->pings, 0);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(ps[static_cast<std::size_t>(i)]->pings, 1);
  EXPECT_EQ(ps[0]->pongs, 4);
}

TEST(Network, CrashedProcessSendsAndReceivesNothing) {
  World w(1, std::make_unique<ImmediateAdversary>());
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  w.crash(b.id());
  a.ping(b.id());
  w.run_to_quiescence();
  EXPECT_EQ(b.pings, 0);
  EXPECT_EQ(a.pongs, 0);
  EXPECT_EQ(w.network().stats().messages_dropped, 1u);
}

TEST(Network, CrashMidFlightDropsAtDelivery) {
  World w(1, std::make_unique<ImmediateAdversary>(/*delay=*/10));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  a.ping(b.id());  // will arrive at t=10
  w.simulator().run_to_time(5);
  w.crash(b.id());
  w.run_to_quiescence();
  EXPECT_EQ(b.pings, 0);
}

TEST(Network, RandomDelayStaysInBounds) {
  World w(99, std::make_unique<RandomDelayAdversary>(2, 9));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  for (int i = 0; i < 50; ++i) a.ping(b.id());
  // All pings sent at t=0 must arrive within [2, 9].
  w.simulator().run_to_time(9);
  EXPECT_EQ(b.pings, 50);
}

TEST(Network, PartitionHoldsAndFlushDelivers) {
  auto adversary = std::make_unique<PartitionAdversary>();
  PartitionAdversary* part = adversary.get();
  World w(7, std::move(adversary));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();

  part->block_bidirectional({a.id()}, {b.id()});
  a.ping(b.id());
  w.run_to_quiescence();
  EXPECT_EQ(b.pings, 0);
  EXPECT_EQ(w.network().stats().messages_held, 1u);

  part->clear();
  w.network().flush_held();
  w.run_to_quiescence();
  EXPECT_EQ(b.pings, 1);
  EXPECT_EQ(a.pongs, 1);
  EXPECT_EQ(w.network().stats().messages_held, 0u);
}

TEST(Network, PartitionIsDirectional) {
  auto adversary = std::make_unique<PartitionAdversary>();
  PartitionAdversary* part = adversary.get();
  World w(7, std::move(adversary));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();

  part->block({a.id()}, {b.id()});  // only a→b blocked
  a.ping(b.id());
  b.ping(a.id());
  w.run_to_quiescence();
  EXPECT_EQ(b.pings, 0);  // a→b held
  EXPECT_EQ(a.pings, 1);  // b→a delivered
}

TEST(Network, DropHeldDiscards) {
  auto adversary = std::make_unique<PartitionAdversary>();
  PartitionAdversary* part = adversary.get();
  World w(7, std::move(adversary));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  part->block({a.id()}, {b.id()});
  a.ping(b.id());
  w.run_to_quiescence();
  w.network().drop_held();
  part->clear();
  w.network().flush_held();
  w.run_to_quiescence();
  EXPECT_EQ(b.pings, 0);
}

TEST(Network, DropHeldCountsHeldSeparately) {
  // Regression: drop_held() used to fold abandoned held messages into the
  // generic messages_dropped with no way to tell them from crash drops.
  auto adversary = std::make_unique<PartitionAdversary>();
  PartitionAdversary* part = adversary.get();
  World w(7, std::move(adversary));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  part->block({a.id()}, {b.id()});
  for (int i = 0; i < 3; ++i) a.ping(b.id());
  w.run_to_quiescence();
  EXPECT_EQ(w.network().stats().messages_held, 3u);
  EXPECT_EQ(w.network().stats().bytes_held, 12u);  // 3 x "ping"

  w.network().drop_held();
  const NetworkStats& s = w.network().stats();
  EXPECT_EQ(s.dropped_held, 3u);
  EXPECT_EQ(s.messages_dropped, 3u);  // total still includes them
  EXPECT_EQ(s.messages_held, 0u);
  EXPECT_EQ(s.bytes_held, 0u);
  EXPECT_EQ(s.bytes_dropped, 12u);
  // Ledger: everything sent is now accounted as dropped.
  EXPECT_EQ(s.messages_sent, s.messages_delivered + s.messages_dropped);
}

TEST(Network, BytesDeliveredTracked) {
  // Regression: the network counted bytes_sent but never bytes_delivered,
  // so byte-level conservation was unverifiable.
  World w(1, std::make_unique<ImmediateAdversary>());
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  a.ping(b.id());
  w.run_to_quiescence();
  const NetworkStats& s = w.network().stats();
  EXPECT_EQ(s.bytes_sent, 8u);  // "ping" + "pong"
  EXPECT_EQ(s.bytes_delivered, 8u);
  EXPECT_EQ(s.bytes_dropped, 0u);
}

TEST(Network, BytesDroppedAttributedOnCrash) {
  World w(1, std::make_unique<ImmediateAdversary>(/*delay=*/10));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  a.ping(b.id());       // in flight, arrives t=10
  w.simulator().run_to_time(5);
  w.crash(b.id());      // dropped at delivery
  a.ping(b.id());       // dropped at send (receiver already down)
  w.run_to_quiescence();
  const NetworkStats& s = w.network().stats();
  EXPECT_EQ(s.messages_dropped, 2u);
  EXPECT_EQ(s.dropped_held, 0u);
  EXPECT_EQ(s.bytes_dropped, 8u);
  EXPECT_EQ(s.bytes_delivered, 0u);
  EXPECT_EQ(s.bytes_sent, s.bytes_delivered + s.bytes_dropped);
}

TEST(Network, GstDeliversEverythingByGstPlusDelta) {
  constexpr Time kGst = 100;
  constexpr Time kDelta = 5;
  World w(3, std::make_unique<GstAdversary>(kGst, kDelta, /*pre extra=*/200));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  for (int i = 0; i < 100; ++i) a.ping(b.id());  // all sent at t=0
  w.simulator().run_to_time(kGst + kDelta);
  EXPECT_EQ(b.pings, 100);
}

TEST(Network, GstBoundsDelaysAfterGst) {
  constexpr Time kGst = 100;
  constexpr Time kDelta = 5;
  World w(3, std::make_unique<GstAdversary>(kGst, kDelta, 200));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  w.simulator().run_to_time(kGst);
  for (int i = 0; i < 100; ++i) a.ping(b.id());  // sent exactly at GST
  w.simulator().run_to_time(kGst + kDelta);
  EXPECT_EQ(b.pings, 100);
}

TEST(Network, ScriptedAdversaryControlsEachMessage) {
  // Deliver even-numbered messages instantly, hold odd ones.
  auto script = [](const Envelope& env, Rng&) -> std::optional<Time> {
    if (env.id % 2 == 0) return Time{1};
    return std::nullopt;
  };
  World w(5, std::make_unique<ScriptedAdversary>(script));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  for (int i = 0; i < 10; ++i) a.ping(b.id());
  w.run_to_quiescence();
  // Envelope ids 1..10; 5 even ids delivered; their 5 pongs have ids 11..15
  // of which those with even ids deliver.
  EXPECT_EQ(b.pings, 5);
}

/// Misbehaving adversary: claims zero copies of every message. The network
/// contract says links are reliable-but-duplicating, so 0 must be clamped
/// to 1 — loss is only expressible by holding.
class ZeroCopiesAdversary final : public Adversary {
 public:
  std::optional<Time> on_send(const Envelope&, Rng&) override {
    return Time{1};
  }
  unsigned copies(const Envelope&, Rng&) override { return 0; }
};

TEST(Network, ZeroCopiesFromAdversaryStillDeliversOnce) {
  World w(1, std::make_unique<ZeroCopiesAdversary>());
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  a.ping(b.id());
  w.run_to_quiescence();
  EXPECT_EQ(b.pings, 1);   // clamped to exactly one copy — not lost...
  EXPECT_EQ(a.pongs, 1);
  EXPECT_EQ(w.network().stats().messages_duplicated, 0u);  // ...not duped
  EXPECT_EQ(w.network().stats().messages_delivered, 2u);
}

TEST(Network, ObserverSeesEveryDecisionPoint) {
  auto adversary = std::make_unique<PartitionAdversary>();
  PartitionAdversary* part = adversary.get();
  World w(7, std::move(adversary));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();

  std::vector<DecisionPoint> points;
  std::size_t holds = 0;
  w.network().set_observer(
      [&](const Envelope&, DecisionPoint p, const std::optional<Time>& delay) {
        points.push_back(p);
        if (!delay) ++holds;
      });
  w.start();

  part->block({a.id()}, {b.id()});
  a.ping(b.id());
  w.run_to_quiescence();
  ASSERT_EQ(points.size(), 1u);  // one Send decision, held
  EXPECT_EQ(points[0], DecisionPoint::Send);
  EXPECT_EQ(holds, 1u);

  part->clear();
  w.network().flush_held();
  w.run_to_quiescence();
  // Release of the held ping, then the Send decision for b's pong.
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[1], DecisionPoint::Release);
  EXPECT_EQ(points[2], DecisionPoint::Send);
  EXPECT_EQ(holds, 1u);
}

TEST(Network, ObserverSeesDuplicateDecisions) {
  World w(11, std::make_unique<DuplicatingAdversary>(/*max_copies=*/3,
                                                     /*max_delay=*/2));
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  std::size_t dups = 0;
  std::size_t sends = 0;
  w.network().set_observer(
      [&](const Envelope&, DecisionPoint p, const std::optional<Time>&) {
        if (p == DecisionPoint::Duplicate) ++dups;
        if (p == DecisionPoint::Send) ++sends;
      });
  w.start();
  a.ping(b.id());
  w.run_to_quiescence();
  EXPECT_EQ(dups, w.network().stats().messages_duplicated);
  EXPECT_EQ(sends, w.network().stats().messages_sent);
}

TEST(Network, StatsCountSendsAndBytes) {
  World w(1, std::make_unique<ImmediateAdversary>());
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  w.start();
  a.ping(b.id());
  w.run_to_quiescence();
  const NetworkStats& s = w.network().stats();
  EXPECT_EQ(s.messages_sent, 2u);  // ping + pong
  EXPECT_EQ(s.messages_delivered, 2u);
  EXPECT_EQ(s.bytes_sent, 8u);  // "ping" + "pong"
}

TEST(Network, DeterministicAcrossRunsWithSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    World w(seed, std::make_unique<RandomDelayAdversary>(1, 50));
    auto& a = w.spawn<Echo>();
    auto& b = w.spawn<Echo>();
    w.start();
    for (int i = 0; i < 20; ++i) a.ping(b.id());
    w.run_to_quiescence();
    return w.simulator().now();
  };
  EXPECT_EQ(run_once(1234), run_once(1234));
  EXPECT_NE(run_once(1234), run_once(5678));
}

TEST(World, SpawnAssignsSequentialIdsAndKeys) {
  World w(1, std::make_unique<ImmediateAdversary>());
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  EXPECT_EQ(a.id(), 0u);
  EXPECT_EQ(b.id(), 1u);
  EXPECT_NE(w.key_of(0), w.key_of(1));
  EXPECT_EQ(w.owner_of(w.key_of(1)), 1u);
  EXPECT_EQ(w.owner_of(424242), kNoProcess);
}

TEST(World, CorrectnessBookkeeping) {
  World w(1, std::make_unique<ImmediateAdversary>());
  (void)w.spawn<Echo>();
  (void)w.spawn<Echo>();
  (void)w.spawn<Echo>();
  w.mark_byzantine(0);
  w.crash(1);
  EXPECT_FALSE(w.correct(0));
  EXPECT_FALSE(w.correct(1));
  EXPECT_TRUE(w.correct(2));
  EXPECT_EQ(w.correct_ids(), std::vector<ProcessId>{2});
  EXPECT_EQ(w.fault_count(), 2u);
}

TEST(World, TimersSuppressedAfterCrash) {
  World w(1, std::make_unique<ImmediateAdversary>());
  auto& a = w.spawn<Echo>();
  w.start();
  int fired = 0;
  a.set_timer(10, [&] { ++fired; });
  w.crash(a.id());
  w.run_to_quiescence();
  EXPECT_EQ(fired, 0);
}

TEST(World, ChannelHandlersTakePriority) {
  World w(1, std::make_unique<ImmediateAdversary>());
  auto& a = w.spawn<Echo>();
  auto& b = w.spawn<Echo>();
  int handled = 0;
  b.register_channel(kPing, [&](ProcessId, const Bytes&) { ++handled; });
  w.start();
  a.ping(b.id());
  w.run_to_quiescence();
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(b.pings, 0);  // virtual on_message bypassed
}

TEST(World, DuplicateChannelHandlerRejected) {
  World w(1, std::make_unique<ImmediateAdversary>());
  auto& a = w.spawn<Echo>();
  a.register_channel(kPing, [](ProcessId, const Bytes&) {});
  EXPECT_THROW(a.register_channel(kPing, [](ProcessId, const Bytes&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace unidir::sim
