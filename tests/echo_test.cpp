#include <gtest/gtest.h>

#include "broadcast/echo.h"
#include "sim/adversaries.h"
#include "test_util.h"

namespace unidir::broadcast {
namespace {

using testutil::Node;

constexpr sim::Channel kCh = 25;

struct Fixture {
  sim::World world;
  std::vector<Node*> nodes;
  std::vector<std::unique_ptr<EchoBroadcastEndpoint>> endpoints;

  Fixture(std::size_t n, std::size_t f, std::uint64_t seed,
          Time max_delay = 15)
      : world(seed, std::make_unique<sim::RandomDelayAdversary>(1, max_delay)) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(&world.spawn<Node>());
      endpoints.push_back(
          std::make_unique<EchoBroadcastEndpoint>(*nodes.back(), kCh, n, f));
    }
  }
};

TEST(EchoBroadcast, RequiresNGreaterThan3F) {
  sim::World w(1, std::make_unique<sim::ImmediateAdversary>());
  auto& node = w.spawn<Node>();
  EXPECT_THROW(EchoBroadcastEndpoint(node, kCh, 3, 1), std::invalid_argument);
}

struct Case {
  std::size_t n;
  std::size_t f;
  std::uint64_t seed;
  int messages;
};

class EchoP : public ::testing::TestWithParam<Case> {};

TEST_P(EchoP, CorrectSenderSatisfiesAllSrbProperties) {
  const auto& c = GetParam();
  Fixture fx(c.n, c.f, c.seed);
  fx.world.start();
  std::vector<std::vector<Bytes>> bcasts(c.n);
  for (int k = 0; k < c.messages; ++k) {
    const Bytes m = bytes_of("m" + std::to_string(k));
    fx.endpoints[0]->broadcast(m);
    bcasts[0].push_back(m);
  }
  fx.world.run_to_quiescence();
  std::vector<SrbView> views;
  for (std::size_t i = 0; i < c.n; ++i)
    views.push_back({fx.nodes[i]->id(), fx.endpoints[i].get(), bcasts[i]});
  const auto violation = check_srb(views);
  EXPECT_FALSE(violation.has_value())
      << to_string(violation->kind) << ": " << violation->detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EchoP,
                         ::testing::Values(Case{4, 1, 1, 5}, Case{4, 1, 2, 5},
                                           Case{7, 2, 3, 4},
                                           Case{10, 3, 4, 3},
                                           Case{13, 4, 5, 2}));

TEST(EchoBroadcast, LinearMessageComplexity) {
  Fixture fx(10, 3, 7, /*max_delay=*/3);
  fx.world.start();
  fx.endpoints[0]->broadcast(bytes_of("count me"));
  fx.world.run_to_quiescence();
  // SEND (n-1) + ECHO (<= n-1) + FINAL (n-1): O(n), versus Bracha's
  // (2n+1)(n-1).
  const auto sent = fx.world.network().stats().messages_sent;
  EXPECT_LE(sent, 3u * (10 - 1));
  EXPECT_LT(sent, (2 * 10 + 1) * (10 - 1) / 3);  // way below Bracha
}

TEST(EchoBroadcast, ToleratesFSilentReplicas) {
  Fixture fx(7, 2, 9);
  fx.world.crash(5);
  fx.world.crash(6);
  fx.world.start();
  fx.endpoints[0]->broadcast(bytes_of("still works"));
  fx.world.run_to_quiescence();
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(fx.endpoints[i]->delivered_up_to(0), 1u) << i;
}

TEST(EchoBroadcast, ConsistencyUnderEquivocatingSender) {
  // A Byzantine sender SENDs different values to different halves. Each
  // correct replica echoes only one value, so at most one value can gather
  // the ⌈(n+f+1)/2⌉ echo quorum — no two correct deliver differently.
  class Equivocator final : public sim::Process {
   public:
    void on_start() override {
      for (ProcessId p = 1; p < world().size(); ++p) {
        serde::Writer w;
        w.u8(1);  // SEND
        w.uvarint(1);
        w.bytes(bytes_of(p % 2 == 0 ? "left" : "right"));
        send(p, kCh, w.take());
      }
    }
    // It never assembles/relays a FINAL (it can't get a quorum for either
    // value), so nothing delivers — consistency trivially preserved; the
    // test double-checks no delivery slips through.
  };

  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, 10));
    auto& byz = w.spawn<Equivocator>();
    w.mark_byzantine(byz.id());
    std::vector<std::unique_ptr<EchoBroadcastEndpoint>> eps;
    for (int i = 0; i < 6; ++i)
      eps.push_back(std::make_unique<EchoBroadcastEndpoint>(
          w.spawn<Node>(), kCh, 7, 2));
    w.start();
    w.run_to_quiescence();
    std::set<Bytes> delivered;
    for (auto& ep : eps)
      for (const Delivery& d : ep->delivered())
        if (d.sender == byz.id()) delivered.insert(d.message);
    EXPECT_LE(delivered.size(), 1u) << "seed " << seed;
  }
}

TEST(EchoBroadcast, NoTotalityUnlikeBracha) {
  // The documented weakness: the adversary delivers the sender's FINAL to
  // only one process ("sender crashes mid-FINAL"). That process delivers;
  // the others never do — totality broken, consistency intact. Bracha's
  // READY amplification would have finished the job; this is the price of
  // O(n) messages.
  auto script = [](const sim::Envelope& env,
                   sim::Rng&) -> std::optional<Time> {
    const bool is_final = !env.payload.empty() && env.payload[0] == 3;
    if (is_final && env.from == 0 && env.to >= 2) return std::nullopt;
    return Time{1};
  };
  sim::World w(3, std::make_unique<sim::ScriptedAdversary>(script));
  std::vector<std::unique_ptr<EchoBroadcastEndpoint>> eps;
  for (int i = 0; i < 4; ++i)
    eps.push_back(
        std::make_unique<EchoBroadcastEndpoint>(w.spawn<Node>(), kCh, 4, 1));
  w.start();
  eps[0]->broadcast(bytes_of("m"));
  w.run_to_quiescence();

  EXPECT_EQ(eps[0]->delivered_up_to(0), 1u);  // sender delivers locally
  EXPECT_EQ(eps[1]->delivered_up_to(0), 1u);  // got the FINAL
  EXPECT_EQ(eps[2]->delivered_up_to(0), 0u);  // never will — no totality
  EXPECT_EQ(eps[3]->delivered_up_to(0), 0u);
  // Consistency must still hold.
  std::set<Bytes> values;
  for (auto& ep : eps)
    for (const Delivery& d : ep->delivered()) values.insert(d.message);
  EXPECT_EQ(values.size(), 1u);
}

}  // namespace
}  // namespace unidir::broadcast
