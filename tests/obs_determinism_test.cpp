// Golden determinism of the observability artifacts: the same scenario
// run twice — serially or through ParallelRunner — must yield byte-identical
// trace JSON and equal metrics snapshots, and turning tracing on must not
// perturb the execution itself (fingerprints are the witness).
#include <gtest/gtest.h>

#include "explore/parallel.h"
#include "explore/scenario.h"

namespace unidir::explore {
namespace {

ScenarioSpec traced_spec(ProtocolKind p, AdversaryKind a, std::uint64_t seed) {
  ScenarioSpec s = ScenarioSpec::materialize(p, a, seed);
  s.trace = true;
  return s;
}

TEST(ObsDeterminism, SameSeedTwiceYieldsIdenticalArtifacts) {
  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  const ScenarioSpec spec =
      traced_spec(ProtocolKind::MinBft, AdversaryKind::RandomDelay, 7);

  const RunOutcome a = run_scenario(spec, reg);
  const RunOutcome b = run_scenario(spec, reg);

  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace_json, b.trace_json) << "trace JSON must be byte-stable";
#if !defined(UNIDIR_OBS_NO_TRACING)
  EXPECT_NE(a.trace_json.find("\"cat\":\"net\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"cat\":\"smr\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"cat\":\"client\""), std::string::npos);
#endif
}

TEST(ObsDeterminism, ParallelRunMatchesSerialArtifacts) {
  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  std::vector<ScenarioSpec> specs;
  for (ProtocolKind p : {ProtocolKind::MinBft, ProtocolKind::Pbft})
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
      specs.push_back(traced_spec(p, AdversaryKind::Duplicating, seed));

  const ParallelRunner serial(1);
  const std::vector<RunOutcome> s = serial.run_scenarios(specs, reg);
  const ParallelRunner parallel(4);
  const std::vector<RunOutcome> p = parallel.run_scenarios(specs, reg);

  ASSERT_EQ(s.size(), specs.size());
  ASSERT_EQ(p.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(s[i].fingerprint, p[i].fingerprint) << specs[i].describe();
    EXPECT_EQ(s[i].metrics, p[i].metrics) << specs[i].describe();
    EXPECT_EQ(s[i].trace_json, p[i].trace_json) << specs[i].describe();
  }
}

TEST(ObsDeterminism, TracingIsObservationOnly) {
  // The trace flag must never leak into scheduling, Rng draws, or any
  // published metric — flipping it changes the artifacts, nothing else.
  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  ScenarioSpec off = ScenarioSpec::materialize(ProtocolKind::Pbft,
                                               AdversaryKind::Gst, 11);
  ScenarioSpec on = off;
  on.trace = true;

  const RunOutcome plain = run_scenario(off, reg);
  const RunOutcome traced = run_scenario(on, reg);
  EXPECT_EQ(plain.fingerprint, traced.fingerprint);
  EXPECT_EQ(plain.metrics, traced.metrics);
  EXPECT_EQ(plain.events, traced.events);
  EXPECT_TRUE(plain.trace_json.empty());  // untraced runs carry no JSON
  EXPECT_FALSE(traced.trace_json.empty());
}

TEST(ObsDeterminism, MetricsMatchOutcomeCounters) {
  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  const ScenarioSpec spec =
      traced_spec(ProtocolKind::MinBft, AdversaryKind::RandomDelay, 3);
  const RunOutcome out = run_scenario(spec, reg);

  // The registry is fed by the same stats structs RunOutcome carries; the
  // two views must agree exactly.
  EXPECT_EQ(out.metrics.counter_or("sim.executed", 0), out.sim.executed);
  EXPECT_EQ(out.metrics.counter_or("net.messages_sent", 0),
            out.net.messages_sent);
  EXPECT_EQ(out.metrics.counter_or("net.bytes_delivered", 0),
            out.net.bytes_delivered);
  EXPECT_EQ(out.metrics.counter_or("net.dropped_held", 0),
            out.net.dropped_held);
  EXPECT_EQ(out.metrics.counter_or("sig.verifies", 0), out.sig.verifies);

  const obs::HistogramData* lat =
      out.metrics.find_histogram("client.latency_ticks");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, out.completed);
  EXPECT_GT(lat->quantile(0.5), 0u);

  // Wall-clock never reaches the published metrics: determinism would die.
  EXPECT_EQ(out.metrics.counters.count("sim.run_wall_ns"), 0u);
}

TEST(ObsDeterminism, SpecRoundTripsTraceFlag) {
  ScenarioSpec spec =
      traced_spec(ProtocolKind::MinBft, AdversaryKind::Gst, 5);
  const ScenarioSpec decoded = ScenarioSpec::from_hex(spec.to_hex());
  EXPECT_TRUE(decoded.trace);
  EXPECT_EQ(decoded.to_hex(), spec.to_hex());
  EXPECT_NE(spec.describe().find("trace"), std::string::npos);
}

}  // namespace
}  // namespace unidir::explore
