// Batch-atomicity checker (ctest label: batch): synthetic-transcript
// negative tests prove the invariant catches split batches, reordered and
// double executions, and cross-replica membership disagreement; byzantine
// fake-primary runs prove the end-to-end retry-dedup fix — a request
// re-batched after its original batch committed is answered from the reply
// cache, never re-executed.
#include <gtest/gtest.h>

#include "agreement/minbft.h"
#include "agreement/pbft.h"
#include "agreement/state_machines.h"
#include "explore/invariants.h"
#include "sim/adversaries.h"

namespace unidir::explore {
namespace {

using agreement::Command;
using agreement::KvStateMachine;

Command cmd_of(ProcessId client, std::uint64_t rid, const char* key = "k") {
  Command c;
  c.client = client;
  c.request_id = rid;
  c.op = KvStateMachine::put_op(key, "v" + std::to_string(rid));
  return c;
}

/// The "smr-batch" witness payload, exactly as the replicas emit it.
Bytes batch_marker(std::uint64_t view, std::uint64_t counter,
                   const std::vector<Command>& cmds) {
  serde::Writer w;
  w.uvarint(view);
  w.uvarint(counter);
  w.uvarint(cmds.size());
  for (const Command& c : cmds) {
    w.uvarint(c.client);
    w.uvarint(c.request_id);
  }
  return w.take();
}

/// The "smr-install" state-transfer witness payload.
Bytes install_marker(const std::vector<Command>& cmds) {
  serde::Writer w;
  w.uvarint(cmds.size());
  for (const Command& c : cmds) {
    w.uvarint(c.client);
    w.uvarint(c.request_id);
  }
  return w.take();
}

std::optional<std::string> check_transcripts(
    const std::vector<const sim::Transcript*>& transcripts) {
  ExplorationContext ctx;
  for (std::size_t i = 0; i < transcripts.size(); ++i)
    ctx.transcripts.emplace_back(static_cast<ProcessId>(i), transcripts[i]);
  return batch_atomicity().check(ctx);
}

TEST(BatchAtomicity, AcceptsFullyExecutedBatchesInOrder) {
  const Command a = cmd_of(9, 1), b = cmd_of(9, 2), c = cmd_of(8, 1);
  sim::Transcript t;
  t.record_output("smr-batch", batch_marker(0, 1, {a, b}));
  t.record_output("smr-exec", serde::encode(a));
  t.record_output("smr-exec", serde::encode(b));
  t.record_output("smr-batch", batch_marker(0, 2, {c}));
  t.record_output("smr-exec", serde::encode(c));
  EXPECT_EQ(check_transcripts({&t}), std::nullopt);
}

TEST(BatchAtomicity, VacuousForUnbatchedTranscripts) {
  // Unbatched runs emit no "smr-batch" markers; only exactly-once applies.
  sim::Transcript t;
  t.record_output("smr-exec", serde::encode(cmd_of(9, 1)));
  t.record_output("smr-exec", serde::encode(cmd_of(9, 2)));
  EXPECT_EQ(check_transcripts({&t}), std::nullopt);
}

TEST(BatchAtomicity, FlagsSplitBatch) {
  // A committed batch whose second member never executes — the planted
  // split batch the checker exists to catch.
  const Command a = cmd_of(9, 1), b = cmd_of(9, 2);
  sim::Transcript t;
  t.record_output("smr-batch", batch_marker(0, 1, {a, b}));
  t.record_output("smr-exec", serde::encode(a));
  const auto v = check_transcripts({&t});
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("split batch"), std::string::npos) << *v;
}

TEST(BatchAtomicity, FlagsSplitBatchClosedByNextMarker) {
  const Command a = cmd_of(9, 1), b = cmd_of(9, 2), c = cmd_of(8, 1);
  sim::Transcript t;
  t.record_output("smr-batch", batch_marker(0, 1, {a, b}));
  t.record_output("smr-exec", serde::encode(a));
  t.record_output("smr-batch", batch_marker(0, 2, {c}));
  t.record_output("smr-exec", serde::encode(c));
  const auto v = check_transcripts({&t});
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("split batch"), std::string::npos) << *v;
}

TEST(BatchAtomicity, FlagsOutOfOrderExecutionWithinBatch) {
  const Command a = cmd_of(9, 1), b = cmd_of(9, 2);
  sim::Transcript t;
  t.record_output("smr-batch", batch_marker(0, 1, {a, b}));
  t.record_output("smr-exec", serde::encode(b));
  t.record_output("smr-exec", serde::encode(a));
  const auto v = check_transcripts({&t});
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("outside its batch"), std::string::npos) << *v;
}

TEST(BatchAtomicity, FlagsDoubleExecution) {
  const Command a = cmd_of(9, 1);
  sim::Transcript t;
  t.record_output("smr-batch", batch_marker(0, 1, {a}));
  t.record_output("smr-exec", serde::encode(a));
  t.record_output("smr-exec", serde::encode(a));
  const auto v = check_transcripts({&t});
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("twice"), std::string::npos) << *v;
}

TEST(BatchAtomicity, FlagsCrossReplicaMembershipDisagreement) {
  const Command a = cmd_of(9, 1), b = cmd_of(9, 2);
  sim::Transcript t1, t2;
  t1.record_output("smr-batch", batch_marker(0, 1, {a, b}));
  t1.record_output("smr-exec", serde::encode(a));
  t1.record_output("smr-exec", serde::encode(b));
  // Same (view, counter) slot, different membership on the second replica.
  t2.record_output("smr-batch", batch_marker(0, 1, {a}));
  t2.record_output("smr-exec", serde::encode(a));
  const auto v = check_transcripts({&t1, &t2});
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("disagree"), std::string::npos) << *v;
}

TEST(BatchAtomicity, AllowsRetryDedupAbsence) {
  // A member of a later batch already executed by an earlier one (client
  // retry landing in a second batch) is the legal absence.
  const Command a = cmd_of(9, 1), b = cmd_of(9, 2);
  sim::Transcript t;
  t.record_output("smr-batch", batch_marker(0, 1, {a}));
  t.record_output("smr-exec", serde::encode(a));
  t.record_output("smr-batch", batch_marker(0, 2, {a, b}));
  t.record_output("smr-exec", serde::encode(b));
  EXPECT_EQ(check_transcripts({&t}), std::nullopt);
}

TEST(BatchAtomicity, AllowsStateTransferInstallAbsence) {
  // Effects that arrived via state transfer (the "smr-install" witness)
  // never show up as executions; later batches may skip them.
  const Command a = cmd_of(9, 1), b = cmd_of(9, 2);
  sim::Transcript t;
  t.record_output("smr-install", install_marker({a}));
  t.record_output("smr-batch", batch_marker(1, 1, {a, b}));
  t.record_output("smr-exec", serde::encode(b));
  EXPECT_EQ(check_transcripts({&t}), std::nullopt);
}

// ---- end-to-end retry dedup ------------------------------------------------

TEST(RetryDedup, MinBftRetriedRequestInSecondBatchExecutesOnce) {
  // A byzantine primary batches request R alone, then — as a client retry
  // would cause — batches {R, S} again in the next slot. Both batches
  // commit. Each backup must execute R exactly once and answer its second
  // appearance from the reply cache: log = [R, S], and the transcripts
  // must satisfy batch atomicity.
  using agreement::MinBftReplica;
  using agreement::SgxUsigDirectory;
  using agreement::UsigDirectory;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::World world(seed, std::make_unique<sim::RandomDelayAdversary>(1, 6));
    SgxUsigDirectory usigs(world.keys());
    MinBftReplica::Options options;
    options.f = 1;
    options.replicas = {0, 1, 2};
    options.view_change_timeout = 4000;  // keep view 0 alive for the test
    options.batch_size = 4;              // batched() on the backups
    options.pipeline_depth = 4;

    class RebatchingPrimary final : public sim::Process {
     public:
      UsigDirectory* usigs = nullptr;
      void on_start() override {
        Command r;
        r.client = 50;
        r.request_id = 1;
        r.op = KvStateMachine::put_op("k", "first");
        Command s;
        s.client = 50;
        s.request_id = 2;
        s.op = KvStateMachine::put_op("k2", "second");
        // Counter 1: batch {R}. Counter 2: batch {R, S} — R again.
        broadcast(agreement::kMinBftCh,
                  MinBftReplica::encode_batch_prepare_for_test(*usigs, id(),
                                                               0, {r}));
        broadcast(agreement::kMinBftCh,
                  MinBftReplica::encode_batch_prepare_for_test(*usigs, id(),
                                                               0, {r, s}));
      }
    };

    auto& byz = world.spawn<RebatchingPrimary>();
    byz.usigs = &usigs;
    world.mark_byzantine(byz.id());
    std::vector<MinBftReplica*> backups;
    for (ProcessId i = 1; i <= 2; ++i)
      backups.push_back(&world.spawn<MinBftReplica>(
          options, usigs, std::make_unique<KvStateMachine>()));
    world.start();
    world.run_to_quiescence();

    for (MinBftReplica* backup : backups) {
      ASSERT_EQ(backup->executed_count(), 2u) << "seed " << seed;
      const agreement::ExecutionLog& log = backup->execution_log();
      EXPECT_EQ(log.at(0).command.request_id, 1u);
      EXPECT_EQ(log.at(1).command.request_id, 2u);
    }
    ExplorationContext ctx;
    for (const MinBftReplica* backup : backups)
      ctx.transcripts.emplace_back(backup->id(),
                                   &world.transcript(backup->id()));
    const auto v = batch_atomicity().check(ctx);
    EXPECT_EQ(v, std::nullopt) << *v;
  }
}

TEST(RetryDedup, PbftRetriedRequestInSecondBatchExecutesOnce) {
  using agreement::PbftReplica;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::World world(seed, std::make_unique<sim::RandomDelayAdversary>(1, 6));
    PbftReplica::Options options;
    options.f = 1;
    options.replicas = {0, 1, 2, 3};
    options.view_change_timeout = 4000;
    options.batch_size = 4;
    options.pipeline_depth = 4;

    class RebatchingPrimary final : public sim::Process {
     public:
      void on_start() override {
        Command r;
        r.client = 60;
        r.request_id = 1;
        r.op = KvStateMachine::put_op("k", "first");
        Command s;
        s.client = 60;
        s.request_id = 2;
        s.op = KvStateMachine::put_op("k2", "second");
        broadcast(agreement::kPbftCh,
                  PbftReplica::encode_batch_preprepare_for_test(signer(), 0,
                                                                1, {r}));
        broadcast(agreement::kPbftCh,
                  PbftReplica::encode_batch_preprepare_for_test(
                      signer(), 0, 2, {r, s}));
      }
    };

    auto& byz = world.spawn<RebatchingPrimary>();
    world.mark_byzantine(byz.id());
    std::vector<PbftReplica*> backups;
    for (ProcessId i = 1; i <= 3; ++i)
      backups.push_back(&world.spawn<PbftReplica>(
          options, std::make_unique<KvStateMachine>()));
    world.start();
    world.run_to_quiescence();

    for (PbftReplica* backup : backups) {
      ASSERT_EQ(backup->executed_count(), 2u) << "seed " << seed;
      const agreement::ExecutionLog& log = backup->execution_log();
      EXPECT_EQ(log.at(0).command.request_id, 1u);
      EXPECT_EQ(log.at(1).command.request_id, 2u);
    }
    ExplorationContext ctx;
    for (const PbftReplica* backup : backups)
      ctx.transcripts.emplace_back(backup->id(),
                                   &world.transcript(backup->id()));
    const auto v = batch_atomicity().check(ctx);
    EXPECT_EQ(v, std::nullopt) << *v;
  }
}

}  // namespace
}  // namespace unidir::explore
