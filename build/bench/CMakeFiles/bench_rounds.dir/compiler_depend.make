# Empty compiler generated dependencies file for bench_rounds.
# This may be replaced when dependencies are built.
