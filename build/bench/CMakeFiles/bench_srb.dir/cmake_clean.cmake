file(REMOVE_RECURSE
  "CMakeFiles/bench_srb.dir/bench_srb.cpp.o"
  "CMakeFiles/bench_srb.dir/bench_srb.cpp.o.d"
  "bench_srb"
  "bench_srb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_srb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
