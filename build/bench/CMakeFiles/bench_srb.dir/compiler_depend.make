# Empty compiler generated dependencies file for bench_srb.
# This may be replaced when dependencies are built.
