# Empty dependencies file for bench_trinc.
# This may be replaced when dependencies are built.
