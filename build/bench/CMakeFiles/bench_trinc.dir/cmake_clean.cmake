file(REMOVE_RECURSE
  "CMakeFiles/bench_trinc.dir/bench_trinc.cpp.o"
  "CMakeFiles/bench_trinc.dir/bench_trinc.cpp.o.d"
  "bench_trinc"
  "bench_trinc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trinc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
