# Empty compiler generated dependencies file for bench_minbft_vs_pbft.
# This may be replaced when dependencies are built.
