file(REMOVE_RECURSE
  "CMakeFiles/bench_minbft_vs_pbft.dir/bench_minbft_vs_pbft.cpp.o"
  "CMakeFiles/bench_minbft_vs_pbft.dir/bench_minbft_vs_pbft.cpp.o.d"
  "bench_minbft_vs_pbft"
  "bench_minbft_vs_pbft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minbft_vs_pbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
