file(REMOVE_RECURSE
  "CMakeFiles/unidir_agreement.dir/client.cpp.o"
  "CMakeFiles/unidir_agreement.dir/client.cpp.o.d"
  "CMakeFiles/unidir_agreement.dir/dolev_strong.cpp.o"
  "CMakeFiles/unidir_agreement.dir/dolev_strong.cpp.o.d"
  "CMakeFiles/unidir_agreement.dir/minbft.cpp.o"
  "CMakeFiles/unidir_agreement.dir/minbft.cpp.o.d"
  "CMakeFiles/unidir_agreement.dir/pbft.cpp.o"
  "CMakeFiles/unidir_agreement.dir/pbft.cpp.o.d"
  "CMakeFiles/unidir_agreement.dir/smr.cpp.o"
  "CMakeFiles/unidir_agreement.dir/smr.cpp.o.d"
  "CMakeFiles/unidir_agreement.dir/state_machines.cpp.o"
  "CMakeFiles/unidir_agreement.dir/state_machines.cpp.o.d"
  "CMakeFiles/unidir_agreement.dir/usig_directory.cpp.o"
  "CMakeFiles/unidir_agreement.dir/usig_directory.cpp.o.d"
  "CMakeFiles/unidir_agreement.dir/very_weak.cpp.o"
  "CMakeFiles/unidir_agreement.dir/very_weak.cpp.o.d"
  "CMakeFiles/unidir_agreement.dir/weak_agreement.cpp.o"
  "CMakeFiles/unidir_agreement.dir/weak_agreement.cpp.o.d"
  "libunidir_agreement.a"
  "libunidir_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidir_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
