# Empty dependencies file for unidir_agreement.
# This may be replaced when dependencies are built.
