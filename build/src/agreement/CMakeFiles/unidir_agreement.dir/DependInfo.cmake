
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agreement/client.cpp" "src/agreement/CMakeFiles/unidir_agreement.dir/client.cpp.o" "gcc" "src/agreement/CMakeFiles/unidir_agreement.dir/client.cpp.o.d"
  "/root/repo/src/agreement/dolev_strong.cpp" "src/agreement/CMakeFiles/unidir_agreement.dir/dolev_strong.cpp.o" "gcc" "src/agreement/CMakeFiles/unidir_agreement.dir/dolev_strong.cpp.o.d"
  "/root/repo/src/agreement/minbft.cpp" "src/agreement/CMakeFiles/unidir_agreement.dir/minbft.cpp.o" "gcc" "src/agreement/CMakeFiles/unidir_agreement.dir/minbft.cpp.o.d"
  "/root/repo/src/agreement/pbft.cpp" "src/agreement/CMakeFiles/unidir_agreement.dir/pbft.cpp.o" "gcc" "src/agreement/CMakeFiles/unidir_agreement.dir/pbft.cpp.o.d"
  "/root/repo/src/agreement/smr.cpp" "src/agreement/CMakeFiles/unidir_agreement.dir/smr.cpp.o" "gcc" "src/agreement/CMakeFiles/unidir_agreement.dir/smr.cpp.o.d"
  "/root/repo/src/agreement/state_machines.cpp" "src/agreement/CMakeFiles/unidir_agreement.dir/state_machines.cpp.o" "gcc" "src/agreement/CMakeFiles/unidir_agreement.dir/state_machines.cpp.o.d"
  "/root/repo/src/agreement/usig_directory.cpp" "src/agreement/CMakeFiles/unidir_agreement.dir/usig_directory.cpp.o" "gcc" "src/agreement/CMakeFiles/unidir_agreement.dir/usig_directory.cpp.o.d"
  "/root/repo/src/agreement/very_weak.cpp" "src/agreement/CMakeFiles/unidir_agreement.dir/very_weak.cpp.o" "gcc" "src/agreement/CMakeFiles/unidir_agreement.dir/very_weak.cpp.o.d"
  "/root/repo/src/agreement/weak_agreement.cpp" "src/agreement/CMakeFiles/unidir_agreement.dir/weak_agreement.cpp.o" "gcc" "src/agreement/CMakeFiles/unidir_agreement.dir/weak_agreement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unidir_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/unidir_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/unidir_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rounds/CMakeFiles/unidir_rounds.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/unidir_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/trusted/CMakeFiles/unidir_trusted.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/unidir_shmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
