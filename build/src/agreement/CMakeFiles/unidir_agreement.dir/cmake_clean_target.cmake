file(REMOVE_RECURSE
  "libunidir_agreement.a"
)
