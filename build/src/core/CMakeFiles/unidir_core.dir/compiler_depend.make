# Empty compiler generated dependencies file for unidir_core.
# This may be replaced when dependencies are built.
