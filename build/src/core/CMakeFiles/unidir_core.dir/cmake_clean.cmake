file(REMOVE_RECURSE
  "CMakeFiles/unidir_core.dir/classification.cpp.o"
  "CMakeFiles/unidir_core.dir/classification.cpp.o.d"
  "CMakeFiles/unidir_core.dir/separation.cpp.o"
  "CMakeFiles/unidir_core.dir/separation.cpp.o.d"
  "libunidir_core.a"
  "libunidir_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
