file(REMOVE_RECURSE
  "libunidir_core.a"
)
