# Empty compiler generated dependencies file for unidir_rounds.
# This may be replaced when dependencies are built.
