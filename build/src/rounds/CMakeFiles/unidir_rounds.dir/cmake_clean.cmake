file(REMOVE_RECURSE
  "CMakeFiles/unidir_rounds.dir/checkers.cpp.o"
  "CMakeFiles/unidir_rounds.dir/checkers.cpp.o.d"
  "CMakeFiles/unidir_rounds.dir/msg_rounds.cpp.o"
  "CMakeFiles/unidir_rounds.dir/msg_rounds.cpp.o.d"
  "CMakeFiles/unidir_rounds.dir/object_uni_round.cpp.o"
  "CMakeFiles/unidir_rounds.dir/object_uni_round.cpp.o.d"
  "CMakeFiles/unidir_rounds.dir/round_driver.cpp.o"
  "CMakeFiles/unidir_rounds.dir/round_driver.cpp.o.d"
  "CMakeFiles/unidir_rounds.dir/shmem_uni_round.cpp.o"
  "CMakeFiles/unidir_rounds.dir/shmem_uni_round.cpp.o.d"
  "libunidir_rounds.a"
  "libunidir_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidir_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
