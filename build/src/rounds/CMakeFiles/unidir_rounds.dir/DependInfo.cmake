
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rounds/checkers.cpp" "src/rounds/CMakeFiles/unidir_rounds.dir/checkers.cpp.o" "gcc" "src/rounds/CMakeFiles/unidir_rounds.dir/checkers.cpp.o.d"
  "/root/repo/src/rounds/msg_rounds.cpp" "src/rounds/CMakeFiles/unidir_rounds.dir/msg_rounds.cpp.o" "gcc" "src/rounds/CMakeFiles/unidir_rounds.dir/msg_rounds.cpp.o.d"
  "/root/repo/src/rounds/object_uni_round.cpp" "src/rounds/CMakeFiles/unidir_rounds.dir/object_uni_round.cpp.o" "gcc" "src/rounds/CMakeFiles/unidir_rounds.dir/object_uni_round.cpp.o.d"
  "/root/repo/src/rounds/round_driver.cpp" "src/rounds/CMakeFiles/unidir_rounds.dir/round_driver.cpp.o" "gcc" "src/rounds/CMakeFiles/unidir_rounds.dir/round_driver.cpp.o.d"
  "/root/repo/src/rounds/shmem_uni_round.cpp" "src/rounds/CMakeFiles/unidir_rounds.dir/shmem_uni_round.cpp.o" "gcc" "src/rounds/CMakeFiles/unidir_rounds.dir/shmem_uni_round.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unidir_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/unidir_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/unidir_shmem.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/unidir_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
