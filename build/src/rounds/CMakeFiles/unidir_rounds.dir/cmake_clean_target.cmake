file(REMOVE_RECURSE
  "libunidir_rounds.a"
)
