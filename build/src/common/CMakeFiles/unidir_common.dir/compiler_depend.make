# Empty compiler generated dependencies file for unidir_common.
# This may be replaced when dependencies are built.
