file(REMOVE_RECURSE
  "libunidir_common.a"
)
