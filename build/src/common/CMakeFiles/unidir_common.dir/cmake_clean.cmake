file(REMOVE_RECURSE
  "CMakeFiles/unidir_common.dir/bytes.cpp.o"
  "CMakeFiles/unidir_common.dir/bytes.cpp.o.d"
  "CMakeFiles/unidir_common.dir/log.cpp.o"
  "CMakeFiles/unidir_common.dir/log.cpp.o.d"
  "CMakeFiles/unidir_common.dir/serde.cpp.o"
  "CMakeFiles/unidir_common.dir/serde.cpp.o.d"
  "libunidir_common.a"
  "libunidir_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidir_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
