file(REMOVE_RECURSE
  "libunidir_trusted.a"
)
