file(REMOVE_RECURSE
  "CMakeFiles/unidir_trusted.dir/a2m.cpp.o"
  "CMakeFiles/unidir_trusted.dir/a2m.cpp.o.d"
  "CMakeFiles/unidir_trusted.dir/a2m_from_trinc.cpp.o"
  "CMakeFiles/unidir_trusted.dir/a2m_from_trinc.cpp.o.d"
  "CMakeFiles/unidir_trusted.dir/sgx.cpp.o"
  "CMakeFiles/unidir_trusted.dir/sgx.cpp.o.d"
  "CMakeFiles/unidir_trusted.dir/trinc.cpp.o"
  "CMakeFiles/unidir_trusted.dir/trinc.cpp.o.d"
  "CMakeFiles/unidir_trusted.dir/trinc_from_srb.cpp.o"
  "CMakeFiles/unidir_trusted.dir/trinc_from_srb.cpp.o.d"
  "CMakeFiles/unidir_trusted.dir/usig.cpp.o"
  "CMakeFiles/unidir_trusted.dir/usig.cpp.o.d"
  "libunidir_trusted.a"
  "libunidir_trusted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidir_trusted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
