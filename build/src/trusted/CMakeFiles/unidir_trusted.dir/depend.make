# Empty dependencies file for unidir_trusted.
# This may be replaced when dependencies are built.
