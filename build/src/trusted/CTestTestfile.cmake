# CMake generated Testfile for 
# Source directory: /root/repo/src/trusted
# Build directory: /root/repo/build/src/trusted
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
