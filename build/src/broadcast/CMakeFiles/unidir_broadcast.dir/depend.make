# Empty dependencies file for unidir_broadcast.
# This may be replaced when dependencies are built.
