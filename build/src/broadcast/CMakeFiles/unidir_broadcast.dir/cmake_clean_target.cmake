file(REMOVE_RECURSE
  "libunidir_broadcast.a"
)
