
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broadcast/bracha.cpp" "src/broadcast/CMakeFiles/unidir_broadcast.dir/bracha.cpp.o" "gcc" "src/broadcast/CMakeFiles/unidir_broadcast.dir/bracha.cpp.o.d"
  "/root/repo/src/broadcast/echo.cpp" "src/broadcast/CMakeFiles/unidir_broadcast.dir/echo.cpp.o" "gcc" "src/broadcast/CMakeFiles/unidir_broadcast.dir/echo.cpp.o.d"
  "/root/repo/src/broadcast/noneq.cpp" "src/broadcast/CMakeFiles/unidir_broadcast.dir/noneq.cpp.o" "gcc" "src/broadcast/CMakeFiles/unidir_broadcast.dir/noneq.cpp.o.d"
  "/root/repo/src/broadcast/rb_uni_round.cpp" "src/broadcast/CMakeFiles/unidir_broadcast.dir/rb_uni_round.cpp.o" "gcc" "src/broadcast/CMakeFiles/unidir_broadcast.dir/rb_uni_round.cpp.o.d"
  "/root/repo/src/broadcast/srb.cpp" "src/broadcast/CMakeFiles/unidir_broadcast.dir/srb.cpp.o" "gcc" "src/broadcast/CMakeFiles/unidir_broadcast.dir/srb.cpp.o.d"
  "/root/repo/src/broadcast/srb_from_uni.cpp" "src/broadcast/CMakeFiles/unidir_broadcast.dir/srb_from_uni.cpp.o" "gcc" "src/broadcast/CMakeFiles/unidir_broadcast.dir/srb_from_uni.cpp.o.d"
  "/root/repo/src/broadcast/srb_hub.cpp" "src/broadcast/CMakeFiles/unidir_broadcast.dir/srb_hub.cpp.o" "gcc" "src/broadcast/CMakeFiles/unidir_broadcast.dir/srb_hub.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unidir_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/unidir_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/unidir_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rounds/CMakeFiles/unidir_rounds.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/unidir_shmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
