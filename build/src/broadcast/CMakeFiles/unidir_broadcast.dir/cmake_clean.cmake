file(REMOVE_RECURSE
  "CMakeFiles/unidir_broadcast.dir/bracha.cpp.o"
  "CMakeFiles/unidir_broadcast.dir/bracha.cpp.o.d"
  "CMakeFiles/unidir_broadcast.dir/echo.cpp.o"
  "CMakeFiles/unidir_broadcast.dir/echo.cpp.o.d"
  "CMakeFiles/unidir_broadcast.dir/noneq.cpp.o"
  "CMakeFiles/unidir_broadcast.dir/noneq.cpp.o.d"
  "CMakeFiles/unidir_broadcast.dir/rb_uni_round.cpp.o"
  "CMakeFiles/unidir_broadcast.dir/rb_uni_round.cpp.o.d"
  "CMakeFiles/unidir_broadcast.dir/srb.cpp.o"
  "CMakeFiles/unidir_broadcast.dir/srb.cpp.o.d"
  "CMakeFiles/unidir_broadcast.dir/srb_from_uni.cpp.o"
  "CMakeFiles/unidir_broadcast.dir/srb_from_uni.cpp.o.d"
  "CMakeFiles/unidir_broadcast.dir/srb_hub.cpp.o"
  "CMakeFiles/unidir_broadcast.dir/srb_hub.cpp.o.d"
  "libunidir_broadcast.a"
  "libunidir_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidir_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
