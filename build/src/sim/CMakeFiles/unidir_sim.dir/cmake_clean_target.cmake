file(REMOVE_RECURSE
  "libunidir_sim.a"
)
