file(REMOVE_RECURSE
  "CMakeFiles/unidir_sim.dir/adversaries.cpp.o"
  "CMakeFiles/unidir_sim.dir/adversaries.cpp.o.d"
  "CMakeFiles/unidir_sim.dir/network.cpp.o"
  "CMakeFiles/unidir_sim.dir/network.cpp.o.d"
  "CMakeFiles/unidir_sim.dir/rng.cpp.o"
  "CMakeFiles/unidir_sim.dir/rng.cpp.o.d"
  "CMakeFiles/unidir_sim.dir/simulator.cpp.o"
  "CMakeFiles/unidir_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/unidir_sim.dir/transcript.cpp.o"
  "CMakeFiles/unidir_sim.dir/transcript.cpp.o.d"
  "CMakeFiles/unidir_sim.dir/world.cpp.o"
  "CMakeFiles/unidir_sim.dir/world.cpp.o.d"
  "libunidir_sim.a"
  "libunidir_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidir_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
