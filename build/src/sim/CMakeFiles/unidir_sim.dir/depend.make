# Empty dependencies file for unidir_sim.
# This may be replaced when dependencies are built.
