file(REMOVE_RECURSE
  "CMakeFiles/unidir_shmem.dir/acl.cpp.o"
  "CMakeFiles/unidir_shmem.dir/acl.cpp.o.d"
  "CMakeFiles/unidir_shmem.dir/memory_host.cpp.o"
  "CMakeFiles/unidir_shmem.dir/memory_host.cpp.o.d"
  "CMakeFiles/unidir_shmem.dir/peats.cpp.o"
  "CMakeFiles/unidir_shmem.dir/peats.cpp.o.d"
  "libunidir_shmem.a"
  "libunidir_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidir_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
