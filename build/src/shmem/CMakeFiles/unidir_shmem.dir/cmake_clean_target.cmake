file(REMOVE_RECURSE
  "libunidir_shmem.a"
)
