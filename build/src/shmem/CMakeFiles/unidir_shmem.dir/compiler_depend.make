# Empty compiler generated dependencies file for unidir_shmem.
# This may be replaced when dependencies are built.
