
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shmem/acl.cpp" "src/shmem/CMakeFiles/unidir_shmem.dir/acl.cpp.o" "gcc" "src/shmem/CMakeFiles/unidir_shmem.dir/acl.cpp.o.d"
  "/root/repo/src/shmem/memory_host.cpp" "src/shmem/CMakeFiles/unidir_shmem.dir/memory_host.cpp.o" "gcc" "src/shmem/CMakeFiles/unidir_shmem.dir/memory_host.cpp.o.d"
  "/root/repo/src/shmem/peats.cpp" "src/shmem/CMakeFiles/unidir_shmem.dir/peats.cpp.o" "gcc" "src/shmem/CMakeFiles/unidir_shmem.dir/peats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unidir_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/unidir_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/unidir_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
