# Empty dependencies file for unidir_explore.
# This may be replaced when dependencies are built.
