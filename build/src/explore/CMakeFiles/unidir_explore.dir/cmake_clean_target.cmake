file(REMOVE_RECURSE
  "libunidir_explore.a"
)
