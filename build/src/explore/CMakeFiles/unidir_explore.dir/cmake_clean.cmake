file(REMOVE_RECURSE
  "CMakeFiles/unidir_explore.dir/explorer.cpp.o"
  "CMakeFiles/unidir_explore.dir/explorer.cpp.o.d"
  "CMakeFiles/unidir_explore.dir/invariants.cpp.o"
  "CMakeFiles/unidir_explore.dir/invariants.cpp.o.d"
  "CMakeFiles/unidir_explore.dir/record_replay.cpp.o"
  "CMakeFiles/unidir_explore.dir/record_replay.cpp.o.d"
  "CMakeFiles/unidir_explore.dir/scenario.cpp.o"
  "CMakeFiles/unidir_explore.dir/scenario.cpp.o.d"
  "CMakeFiles/unidir_explore.dir/shrink.cpp.o"
  "CMakeFiles/unidir_explore.dir/shrink.cpp.o.d"
  "CMakeFiles/unidir_explore.dir/trace.cpp.o"
  "CMakeFiles/unidir_explore.dir/trace.cpp.o.d"
  "libunidir_explore.a"
  "libunidir_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidir_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
