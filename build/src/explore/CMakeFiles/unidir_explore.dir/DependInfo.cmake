
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explore/explorer.cpp" "src/explore/CMakeFiles/unidir_explore.dir/explorer.cpp.o" "gcc" "src/explore/CMakeFiles/unidir_explore.dir/explorer.cpp.o.d"
  "/root/repo/src/explore/invariants.cpp" "src/explore/CMakeFiles/unidir_explore.dir/invariants.cpp.o" "gcc" "src/explore/CMakeFiles/unidir_explore.dir/invariants.cpp.o.d"
  "/root/repo/src/explore/record_replay.cpp" "src/explore/CMakeFiles/unidir_explore.dir/record_replay.cpp.o" "gcc" "src/explore/CMakeFiles/unidir_explore.dir/record_replay.cpp.o.d"
  "/root/repo/src/explore/scenario.cpp" "src/explore/CMakeFiles/unidir_explore.dir/scenario.cpp.o" "gcc" "src/explore/CMakeFiles/unidir_explore.dir/scenario.cpp.o.d"
  "/root/repo/src/explore/shrink.cpp" "src/explore/CMakeFiles/unidir_explore.dir/shrink.cpp.o" "gcc" "src/explore/CMakeFiles/unidir_explore.dir/shrink.cpp.o.d"
  "/root/repo/src/explore/trace.cpp" "src/explore/CMakeFiles/unidir_explore.dir/trace.cpp.o" "gcc" "src/explore/CMakeFiles/unidir_explore.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agreement/CMakeFiles/unidir_agreement.dir/DependInfo.cmake"
  "/root/repo/build/src/rounds/CMakeFiles/unidir_rounds.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/unidir_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/unidir_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/unidir_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trusted/CMakeFiles/unidir_trusted.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/unidir_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/unidir_shmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
