file(REMOVE_RECURSE
  "libunidir_crypto.a"
)
