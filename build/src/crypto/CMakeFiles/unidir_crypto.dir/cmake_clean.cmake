file(REMOVE_RECURSE
  "CMakeFiles/unidir_crypto.dir/hmac.cpp.o"
  "CMakeFiles/unidir_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/unidir_crypto.dir/sha256.cpp.o"
  "CMakeFiles/unidir_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/unidir_crypto.dir/signature.cpp.o"
  "CMakeFiles/unidir_crypto.dir/signature.cpp.o.d"
  "libunidir_crypto.a"
  "libunidir_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidir_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
