# Empty dependencies file for unidir_crypto.
# This may be replaced when dependencies are built.
