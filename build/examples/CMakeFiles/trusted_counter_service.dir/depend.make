# Empty dependencies file for trusted_counter_service.
# This may be replaced when dependencies are built.
