file(REMOVE_RECURSE
  "CMakeFiles/trusted_counter_service.dir/trusted_counter_service.cpp.o"
  "CMakeFiles/trusted_counter_service.dir/trusted_counter_service.cpp.o.d"
  "trusted_counter_service"
  "trusted_counter_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trusted_counter_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
