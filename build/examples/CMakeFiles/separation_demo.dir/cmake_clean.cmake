file(REMOVE_RECURSE
  "CMakeFiles/separation_demo.dir/separation_demo.cpp.o"
  "CMakeFiles/separation_demo.dir/separation_demo.cpp.o.d"
  "separation_demo"
  "separation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/separation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
