# Empty compiler generated dependencies file for minbft_kv.
# This may be replaced when dependencies are built.
