file(REMOVE_RECURSE
  "CMakeFiles/minbft_kv.dir/minbft_kv.cpp.o"
  "CMakeFiles/minbft_kv.dir/minbft_kv.cpp.o.d"
  "minbft_kv"
  "minbft_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minbft_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
