
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/minbft_kv.cpp" "examples/CMakeFiles/minbft_kv.dir/minbft_kv.cpp.o" "gcc" "examples/CMakeFiles/minbft_kv.dir/minbft_kv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/unidir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/agreement/CMakeFiles/unidir_agreement.dir/DependInfo.cmake"
  "/root/repo/build/src/trusted/CMakeFiles/unidir_trusted.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/unidir_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/rounds/CMakeFiles/unidir_rounds.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/unidir_shmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/unidir_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/unidir_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/unidir_common.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/unidir_explore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
