# Empty compiler generated dependencies file for test_trusted.
# This may be replaced when dependencies are built.
