file(REMOVE_RECURSE
  "CMakeFiles/test_trusted.dir/trinc_from_srb_test.cpp.o"
  "CMakeFiles/test_trusted.dir/trinc_from_srb_test.cpp.o.d"
  "CMakeFiles/test_trusted.dir/trusted_test.cpp.o"
  "CMakeFiles/test_trusted.dir/trusted_test.cpp.o.d"
  "test_trusted"
  "test_trusted.pdb"
  "test_trusted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trusted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
