file(REMOVE_RECURSE
  "CMakeFiles/test_agreement.dir/dolev_strong_test.cpp.o"
  "CMakeFiles/test_agreement.dir/dolev_strong_test.cpp.o.d"
  "CMakeFiles/test_agreement.dir/minbft_test.cpp.o"
  "CMakeFiles/test_agreement.dir/minbft_test.cpp.o.d"
  "CMakeFiles/test_agreement.dir/pbft_test.cpp.o"
  "CMakeFiles/test_agreement.dir/pbft_test.cpp.o.d"
  "CMakeFiles/test_agreement.dir/state_machines_test.cpp.o"
  "CMakeFiles/test_agreement.dir/state_machines_test.cpp.o.d"
  "CMakeFiles/test_agreement.dir/very_weak_test.cpp.o"
  "CMakeFiles/test_agreement.dir/very_weak_test.cpp.o.d"
  "CMakeFiles/test_agreement.dir/weak_agreement_test.cpp.o"
  "CMakeFiles/test_agreement.dir/weak_agreement_test.cpp.o.d"
  "test_agreement"
  "test_agreement.pdb"
  "test_agreement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
