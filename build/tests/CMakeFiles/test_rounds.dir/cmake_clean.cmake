file(REMOVE_RECURSE
  "CMakeFiles/test_rounds.dir/checkers_test.cpp.o"
  "CMakeFiles/test_rounds.dir/checkers_test.cpp.o.d"
  "CMakeFiles/test_rounds.dir/object_rounds_test.cpp.o"
  "CMakeFiles/test_rounds.dir/object_rounds_test.cpp.o.d"
  "CMakeFiles/test_rounds.dir/rounds_test.cpp.o"
  "CMakeFiles/test_rounds.dir/rounds_test.cpp.o.d"
  "test_rounds"
  "test_rounds.pdb"
  "test_rounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
