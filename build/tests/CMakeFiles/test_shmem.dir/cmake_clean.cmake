file(REMOVE_RECURSE
  "CMakeFiles/test_shmem.dir/peats_test.cpp.o"
  "CMakeFiles/test_shmem.dir/peats_test.cpp.o.d"
  "CMakeFiles/test_shmem.dir/shmem_test.cpp.o"
  "CMakeFiles/test_shmem.dir/shmem_test.cpp.o.d"
  "test_shmem"
  "test_shmem.pdb"
  "test_shmem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
