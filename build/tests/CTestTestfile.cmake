# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_shmem[1]_include.cmake")
include("/root/repo/build/tests/test_rounds[1]_include.cmake")
include("/root/repo/build/tests/test_broadcast[1]_include.cmake")
include("/root/repo/build/tests/test_trusted[1]_include.cmake")
include("/root/repo/build/tests/test_agreement[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_fault_sweep[1]_include.cmake")
