// Experiment E10 — regenerates the paper's Figure 1 (the classification
// diagram) from executable evidence: every implementable edge is run and
// property-checked, every separation edge is run through its scenario
// construction, and literature edges are labelled as such.
//
// Exit status is nonzero if any executable edge fails — this binary is the
// one-shot "did the reproduction hold" check.
#include <cstdio>

#include "core/classification.h"

int main() {
  const auto report =
      unidir::core::build_classification_report(/*seed=*/2026, /*quick=*/false);
  std::fputs(report.render().c_str(), stdout);
  return report.all_experiments_passed() ? 0 : 1;
}
