// Experiment E9 — the headline comparison the trusted-hardware literature
// motivates: MinBFT-style SMR on trusted counters (n = 2f+1, two phases)
// vs PBFT (n = 3f+1, three phases), at equal fault budget f.
//
// Expected shape (Veronese et al., reproduced here on the simulator):
//   * replicas:      MinBFT 2f+1  <  PBFT 3f+1
//   * protocol msgs: MinBFT ~ (n−1) + (n−1)² commits over n=2f+1, versus
//                    PBFT's pre-prepare + prepare + commit over n=3f+1 —
//                    fewer messages per request at every f;
//   * latency:       one fewer phase → fewer virtual ticks per request;
//   * the trade:     every MinBFT message costs a USIG (enclave) call,
//                    visible in wall time per simulated request.
//
// Counters are per-request averages over a closed-loop client workload.
#include <benchmark/benchmark.h>

#include "agreement/minbft.h"
#include "agreement/pbft.h"
#include "agreement/state_machines.h"
#include "sim/adversaries.h"

namespace {

using namespace unidir;
using namespace unidir::agreement;

constexpr int kRequests = 20;
constexpr Time kMaxDelay = 5;

struct Stats {
  double replicas = 0;
  double ticks_per_req = 0;
  double msgs_per_req = 0;
  double bytes_per_req = 0;
  double completed = 0;
  double total_ticks = 0;  // makespan (throughput = completed / this)
};

void report(benchmark::State& state, const Stats& s) {
  state.counters["replicas"] = s.replicas;
  state.counters["virtual_ticks/req"] = s.ticks_per_req;
  state.counters["net_msgs/req"] = s.msgs_per_req;
  state.counters["bytes/req"] = s.bytes_per_req;
  if (s.completed != kRequests) state.SkipWithError("requests incomplete");
}

enum class UsigBackend { Sgx, Trinc };

template <typename Replica, typename MakeReplica>
Stats run_smr(std::size_t n, std::size_t f, MakeReplica make_replica,
              bool crash_primary_midway,
              UsigBackend backend = UsigBackend::Sgx,
              std::size_t pipeline_depth = 1) {
  sim::World w(17, std::make_unique<sim::RandomDelayAdversary>(1, kMaxDelay));
  std::unique_ptr<UsigDirectory> usigs_owner;
  if (backend == UsigBackend::Sgx) {
    usigs_owner = std::make_unique<SgxUsigDirectory>(w.keys());
  } else {
    usigs_owner = std::make_unique<TrincUsigDirectory>(w.keys());
  }
  UsigDirectory& usigs = *usigs_owner;
  std::vector<ProcessId> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back(static_cast<ProcessId>(i));
  std::vector<Replica*> replicas;
  for (std::size_t i = 0; i < n; ++i)
    replicas.push_back(make_replica(w, usigs, ids, f));
  SmrClient::Options copt;
  copt.replicas = ids;
  copt.f = f;
  copt.max_outstanding = pipeline_depth;
  auto& client = w.spawn<SmrClient>(copt);
  for (int k = 0; k < kRequests; ++k)
    client.submit(KvStateMachine::put_op("key" + std::to_string(k % 4),
                                         "value" + std::to_string(k)));
  w.start();
  if (crash_primary_midway) {
    w.run_until([&] { return client.completed() >= kRequests / 2; });
    w.crash(0);
  }
  w.run_to_quiescence();

  Stats s;
  s.replicas = static_cast<double>(n);
  s.completed = static_cast<double>(client.completed());
  s.total_ticks = static_cast<double>(w.now());
  double total_latency = 0;
  for (Time t : client.latencies()) total_latency += static_cast<double>(t);
  s.ticks_per_req = total_latency / static_cast<double>(client.completed());
  s.msgs_per_req = static_cast<double>(w.network().stats().messages_sent) /
                   static_cast<double>(client.completed());
  s.bytes_per_req = static_cast<double>(w.network().stats().bytes_sent) /
                    static_cast<double>(client.completed());
  return s;
}

MinBftReplica* make_minbft(sim::World& w, UsigDirectory& usigs,
                           const std::vector<ProcessId>& ids, std::size_t f) {
  MinBftReplica::Options o;
  o.replicas = ids;
  o.f = f;
  return &w.spawn<MinBftReplica>(o, usigs,
                                 std::make_unique<KvStateMachine>());
}

PbftReplica* make_pbft(sim::World& w, UsigDirectory&,
                       const std::vector<ProcessId>& ids, std::size_t f) {
  PbftReplica::Options o;
  o.replicas = ids;
  o.f = f;
  return &w.spawn<PbftReplica>(o, std::make_unique<KvStateMachine>());
}

void BM_MinBft(benchmark::State& state) {
  const auto f = static_cast<std::size_t>(state.range(0));
  Stats s;
  for (auto _ : state)
    s = run_smr<MinBftReplica>(2 * f + 1, f, make_minbft, false);
  report(state, s);
}
BENCHMARK(BM_MinBft)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_Pbft(benchmark::State& state) {
  const auto f = static_cast<std::size_t>(state.range(0));
  Stats s;
  for (auto _ : state)
    s = run_smr<PbftReplica>(3 * f + 1, f, make_pbft, false);
  report(state, s);
}
BENCHMARK(BM_Pbft)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

// Failover: the view-0 primary crashes halfway through the workload; the
// counters then include the view-change cost amortized over the run.
void BM_MinBftPrimaryFailover(benchmark::State& state) {
  const auto f = static_cast<std::size_t>(state.range(0));
  Stats s;
  for (auto _ : state)
    s = run_smr<MinBftReplica>(2 * f + 1, f, make_minbft, true);
  report(state, s);
}
BENCHMARK(BM_MinBftPrimaryFailover)->Arg(1)->Arg(2);

void BM_PbftPrimaryFailover(benchmark::State& state) {
  const auto f = static_cast<std::size_t>(state.range(0));
  Stats s;
  for (auto _ : state)
    s = run_smr<PbftReplica>(3 * f + 1, f, make_pbft, true);
  report(state, s);
}
BENCHMARK(BM_PbftPrimaryFailover)->Arg(1)->Arg(2);

// Throughput: pipeline depth sweep — requests per virtual tick rises with
// outstanding requests until ordering serializes it.
void BM_MinBftPipelineDepth(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  Stats s;
  for (auto _ : state)
    s = run_smr<MinBftReplica>(3, 1, make_minbft, false, UsigBackend::Sgx,
                               depth);
  report(state, s);
  state.counters["req_per_ktick"] =
      1000.0 * s.completed / std::max(1.0, s.total_ticks);
}
BENCHMARK(BM_MinBftPipelineDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Ablation: the conservative commit quorum (f+1 default vs all n).
void BM_MinBftConservativeQuorum(benchmark::State& state) {
  const auto quorum = static_cast<std::size_t>(state.range(0));
  Stats s;
  for (auto _ : state) {
    s = run_smr<MinBftReplica>(
        5, 2,
        [quorum](sim::World& w, UsigDirectory& usigs,
                 const std::vector<ProcessId>& ids, std::size_t f) {
          MinBftReplica::Options o;
          o.replicas = ids;
          o.f = f;
          o.commit_quorum = quorum;
          return &w.spawn<MinBftReplica>(o, usigs,
                                         std::make_unique<KvStateMachine>());
        },
        false);
  }
  report(state, s);
}
BENCHMARK(BM_MinBftConservativeQuorum)->Arg(3)->Arg(4)->Arg(5);

// Ablation: the USIG backend — the SGX enclave vs a TrInc trinket. Both
// are trusted logs; the protocol is identical, only the attestation path
// differs (visible in wall time, not in message counts).
void BM_MinBftTrincUsig(benchmark::State& state) {
  const auto f = static_cast<std::size_t>(state.range(0));
  Stats s;
  for (auto _ : state)
    s = run_smr<MinBftReplica>(2 * f + 1, f, make_minbft, false,
                               UsigBackend::Trinc);
  report(state, s);
}
BENCHMARK(BM_MinBftTrincUsig)->Arg(1)->Arg(2)->Arg(3);

// Ablation (DESIGN.md §6): checkpoint interval. Frequent checkpoints add
// n² traffic but bound view-change payloads.
void BM_MinBftCheckpointInterval(benchmark::State& state) {
  const auto interval = static_cast<SeqNum>(state.range(0));
  Stats s;
  for (auto _ : state) {
    s = run_smr<MinBftReplica>(
        3, 1,
        [interval](sim::World& w, UsigDirectory& usigs,
                   const std::vector<ProcessId>& ids, std::size_t f) {
          MinBftReplica::Options o;
          o.replicas = ids;
          o.f = f;
          o.checkpoint_interval = interval;
          return &w.spawn<MinBftReplica>(o, usigs,
                                         std::make_unique<KvStateMachine>());
        },
        false);
  }
  report(state, s);
}
BENCHMARK(BM_MinBftCheckpointInterval)->Arg(1)->Arg(4)->Arg(16)->Arg(0);

}  // namespace
