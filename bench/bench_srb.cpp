// Experiment E5 (performance side): the three SRB implementations side by
// side, swept over group size —
//
//   SrbHub        trusted primitive (what hardware gives you): O(n)
//                 messages per broadcast, delivery latency ~ one hop.
//   Bracha        message passing, n > 3f: O(n^2) messages, 3 hops.
//   UniSrb        Algorithm 1 over shared-memory unidirectional rounds,
//                 n >= 2t+1: rounds of O(n) register ops, L1/L2 proof
//                 traffic; payload bytes grow with proof size (the §6
//                 ablation measures that growth).
//
// The expected *shape* (not absolute numbers): hub < Bracha in messages;
// Bracha needs n > 3f while UniSrb matches the hub's n >= 2t+1 resilience
// at the price of round-driven latency and proof-sized payloads.
#include <benchmark/benchmark.h>

#include "broadcast/bracha.h"
#include "broadcast/echo.h"
#include "broadcast/srb_from_uni.h"
#include "broadcast/srb_hub.h"
#include "rounds/shmem_uni_round.h"
#include "sim/adversaries.h"

namespace {

using namespace unidir;
using namespace unidir::broadcast;

constexpr int kMessages = 5;

class Host final : public sim::Process {};

struct Stats {
  double ticks = 0;
  double msgs_per_bcast = 0;
  double bytes_per_bcast = 0;
  bool all_delivered = true;
};

void report(benchmark::State& state, const Stats& s) {
  state.counters["virtual_ticks"] = s.ticks;
  state.counters["net_msgs/bcast"] = s.msgs_per_bcast;
  state.counters["bytes/bcast"] = s.bytes_per_bcast;
  if (!s.all_delivered) state.SkipWithError("delivery incomplete");
}

void BM_SrbHub(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Stats s;
  for (auto _ : state) {
    sim::World w(3, std::make_unique<sim::RandomDelayAdversary>(1, 5));
    SrbHub hub(w, 1);
    std::vector<std::unique_ptr<SrbHubEndpoint>> eps;
    for (std::size_t i = 0; i < n; ++i)
      eps.push_back(hub.make_endpoint(w.spawn<Host>()));
    w.start();
    for (int k = 0; k < kMessages; ++k)
      eps[0]->broadcast(Bytes(64, 0x42));
    w.run_to_quiescence();
    s.ticks = static_cast<double>(w.now());
    s.msgs_per_bcast =
        static_cast<double>(w.network().stats().messages_sent) / kMessages;
    s.bytes_per_bcast =
        static_cast<double>(w.network().stats().bytes_sent) / kMessages;
    for (auto& ep : eps)
      if (ep->delivered_up_to(0) != kMessages) s.all_delivered = false;
  }
  report(state, s);
}
BENCHMARK(BM_SrbHub)->Arg(4)->Arg(7)->Arg(13)->Arg(25)->Arg(49);

void BM_Bracha(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  Stats s;
  for (auto _ : state) {
    sim::World w(3, std::make_unique<sim::RandomDelayAdversary>(1, 5));
    std::vector<std::unique_ptr<BrachaEndpoint>> eps;
    for (std::size_t i = 0; i < n; ++i)
      eps.push_back(std::make_unique<BrachaEndpoint>(w.spawn<Host>(), 1, n, f));
    w.start();
    for (int k = 0; k < kMessages; ++k)
      eps[0]->broadcast(Bytes(64, 0x42));
    w.run_to_quiescence();
    s.ticks = static_cast<double>(w.now());
    s.msgs_per_bcast =
        static_cast<double>(w.network().stats().messages_sent) / kMessages;
    s.bytes_per_bcast =
        static_cast<double>(w.network().stats().bytes_sent) / kMessages;
    for (auto& ep : eps)
      if (ep->delivered_up_to(0) != kMessages) s.all_delivered = false;
  }
  report(state, s);
}
BENCHMARK(BM_Bracha)->Arg(4)->Arg(7)->Arg(13)->Arg(25)->Arg(49);

/// DESIGN.md §6 ablation: signed-echo consistent broadcast vs Bracha —
/// same n > 3f bound, O(n) vs O(n²) messages, weaker (no totality).
void BM_SignedEcho(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  Stats s;
  for (auto _ : state) {
    sim::World w(3, std::make_unique<sim::RandomDelayAdversary>(1, 5));
    std::vector<std::unique_ptr<EchoBroadcastEndpoint>> eps;
    for (std::size_t i = 0; i < n; ++i)
      eps.push_back(
          std::make_unique<EchoBroadcastEndpoint>(w.spawn<Host>(), 1, n, f));
    w.start();
    for (int k = 0; k < kMessages; ++k)
      eps[0]->broadcast(Bytes(64, 0x42));
    w.run_to_quiescence();
    s.ticks = static_cast<double>(w.now());
    s.msgs_per_bcast =
        static_cast<double>(w.network().stats().messages_sent) / kMessages;
    s.bytes_per_bcast =
        static_cast<double>(w.network().stats().bytes_sent) / kMessages;
    for (auto& ep : eps)
      if (ep->delivered_up_to(0) != kMessages) s.all_delivered = false;
  }
  report(state, s);
}
BENCHMARK(BM_SignedEcho)->Arg(4)->Arg(7)->Arg(13)->Arg(25)->Arg(49);

void BM_UniSrbOverSharedMemory(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = (n - 1) / 2;

  class Node final : public sim::Process {
   public:
    std::unique_ptr<rounds::RoundDriver> driver;
    std::unique_ptr<UniSrbEndpoint> srb;
    std::vector<Bytes> to_broadcast;
    void on_start() override {
      for (auto& m : to_broadcast) srb->broadcast(m);
      srb->start();
    }
  };

  Stats s;
  double mem_ops = 0;
  double payload_bytes = 0;
  for (auto _ : state) {
    sim::World w(3, std::make_unique<sim::ImmediateAdversary>());
    shmem::MemoryHost memory(w.simulator(), sim::Rng(5));
    rounds::ShmemRoundBoard board(n);
    std::vector<Node*> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      auto& node = w.spawn<Node>();
      node.driver = std::make_unique<rounds::ShmemUniRoundDriver>(
          memory, board, static_cast<ProcessId>(i));
      node.srb = std::make_unique<UniSrbEndpoint>(node, *node.driver, n, t);
      nodes.push_back(&node);
    }
    for (int k = 0; k < kMessages; ++k)
      nodes[0]->to_broadcast.push_back(Bytes(64, 0x42));
    w.start();
    w.run_to_quiescence();
    s.ticks = static_cast<double>(w.now());
    mem_ops = static_cast<double>(memory.invocations()) / kMessages;
    payload_bytes = 0;
    for (auto* node : nodes)
      payload_bytes += static_cast<double>(node->srb->payload_bytes_sent());
    payload_bytes /= kMessages;
    for (auto* node : nodes)
      if (node->srb->delivered_up_to(0) != kMessages) s.all_delivered = false;
  }
  s.msgs_per_bcast = mem_ops;          // register ops play the message role
  s.bytes_per_bcast = payload_bytes;   // includes L1/L2 proof bytes
  report(state, s);
}
BENCHMARK(BM_UniSrbOverSharedMemory)->Arg(3)->Arg(5)->Arg(9)->Arg(17);

}  // namespace
