// Experiments E3 and E7 — the impossibility constructions, swept over
// system sizes and seeds. Prints one row per configuration: whether every
// indistinguishability clause and the final violation reproduced.
#include <cstdio>

#include "core/separation.h"

int main() {
  int failures = 0;

  std::puts("E3: SRB cannot implement unidirectionality (n > 2f, f > 1)");
  std::puts("  n   f   seed  rounds  q(1~3) q(2~3) c1(2~3) c2(1~3) violated  THEOREM");
  struct E3Row {
    std::size_t n;
    std::size_t f;
  };
  for (E3Row row : {E3Row{5, 2}, E3Row{6, 2}, E3Row{7, 2}, E3Row{7, 3},
                    E3Row{9, 3}, E3Row{9, 4}, E3Row{11, 5}, E3Row{15, 7}}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto r = unidir::core::run_srb_uni_separation(row.n, row.f, seed);
      std::printf("  %-3zu %-3zu %-5llu %-7s %-6s %-6s %-7s %-7s %-9s %s\n",
                  row.n, row.f, static_cast<unsigned long long>(seed),
                  r.rounds_completed ? "yes" : "NO",
                  r.q_cannot_tell_1_from_3 ? "yes" : "NO",
                  r.q_cannot_tell_2_from_3 ? "yes" : "NO",
                  r.c1_cannot_tell_2_from_3 ? "yes" : "NO",
                  r.c2_cannot_tell_1_from_3 ? "yes" : "NO",
                  r.unidirectionality_violated ? "yes" : "NO",
                  r.holds() ? "HOLDS" : "**FAILED**");
      if (!r.holds()) ++failures;
    }
  }

  std::puts("");
  std::puts("E7: RB cannot solve very weak agreement (n <= 2f)");
  std::puts("  n   seed  done  p(1~2) p(2~5) q(3~4) q(4~5) violated  THEOREM");
  for (std::size_t n : {2u, 4u, 6u, 8u, 10u, 12u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto r = unidir::core::run_rb_vwa_impossibility(n, seed);
      std::printf("  %-3zu %-5llu %-5s %-6s %-6s %-6s %-6s %-9s %s\n", n,
                  static_cast<unsigned long long>(seed),
                  r.all_terminated ? "yes" : "NO",
                  r.p_cannot_tell_1_from_2 ? "yes" : "NO",
                  r.p_cannot_tell_2_from_5 ? "yes" : "NO",
                  r.q_cannot_tell_3_from_4 ? "yes" : "NO",
                  r.q_cannot_tell_4_from_5 ? "yes" : "NO",
                  r.agreement_violated ? "yes" : "NO",
                  r.holds() ? "HOLDS" : "**FAILED**");
      if (!r.holds()) ++failures;
    }
  }

  if (failures > 0) {
    std::printf("\n%d configuration(s) FAILED to reproduce\n", failures);
    return 1;
  }
  std::puts("\nall configurations reproduced both impossibility theorems");
  return 0;
}
