// Hot-path benchmark: end-to-end events/sec through the simulator's
// message-delivery path, compared against the committed pre-optimization
// baseline (bench/baseline_hotpath.json).
//
// Two phases, both written into BENCH_hotpath.json:
//
//  1. Throughput — the MinBFT n=4 f=1 scenario (random-delay adversary,
//     64 pipelined KV puts, seeds 1-8) run repeatedly on one thread. This
//     is the exact workload the baseline file records; the report carries
//     both numbers and their ratio, plus the queue/crypto counters that
//     explain the difference (ring fast-path share, verify-memo hits,
//     SHA-NI availability).
//  2. Parallel sweep — a {protocol × adversary × seed} grid of 72
//     scenarios run serially and then through ParallelRunner with one
//     worker per core. Per-scenario fingerprints must match byte-for-byte:
//     parallelism is wall-clock only, never results. A mismatch fails the
//     benchmark regardless of flags.
//  3. Recovery catch-up — a backup crashes early in the n=4 workload and
//     restarts after the cluster has finished; the figure is virtual
//     ticks from restart until its execution log matches the peers'
//     (durable image replay + state transfer, DESIGN.md §9). A replica
//     that never catches up fails the benchmark regardless of flags.
//  4. Batch x offered-load sweep — MinBFT n=4 under a closed-loop client
//     fleet (16 clients), batch sizes {1, 4, 16, 32} crossed with three
//     outstanding-window levels. Each cell reports requests/sec (wall
//     clock) and client latency percentiles (virtual ticks); the full
//     curve lands in BENCH_batch_curve.json and the high-load row's
//     figures in the flat report. Any invariant violation fails the
//     benchmark regardless of flags; under --check the high-load speedup
//     at batch >= 16 must reach kBatchSpeedupFloor and requests/sec must
//     stay within kRegressionTolerance of the baseline.
//
// The throughput phase also aggregates the obs-layer virtual-tick latency
// histograms (per-slot commit latency at the replicas, end-to-end request
// latency at the client) across its seeds. Percentiles of virtual ticks
// are deterministic — the same on every machine — so under --check they
// are gated hard: a >25% percentile regression vs the baseline fails.
//
// Flags:
//   --smoke          one throughput round instead of six (CI-sized)
//   --check          exit 1 if events/sec < (1 - 0.20) * baseline, or a
//                    latency percentile > (1 + 0.25) * baseline
//   --baseline PATH  baseline JSON (default bench/baseline_hotpath.json,
//                    looked up relative to the current directory)
//   --out PATH       report path (default BENCH_hotpath.json)
//   --trace-out PATH Chrome-trace JSON of one traced seed-1 run
//                    (default BENCH_trace.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "agreement/client.h"
#include "agreement/minbft.h"
#include "agreement/state_machines.h"
#include "agreement/usig_directory.h"
#include "crypto/sha256.h"
#include "explore/parallel.h"
#include "explore/scenario.h"
#include "obs/metrics.h"
#include "sim/adversaries.h"
#include "sim/world.h"

using namespace unidir;
using namespace unidir::explore;

namespace {

constexpr double kRegressionTolerance = 0.20;
/// Batching must buy at least this much at batch >= 16 on the high-load
/// row — the whole point of amortizing one USIG/signature pair over a
/// batch. Measured headroom is ~3.3-3.5x on one core.
constexpr double kBatchSpeedupFloor = 3.0;
/// Latency percentiles are virtual-tick figures — deterministic per seed —
/// so the gate has no machine noise to absorb; 25% still leaves room for
/// intentional protocol tuning without a baseline bump.
constexpr double kLatencyTolerance = 0.25;

ScenarioSpec hotpath_spec(std::uint64_t seed) {
  ScenarioSpec s;
  s.protocol = ProtocolKind::MinBft;
  s.adversary = AdversaryKind::RandomDelay;
  s.seed = seed;
  s.n = 4;
  s.f = 1;
  s.max_delay = 5;
  s.pipeline_depth = 4;
  for (int k = 0; k < 64; ++k)
    s.requests.push_back(agreement::KvStateMachine::put_op(
        "key" + std::to_string(k % 7), "value" + std::to_string(k)));
  return s;
}

/// Minimal extraction of `"key": <number>` from a flat JSON object — the
/// baseline file is ours and flat, so no parser dependency is warranted.
double json_number(const std::string& text, const std::string& key,
                   double fallback) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return fallback;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return fallback;
  return std::strtod(text.c_str() + pos + 1, nullptr);
}

std::string hex_of(const crypto::Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(d.size() * 2);
  for (std::uint8_t b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

struct ThroughputResult {
  double events_per_sec = 0;
  std::uint64_t events = 0;
  std::uint64_t runs = 0;
  sim::SimulatorStats sim{};
  crypto::VerifyStats sig{};
  /// Virtual-tick latency histograms merged across the measured seeds
  /// (identical every round, so merged from the first round only).
  obs::HistogramData commit_latency;
  obs::HistogramData client_latency;
};

ThroughputResult measure_throughput(int rounds) {
  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  (void)run_scenario(hotpath_spec(1), reg);  // warmup

  // Each round runs seeds 1-8 and gets its own rate; the reported figure
  // is the median round, which shrugs off transient load on shared
  // builders far better than one aggregate stopwatch.
  ThroughputResult r;
  std::vector<double> per_round;
  for (int round = 0; round < rounds; ++round) {
    std::uint64_t round_events = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const RunOutcome out = run_scenario(hotpath_spec(seed), reg);
      round_events += out.events;
      ++r.runs;
      if (round == 0) {
        if (const obs::HistogramData* h =
                out.metrics.find_histogram("smr.commit_latency_ticks"))
          r.commit_latency.merge(*h);
        if (const obs::HistogramData* h =
                out.metrics.find_histogram("client.latency_ticks"))
          r.client_latency.merge(*h);
      }
      r.sim.ring_fast_path += out.sim.ring_fast_path;
      r.sim.heap_events += out.sim.heap_events;
      r.sim.scheduled += out.sim.scheduled;
      r.sim.executed += out.sim.executed;
      r.sim.peak_pending = std::max(r.sim.peak_pending, out.sim.peak_pending);
      r.sig.verifies += out.sig.verifies;
      r.sig.memo_hits += out.sig.memo_hits;
      r.sig.macs += out.sig.macs;
      r.sig.batches += out.sig.batches;
      r.sig.batch_jobs += out.sig.batch_jobs;
      r.sig.lane_macs += out.sig.lane_macs;
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    r.events += round_events;
    if (secs > 0)
      per_round.push_back(static_cast<double>(round_events) / secs);
  }
  if (!per_round.empty()) {
    std::sort(per_round.begin(), per_round.end());
    r.events_per_sec = per_round[per_round.size() / 2];
  }
  return r;
}

struct SweepResult {
  std::size_t scenarios = 0;
  std::size_t threads = 0;
  double serial_secs = 0;
  double parallel_secs = 0;
  bool fingerprints_identical = false;
  std::string combined_fingerprint;  // hash over all per-scenario prints
};

SweepResult measure_sweep() {
  // 2 protocols x 3 adversaries x 12 seeds = 72 scenarios.
  std::vector<ScenarioSpec> specs;
  for (ProtocolKind p : {ProtocolKind::MinBft, ProtocolKind::Pbft})
    for (AdversaryKind a : {AdversaryKind::RandomDelay,
                            AdversaryKind::Duplicating, AdversaryKind::Gst})
      for (std::uint64_t seed = 1; seed <= 12; ++seed)
        specs.push_back(ScenarioSpec::materialize(p, a, seed));

  const InvariantRegistry reg = InvariantRegistry::standard_smr();

  const ParallelRunner serial(1);
  const std::vector<RunOutcome> serial_out =
      serial.run_scenarios(specs, reg);

  const ParallelRunner parallel(0);
  const std::vector<RunOutcome> parallel_out =
      parallel.run_scenarios(specs, reg);

  SweepResult r;
  r.scenarios = specs.size();
  r.threads = parallel.threads();
  r.serial_secs =
      static_cast<double>(serial.last_stats().wall_ns) / 1e9;
  r.parallel_secs =
      static_cast<double>(parallel.last_stats().wall_ns) / 1e9;

  r.fingerprints_identical = true;
  crypto::Sha256 combined;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (serial_out[i].fingerprint != parallel_out[i].fingerprint)
      r.fingerprints_identical = false;
    combined.update(ByteSpan(serial_out[i].fingerprint.data(),
                             serial_out[i].fingerprint.size()));
  }
  r.combined_fingerprint = hex_of(combined.finish());
  return r;
}

struct RecoveryResult {
  std::uint64_t seeds = 0;
  std::uint64_t catchup_ticks_median = 0;  // restart -> log parity
  std::uint64_t entries_recovered = 0;     // total across seeds
  bool all_caught_up = false;
};

/// Ticks-to-catch-up: replica 3 crashes at t=40 (a handful of executions
/// into the 64-put workload), the remaining three finish without it, and
/// at t=2000 it restarts from its durable image. The clock runs from the
/// restart until its executed count reaches the peers' frontier — that
/// window is exactly one image load plus one StateRequest/StateReply
/// round plus replaying the transferred suffix.
RecoveryResult measure_recovery(std::uint64_t seeds) {
  RecoveryResult res;
  res.all_caught_up = true;
  std::vector<std::uint64_t> ticks;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    sim::World world(seed,
                     std::make_unique<sim::RandomDelayAdversary>(1, 3));
    agreement::SgxUsigDirectory usigs(world.keys());
    agreement::MinBftReplica::Options opt;
    opt.f = 1;
    opt.checkpoint_interval = 8;
    for (ProcessId i = 0; i < 4; ++i) opt.replicas.push_back(i);
    std::vector<agreement::MinBftReplica*> rs;
    for (ProcessId i = 0; i < 4; ++i)
      rs.push_back(&world.spawn<agreement::MinBftReplica>(
          opt, usigs, std::make_unique<agreement::KvStateMachine>()));
    agreement::SmrClient::Options copt;
    copt.replicas = opt.replicas;
    copt.f = 1;
    copt.resend_timeout = 200;
    copt.max_outstanding = 4;
    auto& client = world.spawn<agreement::SmrClient>(copt);
    for (int k = 0; k < 64; ++k)
      client.submit(agreement::KvStateMachine::put_op(
          "key" + std::to_string(k % 7), "value" + std::to_string(k)));

    constexpr Time kCrashAt = 40;
    constexpr Time kRestartAt = 2'000;
    std::uint64_t frontier = 0;
    std::uint64_t resumed_from = 0;
    world.simulator().at(kCrashAt, [&] { world.crash(3); });
    world.simulator().at(kRestartAt, [&] {
      for (std::size_t i = 0; i < 3; ++i)
        frontier = std::max(frontier, rs[i]->executed_count());
      usigs.restart_device(3, /*durable=*/true);
      world.restart(3);
      resumed_from = rs[3]->executed_count();
    });
    world.start();
    const bool caught = world.run_until(
        [&] {
          return world.now() > kRestartAt &&
                 rs[3]->executed_count() >= frontier && frontier > 0;
        },
        2'000'000);
    res.all_caught_up = res.all_caught_up && caught;
    ++res.seeds;
    if (caught) {
      ticks.push_back(world.now() - kRestartAt);
      res.entries_recovered += frontier - resumed_from;
    }
    (void)client;
  }
  if (!ticks.empty()) {
    std::sort(ticks.begin(), ticks.end());
    res.catchup_ticks_median = ticks[ticks.size() / 2];
  }
  return res;
}

// ---- phase 4: batch x offered-load sweep ---------------------------------

ScenarioSpec batch_spec(std::uint64_t batch, std::uint64_t window,
                        std::uint64_t requests_per_client,
                        std::uint64_t seed) {
  ScenarioSpec s;
  s.protocol = ProtocolKind::MinBft;
  s.adversary = AdversaryKind::RandomDelay;
  s.seed = seed;
  s.n = 4;
  s.f = 1;
  s.max_delay = 5;
  s.batch_size = batch;
  s.batch_timeout_ticks = 4;
  s.replica_pipeline = 4;
  s.workload.clients = 16;
  s.workload.requests_per_client = requests_per_client;
  s.workload.open_loop = false;
  s.workload.max_outstanding = window;
  s.workload.key_space = 7;
  s.workload.seed = seed;
  return s;
}

struct BatchCell {
  std::uint64_t batch = 0;
  std::uint64_t window = 0;
  double rps = 0;
  double speedup_vs_b1 = 0;  // same window, batch 1
  std::uint64_t completed = 0;
  std::uint64_t client_p50 = 0;
  std::uint64_t client_p95 = 0;
};

struct BatchSweepResult {
  std::vector<BatchCell> cells;
  std::uint64_t violations = 0;
  std::uint64_t gate_window = 0;  // the high-load row the gates read
  double rps_b1 = 0;
  double rps_b16 = 0;
  double rps_b32 = 0;
  double speedup_16v1 = 0;
  double speedup_32v1 = 0;
};

/// Requests/sec is completed requests over wall seconds — the client-fleet
/// analogue of phase 1's events/sec. Latency percentiles come from the
/// virtual-tick client histogram of the first seed, so they are
/// deterministic while the rates absorb machine noise.
BatchSweepResult measure_batching(bool smoke) {
  const std::uint64_t requests_per_client = smoke ? 16 : 32;
  const std::uint64_t seeds = smoke ? 3 : 6;
  const std::uint64_t windows[] = {2, 8, 16};
  const std::uint64_t batches[] = {1, 4, 16, 32};

  const InvariantRegistry reg = InvariantRegistry::standard_smr();
  (void)run_scenario(batch_spec(1, 8, requests_per_client, 1), reg);

  BatchSweepResult res;
  res.gate_window = 16;
  for (std::uint64_t window : windows) {
    double rps_b1 = 0;
    for (std::uint64_t batch : batches) {
      BatchCell cell;
      cell.batch = batch;
      cell.window = window;
      obs::HistogramData latency;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const RunOutcome out =
            run_scenario(batch_spec(batch, window, requests_per_client, seed),
                         reg);
        cell.completed += out.completed;
        if (out.violation) ++res.violations;
        if (seed == 1)
          if (const obs::HistogramData* h =
                  out.metrics.find_histogram("client.latency_ticks"))
            latency.merge(*h);
      }
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      if (secs > 0) cell.rps = static_cast<double>(cell.completed) / secs;
      if (batch == 1) rps_b1 = cell.rps;
      cell.speedup_vs_b1 = rps_b1 > 0 ? cell.rps / rps_b1 : 0;
      cell.client_p50 = latency.quantile(0.50);
      cell.client_p95 = latency.quantile(0.95);
      res.cells.push_back(cell);
      if (window == res.gate_window) {
        if (batch == 1) res.rps_b1 = cell.rps;
        if (batch == 16) {
          res.rps_b16 = cell.rps;
          res.speedup_16v1 = cell.speedup_vs_b1;
        }
        if (batch == 32) {
          res.rps_b32 = cell.rps;
          res.speedup_32v1 = cell.speedup_vs_b1;
        }
      }
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  std::string baseline_path = "bench/baseline_hotpath.json";
  std::string out_path = "BENCH_hotpath.json";
  std::string trace_out_path = "BENCH_trace.json";
  std::string curve_out_path = "BENCH_batch_curve.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke")
      smoke = true;
    else if (arg == "--check")
      check = true;
    else if (arg == "--baseline")
      baseline_path = value();
    else if (arg == "--out")
      out_path = value();
    else if (arg == "--trace-out")
      trace_out_path = value();
    else if (arg == "--curve-out")
      curve_out_path = value();
    else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--check] [--baseline PATH] "
                   "[--out PATH] [--trace-out PATH] [--curve-out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  double baseline_eps = 0;
  std::string baseline_text;
  {
    std::ifstream in(baseline_path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      baseline_text = ss.str();
      baseline_eps = json_number(baseline_text, "events_per_sec", 0);
    } else {
      std::fprintf(stderr, "note: baseline %s not found; speedup omitted\n",
                   baseline_path.c_str());
    }
  }

  std::printf("phase 1: throughput (%s)\n", smoke ? "smoke" : "full");
  const ThroughputResult tp = measure_throughput(smoke ? 1 : 6);
  const double speedup =
      baseline_eps > 0 ? tp.events_per_sec / baseline_eps : 0.0;
  std::printf(
      "  %.0f events/sec over %llu events (%llu runs)\n",
      tp.events_per_sec, static_cast<unsigned long long>(tp.events),
      static_cast<unsigned long long>(tp.runs));
  if (baseline_eps > 0)
    std::printf("  baseline %.0f events/sec -> %.2fx\n", baseline_eps,
                speedup);
  const double ring_share =
      tp.sim.executed > 0 ? static_cast<double>(tp.sim.ring_fast_path) /
                                static_cast<double>(tp.sim.scheduled)
                          : 0.0;
  const double memo_rate =
      tp.sig.verifies > 0 ? static_cast<double>(tp.sig.memo_hits) /
                                static_cast<double>(tp.sig.verifies)
                          : 0.0;
  std::printf(
      "  ring fast-path %.1f%%, peak queue %zu, verify memo %.1f%%, "
      "sha-ni %s\n",
      100.0 * ring_share, tp.sim.peak_pending, 100.0 * memo_rate,
      crypto::Sha256::hardware_accelerated() ? "yes" : "no");
  std::printf(
      "  verify batches %llu (%llu jobs, %llu lane MACs)\n",
      static_cast<unsigned long long>(tp.sig.batches),
      static_cast<unsigned long long>(tp.sig.batch_jobs),
      static_cast<unsigned long long>(tp.sig.lane_macs));
  std::printf(
      "  commit latency (virtual ticks): p50 %llu, p95 %llu, p99 %llu, "
      "max %llu over %llu slots\n",
      static_cast<unsigned long long>(tp.commit_latency.quantile(0.50)),
      static_cast<unsigned long long>(tp.commit_latency.quantile(0.95)),
      static_cast<unsigned long long>(tp.commit_latency.quantile(0.99)),
      static_cast<unsigned long long>(tp.commit_latency.max),
      static_cast<unsigned long long>(tp.commit_latency.count));
  std::printf(
      "  client latency (virtual ticks): p50 %llu, p95 %llu, p99 %llu, "
      "max %llu over %llu requests\n",
      static_cast<unsigned long long>(tp.client_latency.quantile(0.50)),
      static_cast<unsigned long long>(tp.client_latency.quantile(0.95)),
      static_cast<unsigned long long>(tp.client_latency.quantile(0.99)),
      static_cast<unsigned long long>(tp.client_latency.max),
      static_cast<unsigned long long>(tp.client_latency.count));

  std::printf("phase 2: parallel sweep\n");
  const SweepResult sw = measure_sweep();
  std::printf(
      "  %zu scenarios: serial %.3fs, parallel %.3fs on %zu threads "
      "(%.2fx), fingerprints %s\n",
      sw.scenarios, sw.serial_secs, sw.parallel_secs, sw.threads,
      sw.parallel_secs > 0 ? sw.serial_secs / sw.parallel_secs : 0.0,
      sw.fingerprints_identical ? "identical" : "MISMATCH");

  std::printf("phase 3: recovery catch-up\n");
  const RecoveryResult rec = measure_recovery(8);
  std::printf(
      "  %llu seeds: median %llu ticks restart->parity, %llu entries "
      "recovered, %s\n",
      static_cast<unsigned long long>(rec.seeds),
      static_cast<unsigned long long>(rec.catchup_ticks_median),
      static_cast<unsigned long long>(rec.entries_recovered),
      rec.all_caught_up ? "all caught up" : "CATCH-UP FAILED");

  std::printf("phase 4: batch x offered-load sweep\n");
  const BatchSweepResult bt = measure_batching(smoke);
  for (const BatchCell& c : bt.cells)
    std::printf(
        "  window=%2llu batch=%2llu: %8.0f req/s (%.2fx vs batch 1), "
        "client p50 %llu p95 %llu ticks, %llu completed\n",
        static_cast<unsigned long long>(c.window),
        static_cast<unsigned long long>(c.batch), c.rps, c.speedup_vs_b1,
        static_cast<unsigned long long>(c.client_p50),
        static_cast<unsigned long long>(c.client_p95),
        static_cast<unsigned long long>(c.completed));
  if (bt.violations > 0)
    std::printf("  INVARIANT VIOLATIONS: %llu\n",
                static_cast<unsigned long long>(bt.violations));

  {
    std::ofstream curve(curve_out_path);
    curve << "{\n"
          << "  \"scenario\": \"minbft-4replica-batch-curve\",\n"
          << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
          << "  \"gate_window\": " << bt.gate_window << ",\n"
          << "  \"cells\": [\n";
    for (std::size_t i = 0; i < bt.cells.size(); ++i) {
      const BatchCell& c = bt.cells[i];
      curve << "    {\"batch\": " << c.batch << ", \"window\": " << c.window
            << ", \"requests_per_sec\": " << c.rps
            << ", \"speedup_vs_b1\": " << c.speedup_vs_b1
            << ", \"client_p50_ticks\": " << c.client_p50
            << ", \"client_p95_ticks\": " << c.client_p95
            << ", \"completed\": " << c.completed << "}"
            << (i + 1 < bt.cells.size() ? "," : "") << "\n";
    }
    curve << "  ]\n}\n";
    std::printf("wrote %s\n", curve_out_path.c_str());
  }

  // One traced seed-1 run for the artifact: under UNIDIR_OBS_TRACING=OFF
  // this writes the empty-but-valid trace skeleton, which still validates.
  {
    ScenarioSpec traced = hotpath_spec(1);
    traced.trace = true;
    const RunOutcome rt =
        run_scenario(traced, InvariantRegistry::standard_smr());
    std::ofstream tout(trace_out_path, std::ios::binary);
    tout << rt.trace_json;
    std::printf("wrote %s (%zu bytes)\n", trace_out_path.c_str(),
                rt.trace_json.size());
  }

  {
    std::ofstream out(out_path);
    out << "{\n"
        << "  \"scenario\": \"minbft-4replica-hotpath\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"events_per_sec\": " << tp.events_per_sec << ",\n"
        << "  \"baseline_events_per_sec\": " << baseline_eps << ",\n"
        << "  \"speedup_vs_baseline\": " << speedup << ",\n"
        << "  \"events\": " << tp.events << ",\n"
        << "  \"runs\": " << tp.runs << ",\n"
        << "  \"ring_fast_path_share\": " << ring_share << ",\n"
        << "  \"peak_pending\": " << tp.sim.peak_pending << ",\n"
        << "  \"verify_memo_hit_rate\": " << memo_rate << ",\n"
        << "  \"verify_batches\": " << tp.sig.batches << ",\n"
        << "  \"verify_batch_jobs\": " << tp.sig.batch_jobs << ",\n"
        << "  \"verify_lane_macs\": " << tp.sig.lane_macs << ",\n"
        << "  \"sha_ni\": "
        << (crypto::Sha256::hardware_accelerated() ? "true" : "false")
        << ",\n"
        << "  \"commit_latency_p50_ticks\": "
        << tp.commit_latency.quantile(0.50) << ",\n"
        << "  \"commit_latency_p95_ticks\": "
        << tp.commit_latency.quantile(0.95) << ",\n"
        << "  \"commit_latency_p99_ticks\": "
        << tp.commit_latency.quantile(0.99) << ",\n"
        << "  \"commit_latency_max_ticks\": " << tp.commit_latency.max
        << ",\n"
        << "  \"commit_latency_samples\": " << tp.commit_latency.count
        << ",\n"
        << "  \"client_latency_p50_ticks\": "
        << tp.client_latency.quantile(0.50) << ",\n"
        << "  \"client_latency_p95_ticks\": "
        << tp.client_latency.quantile(0.95) << ",\n"
        << "  \"client_latency_p99_ticks\": "
        << tp.client_latency.quantile(0.99) << ",\n"
        << "  \"client_latency_max_ticks\": " << tp.client_latency.max
        << ",\n"
        << "  \"client_latency_samples\": " << tp.client_latency.count
        << ",\n"
        << "  \"sweep_scenarios\": " << sw.scenarios << ",\n"
        << "  \"sweep_threads\": " << sw.threads << ",\n"
        << "  \"sweep_serial_secs\": " << sw.serial_secs << ",\n"
        << "  \"sweep_parallel_secs\": " << sw.parallel_secs << ",\n"
        << "  \"sweep_fingerprints_identical\": "
        << (sw.fingerprints_identical ? "true" : "false") << ",\n"
        << "  \"sweep_combined_fingerprint\": \"" << sw.combined_fingerprint
        << "\",\n"
        << "  \"recovery_seeds\": " << rec.seeds << ",\n"
        << "  \"recovery_catchup_ticks_median\": "
        << rec.catchup_ticks_median << ",\n"
        << "  \"recovery_entries_recovered\": " << rec.entries_recovered
        << ",\n"
        << "  \"recovery_all_caught_up\": "
        << (rec.all_caught_up ? "true" : "false") << ",\n"
        << "  \"batch_gate_window\": " << bt.gate_window << ",\n"
        << "  \"batch_rps_b1\": " << bt.rps_b1 << ",\n"
        << "  \"batch_rps_b16\": " << bt.rps_b16 << ",\n"
        << "  \"batch_rps_b32\": " << bt.rps_b32 << ",\n"
        << "  \"batch_speedup_16v1\": " << bt.speedup_16v1 << ",\n"
        << "  \"batch_speedup_32v1\": " << bt.speedup_32v1 << ",\n"
        << "  \"batch_violations\": " << bt.violations << "\n"
        << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!sw.fingerprints_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel sweep fingerprints diverge from serial\n");
    return 1;
  }
  if (!rec.all_caught_up) {
    std::fprintf(stderr,
                 "FAIL: restarted replica never reached its peers' "
                 "execution frontier\n");
    return 1;
  }
  if (bt.violations > 0) {
    std::fprintf(stderr,
                 "FAIL: %llu invariant violations in the batching sweep\n",
                 static_cast<unsigned long long>(bt.violations));
    return 1;
  }
  if (check) {
    // Requests/sec must still scale with the batch: the best high-load
    // speedup at batch >= 16 carries the gate.
    const double best = std::max(bt.speedup_16v1, bt.speedup_32v1);
    if (best < kBatchSpeedupFloor) {
      std::fprintf(stderr,
                   "FAIL: batching speedup %.2fx at batch >= 16 is below "
                   "the %.1fx floor\n",
                   best, kBatchSpeedupFloor);
      return 1;
    }
    struct RpsGate {
      const char* key;
      double current;
    };
    const RpsGate rps_gates[] = {
        {"batch_rps_b1", bt.rps_b1},
        {"batch_rps_b16", bt.rps_b16},
    };
    for (const RpsGate& g : rps_gates) {
      const double base = json_number(baseline_text, g.key, 0);
      if (base <= 0) continue;  // baseline predates the batching sweep
      if (g.current < (1.0 - kRegressionTolerance) * base) {
        std::fprintf(stderr,
                     "FAIL: %s regressed >%.0f%% vs baseline "
                     "(%.0f < %.0f)\n",
                     g.key, 100.0 * kRegressionTolerance, g.current,
                     (1.0 - kRegressionTolerance) * base);
        return 1;
      }
    }
  }
  if (check && baseline_eps > 0 &&
      tp.events_per_sec < (1.0 - kRegressionTolerance) * baseline_eps) {
    std::fprintf(stderr,
                 "FAIL: events/sec regressed >%.0f%% vs baseline "
                 "(%.0f < %.0f)\n",
                 100.0 * kRegressionTolerance, tp.events_per_sec,
                 (1.0 - kRegressionTolerance) * baseline_eps);
    return 1;
  }
  if (check && !baseline_text.empty()) {
    struct LatencyGate {
      const char* key;
      std::uint64_t current;
    };
    const LatencyGate gates[] = {
        {"commit_latency_p50_ticks", tp.commit_latency.quantile(0.50)},
        {"commit_latency_p95_ticks", tp.commit_latency.quantile(0.95)},
        {"commit_latency_p99_ticks", tp.commit_latency.quantile(0.99)},
        {"client_latency_p50_ticks", tp.client_latency.quantile(0.50)},
        {"client_latency_p95_ticks", tp.client_latency.quantile(0.95)},
        {"client_latency_p99_ticks", tp.client_latency.quantile(0.99)},
    };
    for (const LatencyGate& g : gates) {
      const double base = json_number(baseline_text, g.key, 0);
      if (base <= 0) continue;  // baseline predates latency accounting
      if (static_cast<double>(g.current) >
          (1.0 + kLatencyTolerance) * base) {
        std::fprintf(stderr,
                     "FAIL: %s regressed >%.0f%% vs baseline "
                     "(%llu > %.0f)\n",
                     g.key, 100.0 * kLatencyTolerance,
                     static_cast<unsigned long long>(g.current),
                     (1.0 + kLatencyTolerance) * base);
        return 1;
      }
    }
  }
  return 0;
}
