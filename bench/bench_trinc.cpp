// Experiment E1 (performance side): throughput of the trusted-hardware
// attestation primitives — TrInc, A2M, A2M-over-TrInc, and the SGX USIG —
// plus the Theorem-1 construction's attest path (TrInc from SRB), whose
// cost is a *broadcast*, not a local signature: the gap between using
// hardware and simulating it from a broadcast primitive.
#include <benchmark/benchmark.h>

#include "broadcast/srb_hub.h"
#include "sim/adversaries.h"
#include "trusted/a2m.h"
#include "trusted/a2m_from_trinc.h"
#include "trusted/trinc.h"
#include "trusted/trinc_from_srb.h"
#include "trusted/usig.h"

namespace {

using namespace unidir;
using namespace unidir::trusted;

void BM_TrincAttest(benchmark::State& state) {
  crypto::KeyRegistry keys;
  TrincAuthority authority(keys);
  Trinket trinket = authority.make_trinket(0);
  const Bytes msg(128, 0x42);
  SeqNum c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trinket.attest(++c, msg));
  }
}
BENCHMARK(BM_TrincAttest);

void BM_TrincCheck(benchmark::State& state) {
  crypto::KeyRegistry keys;
  TrincAuthority authority(keys);
  Trinket trinket = authority.make_trinket(0);
  const auto attestation = *trinket.attest(1, Bytes(128, 0x42));
  for (auto _ : state) {
    benchmark::DoNotOptimize(authority.check(attestation, 0));
  }
}
BENCHMARK(BM_TrincCheck);

void BM_A2mAppend(benchmark::State& state) {
  crypto::KeyRegistry keys;
  A2mAuthority authority(keys);
  A2m device = authority.make_device(0);
  const LogId log = device.create_log();
  const Bytes value(128, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.append(log, value));
  }
}
BENCHMARK(BM_A2mAppend);

void BM_A2mLookupAttest(benchmark::State& state) {
  crypto::KeyRegistry keys;
  A2mAuthority authority(keys);
  A2m device = authority.make_device(0);
  const LogId log = device.create_log();
  (void)device.append(log, Bytes(128, 0x42));
  const Bytes nonce = bytes_of("challenge");
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.lookup(log, 1, nonce));
  }
}
BENCHMARK(BM_A2mLookupAttest);

void BM_A2mOverTrincAppend(benchmark::State& state) {
  crypto::KeyRegistry keys;
  TrincAuthority authority(keys);
  A2mFromTrinc device(authority.make_trinket(0));
  const LogId log = device.create_log();
  const Bytes value(128, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.append(log, value));
  }
}
BENCHMARK(BM_A2mOverTrincAppend);

void BM_UsigCreateUi(benchmark::State& state) {
  crypto::KeyRegistry keys;
  UsigEnclave usig(keys);
  const Bytes msg(128, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(usig.create_ui(msg));
  }
}
BENCHMARK(BM_UsigCreateUi);

void BM_UsigVerifyUi(benchmark::State& state) {
  crypto::KeyRegistry keys;
  UsigEnclave usig(keys);
  const Bytes msg(128, 0x42);
  const UniqueIdentifier ui = usig.create_ui(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(UsigEnclave::verify_ui(keys, usig.key(), ui, msg));
  }
}
BENCHMARK(BM_UsigVerifyUi);

/// Theorem-1 attest: one attestation = one SRB broadcast through the hub
/// to n processes, i.e. O(n) network messages instead of one local MAC.
/// virtual_ticks counts simulated time until every process can check it.
void BM_TrincFromSrbAttest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t total_msgs = 0;
  std::uint64_t total_ticks = 0;
  for (auto _ : state) {
    class Host final : public sim::Process {};
    sim::World w(42, std::make_unique<sim::RandomDelayAdversary>(1, 5));
    broadcast::SrbHub hub(w, 1);
    std::vector<std::unique_ptr<broadcast::SrbHubEndpoint>> eps;
    std::vector<std::unique_ptr<TrincFromSrb>> trincs;
    for (std::size_t i = 0; i < n; ++i) {
      auto& host = w.spawn<Host>();
      eps.push_back(hub.make_endpoint(host));
      trincs.push_back(std::make_unique<TrincFromSrb>(*eps.back(), host.id()));
    }
    w.start();
    SeqNum c = 0;
    for (int k = 0; k < 10; ++k)
      benchmark::DoNotOptimize(trincs[0]->attest(++c, Bytes(128, 0x42)));
    w.run_to_quiescence();
    total_msgs += w.network().stats().messages_sent;
    total_ticks += w.now();
  }
  state.counters["net_msgs/attest"] = static_cast<double>(total_msgs) /
                                      (10.0 * static_cast<double>(state.iterations()));
  state.counters["virtual_ticks"] =
      static_cast<double>(total_ticks) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_TrincFromSrbAttest)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
