// bench_realnet: drive a LIVE MinBFT UDP cluster to saturation and report
// the throughput/latency curve plus the socket-path economics.
//
// Everything else in bench/ measures the simulator; this binary measures
// the real backend (DESIGN.md §13/§15): four replica Worlds, each on its
// own RealRuntime with its own UDP socket and OS thread, plus one client
// World whose sharded RealRuntime hosts an SmrClient fleet — the dsnet
// bench-client shape, in-process so CI can run it. Workloads come from
// sim/workload.h specs: the curve points are closed-loop fleets of
// increasing concurrency (offered load collapses when latency grows, so
// the knee is honest), and the frame-conservation run is a paced open-loop
// fleet (no overload, so loopback UDP loses nothing and the send/receive
// counters must balance EXACTLY).
//
// Emits BENCH_realnet.json (schema: bench/realnet_schema.json, validated
// in CI by tools/validate_trace.py). Two figures of merit beyond the
// curve itself:
//
//   * syscalls-per-datagram at the saturation point — < 1.0 iff
//     recvmmsg/sendmmsg actually batch (each productive recvmmsg returning
//     k datagrams costs 1/k syscalls each); gated under --check on the
//     mmsg path in full runs;
//   * the frame-conservation identity on the paced run — every frame a
//     handler tried to send is accounted as kernel-accepted, send-failed,
//     or refused-oversized, and every kernel-accepted frame shows up
//     received or rejected-malformed on the far side:
//         sent == received + malformed   (and failed == oversized == 0)
//     This is the regression gate for the silent send-path loss this
//     PR's bugfixes closed: before, kernel rejections vanished without a
//     counter and the identity was uncheckable.
//
// Usage:
//   bench_realnet [--smoke] [--check] [--out FILE] [--shards K]
//                 [--portable] [--seed S]
//   --smoke     tiny workload (CI): 2 curve points' worth of requests
//   --check     enforce gates (conservation exact, syscall ratios, shard
//               balance) and exit 1 on violation
//   --portable  force the one-datagram recvfrom/sendto path everywhere
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "agreement/client.h"
#include "agreement/minbft.h"
#include "agreement/state_machines.h"
#include "agreement/usig_directory.h"
#include "runtime/real_runtime.h"
#include "sim/workload.h"
#include "sim/world.h"

using namespace unidir;
using namespace unidir::agreement;

namespace {

using SteadyClock = std::chrono::steady_clock;

struct ClusterConfig {
  std::size_t replicas = 4;
  std::size_t clients = 2;
  std::size_t outstanding = 1;
  std::uint64_t requests_per_client = 8;
  bool open_loop = false;
  Time mean_interarrival = 10;   // open-loop pacing, in ticks
  std::size_t shards = 2;        // client runtime event-loop shards
  std::uint64_t tick_us = 200;
  std::uint64_t seed = 7;
  std::uint64_t timeout_s = 60;
  bool use_mmsg = true;
  bool settle = false;  // poll counters to stability before reading them
};

struct ClusterResult {
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t gave_up = 0;
  double wall_secs = 0;
  std::vector<Time> latencies;  // ticks, all clients, completion order
  runtime::UdpTransportStats totals{};  // summed over every runtime
  std::vector<runtime::RuntimeStats> client_shards;
  bool receiver_dead = false;
  bool timed_out = false;
};

/// One replica's whole stack: its World (owning the runtime), the USIG
/// directory backing its enclave, and the thread its loop runs on.
struct ReplicaNode {
  std::unique_ptr<sim::World> world;
  std::unique_ptr<SgxUsigDirectory> usigs;
  runtime::RealRuntime* rt = nullptr;
  std::thread thread;
};

void accumulate(runtime::UdpTransportStats& t,
                const runtime::UdpTransportStats& u) {
  t.frames_sent += u.frames_sent;
  t.frames_received += u.frames_received;
  t.frames_malformed += u.frames_malformed;
  t.frames_no_peer += u.frames_no_peer;
  t.loopback_messages += u.loopback_messages;
  t.frames_corrupt_tx += u.frames_corrupt_tx;
  t.frames_send_failed += u.frames_send_failed;
  t.frames_oversized += u.frames_oversized;
  t.recv_syscalls += u.recv_syscalls;
  t.recv_timeouts += u.recv_timeouts;
  t.send_syscalls += u.send_syscalls;
  t.receiver_dead = t.receiver_dead || u.receiver_dead;
}

/// Builds a full cluster (fresh sockets, fresh counters), runs the given
/// workload to completion, and tears it down. One call per data point so
/// every point's socket counters are its own.
ClusterResult run_cluster(const ClusterConfig& cfg) {
  const std::size_t total = cfg.replicas + cfg.clients;
  const std::size_t f = (cfg.replicas - 1) / 2;

  // Bind every runtime to an ephemeral loopback port first, then
  // cross-wire the peer tables once all ports are known. Runtime index i
  // < replicas serves replica i; the last one serves the whole client
  // fleet (all client ids share its socket — frames carry the destination
  // id, and the sharded loop routes each to its owner's shard).
  std::vector<std::unique_ptr<runtime::RealRuntime>> rts;
  for (std::size_t i = 0; i <= cfg.replicas; ++i) {
    runtime::RealRuntimeOptions ropt;
    ropt.tick_ns = cfg.tick_us * 1000;
    ropt.listen = "127.0.0.1:0";
    ropt.use_recvmmsg = cfg.use_mmsg;
    ropt.use_sendmmsg = cfg.use_mmsg;
    if (i == cfg.replicas) ropt.shards = cfg.shards;
    rts.push_back(std::make_unique<runtime::RealRuntime>(ropt));
  }
  std::vector<std::uint16_t> ports;
  for (auto& rt : rts) ports.push_back(rt->bound_port());
  for (std::size_t i = 0; i < rts.size(); ++i)
    for (ProcessId p = 0; p < total; ++p) {
      const std::size_t owner = p < cfg.replicas ? p : cfg.replicas;
      if (owner == i) continue;  // hosted here: loopback, not the socket
      rts[i]->add_peer(p, "127.0.0.1", ports[owner]);
    }

  MinBftReplica::Options opt;
  opt.f = f;
  for (ProcessId p = 0; p < cfg.replicas; ++p) opt.replicas.push_back(p);
  // Commit latency at the saturation knee can cross the default timeout;
  // a spurious view change mid-measurement would poison the curve.
  opt.view_change_timeout = 2500;

  std::vector<std::unique_ptr<ReplicaNode>> nodes;
  for (std::size_t i = 0; i < cfg.replicas; ++i) {
    auto node = std::make_unique<ReplicaNode>();
    node->rt = rts[i].get();
    node->world = std::make_unique<sim::World>(cfg.seed, std::move(rts[i]));
    node->usigs = std::make_unique<SgxUsigDirectory>(node->world->keys());
    node->world->provision(total);
    // Materialize enclaves in id order in EVERY world so all key
    // registries derive identically (DESIGN.md §13).
    for (ProcessId p = 0; p < cfg.replicas; ++p) node->usigs->enclave_for(p);
    node->world->spawn_at<MinBftReplica>(static_cast<ProcessId>(i), opt,
                                         *node->usigs,
                                         std::make_unique<KvStateMachine>());
    nodes.push_back(std::move(node));
  }

  runtime::RealRuntime* client_rt = rts[cfg.replicas].get();
  sim::World cworld(cfg.seed, std::move(rts[cfg.replicas]));
  SgxUsigDirectory cusigs(cworld.keys());
  cworld.provision(total);
  for (ProcessId p = 0; p < cfg.replicas; ++p) cusigs.enclave_for(p);

  SmrClient::Options copt;
  copt.replicas = opt.replicas;
  copt.f = f;
  copt.max_attempts = 10;
  copt.resend_jitter = 64;
  // Open loop must not self-throttle: arrivals are timer-driven, so the
  // pipeline window just needs to be out of the way.
  copt.max_outstanding =
      cfg.open_loop ? cfg.requests_per_client : cfg.outstanding;
  std::vector<SmrClient*> fleet;
  for (std::size_t c = 0; c < cfg.clients; ++c)
    fleet.push_back(&cworld.spawn_at<SmrClient>(
        static_cast<ProcessId>(cfg.replicas + c), copt));

  sim::WorkloadSpec spec;
  spec.clients = cfg.clients;
  spec.requests_per_client = cfg.requests_per_client;
  spec.open_loop = cfg.open_loop;
  spec.mean_interarrival = cfg.mean_interarrival;
  spec.max_outstanding = copt.max_outstanding;
  spec.key_space = 16;
  spec.seed = cfg.seed + 1;
  const auto plans = spec.plan();

  // The run_until predicate executes on the client runtime's shard 0
  // while other shards run handlers, so it may read ONLY atomics —
  // SmrClient counters are shard-confined. Completion is therefore
  // counted through the done callbacks (which run on the owning shard)
  // into one shared atomic.
  std::atomic<std::uint64_t> done{0};
  auto op_for = [](std::uint64_t key, std::uint64_t i) {
    const std::string k = "k" + std::to_string(key);
    return i % 3 == 2 ? KvStateMachine::get_op(k)
                      : KvStateMachine::put_op(k, "v" + std::to_string(i));
  };
  for (std::size_t c = 0; c < fleet.size(); ++c) {
    const auto& arrivals = plans[c].arrivals;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      Bytes op = op_for(arrivals[i].key, i);
      auto done_cb = [&done](const Bytes&) {
        done.fetch_add(1, std::memory_order_relaxed);
      };
      if (cfg.open_loop) {
        // Pre-run arm: the submission fires on the owning client's shard
        // at its planned arrival tick, completions notwithstanding.
        SmrClient* cl = fleet[c];
        cworld.runtime().arm_for(
            static_cast<ProcessId>(cfg.replicas + c), arrivals[i].at,
            [cl, op = std::move(op), done_cb]() mutable {
              cl->submit(std::move(op), done_cb);
            });
      } else {
        fleet[c]->submit(std::move(op), done_cb);
      }
    }
  }

  // Launch: replicas first (each loop on its own thread), then the client
  // fleet on the calling thread. All Worlds exist before any loop runs,
  // so every receiver thread has its deliver hook installed.
  std::atomic<bool> stop_replicas{false};
  for (auto& node : nodes) node->world->start();
  for (auto& node : nodes) {
    ReplicaNode* n = node.get();
    n->thread = std::thread([n, &stop_replicas] {
      n->world->run_until(
          [n, &stop_replicas] {
            return stop_replicas.load(std::memory_order_relaxed) ||
                   n->rt->stats().receiver_dead;
          },
          SIZE_MAX);
    });
  }

  ClusterResult res;
  res.offered = spec.total_requests();
  cworld.start();
  const auto deadline =
      SteadyClock::now() + std::chrono::seconds(cfg.timeout_s);
  const auto t0 = SteadyClock::now();
  cworld.run_until(
      [&] {
        return done.load(std::memory_order_relaxed) >= res.offered ||
               client_rt->stats().receiver_dead ||
               SteadyClock::now() >= deadline;
      },
      SIZE_MAX);
  res.wall_secs =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  res.timed_out = SteadyClock::now() >= deadline &&
                  done.load(std::memory_order_relaxed) < res.offered;

  // The client loops have joined (run_until returns after its internal
  // shard threads exit), so fleet state is safe to read from here.
  for (SmrClient* cl : fleet) {
    res.completed += cl->completed();
    res.gave_up += cl->gave_up();
    res.latencies.insert(res.latencies.end(), cl->latencies().begin(),
                         cl->latencies().end());
  }

  auto totals_now = [&] {
    runtime::UdpTransportStats t{};
    for (auto& node : nodes) accumulate(t, node->rt->udp_stats());
    accumulate(t, client_rt->udp_stats());
    return t;
  };
  if (cfg.settle) {
    // Conservation needs a quiesced cluster: replicas may still be
    // exchanging commit/checkpoint traffic when the last reply lands.
    // Poll until two consecutive reads agree (bounded, ~2s worst case).
    runtime::UdpTransportStats prev = totals_now();
    for (int i = 0; i < 40; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const runtime::UdpTransportStats cur = totals_now();
      if (cur.frames_sent == prev.frames_sent &&
          cur.frames_received == prev.frames_received &&
          cur.frames_sent == cur.frames_received + cur.frames_malformed)
        break;
      prev = cur;
    }
  }
  res.totals = totals_now();
  for (std::size_t s = 0; s < client_rt->execution_shards(); ++s)
    res.client_shards.push_back(client_rt->shard_stats(s));
  res.receiver_dead = res.totals.receiver_dead;

  stop_replicas.store(true, std::memory_order_relaxed);
  for (auto& node : nodes) node->rt->stop();
  for (auto& node : nodes)
    if (node->thread.joinable()) node->thread.join();
  return res;
}

std::uint64_t pct_us(std::vector<Time> lat, double q, std::uint64_t tick_us) {
  if (lat.empty()) return 0;
  std::sort(lat.begin(), lat.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(lat.size() - 1) + 0.5);
  return lat[std::min(idx, lat.size() - 1)] * tick_us;
}

struct CurvePoint {
  ClusterConfig cfg;
  ClusterResult res;
  double rps = 0;
  std::uint64_t p50_us = 0, p99_us = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, check = false, portable = false;
  std::string out = "BENCH_realnet.json";
  std::size_t shards = 2;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--smoke") smoke = true;
    else if (flag == "--check") check = true;
    else if (flag == "--portable") portable = true;
    else if (flag == "--out" && i + 1 < argc) out = argv[++i];
    else if (flag == "--shards" && i + 1 < argc)
      shards = std::strtoul(argv[++i], nullptr, 10);
    else if (flag == "--seed" && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--check] [--portable] "
                   "[--out FILE] [--shards K] [--seed S]\n",
                   argv[0]);
      return 2;
    }
  }
#if defined(__linux__)
  const bool mmsg_compiled = !portable;
#else
  const bool mmsg_compiled = false;
#endif

  ClusterConfig base;
  base.shards = shards;
  base.seed = seed;
  base.use_mmsg = !portable;
  base.timeout_s = smoke ? 30 : 60;

  // Closed-loop curve: concurrency (clients x outstanding window) doubles
  // per point; the knee where rps flattens and p99 grows is saturation.
  struct Load {
    std::size_t clients, outstanding;
    std::uint64_t per_client;
  };
  std::vector<Load> loads;
  if (smoke) {
    loads = {{2, 2, 6}, {4, 4, 6}};
  } else {
    loads = {{1, 1, 100}, {4, 4, 100}, {8, 8, 100}, {16, 16, 75}};
  }

  std::vector<CurvePoint> curve;
  bool ok = true;
  for (const Load& l : loads) {
    CurvePoint pt;
    pt.cfg = base;
    pt.cfg.clients = l.clients;
    pt.cfg.outstanding = l.outstanding;
    pt.cfg.requests_per_client = l.per_client;
    std::printf("curve: clients=%zu outstanding=%zu requests=%llu ...\n",
                l.clients, l.outstanding,
                static_cast<unsigned long long>(l.clients * l.per_client));
    std::fflush(stdout);
    pt.res = run_cluster(pt.cfg);
    pt.rps = pt.res.wall_secs > 0
                 ? static_cast<double>(pt.res.completed) / pt.res.wall_secs
                 : 0;
    pt.p50_us = pct_us(pt.res.latencies, 0.50, pt.cfg.tick_us);
    pt.p99_us = pct_us(pt.res.latencies, 0.99, pt.cfg.tick_us);
    std::printf(
        "  -> %llu/%llu committed in %.2fs (%.0f req/s, p50=%lluus "
        "p99=%lluus, recv spd=%.3f send spd=%.3f)\n",
        static_cast<unsigned long long>(pt.res.completed),
        static_cast<unsigned long long>(pt.res.offered), pt.res.wall_secs,
        pt.rps, static_cast<unsigned long long>(pt.p50_us),
        static_cast<unsigned long long>(pt.p99_us),
        pt.res.totals.recv_syscalls_per_datagram(),
        pt.res.totals.send_syscalls_per_datagram());
    if (pt.res.completed < pt.res.offered || pt.res.gave_up > 0 ||
        pt.res.receiver_dead || pt.res.timed_out) {
      std::fprintf(stderr,
                   "FAIL: point clients=%zu outstanding=%zu: "
                   "completed=%llu/%llu gave_up=%llu receiver_dead=%d "
                   "timed_out=%d\n",
                   l.clients, l.outstanding,
                   static_cast<unsigned long long>(pt.res.completed),
                   static_cast<unsigned long long>(pt.res.offered),
                   static_cast<unsigned long long>(pt.res.gave_up),
                   pt.res.receiver_dead ? 1 : 0, pt.res.timed_out ? 1 : 0);
      ok = false;
    }
    curve.push_back(std::move(pt));
  }

  // Saturation = the measured-best point; its socket economics are the
  // headline (batching only matters when there is something to batch).
  const CurvePoint* sat = &curve.front();
  for (const CurvePoint& pt : curve)
    if (pt.rps > sat->rps) sat = &pt;

  // Frame conservation on a PACED open-loop run: arrival gaps of
  // mean_interarrival ticks keep the cluster far from overload, so
  // loopback UDP drops nothing and the identity must hold exactly.
  ClusterConfig ccons = base;
  ccons.clients = 2;
  ccons.open_loop = true;
  ccons.mean_interarrival = smoke ? 10 : 25;
  ccons.requests_per_client = smoke ? 4 : 20;
  ccons.settle = true;
  std::printf("conservation: paced open-loop, %llu requests ...\n",
              static_cast<unsigned long long>(ccons.clients *
                                              ccons.requests_per_client));
  std::fflush(stdout);
  const ClusterResult cons = run_cluster(ccons);
  const auto& ct = cons.totals;
  const std::int64_t cons_delta =
      static_cast<std::int64_t>(ct.frames_sent) -
      static_cast<std::int64_t>(ct.frames_received + ct.frames_malformed);
  const bool cons_ok = cons_delta == 0 && ct.frames_send_failed == 0 &&
                       ct.frames_oversized == 0 && ct.frames_malformed == 0 &&
                       ct.frames_no_peer == 0;
  std::printf(
      "  -> sent=%llu received=%llu malformed=%llu failed=%llu "
      "oversized=%llu delta=%lld %s\n",
      static_cast<unsigned long long>(ct.frames_sent),
      static_cast<unsigned long long>(ct.frames_received),
      static_cast<unsigned long long>(ct.frames_malformed),
      static_cast<unsigned long long>(ct.frames_send_failed),
      static_cast<unsigned long long>(ct.frames_oversized),
      static_cast<long long>(cons_delta), cons_ok ? "(conserved)" : "");
  if (cons.completed < cons.offered || cons.receiver_dead || cons.timed_out) {
    std::fprintf(stderr, "FAIL: conservation run incomplete: %llu/%llu\n",
                 static_cast<unsigned long long>(cons.completed),
                 static_cast<unsigned long long>(cons.offered));
    ok = false;
  }

  std::uint64_t shard_exec_min = UINT64_MAX, shard_exec_max = 0;
  for (const auto& ss : sat->res.client_shards) {
    shard_exec_min = std::min(shard_exec_min, ss.executed);
    shard_exec_max = std::max(shard_exec_max, ss.executed);
  }
  if (sat->res.client_shards.empty()) shard_exec_min = 0;

  // ---- report ---------------------------------------------------------------
  FILE* fp = std::fopen(out.c_str(), "w");
  if (fp == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(fp, "{\n");
  std::fprintf(fp, "  \"scenario\": \"minbft-4replica-realnet-udp\",\n");
  std::fprintf(fp, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(fp, "  \"tick_us\": %llu,\n",
               static_cast<unsigned long long>(base.tick_us));
  std::fprintf(fp, "  \"replicas\": %zu,\n", base.replicas);
  std::fprintf(fp, "  \"client_shards\": %zu,\n", shards);
  std::fprintf(fp, "  \"recv_batch\": 32,\n");
  std::fprintf(fp, "  \"send_batch\": 64,\n");
  std::fprintf(fp, "  \"mmsg_compiled\": %s,\n",
               mmsg_compiled ? "true" : "false");
  std::fprintf(fp, "  \"curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const CurvePoint& pt = curve[i];
    std::fprintf(
        fp,
        "    {\"clients\": %zu, \"outstanding\": %zu, \"offered\": %llu, "
        "\"completed\": %llu, \"gave_up\": %llu, \"wall_secs\": %.6f, "
        "\"rps\": %.3f, \"p50_us\": %llu, \"p99_us\": %llu, "
        "\"recv_spd\": %.6f, \"send_spd\": %.6f}%s\n",
        pt.cfg.clients, pt.cfg.outstanding,
        static_cast<unsigned long long>(pt.res.offered),
        static_cast<unsigned long long>(pt.res.completed),
        static_cast<unsigned long long>(pt.res.gave_up), pt.res.wall_secs,
        pt.rps, static_cast<unsigned long long>(pt.p50_us),
        static_cast<unsigned long long>(pt.p99_us),
        pt.res.totals.recv_syscalls_per_datagram(),
        pt.res.totals.send_syscalls_per_datagram(),
        i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(fp, "  ],\n");
  std::fprintf(fp, "  \"sat_clients\": %zu,\n", sat->cfg.clients);
  std::fprintf(fp, "  \"sat_outstanding\": %zu,\n", sat->cfg.outstanding);
  std::fprintf(fp, "  \"sat_rps\": %.3f,\n", sat->rps);
  std::fprintf(fp, "  \"sat_recv_syscalls_per_datagram\": %.6f,\n",
               sat->res.totals.recv_syscalls_per_datagram());
  std::fprintf(fp, "  \"sat_send_syscalls_per_datagram\": %.6f,\n",
               sat->res.totals.send_syscalls_per_datagram());
  std::fprintf(fp, "  \"sat_frames_sent\": %llu,\n",
               static_cast<unsigned long long>(sat->res.totals.frames_sent));
  std::fprintf(
      fp, "  \"sat_frames_received\": %llu,\n",
      static_cast<unsigned long long>(sat->res.totals.frames_received));
  std::fprintf(
      fp, "  \"sat_frames_send_failed\": %llu,\n",
      static_cast<unsigned long long>(sat->res.totals.frames_send_failed));
  std::fprintf(
      fp, "  \"sat_frames_oversized\": %llu,\n",
      static_cast<unsigned long long>(sat->res.totals.frames_oversized));
  std::fprintf(
      fp, "  \"sat_frames_malformed\": %llu,\n",
      static_cast<unsigned long long>(sat->res.totals.frames_malformed));
  std::fprintf(fp, "  \"sat_shard_executed_min\": %llu,\n",
               static_cast<unsigned long long>(shard_exec_min));
  std::fprintf(fp, "  \"sat_shard_executed_max\": %llu,\n",
               static_cast<unsigned long long>(shard_exec_max));
  std::fprintf(fp, "  \"receiver_dead\": %s,\n",
               (sat->res.receiver_dead || cons.receiver_dead) ? "true"
                                                              : "false");
  std::fprintf(fp, "  \"cons_offered\": %llu,\n",
               static_cast<unsigned long long>(cons.offered));
  std::fprintf(fp, "  \"cons_completed\": %llu,\n",
               static_cast<unsigned long long>(cons.completed));
  std::fprintf(fp, "  \"cons_frames_sent\": %llu,\n",
               static_cast<unsigned long long>(ct.frames_sent));
  std::fprintf(fp, "  \"cons_frames_received\": %llu,\n",
               static_cast<unsigned long long>(ct.frames_received));
  std::fprintf(fp, "  \"cons_frames_malformed\": %llu,\n",
               static_cast<unsigned long long>(ct.frames_malformed));
  std::fprintf(fp, "  \"cons_frames_send_failed\": %llu,\n",
               static_cast<unsigned long long>(ct.frames_send_failed));
  std::fprintf(fp, "  \"cons_frames_oversized\": %llu,\n",
               static_cast<unsigned long long>(ct.frames_oversized));
  std::fprintf(fp, "  \"cons_frames_no_peer\": %llu,\n",
               static_cast<unsigned long long>(ct.frames_no_peer));
  std::fprintf(fp, "  \"cons_delta\": %lld,\n",
               static_cast<long long>(cons_delta));
  std::fprintf(fp, "  \"cons_ok\": %s\n", cons_ok ? "true" : "false");
  std::fprintf(fp, "}\n");
  std::fclose(fp);
  std::printf("wrote %s\n", out.c_str());

  // ---- gates ----------------------------------------------------------------
  if (check) {
    if (!cons_ok) {
      std::fprintf(stderr,
                   "CHECK FAIL: frame conservation violated "
                   "(delta=%lld failed=%llu oversized=%llu malformed=%llu "
                   "no_peer=%llu)\n",
                   static_cast<long long>(cons_delta),
                   static_cast<unsigned long long>(ct.frames_send_failed),
                   static_cast<unsigned long long>(ct.frames_oversized),
                   static_cast<unsigned long long>(ct.frames_malformed),
                   static_cast<unsigned long long>(ct.frames_no_peer));
      ok = false;
    }
    const double spd = sat->res.totals.recv_syscalls_per_datagram();
    // Productive receive syscalls each return >= 1 datagram, so the ratio
    // can never exceed 1; strictly below 1 (real batching) is demanded of
    // full runs on the mmsg path — smoke workloads are too small to
    // guarantee concurrent arrivals.
    if (spd > 1.0 + 1e-9) {
      std::fprintf(stderr, "CHECK FAIL: recv syscalls/datagram %.4f > 1\n",
                   spd);
      ok = false;
    }
    if (!smoke && mmsg_compiled && spd >= 1.0) {
      std::fprintf(stderr,
                   "CHECK FAIL: recv syscalls/datagram %.4f at saturation "
                   "(recvmmsg is not batching)\n",
                   spd);
      ok = false;
    }
    if (shards >= 2 && shard_exec_min == 0) {
      std::fprintf(stderr,
                   "CHECK FAIL: an event-loop shard executed nothing "
                   "(fleet is not actually sharded)\n");
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
