// Experiment E2/E4 (performance side): cost of one round under each round
// implementation, swept over group size. Counters report simulated
// virtual time per round and shared-memory operations / network messages
// per round — the quantities that distinguish the models, since wall time
// only measures the simulator.
//
// Also runs the DESIGN.md §6 ablation: full re-reads vs incremental reads
// in the shared-memory unidirectional round.
#include <benchmark/benchmark.h>

#include "broadcast/rb_uni_round.h"
#include "broadcast/srb_hub.h"
#include "rounds/msg_rounds.h"
#include "rounds/shmem_uni_round.h"
#include "sim/adversaries.h"

namespace {

using namespace unidir;
using namespace unidir::rounds;

constexpr sim::Channel kRoundCh = 1;
constexpr Time kDelta = 4;
constexpr int kRoundsPerRun = 10;

class Runner final : public sim::Process {
 public:
  std::unique_ptr<RoundDriver> driver;
  int target = kRoundsPerRun;

 protected:
  void on_start() override { go(); }

 private:
  void go() {
    if (driver->completed_rounds() >= static_cast<RoundNum>(target)) return;
    driver->start_round(Bytes(64, 0x42),
                        [this](RoundNum, const std::vector<Received>&) {
                          go();
                        });
  }
};

struct RunStats {
  double virtual_ticks_per_round = 0;
  double ops_per_round = 0;  // memory ops or network messages
};

template <typename MakeDriver>
RunStats run_rounds(std::size_t n, MakeDriver make_driver, bool shmem) {
  sim::World w(7, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
  shmem::MemoryHost memory(w.simulator(), sim::Rng(11));
  ShmemRoundBoard board(n);
  std::vector<Runner*> runners;
  for (std::size_t i = 0; i < n; ++i) runners.push_back(&w.spawn<Runner>());
  for (std::size_t i = 0; i < n; ++i)
    runners[i]->driver = make_driver(*runners[i], memory, board,
                                     static_cast<ProcessId>(i), w);
  w.start();
  w.run_to_quiescence();
  RunStats out;
  const double total_rounds = static_cast<double>(n) * kRoundsPerRun;
  out.virtual_ticks_per_round = static_cast<double>(w.now()) / kRoundsPerRun;
  out.ops_per_round =
      (shmem ? static_cast<double>(memory.invocations())
             : static_cast<double>(w.network().stats().messages_sent)) /
      total_rounds;
  return out;
}

void report(benchmark::State& state, const RunStats& stats) {
  state.counters["virtual_ticks/round"] = stats.virtual_ticks_per_round;
  state.counters["ops/round"] = stats.ops_per_round;
}

void BM_ShmemUniRound_FullReads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RunStats stats;
  for (auto _ : state) {
    stats = run_rounds(
        n,
        [](sim::Process&, shmem::MemoryHost& memory, ShmemRoundBoard& board,
           ProcessId self, sim::World&) -> std::unique_ptr<RoundDriver> {
          auto d = std::make_unique<ShmemUniRoundDriver>(memory, board, self);
          d->set_full_reads(true);
          return d;
        },
        /*shmem=*/true);
  }
  report(state, stats);
}
BENCHMARK(BM_ShmemUniRound_FullReads)->Arg(3)->Arg(5)->Arg(9)->Arg(17)->Arg(33);

void BM_ShmemUniRound_IncrementalReads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RunStats stats;
  for (auto _ : state) {
    stats = run_rounds(
        n,
        [](sim::Process&, shmem::MemoryHost& memory, ShmemRoundBoard& board,
           ProcessId self, sim::World&) -> std::unique_ptr<RoundDriver> {
          auto d = std::make_unique<ShmemUniRoundDriver>(memory, board, self);
          d->set_full_reads(false);
          return d;
        },
        /*shmem=*/true);
  }
  report(state, stats);
}
BENCHMARK(BM_ShmemUniRound_IncrementalReads)
    ->Arg(3)->Arg(5)->Arg(9)->Arg(17)->Arg(33);

void BM_DeltaSyncUniRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RunStats stats;
  for (auto _ : state) {
    stats = run_rounds(
        n,
        [](sim::Process& host, shmem::MemoryHost&, ShmemRoundBoard&,
           ProcessId, sim::World&) -> std::unique_ptr<RoundDriver> {
          return std::make_unique<DeltaSyncRoundDriver>(host, kRoundCh,
                                                        2 * kDelta);
        },
        /*shmem=*/false);
  }
  report(state, stats);
}
BENCHMARK(BM_DeltaSyncUniRound)->Arg(3)->Arg(5)->Arg(9)->Arg(17)->Arg(33);

void BM_LockstepBiRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RunStats stats;
  for (auto _ : state) {
    stats = run_rounds(
        n,
        [](sim::Process& host, shmem::MemoryHost&, ShmemRoundBoard&,
           ProcessId, sim::World&) -> std::unique_ptr<RoundDriver> {
          return std::make_unique<LockstepBiRoundDriver>(host, kRoundCh,
                                                         kDelta + 1);
        },
        /*shmem=*/false);
  }
  report(state, stats);
}
BENCHMARK(BM_LockstepBiRound)->Arg(3)->Arg(5)->Arg(9)->Arg(17)->Arg(33);

void BM_AsyncZeroRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RunStats stats;
  for (auto _ : state) {
    stats = run_rounds(
        n,
        [n](sim::Process& host, shmem::MemoryHost&, ShmemRoundBoard&,
            ProcessId, sim::World&) -> std::unique_ptr<RoundDriver> {
          return std::make_unique<AsyncZeroRoundDriver>(host, kRoundCh, n,
                                                        (n - 1) / 3);
        },
        /*shmem=*/false);
  }
  report(state, stats);
}
BENCHMARK(BM_AsyncZeroRound)->Arg(4)->Arg(7)->Arg(10)->Arg(16)->Arg(34);

/// The f=1 corner case: a unidirectional round costs two RB phases.
void BM_RbUniRoundF1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t ticks = 0;
  std::uint64_t msgs = 0;
  std::uint64_t iters = 0;
  for (auto _ : state) {
    sim::World w(7, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
    auto hub = std::make_unique<broadcast::SrbHub>(w, 99);
    std::vector<Runner*> runners;
    for (std::size_t i = 0; i < n; ++i) runners.push_back(&w.spawn<Runner>());
    for (auto* r : runners)
      r->driver = std::make_unique<broadcast::RbUniRoundDriver>(*r, *hub);
    w.start();
    w.run_to_quiescence();
    ticks += w.now();
    msgs += w.network().stats().messages_sent;
    ++iters;
  }
  state.counters["virtual_ticks/round"] =
      static_cast<double>(ticks) / static_cast<double>(iters) / kRoundsPerRun;
  state.counters["ops/round"] =
      static_cast<double>(msgs) /
      (static_cast<double>(iters * n) * kRoundsPerRun);
}
BENCHMARK(BM_RbUniRoundF1)->Arg(3)->Arg(5)->Arg(9)->Arg(17);

}  // namespace
