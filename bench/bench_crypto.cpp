// Substrate microbenchmarks: the crypto layer every protocol pays for.
#include <benchmark/benchmark.h>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"

namespace {

using namespace unidir;
using namespace unidir::crypto;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = bytes_of("per-process-secret-key-material!");
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, msg));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sign(benchmark::State& state) {
  KeyRegistry registry;
  const Signer signer = registry.generate_key();
  const Bytes msg(256, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer.sign(msg));
  }
}
BENCHMARK(BM_Sign);

void BM_Verify(benchmark::State& state) {
  KeyRegistry registry;
  const Signer signer = registry.generate_key();
  const Bytes msg(256, 0x11);
  const Signature sig = signer.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.verify(sig, msg));
  }
}
BENCHMARK(BM_Verify);

}  // namespace
