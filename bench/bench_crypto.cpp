// Crypto benchmark: multi-buffer SHA-256 and batched signature
// verification against their serial baselines, with bit-identity
// cross-checks. Replaces the old google-benchmark microbench so the
// figures land in a schema-validated JSON (BENCH_crypto.json) the same
// way bench_hotpath's do.
//
// Phases:
//
//  1. Primitives — single-stream SHA-256 throughput, serial HMAC rate,
//     and hmac_sha256_batch at 16 streams of 64 bytes (the hot shape: a
//     quorum message's constituent MACs). The batch:serial ratio is the
//     backend's measured multi-buffer speedup; the batch digests are
//     asserted bit-identical to the serial ones, not sampled.
//  2. Batched-verify sweep — KeyRegistry::verify_batch over batch sizes
//     {1, 4, 16, 64} x verify-runner threads {1, 2, 4} on a memo-miss
//     workload (every message distinct, a few deliberate forgeries mixed
//     in). Each cell's verdict vector must equal the serial verify()
//     reference bit-for-bit — a mismatch fails regardless of flags.
//     Twin registries make this possible: key derivation is
//     deterministic, so signatures minted by one registry verify under a
//     fresh one, giving every cell a cold memo.
//
// --check gates are keyed to the detected backend rather than one
// universal floor, because the hardware ceiling varies by an order of
// magnitude across machines:
//
//  * hmac_batch_speedup — lanes >= 8 (AVX-512 16-wide) must reach 1.35x;
//    lanes == 2 (SHA-NI pairing) 1.05x; lanes < 2 means no multi-buffer
//    backend exists and there is nothing to gate. On an SHA-NI core the
//    measured ceiling is ~1.9x (55.2 -> ~29 ns/block), so 1.35x leaves
//    noise margin without being vacuous.
//  * verify_speedup_b64_t1 — the registry-level win on one thread at
//    batch 64. For lanes >= 8 the floor is 2x when the serial baseline
//    is portable scalar code, 1.6x when the serial path itself runs on
//    SHA-NI: serial SHA-NI does ~55 ns/block against ~29 ns/block for
//    the 16-wide backend, so the hardware ceiling of the ratio is
//    ~1.9x and a 2x floor would gate above physics. Below 8 lanes the
//    floor is 1.0x (the batch path must never lose to the loop). The
//    gate anchors at batch 64, not 16: a 16-job batch fills the 16
//    lanes exactly once (~1.5x) while 64 amortizes dispatch and memo
//    probing across four passes. The gated ratio is measured paired —
//    batch-1 and batch-64 passes timed back-to-back within each round,
//    median of per-round ratios — so a slow scheduler slice on a
//    shared host hits both sides of the ratio equally.
//  * Threaded cells gate only on hosts with >= 4 hardware threads:
//    batch=64 threads=4 must hold 0.8x of the single-thread batch=64
//    rate. On smaller hosts (CI runners, 1-core boxes) the cell is
//    reported but oversubscription makes a wall-clock gate dishonest.
//
// Flags:
//   --smoke      fewer messages/rounds (CI-sized)
//   --check      apply the gates above (identity checks are always on)
//   --out PATH   report path (default BENCH_crypto.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "crypto/verify_runner.h"

using namespace unidir;
using namespace unidir::crypto;

namespace {

constexpr std::size_t kHmacStreams = 16;
constexpr std::size_t kMsgBytes = 64;

double now_secs() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median-of-rounds wall time for `fn`, in seconds.
template <typename F>
double median_secs(int rounds, F&& fn) {
  std::vector<double> t;
  t.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    const double t0 = now_secs();
    fn();
    t.push_back(now_secs() - t0);
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

Bytes make_message(std::size_t i) {
  Bytes m(kMsgBytes, 0);
  for (std::size_t k = 0; k < kMsgBytes; ++k)
    m[k] = static_cast<std::uint8_t>((i * 131 + k * 7 + 3) & 0xFF);
  return m;
}

struct PrimitiveResult {
  double sha256_gib_per_sec = 0;
  double hmac_serial_ns_per_mac = 0;
  double hmac_batch_ns_per_mac = 0;
  double hmac_batch_speedup = 0;
  bool digests_identical = false;
};

PrimitiveResult measure_primitives(bool smoke) {
  PrimitiveResult res;
  const int rounds = smoke ? 3 : 7;

  {  // single-stream SHA-256 over a 16 KiB buffer
    Bytes buf(16 * 1024, 0);
    for (std::size_t i = 0; i < buf.size(); ++i)
      buf[i] = static_cast<std::uint8_t>(i * 37);
    const std::size_t reps = smoke ? 256 : 1024;
    volatile std::uint8_t sink = 0;
    const double secs = median_secs(rounds, [&] {
      for (std::size_t r = 0; r < reps; ++r)
        sink = static_cast<std::uint8_t>(sink +
                                         Sha256::hash(ByteSpan(buf))[0]);
    });
    if (secs > 0)
      res.sha256_gib_per_sec = static_cast<double>(buf.size()) *
                               static_cast<double>(reps) / secs /
                               (1024.0 * 1024.0 * 1024.0);
  }

  // Serial vs multi-buffer HMAC over the same 16 distinct 64-byte
  // messages, resuming the same precomputed key schedule.
  const Bytes key_bytes = bytes_of("per-process-secret-key-material!");
  const HmacKey key{ByteSpan(key_bytes)};
  std::vector<Bytes> msgs;
  for (std::size_t i = 0; i < kHmacStreams; ++i)
    msgs.push_back(make_message(i));

  std::vector<Digest> serial_digests(kHmacStreams);
  std::vector<Digest> batch_digests(kHmacStreams);
  const std::size_t reps = smoke ? 2'000 : 10'000;

  const double serial_secs = median_secs(rounds, [&] {
    for (std::size_t r = 0; r < reps; ++r)
      for (std::size_t i = 0; i < kHmacStreams; ++i)
        serial_digests[i] = key.mac(ByteSpan(msgs[i]));
  });
  const double batch_secs = median_secs(rounds, [&] {
    for (std::size_t r = 0; r < reps; ++r) {
      HmacJob jobs[kHmacStreams];
      for (std::size_t i = 0; i < kHmacStreams; ++i)
        jobs[i] = {&key, ByteSpan(msgs[i]), &batch_digests[i]};
      hmac_sha256_batch(jobs, kHmacStreams);
    }
  });

  const double n_macs = static_cast<double>(reps * kHmacStreams);
  if (serial_secs > 0) res.hmac_serial_ns_per_mac = serial_secs / n_macs * 1e9;
  if (batch_secs > 0) res.hmac_batch_ns_per_mac = batch_secs / n_macs * 1e9;
  if (batch_secs > 0) res.hmac_batch_speedup = serial_secs / batch_secs;
  res.digests_identical = serial_digests == batch_digests;
  return res;
}

struct VerifyCell {
  std::size_t batch = 0;
  std::size_t threads = 0;
  double verifies_per_sec = 0;
  double speedup_vs_b1_t1 = 0;
  bool verdicts_identical = false;
};

struct SweepResult {
  std::vector<VerifyCell> cells;
  double speedup_b64_t1 = 0;
  double rate_b64_t1 = 0;
  double rate_b64_t4 = 0;
  bool all_verdicts_identical = true;
};

/// Distinct messages signed under 4 keys round-robin, with a sprinkling
/// of corruption (flipped MAC byte every 97th, unknown key every 101st)
/// so verdict identity covers the failure paths too. Reference verdicts
/// come from the serial verify() on a fresh twin registry.
struct Workload {
  std::vector<Bytes> messages;
  std::vector<Signature> sigs;
  std::vector<char> expected;
};

Workload make_workload(std::size_t n) {
  Workload w;
  KeyRegistry mint;
  std::vector<Signer> signers;
  for (int i = 0; i < 4; ++i) signers.push_back(mint.generate_key());
  for (std::size_t i = 0; i < n; ++i) {
    w.messages.push_back(make_message(i));
    Signature s = signers[i % signers.size()].sign(ByteSpan(w.messages[i]));
    if (i % 97 == 0 && i > 0) s.mac[0] ^= 0x01;
    if (i % 101 == 0 && i > 0) s.key = 9999;
    w.sigs.push_back(std::move(s));
  }
  KeyRegistry ref;
  for (int i = 0; i < 4; ++i) (void)ref.generate_key();
  for (std::size_t i = 0; i < n; ++i)
    w.expected.push_back(
        ref.verify(w.sigs[i], ByteSpan(w.messages[i])) ? 1 : 0);
  return w;
}

/// Wall seconds for `passes` full chunked verify_batch passes over the
/// workload, each against a fresh twin registry (cold memo). Registry
/// construction is outside the timed region.
double verify_pass_secs(const Workload& w, VerifyRunner& runner,
                        std::size_t batch, int passes) {
  const std::size_t n = w.messages.size();
  double total = 0;
  std::vector<VerifyJob> jobs(batch);
  for (int p = 0; p < passes; ++p) {
    KeyRegistry reg;
    for (int i = 0; i < 4; ++i) (void)reg.generate_key();
    reg.attach_runner(&runner);
    const double t0 = now_secs();
    for (std::size_t base = 0; base < n; base += batch) {
      const std::size_t m = std::min(batch, n - base);
      for (std::size_t k = 0; k < m; ++k)
        jobs[k] = {&w.sigs[base + k], ByteSpan(w.messages[base + k]), false};
      reg.verify_batch(jobs.data(), m);
    }
    total += now_secs() - t0;
  }
  return total;
}

SweepResult measure_sweep(bool smoke) {
  const std::size_t n = smoke ? 2'048 : 8'192;
  const int rounds = smoke ? 3 : 5;
  const Workload w = make_workload(n);

  const std::size_t batches[] = {1, 4, 16, 64};
  const std::size_t thread_counts[] = {1, 2, 4};

  SweepResult res;
  double rate_b1_t1 = 0;
  for (std::size_t threads : thread_counts) {
    VerifyRunner runner(threads);
    for (std::size_t batch : batches) {
      VerifyCell cell;
      cell.batch = batch;
      cell.threads = threads;
      std::vector<char> verdicts(n, 0);
      const double secs = median_secs(rounds, [&] {
        // Fresh twin registry per round: cold memo, identical keys.
        KeyRegistry reg;
        for (int i = 0; i < 4; ++i) (void)reg.generate_key();
        reg.attach_runner(&runner);
        std::vector<VerifyJob> jobs(batch);
        for (std::size_t base = 0; base < n; base += batch) {
          const std::size_t m = std::min(batch, n - base);
          for (std::size_t k = 0; k < m; ++k)
            jobs[k] = {&w.sigs[base + k], ByteSpan(w.messages[base + k]),
                       false};
          reg.verify_batch(jobs.data(), m);
          for (std::size_t k = 0; k < m; ++k)
            verdicts[base + k] = jobs[k].ok ? 1 : 0;
        }
      });
      cell.verdicts_identical = verdicts == w.expected;
      res.all_verdicts_identical =
          res.all_verdicts_identical && cell.verdicts_identical;
      if (secs > 0) cell.verifies_per_sec = static_cast<double>(n) / secs;
      if (batch == 1 && threads == 1) rate_b1_t1 = cell.verifies_per_sec;
      cell.speedup_vs_b1_t1 =
          rate_b1_t1 > 0 ? cell.verifies_per_sec / rate_b1_t1 : 0;
      if (batch == 64 && threads == 1) res.rate_b64_t1 = cell.verifies_per_sec;
      if (batch == 64 && threads == 4) res.rate_b64_t4 = cell.verifies_per_sec;
      res.cells.push_back(cell);
    }
  }

  // The gated ratio is measured *paired*, not taken from the sweep
  // cells: on a time-sliced VM the batch-1 and batch-64 cells can land
  // in slices of different speed, which skews a ratio of independently
  // timed cells by 25%+ in either direction. Timing both passes
  // back-to-back inside each round and taking the median of the
  // per-round ratios makes a slow slice hit numerator and denominator
  // alike.
  {
    VerifyRunner runner(1);
    std::vector<double> ratios;
    const int paired_rounds = smoke ? 3 : 7;
    for (int r = 0; r < paired_rounds; ++r) {
      const double s1 = verify_pass_secs(w, runner, 1, 2);
      const double s64 = verify_pass_secs(w, runner, 64, 2);
      if (s64 > 0) ratios.push_back(s1 / s64);
    }
    std::sort(ratios.begin(), ratios.end());
    if (!ratios.empty()) res.speedup_b64_t1 = ratios[ratios.size() / 2];
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  std::string out_path = "BENCH_crypto.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke")
      smoke = true;
    else if (arg == "--check")
      check = true;
    else if (arg == "--out" && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t lanes = Sha256::batch_lanes();
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("backend: sha-ni %s, %zu multi-buffer lanes, %u hw threads\n",
              Sha256::hardware_accelerated() ? "yes" : "no", lanes,
              hw_threads);

  std::printf("phase 1: primitives (%s)\n", smoke ? "smoke" : "full");
  const PrimitiveResult prim = measure_primitives(smoke);
  std::printf("  sha256 single-stream: %.2f GiB/s\n", prim.sha256_gib_per_sec);
  std::printf(
      "  hmac 64B serial %.0f ns/mac, batch x%zu %.0f ns/mac "
      "(%.2fx), digests %s\n",
      prim.hmac_serial_ns_per_mac, kHmacStreams, prim.hmac_batch_ns_per_mac,
      prim.hmac_batch_speedup,
      prim.digests_identical ? "identical" : "MISMATCH");

  std::printf("phase 2: batched-verify sweep\n");
  const SweepResult sw = measure_sweep(smoke);
  for (const VerifyCell& c : sw.cells)
    std::printf(
        "  threads=%zu batch=%2zu: %9.0f verifies/s (%.2fx vs b1/t1), "
        "verdicts %s\n",
        c.threads, c.batch, c.verifies_per_sec, c.speedup_vs_b1_t1,
        c.verdicts_identical ? "identical" : "MISMATCH");
  std::printf("  paired batch=64 vs batch=1 (t1): %.2fx (gated)\n",
              sw.speedup_b64_t1);

  {
    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench\": \"crypto-batched-verify\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"sha_ni\": "
        << (Sha256::hardware_accelerated() ? "true" : "false") << ",\n"
        << "  \"batch_lanes\": " << lanes << ",\n"
        << "  \"hw_threads\": " << hw_threads << ",\n"
        << "  \"sha256_gib_per_sec\": " << prim.sha256_gib_per_sec << ",\n"
        << "  \"hmac_serial_ns_per_mac\": " << prim.hmac_serial_ns_per_mac
        << ",\n"
        << "  \"hmac_batch_ns_per_mac\": " << prim.hmac_batch_ns_per_mac
        << ",\n"
        << "  \"hmac_batch_speedup\": " << prim.hmac_batch_speedup << ",\n"
        << "  \"hmac_digests_identical\": "
        << (prim.digests_identical ? "true" : "false") << ",\n"
        << "  \"verify_verdicts_identical\": "
        << (sw.all_verdicts_identical ? "true" : "false") << ",\n"
        << "  \"verify_speedup_b64_t1\": " << sw.speedup_b64_t1 << ",\n"
        << "  \"verify_cells\": [\n";
    for (std::size_t i = 0; i < sw.cells.size(); ++i) {
      const VerifyCell& c = sw.cells[i];
      out << "    {\"batch\": " << c.batch << ", \"threads\": " << c.threads
          << ", \"verifies_per_sec\": " << c.verifies_per_sec
          << ", \"speedup_vs_b1_t1\": " << c.speedup_vs_b1_t1 << "}"
          << (i + 1 < sw.cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  // Identity checks are unconditional: a wall-clock figure can be noisy,
  // a wrong digest or verdict never is.
  if (!prim.digests_identical) {
    std::fprintf(stderr, "FAIL: hmac batch digests diverge from serial\n");
    return 1;
  }
  if (!sw.all_verdicts_identical) {
    std::fprintf(stderr,
                 "FAIL: batched verify verdicts diverge from serial\n");
    return 1;
  }

  if (check) {
    const double hmac_floor = lanes >= 8 ? 1.35 : lanes >= 2 ? 1.05 : 0.0;
    if (hmac_floor > 0 && prim.hmac_batch_speedup < hmac_floor) {
      std::fprintf(stderr,
                   "FAIL: hmac batch speedup %.2fx below the %.2fx floor "
                   "for a %zu-lane backend\n",
                   prim.hmac_batch_speedup, hmac_floor, lanes);
      return 1;
    }
    // The batch-vs-serial ceiling depends on what the *serial* path
    // runs on: against portable scalar code the 16-wide backend wins
    // 4x+, but against SHA-NI (~55 ns/block serial vs ~29 ns/block
    // 16-wide) the hardware ceiling is ~1.9x, so demanding 2x there
    // would gate above physics.
    const bool serial_is_accelerated = Sha256::hardware_accelerated();
    const double verify_floor =
        lanes >= 8 ? (serial_is_accelerated ? 1.6 : 2.0) : 1.0;
    if (sw.speedup_b64_t1 < verify_floor) {
      std::fprintf(stderr,
                   "FAIL: verify_batch speedup %.2fx at batch 64 below the "
                   "%.2fx floor\n",
                   sw.speedup_b64_t1, verify_floor);
      return 1;
    }
    if (hw_threads >= 4 && sw.rate_b64_t1 > 0 &&
        sw.rate_b64_t4 < 0.8 * sw.rate_b64_t1) {
      std::fprintf(stderr,
                   "FAIL: 4-thread batch-64 rate %.0f/s fell below 0.8x of "
                   "the single-thread rate %.0f/s\n",
                   sw.rate_b64_t4, sw.rate_b64_t1);
      return 1;
    }
  }
  return 0;
}
