// SrbHub: sequenced reliable broadcast as a *trusted primitive*.
//
// The paper's reductions treat SRB as a given (it is what trusted-log
// hardware like A2M/TrInc/SGX provides, up to interface). SrbHub plays
// that role in the simulator: a trusted component that
//
//   * assigns sequence numbers itself — a Byzantine sender cannot
//     equivocate or skip numbers (non-equivocation by construction),
//   * authenticates deliveries with a hub-private key no process holds —
//     a Byzantine process cannot inject or spoof deliveries,
//   * ships copies over the ordinary network, so the asynchronous
//     adversary retains full control of *when* (or, within a finite
//     execution, whether-yet) each copy arrives. This is exactly the
//     paper's point: trusted logs give non-equivocation, NOT delivery
//     guarantees, which is why they cannot break network partitions
//     (Section 4.1's impossibility, experiment E3).
//
// Per-recipient, per-sender delivery is forced into sequence order by
// buffering out-of-order arrivals.
#pragma once

#include <map>
#include <memory>

#include "broadcast/srb.h"
#include "crypto/signature.h"
#include "sim/world.h"
#include "wire/router.h"

namespace unidir::broadcast {

class SrbHubEndpoint;

class SrbHub {
 public:
  /// `channel` must be unused by other components of the attached hosts.
  SrbHub(sim::World& world, sim::Channel channel);

  /// Creates the endpoint for `host` and claims `channel` on it. One
  /// endpoint per process.
  std::unique_ptr<SrbHubEndpoint> make_endpoint(sim::Process& host);

  sim::World& world() { return world_; }

 private:
  friend class SrbHubEndpoint;

  /// Trusted entry point: assigns the next sequence number for `sender`
  /// and ships authenticated copies to every process.
  SeqNum submit(ProcessId sender, const Bytes& message);

  bool verify(ProcessId sender, SeqNum seq, const Bytes& message,
              const crypto::Signature& sig) const;

  sim::World& world_;
  sim::Channel channel_;
  crypto::Signer hub_key_;  // never handed to processes
  std::map<ProcessId, SeqNum> next_seq_;
};

class SrbHubEndpoint final : public SrbEndpoint {
 public:
  void broadcast(Bytes message) override;

  ProcessId self() const { return self_; }

 private:
  friend class SrbHub;
  SrbHubEndpoint(SrbHub& hub, sim::Process& host);

  void on_copy(ProcessId sender, SeqNum seq, Bytes message,
               const crypto::Signature& hub_sig);
  void try_deliver(ProcessId sender);

  SrbHub& hub_;
  sim::Process& host_;
  wire::Router router_;
  ProcessId self_;
  // Out-of-order buffer: sender -> seq -> message.
  std::map<ProcessId, std::map<SeqNum, Bytes>> pending_;
};

}  // namespace unidir::broadcast
