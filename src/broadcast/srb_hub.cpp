#include "broadcast/srb_hub.h"

#include "common/serde.h"

namespace unidir::broadcast {

namespace {

/// Wire format of a hub-authenticated copy.
struct HubWire {
  static constexpr wire::MsgDesc kDesc{1, "srb-hub-copy"};

  ProcessId sender = kNoProcess;
  SeqNum seq = 0;
  Bytes message;
  crypto::Signature hub_sig;

  Bytes signed_bytes() const {
    serde::Writer w;
    w.str("srb-hub");
    w.uvarint(sender);
    w.uvarint(seq);
    w.bytes(message);
    return w.take();
  }

  void encode(serde::Writer& w) const {
    w.uvarint(sender);
    w.uvarint(seq);
    w.bytes(message);
    hub_sig.encode(w);
  }
  static HubWire decode(serde::Reader& r) {
    HubWire h;
    h.sender = serde::read<ProcessId>(r);
    h.seq = r.uvarint();
    h.message = r.bytes();
    h.hub_sig = crypto::Signature::decode(r);
    return h;
  }
};

}  // namespace

SrbHub::SrbHub(sim::World& world, sim::Channel channel)
    : world_(world), channel_(channel), hub_key_(world.keys().generate_key()) {}

std::unique_ptr<SrbHubEndpoint> SrbHub::make_endpoint(sim::Process& host) {
  return std::unique_ptr<SrbHubEndpoint>(new SrbHubEndpoint(*this, host));
}

SeqNum SrbHub::submit(ProcessId sender, const Bytes& message) {
  const SeqNum seq = ++next_seq_[sender];
  HubWire wire;
  wire.sender = sender;
  wire.seq = seq;
  wire.message = message;
  wire.hub_sig = hub_key_.sign(wire.signed_bytes());
  // Ship one copy per process (including the sender: RB delivers to self),
  // each under independent adversary control.
  wire::broadcast(world_, sender, channel_, wire, /*include_self=*/true);
  return seq;
}

bool SrbHub::verify(ProcessId sender, SeqNum seq, const Bytes& message,
                    const crypto::Signature& sig) const {
  HubWire wire;
  wire.sender = sender;
  wire.seq = seq;
  wire.message = message;
  return world_.keys().verify(sig, wire.signed_bytes());
}

SrbHubEndpoint::SrbHubEndpoint(SrbHub& hub, sim::Process& host)
    : hub_(hub), host_(host), router_(host, hub.channel_), self_(host.id()) {
  // The envelope's `from` is ignored: authenticity comes from the hub
  // signature, not the (spoofable) sender id.
  router_.on<HubWire>([this](ProcessId, HubWire wire) {
    on_copy(wire.sender, wire.seq, std::move(wire.message), wire.hub_sig);
  });
}

void SrbHubEndpoint::broadcast(Bytes message) {
  hub_.submit(self_, std::move(message));
}

void SrbHubEndpoint::on_copy(ProcessId sender, SeqNum seq, Bytes message,
                             const crypto::Signature& hub_sig) {
  // The hub signature is what makes the primitive trusted: a Byzantine
  // process sending directly on this channel cannot produce it.
  if (!hub_.verify(sender, seq, message, hub_sig)) return;
  if (seq <= delivered_up_to(sender)) return;  // duplicate
  pending_[sender][seq] = std::move(message);
  try_deliver(sender);
}

void SrbHubEndpoint::try_deliver(ProcessId sender) {
  auto& buffer = pending_[sender];
  while (true) {
    const SeqNum next = delivered_up_to(sender) + 1;
    auto it = buffer.find(next);
    if (it == buffer.end()) return;
    Delivery d;
    d.sender = sender;
    d.seq = next;
    d.message = std::move(it->second);
    buffer.erase(it);
    host_.output("srb-deliver", serde::encode(std::pair<ProcessId, SeqNum>{
                                    d.sender, d.seq}));
    record_delivery(std::move(d));
  }
}

}  // namespace unidir::broadcast
