// Non-equivocating broadcast from unidirectional rounds (n ≥ f+1) — the
// paper's conjecture, implemented.
//
//   sender s:  send (v, σ_s) in its round message
//   process p: forward every validly signed sender value it has seen;
//              after two rounds, commit v if exactly one sender value was
//              observed, ⊥ otherwise.
//
// Agreement follows from unidirectionality: if correct p commits v ≠ ⊥, any
// correct q either received p's forward of v (and so cannot commit a
// different non-⊥ value) or p received q's message — in which case q's
// value was v, since p saw only v.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "common/bytes.h"
#include "crypto/signature.h"
#include "rounds/round_driver.h"
#include "sim/world.h"
#include "wire/channels.h"
#include "wire/router.h"

namespace unidir::broadcast {

class NonEqBroadcast {
 public:
  /// One instance per process per broadcast. `driver` must be a dedicated
  /// unidirectional round driver; `sender` is the designated sender.
  NonEqBroadcast(sim::Process& host, rounds::RoundDriver& driver,
                 ProcessId sender);

  using CommitFn = std::function<void(const std::optional<Bytes>&)>;

  /// Runs the two-round protocol. `input` must be set iff this process is
  /// the designated sender. `on_commit` receives the committed value, or
  /// nullopt for ⊥.
  void run(std::optional<Bytes> input, CommitFn on_commit);

  bool committed() const { return committed_; }
  /// Valid only after commit. nullopt = ⊥.
  const std::optional<Bytes>& value() const { return value_; }

 private:
  void absorb(const std::vector<rounds::Received>& received);
  Bytes payload() const;

  sim::Process& host_;
  rounds::RoundDriver& driver_;
  /// Hardened decode boundary for the (untrusted) forward lists arriving
  /// in round payloads; pseudo-channel, see wire/channels.h.
  wire::Router payload_router_;
  ProcessId sender_;
  /// Validly sender-signed values observed, with their signatures
  /// (≥2 entries means equivocation).
  std::map<Bytes, crypto::Signature> seen_;
  bool committed_ = false;
  std::optional<Bytes> value_;
};

}  // namespace unidir::broadcast
