// Bracha reliable broadcast, sequenced — the classic asynchronous
// message-passing implementation of SRB, requiring n > 3f.
//
// This is the baseline the paper's trusted-hardware mechanisms are measured
// against: with no trusted component at all, SRB is achievable only below
// the one-third fault threshold, and at a cost of O(n²) messages per
// broadcast (INITIAL → ECHO → READY with double thresholds):
//
//   on INITIAL(m) from the sender      → send ECHO(m) to all (once)
//   on ⌈(n+f+1)/2⌉ ECHO(m)             → send READY(m) (once)
//   on f+1 READY(m)                    → send READY(m) (once, "amplify")
//   on 2f+1 READY(m)                   → accept m
//
// Accepted messages are buffered and handed to the application in
// per-sender sequence order (the "sequenced" part).
#pragma once

#include <map>
#include <set>

#include "broadcast/srb.h"
#include "sim/world.h"
#include "wire/router.h"

namespace unidir::broadcast {

class BrachaEndpoint final : public SrbEndpoint {
 public:
  /// n = group size, f = fault bound; requires n > 3f.
  BrachaEndpoint(sim::Process& host, sim::Channel channel, std::size_t n,
                 std::size_t f);

  void broadcast(Bytes message) override;

  /// Messages this endpoint has sent (for complexity accounting in benches).
  std::uint64_t protocol_messages_sent() const { return sent_; }

 private:
  enum class Type : std::uint8_t { Initial = 1, Echo = 2, Ready = 3 };

  /// Per (sender, seq) instance state.
  struct Instance {
    bool echoed = false;
    bool readied = false;
    bool accepted = false;
    std::optional<Bytes> initial;  // first INITIAL seen from the sender
    // votes: value -> set of processes that ECHOed / READIed it.
    std::map<Bytes, std::set<ProcessId>> echoes;
    std::map<Bytes, std::set<ProcessId>> readies;
  };

  void handle(ProcessId from, Type type, ProcessId sender, SeqNum seq,
              const Bytes& message);
  void send_to_all(Type type, ProcessId sender, SeqNum seq,
                   const Bytes& message);
  void step(ProcessId sender, SeqNum seq);
  void accept(ProcessId sender, SeqNum seq, const Bytes& message);
  void flush(ProcessId sender);

  std::size_t echo_quorum() const { return (n_ + f_) / 2 + 1; }

  sim::Process& host_;
  wire::Router router_;
  std::size_t n_;
  std::size_t f_;
  SeqNum my_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::map<std::pair<ProcessId, SeqNum>, Instance> instances_;
  std::map<ProcessId, std::map<SeqNum, Bytes>> accepted_buffer_;
};

}  // namespace unidir::broadcast
