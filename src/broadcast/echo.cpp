#include "broadcast/echo.h"

#include "common/serde.h"

namespace unidir::broadcast {

namespace {

constexpr std::uint8_t kSend = 1;
constexpr std::uint8_t kEcho = 2;
constexpr std::uint8_t kFinal = 3;

struct Wire {
  std::uint8_t type = 0;
  SeqNum seq = 0;
  Bytes message;                                            // Send / Final
  crypto::Signature echo_sig;                               // Echo
  std::vector<std::pair<ProcessId, crypto::Signature>> certificate;  // Final

  void encode(serde::Writer& w) const {
    w.u8(type);
    w.uvarint(seq);
    switch (type) {
      case kSend:
        w.bytes(message);
        break;
      case kEcho:
        echo_sig.encode(w);
        break;
      case kFinal:
        w.bytes(message);
        serde::write(w, certificate);
        break;
      default:
        break;
    }
  }
  static Wire decode(serde::Reader& r) {
    Wire m;
    m.type = r.u8();
    m.seq = r.uvarint();
    switch (m.type) {
      case kSend:
        m.message = r.bytes();
        break;
      case kEcho:
        m.echo_sig = crypto::Signature::decode(r);
        break;
      case kFinal:
        m.message = r.bytes();
        m.certificate = serde::read<
            std::vector<std::pair<ProcessId, crypto::Signature>>>(r);
        break;
      default:
        throw serde::DecodeError("bad echo-broadcast type");
    }
    return m;
  }
};

}  // namespace

EchoBroadcastEndpoint::EchoBroadcastEndpoint(sim::Process& host,
                                             sim::Channel channel,
                                             std::size_t n, std::size_t f)
    : host_(host), channel_(channel), n_(n), f_(f) {
  UNIDIR_REQUIRE_MSG(n > 3 * f, "echo broadcast requires n > 3f");
  host_.register_channel(channel,
                         [this](ProcessId from, const Bytes& payload) {
                           on_wire(from, payload);
                         });
}

Bytes EchoBroadcastEndpoint::echo_binding(ProcessId sender, SeqNum seq,
                                          const Bytes& message) {
  serde::Writer w;
  w.str("echo-bcast");
  w.uvarint(sender);
  w.uvarint(seq);
  w.bytes(crypto::digest_bytes(crypto::Sha256::hash(message)));
  return w.take();
}

void EchoBroadcastEndpoint::broadcast(Bytes message) {
  const SeqNum seq = ++my_seq_;
  SenderSlot& slot = my_slots_[seq];
  slot.message = message;
  // Echo our own copy locally.
  slot.echoes.emplace(
      host_.id(),
      host_.signer().sign(echo_binding(host_.id(), seq, message)));
  Wire w;
  w.type = kSend;
  w.seq = seq;
  w.message = std::move(message);
  sent_ += host_.world().size() - 1;
  host_.broadcast(channel_, serde::encode(w));
}

void EchoBroadcastEndpoint::on_wire(ProcessId from, const Bytes& payload) {
  Wire w;
  try {
    w = serde::decode<Wire>(payload);
  } catch (const serde::DecodeError&) {
    return;
  }
  if (w.seq == 0) return;
  switch (w.type) {
    case kSend: handle_send(from, w.seq, std::move(w.message)); break;
    case kEcho: handle_echo(from, w.seq, w.echo_sig); break;
    case kFinal:
      handle_final(from, w.seq, std::move(w.message), w.certificate);
      break;
    default: break;
  }
}

void EchoBroadcastEndpoint::handle_send(ProcessId from, SeqNum seq,
                                        Bytes message) {
  // One echo per (sender, seq), ever — the consistency anchor.
  auto [it, fresh] = echoed_.emplace(std::make_pair(from, seq), message);
  if (!fresh) return;
  Wire w;
  w.type = kEcho;
  w.seq = seq;
  w.echo_sig = host_.signer().sign(echo_binding(from, seq, message));
  ++sent_;
  host_.send(from, channel_, serde::encode(w));
}

void EchoBroadcastEndpoint::handle_echo(ProcessId from, SeqNum seq,
                                        const crypto::Signature& sig) {
  auto it = my_slots_.find(seq);
  if (it == my_slots_.end() || it->second.finalized) return;
  SenderSlot& slot = it->second;
  if (sig.key != host_.world().key_of(from)) return;
  if (!host_.world().keys().verify(
          sig, echo_binding(host_.id(), seq, slot.message)))
    return;
  slot.echoes.emplace(from, sig);
  if (slot.echoes.size() < quorum()) return;

  slot.finalized = true;
  Wire w;
  w.type = kFinal;
  w.seq = seq;
  w.message = slot.message;
  for (const auto& [pid, s] : slot.echoes) w.certificate.emplace_back(pid, s);
  sent_ += host_.world().size() - 1;
  host_.broadcast(channel_, serde::encode(w));
  // Deliver locally: the certificate is ours.
  accepted_[host_.id()][seq] = slot.message;
  flush(host_.id());
}

void EchoBroadcastEndpoint::handle_final(
    ProcessId from, SeqNum seq, Bytes message,
    const std::vector<std::pair<ProcessId, crypto::Signature>>& certificate) {
  if (seq <= delivered_up_to(from)) return;
  const Bytes binding = echo_binding(from, seq, message);
  std::set<ProcessId> voters;
  for (const auto& [pid, sig] : certificate) {
    if (pid >= host_.world().size()) continue;
    if (sig.key != host_.world().key_of(pid)) continue;
    if (!host_.world().keys().verify(sig, binding)) continue;
    voters.insert(pid);
  }
  if (voters.size() < quorum()) return;
  accepted_[from][seq] = std::move(message);
  flush(from);
}

void EchoBroadcastEndpoint::flush(ProcessId sender) {
  auto& buffer = accepted_[sender];
  while (true) {
    const SeqNum next = delivered_up_to(sender) + 1;
    auto it = buffer.find(next);
    if (it == buffer.end()) return;
    Delivery d;
    d.sender = sender;
    d.seq = next;
    d.message = std::move(it->second);
    buffer.erase(it);
    host_.output("srb-deliver", serde::encode(std::pair<ProcessId, SeqNum>{
                                    d.sender, d.seq}));
    record_delivery(std::move(d));
  }
}

}  // namespace unidir::broadcast
