#include "broadcast/echo.h"

#include "common/serde.h"

namespace unidir::broadcast {

namespace {

// The old single Wire struct switched on a type byte in both encode and
// decode; each phase is now its own typed message.
struct SendMsg {
  static constexpr wire::MsgDesc kDesc{1, "echo-send"};

  SeqNum seq = 0;
  Bytes message;

  void encode(serde::Writer& w) const {
    w.uvarint(seq);
    w.bytes(message);
  }
  static SendMsg decode(serde::Reader& r) {
    SendMsg m;
    m.seq = r.uvarint();
    m.message = r.bytes();
    return m;
  }
};

struct EchoVote {
  static constexpr wire::MsgDesc kDesc{2, "echo-vote"};

  SeqNum seq = 0;
  crypto::Signature echo_sig;

  void encode(serde::Writer& w) const {
    w.uvarint(seq);
    echo_sig.encode(w);
  }
  static EchoVote decode(serde::Reader& r) {
    EchoVote m;
    m.seq = r.uvarint();
    m.echo_sig = crypto::Signature::decode(r);
    return m;
  }
};

struct FinalMsg {
  static constexpr wire::MsgDesc kDesc{3, "echo-final"};

  SeqNum seq = 0;
  Bytes message;
  std::vector<std::pair<ProcessId, crypto::Signature>> certificate;

  void encode(serde::Writer& w) const {
    w.uvarint(seq);
    w.bytes(message);
    serde::write(w, certificate);
  }
  static FinalMsg decode(serde::Reader& r) {
    FinalMsg m;
    m.seq = r.uvarint();
    m.message = r.bytes();
    m.certificate =
        serde::read<std::vector<std::pair<ProcessId, crypto::Signature>>>(r);
    return m;
  }
};

}  // namespace

EchoBroadcastEndpoint::EchoBroadcastEndpoint(sim::Process& host,
                                             sim::Channel channel,
                                             std::size_t n, std::size_t f)
    : host_(host), router_(host, channel), n_(n), f_(f) {
  UNIDIR_REQUIRE_MSG(n > 3 * f, "echo broadcast requires n > 3f");
  // seq 0 means "none yet" library-wide; a wire message carrying it is
  // Byzantine noise.
  router_.on<SendMsg>([this](ProcessId from, SendMsg m) {
    if (m.seq == 0) return;
    handle_send(from, m.seq, std::move(m.message));
  });
  router_.on<EchoVote>([this](ProcessId from, EchoVote m) {
    if (m.seq == 0) return;
    handle_echo(from, m.seq, m.echo_sig);
  });
  router_.on<FinalMsg>([this](ProcessId from, FinalMsg m) {
    if (m.seq == 0) return;
    handle_final(from, m.seq, std::move(m.message), m.certificate);
  });
}

Bytes EchoBroadcastEndpoint::echo_binding(ProcessId sender, SeqNum seq,
                                          const Bytes& message) {
  serde::Writer w;
  w.str("echo-bcast");
  w.uvarint(sender);
  w.uvarint(seq);
  w.bytes(crypto::digest_bytes(crypto::Sha256::hash(message)));
  return w.take();
}

void EchoBroadcastEndpoint::broadcast(Bytes message) {
  const SeqNum seq = ++my_seq_;
  SenderSlot& slot = my_slots_[seq];
  slot.message = message;
  // Echo our own copy locally.
  slot.echoes.emplace(
      host_.id(),
      host_.signer().sign(echo_binding(host_.id(), seq, message)));
  sent_ += host_.world().size() - 1;
  router_.broadcast(SendMsg{seq, std::move(message)});
}

void EchoBroadcastEndpoint::handle_send(ProcessId from, SeqNum seq,
                                        Bytes message) {
  // One echo per (sender, seq), ever — the consistency anchor.
  auto [it, fresh] = echoed_.emplace(std::make_pair(from, seq), message);
  if (!fresh) return;
  ++sent_;
  router_.send(from,
               EchoVote{seq, host_.signer().sign(echo_binding(from, seq,
                                                              message))});
}

void EchoBroadcastEndpoint::handle_echo(ProcessId from, SeqNum seq,
                                        const crypto::Signature& sig) {
  auto it = my_slots_.find(seq);
  if (it == my_slots_.end() || it->second.finalized) return;
  SenderSlot& slot = it->second;
  if (sig.key != host_.world().key_of(from)) return;
  if (!host_.world().keys().verify(
          sig, echo_binding(host_.id(), seq, slot.message)))
    return;
  slot.echoes.emplace(from, sig);
  if (slot.echoes.size() < quorum()) return;

  slot.finalized = true;
  FinalMsg fin;
  fin.seq = seq;
  fin.message = slot.message;
  for (const auto& [pid, s] : slot.echoes) fin.certificate.emplace_back(pid, s);
  sent_ += host_.world().size() - 1;
  router_.broadcast(fin);
  // Deliver locally: the certificate is ours.
  accepted_[host_.id()][seq] = slot.message;
  flush(host_.id());
}

void EchoBroadcastEndpoint::handle_final(
    ProcessId from, SeqNum seq, Bytes message,
    const std::vector<std::pair<ProcessId, crypto::Signature>>& certificate) {
  if (seq <= delivered_up_to(from)) return;
  const Bytes binding = echo_binding(from, seq, message);
  std::set<ProcessId> voters;
  for (const auto& [pid, sig] : certificate) {
    if (pid >= host_.world().size()) continue;
    if (sig.key != host_.world().key_of(pid)) continue;
    if (!host_.world().keys().verify(sig, binding)) continue;
    voters.insert(pid);
  }
  if (voters.size() < quorum()) return;
  accepted_[from][seq] = std::move(message);
  flush(from);
}

void EchoBroadcastEndpoint::flush(ProcessId sender) {
  auto& buffer = accepted_[sender];
  while (true) {
    const SeqNum next = delivered_up_to(sender) + 1;
    auto it = buffer.find(next);
    if (it == buffer.end()) return;
    Delivery d;
    d.sender = sender;
    d.seq = next;
    d.message = std::move(it->second);
    buffer.erase(it);
    host_.output("srb-deliver", serde::encode(std::pair<ProcessId, SeqNum>{
                                    d.sender, d.seq}));
    record_delivery(std::move(d));
  }
}

}  // namespace unidir::broadcast
