// SRB from unidirectional rounds — the paper's Algorithm 1 (n ≥ 2t+1).
//
// Adapted from Aguilera et al.'s SWMR-register construction exactly as the
// paper prescribes: every register *write* becomes "include in my next
// round message" and every *read* becomes "what I received by the end of
// my round". Each process publishes, once per round, its full slot state:
//
//   - its own signed broadcast history (if it acts as a sender),
//   - its adopted, counter-signed *copy* of the value it is currently
//     helping agree on, per sender,
//   - its compiled *L1 proof* (t+1 matching signed copies) per sender,
//   - every *L2 proof* (t+1 matching L1 proofs by distinct compilers) it
//     knows. A valid L2 proof is self-contained and delivers the value.
//
// Safety hinges on unidirectionality: two correct processes that adopted
// conflicting values from an equivocating sender each forward their copy
// in a round; at least one of them receives the other's copy before its
// round ends, sees the sender-signed conflict, and becomes *poisoned* —
// refusing to compile an L1 proof. Hence no two conflicting L1 proofs by
// correct processes, hence (since any valid L2 needs t+1 distinct
// compilers, i.e. at least one correct) no conflicting L2 proofs at all.
//
// Liveness: the engine rounds continuously while it is making progress and
// for `idle_limit` rounds after, then parks. A message-driven round driver
// wakes it when peers are still active (activity listener); on a
// shared-memory driver its slot persists in the board, so laggards catch
// up by reading — no wake needed, which is itself a faithful rendering of
// the shared-memory model.
#pragma once

#include <map>
#include <set>

#include "broadcast/srb.h"
#include "crypto/signature.h"
#include "rounds/round_driver.h"
#include "sim/world.h"
#include "wire/channels.h"
#include "wire/router.h"

namespace unidir::broadcast {

/// A sender-signed value: the unit everything else attests to.
struct SignedVal {
  ProcessId sender = kNoProcess;
  SeqNum seq = 0;
  Bytes msg;
  crypto::Signature sender_sig;

  bool same_value(const SignedVal& o) const {
    return sender == o.sender && seq == o.seq && msg == o.msg;
  }

  Bytes signing_bytes() const;
  void encode(serde::Writer& w) const;
  static SignedVal decode(serde::Reader& r);
};

/// One process's counter-signature on a value it adopted.
struct CopyVote {
  ProcessId copier = kNoProcess;
  crypto::Signature sig;

  static Bytes signing_bytes(const SignedVal& val);
  void encode(serde::Writer& w) const;
  static CopyVote decode(serde::Reader& r);
};

/// t+1 matching copies, compiled and signed by one process.
struct L1Proof {
  SignedVal val;
  std::vector<CopyVote> copies;
  ProcessId compiler = kNoProcess;
  crypto::Signature compiler_sig;

  Bytes signing_bytes() const;
  void encode(serde::Writer& w) const;
  static L1Proof decode(serde::Reader& r);
};

/// t+1 matching L1 proofs by distinct compilers. Self-contained: anyone
/// holding a valid L2 proof may deliver its value.
struct L2Proof {
  SignedVal val;
  std::vector<L1Proof> l1s;

  void encode(serde::Writer& w) const;
  static L2Proof decode(serde::Reader& r);
};

/// The full slot state a process publishes each round. Public so that
/// tests can hand-craft Byzantine payloads (e.g. equivocating senders).
struct UniSlotPayload {
  static constexpr wire::MsgDesc kDesc{1, "uni-slot-payload"};

  std::vector<SignedVal> my_vals;
  /// Adopted copies: (value, our vote), one per sender slot.
  std::vector<std::pair<SignedVal, CopyVote>> copies;
  std::vector<L1Proof> l1s;
  std::vector<L2Proof> l2s;

  void encode(serde::Writer& w) const;
  static UniSlotPayload decode(serde::Reader& r);
};

// ---- validation (all self-contained, usable by any module) -----------------

bool valid_signed_val(const sim::World& w, const SignedVal& val);
bool valid_copy(const sim::World& w, const SignedVal& val, const CopyVote& c);
bool valid_l1(const sim::World& w, const L1Proof& p, std::size_t t);
bool valid_l2(const sim::World& w, const L2Proof& p, std::size_t t);

struct UniSrbOptions {
  /// Stop rounding after this many consecutive rounds with no state change.
  int idle_limit = 8;
};

class UniSrbEndpoint final : public SrbEndpoint {
 public:
  /// `driver` is the unidirectional round driver this engine communicates
  /// through; it must be dedicated to this endpoint. `t` is the fault
  /// bound; correctness requires n ≥ 2t+1.
  UniSrbEndpoint(sim::Process& host, rounds::RoundDriver& driver,
                 std::size_t n, std::size_t t, UniSrbOptions options = {});

  void broadcast(Bytes message) override;

  /// Begins participating (typically from Process::on_start). A process
  /// that only listens must still call this: copies from non-senders are
  /// what make the t+1 quorums.
  void start();

  // -- introspection for tests & benches ------------------------------------
  RoundNum rounds_run() const { return driver_.completed_rounds(); }
  bool parked() const { return parked_; }
  std::uint64_t payload_bytes_sent() const { return payload_bytes_; }
  /// True if this process observed sender equivocation on the given
  /// sender's current slot (the "poisoned" flag of the safety argument).
  bool poisoned(ProcessId sender) const;

 private:
  /// Per-sender progress, mirroring the paper's {WaitForSender,
  /// WaitForL1Proof, WaitForL2Proof} state machine for seq next_.
  struct SenderState {
    enum class Phase : std::uint8_t {
      WaitForSender,
      WaitForL1,
      WaitForL2,
    };
    Phase phase = Phase::WaitForSender;
    SeqNum next = 1;  // sequence number currently being agreed on
    std::optional<SignedVal> adopted;
    std::optional<CopyVote> my_copy;
    std::optional<L1Proof> my_l1;
    bool poisoned = false;
    /// Compilation gates: an L1 (resp. L2) proof may be compiled only at
    /// the end of a round that *started after* the copy (resp. L1) was
    /// first published — the write-then-scan ordering the safety argument
    /// rests on. Without this, a Byzantine sender could hand a victim a
    /// ready-made quorum before the victim's copy ever travelled.
    RoundNum earliest_l1_round = 0;
    RoundNum earliest_l2_round = 0;
    std::map<ProcessId, CopyVote> copies;   // matching copies incl. own
    std::map<ProcessId, L1Proof> l1s;       // matching L1s incl. own
    /// Distinct sender-signed messages seen for (sender, next) — ≥2 means
    /// equivocation.
    std::set<Bytes> seen_msgs;

    void reset_for_next_seq() {
      phase = Phase::WaitForSender;
      adopted.reset();
      my_copy.reset();
      my_l1.reset();
      poisoned = false;
      earliest_l1_round = 0;
      earliest_l2_round = 0;
      copies.clear();
      l1s.clear();
      seen_msgs.clear();
    }
  };

  void ensure_rounding();
  void run_round();
  void on_round_done(const std::vector<rounds::Received>& received);
  Bytes build_payload();
  void on_payload(ProcessId from, UniSlotPayload p);

  void consider_val(ProcessId relay, const SignedVal& val);
  void consider_copy(ProcessId relay, const SignedVal& val,
                     const CopyVote& vote);
  void consider_l1(ProcessId relay, const L1Proof& proof);
  void consider_l2(const L2Proof& proof);
  void end_of_round_transitions();
  void maybe_deliver(ProcessId sender);
  void note_equivocation(SenderState& st, const SignedVal& val);

  SenderState& state_of(ProcessId sender);

  sim::Process& host_;
  rounds::RoundDriver& driver_;
  /// Round payloads are not network envelopes, but they are still
  /// untrusted bytes: a detached router on a pseudo-channel gives them the
  /// same hardened decode boundary and stats as real wire traffic.
  wire::Router payload_router_;
  std::size_t n_;
  std::size_t t_;
  UniSrbOptions options_;

  SeqNum my_seq_ = 0;
  std::vector<SignedVal> my_history_;

  std::map<ProcessId, SenderState> senders_;
  std::map<std::pair<ProcessId, SeqNum>, L2Proof> l2_store_;

  bool started_ = false;
  bool parked_ = true;
  bool dirty_ = false;
  int idle_rounds_ = 0;
  std::uint64_t payload_bytes_ = 0;
};

}  // namespace unidir::broadcast
