#include "broadcast/srb.h"

#include <sstream>

#include "common/check.h"

namespace unidir::broadcast {

SeqNum SrbEndpoint::delivered_up_to(ProcessId sender) const {
  auto it = high_.find(sender);
  return it == high_.end() ? 0 : it->second;
}

void SrbEndpoint::record_delivery(Delivery d) {
  SeqNum& high = high_[d.sender];
  UNIDIR_CHECK_MSG(d.seq == high + 1,
                   "SRB implementation delivered out of order");
  high = d.seq;
  delivered_.push_back(d);
  if (deliver_) deliver_(delivered_.back());
}

const char* to_string(SrbViolation::Kind kind) {
  switch (kind) {
    case SrbViolation::Kind::Validity: return "validity";
    case SrbViolation::Kind::Agreement: return "agreement";
    case SrbViolation::Kind::Sequencing: return "sequencing";
    case SrbViolation::Kind::Integrity: return "integrity";
  }
  return "?";
}

namespace {

std::string describe(ProcessId who, const Delivery& d) {
  std::ostringstream os;
  os << "p" << who << " delivered (sender=" << d.sender << ", seq=" << d.seq
     << ", msg=" << to_hex(d.message).substr(0, 16) << ")";
  return os.str();
}

}  // namespace

std::optional<SrbViolation> check_srb(const std::vector<SrbView>& views) {
  // Sequencing: per (receiver, sender), delivered seqs must be 1,2,3,…
  for (const SrbView& v : views) {
    std::map<ProcessId, SeqNum> next;
    for (const Delivery& d : v.endpoint->delivered()) {
      SeqNum& expect = next[d.sender];
      if (d.seq != expect + 1) {
        return SrbViolation{SrbViolation::Kind::Sequencing,
                            describe(v.id, d) + " but expected seq " +
                                std::to_string(expect + 1)};
      }
      expect = d.seq;
    }
  }

  // Integrity: deliveries attributed to a correct sender must match what
  // that sender actually broadcast.
  for (const SrbView& receiver : views) {
    for (const Delivery& d : receiver.endpoint->delivered()) {
      for (const SrbView& sender : views) {
        if (sender.id != d.sender) continue;
        if (d.seq > sender.broadcasts.size() ||
            sender.broadcasts[d.seq - 1] != d.message) {
          return SrbViolation{SrbViolation::Kind::Integrity,
                              describe(receiver.id, d) +
                                  " which the sender never broadcast"};
        }
      }
    }
  }

  // Agreement: any delivery by one correct process must exist identically
  // at every correct process (interpreted at quiescence).
  for (const SrbView& a : views) {
    for (const Delivery& d : a.endpoint->delivered()) {
      for (const SrbView& b : views) {
        bool found = false;
        for (const Delivery& e : b.endpoint->delivered()) {
          if (e.sender == d.sender && e.seq == d.seq) {
            if (e.message != d.message) {
              return SrbViolation{
                  SrbViolation::Kind::Agreement,
                  describe(a.id, d) + " but " + describe(b.id, e)};
            }
            found = true;
            break;
          }
        }
        if (!found) {
          return SrbViolation{SrbViolation::Kind::Agreement,
                              describe(a.id, d) + " but p" +
                                  std::to_string(b.id) + " never did"};
        }
      }
    }
  }

  // Validity: everything a correct sender broadcast must be delivered by
  // every correct process.
  for (const SrbView& sender : views) {
    for (SeqNum k = 1; k <= sender.broadcasts.size(); ++k) {
      for (const SrbView& receiver : views) {
        if (receiver.endpoint->delivered_up_to(sender.id) < k) {
          return SrbViolation{
              SrbViolation::Kind::Validity,
              "p" + std::to_string(receiver.id) + " never delivered seq " +
                  std::to_string(k) + " from correct sender p" +
                  std::to_string(sender.id)};
        }
      }
    }
  }

  return std::nullopt;
}

}  // namespace unidir::broadcast
