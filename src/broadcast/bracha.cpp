#include "broadcast/bracha.h"

#include "common/serde.h"

namespace unidir::broadcast {

namespace {

// INITIAL/ECHO/READY share one body; each phase is its own wire type so
// the router handles tag dispatch (and counts per-phase traffic).
struct Body {
  ProcessId sender = kNoProcess;
  SeqNum seq = 0;
  Bytes message;

  void encode(serde::Writer& w) const {
    w.uvarint(sender);
    w.uvarint(seq);
    w.bytes(message);
  }
  static Body decode(serde::Reader& r) {
    Body m;
    m.sender = serde::read<ProcessId>(r);
    m.seq = r.uvarint();
    m.message = r.bytes();
    return m;
  }
};

struct InitialMsg : Body {
  static constexpr wire::MsgDesc kDesc{1, "bracha-initial"};
  static InitialMsg decode(serde::Reader& r) { return {Body::decode(r)}; }
};
struct EchoMsg : Body {
  static constexpr wire::MsgDesc kDesc{2, "bracha-echo"};
  static EchoMsg decode(serde::Reader& r) { return {Body::decode(r)}; }
};
struct ReadyMsg : Body {
  static constexpr wire::MsgDesc kDesc{3, "bracha-ready"};
  static ReadyMsg decode(serde::Reader& r) { return {Body::decode(r)}; }
};

}  // namespace

BrachaEndpoint::BrachaEndpoint(sim::Process& host, sim::Channel channel,
                               std::size_t n, std::size_t f)
    : host_(host), router_(host, channel), n_(n), f_(f) {
  UNIDIR_REQUIRE_MSG(n > 3 * f, "Bracha requires n > 3f");
  router_.on<InitialMsg>([this](ProcessId from, InitialMsg m) {
    handle(from, Type::Initial, m.sender, m.seq, m.message);
  });
  router_.on<EchoMsg>([this](ProcessId from, EchoMsg m) {
    handle(from, Type::Echo, m.sender, m.seq, m.message);
  });
  router_.on<ReadyMsg>([this](ProcessId from, ReadyMsg m) {
    handle(from, Type::Ready, m.sender, m.seq, m.message);
  });
}

void BrachaEndpoint::broadcast(Bytes message) {
  const SeqNum seq = ++my_seq_;
  // The sender participates in its own instance: record the INITIAL
  // locally, then ship it.
  handle(host_.id(), Type::Initial, host_.id(), seq, message);
  send_to_all(Type::Initial, host_.id(), seq, message);
}

void BrachaEndpoint::send_to_all(Type type, ProcessId sender, SeqNum seq,
                                 const Bytes& message) {
  const Body body{sender, seq, message};
  sent_ += host_.world().size() - 1;
  switch (type) {
    case Type::Initial:
      router_.broadcast(InitialMsg{body});
      break;
    case Type::Echo:
      router_.broadcast(EchoMsg{body});
      break;
    case Type::Ready:
      router_.broadcast(ReadyMsg{body});
      break;
  }
}

void BrachaEndpoint::handle(ProcessId from, Type type, ProcessId sender,
                            SeqNum seq, const Bytes& message) {
  if (seq == 0) return;
  Instance& inst = instances_[{sender, seq}];
  switch (type) {
    case Type::Initial:
      // Only the sender itself may open its instance; keep the first value.
      if (from != sender) return;
      if (inst.initial.has_value()) return;
      inst.initial = message;
      break;
    case Type::Echo:
      inst.echoes[message].insert(from);
      break;
    case Type::Ready:
      inst.readies[message].insert(from);
      break;
  }
  step(sender, seq);
}

void BrachaEndpoint::step(ProcessId sender, SeqNum seq) {
  Instance& inst = instances_[{sender, seq}];

  if (!inst.echoed && inst.initial.has_value()) {
    inst.echoed = true;
    // Count own echo locally; ship to the others.
    inst.echoes[*inst.initial].insert(host_.id());
    send_to_all(Type::Echo, sender, seq, *inst.initial);
  }

  if (!inst.readied) {
    for (const auto& [value, voters] : inst.echoes) {
      if (voters.size() >= echo_quorum()) {
        inst.readied = true;
        inst.readies[value].insert(host_.id());
        send_to_all(Type::Ready, sender, seq, value);
        break;
      }
    }
  }
  if (!inst.readied) {
    for (const auto& [value, voters] : inst.readies) {
      if (voters.size() >= f_ + 1) {
        inst.readied = true;
        inst.readies[value].insert(host_.id());
        send_to_all(Type::Ready, sender, seq, value);
        break;
      }
    }
  }

  if (!inst.accepted) {
    for (const auto& [value, voters] : inst.readies) {
      if (voters.size() >= 2 * f_ + 1) {
        inst.accepted = true;
        accept(sender, seq, value);
        break;
      }
    }
  }
}

void BrachaEndpoint::accept(ProcessId sender, SeqNum seq,
                            const Bytes& message) {
  accepted_buffer_[sender][seq] = message;
  flush(sender);
}

void BrachaEndpoint::flush(ProcessId sender) {
  auto& buffer = accepted_buffer_[sender];
  while (true) {
    const SeqNum next = delivered_up_to(sender) + 1;
    auto it = buffer.find(next);
    if (it == buffer.end()) return;
    Delivery d;
    d.sender = sender;
    d.seq = next;
    d.message = std::move(it->second);
    buffer.erase(it);
    host_.output("srb-deliver", serde::encode(std::pair<ProcessId, SeqNum>{
                                    d.sender, d.seq}));
    record_delivery(std::move(d));
  }
}

}  // namespace unidir::broadcast
