// Sequenced reliable broadcast (SRB): interface and property checkers.
//
// The paper's Definition 1. A designated sender broadcasts a stream of
// messages with sequence numbers 1,2,3,…; the primitive guarantees:
//   (1) validity     — a correct sender's messages are eventually delivered
//                      by every correct process;
//   (2) agreement    — if any correct process delivers (k, m) from p, every
//                      correct process eventually does;
//   (3) sequencing   — deliveries from p happen in sequence-number order
//                      with no gaps;
//   (4) integrity    — only messages p actually broadcast are delivered
//                      from p.
//
// Three implementations live in this module, one per power class:
//   SrbHub         — a *trusted primitive* (the "given" SRB the paper's
//                    reductions assume; analogous to hardware).
//   SrbFromBracha  — message passing, n > 3f (the classic bound).
//   SrbFromUni     — unidirectional rounds, n ≥ 2t+1 (the paper's Alg. 1).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace unidir::broadcast {

/// One delivery event as observed by one process.
struct Delivery {
  ProcessId sender = kNoProcess;
  SeqNum seq = 0;
  Bytes message;

  bool operator==(const Delivery&) const = default;
};

using DeliverFn = std::function<void(const Delivery&)>;

/// Per-process handle to an SRB implementation. All three implementations
/// expose this interface, so tests and applications are implementation-
/// agnostic.
class SrbEndpoint {
 public:
  virtual ~SrbEndpoint() = default;
  SrbEndpoint() = default;
  SrbEndpoint(const SrbEndpoint&) = delete;
  SrbEndpoint& operator=(const SrbEndpoint&) = delete;

  /// Broadcasts `message` as this process (the next sequence number is
  /// assigned automatically). Any process may act as a sender.
  virtual void broadcast(Bytes message) = 0;

  /// Registers the delivery callback (at most one).
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Everything delivered so far, in delivery order.
  const std::vector<Delivery>& delivered() const { return delivered_; }

  /// Highest contiguous sequence number delivered from `sender`.
  SeqNum delivered_up_to(ProcessId sender) const;

 protected:
  /// Implementations call this on every delivery.
  void record_delivery(Delivery d);

 private:
  DeliverFn deliver_;
  std::vector<Delivery> delivered_;
  std::map<ProcessId, SeqNum> high_;
};

// ---- property checkers ---------------------------------------------------

/// What one correct process contributes to an SRB property check.
struct SrbView {
  ProcessId id = kNoProcess;
  const SrbEndpoint* endpoint = nullptr;
  /// Messages this process broadcast (in order), if it acted as a sender
  /// and is correct. seq of broadcasts[i] is i+1.
  std::vector<Bytes> broadcasts;
};

/// A violated SRB property, with a human-readable witness.
struct SrbViolation {
  enum class Kind { Validity, Agreement, Sequencing, Integrity };
  Kind kind = Kind::Validity;
  std::string detail;
};

/// Checks all four properties over the quiesced execution. `views` must
/// contain only correct processes. Eventual properties (validity,
/// agreement) are interpreted at quiescence: what should "eventually"
/// happen must have happened by the time the execution went idle.
std::optional<SrbViolation> check_srb(const std::vector<SrbView>& views);

const char* to_string(SrbViolation::Kind kind);

}  // namespace unidir::broadcast
