// Signed echo broadcast (Reiter-style consistent broadcast), sequenced —
// the signature-based alternative to Bracha at the same n > 3f bound but
// with O(n) messages per broadcast instead of O(n²):
//
//   sender → all : SEND(seq, m)
//   replica→ sender : ECHO(seq, sig over digest)         — a signed vote
//   sender → all : FINAL(seq, m, ⌈(n+f+1)/2⌉ echo sigs)  — a certificate
//
// Two valid certificates for the same (sender, seq) share a correct
// echoer, and a correct replica echoes one value per slot — so no two
// correct processes deliver different values (consistency). What the
// cheaper protocol gives up relative to Bracha is *totality*: a faulty
// sender can produce a certificate and show it to only some processes;
// there is no READY amplification to finish the job. The SRB "agreement"
// property therefore only holds for correct senders — which is exactly
// the trade bench_srb quantifies (see the totality test in echo tests).
#pragma once

#include <map>
#include <set>

#include "broadcast/srb.h"
#include "crypto/signature.h"
#include "sim/world.h"
#include "wire/router.h"

namespace unidir::broadcast {

class EchoBroadcastEndpoint final : public SrbEndpoint {
 public:
  /// n = group size, f = fault bound; requires n > 3f.
  EchoBroadcastEndpoint(sim::Process& host, sim::Channel channel,
                        std::size_t n, std::size_t f);

  void broadcast(Bytes message) override;

  std::uint64_t protocol_messages_sent() const { return sent_; }

 private:
  struct SenderSlot {  // state for my own in-flight broadcasts, by seq
    Bytes message;
    std::map<ProcessId, crypto::Signature> echoes;
    bool finalized = false;
  };

  static Bytes echo_binding(ProcessId sender, SeqNum seq,
                            const Bytes& message);

  void handle_send(ProcessId from, SeqNum seq, Bytes message);
  void handle_echo(ProcessId from, SeqNum seq,
                   const crypto::Signature& sig);
  void handle_final(ProcessId from, SeqNum seq, Bytes message,
                    const std::vector<std::pair<ProcessId, crypto::Signature>>&
                        certificate);
  void flush(ProcessId sender);

  std::size_t quorum() const { return (n_ + f_) / 2 + 1; }

  sim::Process& host_;
  wire::Router router_;
  std::size_t n_;
  std::size_t f_;
  SeqNum my_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::map<SeqNum, SenderSlot> my_slots_;
  /// Echoed values per (sender, seq): one echo per slot, ever.
  std::map<std::pair<ProcessId, SeqNum>, Bytes> echoed_;
  std::map<ProcessId, std::map<SeqNum, Bytes>> accepted_;
};

}  // namespace unidir::broadcast
