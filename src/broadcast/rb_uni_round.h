// Unidirectional rounds from reliable broadcast, for the corner case
// f = 1, n ≥ 3 — the paper's Appendix B claim.
//
// The general separation (Section 4.1) says SRB cannot implement
// unidirectionality; this driver shows the one exception. Per round:
//
//   Phase 1: RB-broadcast (r, v, σ); wait for valid phase-1 messages from
//            n−1 distinct processes (own delivery counts).
//   Phase 2: RB-broadcast all phase-1 messages received; wait for phase-2
//            messages from n−1 distinct processes, each carrying signed
//            values from ≥ 2 distinct originators.
//
// Why it works with one fault: the n−1 processes a correct p hears from in
// phase 2 overlap every other correct p′'s phase-1 audience; since phase-2
// messages must contain ≥2 unforgeable values, the relays smuggle p's value
// to p′ (or vice versa) even if the direct link never delivers.
#pragma once

#include <map>
#include <set>

#include "broadcast/srb_hub.h"
#include "rounds/round_driver.h"
#include "wire/channels.h"
#include "wire/router.h"

namespace unidir::broadcast {

class RbUniRoundDriver final : public rounds::RoundDriver {
 public:
  /// `hub` supplies the reliable-broadcast primitive the construction
  /// assumes. Requires n ≥ 3; the unidirectional guarantee tolerates f = 1.
  RbUniRoundDriver(sim::Process& host, SrbHub& hub);

  void start_round(Bytes message, rounds::RoundDriver::Callback done) override;

 private:
  struct Phase1Entry {
    Bytes value;
    crypto::Signature sig;
  };

  void on_delivery(const Delivery& d);
  void absorb_phase1(ProcessId origin, RoundNum round, Phase1Entry entry);
  void check_progress();
  std::size_t quorum() const { return host_.world().size() - 1; }

  sim::Process& host_;
  std::unique_ptr<SrbHubEndpoint> rb_;
  /// Decode boundary for the payloads carried inside trusted RB envelopes;
  /// pseudo-channel, see wire/channels.h.
  wire::Router payload_router_;

  RoundNum active_round_ = 0;
  int stage_ = 0;  // 0 idle, 1 waiting for phase-1 quorum, 2 for phase-2
  rounds::RoundDriver::Callback done_;

  // Buffers survive across rounds (peers may run ahead).
  // phase1_[r][origin] = first valid signed value from `origin` in round r.
  std::map<RoundNum, std::map<ProcessId, Phase1Entry>> phase1_;
  // phase2_senders_[r] = processes whose round-r phase-2 message was valid.
  std::map<RoundNum, std::set<ProcessId>> phase2_senders_;
};

}  // namespace unidir::broadcast
