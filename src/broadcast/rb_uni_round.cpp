#include "broadcast/rb_uni_round.h"

#include "common/serde.h"

namespace unidir::broadcast {

namespace {

Bytes phase1_signing_bytes(ProcessId origin, RoundNum round,
                           const Bytes& value) {
  serde::Writer w;
  w.str("rb-uni-round");
  w.uvarint(origin);
  w.uvarint(round);
  w.bytes(value);
  return w.take();
}

/// A signed phase-1 value as carried inside phase-2 forwards.
struct ForwardedVal {
  ProcessId origin = kNoProcess;
  Bytes value;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(origin);
    w.bytes(value);
    sig.encode(w);
  }
  static ForwardedVal decode(serde::Reader& r) {
    ForwardedVal v;
    v.origin = serde::read<ProcessId>(r);
    v.value = r.bytes();
    v.sig = crypto::Signature::decode(r);
    return v;
  }
};

// The old Wire struct switched on a phase byte; each phase is now its own
// typed message routed by tag.
struct Phase1Msg {
  static constexpr wire::MsgDesc kDesc{1, "rb-uni-phase1"};

  RoundNum round = 0;
  Bytes value;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(round);
    w.bytes(value);
    sig.encode(w);
  }
  static Phase1Msg decode(serde::Reader& r) {
    Phase1Msg m;
    m.round = r.uvarint();
    m.value = r.bytes();
    m.sig = crypto::Signature::decode(r);
    return m;
  }
};

struct Phase2Msg {
  static constexpr wire::MsgDesc kDesc{2, "rb-uni-phase2"};

  RoundNum round = 0;
  std::vector<ForwardedVal> forwards;

  void encode(serde::Writer& w) const {
    w.uvarint(round);
    serde::write(w, forwards);
  }
  static Phase2Msg decode(serde::Reader& r) {
    Phase2Msg m;
    m.round = r.uvarint();
    m.forwards = serde::read<std::vector<ForwardedVal>>(r);
    return m;
  }
};

}  // namespace

RbUniRoundDriver::RbUniRoundDriver(sim::Process& host, SrbHub& hub)
    : host_(host),
      rb_(hub.make_endpoint(host)),
      payload_router_([this]() { return &host_.world().wire_stats(); },
                      wire::kRbUniPayloadCh) {
  UNIDIR_REQUIRE_MSG(host.world().size() >= 3,
                     "RB->uni corner case requires n >= 3");
  rb_->set_deliver([this](const Delivery& d) { on_delivery(d); });
  payload_router_.on<Phase1Msg>([this](ProcessId from, Phase1Msg m) {
    const sim::World& world = host_.world();
    // The RB layer authenticates `from`; the signature makes the value
    // *transferable* inside phase-2 forwards.
    if (m.sig.key != world.key_of(from)) return;
    if (!world.keys().verify(m.sig,
                             phase1_signing_bytes(from, m.round, m.value)))
      return;
    absorb_phase1(from, m.round, Phase1Entry{std::move(m.value), m.sig});
    check_progress();
  });
  payload_router_.on<Phase2Msg>([this](ProcessId from, Phase2Msg m) {
    const sim::World& world = host_.world();
    // Validate forwards; a phase-2 message counts toward the quorum only
    // if it carries valid values from >= 2 distinct originators.
    std::set<ProcessId> origins;
    for (ForwardedVal& f : m.forwards) {
      if (f.origin >= world.size()) continue;
      if (f.sig.key != world.key_of(f.origin)) continue;
      if (!world.keys().verify(
              f.sig, phase1_signing_bytes(f.origin, m.round, f.value)))
        continue;
      origins.insert(f.origin);
      absorb_phase1(f.origin, m.round, Phase1Entry{std::move(f.value), f.sig});
    }
    if (origins.size() >= 2) phase2_senders_[m.round].insert(from);
    check_progress();
  });
}

void RbUniRoundDriver::start_round(Bytes message,
                                   rounds::RoundDriver::Callback done) {
  active_round_ = begin(message);
  done_ = std::move(done);
  stage_ = 1;
  Phase1Msg m;
  m.round = active_round_;
  m.value = std::move(message);
  m.sig = host_.signer().sign(
      phase1_signing_bytes(host_.id(), active_round_, m.value));
  rb_->broadcast(wire::encode_tagged(m));
  check_progress();  // early arrivals may already satisfy the quorum
}

void RbUniRoundDriver::absorb_phase1(ProcessId origin, RoundNum round,
                                     Phase1Entry entry) {
  auto [it, inserted] = phase1_[round].emplace(origin, std::move(entry));
  if (inserted && origin != host_.id()) add_fresh(origin, it->second.value);
}

void RbUniRoundDriver::on_delivery(const Delivery& d) {
  // A Byzantine payload inside the trusted RB envelope is counted as
  // dropped_malformed on the pseudo-channel.
  payload_router_.dispatch(d.sender, d.message);
}

void RbUniRoundDriver::check_progress() {
  if (stage_ == 1) {
    const auto& p1 = phase1_[active_round_];
    if (p1.size() < quorum()) return;
    // Phase 2: forward everything received.
    Phase2Msg m;
    m.round = active_round_;
    for (const auto& [origin, entry] : p1)
      m.forwards.push_back({origin, entry.value, entry.sig});
    stage_ = 2;
    rb_->broadcast(wire::encode_tagged(m));
  }
  if (stage_ == 2) {
    if (phase2_senders_[active_round_].size() < quorum()) return;
    stage_ = 0;
    const RoundNum round = active_round_;
    active_round_ = 0;
    std::vector<rounds::Received> received;
    for (const auto& [origin, entry] : phase1_[round]) {
      if (origin == host_.id()) continue;
      received.push_back({origin, entry.value});
    }
    auto done = std::move(done_);
    done_ = nullptr;
    finish(std::move(received), done);
  }
}

}  // namespace unidir::broadcast
