#include "broadcast/rb_uni_round.h"

#include "common/serde.h"

namespace unidir::broadcast {

namespace {

Bytes phase1_signing_bytes(ProcessId origin, RoundNum round,
                           const Bytes& value) {
  serde::Writer w;
  w.str("rb-uni-round");
  w.uvarint(origin);
  w.uvarint(round);
  w.bytes(value);
  return w.take();
}

/// A signed phase-1 value as carried inside phase-2 forwards.
struct ForwardedVal {
  ProcessId origin = kNoProcess;
  Bytes value;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(origin);
    w.bytes(value);
    sig.encode(w);
  }
  static ForwardedVal decode(serde::Reader& r) {
    ForwardedVal v;
    v.origin = serde::read<ProcessId>(r);
    v.value = r.bytes();
    v.sig = crypto::Signature::decode(r);
    return v;
  }
};

struct Wire {
  RoundNum round = 0;
  std::uint8_t phase = 0;
  Bytes value;              // phase 1
  crypto::Signature sig;    // phase 1
  std::vector<ForwardedVal> forwards;  // phase 2

  void encode(serde::Writer& w) const {
    w.uvarint(round);
    w.u8(phase);
    if (phase == 1) {
      w.bytes(value);
      sig.encode(w);
    } else {
      serde::write(w, forwards);
    }
  }
  static Wire decode(serde::Reader& r) {
    Wire m;
    m.round = r.uvarint();
    m.phase = r.u8();
    if (m.phase == 1) {
      m.value = r.bytes();
      m.sig = crypto::Signature::decode(r);
    } else if (m.phase == 2) {
      m.forwards = serde::read<std::vector<ForwardedVal>>(r);
    } else {
      throw serde::DecodeError("bad phase");
    }
    return m;
  }
};

}  // namespace

RbUniRoundDriver::RbUniRoundDriver(sim::Process& host, SrbHub& hub)
    : host_(host), rb_(hub.make_endpoint(host)) {
  UNIDIR_REQUIRE_MSG(host.world().size() >= 3,
                     "RB->uni corner case requires n >= 3");
  rb_->set_deliver([this](const Delivery& d) { on_delivery(d); });
}

void RbUniRoundDriver::start_round(Bytes message,
                                   rounds::RoundDriver::Callback done) {
  active_round_ = begin(message);
  done_ = std::move(done);
  stage_ = 1;
  Wire w;
  w.round = active_round_;
  w.phase = 1;
  w.value = std::move(message);
  w.sig = host_.signer().sign(
      phase1_signing_bytes(host_.id(), active_round_, w.value));
  rb_->broadcast(serde::encode(w));
  check_progress();  // early arrivals may already satisfy the quorum
}

void RbUniRoundDriver::absorb_phase1(ProcessId origin, RoundNum round,
                                     Phase1Entry entry) {
  auto [it, inserted] = phase1_[round].emplace(origin, std::move(entry));
  if (inserted && origin != host_.id()) add_fresh(origin, it->second.value);
}

void RbUniRoundDriver::on_delivery(const Delivery& d) {
  Wire w;
  try {
    w = serde::decode<Wire>(d.message);
  } catch (const serde::DecodeError&) {
    return;  // Byzantine payload inside the trusted RB envelope
  }
  const sim::World& world = host_.world();
  if (w.phase == 1) {
    // The RB layer authenticates d.sender; the signature makes the value
    // *transferable* inside phase-2 forwards.
    if (w.sig.key != world.key_of(d.sender)) return;
    if (!world.keys().verify(w.sig,
                             phase1_signing_bytes(d.sender, w.round, w.value)))
      return;
    absorb_phase1(d.sender, w.round, Phase1Entry{std::move(w.value), w.sig});
  } else {
    // Validate forwards; a phase-2 message counts toward the quorum only
    // if it carries valid values from >= 2 distinct originators.
    std::set<ProcessId> origins;
    for (ForwardedVal& f : w.forwards) {
      if (f.origin >= world.size()) continue;
      if (f.sig.key != world.key_of(f.origin)) continue;
      if (!world.keys().verify(f.sig,
                               phase1_signing_bytes(f.origin, w.round, f.value)))
        continue;
      origins.insert(f.origin);
      absorb_phase1(f.origin, w.round, Phase1Entry{std::move(f.value), f.sig});
    }
    if (origins.size() >= 2) phase2_senders_[w.round].insert(d.sender);
  }
  check_progress();
}

void RbUniRoundDriver::check_progress() {
  if (stage_ == 1) {
    const auto& p1 = phase1_[active_round_];
    if (p1.size() < quorum()) return;
    // Phase 2: forward everything received.
    Wire w;
    w.round = active_round_;
    w.phase = 2;
    for (const auto& [origin, entry] : p1)
      w.forwards.push_back({origin, entry.value, entry.sig});
    stage_ = 2;
    rb_->broadcast(serde::encode(w));
  }
  if (stage_ == 2) {
    if (phase2_senders_[active_round_].size() < quorum()) return;
    stage_ = 0;
    const RoundNum round = active_round_;
    active_round_ = 0;
    std::vector<rounds::Received> received;
    for (const auto& [origin, entry] : phase1_[round]) {
      if (origin == host_.id()) continue;
      received.push_back({origin, entry.value});
    }
    auto done = std::move(done_);
    done_ = nullptr;
    finish(std::move(received), done);
  }
}

}  // namespace unidir::broadcast
