#include "broadcast/srb_from_uni.h"

#include <algorithm>

namespace unidir::broadcast {

// ---- wire types --------------------------------------------------------------

Bytes SignedVal::signing_bytes() const {
  serde::Writer w;
  w.str("srb-uni-val");
  w.uvarint(sender);
  w.uvarint(seq);
  w.bytes(msg);
  return w.take();
}

void SignedVal::encode(serde::Writer& w) const {
  w.uvarint(sender);
  w.uvarint(seq);
  w.bytes(msg);
  sender_sig.encode(w);
}

SignedVal SignedVal::decode(serde::Reader& r) {
  SignedVal v;
  v.sender = serde::read<ProcessId>(r);
  v.seq = r.uvarint();
  v.msg = r.bytes();
  v.sender_sig = crypto::Signature::decode(r);
  return v;
}

Bytes CopyVote::signing_bytes(const SignedVal& val) {
  serde::Writer w;
  w.str("srb-uni-copy");
  w.uvarint(val.sender);
  w.uvarint(val.seq);
  w.bytes(val.msg);
  return w.take();
}

void CopyVote::encode(serde::Writer& w) const {
  w.uvarint(copier);
  sig.encode(w);
}

CopyVote CopyVote::decode(serde::Reader& r) {
  CopyVote c;
  c.copier = serde::read<ProcessId>(r);
  c.sig = crypto::Signature::decode(r);
  return c;
}

Bytes L1Proof::signing_bytes() const {
  serde::Writer w;
  w.str("srb-uni-l1");
  w.uvarint(val.sender);
  w.uvarint(val.seq);
  w.bytes(val.msg);
  std::vector<ProcessId> ids;
  ids.reserve(copies.size());
  for (const CopyVote& c : copies) ids.push_back(c.copier);
  std::sort(ids.begin(), ids.end());
  w.uvarint(ids.size());
  for (ProcessId id : ids) w.uvarint(id);
  return w.take();
}

void L1Proof::encode(serde::Writer& w) const {
  val.encode(w);
  serde::write(w, copies);
  w.uvarint(compiler);
  compiler_sig.encode(w);
}

L1Proof L1Proof::decode(serde::Reader& r) {
  L1Proof p;
  p.val = SignedVal::decode(r);
  p.copies = serde::read<std::vector<CopyVote>>(r);
  p.compiler = serde::read<ProcessId>(r);
  p.compiler_sig = crypto::Signature::decode(r);
  return p;
}

void L2Proof::encode(serde::Writer& w) const {
  val.encode(w);
  serde::write(w, l1s);
}

L2Proof L2Proof::decode(serde::Reader& r) {
  L2Proof p;
  p.val = SignedVal::decode(r);
  p.l1s = serde::read<std::vector<L1Proof>>(r);
  return p;
}

// ---- validation ----------------------------------------------------------------

bool valid_signed_val(const sim::World& w, const SignedVal& val) {
  if (val.seq == 0) return false;
  if (val.sender >= w.size()) return false;
  if (val.sender_sig.key != w.key_of(val.sender)) return false;
  return w.keys().verify(val.sender_sig, val.signing_bytes());
}

bool valid_copy(const sim::World& w, const SignedVal& val, const CopyVote& c) {
  if (c.copier >= w.size()) return false;
  if (c.sig.key != w.key_of(c.copier)) return false;
  return w.keys().verify(c.sig, CopyVote::signing_bytes(val));
}

bool valid_l1(const sim::World& w, const L1Proof& p, std::size_t t) {
  if (!valid_signed_val(w, p.val)) return false;
  if (p.compiler >= w.size()) return false;
  std::set<ProcessId> copiers;
  for (const CopyVote& c : p.copies) {
    if (!valid_copy(w, p.val, c)) return false;
    copiers.insert(c.copier);
  }
  if (copiers.size() < t + 1) return false;
  if (p.compiler_sig.key != w.key_of(p.compiler)) return false;
  return w.keys().verify(p.compiler_sig, p.signing_bytes());
}

bool valid_l2(const sim::World& w, const L2Proof& p, std::size_t t) {
  if (!valid_signed_val(w, p.val)) return false;
  std::set<ProcessId> compilers;
  for (const L1Proof& l1 : p.l1s) {
    if (!l1.val.same_value(p.val)) return false;
    if (!valid_l1(w, l1, t)) return false;
    compilers.insert(l1.compiler);
  }
  // t+1 distinct compilers ⇒ at least one correct process vouched, which
  // is the anchor of the no-conflicting-L2 argument.
  return compilers.size() >= t + 1;
}

void UniSlotPayload::encode(serde::Writer& w) const {
  serde::write(w, my_vals);
  serde::write(w, copies);
  serde::write(w, l1s);
  serde::write(w, l2s);
}

UniSlotPayload UniSlotPayload::decode(serde::Reader& r) {
  UniSlotPayload p;
  p.my_vals = serde::read<std::vector<SignedVal>>(r);
  p.copies = serde::read<std::vector<std::pair<SignedVal, CopyVote>>>(r);
  p.l1s = serde::read<std::vector<L1Proof>>(r);
  p.l2s = serde::read<std::vector<L2Proof>>(r);
  return p;
}

// ---- engine ---------------------------------------------------------------------

UniSrbEndpoint::UniSrbEndpoint(sim::Process& host, rounds::RoundDriver& driver,
                               std::size_t n, std::size_t t,
                               UniSrbOptions options)
    : host_(host),
      driver_(driver),
      payload_router_([this]() { return &host_.world().wire_stats(); },
                      wire::kUniSrbPayloadCh),
      n_(n),
      t_(t),
      options_(options) {
  UNIDIR_REQUIRE_MSG(n >= 2 * t + 1, "Algorithm 1 requires n >= 2t+1");
  payload_router_.on<UniSlotPayload>(
      [this](ProcessId from, UniSlotPayload p) { on_payload(from, std::move(p)); });
  driver_.set_activity_listener([this] {
    if (started_ && parked_) {
      idle_rounds_ = 0;
      ensure_rounding();
    }
  });
}

void UniSrbEndpoint::start() {
  if (started_) return;
  started_ = true;
  ensure_rounding();
}

void UniSrbEndpoint::broadcast(Bytes message) {
  SignedVal val;
  val.sender = host_.id();
  val.seq = ++my_seq_;
  val.msg = std::move(message);
  val.sender_sig = host_.signer().sign(val.signing_bytes());
  my_history_.push_back(std::move(val));
  dirty_ = true;
  if (started_) {
    idle_rounds_ = 0;
    ensure_rounding();
  }
}

bool UniSrbEndpoint::poisoned(ProcessId sender) const {
  auto it = senders_.find(sender);
  return it != senders_.end() && it->second.poisoned;
}

UniSrbEndpoint::SenderState& UniSrbEndpoint::state_of(ProcessId sender) {
  return senders_[sender];
}

void UniSrbEndpoint::ensure_rounding() {
  if (!started_ || driver_.round_in_flight()) return;
  parked_ = false;
  run_round();
}

void UniSrbEndpoint::run_round() {
  dirty_ = false;
  Bytes payload = build_payload();
  payload_bytes_ += payload.size();
  driver_.start_round(std::move(payload),
                      [this](RoundNum, const std::vector<rounds::Received>& r) {
                        on_round_done(r);
                      });
}

void UniSrbEndpoint::on_round_done(const std::vector<rounds::Received>&) {
  // Consume everything newly observed — reads of registers return the full
  // past, not just same-round entries. The round boundary itself is what
  // gates the L1/L2 compilations below (end_of_round_transitions), which
  // is all the safety argument needs.
  for (const rounds::Received& r : driver_.take_fresh()) {
    if (r.from == host_.id()) continue;
    payload_router_.dispatch(r.from, r.message);
  }
  // The sender participates in its own broadcast like any replica: it
  // trivially "receives" its own next value and counter-signs a copy.
  // Without this, t+1 copy quorums could be unreachable when only t+1
  // correct processes (including the sender) are around.
  SenderState& self_state = state_of(host_.id());
  if (self_state.next <= my_history_.size())
    consider_val(host_.id(), my_history_[self_state.next - 1]);
  end_of_round_transitions();

  if (dirty_) {
    idle_rounds_ = 0;
  } else {
    ++idle_rounds_;
  }
  if (idle_rounds_ < options_.idle_limit) {
    run_round();
  } else {
    parked_ = true;
  }
}

Bytes UniSrbEndpoint::build_payload() {
  UniSlotPayload p;
  p.my_vals = my_history_;
  for (auto& [sender, st] : senders_) {
    if (st.adopted && st.my_copy)
      p.copies.emplace_back(*st.adopted, *st.my_copy);
    if (st.my_l1) p.l1s.push_back(*st.my_l1);
  }
  for (const auto& [key, proof] : l2_store_) p.l2s.push_back(proof);
  return wire::encode_tagged(p);
}

void UniSrbEndpoint::on_payload(ProcessId from, UniSlotPayload p) {
  for (const SignedVal& val : p.my_vals) consider_val(from, val);
  for (const auto& [val, vote] : p.copies) consider_copy(from, val, vote);
  for (const L1Proof& l1 : p.l1s) consider_l1(from, l1);
  for (const L2Proof& l2 : p.l2s) consider_l2(l2);
}

void UniSrbEndpoint::note_equivocation(SenderState& st, const SignedVal& val) {
  st.seen_msgs.insert(val.msg);
  if (st.seen_msgs.size() >= 2 && !st.poisoned) {
    st.poisoned = true;
    dirty_ = true;
  }
}

void UniSrbEndpoint::consider_val(ProcessId relay, const SignedVal& val) {
  // A value counts as "received from the sender" only out of the sender's
  // own slot — mirroring reads of the sender's register.
  if (val.sender != relay) return;
  SenderState& st = state_of(val.sender);
  if (val.seq != st.next) return;
  if (!valid_signed_val(host_.world(), val)) return;
  note_equivocation(st, val);
  if (st.phase != SenderState::Phase::WaitForSender || st.adopted) return;
  // Adopt: counter-sign and advance to WaitForL1 (Alg. 1 line "Send
  // sign(val) to all; state = WaitForL1Proof").
  st.adopted = val;
  CopyVote mine;
  mine.copier = host_.id();
  mine.sig = host_.signer().sign(CopyVote::signing_bytes(val));
  st.my_copy = mine;
  st.copies[mine.copier] = mine;
  st.phase = SenderState::Phase::WaitForL1;
  // Our copy first travels in the NEXT round; only a round completed after
  // that may compile an L1 proof.
  st.earliest_l1_round = driver_.completed_rounds() + 1;
  dirty_ = true;
}

void UniSrbEndpoint::consider_copy(ProcessId relay, const SignedVal& val,
                                   const CopyVote& vote) {
  // Copies are only accepted out of the copier's own slot.
  if (vote.copier != relay) return;
  SenderState& st = state_of(val.sender);
  if (val.seq != st.next) return;
  if (!valid_signed_val(host_.world(), val)) return;
  note_equivocation(st, val);
  if (!st.adopted || !st.adopted->same_value(val)) return;
  if (!valid_copy(host_.world(), val, vote)) return;
  if (st.copies.emplace(vote.copier, vote).second) dirty_ = true;
}

void UniSrbEndpoint::consider_l1(ProcessId relay, const L1Proof& proof) {
  if (proof.compiler != relay) return;
  SenderState& st = state_of(proof.val.sender);
  if (proof.val.seq != st.next) return;
  if (!valid_l1(host_.world(), proof, t_)) return;
  note_equivocation(st, proof.val);
  if (!st.adopted || !st.adopted->same_value(proof.val)) return;
  if (st.l1s.emplace(proof.compiler, proof).second) dirty_ = true;
}

void UniSrbEndpoint::consider_l2(const L2Proof& proof) {
  const auto key = std::make_pair(proof.val.sender, proof.val.seq);
  if (l2_store_.contains(key)) return;
  if (proof.val.seq <= delivered_up_to(proof.val.sender)) return;
  if (!valid_l2(host_.world(), proof, t_)) return;
  l2_store_.emplace(key, proof);
  dirty_ = true;
  maybe_deliver(proof.val.sender);
}

void UniSrbEndpoint::end_of_round_transitions() {
  const RoundNum completed = driver_.completed_rounds();
  for (auto& [sender, st] : senders_) {
    if (st.phase == SenderState::Phase::WaitForL1 && !st.poisoned &&
        st.copies.size() >= t_ + 1 && completed >= st.earliest_l1_round) {
      L1Proof l1;
      l1.val = *st.adopted;
      for (const auto& [copier, vote] : st.copies) l1.copies.push_back(vote);
      l1.compiler = host_.id();
      l1.compiler_sig = host_.signer().sign(l1.signing_bytes());
      st.my_l1 = l1;
      st.l1s[host_.id()] = std::move(l1);
      st.phase = SenderState::Phase::WaitForL2;
      st.earliest_l2_round = completed + 1;
      dirty_ = true;
    }
    if (st.phase == SenderState::Phase::WaitForL2 &&
        st.l1s.size() >= t_ + 1 && completed >= st.earliest_l2_round) {
      L2Proof l2;
      l2.val = *st.adopted;
      for (const auto& [compiler, proof] : st.l1s) l2.l1s.push_back(proof);
      UNIDIR_CHECK(valid_l2(host_.world(), l2, t_));
      l2_store_.emplace(std::make_pair(sender, st.next), std::move(l2));
      dirty_ = true;
    }
    maybe_deliver(sender);
  }
}

void UniSrbEndpoint::maybe_deliver(ProcessId sender) {
  SenderState& st = state_of(sender);
  while (true) {
    auto it = l2_store_.find({sender, st.next});
    if (it == l2_store_.end()) return;
    Delivery d;
    d.sender = sender;
    d.seq = st.next;
    d.message = it->second.val.msg;
    host_.output("srb-deliver", serde::encode(std::pair<ProcessId, SeqNum>{
                                    d.sender, d.seq}));
    record_delivery(std::move(d));
    st.next += 1;
    st.reset_for_next_seq();
    dirty_ = true;
  }
}

}  // namespace unidir::broadcast
