#include "broadcast/noneq.h"

#include "common/serde.h"

namespace unidir::broadcast {

namespace {

struct NoneqVal {
  Bytes value;
  crypto::Signature sig;

  static Bytes signing_bytes(ProcessId sender, const Bytes& value) {
    serde::Writer w;
    w.str("noneq-bcast");
    w.uvarint(sender);
    w.bytes(value);
    return w.take();
  }

  void encode(serde::Writer& w) const {
    w.bytes(value);
    sig.encode(w);
  }
  static NoneqVal decode(serde::Reader& r) {
    NoneqVal v;
    v.value = r.bytes();
    v.sig = crypto::Signature::decode(r);
    return v;
  }
};

/// Batch of forwarded sender values — one round payload's worth.
struct NoneqBatch {
  static constexpr wire::MsgDesc kDesc{1, "noneq-batch"};

  std::vector<NoneqVal> vals;

  void encode(serde::Writer& w) const { serde::write(w, vals); }
  static NoneqBatch decode(serde::Reader& r) {
    return {serde::read<std::vector<NoneqVal>>(r)};
  }
};

}  // namespace

NonEqBroadcast::NonEqBroadcast(sim::Process& host,
                               rounds::RoundDriver& driver, ProcessId sender)
    : host_(host),
      driver_(driver),
      payload_router_([this]() { return &host_.world().wire_stats(); },
                      wire::kNoneqPayloadCh),
      sender_(sender) {
  payload_router_.on<NoneqBatch>([this](ProcessId, NoneqBatch batch) {
    const sim::World& w = host_.world();
    for (NoneqVal& v : batch.vals) {
      if (v.sig.key != w.key_of(sender_)) continue;
      if (!w.keys().verify(v.sig, NoneqVal::signing_bytes(sender_, v.value)))
        continue;
      seen_.emplace(std::move(v.value), v.sig);
    }
  });
}

Bytes NonEqBroadcast::payload() const {
  NoneqBatch batch;
  batch.vals.reserve(seen_.size());
  for (const auto& [value, sig] : seen_) batch.vals.push_back({value, sig});
  return wire::encode_tagged(batch);
}

void NonEqBroadcast::absorb(const std::vector<rounds::Received>& received) {
  for (const rounds::Received& r : received)
    payload_router_.dispatch(r.from, r.message);
}

void NonEqBroadcast::run(std::optional<Bytes> input, CommitFn on_commit) {
  UNIDIR_REQUIRE_MSG((host_.id() == sender_) == input.has_value(),
                     "exactly the designated sender provides an input");
  if (input) {
    NoneqVal v;
    v.value = std::move(*input);
    v.sig = host_.signer().sign(NoneqVal::signing_bytes(sender_, v.value));
    seen_.emplace(std::move(v.value), v.sig);
  }

  // Round 1: the sender's value travels; everyone else sends an empty
  // forward list. Round 2: forward everything seen; commit at the end.
  driver_.start_round(
      payload(),
      [this, on_commit = std::move(on_commit)](
          RoundNum, const std::vector<rounds::Received>& r1) {
        absorb(r1);
        driver_.start_round(
            payload(),
            [this, on_commit](RoundNum,
                              const std::vector<rounds::Received>& r2) {
              absorb(r2);
              committed_ = true;
              if (seen_.size() == 1) {
                value_ = seen_.begin()->first;
              } else {
                value_ = std::nullopt;  // ⊥: equivocation or silence
              }
              host_.output("noneq-commit",
                           value_ ? *value_ : bytes_of("<bot>"));
              if (on_commit) on_commit(value_);
            });
      });
}

}  // namespace unidir::broadcast
