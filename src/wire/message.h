// Typed wire messages.
//
// A wire message is a plain struct that (a) round-trips through serde via
// the usual member encode/decode pair and (b) names itself with a static
// descriptor `kDesc` — the one-byte tag it travels under on its channel and
// a human-readable name for stats and logs. The tag byte is written by
// encode_tagged() and consumed by the router before the body decoder runs,
// so message structs never see their own tag and the per-protocol
// `tagged()` helpers and switch-on-tag decoders disappear.
//
// Tags are scoped per channel: two messages may share a tag value as long
// as they never share a channel (the router rejects duplicate registration
// on one channel; wire/channels.h keeps the channels themselves distinct).
#pragma once

#include <concepts>
#include <cstdint>

#include "common/bytes.h"
#include "common/serde.h"

namespace unidir::wire {

/// Declarative descriptor a message struct exposes as `static constexpr
/// MsgDesc kDesc`.
struct MsgDesc {
  std::uint8_t tag = 0;
  const char* name = "?";
};

template <typename M>
concept WireMessage = requires(const M& m, serde::Writer& w, serde::Reader& r) {
  { M::kDesc.tag } -> std::convertible_to<std::uint8_t>;
  { M::kDesc.name } -> std::convertible_to<const char*>;
  m.encode(w);
  { M::decode(r) } -> std::convertible_to<M>;
};

/// Encodes `m` prefixed with its channel tag — the bytes a router expects.
template <WireMessage M>
Bytes encode_tagged(const M& m) {
  serde::Writer w;
  w.u8(M::kDesc.tag);
  m.encode(w);
  return w.take();
}

}  // namespace unidir::wire
