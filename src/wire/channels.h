// Central registry of channel ids.
//
// A channel multiplexes one (sender, receiver) link between protocol
// components; ids only need to be distinct within one world, but keeping
// every assignment in one table (instead of per-file magic numbers) makes
// collisions impossible to introduce silently — the static_assert below
// fails the build if two entries ever coincide. Tests that build private
// toy worlds may still use ad-hoc ids < 50; everything the library itself
// instantiates draws from here.
//
// Pseudo-channels: components that receive bytes through a carrier other
// than the network (SRB deliveries, round-driver payload slots) still route
// those bytes through a wire::Router for uniform malformed-input hardening
// and stats. Their "channel" never appears on an Envelope; it exists purely
// as a stats/dispatch key, and lives at 200+ to stay clear of real links
// (StrongAgreement claims [kStrongAgreementChBase, kStrongAgreementChBase
// + n) for per-instance Dolev–Strong channels).
#pragma once

#include <cstddef>

#include "common/types.h"

namespace unidir::wire {

// -- SMR (client <-> replicas) ----------------------------------------------
inline constexpr Channel kClientRequestCh = 50;
inline constexpr Channel kClientReplyCh = 51;
inline constexpr Channel kMinBftCh = 52;
inline constexpr Channel kPbftCh = 53;

// -- core experiments -------------------------------------------------------
inline constexpr Channel kSeparationSrbCh = 70;
inline constexpr Channel kClassificationRoundCh = 80;
inline constexpr Channel kClassificationSrbCh = 81;

// -- agreement --------------------------------------------------------------
inline constexpr Channel kDolevStrongCh = 90;
/// StrongAgreement runs n Dolev–Strong instances on [base, base + n).
inline constexpr Channel kStrongAgreementChBase = 100;
inline constexpr Channel kStrongAgreementChMax = 199;

// -- pseudo-channels (decode boundaries with a non-network carrier) ---------
inline constexpr Channel kRbUniPayloadCh = 200;
inline constexpr Channel kUniSrbPayloadCh = 201;
inline constexpr Channel kNoneqPayloadCh = 202;
inline constexpr Channel kTrincAttestCh = 203;

namespace detail {
inline constexpr Channel kRegistered[] = {
    kClientRequestCh,     kClientReplyCh,          kMinBftCh,
    kPbftCh,              kSeparationSrbCh,        kClassificationRoundCh,
    kClassificationSrbCh, kDolevStrongCh,          kStrongAgreementChBase,
    kStrongAgreementChMax, kRbUniPayloadCh,        kUniSrbPayloadCh,
    kNoneqPayloadCh,      kTrincAttestCh,
};

constexpr bool all_distinct() {
  constexpr std::size_t n = sizeof(kRegistered) / sizeof(kRegistered[0]);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (kRegistered[i] == kRegistered[j]) return false;
  return true;
}

constexpr bool none_in_strong_agreement_range() {
  for (Channel c : kRegistered)
    if (c > kStrongAgreementChBase && c < kStrongAgreementChMax) return false;
  return true;
}
}  // namespace detail

static_assert(detail::all_distinct(), "channel id registered twice");
static_assert(detail::none_in_strong_agreement_range(),
              "channel id collides with StrongAgreement's instance range");

}  // namespace unidir::wire
