// Per-channel, per-message-type wire accounting.
//
// Every router shares one StatsHub owned by the World (exposed next to
// SimulatorStats / NetworkStats), so a test or experiment can ask "how many
// pbft-prepare messages were dropped as malformed?" without instrumenting
// the protocol. Counters split by direction (sent/received with byte
// totals) and by drop reason: `dropped_malformed` (body failed to decode or
// left trailing bytes), `dropped_unknown_tag` (no handler registered for
// the tag — the silent `default: break` of the old hand-rolled switches,
// now counted), and `dropped_filtered` (sender rejected by a router's peer
// filter).
//
// Header-only with common-layer dependencies only, so sim/world.h can embed
// a StatsHub without a link cycle (wire's router links against sim).
#pragma once

#include <cstdint>
#include <map>

#include "common/types.h"

namespace unidir::wire {

/// Counters for one message type on one channel.
struct TypeStats {
  const char* name = "?";
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t dropped_malformed = 0;
};

/// Counters for one channel, with a per-tag breakdown.
struct ChannelStats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  /// Payload whose tag byte was unreadable, or whose body failed to decode
  /// or left trailing bytes (the per-type breakdown attributes the latter
  /// two to the tag's type).
  std::uint64_t dropped_malformed = 0;
  /// Tag byte decoded but no handler is registered for it.
  std::uint64_t dropped_unknown_tag = 0;
  /// Sender rejected by the router's peer filter.
  std::uint64_t dropped_filtered = 0;
  /// Signature/UI verifications this channel's handlers submitted as
  /// grouped batches (quorum messages carrying several attestations), and
  /// how many groups. jobs/batches is the channel's batch occupancy.
  std::uint64_t verify_jobs = 0;
  std::uint64_t verify_batches = 0;

  std::map<std::uint8_t, TypeStats> types;

  TypeStats& type(std::uint8_t tag, const char* name) {
    TypeStats& t = types[tag];
    t.name = name;
    return t;
  }
};

class StatsHub {
 public:
  ChannelStats& channel(Channel ch) { return channels_[ch]; }
  const std::map<Channel, ChannelStats>& channels() const { return channels_; }

  void note_sent(Channel ch, std::uint8_t tag, const char* name,
                 std::size_t bytes) {
    ChannelStats& cs = channel(ch);
    ++cs.sent;
    cs.bytes_sent += bytes;
    TypeStats& t = cs.type(tag, name);
    ++t.sent;
    t.bytes_sent += bytes;
  }

  void note_verify_batch(Channel ch, std::size_t jobs) {
    ChannelStats& cs = channel(ch);
    ++cs.verify_batches;
    cs.verify_jobs += jobs;
  }

  /// Folds `other`'s counts into this hub and zeroes `other` — the fold
  /// half of the World's per-execution-shard hubs (sharded RealRuntime
  /// handlers each write their own hub; the primary absorbs them when the
  /// loops are parked). Draining keeps the fold idempotent: calling it
  /// twice never double-counts.
  void merge_from(StatsHub& other) {
    for (auto& [ch, ocs] : other.channels_) {
      ChannelStats& cs = channels_[ch];
      cs.sent += ocs.sent;
      cs.received += ocs.received;
      cs.bytes_sent += ocs.bytes_sent;
      cs.bytes_received += ocs.bytes_received;
      cs.dropped_malformed += ocs.dropped_malformed;
      cs.dropped_unknown_tag += ocs.dropped_unknown_tag;
      cs.dropped_filtered += ocs.dropped_filtered;
      cs.verify_jobs += ocs.verify_jobs;
      cs.verify_batches += ocs.verify_batches;
      for (auto& [tag, ot] : ocs.types) {
        TypeStats& t = cs.type(tag, ot.name);
        t.sent += ot.sent;
        t.received += ot.received;
        t.bytes_sent += ot.bytes_sent;
        t.bytes_received += ot.bytes_received;
        t.dropped_malformed += ot.dropped_malformed;
      }
    }
    other.channels_.clear();
  }

  // -- aggregates (fuzz sweeps assert on these) -----------------------------
  std::uint64_t total_verify_jobs() const {
    return sum([](const ChannelStats& c) { return c.verify_jobs; });
  }
  std::uint64_t total_verify_batches() const {
    return sum([](const ChannelStats& c) { return c.verify_batches; });
  }
  std::uint64_t total_received() const {
    return sum([](const ChannelStats& c) { return c.received; });
  }
  std::uint64_t total_dropped_malformed() const {
    return sum([](const ChannelStats& c) { return c.dropped_malformed; });
  }
  std::uint64_t total_dropped_unknown_tag() const {
    return sum([](const ChannelStats& c) { return c.dropped_unknown_tag; });
  }
  std::uint64_t total_dropped() const {
    return sum([](const ChannelStats& c) {
      return c.dropped_malformed + c.dropped_unknown_tag + c.dropped_filtered;
    });
  }

 private:
  template <typename F>
  std::uint64_t sum(F f) const {
    std::uint64_t n = 0;
    for (const auto& [ch, cs] : channels_) n += f(cs);
    return n;
  }

  std::map<Channel, ChannelStats> channels_;
};

}  // namespace unidir::wire
