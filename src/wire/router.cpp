#include "wire/router.h"

namespace unidir::wire {

void Router::dispatch(ProcessId from, const Bytes& payload) {
  StatsHub* h = hub();
  ChannelStats* cs = h ? &h->channel(channel_) : nullptr;
  if (cs) {
    ++cs->received;
    cs->bytes_received += payload.size();
  }
  if (filter_ && !filter_(from)) {
    if (cs) ++cs->dropped_filtered;
    return;
  }
  if (payload.empty()) {
    if (cs) ++cs->dropped_malformed;
    UNIDIR_DEBUG("wire: dropping empty payload from " << from << " on channel "
                                                      << channel_);
    return;
  }
  serde::Reader r(payload);
  const std::uint8_t tag = r.u8();
  auto it = entries_.find(tag);
  if (it == entries_.end()) {
    if (cs) ++cs->dropped_unknown_tag;
    UNIDIR_WARN("wire: dropping unknown tag " << static_cast<int>(tag)
                                              << " on channel " << channel_
                                              << " from process " << from);
    return;
  }
  it->second.decode_and_run(from, r, payload.size());
}

}  // namespace unidir::wire
