// Typed message router: the library's single decode boundary.
//
// A Router binds to a (Process, Channel) pair and dispatches incoming
// payloads to typed handlers:
//
//     wire::Router router(host, kMyCh);
//     router.on<Prepare>([this](ProcessId from, Prepare p) { ... });
//     router.broadcast(Prepare{...});
//
// The tag comes from each message's declarative descriptor (M::kDesc);
// registering two messages with one tag on the same channel throws at
// registration time. Incoming bytes are hardened in exactly one place:
// a missing/unknown tag, a body that fails to decode, or trailing bytes
// after the body all drop the message *counted* (per channel and per
// message type, in the World's wire::StatsHub) and log-visible — never a
// silent `default: break`. Handlers therefore only ever see fully-decoded,
// exactly-consumed messages from admitted senders.
//
// Components whose bytes arrive through a carrier other than the network
// (SRB deliveries, round-driver payload slots) construct the detached
// flavour — Router(hub, pseudo_channel) — and feed dispatch() themselves,
// getting the same hardening and accounting. See wire/channels.h for the
// pseudo-channel ids.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "common/log.h"
#include "common/payload.h"
#include "common/serde.h"
#include "common/types.h"
#include "sim/world.h"
#include "wire/message.h"
#include "wire/stats.h"

namespace unidir::wire {

// -- encode side ------------------------------------------------------------

/// Sends one typed message on a channel, counting it in the world's wire
/// stats. The `tagged()` byte-twiddling helpers this replaces lived in every
/// protocol's .cpp.
template <WireMessage M>
void send(sim::World& world, ProcessId from, ProcessId to, Channel channel,
          const M& m) {
  Bytes bytes = encode_tagged(m);
  world.wire_stats().note_sent(channel, M::kDesc.tag, M::kDesc.name,
                               bytes.size());
  world.send_message(from, to, channel, std::move(bytes));
}

/// Broadcasts one typed message: encoded once, every per-link send shares
/// the same COW buffer.
template <WireMessage M>
void broadcast(sim::World& world, ProcessId from, Channel channel, const M& m,
               bool include_self = false) {
  const Payload shared = Payload(encode_tagged(m));
  for (ProcessId p = 0; p < world.size(); ++p) {
    if (p == from && !include_self) continue;
    world.wire_stats().note_sent(channel, M::kDesc.tag, M::kDesc.name,
                                 shared.size());
    world.send_message(from, p, channel, shared);
  }
}

/// Sends one typed message to an explicit recipient list (e.g. a client
/// addressing its replica group), sharing one COW buffer across links.
template <WireMessage M>
void multicast(sim::World& world, ProcessId from,
               const std::vector<ProcessId>& to, Channel channel, const M& m) {
  const Payload shared = Payload(encode_tagged(m));
  for (ProcessId p : to) {
    world.wire_stats().note_sent(channel, M::kDesc.tag, M::kDesc.name,
                                 shared.size());
    world.send_message(from, p, channel, shared);
  }
}

template <WireMessage M>
void send(sim::Process& from, ProcessId to, Channel channel, const M& m) {
  send(from.world(), from.id(), to, channel, m);
}

template <WireMessage M>
void broadcast(sim::Process& from, Channel channel, const M& m,
               bool include_self = false) {
  broadcast(from.world(), from.id(), channel, m, include_self);
}

// -- decode side ------------------------------------------------------------

class Router {
 public:
  /// Where the counters live; consulted lazily at dispatch/send time (a
  /// Process's world pointer is only wired after construction). May return
  /// nullptr: dispatch still hardens, it just can't account.
  using HubFn = std::function<StatsHub*()>;

  /// Binds to (host, channel): claims the channel on the host process and
  /// counts into the host world's StatsHub.
  Router(sim::Process& host, Channel channel)
      : host_(&host), channel_(channel), hub_([&host]() {
          return &host.world().wire_stats();
        }) {
    host.register_channel(
        channel, [this](ProcessId from, const Bytes& payload) {
          dispatch(from, payload);
        });
  }

  /// Detached decode boundary for non-network carriers; the caller invokes
  /// dispatch() itself.
  Router(HubFn hub, Channel channel)
      : channel_(channel), hub_(std::move(hub)) {}

  // Registered handlers capture `this`.
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Registers the handler for M on this channel. Throws (UNIDIR_REQUIRE)
  /// if M::kDesc.tag is already taken.
  template <WireMessage M>
  Router& on(std::function<void(ProcessId, M)> handler) {
    UNIDIR_REQUIRE(handler != nullptr);
    auto [it, inserted] = entries_.try_emplace(M::kDesc.tag);
    UNIDIR_REQUIRE_MSG(inserted,
                       "wire: tag already registered on this channel");
    it->second.name = M::kDesc.name;
    it->second.decode_and_run = [this, handler = std::move(handler)](
                                    ProcessId from, serde::Reader& r,
                                    std::size_t bytes) {
      std::optional<M> msg;
      try {
        msg.emplace(M::decode(r));
        r.expect_done();  // exact-consume: trailing bytes are malformed
      } catch (const serde::DecodeError& e) {
        if (StatsHub* h = hub()) {
          ChannelStats& cs = h->channel(channel_);
          ++cs.dropped_malformed;
          ++cs.type(M::kDesc.tag, M::kDesc.name).dropped_malformed;
        }
        UNIDIR_DEBUG("wire: dropping malformed " << M::kDesc.name << " from "
                                                 << from << " on channel "
                                                 << channel_ << ": "
                                                 << e.what());
        return;
      }
      if (StatsHub* h = hub()) {
        TypeStats& t = h->channel(channel_).type(M::kDesc.tag, M::kDesc.name);
        ++t.received;
        t.bytes_received += bytes;
      }
      handler(from, std::move(*msg));
    };
    return *this;
  }

  /// Admission control by sender id (e.g. "replicas only"); rejected
  /// messages are counted as dropped_filtered before any decoding.
  void set_peer_filter(std::function<bool(ProcessId)> filter) {
    filter_ = std::move(filter);
  }

  /// Runs the full decode boundary on one payload.
  void dispatch(ProcessId from, const Bytes& payload);

  template <WireMessage M>
  void send(ProcessId to, const M& m) {
    wire::send(host(), to, channel_, m);
  }

  template <WireMessage M>
  void broadcast(const M& m, bool include_self = false) {
    wire::broadcast(host(), channel_, m, include_self);
  }

  Channel channel() const { return channel_; }

 private:
  struct Entry {
    const char* name = "?";
    std::function<void(ProcessId, serde::Reader&, std::size_t)> decode_and_run;
  };

  StatsHub* hub() const { return hub_ ? hub_() : nullptr; }
  sim::Process& host() const {
    UNIDIR_CHECK_MSG(host_ != nullptr, "router not bound to a process");
    return *host_;
  }

  sim::Process* host_ = nullptr;
  Channel channel_ = 0;
  HubFn hub_;
  std::function<bool(ProcessId)> filter_;
  std::map<std::uint8_t, Entry> entries_;
};

}  // namespace unidir::wire
