#include "crypto/hmac.h"

#include <array>

namespace unidir::crypto {

HmacKey::HmacKey(ByteSpan key) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    const Digest kd = Sha256::hash(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  std::array<std::uint8_t, kBlock> ipad;
  std::array<std::uint8_t, kBlock> opad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  // Each pad is exactly one SHA-256 block, so after these updates both
  // hashers sit on a block boundary with the pad fully compressed: the
  // stored objects are pure midstates with nothing buffered.
  inner_.update(ipad);
  outer_.update(opad);
}

Digest HmacKey::mac(ByteSpan message) const {
  Sha256 inner = inner_;
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer = outer_;
  outer.update(inner_digest);
  return outer.finish();
}

Digest hmac_sha256(ByteSpan key, ByteSpan message) {
  return HmacKey(key).mac(message);
}

void hmac_sha256_batch(HmacJob* jobs, std::size_t n) {
  // Fixed-size chunks keep the scratch buffers on the stack; the chunk
  // width only has to exceed the lane count for the lanes to stay full.
  constexpr std::size_t kChunk = 16;
  while (n > 0) {
    const std::size_t c = n < kChunk ? n : kChunk;
    Digest inner[kChunk];
    ShaJob sj[kChunk];
    for (std::size_t i = 0; i < c; ++i)
      sj[i] = ShaJob{&jobs[i].key->inner_midstate(), jobs[i].message,
                     &inner[i]};
    Sha256::hash_batch(sj, c);
    for (std::size_t i = 0; i < c; ++i)
      sj[i] = ShaJob{&jobs[i].key->outer_midstate(),
                     ByteSpan(inner[i].data(), inner[i].size()), jobs[i].out};
    Sha256::hash_batch(sj, c);
    jobs += c;
    n -= c;
  }
}

}  // namespace unidir::crypto
