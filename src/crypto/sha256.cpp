#include "crypto/sha256.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "common/check.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define UNIDIR_SHA_NI_CANDIDATE 1
#include <immintrin.h>
#endif

namespace unidir::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

using State = std::array<std::uint32_t, 8>;

/// Portable multi-block compression: the working variables stay in locals
/// across the whole run of blocks; state_ is touched once per call.
void compress_portable(State& state, const std::uint8_t* data,
                       std::size_t blocks) {
  std::uint32_t s0v = state[0], s1v = state[1], s2v = state[2],
                s3v = state[3], s4v = state[4], s5v = state[5],
                s6v = state[6], s7v = state[7];
  for (std::size_t blk = 0; blk < blocks; ++blk, data += 64) {
    std::array<std::uint32_t, 64> w;
    for (std::size_t i = 0; i < 16; ++i) w[i] = load_be32(data + 4 * i);
    for (std::size_t i = 16; i < 64; ++i) {
      const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^
                               std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^
                               std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = s0v, b = s1v, c = s2v, d = s3v, e = s4v, f = s5v,
                  g = s6v, h = s7v;
    for (std::size_t i = 0; i < 64; ++i) {
      const std::uint32_t s1 =
          std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kRoundConstants[i] + w[i];
      const std::uint32_t s0 =
          std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    s0v += a;
    s1v += b;
    s2v += c;
    s3v += d;
    s4v += e;
    s5v += f;
    s6v += g;
    s7v += h;
  }
  state[0] = s0v;
  state[1] = s1v;
  state[2] = s2v;
  state[3] = s3v;
  state[4] = s4v;
  state[5] = s5v;
  state[6] = s6v;
  state[7] = s7v;
}

#ifdef UNIDIR_SHA_NI_CANDIDATE

/// Four rounds: two sha256rnds2 issues consuming the low/high halves of the
/// prepared message+constant vector. A named function (not a lambda) because
/// lambdas do not inherit the enclosing function's target attribute.
__attribute__((target("sha,sse4.1,ssse3"), always_inline)) inline void
shani_rounds(__m128i& state0, __m128i& state1, __m128i msg_k) {
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg_k);
  state0 =
      _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg_k, 0x0E));
}

/// x86 SHA extensions path (standard _mm_sha256* round sequence). Selected
/// at startup only when CPUID reports SHA support.
__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(
    State& state, const std::uint8_t* data, std::size_t blocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  const auto* k = kRoundConstants.data();

  // state_ holds a..h; the SHA-NI registers want ABEF / CDGH lanes.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i msg0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    __m128i msg1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    __m128i msg2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    __m128i msg3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg0 = _mm_shuffle_epi8(msg0, kShuffle);
    msg1 = _mm_shuffle_epi8(msg1, kShuffle);
    msg2 = _mm_shuffle_epi8(msg2, kShuffle);
    msg3 = _mm_shuffle_epi8(msg3, kShuffle);

    auto kvec = [&](std::size_t i) {
      return _mm_set_epi32(static_cast<int>(k[i + 3]),
                           static_cast<int>(k[i + 2]),
                           static_cast<int>(k[i + 1]),
                           static_cast<int>(k[i + 0]));
    };
    // Rounds 0-15.
    shani_rounds(state0, state1, _mm_add_epi32(msg0, kvec(0)));
    shani_rounds(state0, state1, _mm_add_epi32(msg1, kvec(4)));
    shani_rounds(state0, state1, _mm_add_epi32(msg2, kvec(8)));
    shani_rounds(state0, state1, _mm_add_epi32(msg3, kvec(12)));

    // Rounds 16-63: four message-schedule extensions per 16 rounds.
    for (std::size_t i = 16; i < 64; i += 16) {
      msg0 = _mm_sha256msg1_epu32(msg0, msg1);
      msg0 = _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4));
      msg0 = _mm_sha256msg2_epu32(msg0, msg3);
      shani_rounds(state0, state1, _mm_add_epi32(msg0, kvec(i)));

      msg1 = _mm_sha256msg1_epu32(msg1, msg2);
      msg1 = _mm_add_epi32(msg1, _mm_alignr_epi8(msg0, msg3, 4));
      msg1 = _mm_sha256msg2_epu32(msg1, msg0);
      shani_rounds(state0, state1, _mm_add_epi32(msg1, kvec(i + 4)));

      msg2 = _mm_sha256msg1_epu32(msg2, msg3);
      msg2 = _mm_add_epi32(msg2, _mm_alignr_epi8(msg1, msg0, 4));
      msg2 = _mm_sha256msg2_epu32(msg2, msg1);
      shani_rounds(state0, state1, _mm_add_epi32(msg2, kvec(i + 8)));

      msg3 = _mm_sha256msg1_epu32(msg3, msg0);
      msg3 = _mm_add_epi32(msg3, _mm_alignr_epi8(msg2, msg1, 4));
      msg3 = _mm_sha256msg2_epu32(msg3, msg2);
      shani_rounds(state0, state1, _mm_add_epi32(msg3, kvec(i + 12)));
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);      // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);   // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // EFGH lanes
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

bool sha_ni_supported() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
         __builtin_cpu_supports("ssse3");
}

#endif  // UNIDIR_SHA_NI_CANDIDATE

using CompressFn = void (*)(State&, const std::uint8_t*, std::size_t);

CompressFn pick_compress() {
#ifdef UNIDIR_SHA_NI_CANDIDATE
  if (sha_ni_supported()) return &compress_shani;
#endif
  return &compress_portable;
}

const CompressFn kCompress = pick_compress();

}  // namespace

bool Sha256::hardware_accelerated() {
  return kCompress != &compress_portable;
}

Sha256::Sha256() : state_(kInitialState), buffer_{} {}

void Sha256::update(ByteSpan data) {
  UNIDIR_CHECK_MSG(!finished_, "Sha256 reused after finish()");
  UNIDIR_CHECK(buffered_ < 64);
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      kCompress(state_, buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  // Multi-block fast path: all full blocks in one compression call.
  const std::size_t blocks = (data.size() - offset) / 64;
  if (blocks > 0) {
    kCompress(state_, data.data() + offset, blocks);
    offset += blocks * 64;
  }
  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffered_);
  }
}

Digest Sha256::finish() {
  UNIDIR_CHECK_MSG(!finished_, "Sha256 reused after finish()");
  UNIDIR_CHECK(buffered_ < 64);
  finished_ = true;

  // Pad in place: 0x80, zeros to byte 56 (mod 64), 8-byte big-endian bit
  // length — driving the compression directly, no update() re-entry.
  const std::uint64_t bit_len = total_bytes_ * 8;
  buffer_[buffered_++] = 0x80;
  if (buffered_ > 56) {
    std::memset(buffer_.data() + buffered_, 0, 64 - buffered_);
    kCompress(state_, buffer_.data(), 1);
    buffered_ = 0;
  }
  std::memset(buffer_.data() + buffered_, 0, 56 - buffered_);
  for (int i = 0; i < 8; ++i)
    buffer_[56 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  kCompress(state_, buffer_.data(), 1);
  buffered_ = 0;

  Digest out;
  for (std::size_t i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, state_[i]);
  return out;
}

Digest Sha256::hash(ByteSpan data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Bytes digest_bytes(const Digest& d) {
  return Bytes(d.begin(), d.end());
}

Digest digest_from_bytes(ByteSpan data) {
  if (data.size() != kSha256DigestSize)
    throw std::invalid_argument("digest_from_bytes: wrong size");
  Digest d;
  std::memcpy(d.data(), data.data(), kSha256DigestSize);
  return d;
}

}  // namespace unidir::crypto
