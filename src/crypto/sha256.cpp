#include "crypto/sha256.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "common/check.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define UNIDIR_SHA_NI_CANDIDATE 1
#include <immintrin.h>
#endif

namespace unidir::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

using State = std::array<std::uint32_t, 8>;

/// Portable multi-block compression: the working variables stay in locals
/// across the whole run of blocks; state_ is touched once per call.
void compress_portable(State& state, const std::uint8_t* data,
                       std::size_t blocks) {
  std::uint32_t s0v = state[0], s1v = state[1], s2v = state[2],
                s3v = state[3], s4v = state[4], s5v = state[5],
                s6v = state[6], s7v = state[7];
  for (std::size_t blk = 0; blk < blocks; ++blk, data += 64) {
    std::array<std::uint32_t, 64> w;
    for (std::size_t i = 0; i < 16; ++i) w[i] = load_be32(data + 4 * i);
    for (std::size_t i = 16; i < 64; ++i) {
      const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^
                               std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^
                               std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = s0v, b = s1v, c = s2v, d = s3v, e = s4v, f = s5v,
                  g = s6v, h = s7v;
    for (std::size_t i = 0; i < 64; ++i) {
      const std::uint32_t s1 =
          std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kRoundConstants[i] + w[i];
      const std::uint32_t s0 =
          std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    s0v += a;
    s1v += b;
    s2v += c;
    s3v += d;
    s4v += e;
    s5v += f;
    s6v += g;
    s7v += h;
  }
  state[0] = s0v;
  state[1] = s1v;
  state[2] = s2v;
  state[3] = s3v;
  state[4] = s4v;
  state[5] = s5v;
  state[6] = s6v;
  state[7] = s7v;
}

/// Portable 4-wide multi-buffer compression: one block from each of four
/// independent streams, processed in lockstep. The per-stream working
/// variables live in lane-indexed arrays and every round updates all four
/// lanes before advancing, so the four dependency chains interleave — the
/// compiler keeps the fixed-trip-count lane loops unrolled (and, at -O3,
/// vectorized across the lane dimension). Bit-identical to four serial
/// compress_portable calls.
void compress4_portable(State* const* states,
                        const std::uint8_t* const* blocks) {
  std::uint32_t w[64][4];
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t l = 0; l < 4; ++l)
      w[i][l] = load_be32(blocks[l] + 4 * i);
  for (std::size_t i = 16; i < 64; ++i)
    for (std::size_t l = 0; l < 4; ++l) {
      const std::uint32_t s0 = std::rotr(w[i - 15][l], 7) ^
                               std::rotr(w[i - 15][l], 18) ^
                               (w[i - 15][l] >> 3);
      const std::uint32_t s1 = std::rotr(w[i - 2][l], 17) ^
                               std::rotr(w[i - 2][l], 19) ^
                               (w[i - 2][l] >> 10);
      w[i][l] = w[i - 16][l] + s0 + w[i - 7][l] + s1;
    }

  std::uint32_t a[4], b[4], c[4], d[4], e[4], f[4], g[4], h[4];
  for (std::size_t l = 0; l < 4; ++l) {
    const State& s = *states[l];
    a[l] = s[0];
    b[l] = s[1];
    c[l] = s[2];
    d[l] = s[3];
    e[l] = s[4];
    f[l] = s[5];
    g[l] = s[6];
    h[l] = s[7];
  }
  for (std::size_t i = 0; i < 64; ++i)
    for (std::size_t l = 0; l < 4; ++l) {
      const std::uint32_t s1 =
          std::rotr(e[l], 6) ^ std::rotr(e[l], 11) ^ std::rotr(e[l], 25);
      const std::uint32_t ch = (e[l] & f[l]) ^ (~e[l] & g[l]);
      const std::uint32_t t1 = h[l] + s1 + ch + kRoundConstants[i] + w[i][l];
      const std::uint32_t s0 =
          std::rotr(a[l], 2) ^ std::rotr(a[l], 13) ^ std::rotr(a[l], 22);
      const std::uint32_t maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
      const std::uint32_t t2 = s0 + maj;
      h[l] = g[l];
      g[l] = f[l];
      f[l] = e[l];
      e[l] = d[l] + t1;
      d[l] = c[l];
      c[l] = b[l];
      b[l] = a[l];
      a[l] = t1 + t2;
    }
  for (std::size_t l = 0; l < 4; ++l) {
    State& s = *states[l];
    s[0] += a[l];
    s[1] += b[l];
    s[2] += c[l];
    s[3] += d[l];
    s[4] += e[l];
    s[5] += f[l];
    s[6] += g[l];
    s[7] += h[l];
  }
}

#ifdef UNIDIR_SHA_NI_CANDIDATE

/// Four rounds: two sha256rnds2 issues consuming the low/high halves of the
/// prepared message+constant vector. A named function (not a lambda) because
/// lambdas do not inherit the enclosing function's target attribute.
__attribute__((target("sha,sse4.1,ssse3"), always_inline)) inline void
shani_rounds(__m128i& state0, __m128i& state1, __m128i msg_k) {
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg_k);
  state0 =
      _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg_k, 0x0E));
}

/// x86 SHA extensions path (standard _mm_sha256* round sequence). Selected
/// at startup only when CPUID reports SHA support.
__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(
    State& state, const std::uint8_t* data, std::size_t blocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  const auto* k = kRoundConstants.data();

  // state_ holds a..h; the SHA-NI registers want ABEF / CDGH lanes.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i msg0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    __m128i msg1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    __m128i msg2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    __m128i msg3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg0 = _mm_shuffle_epi8(msg0, kShuffle);
    msg1 = _mm_shuffle_epi8(msg1, kShuffle);
    msg2 = _mm_shuffle_epi8(msg2, kShuffle);
    msg3 = _mm_shuffle_epi8(msg3, kShuffle);

    auto kvec = [&](std::size_t i) {
      return _mm_set_epi32(static_cast<int>(k[i + 3]),
                           static_cast<int>(k[i + 2]),
                           static_cast<int>(k[i + 1]),
                           static_cast<int>(k[i + 0]));
    };
    // Rounds 0-15.
    shani_rounds(state0, state1, _mm_add_epi32(msg0, kvec(0)));
    shani_rounds(state0, state1, _mm_add_epi32(msg1, kvec(4)));
    shani_rounds(state0, state1, _mm_add_epi32(msg2, kvec(8)));
    shani_rounds(state0, state1, _mm_add_epi32(msg3, kvec(12)));

    // Rounds 16-63: four message-schedule extensions per 16 rounds.
    for (std::size_t i = 16; i < 64; i += 16) {
      msg0 = _mm_sha256msg1_epu32(msg0, msg1);
      msg0 = _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4));
      msg0 = _mm_sha256msg2_epu32(msg0, msg3);
      shani_rounds(state0, state1, _mm_add_epi32(msg0, kvec(i)));

      msg1 = _mm_sha256msg1_epu32(msg1, msg2);
      msg1 = _mm_add_epi32(msg1, _mm_alignr_epi8(msg0, msg3, 4));
      msg1 = _mm_sha256msg2_epu32(msg1, msg0);
      shani_rounds(state0, state1, _mm_add_epi32(msg1, kvec(i + 4)));

      msg2 = _mm_sha256msg1_epu32(msg2, msg3);
      msg2 = _mm_add_epi32(msg2, _mm_alignr_epi8(msg1, msg0, 4));
      msg2 = _mm_sha256msg2_epu32(msg2, msg1);
      shani_rounds(state0, state1, _mm_add_epi32(msg2, kvec(i + 8)));

      msg3 = _mm_sha256msg1_epu32(msg3, msg0);
      msg3 = _mm_add_epi32(msg3, _mm_alignr_epi8(msg2, msg1, 4));
      msg3 = _mm_sha256msg2_epu32(msg3, msg2);
      shani_rounds(state0, state1, _mm_add_epi32(msg3, kvec(i + 12)));
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);      // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);   // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // EFGH lanes
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

/// SHA-NI 2-wide multi-buffer compression: one block from each of two
/// independent streams with every round-group statement duplicated, so the
/// two sha256rnds2 dependency chains interleave in the out-of-order window
/// instead of serializing on the instruction's latency. Two lanes (not
/// four) because each needs 6 live xmm registers (2 state, 4 message
/// schedule); a third would spill. Bit-identical to two serial calls.
__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani_x2(
    State& state_a, const std::uint8_t* da, State& state_b,
    const std::uint8_t* db) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  const auto* k = kRoundConstants.data();

  __m128i ta = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_a[0]));
  __m128i a1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_a[4]));
  ta = _mm_shuffle_epi32(ta, 0xB1);
  a1 = _mm_shuffle_epi32(a1, 0x1B);
  __m128i a0 = _mm_alignr_epi8(ta, a1, 8);
  a1 = _mm_blend_epi16(a1, ta, 0xF0);
  __m128i tb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_b[0]));
  __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_b[4]));
  tb = _mm_shuffle_epi32(tb, 0xB1);
  b1 = _mm_shuffle_epi32(b1, 0x1B);
  __m128i b0 = _mm_alignr_epi8(tb, b1, 8);
  b1 = _mm_blend_epi16(b1, tb, 0xF0);

  const __m128i abef_a = a0, cdgh_a = a1, abef_b = b0, cdgh_b = b1;

  __m128i am0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(da + 0));
  __m128i am1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(da + 16));
  __m128i am2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(da + 32));
  __m128i am3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(da + 48));
  __m128i bm0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(db + 0));
  __m128i bm1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(db + 16));
  __m128i bm2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(db + 32));
  __m128i bm3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(db + 48));
  am0 = _mm_shuffle_epi8(am0, kShuffle);
  am1 = _mm_shuffle_epi8(am1, kShuffle);
  am2 = _mm_shuffle_epi8(am2, kShuffle);
  am3 = _mm_shuffle_epi8(am3, kShuffle);
  bm0 = _mm_shuffle_epi8(bm0, kShuffle);
  bm1 = _mm_shuffle_epi8(bm1, kShuffle);
  bm2 = _mm_shuffle_epi8(bm2, kShuffle);
  bm3 = _mm_shuffle_epi8(bm3, kShuffle);

  auto kvec = [&](std::size_t i) {
    return _mm_set_epi32(
        static_cast<int>(k[i + 3]), static_cast<int>(k[i + 2]),
        static_cast<int>(k[i + 1]), static_cast<int>(k[i + 0]));
  };
  // Rounds 0-15, both streams per group.
  shani_rounds(a0, a1, _mm_add_epi32(am0, kvec(0)));
  shani_rounds(b0, b1, _mm_add_epi32(bm0, kvec(0)));
  shani_rounds(a0, a1, _mm_add_epi32(am1, kvec(4)));
  shani_rounds(b0, b1, _mm_add_epi32(bm1, kvec(4)));
  shani_rounds(a0, a1, _mm_add_epi32(am2, kvec(8)));
  shani_rounds(b0, b1, _mm_add_epi32(bm2, kvec(8)));
  shani_rounds(a0, a1, _mm_add_epi32(am3, kvec(12)));
  shani_rounds(b0, b1, _mm_add_epi32(bm3, kvec(12)));

  // Rounds 16-63 with the message-schedule extension duplicated per stream.
  for (std::size_t i = 16; i < 64; i += 16) {
    am0 = _mm_sha256msg1_epu32(am0, am1);
    bm0 = _mm_sha256msg1_epu32(bm0, bm1);
    am0 = _mm_add_epi32(am0, _mm_alignr_epi8(am3, am2, 4));
    bm0 = _mm_add_epi32(bm0, _mm_alignr_epi8(bm3, bm2, 4));
    am0 = _mm_sha256msg2_epu32(am0, am3);
    bm0 = _mm_sha256msg2_epu32(bm0, bm3);
    shani_rounds(a0, a1, _mm_add_epi32(am0, kvec(i)));
    shani_rounds(b0, b1, _mm_add_epi32(bm0, kvec(i)));

    am1 = _mm_sha256msg1_epu32(am1, am2);
    bm1 = _mm_sha256msg1_epu32(bm1, bm2);
    am1 = _mm_add_epi32(am1, _mm_alignr_epi8(am0, am3, 4));
    bm1 = _mm_add_epi32(bm1, _mm_alignr_epi8(bm0, bm3, 4));
    am1 = _mm_sha256msg2_epu32(am1, am0);
    bm1 = _mm_sha256msg2_epu32(bm1, bm0);
    shani_rounds(a0, a1, _mm_add_epi32(am1, kvec(i + 4)));
    shani_rounds(b0, b1, _mm_add_epi32(bm1, kvec(i + 4)));

    am2 = _mm_sha256msg1_epu32(am2, am3);
    bm2 = _mm_sha256msg1_epu32(bm2, bm3);
    am2 = _mm_add_epi32(am2, _mm_alignr_epi8(am1, am0, 4));
    bm2 = _mm_add_epi32(bm2, _mm_alignr_epi8(bm1, bm0, 4));
    am2 = _mm_sha256msg2_epu32(am2, am1);
    bm2 = _mm_sha256msg2_epu32(bm2, bm1);
    shani_rounds(a0, a1, _mm_add_epi32(am2, kvec(i + 8)));
    shani_rounds(b0, b1, _mm_add_epi32(bm2, kvec(i + 8)));

    am3 = _mm_sha256msg1_epu32(am3, am0);
    bm3 = _mm_sha256msg1_epu32(bm3, bm0);
    am3 = _mm_add_epi32(am3, _mm_alignr_epi8(am2, am1, 4));
    bm3 = _mm_add_epi32(bm3, _mm_alignr_epi8(bm2, bm1, 4));
    am3 = _mm_sha256msg2_epu32(am3, am2);
    bm3 = _mm_sha256msg2_epu32(bm3, bm2);
    shani_rounds(a0, a1, _mm_add_epi32(am3, kvec(i + 12)));
    shani_rounds(b0, b1, _mm_add_epi32(bm3, kvec(i + 12)));
  }

  a0 = _mm_add_epi32(a0, abef_a);
  a1 = _mm_add_epi32(a1, cdgh_a);
  b0 = _mm_add_epi32(b0, abef_b);
  b1 = _mm_add_epi32(b1, cdgh_b);

  ta = _mm_shuffle_epi32(a0, 0x1B);
  a1 = _mm_shuffle_epi32(a1, 0xB1);
  a0 = _mm_blend_epi16(ta, a1, 0xF0);
  a1 = _mm_alignr_epi8(a1, ta, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_a[0]), a0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_a[4]), a1);
  tb = _mm_shuffle_epi32(b0, 0x1B);
  b1 = _mm_shuffle_epi32(b1, 0xB1);
  b0 = _mm_blend_epi16(tb, b1, 0xF0);
  b1 = _mm_alignr_epi8(b1, tb, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_b[0]), b0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_b[4]), b1);
}

bool sha_ni_supported() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
         __builtin_cpu_supports("ssse3");
}

#endif  // UNIDIR_SHA_NI_CANDIDATE

using CompressFn = void (*)(State&, const std::uint8_t*, std::size_t);

CompressFn pick_compress() {
#ifdef UNIDIR_SHA_NI_CANDIDATE
  if (sha_ni_supported()) return &compress_shani;
#endif
  return &compress_portable;
}

const CompressFn kCompress = pick_compress();

/// Multi-buffer backend: compresses `nblocks` blocks from each of `n`
/// streams in lockstep. `blocks` is a lane-major pointer matrix — stream
/// i's block b lives at blocks[i * nblocks + b] — so one lockstep run may
/// cross a stream's data/padding-tail boundary. Lockstep runs let a wide
/// backend keep the per-stream states resident in registers across the
/// whole run instead of reloading them per block.
using CompressManyFn = void (*)(State* const* states,
                                const std::uint8_t* const* blocks,
                                std::size_t n, std::size_t nblocks);

void compress_many_portable(State* const* states,
                            const std::uint8_t* const* blocks,
                            std::size_t n, std::size_t nblocks) {
  while (n >= 4) {
    for (std::size_t blk = 0; blk < nblocks; ++blk) {
      const std::uint8_t* b4[4] = {
          blocks[0 * nblocks + blk], blocks[1 * nblocks + blk],
          blocks[2 * nblocks + blk], blocks[3 * nblocks + blk]};
      compress4_portable(states, b4);
    }
    states += 4;
    blocks += 4 * nblocks;
    n -= 4;
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t blk = 0; blk < nblocks; ++blk)
      compress_portable(*states[i], blocks[i * nblocks + blk], 1);
}

#ifdef UNIDIR_SHA_NI_CANDIDATE
void compress_many_shani(State* const* states,
                         const std::uint8_t* const* blocks, std::size_t n,
                         std::size_t nblocks) {
  while (n >= 2) {
    for (std::size_t blk = 0; blk < nblocks; ++blk)
      compress_shani_x2(*states[0], blocks[blk], *states[1],
                        blocks[nblocks + blk]);
    states += 2;
    blocks += 2 * nblocks;
    n -= 2;
  }
  if (n > 0)
    for (std::size_t blk = 0; blk < nblocks; ++blk)
      compress_shani(*states[0], blocks[blk], 1);
}

// GCC 12's AVX-512 intrinsic headers build several intrinsics on
// _mm512_undefined_epi32(), whose deliberately-uninitialized temporary
// trips -Wmaybe-uninitialized once inlined here. Header-internal false
// positive; suppressed for this section only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/// 16x16 transpose of 32-bit words across r[0..15], in place: the standard
/// unpack32 / unpack64 / shuffle128 / shuffle128 network, 64 lane ops total
/// versus ~512 scalar loads and stores for the element-wise layout change.
__attribute__((target("avx512f"), always_inline)) inline void transpose16_zmm(
    __m512i r[16]) {
  __m512i t[16];
  for (std::size_t i = 0; i < 16; i += 2) {
    t[i] = _mm512_unpacklo_epi32(r[i], r[i + 1]);
    t[i + 1] = _mm512_unpackhi_epi32(r[i], r[i + 1]);
  }
  __m512i u[16];
  for (std::size_t i = 0; i < 16; i += 4) {
    u[i + 0] = _mm512_unpacklo_epi64(t[i + 0], t[i + 2]);
    u[i + 1] = _mm512_unpackhi_epi64(t[i + 0], t[i + 2]);
    u[i + 2] = _mm512_unpacklo_epi64(t[i + 1], t[i + 3]);
    u[i + 3] = _mm512_unpackhi_epi64(t[i + 1], t[i + 3]);
  }
  for (std::size_t j = 0; j < 4; ++j) {
    t[j] = _mm512_shuffle_i32x4(u[j], u[j + 4], 0x88);
    t[j + 4] = _mm512_shuffle_i32x4(u[j], u[j + 4], 0xdd);
    t[j + 8] = _mm512_shuffle_i32x4(u[j + 8], u[j + 12], 0x88);
    t[j + 12] = _mm512_shuffle_i32x4(u[j + 8], u[j + 12], 0xdd);
  }
  for (std::size_t j = 0; j < 4; ++j) {
    r[j] = _mm512_shuffle_i32x4(t[j], t[j + 8], 0x88);
    r[j + 8] = _mm512_shuffle_i32x4(t[j], t[j + 8], 0xdd);
    r[j + 4] = _mm512_shuffle_i32x4(t[j + 4], t[j + 12], 0x88);
    r[j + 12] = _mm512_shuffle_i32x4(t[j + 4], t[j + 12], 0xdd);
  }
}

/// AVX-512 16-wide multi-buffer compression: word i of all 16 streams lives
/// in one zmm lane-vector, so each SHA round is ~18 512-bit ops for 16
/// blocks (vpternlogd fuses xor3/ch/maj, vprord replaces the rotate pairs).
/// The per-stream states stay in registers across the whole `nblocks`
/// lockstep run; messages are byte-swapped and transposed with vpshufb plus
/// the in-register network above. The prepared schedule spills to a
/// L1-resident wk[] buffer so the round loop's register pressure stays at 8
/// states + 4 temps. ~1.9x the block rate of the SHA-NI single-stream path
/// on wide cores — and bit-identical to it, like every backend here.
__attribute__((target("avx512f,avx512bw"))) void compress16_avx512(
    State* const* states, const std::uint8_t* const* blocks,
    std::size_t nblocks) {
  const __m512i kBswap = _mm512_broadcast_i32x4(
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL));
  alignas(64) std::uint32_t sbuf[8][16];
  for (std::size_t l = 0; l < 16; ++l) {
    const State& s = *states[l];
    for (std::size_t j = 0; j < 8; ++j) sbuf[j][l] = s[j];
  }
  __m512i a = _mm512_load_si512(sbuf[0]), b = _mm512_load_si512(sbuf[1]),
          c = _mm512_load_si512(sbuf[2]), d = _mm512_load_si512(sbuf[3]),
          e = _mm512_load_si512(sbuf[4]), f = _mm512_load_si512(sbuf[5]),
          g = _mm512_load_si512(sbuf[6]), h = _mm512_load_si512(sbuf[7]);

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    __m512i r[16];
    for (std::size_t l = 0; l < 16; ++l)
      r[l] = _mm512_shuffle_epi8(
          _mm512_loadu_si512(blocks[l * nblocks + blk]), kBswap);
    transpose16_zmm(r);

    alignas(64) std::uint32_t wk[64][16];
    __m512i w[16];
    for (std::size_t i = 0; i < 16; ++i) {
      w[i] = r[i];
      _mm512_store_si512(
          wk[i], _mm512_add_epi32(
                     w[i], _mm512_set1_epi32(
                               static_cast<int>(kRoundConstants[i]))));
    }
    for (std::size_t i = 16; i < 64; ++i) {
      const __m512i w15 = w[(i - 15) & 15], w2 = w[(i - 2) & 15];
      const __m512i s0 = _mm512_ternarylogic_epi32(
          _mm512_ror_epi32(w15, 7), _mm512_ror_epi32(w15, 18),
          _mm512_srli_epi32(w15, 3), 0x96);
      const __m512i s1 = _mm512_ternarylogic_epi32(
          _mm512_ror_epi32(w2, 17), _mm512_ror_epi32(w2, 19),
          _mm512_srli_epi32(w2, 10), 0x96);
      const __m512i nw = _mm512_add_epi32(
          _mm512_add_epi32(w[i & 15], s0),
          _mm512_add_epi32(w[(i - 7) & 15], s1));
      w[i & 15] = nw;
      _mm512_store_si512(
          wk[i], _mm512_add_epi32(
                     nw, _mm512_set1_epi32(
                             static_cast<int>(kRoundConstants[i]))));
    }

    const __m512i a0 = a, b0 = b, c0 = c, d0 = d, e0 = e, f0 = f, g0 = g,
                  h0 = h;
    for (std::size_t i = 0; i < 64; ++i) {
      const __m512i wki = _mm512_load_si512(wk[i]);
      const __m512i s1 = _mm512_ternarylogic_epi32(
          _mm512_ror_epi32(e, 6), _mm512_ror_epi32(e, 11),
          _mm512_ror_epi32(e, 25), 0x96);
      const __m512i ch = _mm512_ternarylogic_epi32(e, f, g, 0xCA);
      const __m512i t1 =
          _mm512_add_epi32(_mm512_add_epi32(h, s1), _mm512_add_epi32(ch, wki));
      const __m512i s0 = _mm512_ternarylogic_epi32(
          _mm512_ror_epi32(a, 2), _mm512_ror_epi32(a, 13),
          _mm512_ror_epi32(a, 22), 0x96);
      const __m512i maj = _mm512_ternarylogic_epi32(a, b, c, 0xE8);
      h = g;
      g = f;
      f = e;
      e = _mm512_add_epi32(d, t1);
      d = c;
      c = b;
      b = a;
      a = _mm512_add_epi32(t1, _mm512_add_epi32(s0, maj));
    }
    a = _mm512_add_epi32(a, a0);
    b = _mm512_add_epi32(b, b0);
    c = _mm512_add_epi32(c, c0);
    d = _mm512_add_epi32(d, d0);
    e = _mm512_add_epi32(e, e0);
    f = _mm512_add_epi32(f, f0);
    g = _mm512_add_epi32(g, g0);
    h = _mm512_add_epi32(h, h0);
  }

  _mm512_store_si512(sbuf[0], a);
  _mm512_store_si512(sbuf[1], b);
  _mm512_store_si512(sbuf[2], c);
  _mm512_store_si512(sbuf[3], d);
  _mm512_store_si512(sbuf[4], e);
  _mm512_store_si512(sbuf[5], f);
  _mm512_store_si512(sbuf[6], g);
  _mm512_store_si512(sbuf[7], h);
  for (std::size_t l = 0; l < 16; ++l) {
    State& s = *states[l];
    for (std::size_t j = 0; j < 8; ++j) s[j] = sbuf[j][l];
  }
}

#pragma GCC diagnostic pop

bool avx512_supported() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw");
}
#endif  // UNIDIR_SHA_NI_CANDIDATE

// ---- Padding-tail assembly -------------------------------------------------

/// Builds a one-block padding tail (rem < 56 message bytes): the rem
/// trailing message bytes, 0x80, zeros, 8-byte big-endian bit length.
using BuildTail1Fn = void (*)(std::uint8_t* tail, const std::uint8_t* src,
                              std::size_t rem, std::uint64_t bit_len);

void build_tail1_portable(std::uint8_t* tail, const std::uint8_t* src,
                          std::size_t rem, std::uint64_t bit_len) {
  if (rem > 0) std::memcpy(tail, src, rem);
  tail[rem] = 0x80;
  std::memset(tail + rem + 1, 0, 56 - (rem + 1));
  for (int i = 0; i < 8; ++i)
    tail[56 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
}

#ifdef UNIDIR_SHA_NI_CANDIDATE
/// One masked 64-byte store instead of memcpy + memset + a byte loop. The
/// win is not just instruction count: compress16_avx512 reloads each tail
/// as a full zmm, and a tail assembled by narrow scalar stores fails
/// store-to-load forwarding at that load (~23 ns per stream measured
/// here). A single full-width store forwards cleanly.
__attribute__((target("avx512f,avx512bw"))) void build_tail1_avx512(
    std::uint8_t* tail, const std::uint8_t* src, std::size_t rem,
    std::uint64_t bit_len) {
  // Masked-off lanes of a maskz load are fault-suppressed, so this reads
  // exactly `rem` bytes and never touches past the message end (and is a
  // no-op load when rem == 0).
  const __m512i msg =
      _mm512_maskz_loadu_epi8((__mmask64{1} << rem) - 1, src);
  const __m512i marker =
      _mm512_maskz_set1_epi8(__mmask64{1} << rem, static_cast<char>(0x80));
  const __m512i len = _mm512_maskz_set1_epi64(
      0x80, static_cast<long long>(__builtin_bswap64(bit_len)));
  // 0xFE = a | b | c; the three operands occupy disjoint byte positions.
  _mm512_storeu_si512(tail,
                      _mm512_ternarylogic_epi32(msg, marker, len, 0xFE));
}
#endif

BuildTail1Fn pick_build_tail1() {
#ifdef UNIDIR_SHA_NI_CANDIDATE
  if (avx512_supported()) return &build_tail1_avx512;
#endif
  return &build_tail1_portable;
}

const BuildTail1Fn kBuildTail1 = pick_build_tail1();

struct MultiBackend {
  CompressManyFn fn;
  std::size_t lanes;
};

/// Narrow (sub-16-lane) backend; also the tail path under AVX-512 when
/// fewer than 16 lanes remain live, where padding a 16-wide call with dead
/// lanes would cost more than it saves.
MultiBackend pick_narrow() {
#ifdef UNIDIR_SHA_NI_CANDIDATE
  if (sha_ni_supported()) return {&compress_many_shani, 2};
#endif
  return {&compress_many_portable, 4};
}

const MultiBackend kNarrow = pick_narrow();

#ifdef UNIDIR_SHA_NI_CANDIDATE
void compress_many_avx512(State* const* states,
                          const std::uint8_t* const* blocks, std::size_t n,
                          std::size_t nblocks) {
  while (n >= 16) {
    compress16_avx512(states, blocks, nblocks);
    states += 16;
    blocks += 16 * nblocks;
    n -= 16;
  }
  if (n > 0) kNarrow.fn(states, blocks, n, nblocks);
}
#endif

MultiBackend pick_compress_many() {
#ifdef UNIDIR_SHA_NI_CANDIDATE
  if (avx512_supported()) return {&compress_many_avx512, 16};
#endif
  return kNarrow;
}

const MultiBackend kCompressMany = pick_compress_many();

}  // namespace

bool Sha256::hardware_accelerated() {
  return kCompress != &compress_portable;
}

std::size_t Sha256::batch_lanes() { return kCompressMany.lanes; }

Sha256::Sha256() : state_(kInitialState), buffer_{} {}

void Sha256::update(ByteSpan data) {
  UNIDIR_CHECK_MSG(!finished_, "Sha256 reused after finish()");
  UNIDIR_CHECK(buffered_ < 64);
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      kCompress(state_, buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  // Multi-block fast path: all full blocks in one compression call.
  const std::size_t blocks = (data.size() - offset) / 64;
  if (blocks > 0) {
    kCompress(state_, data.data() + offset, blocks);
    offset += blocks * 64;
  }
  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffered_);
  }
}

Digest Sha256::finish() {
  UNIDIR_CHECK_MSG(!finished_, "Sha256 reused after finish()");
  UNIDIR_CHECK(buffered_ < 64);
  finished_ = true;

  // Pad in place: 0x80, zeros to byte 56 (mod 64), 8-byte big-endian bit
  // length — driving the compression directly, no update() re-entry.
  const std::uint64_t bit_len = total_bytes_ * 8;
  buffer_[buffered_++] = 0x80;
  if (buffered_ > 56) {
    std::memset(buffer_.data() + buffered_, 0, 64 - buffered_);
    kCompress(state_, buffer_.data(), 1);
    buffered_ = 0;
  }
  std::memset(buffer_.data() + buffered_, 0, 56 - buffered_);
  for (int i = 0; i < 8; ++i)
    buffer_[56 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  kCompress(state_, buffer_.data(), 1);
  buffered_ = 0;

  Digest out;
  for (std::size_t i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, state_[i]);
  return out;
}

Digest Sha256::hash(ByteSpan data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

void Sha256::hash_batch(ShaJob* jobs, std::size_t n) {
  // Each lane walks one stream: its full data blocks first, then a
  // materialized padding tail (1 or 2 blocks, laid out exactly as finish()
  // would drive them). The scheduler feeds the live lanes to the
  // multi-buffer backend in lockstep runs — as many blocks as every live
  // lane still has, crossing the data/tail seam via the block-pointer
  // matrix — so a wide backend keeps the states in registers across the
  // run (a short stream's entire hash is then ONE backend call). A lane is
  // refilled from the job list the moment its stream completes, so lanes
  // stay occupied even when job lengths differ.
  struct Lane {
    State state;
    const std::uint8_t* cur = nullptr;
    std::size_t left = 0;  // blocks remaining in the current segment
    std::uint8_t tail[128];
    std::size_t tail_blocks = 0;
    bool in_tail = false;
    bool live = false;
    Digest* out = nullptr;
  };

  constexpr std::size_t kMaxLanes = 16;
  Lane lanes[kMaxLanes];
  std::size_t next = 0;

  auto serial = [](ShaJob& j) {
    Sha256 h = j.resume != nullptr ? *j.resume : Sha256();
    h.update(j.data);
    *j.out = h.finish();
  };

  auto prepare = [](Lane& ln, const ShaJob& j) -> bool {
    std::uint64_t total = j.data.size();
    if (j.resume != nullptr) {
      // Only block-aligned, unfinished midstates can enter a lane; others
      // take the serial fallback (never the case for HMAC schedules).
      if (j.resume->buffered_ != 0 || j.resume->finished_) return false;
      ln.state = j.resume->state_;
      total += j.resume->total_bytes_;
    } else {
      ln.state = kInitialState;
    }
    const std::size_t rem = j.data.size() % 64;
    const std::uint64_t bit_len = total * 8;
    if (rem < 56) {
      kBuildTail1(ln.tail, j.data.data() + j.data.size() - rem, rem, bit_len);
      ln.tail_blocks = 1;
    } else {
      // Two-block tail: 0x80 lands in the first block, the length in the
      // second. Rare at our message sizes; stays scalar.
      std::memcpy(ln.tail, j.data.data() + j.data.size() - rem, rem);
      ln.tail[rem] = 0x80;
      std::memset(ln.tail + rem + 1, 0, 128 - 8 - (rem + 1));
      for (int i = 0; i < 8; ++i)
        ln.tail[120 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
      ln.tail_blocks = 2;
    }
    const std::size_t full_blocks = j.data.size() / 64;
    if (full_blocks > 0) {
      ln.cur = j.data.data();
      ln.left = full_blocks;
      ln.in_tail = false;
    } else {
      ln.cur = ln.tail;
      ln.left = ln.tail_blocks;
      ln.in_tail = true;
    }
    ln.out = j.out;
    return true;
  };

  auto refill = [&](Lane& ln) {
    while (next < n) {
      ShaJob& j = jobs[next++];
      if (prepare(ln, j)) {
        ln.live = true;
        return;
      }
      serial(j);
    }
    ln.live = false;
  };

  for (Lane& ln : lanes) refill(ln);

  constexpr std::size_t kMaxRun = 16;
  State* states[kMaxLanes];
  const std::uint8_t* blocks[kMaxLanes * kMaxRun];
  Lane* who[kMaxLanes];
  while (true) {
    // A lane's remaining work is left-in-segment plus the tail if it has
    // not entered it yet; the run is the lockstep minimum over live lanes.
    std::size_t m = 0;
    std::size_t run = 0;
    for (Lane& ln : lanes) {
      if (!ln.live) continue;
      const std::size_t total = ln.left + (ln.in_tail ? 0 : ln.tail_blocks);
      if (m == 0 || total < run) run = total;
      who[m++] = &ln;
    }
    if (m == 0) break;
    if (run > kMaxRun) run = kMaxRun;
    for (std::size_t i = 0; i < m; ++i) {
      Lane& ln = *who[i];
      states[i] = &ln.state;
      for (std::size_t blk = 0; blk < run; ++blk) {
        if (ln.left == 0) {  // cross the data -> tail seam mid-run
          ln.cur = ln.tail;
          ln.left = ln.tail_blocks;
          ln.in_tail = true;
        }
        blocks[i * run + blk] = ln.cur;
        ln.cur += 64;
        --ln.left;
      }
    }
    kCompressMany.fn(states, blocks, m, run);
    for (std::size_t i = 0; i < m; ++i) {
      Lane& ln = *who[i];
      if (ln.left > 0 || !ln.in_tail) continue;
      for (std::size_t word = 0; word < 8; ++word)
        store_be32(ln.out->data() + 4 * word, ln.state[word]);
      refill(ln);
    }
  }
}

Bytes digest_bytes(const Digest& d) {
  return Bytes(d.begin(), d.end());
}

Digest digest_from_bytes(ByteSpan data) {
  if (data.size() != kSha256DigestSize)
    throw std::invalid_argument("digest_from_bytes: wrong size");
  Digest d;
  std::memcpy(d.data(), data.data(), kSha256DigestSize);
  return d;
}

}  // namespace unidir::crypto
