#include "crypto/signature.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "crypto/verify_runner.h"

namespace unidir::crypto {

Signer KeyRegistry::generate_key() {
  const KeyId id = next_key_++;
  // Derive a per-key secret deterministically so whole-world executions are
  // reproducible from the simulator seed alone.
  serde::Writer w;
  w.uvarint(seed_counter_);
  w.uvarint(id);
  seed_counter_ = seed_counter_ * 6364136223846793005ULL + 1442695040888963407ULL;
  const Digest d = Sha256::hash(w.buffer());
  Bytes secret(d.begin(), d.end());
  HmacKey schedule{ByteSpan(secret.data(), secret.size())};
  keys_.emplace(id, KeyMaterial{std::move(secret), schedule});
  return Signer(this, id);
}

const Digest* KeyRegistry::true_mac(KeyId key, ByteSpan message) const {
  auto it = keys_.find(key);
  if (it == keys_.end()) return nullptr;

  const std::uint64_t fp = fingerprint64(message);
  MemoEntry& slot = memo_[(fp ^ key * 0x9e3779b97f4a7c15ULL) & (kMemoSlots - 1)];
  if (slot.key == key && slot.fingerprint == fp && slot.length == message.size()) {
    ++stats_.memo_hits;
    return &slot.mac;
  }

  ++stats_.macs;
  slot.key = key;
  slot.fingerprint = fp;
  slot.length = message.size();
  slot.mac = it->second.schedule.mac(message);
  return &slot.mac;
}

Signature KeyRegistry::sign_internal(KeyId key, ByteSpan message) const {
  const Digest* mac = true_mac(key, message);
  UNIDIR_CHECK_MSG(mac != nullptr, "signing with unknown key");
  return Signature{key, Bytes(mac->begin(), mac->end())};
}

bool KeyRegistry::verify(const Signature& sig, ByteSpan message) const {
  ++stats_.verifies;
  const Digest* mac = true_mac(sig.key, message);
  if (mac == nullptr) return false;
  return constant_time_equal(ByteSpan(mac->data(), mac->size()), sig.mac);
}

void KeyRegistry::verify_batch(VerifyJob* jobs, std::size_t n) const {
  ++stats_.batches;
  stats_.batch_jobs += n;
  stats_.verifies += n;

  // Phase 1 (calling thread): memo consult, unknown-key rejection, and
  // same-message dedup within the batch. What survives is the list of MACs
  // that actually need computing.
  struct Miss {
    std::size_t job;
    MemoEntry* slot;
    const HmacKey* schedule;
    std::uint64_t fingerprint;
    std::uint64_t length;
    Digest mac;
  };
  struct Dup {
    std::size_t job;
    std::size_t miss;  // index into misses
  };
  std::vector<Miss> misses;
  misses.reserve(n);
  std::vector<Dup> dups;

  for (std::size_t i = 0; i < n; ++i) {
    VerifyJob& j = jobs[i];
    const KeyId key = j.sig->key;
    auto it = keys_.find(key);
    if (it == keys_.end()) {
      j.ok = false;
      continue;
    }
    const std::uint64_t fp = fingerprint64(j.message);
    MemoEntry& slot =
        memo_[(fp ^ key * 0x9e3779b97f4a7c15ULL) & (kMemoSlots - 1)];
    if (slot.key == key && slot.fingerprint == fp &&
        slot.length == j.message.size()) {
      ++stats_.memo_hits;
      j.ok = constant_time_equal(ByteSpan(slot.mac.data(), slot.mac.size()),
                                 j.sig->mac);
      continue;
    }
    bool dup = false;
    for (std::size_t m = 0; m < misses.size(); ++m) {
      const Miss& prior = misses[m];
      if (prior.fingerprint == fp && prior.length == j.message.size() &&
          jobs[prior.job].sig->key == key) {
        // The serial loop would have found this in the memo by now; count
        // it the same way.
        ++stats_.memo_hits;
        dups.push_back(Dup{i, m});
        dup = true;
        break;
      }
    }
    if (dup) continue;
    misses.push_back(
        Miss{i, &slot, &it->second.schedule, fp, j.message.size(), {}});
  }

  // Phase 2: compute the missing MACs through the multi-buffer lanes.
  // Workers (when sharded) write only into their shard's preassigned
  // Miss::mac slots — never the memo, never the stats — so the shard
  // boundaries cannot influence results. Shards are a fixed size, not
  // size/threads, so the submitted task sequence (and hence the runner
  // stats) is identical for every thread count.
  if (!misses.empty()) {
    stats_.macs += misses.size();
    stats_.lane_macs += misses.size();
    std::vector<HmacJob> hj(misses.size());
    for (std::size_t m = 0; m < misses.size(); ++m)
      hj[m] = HmacJob{misses[m].schedule, jobs[misses[m].job].message,
                      &misses[m].mac};
    constexpr std::size_t kShard = 16;
    if (runner_ != nullptr && runner_->threads() > 1 &&
        hj.size() > kShard) {
      for (std::size_t lo = 0; lo < hj.size(); lo += kShard) {
        const std::size_t len = std::min(kShard, hj.size() - lo);
        HmacJob* shard = hj.data() + lo;
        runner_->submit([shard, len] { hmac_sha256_batch(shard, len); });
      }
      runner_->flush();
    } else {
      hmac_sha256_batch(hj.data(), hj.size());
    }
  }

  // Phase 3 (calling thread, submission order): install memo entries and
  // compare. Install order matches the serial loop, so colliding slots end
  // up holding the same entry either way.
  for (Miss& m : misses) {
    m.slot->key = jobs[m.job].sig->key;
    m.slot->fingerprint = m.fingerprint;
    m.slot->length = m.length;
    m.slot->mac = m.mac;
    jobs[m.job].ok = constant_time_equal(
        ByteSpan(m.mac.data(), m.mac.size()), jobs[m.job].sig->mac);
  }
  for (const Dup& d : dups) {
    const Miss& m = misses[d.miss];
    jobs[d.job].ok = constant_time_equal(
        ByteSpan(m.mac.data(), m.mac.size()), jobs[d.job].sig->mac);
  }
}

Signature Signer::sign(ByteSpan message) const {
  UNIDIR_REQUIRE_MSG(registry_ != nullptr, "sign() on a null Signer");
  return registry_->sign_internal(key_, message);
}

}  // namespace unidir::crypto
