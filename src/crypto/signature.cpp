#include "crypto/signature.h"

#include "common/check.h"

namespace unidir::crypto {

Signer KeyRegistry::generate_key() {
  const KeyId id = next_key_++;
  // Derive a per-key secret deterministically so whole-world executions are
  // reproducible from the simulator seed alone.
  serde::Writer w;
  w.uvarint(seed_counter_);
  w.uvarint(id);
  seed_counter_ = seed_counter_ * 6364136223846793005ULL + 1442695040888963407ULL;
  const Digest d = Sha256::hash(w.buffer());
  Bytes secret(d.begin(), d.end());
  HmacKey schedule{ByteSpan(secret.data(), secret.size())};
  keys_.emplace(id, KeyMaterial{std::move(secret), schedule});
  return Signer(this, id);
}

const Digest* KeyRegistry::true_mac(KeyId key, ByteSpan message) const {
  auto it = keys_.find(key);
  if (it == keys_.end()) return nullptr;

  const std::uint64_t fp = fnv1a64(message);
  MemoEntry& slot = memo_[(fp ^ key * 0x9e3779b97f4a7c15ULL) & (kMemoSlots - 1)];
  if (slot.key == key && slot.fingerprint == fp && slot.length == message.size()) {
    ++stats_.memo_hits;
    return &slot.mac;
  }

  ++stats_.macs;
  slot.key = key;
  slot.fingerprint = fp;
  slot.length = message.size();
  slot.mac = it->second.schedule.mac(message);
  return &slot.mac;
}

Signature KeyRegistry::sign_internal(KeyId key, ByteSpan message) const {
  const Digest* mac = true_mac(key, message);
  UNIDIR_CHECK_MSG(mac != nullptr, "signing with unknown key");
  return Signature{key, Bytes(mac->begin(), mac->end())};
}

bool KeyRegistry::verify(const Signature& sig, ByteSpan message) const {
  ++stats_.verifies;
  const Digest* mac = true_mac(sig.key, message);
  if (mac == nullptr) return false;
  return constant_time_equal(ByteSpan(mac->data(), mac->size()), sig.mac);
}

Signature Signer::sign(ByteSpan message) const {
  UNIDIR_REQUIRE_MSG(registry_ != nullptr, "sign() on a null Signer");
  return registry_->sign_internal(key_, message);
}

}  // namespace unidir::crypto
