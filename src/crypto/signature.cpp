#include "crypto/signature.h"

#include "common/check.h"
#include "crypto/hmac.h"

namespace unidir::crypto {

Signer KeyRegistry::generate_key() {
  const KeyId id = next_key_++;
  // Derive a per-key secret deterministically so whole-world executions are
  // reproducible from the simulator seed alone.
  serde::Writer w;
  w.uvarint(seed_counter_);
  w.uvarint(id);
  seed_counter_ = seed_counter_ * 6364136223846793005ULL + 1442695040888963407ULL;
  const Digest d = Sha256::hash(w.buffer());
  secrets_.emplace(id, Bytes(d.begin(), d.end()));
  return Signer(this, id);
}

Signature KeyRegistry::sign_internal(KeyId key, ByteSpan message) const {
  auto it = secrets_.find(key);
  UNIDIR_CHECK_MSG(it != secrets_.end(), "signing with unknown key");
  const Digest mac = hmac_sha256(it->second, message);
  return Signature{key, Bytes(mac.begin(), mac.end())};
}

bool KeyRegistry::verify(const Signature& sig, ByteSpan message) const {
  auto it = secrets_.find(sig.key);
  if (it == secrets_.end()) return false;
  const Digest mac = hmac_sha256(it->second, message);
  return constant_time_equal(ByteSpan(mac.data(), mac.size()), sig.mac);
}

Signature Signer::sign(ByteSpan message) const {
  UNIDIR_REQUIRE_MSG(registry_ != nullptr, "sign() on a null Signer");
  return registry_->sign_internal(key_, message);
}

}  // namespace unidir::crypto
