// Ordered verification runner (after dsnet's CTPLOrderedRunner).
//
// A small worker pool for signature-verification work with one extra
// guarantee: *release callbacks run on the submitting thread, in submission
// order*, no matter in which order the workers finish. The simulator's
// determinism contract — parallelism may change wall-clock time, never
// results — reduces to two rules, both enforced here by construction:
//
//  1. Work closures are pure: they read shared immutable inputs (key
//     schedules, message bytes) and write only into slots preassigned to
//     them by the submitter. Workers never touch the memo table, the stats
//     counters, or any protocol state.
//  2. Everything order-sensitive (memo installs, verdict comparison,
//     protocol reaction) happens in release callbacks, which flush() runs
//     on the calling thread in submission order — exactly the serial
//     schedule, merely started later.
//
// With threads <= 1 no pool exists: submit() runs the work inline and
// flush() runs the releases, which *is* the serial execution. The stats are
// deterministic for any thread count: they count submissions and epochs,
// never worker progress, so a metrics snapshot cannot leak scheduling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace unidir::crypto {

class VerifyRunner {
 public:
  using Fn = std::function<void()>;

  /// Deterministic-by-construction counters (see header comment).
  struct Stats {
    std::uint64_t submitted = 0;        // tasks ever submitted
    std::uint64_t released = 0;         // release callbacks run
    std::uint64_t flushes = 0;          // flush() calls
    std::uint64_t max_queue_depth = 0;  // largest epoch (tasks per flush)
  };

  /// `threads` <= 1 selects the inline serial mode; 0 is reserved for
  /// "one per hardware thread" and resolved by the caller (see
  /// World::set_verify_threads).
  explicit VerifyRunner(std::size_t threads = 1);
  ~VerifyRunner();
  VerifyRunner(const VerifyRunner&) = delete;
  VerifyRunner& operator=(const VerifyRunner&) = delete;

  std::size_t threads() const { return threads_; }

  /// Enqueues `work` for the pool (or runs it inline in serial mode).
  /// `release`, if given, runs during flush() on the flushing thread once
  /// every earlier submission's work has completed and released.
  void submit(Fn work, Fn release = nullptr);

  /// Blocks until all submitted work has completed, running releases in
  /// submission order as their prefix completes, then starts a new epoch.
  void flush();

  Stats stats() const;

 private:
  struct Task {
    Fn work;
    Fn release;
    bool done = false;
  };

  void worker();

  const std::size_t threads_;
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Task> tasks_;  // current epoch, cleared by flush()
  std::size_t next_claim_ = 0;
  bool stop_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace unidir::crypto
