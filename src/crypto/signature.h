// Unforgeable transferable signatures (simulated PKI).
//
// The paper assumes processes hold unforgeable transferable signatures. We
// simulate them with HMAC-SHA256 under per-key secrets held by a
// KeyRegistry, which models the PKI/trusted setup:
//
//  * Unforgeability: the only way to produce a valid MAC for key k is
//    through a Signer capability bound to k. Byzantine process code in the
//    simulator is handed only its own Signer, never another's, so it cannot
//    forge — exactly the guarantee a real signature scheme provides.
//  * Transferability: verification needs only the public KeyRegistry and the
//    signer's key id, so any process can verify and forward a signature.
//
// Hot-path engineering: each key stores a precomputed HMAC schedule
// (hmac.h), and verification runs through a small direct-mapped memo table
// keyed by (key id, payload fingerprint). Broadcast protocols verify the
// same certificate once per receiver; the memo collapses those repeats to a
// single HMAC computation. The registry is per-world, and worlds are
// thread-confined, so the unsynchronized mutable cache is safe.
//
// A production deployment would swap this for Ed25519; every protocol in the
// library goes through the Signer/Verifier interfaces and would not change.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/bytes.h"
#include "common/serde.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace unidir::crypto {

/// Identifies a signing key in the registry. Key ids are public.
using KeyId = std::uint64_t;

/// A detached signature: which key signed, and the authenticator.
struct Signature {
  KeyId key = 0;
  Bytes mac;  // 32-byte HMAC-SHA256 tag

  bool operator==(const Signature&) const = default;

  void encode(serde::Writer& w) const {
    w.uvarint(key);
    w.bytes(mac);
  }
  static Signature decode(serde::Reader& r) {
    Signature s;
    s.key = r.uvarint();
    s.mac = r.bytes();
    return s;
  }
};

/// Counters for the verification memo (bench reporting).
struct VerifyStats {
  std::uint64_t verifies = 0;   // verify jobs (verify calls + batch jobs)
  std::uint64_t memo_hits = 0;  // verifies answered from the memo table
  std::uint64_t macs = 0;       // HMAC computations (sign + verify misses)
  // Batch-path counters. All deterministic for any verify-thread count:
  // they depend only on the submitted job sequence, never on worker timing.
  std::uint64_t batches = 0;     // verify_batch calls
  std::uint64_t batch_jobs = 0;  // jobs across all verify_batch calls
  std::uint64_t lane_macs = 0;   // MACs computed via the multi-buffer lanes
};

class Signer;
class VerifyRunner;

/// One verification in a batch (see KeyRegistry::verify_batch). The
/// signature and message bytes must outlive the call; `ok` carries the
/// verdict out.
struct VerifyJob {
  const Signature* sig = nullptr;
  ByteSpan message;
  bool ok = false;
};

/// The trusted key store. One per simulated world.
class KeyRegistry {
 public:
  KeyRegistry() = default;
  KeyRegistry(const KeyRegistry&) = delete;
  KeyRegistry& operator=(const KeyRegistry&) = delete;

  /// Creates a fresh key and returns a Signer capability for it. The secret
  /// never leaves the registry.
  Signer generate_key();

  /// Verifies `sig` over `message`. Unknown keys verify as false.
  bool verify(const Signature& sig, ByteSpan message) const;

  /// Verifies `n` jobs as one batch. Verdicts are identical to calling
  /// verify() per job in order; what changes is the work shape: the memo
  /// is consulted (and same-message repeats within the batch deduplicated)
  /// up front, and the surviving MAC computations run together through the
  /// multi-buffer SHA-256 lanes — sharded across the attached runner's
  /// workers when one is attached and the batch is large enough. Memo
  /// installs, verdict comparison and stats all happen on the calling
  /// thread, so results and counters are deterministic for any thread
  /// count.
  void verify_batch(VerifyJob* jobs, std::size_t n) const;

  /// Attaches (nullptr: detaches) a worker pool for sharding large
  /// batches' MAC computations. Non-owning; the runner must outlive its
  /// attachment. Results are unaffected (see verify_runner.h).
  void attach_runner(VerifyRunner* runner) { runner_ = runner; }

  std::size_t key_count() const { return keys_.size(); }

  const VerifyStats& verify_stats() const { return stats_; }

 private:
  friend class Signer;

  struct KeyMaterial {
    Bytes secret;
    HmacKey schedule;
  };

  // Direct-mapped memo of true MACs, keyed by (key, payload fingerprint,
  // length). A fingerprint collision could only make verify() return a
  // wrong answer if two distinct messages of equal length collided under
  // fingerprint64 *and* were checked against the same key — at ~2^-64 per
  // pair we accept that in a simulator. The table is bounded: a new entry
  // simply evicts whatever shared its slot.
  struct MemoEntry {
    KeyId key = 0;  // 0 = empty (key ids start at 1)
    std::uint64_t fingerprint = 0;
    std::uint64_t length = 0;
    Digest mac{};
  };
  static constexpr std::size_t kMemoSlots = 1024;  // power of two

  Signature sign_internal(KeyId key, ByteSpan message) const;

  /// True MAC for (key, message), memoized. Null if the key is unknown.
  const Digest* true_mac(KeyId key, ByteSpan message) const;

  std::unordered_map<KeyId, KeyMaterial> keys_;
  KeyId next_key_ = 1;
  std::uint64_t seed_counter_ = 0x9e3779b97f4a7c15ULL;
  VerifyRunner* runner_ = nullptr;  // non-owning; see attach_runner

  mutable std::array<MemoEntry, kMemoSlots> memo_{};
  mutable VerifyStats stats_;
};

/// Capability to sign with one key. Copyable (a process may hand it to the
/// protocol objects it hosts), but only obtainable from the registry.
class Signer {
 public:
  Signer() = default;  // null signer; sign() throws

  KeyId key() const { return key_; }
  bool valid() const { return registry_ != nullptr; }

  Signature sign(ByteSpan message) const;

 private:
  friend class KeyRegistry;
  Signer(const KeyRegistry* registry, KeyId key)
      : registry_(registry), key_(key) {}

  const KeyRegistry* registry_ = nullptr;
  KeyId key_ = 0;
};

}  // namespace unidir::crypto
