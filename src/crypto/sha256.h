// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used as the hash underlying HMAC signatures, attestation digests, and
// hash-chained trusted logs. Two compression backends share one incremental
// front end:
//
//  * a portable C++ path that processes runs of blocks with the working
//    state kept in locals (the multi-block fast path), and
//  * an x86 SHA-NI path selected once at startup by CPUID, ~5-10x faster.
//
// Digests are identical bit-for-bit on both paths; which one runs never
// affects simulation results, only wall-clock time.
//
// Sha256 objects are copyable: a copy resumes hashing from the same
// midstate. HMAC key schedules (hmac.h) rely on this to precompute the
// ipad/opad block once per key.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace unidir::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();

  void update(ByteSpan data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(ByteSpan data);

  /// True iff the CPU's SHA extensions drive compression (bench reporting).
  static bool hardware_accelerated();

 private:
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// Digest as a Bytes value (for serialization).
Bytes digest_bytes(const Digest& d);

/// Parses a 32-byte buffer into a Digest. Throws on size mismatch.
Digest digest_from_bytes(ByteSpan data);

}  // namespace unidir::crypto
