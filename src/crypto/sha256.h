// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used as the hash underlying HMAC signatures, attestation digests, and
// hash-chained trusted logs. The implementation is a straightforward,
// portable one: this library's performance story is about protocol message
// complexity, not hash throughput.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace unidir::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();

  void update(ByteSpan data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(ByteSpan data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// Digest as a Bytes value (for serialization).
Bytes digest_bytes(const Digest& d);

/// Parses a 32-byte buffer into a Digest. Throws on size mismatch.
Digest digest_from_bytes(ByteSpan data);

}  // namespace unidir::crypto
