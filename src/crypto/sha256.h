// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used as the hash underlying HMAC signatures, attestation digests, and
// hash-chained trusted logs. The compression backends, selected once at
// startup by CPUID, share one incremental front end:
//
//  * a portable C++ path that processes runs of blocks with the working
//    state kept in locals (the multi-block fast path),
//  * an x86 SHA-NI path, ~5-10x faster single-stream, and
//  * for hash_batch only, multi-buffer paths that interleave independent
//    streams — 16-wide AVX-512, 2-wide SHA-NI, or 4-wide portable.
//
// Digests are identical bit-for-bit on every path; which one runs never
// affects simulation results, only wall-clock time.
//
// Sha256 objects are copyable: a copy resumes hashing from the same
// midstate. HMAC key schedules (hmac.h) rely on this to precompute the
// ipad/opad block once per key.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace unidir::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256;

/// One stream in a multi-buffer batch (see Sha256::hash_batch). `resume`
/// optionally names a block-aligned midstate to continue from — the HMAC
/// key schedules in hmac.h are exactly such midstates — and `data` is the
/// remainder of that stream's input.
struct ShaJob {
  const Sha256* resume = nullptr;
  ByteSpan data;
  Digest* out = nullptr;
};

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();

  void update(ByteSpan data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(ByteSpan data);

  /// Hashes `n` independent streams with their compression calls
  /// interleaved, so the rounds of different streams overlap in the
  /// pipeline (multi-buffer hashing). Digests are bit-identical to hashing
  /// each job serially; only wall-clock time changes. Jobs whose `resume`
  /// midstate is not block-aligned fall back to the serial path.
  static void hash_batch(ShaJob* jobs, std::size_t n);

  /// Streams the selected backend interleaves per compression call
  /// (1 would mean no multi-buffer support; bench reporting).
  static std::size_t batch_lanes();

  /// True iff the CPU's SHA extensions drive compression (bench reporting).
  static bool hardware_accelerated();

 private:
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// Digest as a Bytes value (for serialization).
Bytes digest_bytes(const Digest& d);

/// Parses a 32-byte buffer into a Digest. Throws on size mismatch.
Digest digest_from_bytes(ByteSpan data);

}  // namespace unidir::crypto
