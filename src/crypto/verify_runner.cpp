#include "crypto/verify_runner.h"

#include "common/check.h"

namespace unidir::crypto {

VerifyRunner::VerifyRunner(std::size_t threads) : threads_(threads) {
  if (threads_ <= 1) return;
  workers_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i)
    workers_.emplace_back([this] { worker(); });
}

VerifyRunner::~VerifyRunner() {
  if (workers_.empty()) return;
  // Drain whatever a caller submitted but never flushed, so work closures
  // are not destroyed while a worker still runs them.
  flush();
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void VerifyRunner::worker() {
  std::unique_lock lk(mu_);
  while (true) {
    cv_work_.wait(lk, [this] { return stop_ || next_claim_ < tasks_.size(); });
    if (stop_) return;
    const std::size_t i = next_claim_++;
    Fn work = std::move(tasks_[i].work);
    lk.unlock();
    if (work) work();
    lk.lock();
    // Index, not pointer: flush() never shrinks tasks_ while work is
    // outstanding, but submit() may reallocate it.
    tasks_[i].done = true;
    cv_done_.notify_all();
  }
}

void VerifyRunner::submit(Fn work, Fn release) {
  if (workers_.empty()) {
    if (work) work();
    tasks_.push_back(Task{nullptr, std::move(release), true});
    ++stats_.submitted;
    if (tasks_.size() > stats_.max_queue_depth)
      stats_.max_queue_depth = tasks_.size();
    return;
  }
  {
    std::lock_guard lk(mu_);
    tasks_.push_back(Task{std::move(work), std::move(release), false});
    ++stats_.submitted;
    // Epoch size, not live backlog: the backlog depends on worker timing
    // and would make the counter nondeterministic.
    if (tasks_.size() > stats_.max_queue_depth)
      stats_.max_queue_depth = tasks_.size();
  }
  cv_work_.notify_one();
}

void VerifyRunner::flush() {
  if (workers_.empty()) {
    ++stats_.flushes;
    for (Task& t : tasks_) {
      if (t.release) t.release();
      ++stats_.released;
    }
    tasks_.clear();
    return;
  }
  std::unique_lock lk(mu_);
  ++stats_.flushes;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    cv_done_.wait(lk, [this, i] { return tasks_[i].done; });
    if (Fn release = std::move(tasks_[i].release)) {
      lk.unlock();
      release();
      lk.lock();
    }
    ++stats_.released;
  }
  UNIDIR_CHECK(next_claim_ == tasks_.size());
  tasks_.clear();
  next_claim_ = 0;
}

VerifyRunner::Stats VerifyRunner::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

}  // namespace unidir::crypto
