// HMAC-SHA256 (RFC 2104).
//
// Besides the one-shot hmac_sha256(), this header offers HmacKey: a
// precomputed key schedule holding the SHA-256 midstates that result from
// absorbing the ipad- and opad-xored key blocks. Long-lived keys (the
// KeyRegistry signs and verifies thousands of messages per key) skip two
// compression-function calls per MAC by resuming from the midstates instead
// of rehashing the pads every time.
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace unidir::crypto {

/// Precomputed HMAC-SHA256 key schedule. Copyable value type.
class HmacKey {
 public:
  HmacKey() = default;  // empty-key schedule (valid but rarely useful)
  explicit HmacKey(ByteSpan key);

  /// HMAC-SHA256(key, message) resuming from the cached midstates.
  Digest mac(ByteSpan message) const;

  /// The cached block-aligned midstates, exposed so hmac_sha256_batch can
  /// resume them through the multi-buffer SHA-256 lanes.
  const Sha256& inner_midstate() const { return inner_; }
  const Sha256& outer_midstate() const { return outer_; }

 private:
  Sha256 inner_;  // midstate after absorbing key ^ ipad
  Sha256 outer_;  // midstate after absorbing key ^ opad
};

/// Computes HMAC-SHA256(key, message). One-shot; for repeated use of the
/// same key, build an HmacKey once and call mac().
Digest hmac_sha256(ByteSpan key, ByteSpan message);

/// One MAC in a batch. Keys may repeat or differ freely between jobs.
struct HmacJob {
  const HmacKey* key = nullptr;
  ByteSpan message;
  Digest* out = nullptr;
};

/// Computes `n` independent MACs through the multi-buffer SHA-256 lanes:
/// one interleaved pass over the inner hashes, one over the outer hashes.
/// Bit-identical to calling key->mac(message) per job.
void hmac_sha256_batch(HmacJob* jobs, std::size_t n);

}  // namespace unidir::crypto
