// HMAC-SHA256 (RFC 2104).
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace unidir::crypto {

/// Computes HMAC-SHA256(key, message).
Digest hmac_sha256(ByteSpan key, ByteSpan message);

}  // namespace unidir::crypto
