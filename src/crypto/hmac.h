// HMAC-SHA256 (RFC 2104).
//
// Besides the one-shot hmac_sha256(), this header offers HmacKey: a
// precomputed key schedule holding the SHA-256 midstates that result from
// absorbing the ipad- and opad-xored key blocks. Long-lived keys (the
// KeyRegistry signs and verifies thousands of messages per key) skip two
// compression-function calls per MAC by resuming from the midstates instead
// of rehashing the pads every time.
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace unidir::crypto {

/// Precomputed HMAC-SHA256 key schedule. Copyable value type.
class HmacKey {
 public:
  HmacKey() = default;  // empty-key schedule (valid but rarely useful)
  explicit HmacKey(ByteSpan key);

  /// HMAC-SHA256(key, message) resuming from the cached midstates.
  Digest mac(ByteSpan message) const;

 private:
  Sha256 inner_;  // midstate after absorbing key ^ ipad
  Sha256 outer_;  // midstate after absorbing key ^ opad
};

/// Computes HMAC-SHA256(key, message). One-shot; for repeated use of the
/// same key, build an HmacKey once and call mac().
Digest hmac_sha256(ByteSpan key, ByteSpan message);

}  // namespace unidir::crypto
