#include "runtime/sim_runtime.h"

#include <chrono>

namespace unidir::runtime {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

SimRuntime::SimRuntime(std::uint64_t seed,
                       std::unique_ptr<sim::Adversary> adversary)
    : network_(simulator_, sim::Rng(seed ^ 0xA5A5A5A5A5A5A5A5ULL),
               std::move(adversary)),
      clock_(simulator_),
      transport_(network_) {}

// ---- SimClock --------------------------------------------------------------

TimerId SimRuntime::SimClock::arm(Time delay, std::function<void()> fn) {
  const TimerId id = ++next_timer_;
  // The wrapper (this + id + a std::function) fits InlineFn's 64-byte
  // inline storage, so the simulator's no-allocation scheduling fast path
  // is preserved; the event ORDER is exactly what a direct after() call
  // would produce, which is what keeps fingerprints stable.
  simulator_.after(delay, [this, id, fn = std::move(fn)]() {
    if (!consume_cancel(id)) fn();
  });
  return id;
}

void SimRuntime::SimClock::cancel(TimerId id) {
  if (id == kNoTimer) return;
  // The simulator has no queue removal (its slab recycles slots by fire
  // order); a cancelled timer is tombstoned and swallowed when it fires.
  cancelled_.insert(id);
}

bool SimRuntime::SimClock::consume_cancel(TimerId id) {
  if (cancelled_.empty()) return false;
  const auto it = cancelled_.find(id);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);
  return true;
}

// ---- SimTransport ----------------------------------------------------------

void SimRuntime::SimTransport::set_deliver(DeliverFn fn) {
  network_.set_deliver([fn = std::move(fn)](const sim::Envelope& env) {
    fn(env.from, env.to, env.channel, env.payload);
  });
}

// ---- run loops -------------------------------------------------------------

std::size_t SimRuntime::run(std::size_t max_events) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = simulator_.run(max_events);
  run_wall_ns_ += elapsed_ns(t0);
  return n;
}

bool SimRuntime::run_until(const std::function<bool()>& pred,
                           std::size_t max_events) {
  const auto t0 = std::chrono::steady_clock::now();
  const bool held = simulator_.run_until(pred, max_events);
  run_wall_ns_ += elapsed_ns(t0);
  return held;
}

RuntimeStats SimRuntime::stats() const {
  RuntimeStats s;
  s.scheduled = simulator_.stats().scheduled;
  s.executed = simulator_.stats().executed;
  s.run_wall_ns = run_wall_ns_;
  return s;
}

}  // namespace unidir::runtime
