// File-backed durable store: the real-process counterpart of the sim's
// NVRAM model (sim/durable.h).
//
// A FileDurableStore persists the whole key/value image to one file in a
// caller-chosen directory, committed atomically on every mutation:
//
//     serialize image -> store.tmp -> fsync -> rotate store.img to
//     store.prev -> rename store.tmp to store.img -> fsync(dir)
//
// Rename is atomic on POSIX, so a crash (including kill -9 or power loss
// between any two syscalls) leaves either the new image, the previous
// image, or both — never a half-written store.img visible under that name.
// The previous image is additionally retained as store.prev so that even a
// *detectably corrupt* store.img (torn by a buggy filesystem, truncated by
// an operator, bit-flipped at rest) falls back to the last good state
// instead of booting empty.
//
// Image format (little-endian fixed-width, version 1):
//
//     magic   u32  'UDS1' (0x31534455)
//     version u32  1
//     gen     u64  commit generation (monotonic; higher image wins ties)
//     count   u64  number of records
//     records count times:
//         key_len u32, val_len u32, key bytes, val bytes,
//         crc32 u32 over that record's four preceding fields
//     trailer crc32 u32 over every byte before it
//
// Parsing is strict: truncation anywhere, any CRC mismatch, a bad magic or
// version, an impossible length, or trailing garbage rejects the whole
// image (load() then falls back or reports "absent") — it never yields a
// partial map and never throws on corrupt input.
//
// Writes go through at put/erase/clear granularity. Protocol persist()
// calls are already batched into one put per decision point (see
// MinBftReplica::persist), so the write amplification is one image per
// durable decision — the same commit points the sim model charges.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "sim/durable.h"

namespace unidir::runtime {

struct FileDurableStoreStats {
  std::uint64_t commits = 0;         ///< successful image commits
  std::uint64_t images_rejected = 0; ///< corrupt/torn images seen at open
  bool loaded_fallback = false;      ///< open used store.prev, not store.img
  bool recovered = false;            ///< open found any valid prior image
};

class FileDurableStore final : public sim::DurableStore {
 public:
  /// Opens (creating `dir` if needed) and loads the newest valid image.
  /// Corrupt or absent images are handled silently (see stats()); real I/O
  /// failures — unwritable directory, failed fsync — abort via UNIDIR_CHECK,
  /// since a store that cannot persist must not pretend to.
  explicit FileDurableStore(std::filesystem::path dir);

  void put(std::string key, Bytes value) override;
  void erase(const std::string& key) override;
  void clear() override;

  std::uint64_t generation() const { return generation_; }
  const FileDurableStoreStats& stats() const { return stats_; }
  const std::filesystem::path& dir() const { return dir_; }
  std::filesystem::path image_path() const { return dir_ / "store.img"; }
  std::filesystem::path prev_path() const { return dir_ / "store.prev"; }

  /// Serializes an image (exposed so tests can build corrupt variants).
  static Bytes serialize_image(const std::map<std::string, Bytes>& entries,
                               std::uint64_t generation);
  /// Strict parse: nullopt on any deviation from the format.
  static std::optional<std::map<std::string, Bytes>> parse_image(
      ByteSpan data, std::uint64_t* generation_out = nullptr);

  /// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `data`.
  static std::uint32_t crc32(ByteSpan data);

 private:
  void commit();

  std::filesystem::path dir_;
  std::uint64_t generation_ = 0;
  FileDurableStoreStats stats_;
};

}  // namespace unidir::runtime
