// The execution substrate behind every protocol in this library.
//
// Protocol code (MinBFT, PBFT, SmrClient, the broadcast stack) is written
// against sim::Process / sim::World, which in turn speak only the three
// interfaces in this header:
//
//   Clock     — now / arm-timer / cancel, in abstract ticks;
//   Transport — point-to-point message passing between ProcessIds, with a
//               deliver callback on the receiving side;
//   Runtime   — owns the event loop that turns armed timers and in-flight
//               messages into handler invocations, and accounts for the
//               work it did (RuntimeStats).
//
// Two backends implement them:
//
//   SimRuntime  (sim_runtime.h)  — the deterministic discrete-event
//       simulator: virtual time, adversary-scheduled delivery, byte-stable
//       fingerprints, record/replay. Every existing test and golden runs
//       here, unchanged.
//   RealRuntime (real_runtime.h) — wall-clock time on an OS thread, a
//       monotonic-clock timer heap, and a UDP socket transport, so the same
//       replica binary serves actual network traffic.
//
// What may depend on what (see DESIGN.md §13): protocol logic may only use
// Clock ticks and Transport sends — never virtual-time internals, never
// sockets. Fingerprints, transcripts and the explorer exist only under
// SimRuntime; RealRuntime trades them for honest wall-clock throughput.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/payload.h"
#include "common/types.h"
#include "obs/rate.h"

namespace unidir::runtime {

/// Handle for a timer armed through Clock::arm. 0 is never a live timer.
using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

/// "Not an execution shard": what Runtime::calling_shard returns on the
/// single-loop backends and on any thread that is not a shard loop.
inline constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

/// Work accounting shared by both backends. Wall-clock rate arithmetic
/// lives HERE, not in SimulatorStats: the simulator's own counters must
/// stay wall-clock-free so metric snapshots are deterministic, while a
/// real-time backend can report honest events/sec from the same struct.
struct RuntimeStats {
  std::uint64_t scheduled = 0;    // timers armed + messages queued
  std::uint64_t executed = 0;     // handler invocations (timers + deliveries)
  std::uint64_t run_wall_ns = 0;  // wall time spent inside run loops

  // Transport health, surfaced here (not only in backend-specific structs)
  // so generic harnesses can poll one struct for "is this process still a
  // functioning cluster member". Always 0/false on the sim backend, whose
  // network cannot fail this way.
  std::uint64_t frames_send_failed = 0;  // sendto/sendmmsg kernel rejections
  std::uint64_t frames_oversized = 0;    // frames over the datagram max
  bool receiver_dead = false;  // receive loop exited on an unexpected errno

  /// Executed events per wall second across all run calls; 0 when no wall
  /// time was recorded (fresh stats, or a clock too coarse to tick).
  double events_per_sec() const {
    return obs::rate_per_sec(executed, run_wall_ns);
  }
};

/// Time source and timer service, in abstract ticks. Under SimRuntime a
/// tick is one unit of virtual time; under RealRuntime it is a configured
/// wall duration (RealRuntimeOptions::tick_ns, default 1ms). Protocol
/// timeouts are therefore written once, in ticks, and mean "soon, with
/// room for a round trip" on either backend.
class Clock {
 public:
  virtual ~Clock() = default;

  virtual Time now() const = 0;

  /// Schedules `fn` once, `delay` ticks from now. Returns a handle usable
  /// with cancel() until the timer fires.
  virtual TimerId arm(Time delay, std::function<void()> fn) = 0;

  /// Cancels a pending timer; cancelling a fired or unknown id is a no-op.
  virtual void cancel(TimerId id) = 0;
};

/// Point-to-point message passing between ProcessIds. Addressing is by
/// dense global id on both backends; what differs is who answers an id —
/// the in-memory World (SimRuntime and RealRuntime's loopback path) or a
/// UDP peer table (RealRuntime's socket path).
class Transport {
 public:
  using DeliverFn = std::function<void(ProcessId from, ProcessId to,
                                       Channel channel,
                                       const Payload& payload)>;

  virtual ~Transport() = default;

  virtual void send(ProcessId from, ProcessId to, Channel channel,
                    Payload payload) = 0;

  /// Invoked (as an event on the runtime's loop) for each delivered
  /// message. Must be set before the loop runs.
  virtual void set_deliver(DeliverFn fn) = 0;

  /// Tells the transport which ids live in this OS process; deliveries to
  /// them bypass any socket. SimRuntime's network delivers everything
  /// in-memory already, so its transport ignores this.
  virtual void set_local(std::function<bool(ProcessId)> is_local) {
    (void)is_local;
  }

  /// Ids addressable through this transport beyond the local ones
  /// (remote peer table size; 0 for the fully in-memory backends).
  virtual std::size_t peer_count() const { return 0; }

  /// Sends one payload to an explicit recipient list, sharing the COW
  /// buffer across links.
  void multicast(ProcessId from, const std::vector<ProcessId>& to,
                 Channel channel, const Payload& payload) {
    for (ProcessId p : to) send(from, p, channel, payload);
  }
};

/// Owns the event loop. run/run_until mirror the simulator's contract:
/// events execute one at a time on the calling thread, `pred` is checked
/// after each event, and `max_events` bounds the work. What "quiescence"
/// means differs per backend — see each implementation.
class Runtime {
 public:
  virtual ~Runtime() = default;
  Runtime() = default;
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  virtual Clock& clock() = 0;
  virtual Transport& transport() = 0;

  /// Runs until quiescence or `max_events`; returns events executed.
  virtual std::size_t run(std::size_t max_events) = 0;

  /// Runs until `pred()` holds (checked after each event), quiescence, or
  /// the cap. Returns true iff the predicate held.
  virtual bool run_until(const std::function<bool()>& pred,
                         std::size_t max_events) = 0;

  virtual RuntimeStats stats() const = 0;

  // -- execution shards ------------------------------------------------------
  // A backend may split its event loop into several shards, each running
  // local processes pinned to it on its own thread (RealRuntime with
  // options.shards > 1). Single-loop backends report one shard and route
  // arm_for through the plain clock, so callers can use these uniformly.

  /// Number of event-loop shards this backend executes handlers on.
  virtual std::size_t execution_shards() const { return 1; }

  /// The shard index whose loop the calling thread is currently running,
  /// or kNoShard (always kNoShard on single-loop backends, where handlers
  /// run on the caller's own thread).
  virtual std::size_t calling_shard() const { return kNoShard; }

  /// Arms a timer whose callback touches `owner`'s state. Sharded backends
  /// route it onto `owner`'s shard so the callback is serialized with the
  /// owner's message handlers; everywhere else this is exactly clock().arm.
  virtual TimerId arm_for(ProcessId owner, Time delay,
                          std::function<void()> fn) {
    (void)owner;
    return clock().arm(delay, std::move(fn));
  }

  /// Per-shard work accounting; index < execution_shards(). The default
  /// single-loop implementation returns the aggregate for shard 0.
  virtual RuntimeStats shard_stats(std::size_t shard) const {
    (void)shard;
    return stats();
  }

  /// True when ticks are wall-clock (RealRuntime): fingerprints and other
  /// determinism claims do not apply, and wall-time figures may be
  /// published into metric snapshots.
  virtual bool real_time() const = 0;
};

}  // namespace unidir::runtime
