#include "runtime/durable_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include "common/check.h"

namespace unidir::runtime {

namespace {

constexpr std::uint32_t kMagic = 0x31534455;  // "UDS1" little-endian
constexpr std::uint32_t kVersion = 1;
// A record needs two u32 lengths and a u32 CRC even when key and value are
// empty; anything claiming more payload than the remaining bytes is torn.
constexpr std::size_t kRecordOverhead = 12;
constexpr std::size_t kHeaderSize = 24;  // magic + version + gen + count

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

std::uint32_t get_u32(ByteSpan data, std::size_t at) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i)
    v |= std::uint32_t(data[at + i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(ByteSpan data, std::size_t at) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= std::uint64_t(data[at + i]) << (8 * i);
  return v;
}

/// Reads a whole regular file; nullopt when it does not exist or cannot be
/// read (either way the image is unusable, which the caller treats the same
/// as corrupt).
std::optional<Bytes> read_file(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  Bytes out;
  std::array<std::uint8_t, 65536> buf;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.insert(out.end(), buf.data(), buf.data() + n);
  }
  ::close(fd);
  return out;
}

void write_all(int fd, ByteSpan data, const std::filesystem::path& path) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      UNIDIR_CHECK_MSG(false, "durable store write failed: " + path.string() +
                                  ": " + std::strerror(errno));
    }
    done += std::size_t(n);
  }
}

void fsync_path(const std::filesystem::path& path, int flags) {
  const int fd = ::open(path.c_str(), flags | O_CLOEXEC);
  UNIDIR_CHECK_MSG(fd >= 0, "durable store open for fsync failed: " +
                                path.string() + ": " + std::strerror(errno));
  const int rc = ::fsync(fd);
  ::close(fd);
  UNIDIR_CHECK_MSG(rc == 0, "durable store fsync failed: " + path.string() +
                                ": " + std::strerror(errno));
}

}  // namespace

std::uint32_t FileDurableStore::crc32(ByteSpan data) {
  static constexpr auto kTable = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = kTable[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Bytes FileDurableStore::serialize_image(
    const std::map<std::string, Bytes>& entries, std::uint64_t generation) {
  Bytes out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u64(out, generation);
  put_u64(out, entries.size());
  for (const auto& [key, value] : entries) {
    const std::size_t record_start = out.size();
    put_u32(out, std::uint32_t(key.size()));
    put_u32(out, std::uint32_t(value.size()));
    out.insert(out.end(), key.begin(), key.end());
    out.insert(out.end(), value.begin(), value.end());
    put_u32(out, crc32(ByteSpan(out.data() + record_start,
                                out.size() - record_start)));
  }
  put_u32(out, crc32(ByteSpan(out.data(), out.size())));
  return out;
}

std::optional<std::map<std::string, Bytes>> FileDurableStore::parse_image(
    ByteSpan data, std::uint64_t* generation_out) {
  if (data.size() < kHeaderSize + 4) return std::nullopt;
  // Trailer first: a CRC over everything is the cheapest whole-image torn
  // check, and makes every single-byte garble detectable even when it lands
  // in a length field that would otherwise parse plausibly.
  const std::size_t body = data.size() - 4;
  if (get_u32(data, body) != crc32(data.first(body))) return std::nullopt;
  if (get_u32(data, 0) != kMagic) return std::nullopt;
  if (get_u32(data, 4) != kVersion) return std::nullopt;
  const std::uint64_t generation = get_u64(data, 8);
  const std::uint64_t count = get_u64(data, 16);

  std::map<std::string, Bytes> entries;
  std::size_t at = kHeaderSize;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (body - at < kRecordOverhead) return std::nullopt;
    const std::uint32_t key_len = get_u32(data, at);
    const std::uint32_t val_len = get_u32(data, at + 4);
    const std::size_t payload = std::size_t(key_len) + val_len;
    if (body - at - kRecordOverhead < payload) return std::nullopt;
    const std::size_t record_len = kRecordOverhead + payload;
    if (get_u32(data, at + record_len - 4) !=
        crc32(data.subspan(at, record_len - 4)))
      return std::nullopt;
    std::string key(reinterpret_cast<const char*>(data.data() + at + 8),
                    key_len);
    Bytes value(data.begin() + long(at + 8 + key_len),
                data.begin() + long(at + 8 + key_len + val_len));
    // Duplicate keys cannot come from serialize_image (std::map); treat
    // them as corruption rather than letting one silently win.
    if (!entries.emplace(std::move(key), std::move(value)).second)
      return std::nullopt;
    at += record_len;
  }
  if (at != body) return std::nullopt;  // trailing garbage
  if (generation_out != nullptr) *generation_out = generation;
  return entries;
}

FileDurableStore::FileDurableStore(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  UNIDIR_CHECK_MSG(!ec, "durable store mkdir failed: " + dir_.string() +
                            ": " + ec.message());

  // Newest valid image wins: store.img normally, store.prev when store.img
  // is torn/absent. Generations disambiguate the (possible-but-benign)
  // case where a crash between the two renames left prev newer than img.
  struct Candidate {
    std::map<std::string, Bytes> entries;
    std::uint64_t generation = 0;
    bool fallback = false;
  };
  std::optional<Candidate> best;
  bool primary_valid = false;
  for (const auto& [path, fallback] :
       {std::pair{image_path(), false}, std::pair{prev_path(), true}}) {
    const auto raw = read_file(path);
    if (!raw) continue;  // absent: not corruption, just nothing there
    std::uint64_t generation = 0;
    auto parsed = parse_image(*raw, &generation);
    if (!parsed) {
      ++stats_.images_rejected;
      continue;
    }
    if (!fallback) primary_valid = true;
    if (!best || generation > best->generation)
      best = Candidate{std::move(*parsed), generation, fallback};
  }
  if (best) {
    data_ = std::move(best->entries);
    generation_ = best->generation;
    stats_.recovered = true;
    stats_.loaded_fallback = best->fallback || !primary_valid;
  }
}

void FileDurableStore::put(std::string key, Bytes value) {
  DurableStore::put(std::move(key), std::move(value));
  commit();
}

void FileDurableStore::erase(const std::string& key) {
  DurableStore::erase(key);
  commit();
}

void FileDurableStore::clear() {
  DurableStore::clear();
  commit();
}

void FileDurableStore::commit() {
  const Bytes image = serialize_image(entries(), generation_ + 1);
  const std::filesystem::path tmp = dir_ / "store.tmp";

  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  UNIDIR_CHECK_MSG(fd >= 0, "durable store open failed: " + tmp.string() +
                                ": " + std::strerror(errno));
  write_all(fd, image, tmp);
  const int frc = ::fsync(fd);
  ::close(fd);
  UNIDIR_CHECK_MSG(frc == 0, "durable store fsync failed: " + tmp.string() +
                                 ": " + std::strerror(errno));

  // Keep the last committed image reachable as store.prev for the torn-
  // image fallback. rename(2) replaces atomically; ENOENT just means there
  // was no previous image yet.
  if (::rename(image_path().c_str(), prev_path().c_str()) != 0)
    UNIDIR_CHECK_MSG(errno == ENOENT,
                     "durable store rotate failed: " + image_path().string() +
                         ": " + std::strerror(errno));
  UNIDIR_CHECK_MSG(::rename(tmp.c_str(), image_path().c_str()) == 0,
                   "durable store rename failed: " + tmp.string() + ": " +
                       std::strerror(errno));
  // The renames live in the directory, so the directory itself must reach
  // disk before the commit counts.
  fsync_path(dir_, O_RDONLY | O_DIRECTORY);

  ++generation_;
  ++stats_.commits;
}

}  // namespace unidir::runtime
