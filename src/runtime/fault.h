// Transport-boundary fault injection: a deterministic adversary that wraps
// ANY runtime::Transport — the sim's in-memory network or the real UDP
// backend — and mangles traffic according to a serializable FaultPlan.
//
// This is deliberately a different animal from sim::Adversary. The sim
// adversary reorders *delivery* inside the discrete-event scheduler and
// only exists on that backend; FaultyTransport sits at the *send* boundary
// both backends share, so the identical plan exercises the identical
// protocol retry/timeout machinery over loopback UDP and in the simulator.
//
// Determinism: every per-message decision (drop? duplicate? delay by how
// much? which byte to corrupt?) is drawn from the plan's own seeded
// sim::Rng, never from wall time. Under SimRuntime the whole execution is
// therefore reproducible byte-for-byte from (world seed, plan). Under
// RealRuntime the *decisions* for the k-th send are still a pure function
// of (plan.seed, k), but which send IS k-th depends on OS scheduling —
// honest nondeterminism the chaos harness copes with by gating on
// eventual outcomes, not traces (DESIGN.md §14).
//
// Corruption note: FaultyTransport flips bytes in the payload it forwards,
// which exercises the wire::Router decode boundary. Frame-level corruption
// on the UDP path (mangling the encoded datagram so runtime/frame's
// hardened decoder rejects it) is a RealRuntime option driven from the
// same plan — see RealRuntimeOptions::corrupt_tx_per_million.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/payload.h"
#include "common/serde.h"
#include "common/types.h"
#include "runtime/runtime.h"
#include "sim/rng.h"

namespace unidir::runtime {

/// During ticks [start, end), processes listed in different groups cannot
/// exchange messages (both directions dropped). A process appearing in NO
/// group is unrestricted — it talks to everyone, modelling a partition
/// that isolates only part of the cluster.
struct PartitionEpoch {
  Time start = 0;
  Time end = 0;
  std::vector<std::vector<ProcessId>> groups;

  void encode(serde::Writer& w) const;
  static PartitionEpoch decode(serde::Reader& r);
  bool operator==(const PartitionEpoch&) const = default;
};

/// The full fault schedule. Rates are fixed-point per-million so plans are
/// integer-exact across machines; delays are in abstract clock ticks, so a
/// plan means "a few protocol timeouts' worth of delay" on either backend.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::uint32_t drop_per_million = 0;
  std::uint32_t duplicate_per_million = 0;
  std::uint32_t delay_per_million = 0;
  std::uint32_t corrupt_per_million = 0;
  Time delay_min_ticks = 1;
  Time delay_max_ticks = 1;
  std::vector<PartitionEpoch> partitions;

  bool any_faults() const {
    return drop_per_million != 0 || duplicate_per_million != 0 ||
           delay_per_million != 0 || corrupt_per_million != 0 ||
           !partitions.empty();
  }

  void encode(serde::Writer& w) const;
  static FaultPlan decode(serde::Reader& r);
  bool operator==(const FaultPlan&) const = default;

  /// Text form, one `key=value` per line — writable from stdlib-only
  /// Python (the chaos harness) and diffable in a repro report:
  ///
  ///     seed=42
  ///     drop=20000            # per million sends
  ///     duplicate=10000
  ///     delay=50000
  ///     delay_min=200         # ticks
  ///     delay_max=2000
  ///     corrupt=5000
  ///     partition=1000:5000:0,1|2,3
  ///
  /// Unknown keys, blank lines and `#` comments are ignored; a malformed
  /// value makes the whole parse fail (nullopt) rather than silently
  /// running a different experiment than the file describes.
  std::string to_text() const;
  static std::optional<FaultPlan> parse_text(std::string_view text);
};

struct FaultyTransportStats {
  std::uint64_t forwarded = 0;    ///< sends passed through untouched
  std::uint64_t dropped = 0;      ///< lost to the drop rate
  std::uint64_t partitioned = 0;  ///< lost to a partition epoch
  std::uint64_t duplicated = 0;   ///< extra copies injected
  std::uint64_t delayed = 0;      ///< sends deferred via the clock
  std::uint64_t corrupted = 0;    ///< payload bytes flipped
};

/// Decorator over an inner Transport. Construction wires nothing; the
/// World (or any owner) routes sends through it and it forwards the
/// pass-through surface (set_deliver, set_local, peer_count) to the inner
/// transport unchanged.
class FaultyTransport final : public Transport {
 public:
  /// `inner` and `clock` must outlive this object. The clock schedules
  /// delayed re-sends; delay therefore also reorders, since later sends
  /// overtake a deferred one.
  FaultyTransport(Transport& inner, Clock& clock, FaultPlan plan);

  void send(ProcessId from, ProcessId to, Channel channel,
            Payload payload) override;
  void set_deliver(DeliverFn fn) override { inner_.set_deliver(std::move(fn)); }
  void set_local(std::function<bool(ProcessId)> is_local) override {
    inner_.set_local(std::move(is_local));
  }
  std::size_t peer_count() const override { return inner_.peer_count(); }

  const FaultPlan& plan() const { return plan_; }
  const FaultyTransportStats& stats() const { return stats_; }

 private:
  bool partitioned(ProcessId a, ProcessId b, Time at) const;

  Transport& inner_;
  Clock& clock_;
  FaultPlan plan_;
  sim::Rng rng_;
  FaultyTransportStats stats_;
};

}  // namespace unidir::runtime
