#include "runtime/frame.h"

#include <limits>

#include "common/serde.h"

namespace unidir::runtime {

Bytes encode_frame(ProcessId from, ProcessId to, Channel channel,
                   ByteSpan payload) {
  serde::Writer w;
  w.reserve(payload.size() + 24);
  w.uvarint(kFrameMagic);
  w.uvarint(from);
  w.uvarint(to);
  w.uvarint(channel);
  w.bytes(payload);
  return w.take();
}

std::optional<Frame> decode_frame(ByteSpan datagram) {
  try {
    serde::Reader r(datagram);
    if (r.uvarint() != kFrameMagic) return std::nullopt;
    const std::uint64_t from = r.uvarint();
    const std::uint64_t to = r.uvarint();
    const std::uint64_t channel = r.uvarint();
    if (from > std::numeric_limits<ProcessId>::max() ||
        to > std::numeric_limits<ProcessId>::max() ||
        channel > std::numeric_limits<Channel>::max())
      return std::nullopt;
    Frame f;
    f.from = static_cast<ProcessId>(from);
    f.to = static_cast<ProcessId>(to);
    f.channel = static_cast<Channel>(channel);
    f.payload = r.bytes();
    r.expect_done();  // trailing bytes are malformed, as on the wire layer
    return f;
  } catch (const serde::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace unidir::runtime
