// RealRuntime: the same protocol stack on an OS thread, a monotonic-clock
// timer heap, and UDP sockets.
//
// One RealRuntime hosts one event loop. The loop runs on whichever thread
// calls run()/run_until() (the "loop thread"); all protocol handlers, timer
// callbacks and transport sends execute there, one event at a time, so
// protocol code needs no locking — the same thread-confinement contract the
// simulator gives. Two auxiliary thread kinds exist:
//
//   * a receiver thread (only when `listen` is set) that blocks in
//     recvfrom, decodes frames (runtime/frame.h) and enqueues them into a
//     mutex-protected inbox the loop drains;
//   * the signature-verification worker pool (crypto/verify_runner.h),
//     attached through World::set_verify_threads exactly as under the sim.
//
// Time: a "tick" is Options::tick_ns of std::chrono::steady_clock (default
// 1ms), so protocol timeouts written in ticks — a MinBFT view-change
// timeout of 300, a client resend of 400 — become 300ms/400ms of wall
// time. Timers fire in (deadline, arm-order) order on the loop thread.
//
// Addressing: sends to ids in the peer table leave through the UDP socket
// as length-prefixed frames; sends to local ids (World registers which)
// loop back through the inbox; anything else is dropped and counted.
// Determinism, fingerprints and the adversary do NOT exist here — that is
// the point of the boundary (DESIGN.md §13).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/runtime.h"

namespace unidir::runtime {

/// Counters for the socket path. Frame drops are counted where they
/// happen (receiver thread), so the fields tests read after a run are
/// atomics; everything protocol-visible stays loop-thread-only.
struct UdpTransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_malformed = 0;    // datagrams decode_frame rejected
  std::uint64_t frames_no_peer = 0;      // sends to unaddressable ids
  std::uint64_t loopback_messages = 0;   // local deliveries (no socket)
  std::uint64_t frames_corrupt_tx = 0;   // datagrams mangled before sendto
};

struct RealRuntimeOptions {
  /// Wall duration of one tick. 1ms by default: protocol timeout constants
  /// tuned for the simulator's "a few ticks per hop" then mean a few
  /// milliseconds, which is the right order for localhost UDP.
  std::uint64_t tick_ns = 1'000'000;

  /// "ip:port" to bind the UDP socket to (IPv4). Port 0 binds an ephemeral
  /// port — read it back with bound_port() and exchange it out of band
  /// (the loopback tests do exactly this). Empty: no socket, loopback-only.
  std::string listen;

  struct Peer {
    ProcessId id = kNoProcess;
    std::string host;
    std::uint16_t port = 0;
  };
  /// Remote id → address table. May also be filled after construction with
  /// add_peer(), as long as it happens before the loop runs.
  std::vector<Peer> peers;

  /// Mangles this many outgoing datagrams per million (0 = off) by flipping
  /// one byte AFTER frame encoding, so the damage lands on the wire format
  /// itself — the chaos harness's proof that the peer's hardened
  /// decode_frame rejects and counts garbage instead of crashing. Payload-
  /// level corruption (inside a valid frame) is FaultyTransport's job
  /// (runtime/fault.h); this knob covers the layer below it. Decisions are
  /// deterministic in (corrupt_seed, send index).
  std::uint32_t corrupt_tx_per_million = 0;
  std::uint64_t corrupt_seed = 1;
};

class RealRuntime final : public Runtime {
 public:
  explicit RealRuntime(RealRuntimeOptions options);
  ~RealRuntime() override;

  /// The UDP port actually bound (resolves listen-port 0), 0 if no socket.
  std::uint16_t bound_port() const { return bound_port_; }

  /// Registers/overwrites a remote peer address. Call before run().
  void add_peer(ProcessId id, const std::string& host, std::uint16_t port);

  /// Asks the loop to return after the current event; callable from any
  /// thread (and from signal-handler-adjacent contexts via the atomic).
  void stop() {
    stop_.store(true, std::memory_order_relaxed);
    inbox_cv_.notify_all();
  }
  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  Clock& clock() override { return clock_; }
  Transport& transport() override { return transport_; }

  /// Runs until stop(), `max_events`, or quiescence — which here means
  /// literally nothing pending: no timer armed, inbox empty, and no socket
  /// to produce more (a socket-bound runtime never quiesces on its own,
  /// since a datagram may always arrive; use stop() or run_until).
  std::size_t run(std::size_t max_events) override;
  bool run_until(const std::function<bool()>& pred,
                 std::size_t max_events) override;

  RuntimeStats stats() const override;
  UdpTransportStats udp_stats() const;
  bool real_time() const override { return true; }

 private:
  class RealClock final : public Clock {
   public:
    explicit RealClock(RealRuntime& rt) : rt_(rt) {}
    Time now() const override { return rt_.now_ticks(); }
    TimerId arm(Time delay, std::function<void()> fn) override {
      return rt_.arm_timer(delay, std::move(fn));
    }
    void cancel(TimerId id) override { rt_.cancel_timer(id); }

   private:
    RealRuntime& rt_;
  };

  class UdpTransport final : public Transport {
   public:
    explicit UdpTransport(RealRuntime& rt) : rt_(rt) {}
    void send(ProcessId from, ProcessId to, Channel channel,
              Payload payload) override {
      rt_.transport_send(from, to, channel, std::move(payload));
    }
    void set_deliver(DeliverFn fn) override { rt_.deliver_ = std::move(fn); }
    void set_local(std::function<bool(ProcessId)> is_local) override {
      rt_.is_local_ = std::move(is_local);
    }
    std::size_t peer_count() const override { return rt_.peers_.size(); }

   private:
    RealRuntime& rt_;
  };

  struct TimerEntry {
    std::uint64_t deadline_ns = 0;
    std::uint64_t seq = 0;  // arm order; ties on deadline fire in arm order
    TimerId id = kNoTimer;

    bool operator<(const TimerEntry& o) const {
      // std::priority_queue is a max-heap; invert for earliest-first.
      if (deadline_ns != o.deadline_ns) return deadline_ns > o.deadline_ns;
      return seq > o.seq;
    }
  };

  struct Incoming {
    ProcessId from = kNoProcess;
    ProcessId to = kNoProcess;
    Channel channel = 0;
    Payload payload;
  };

  std::uint64_t elapsed_ns() const;
  Time now_ticks() const;
  TimerId arm_timer(Time delay, std::function<void()> fn);
  void cancel_timer(TimerId id);
  void transport_send(ProcessId from, ProcessId to, Channel channel,
                      Payload payload);
  void enqueue_local(Incoming in);
  void open_socket();
  void receive_loop();
  /// Executes at most one pending event (due timer first, then one inbox
  /// message); returns false when nothing was due.
  bool step();
  /// True when no timer is armed and the inbox is empty.
  bool idle();
  /// Sleeps until the next timer deadline, an inbox arrival, stop(), or a
  /// bounded slice (so run_until predicates and stop stay responsive).
  void wait_for_work();

  RealRuntimeOptions options_;
  RealClock clock_;
  UdpTransport transport_;
  Transport::DeliverFn deliver_;
  std::function<bool(ProcessId)> is_local_;

  std::chrono::steady_clock::time_point epoch_;

  // Timer heap — loop-thread-owned (armed from handlers, or from the
  // owning thread before the loop starts; the std::thread handoff is the
  // synchronization point, as for all pre-run setup).
  std::vector<TimerEntry> timer_heap_;  // via std::push_heap/std::pop_heap
  std::unordered_map<TimerId, std::function<void()>> timer_fns_;
  TimerId next_timer_ = kNoTimer;
  std::uint64_t next_timer_seq_ = 0;

  // Inbox — shared between the receiver thread and the loop thread.
  std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;
  std::deque<Incoming> inbox_;

  // Loop-thread-owned PRNG state (splitmix64) for corrupt_tx decisions.
  std::uint64_t corrupt_rng_ = 0;

  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread receiver_;
  std::atomic<bool> stop_{false};
  std::unordered_map<ProcessId, std::uint64_t> peers_;  // id -> packed addr
  std::unordered_set<ProcessId> warned_no_peer_;

  RuntimeStats stats_;  // loop-thread-owned
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> frames_malformed_{0};
  std::atomic<std::uint64_t> frames_no_peer_{0};
  std::atomic<std::uint64_t> loopback_messages_{0};
  std::atomic<std::uint64_t> frames_corrupt_tx_{0};
};

}  // namespace unidir::runtime
