// RealRuntime: the same protocol stack on OS threads, monotonic-clock
// timer heaps, and UDP sockets — with batched socket I/O and optional
// event-loop shards.
//
// One RealRuntime hosts `options.shards` event loops (default 1). Each
// local ProcessId is pinned to shard `id % shards`; all of a process's
// handlers and arm_for timers execute on its shard's loop thread, one
// event at a time, so protocol code needs no locking — the same
// thread-confinement contract the simulator gives, now per shard. With one
// shard, run()/run_until() execute the loop on the calling thread exactly
// as before; with more, run_until runs shard 0 on the calling thread
// (checking the predicate there) and the rest on internal threads that
// live for the duration of the call. Three auxiliary thread kinds exist:
//
//   * a receiver thread (only when `listen` is set) that drains datagram
//     BURSTS — recvmmsg, up to options.recv_batch per syscall, with a
//     portable recvfrom fallback behind the same interface — decodes
//     frames (runtime/frame.h) and enqueues each burst into the target
//     shards' inboxes, one lock acquisition per shard per burst;
//   * the per-call shard loop threads described above;
//   * the signature-verification worker pool (crypto/verify_runner.h),
//     attached through World::set_verify_threads exactly as under the sim.
//
// Outbound datagrams are coalesced: sends a handler issues are staged in
// the executing shard's queue and flushed with one sendmmsg when the queue
// reaches options.send_batch, when the loop runs out of immediately-due
// events, and before every wait — so a broadcast costs one syscall, and at
// saturation the syscalls-per-datagram ratio drops well below 1 on both
// directions. Every send's return value is checked: kernel rejections are
// counted (frames_send_failed, per-errno WARN-once), never reported as
// delivered traffic, and frames over options.max_datagram are refused at
// encode time (frames_oversized) instead of dying as silent EMSGSIZE —
// fragmenting them over a TCP transport is the ROADMAP item 3 follow-up.
//
// Time: a "tick" is Options::tick_ns of std::chrono::steady_clock (default
// 1ms), so protocol timeouts written in ticks — a MinBFT view-change
// timeout of 300, a client resend of 400 — become 300ms/400ms of wall
// time. Timers fire in (deadline, arm-order) order on their shard's
// thread. Arming or cancelling a timer on a shard other than the calling
// one while loops run is a contract violation (checked): timers belong to
// the process that armed them, and that process belongs to one shard.
//
// Addressing: sends to ids in the peer table leave through the UDP socket
// as length-prefixed frames; sends to local ids (World registers which)
// loop back through the owning shard's inbox — the cross-shard delivery
// path; anything else is dropped and counted. Determinism, fingerprints
// and the adversary do NOT exist here — that is the point of the boundary
// (DESIGN.md §13; sharding and batching are §15).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/runtime.h"

namespace unidir::runtime {

/// Counters for the socket path. Frame drops are counted where they
/// happen (receiver thread, shard flush), so the fields tests read after
/// a run are atomics; everything protocol-visible stays shard-confined.
struct UdpTransportStats {
  std::uint64_t frames_sent = 0;         // datagrams the kernel ACCEPTED
  std::uint64_t frames_received = 0;
  std::uint64_t frames_malformed = 0;    // datagrams decode_frame rejected
  std::uint64_t frames_no_peer = 0;      // sends to unaddressable ids
  std::uint64_t loopback_messages = 0;   // local deliveries (no socket)
  std::uint64_t frames_corrupt_tx = 0;   // datagrams mangled before sendto
  std::uint64_t frames_send_failed = 0;  // sendto/sendmmsg kernel rejections
  std::uint64_t frames_oversized = 0;    // refused at encode: > max_datagram
  std::uint64_t recv_syscalls = 0;       // recvmmsg/recvfrom that returned data
  std::uint64_t recv_timeouts = 0;       // receive wakeups with nothing to read
  std::uint64_t send_syscalls = 0;       // sendmmsg/sendto calls (incl. failed)
  bool receiver_dead = false;            // receive loop hit an unexpected errno

  /// Productive receive syscalls per datagram received — < 1.0 iff
  /// recvmmsg actually drained bursts. Idle-timeout wakeups are a
  /// constant-rate overhead, not a per-datagram cost, so they are counted
  /// separately (recv_timeouts) and excluded here.
  double recv_syscalls_per_datagram() const {
    return frames_received == 0
               ? 0.0
               : static_cast<double>(recv_syscalls) /
                     static_cast<double>(frames_received);
  }
  double send_syscalls_per_datagram() const {
    return frames_sent == 0 ? 0.0
                            : static_cast<double>(send_syscalls) /
                                  static_cast<double>(frames_sent);
  }
};

struct RealRuntimeOptions {
  /// Wall duration of one tick. 1ms by default: protocol timeout constants
  /// tuned for the simulator's "a few ticks per hop" then mean a few
  /// milliseconds, which is the right order for localhost UDP.
  std::uint64_t tick_ns = 1'000'000;

  /// "ip:port" to bind the UDP socket to (IPv4). Port 0 binds an ephemeral
  /// port — read it back with bound_port() and exchange it out of band
  /// (the loopback tests do exactly this). Empty: no socket, loopback-only.
  std::string listen;

  struct Peer {
    ProcessId id = kNoProcess;
    std::string host;
    std::uint16_t port = 0;
  };
  /// Remote id → address table. May also be filled after construction with
  /// add_peer(), as long as it happens before the loop runs.
  std::vector<Peer> peers;

  /// Event-loop shards. Local ids are pinned to shard id % shards; each
  /// shard has its own timer heap, inbox and send queue and runs its
  /// pinned processes' handlers on its own thread, so one OS process
  /// hosting many protocol processes (a client fleet, a single-machine
  /// cluster) exploits real cores. 1 (the default) is the classic
  /// single-loop runtime. Capped at 64.
  std::size_t shards = 1;

  /// Datagrams drained per receive syscall (recvmmsg burst width) and
  /// frames coalesced per sendmmsg flush. 1 degenerates to the unbatched
  /// syscall-per-datagram path.
  std::size_t recv_batch = 32;
  std::size_t send_batch = 64;

  /// false: use the portable one-datagram recvfrom / sendto path even
  /// where recvmmsg/sendmmsg exist. The two receive paths are
  /// frame-for-frame equivalent (tested); the flag exists for that test
  /// and for debugging.
  bool use_recvmmsg = true;
  bool use_sendmmsg = true;

  /// Largest encoded frame handed to the socket. Anything bigger is
  /// refused at encode time and counted as frames_oversized (WARN-once per
  /// channel) instead of dying as a silent kernel EMSGSIZE. The default is
  /// the IPv4 UDP payload maximum; tests raise it past the kernel's limit
  /// to exercise real sendmmsg failures, or lower it to make "oversized"
  /// cheap to hit.
  std::size_t max_datagram = 65507;

  /// Mangles this many outgoing datagrams per million (0 = off) by flipping
  /// one byte AFTER frame encoding, so the damage lands on the wire format
  /// itself — the chaos harness's proof that the peer's hardened
  /// decode_frame rejects and counts garbage instead of crashing. Payload-
  /// level corruption (inside a valid frame) is FaultyTransport's job
  /// (runtime/fault.h); this knob covers the layer below it. Decisions are
  /// deterministic in (corrupt_seed, shard, send index within the shard).
  std::uint32_t corrupt_tx_per_million = 0;
  std::uint64_t corrupt_seed = 1;
};

class RealRuntime final : public Runtime {
 public:
  explicit RealRuntime(RealRuntimeOptions options);
  ~RealRuntime() override;

  /// The UDP port actually bound (resolves listen-port 0), 0 if no socket.
  std::uint16_t bound_port() const { return bound_port_; }

  /// The socket's file descriptor (-1 when loopback-only). Exposed for
  /// harnesses that need to poke the socket itself — the receiver-death
  /// test dup2()s a non-socket over it to force a real ENOTSOCK.
  int native_handle() const { return fd_; }

  /// Registers/overwrites a remote peer address. Call before run().
  void add_peer(ProcessId id, const std::string& host, std::uint16_t port);

  /// Asks the loops to return after their current event; callable from any
  /// thread (and from signal-handler-adjacent contexts via the atomic).
  void stop() {
    stop_.store(true, std::memory_order_relaxed);
    wake_all_shards();
  }
  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  Clock& clock() override { return clock_; }
  Transport& transport() override { return transport_; }

  /// Runs until stop(), `max_events` (a soft cap: shards may overshoot by
  /// one event each), or quiescence — which here means literally nothing
  /// pending anywhere: no timer armed, no message queued, no handler
  /// mid-flight (one global pending count tracks all three, so the check
  /// is sound even across shards), and no socket to produce more. A
  /// socket-bound runtime never quiesces on its own — a datagram may
  /// always arrive; use stop() or run_until there.
  std::size_t run(std::size_t max_events) override;
  bool run_until(const std::function<bool()>& pred,
                 std::size_t max_events) override;

  RuntimeStats stats() const override;
  UdpTransportStats udp_stats() const;
  bool real_time() const override { return true; }

  std::size_t execution_shards() const override { return shards_.size(); }
  std::size_t calling_shard() const override;
  TimerId arm_for(ProcessId owner, Time delay,
                  std::function<void()> fn) override;
  RuntimeStats shard_stats(std::size_t shard) const override;

 private:
  class RealClock final : public Clock {
   public:
    explicit RealClock(RealRuntime& rt) : rt_(rt) {}
    Time now() const override { return rt_.now_ticks(); }
    TimerId arm(Time delay, std::function<void()> fn) override {
      return rt_.arm_timer(rt_.arm_shard(), delay, std::move(fn));
    }
    void cancel(TimerId id) override { rt_.cancel_timer(id); }

   private:
    RealRuntime& rt_;
  };

  class UdpTransport final : public Transport {
   public:
    explicit UdpTransport(RealRuntime& rt) : rt_(rt) {}
    void send(ProcessId from, ProcessId to, Channel channel,
              Payload payload) override {
      rt_.transport_send(from, to, channel, std::move(payload));
    }
    void set_deliver(DeliverFn fn) override { rt_.deliver_ = std::move(fn); }
    void set_local(std::function<bool(ProcessId)> is_local) override {
      rt_.is_local_ = std::move(is_local);
    }
    std::size_t peer_count() const override { return rt_.peers_.size(); }

   private:
    RealRuntime& rt_;
  };

  struct TimerEntry {
    std::uint64_t deadline_ns = 0;
    std::uint64_t seq = 0;  // arm order; ties on deadline fire in arm order
    TimerId id = kNoTimer;

    bool operator<(const TimerEntry& o) const {
      // std::priority_queue is a max-heap; invert for earliest-first.
      if (deadline_ns != o.deadline_ns) return deadline_ns > o.deadline_ns;
      return seq > o.seq;
    }
  };

  struct Incoming {
    ProcessId from = kNoProcess;
    ProcessId to = kNoProcess;
    Channel channel = 0;
    Payload payload;
  };

  /// One frame staged for the next sendmmsg flush.
  struct PendingSend {
    std::uint64_t addr = 0;  // packed sockaddr_in (see real_runtime.cpp)
    Bytes frame;
  };

  /// One event loop: timer heap + inbox + outbound staging. The timer
  /// structures, the drained `local` queue, the send queue and the scratch
  /// arrays are owned by the shard's loop thread (pre-run accesses
  /// synchronize via the thread handoff); `inbox` is the cross-thread
  /// handoff point, shared with other shards and the receiver.
  struct Shard {
    std::vector<TimerEntry> timer_heap;  // via std::push_heap/std::pop_heap
    std::unordered_map<TimerId, std::function<void()>> timer_fns;
    std::uint64_t next_timer_seq = 0;
    std::uint64_t next_timer_id = 0;
    std::deque<Incoming> local;  // drained batch, loop-thread-only
    std::vector<PendingSend> send_queue;
    std::uint64_t corrupt_rng = 0;

    std::mutex mu;
    std::condition_variable cv;
    std::deque<Incoming> inbox;

    // Work accounting; atomics so stats() may be polled mid-run.
    std::atomic<std::uint64_t> scheduled{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> run_wall_ns{0};
  };

  std::uint64_t elapsed_ns() const;
  Time now_ticks() const;

  /// Shard a clock-level (ownerless) arm lands on: the calling shard, or
  /// shard 0 before the loops run.
  std::size_t arm_shard() const;
  std::size_t shard_of(ProcessId id) const {
    return static_cast<std::size_t>(id) % shards_.size();
  }
  TimerId arm_timer(std::size_t shard, Time delay, std::function<void()> fn);
  void cancel_timer(TimerId id);
  void transport_send(ProcessId from, ProcessId to, Channel channel,
                      Payload payload);
  void enqueue_local(Incoming in);
  /// Stages `frame` for `addr` on the calling shard (flushing at
  /// send_batch), or sends it immediately when the caller is not a shard
  /// loop thread.
  void stage_or_send(std::uint64_t addr, Bytes frame);
  /// One sendto with full failure accounting.
  void send_now(std::uint64_t addr, const Bytes& frame);
  void flush_sends(Shard& s);
  void note_send_failure(int err);
  void open_socket();
  void receive_loop();
  /// Executes at most one pending event on `s` (due timer first, then one
  /// drained message); returns false when nothing was due. Refills the
  /// drained queue from the inbox in one lock acquisition per burst.
  bool step(Shard& s);
  /// Sleeps until the next timer deadline on `s`, an inbox arrival,
  /// stop()/run-epoch end, or a bounded slice.
  void wait_for_work(Shard& s);
  void wake_all_shards();
  /// The loop body every shard runs: `pred` is only ever non-null on shard
  /// 0 (the calling thread). Returns (pred held, events executed here).
  std::pair<bool, std::size_t> shard_loop(std::size_t index,
                                          const std::function<bool()>* pred,
                                          std::size_t max_events);
  std::pair<bool, std::size_t> run_impl(const std::function<bool()>* pred,
                                        std::size_t max_events);

  RealRuntimeOptions options_;
  RealClock clock_;
  UdpTransport transport_;
  Transport::DeliverFn deliver_;
  std::function<bool(ProcessId)> is_local_;

  std::chrono::steady_clock::time_point epoch_;

  std::vector<std::unique_ptr<Shard>> shards_;

  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread receiver_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};    // any shard loop live (arm checks)
  std::atomic<bool> run_done_{false};   // current run_impl epoch is over
  std::atomic<std::uint64_t> events_this_run_{0};  // soft max_events budget
  /// Armed timers + queued messages + handlers mid-flight; 0 is sound
  /// quiescence for loopback-only runtimes (see the .cpp header comment).
  std::atomic<std::uint64_t> pending_{0};
  std::unordered_map<ProcessId, std::uint64_t> peers_;  // id -> packed addr

  // Cold-path bookkeeping shared across threads: warn-once sets and the
  // corrupt/send state for callers that are not shard loops.
  std::mutex warn_mu_;
  std::unordered_set<ProcessId> warned_no_peer_;
  std::unordered_set<Channel> warned_oversized_;
  std::unordered_set<int> warned_send_errno_;
  std::mutex foreign_mu_;  // guards foreign_corrupt_rng_
  std::uint64_t foreign_corrupt_rng_ = 0;

  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> frames_malformed_{0};
  std::atomic<std::uint64_t> frames_no_peer_{0};
  std::atomic<std::uint64_t> loopback_messages_{0};
  std::atomic<std::uint64_t> frames_corrupt_tx_{0};
  std::atomic<std::uint64_t> frames_send_failed_{0};
  std::atomic<std::uint64_t> frames_oversized_{0};
  std::atomic<std::uint64_t> recv_syscalls_{0};
  std::atomic<std::uint64_t> recv_timeouts_{0};
  std::atomic<std::uint64_t> send_syscalls_{0};
  std::atomic<bool> receiver_dead_{false};
};

}  // namespace unidir::runtime
