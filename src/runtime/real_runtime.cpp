// Sharded, batched implementation of the real-time backend. Layout:
//
//   timers      — per-shard binary heap + id->fn map; cancel leaves a
//                 tombstone in the heap and erases the fn (and the
//                 pending-event count) immediately.
//   transport   — peer sends encode to a frame, refuse oversized ones,
//                 maybe corrupt (chaos), then stage on the calling shard's
//                 send queue for a sendmmsg flush; local sends route to the
//                 owning shard's inbox (same-shard: no lock at all).
//   receiver    — one thread draining recvmmsg bursts, grouping decoded
//                 frames by destination shard, one inbox lock per shard
//                 per burst.
//   loops       — shard_loop is the one event-loop body; run/run_until run
//                 shard 0 on the calling thread and the rest on temporary
//                 threads for the duration of the call.
//
// Quiescence (loopback-only runtimes) is detected with a global
// pending-event counter: every armed timer and queued message holds one
// count until its handler RETURNS (cancel releases it early), so
// pending_ == 0 really means "nothing is queued anywhere and no handler
// is mid-flight that could queue more" — sound termination detection
// without stopping the world.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE 1  // recvmmsg/sendmmsg/MSG_WAITFORONE on glibc
#endif

#include "runtime/real_runtime.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.h"
#include "common/log.h"
#include "runtime/frame.h"

namespace unidir::runtime {

namespace {

/// Longest the loops or the receiver block before re-checking stop()/pred.
constexpr std::uint64_t kMaxWaitSliceNs = 50'000'000;  // 50ms

/// TimerIds carry their shard in the low bits so cancel() can find the
/// owning heap without a registry: id = (per-shard counter << 6) | shard.
constexpr std::size_t kShardBits = 6;
constexpr std::size_t kMaxShards = std::size_t{1} << kShardBits;

/// Largest UDP datagram we will ever read; also the per-slot receive
/// buffer size for recvmmsg bursts.
constexpr std::size_t kRecvBufBytes = 65536;

/// Packs an IPv4 (address, port) pair — both in network byte order as
/// sockaddr_in wants them — into one map value, so the header needs no
/// socket includes.
std::uint64_t pack_addr(std::uint32_t s_addr_be, std::uint16_t port_be) {
  return (static_cast<std::uint64_t>(s_addr_be) << 16) |
         static_cast<std::uint64_t>(port_be);
}

sockaddr_in unpack_addr(std::uint64_t packed) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = static_cast<std::uint32_t>(packed >> 16);
  sa.sin_port = static_cast<std::uint16_t>(packed & 0xFFFF);
  return sa;
}

std::uint64_t resolve_ipv4(const std::string& host, std::uint16_t port) {
  in_addr addr{};
  UNIDIR_REQUIRE_MSG(inet_pton(AF_INET, host.c_str(), &addr) == 1,
                     "RealRuntime: not an IPv4 address: " + host);
  return pack_addr(addr.s_addr, htons(port));
}

/// splitmix64 step — the corrupt_tx decision stream. Self-contained so the
/// runtime layer does not pull in sim/rng.h.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Splits "ip:port"; throws on anything else.
std::pair<std::string, std::uint16_t> split_host_port(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  UNIDIR_REQUIRE_MSG(colon != std::string::npos && colon + 1 < s.size(),
                     "RealRuntime: expected ip:port, got '" + s + "'");
  const unsigned long port = std::stoul(s.substr(colon + 1));
  UNIDIR_REQUIRE_MSG(port <= 65535, "RealRuntime: port out of range in " + s);
  return {s.substr(0, colon), static_cast<std::uint16_t>(port)};
}

/// Which runtime's shard loop (if any) the current thread is executing.
/// Keyed by runtime pointer because one OS process routinely hosts several
/// RealRuntimes (every realtime test does).
thread_local const void* tl_runtime = nullptr;
thread_local std::size_t tl_shard = kNoShard;

struct ShardScope {
  const void* prev_rt;
  std::size_t prev_shard;
  ShardScope(const void* rt, std::size_t shard)
      : prev_rt(tl_runtime), prev_shard(tl_shard) {
    tl_runtime = rt;
    tl_shard = shard;
  }
  ~ShardScope() {
    tl_runtime = prev_rt;
    tl_shard = prev_shard;
  }
};

}  // namespace

RealRuntime::RealRuntime(RealRuntimeOptions options)
    : options_(std::move(options)),
      clock_(*this),
      transport_(*this),
      epoch_(std::chrono::steady_clock::now()) {
  UNIDIR_REQUIRE_MSG(options_.tick_ns > 0, "tick_ns must be positive");
  if (options_.shards == 0) options_.shards = 1;
  UNIDIR_REQUIRE_MSG(options_.shards <= kMaxShards,
                     "RealRuntime: shards capped at 64");
  if (options_.recv_batch == 0) options_.recv_batch = 1;
  if (options_.send_batch == 0) options_.send_batch = 1;
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_[i]->corrupt_rng =
        options_.corrupt_seed + 0x9E3779B97F4A7C15ull * i;
  }
  foreign_corrupt_rng_ =
      options_.corrupt_seed + 0x9E3779B97F4A7C15ull * kMaxShards;
  for (const RealRuntimeOptions::Peer& p : options_.peers)
    add_peer(p.id, p.host, p.port);
  if (!options_.listen.empty()) {
    open_socket();
    receiver_ = std::thread([this] { receive_loop(); });
  }
}

RealRuntime::~RealRuntime() {
  stop();
  if (receiver_.joinable()) receiver_.join();
  if (fd_ >= 0) ::close(fd_);
}

void RealRuntime::add_peer(ProcessId id, const std::string& host,
                           std::uint16_t port) {
  peers_[id] = resolve_ipv4(host, port);
}

std::uint64_t RealRuntime::elapsed_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Time RealRuntime::now_ticks() const { return elapsed_ns() / options_.tick_ns; }

// ---- timers ----------------------------------------------------------------

std::size_t RealRuntime::calling_shard() const {
  return tl_runtime == this ? tl_shard : kNoShard;
}

std::size_t RealRuntime::arm_shard() const {
  const std::size_t cs = calling_shard();
  return cs == kNoShard ? 0 : cs;
}

TimerId RealRuntime::arm_for(ProcessId owner, Time delay,
                             std::function<void()> fn) {
  return arm_timer(shard_of(owner), delay, std::move(fn));
}

TimerId RealRuntime::arm_timer(std::size_t shard, Time delay,
                               std::function<void()> fn) {
  UNIDIR_REQUIRE(fn != nullptr);
  UNIDIR_REQUIRE(shard < shards_.size());
  if (running_.load(std::memory_order_relaxed)) {
    // Timer structures are loop-thread-owned: while loops run, only the
    // shard's own handlers may touch them. Pre-run arms (World::start,
    // bench schedule injection) synchronize via the thread handoff.
    UNIDIR_REQUIRE_MSG(calling_shard() == shard,
                       "RealRuntime: cross-shard timer arm while loops run");
  }
  Shard& s = *shards_[shard];
  const TimerId id = (++s.next_timer_id << kShardBits) |
                     static_cast<TimerId>(shard);
  s.timer_fns.emplace(id, std::move(fn));
  s.timer_heap.push_back(TimerEntry{elapsed_ns() + delay * options_.tick_ns,
                                    s.next_timer_seq++, id});
  std::push_heap(s.timer_heap.begin(), s.timer_heap.end());
  s.scheduled.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1);
  return id;
}

void RealRuntime::cancel_timer(TimerId id) {
  if (id == kNoTimer) return;
  const std::size_t shard = static_cast<std::size_t>(id) & (kMaxShards - 1);
  if (shard >= shards_.size()) return;  // unknown id: no-op, per contract
  if (running_.load(std::memory_order_relaxed)) {
    UNIDIR_REQUIRE_MSG(calling_shard() == shard,
                       "RealRuntime: cross-shard timer cancel while loops run");
  }
  // The heap entry stays behind as a tombstone; step() skips entries whose
  // function is gone. The pending count is released NOW — this timer will
  // never execute, and quiescence must not wait for its deadline.
  if (shards_[shard]->timer_fns.erase(id) > 0) pending_.fetch_sub(1);
}

// ---- transport -------------------------------------------------------------

void RealRuntime::transport_send(ProcessId from, ProcessId to, Channel channel,
                                 Payload payload) {
  const auto peer = peers_.find(to);
  if (peer != peers_.end()) {
    UNIDIR_CHECK_MSG(fd_ >= 0, "RealRuntime: peer send without a socket");
    Bytes frame = encode_frame(from, to, channel,
                               ByteSpan(payload.data(), payload.size()));
    if (frame.size() > options_.max_datagram) {
      // Refused here, where the channel is still known, instead of dying
      // as a silent kernel EMSGSIZE deep in a sendmmsg burst. Large frames
      // need the TCP transport (ROADMAP item 3); until then the sender's
      // retransmission logic sees the loss honestly.
      frames_oversized_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(warn_mu_);
      if (warned_oversized_.insert(channel).second) {
        UNIDIR_WARN("RealRuntime: dropping "
                    << frame.size() << "-byte frame on channel " << channel
                    << " (> max_datagram " << options_.max_datagram
                    << "); fragmenting needs the TCP transport — ROADMAP "
                       "item 3. Further drops on this channel are silent.");
      }
      return;
    }
    if (options_.corrupt_tx_per_million != 0 && !frame.empty()) {
      const std::size_t cs = calling_shard();
      std::unique_lock<std::mutex> foreign_lock;
      std::uint64_t* rng = nullptr;
      if (cs != kNoShard) {
        rng = &shards_[cs]->corrupt_rng;
      } else {
        foreign_lock = std::unique_lock<std::mutex>(foreign_mu_);
        rng = &foreign_corrupt_rng_;
      }
      if (splitmix64(*rng) % 1'000'000 < options_.corrupt_tx_per_million) {
        // One flipped byte anywhere in the encoded frame: magic, varint
        // header or payload — the peer's decode_frame must reject it (or,
        // for a payload hit that survives framing, the wire::Router must).
        const std::uint64_t roll = splitmix64(*rng);
        frame[roll % frame.size()] ^= std::uint8_t(1 + (roll >> 32) % 255);
        frames_corrupt_tx_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    stage_or_send(peer->second, std::move(frame));
    return;
  }
  if (is_local_ && is_local_(to)) {
    loopback_messages_.fetch_add(1, std::memory_order_relaxed);
    enqueue_local(Incoming{from, to, channel, std::move(payload)});
    return;
  }
  frames_no_peer_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(warn_mu_);
  if (warned_no_peer_.insert(to).second) {
    UNIDIR_WARN("RealRuntime: dropping send to unaddressable process "
                << to << " (no peer entry, not local)");
  }
}

void RealRuntime::enqueue_local(Incoming in) {
  Shard& s = *shards_[shard_of(in.to)];
  s.scheduled.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1);
  if (calling_shard() == shard_of(in.to)) {
    // Same-shard delivery from the shard's own loop thread: the drained
    // queue is ours, no lock, no wakeup (we are plainly awake).
    s.local.push_back(std::move(in));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.inbox.push_back(std::move(in));
  }
  s.cv.notify_one();
}

// ---- outbound batching -----------------------------------------------------

void RealRuntime::stage_or_send(std::uint64_t addr, Bytes frame) {
  const std::size_t cs = calling_shard();
  if (cs == kNoShard || !options_.use_sendmmsg || options_.send_batch <= 1) {
    // Not on a loop thread (pre-run sends), or batching is off: one
    // syscall now, full failure accounting either way.
    send_now(addr, frame);
    return;
  }
  Shard& s = *shards_[cs];
  s.send_queue.push_back(PendingSend{addr, std::move(frame)});
  if (s.send_queue.size() >= options_.send_batch) flush_sends(s);
}

void RealRuntime::send_now(std::uint64_t addr, const Bytes& frame) {
  const sockaddr_in sa = unpack_addr(addr);
  send_syscalls_.fetch_add(1, std::memory_order_relaxed);
  const ssize_t r =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (r < 0) {
    frames_send_failed_.fetch_add(1, std::memory_order_relaxed);
    note_send_failure(errno);
    return;
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
}

void RealRuntime::flush_sends(Shard& s) {
  if (s.send_queue.empty()) return;
#if defined(__linux__)
  if (options_.use_sendmmsg) {
    // Scratch is thread_local (each shard loop is its own thread) so the
    // header stays free of socket types and the hot path free of allocs.
    static thread_local std::vector<mmsghdr> msgs;
    static thread_local std::vector<iovec> iovs;
    static thread_local std::vector<sockaddr_in> addrs;
    std::size_t i = 0;
    while (i < s.send_queue.size()) {
      const std::size_t n =
          std::min(s.send_queue.size() - i, options_.send_batch);
      msgs.assign(n, mmsghdr{});
      iovs.resize(n);
      addrs.resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        PendingSend& p = s.send_queue[i + k];
        addrs[k] = unpack_addr(p.addr);
        iovs[k].iov_base = p.frame.data();
        iovs[k].iov_len = p.frame.size();
        msgs[k].msg_hdr.msg_name = &addrs[k];
        msgs[k].msg_hdr.msg_namelen = sizeof(sockaddr_in);
        msgs[k].msg_hdr.msg_iov = &iovs[k];
        msgs[k].msg_hdr.msg_iovlen = 1;
      }
      send_syscalls_.fetch_add(1, std::memory_order_relaxed);
      const int sent =
          ::sendmmsg(fd_, msgs.data(), static_cast<unsigned>(n), 0);
      if (sent <= 0) {
        // sendmmsg fails (-1) only when the FIRST datagram is rejected;
        // count that one, skip it, and keep flushing the rest. A mid-batch
        // rejection surfaces as a short count here and as the -1 of the
        // next iteration's first slot — so every loss is counted exactly
        // once, never attributed to frames_sent_.
        frames_send_failed_.fetch_add(1, std::memory_order_relaxed);
        note_send_failure(sent < 0 ? errno : EIO);
        ++i;
        continue;
      }
      frames_sent_.fetch_add(static_cast<std::uint64_t>(sent),
                             std::memory_order_relaxed);
      i += static_cast<std::size_t>(sent);
    }
    s.send_queue.clear();
    return;
  }
#endif
  for (const PendingSend& p : s.send_queue) send_now(p.addr, p.frame);
  s.send_queue.clear();
}

void RealRuntime::note_send_failure(int err) {
  std::lock_guard<std::mutex> lock(warn_mu_);
  if (warned_send_errno_.insert(err).second) {
    UNIDIR_WARN("RealRuntime: datagram send failed: "
                << std::strerror(err) << " (errno " << err
                << "); counting frames_send_failed, further occurrences "
                   "of this errno are silent");
  }
}

// ---- socket ----------------------------------------------------------------

void RealRuntime::open_socket() {
  const auto [host, port] = split_host_port(options_.listen);
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  UNIDIR_REQUIRE_MSG(fd_ >= 0, "RealRuntime: socket() failed: " +
                                   std::string(std::strerror(errno)));
  sockaddr_in sa = unpack_addr(resolve_ipv4(host, port));
  UNIDIR_REQUIRE_MSG(
      ::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) == 0,
      "RealRuntime: bind(" + options_.listen +
          ") failed: " + std::string(std::strerror(errno)));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  UNIDIR_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
               0);
  bound_port_ = ntohs(bound.sin_port);
  // Bounded receive timeout: the receiver thread wakes periodically to
  // check stop() — the portable way to unblock a UDP receive.
  timeval tv{};
  tv.tv_usec = static_cast<suseconds_t>(kMaxWaitSliceNs / 1000);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  // Saturation benchmarks overflow the default buffers long before the
  // loops fall behind; ask for more (best-effort — the kernel clamps to
  // net.core.{r,w}mem_max, and UDP stays lossy either way).
  const int bufsz = 4 * 1024 * 1024;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bufsz, sizeof(bufsz));
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bufsz, sizeof(bufsz));
}

void RealRuntime::receive_loop() {
  const std::size_t batch = options_.recv_batch;
  std::vector<std::vector<std::uint8_t>> bufs(
      batch, std::vector<std::uint8_t>(kRecvBufBytes));
  std::vector<std::size_t> lens(batch, 0);
#if defined(__linux__)
  std::vector<mmsghdr> msgs(batch);
  std::vector<iovec> iovs(batch);
  for (std::size_t k = 0; k < batch; ++k) {
    iovs[k].iov_base = bufs[k].data();
    iovs[k].iov_len = bufs[k].size();
    msgs[k] = mmsghdr{};
    msgs[k].msg_hdr.msg_iov = &iovs[k];
    msgs[k].msg_hdr.msg_iovlen = 1;
  }
#endif
  // Decoded frames grouped by destination shard, so each burst costs one
  // inbox lock per TARGET SHARD, not one per datagram.
  std::vector<std::vector<Incoming>> per_shard(shards_.size());
  while (!stopped()) {
    int got = 0;
#if defined(__linux__)
    if (options_.use_recvmmsg && batch > 1) {
      // Block (bounded by SO_RCVTIMEO) for the first datagram, then take
      // whatever else is already queued — one syscall per burst.
      got = ::recvmmsg(fd_, msgs.data(), static_cast<unsigned>(batch),
                       MSG_WAITFORONE, nullptr);
      if (got > 0)
        for (int k = 0; k < got; ++k) lens[static_cast<std::size_t>(k)] =
            msgs[static_cast<std::size_t>(k)].msg_len;
    } else
#endif
    {
      const ssize_t n =
          ::recvfrom(fd_, bufs[0].data(), bufs[0].size(), 0, nullptr, nullptr);
      if (n < 0) {
        got = -1;
      } else {
        lens[0] = static_cast<std::size_t>(n);
        got = 1;
      }
    }
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        recv_timeouts_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (stopped()) break;
      UNIDIR_WARN("RealRuntime: receive failed: "
                  << std::strerror(errno) << " (errno " << errno
                  << "); receiver thread exiting — this runtime is DEAF. "
                     "Poll stats().receiver_dead.");
      receiver_dead_.store(true, std::memory_order_relaxed);
      break;
    }
    if (got == 0) continue;
    recv_syscalls_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t decoded = 0;
    for (std::size_t k = 0; k < static_cast<std::size_t>(got); ++k) {
      auto frame = decode_frame(ByteSpan(bufs[k].data(), lens[k]));
      if (!frame) {
        frames_malformed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      ++decoded;
      per_shard[shard_of(frame->to)].push_back(
          Incoming{frame->from, frame->to, frame->channel,
                   Payload(std::move(frame->payload))});
    }
    frames_received_.fetch_add(decoded, std::memory_order_relaxed);
    for (std::size_t si = 0; si < per_shard.size(); ++si) {
      std::vector<Incoming>& group = per_shard[si];
      if (group.empty()) continue;
      Shard& s = *shards_[si];
      s.scheduled.fetch_add(group.size(), std::memory_order_relaxed);
      pending_.fetch_add(group.size());
      {
        std::lock_guard<std::mutex> lock(s.mu);
        for (Incoming& in : group) s.inbox.push_back(std::move(in));
      }
      s.cv.notify_one();
      group.clear();
    }
  }
}

// ---- event loops -----------------------------------------------------------

bool RealRuntime::step(Shard& s) {
  // Due timers first (they were armed strictly earlier than any message
  // that could race them on this shard), skipping cancel tombstones.
  const std::uint64_t now_ns = elapsed_ns();
  while (!s.timer_heap.empty()) {
    const TimerEntry top = s.timer_heap.front();
    const auto fn_it = s.timer_fns.find(top.id);
    if (fn_it == s.timer_fns.end()) {  // cancelled: drop silently
      std::pop_heap(s.timer_heap.begin(), s.timer_heap.end());
      s.timer_heap.pop_back();
      continue;
    }
    if (top.deadline_ns > now_ns) break;
    std::pop_heap(s.timer_heap.begin(), s.timer_heap.end());
    s.timer_heap.pop_back();
    std::function<void()> fn = std::move(fn_it->second);
    s.timer_fns.erase(fn_it);
    s.executed.fetch_add(1, std::memory_order_relaxed);
    fn();
    pending_.fetch_sub(1);  // released only after the handler returns
    return true;
  }
  if (s.local.empty()) {
    // Drain the whole inbox in one lock acquisition; the burst is then
    // consumed lock-free from the loop thread's own queue.
    std::lock_guard<std::mutex> lock(s.mu);
    s.local.swap(s.inbox);
  }
  if (s.local.empty()) return false;
  Incoming in = std::move(s.local.front());
  s.local.pop_front();
  s.executed.fetch_add(1, std::memory_order_relaxed);
  if (deliver_) deliver_(in.from, in.to, in.channel, in.payload);
  pending_.fetch_sub(1);
  return true;
}

void RealRuntime::wait_for_work(Shard& s) {
  std::uint64_t wait_ns = kMaxWaitSliceNs;
  if (!s.timer_heap.empty()) {
    const std::uint64_t now_ns = elapsed_ns();
    const std::uint64_t deadline = s.timer_heap.front().deadline_ns;
    wait_ns = deadline <= now_ns ? 0 : std::min(deadline - now_ns, wait_ns);
  }
  if (wait_ns == 0) return;
  std::unique_lock<std::mutex> lock(s.mu);
  s.cv.wait_for(lock, std::chrono::nanoseconds(wait_ns), [this, &s] {
    return !s.inbox.empty() || stopped() ||
           run_done_.load(std::memory_order_relaxed);
  });
}

void RealRuntime::wake_all_shards() {
  for (const std::unique_ptr<Shard>& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->cv.notify_all();
  }
}

std::pair<bool, std::size_t> RealRuntime::shard_loop(
    std::size_t index, const std::function<bool()>* pred,
    std::size_t max_events) {
  Shard& s = *shards_[index];
  ShardScope scope(this, index);
  const auto t0 = std::chrono::steady_clock::now();
  bool held = false;
  std::size_t n = 0;
  for (;;) {
    if (pred && (held = (*pred)())) break;
    if (stopped() || run_done_.load(std::memory_order_relaxed)) break;
    if (events_this_run_.load(std::memory_order_relaxed) >= max_events) break;
    if (step(s)) {
      ++n;
      events_this_run_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Out of immediately-due events: a batch boundary. Flush staged sends
    // before any wait so coalescing never adds idle latency.
    flush_sends(s);
    if (fd_ < 0 && pending_.load() == 0) {
      // Loopback-only and nothing pending anywhere — quiesced. Sharded
      // runs re-check from every shard; whoever sees it first leaves, and
      // pending_ can only rise again from an (unsupported) foreign thread.
      if (pred) held = (*pred)();
      break;
    }
    wait_for_work(s);
  }
  flush_sends(s);
  s.run_wall_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      std::memory_order_relaxed);
  return {held, n};
}

std::pair<bool, std::size_t> RealRuntime::run_impl(
    const std::function<bool()>* pred, std::size_t max_events) {
  UNIDIR_REQUIRE_MSG(!running_.exchange(true),
                     "RealRuntime: nested or concurrent run");
  run_done_.store(false, std::memory_order_relaxed);
  events_this_run_.store(0, std::memory_order_relaxed);
  std::vector<std::size_t> counts(shards_.size(), 0);
  std::vector<std::thread> threads;
  threads.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    threads.emplace_back([this, i, max_events, &counts] {
      counts[i] = shard_loop(i, nullptr, max_events).second;
    });
  }
  // Shard 0 runs on the calling thread and is the only one checking the
  // predicate (which may read caller-side state).
  const auto [held, n0] = shard_loop(0, pred, max_events);
  counts[0] = n0;
  run_done_.store(true, std::memory_order_relaxed);
  wake_all_shards();
  for (std::thread& t : threads) t.join();
  running_.store(false, std::memory_order_relaxed);
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  return {held, total};
}

std::size_t RealRuntime::run(std::size_t max_events) {
  return run_impl(nullptr, max_events).second;
}

bool RealRuntime::run_until(const std::function<bool()>& pred,
                            std::size_t max_events) {
  UNIDIR_REQUIRE(pred != nullptr);
  return run_impl(&pred, max_events).first;
}

// ---- stats -----------------------------------------------------------------

RuntimeStats RealRuntime::stats() const {
  RuntimeStats out;
  for (const std::unique_ptr<Shard>& s : shards_) {
    out.scheduled += s->scheduled.load(std::memory_order_relaxed);
    out.executed += s->executed.load(std::memory_order_relaxed);
    // MAX, not sum: shards run in parallel, so summing their loop times
    // would overstate wall time and understate events/sec.
    out.run_wall_ns = std::max(
        out.run_wall_ns, s->run_wall_ns.load(std::memory_order_relaxed));
  }
  out.frames_send_failed =
      frames_send_failed_.load(std::memory_order_relaxed);
  out.frames_oversized = frames_oversized_.load(std::memory_order_relaxed);
  out.receiver_dead = receiver_dead_.load(std::memory_order_relaxed);
  return out;
}

RuntimeStats RealRuntime::shard_stats(std::size_t shard) const {
  UNIDIR_REQUIRE(shard < shards_.size());
  const Shard& s = *shards_[shard];
  RuntimeStats out;
  out.scheduled = s.scheduled.load(std::memory_order_relaxed);
  out.executed = s.executed.load(std::memory_order_relaxed);
  out.run_wall_ns = s.run_wall_ns.load(std::memory_order_relaxed);
  // Transport-health fields are process-global (one socket, one receiver);
  // read them from stats(), not per shard, or they would double-count.
  return out;
}

UdpTransportStats RealRuntime::udp_stats() const {
  UdpTransportStats s;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_malformed = frames_malformed_.load(std::memory_order_relaxed);
  s.frames_no_peer = frames_no_peer_.load(std::memory_order_relaxed);
  s.loopback_messages = loopback_messages_.load(std::memory_order_relaxed);
  s.frames_corrupt_tx = frames_corrupt_tx_.load(std::memory_order_relaxed);
  s.frames_send_failed = frames_send_failed_.load(std::memory_order_relaxed);
  s.frames_oversized = frames_oversized_.load(std::memory_order_relaxed);
  s.recv_syscalls = recv_syscalls_.load(std::memory_order_relaxed);
  s.recv_timeouts = recv_timeouts_.load(std::memory_order_relaxed);
  s.send_syscalls = send_syscalls_.load(std::memory_order_relaxed);
  s.receiver_dead = receiver_dead_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace unidir::runtime
