#include "runtime/real_runtime.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.h"
#include "common/log.h"
#include "runtime/frame.h"

namespace unidir::runtime {

namespace {

/// Longest the loop or the receiver blocks before re-checking stop()/pred.
constexpr std::uint64_t kMaxWaitSliceNs = 50'000'000;  // 50ms

/// Packs an IPv4 (address, port) pair — both in network byte order as
/// sockaddr_in wants them — into one map value, so the header needs no
/// socket includes.
std::uint64_t pack_addr(std::uint32_t s_addr_be, std::uint16_t port_be) {
  return (static_cast<std::uint64_t>(s_addr_be) << 16) |
         static_cast<std::uint64_t>(port_be);
}

sockaddr_in unpack_addr(std::uint64_t packed) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = static_cast<std::uint32_t>(packed >> 16);
  sa.sin_port = static_cast<std::uint16_t>(packed & 0xFFFF);
  return sa;
}

std::uint64_t resolve_ipv4(const std::string& host, std::uint16_t port) {
  in_addr addr{};
  UNIDIR_REQUIRE_MSG(inet_pton(AF_INET, host.c_str(), &addr) == 1,
                     "RealRuntime: not an IPv4 address: " + host);
  return pack_addr(addr.s_addr, htons(port));
}

/// splitmix64 step — the corrupt_tx decision stream. Self-contained so the
/// runtime layer does not pull in sim/rng.h.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Splits "ip:port"; throws on anything else.
std::pair<std::string, std::uint16_t> split_host_port(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  UNIDIR_REQUIRE_MSG(colon != std::string::npos && colon + 1 < s.size(),
                     "RealRuntime: expected ip:port, got '" + s + "'");
  const unsigned long port = std::stoul(s.substr(colon + 1));
  UNIDIR_REQUIRE_MSG(port <= 65535, "RealRuntime: port out of range in " + s);
  return {s.substr(0, colon), static_cast<std::uint16_t>(port)};
}

}  // namespace

RealRuntime::RealRuntime(RealRuntimeOptions options)
    : options_(std::move(options)),
      clock_(*this),
      transport_(*this),
      epoch_(std::chrono::steady_clock::now()) {
  UNIDIR_REQUIRE_MSG(options_.tick_ns > 0, "tick_ns must be positive");
  corrupt_rng_ = options_.corrupt_seed;
  for (const RealRuntimeOptions::Peer& p : options_.peers)
    add_peer(p.id, p.host, p.port);
  if (!options_.listen.empty()) {
    open_socket();
    receiver_ = std::thread([this] { receive_loop(); });
  }
}

RealRuntime::~RealRuntime() {
  stop();
  if (receiver_.joinable()) receiver_.join();
  if (fd_ >= 0) ::close(fd_);
}

void RealRuntime::add_peer(ProcessId id, const std::string& host,
                           std::uint16_t port) {
  peers_[id] = resolve_ipv4(host, port);
}

std::uint64_t RealRuntime::elapsed_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Time RealRuntime::now_ticks() const { return elapsed_ns() / options_.tick_ns; }

// ---- timers ----------------------------------------------------------------

TimerId RealRuntime::arm_timer(Time delay, std::function<void()> fn) {
  UNIDIR_REQUIRE(fn != nullptr);
  const TimerId id = ++next_timer_;
  timer_fns_.emplace(id, std::move(fn));
  timer_heap_.push_back(
      TimerEntry{elapsed_ns() + delay * options_.tick_ns, next_timer_seq_++,
                 id});
  std::push_heap(timer_heap_.begin(), timer_heap_.end());
  ++stats_.scheduled;
  return id;
}

void RealRuntime::cancel_timer(TimerId id) {
  // The heap entry stays behind as a tombstone; step() skips entries whose
  // function is gone.
  timer_fns_.erase(id);
}

// ---- transport -------------------------------------------------------------

void RealRuntime::transport_send(ProcessId from, ProcessId to, Channel channel,
                                 Payload payload) {
  const auto peer = peers_.find(to);
  if (peer != peers_.end()) {
    Bytes frame = encode_frame(
        from, to, channel, ByteSpan(payload.data(), payload.size()));
    if (options_.corrupt_tx_per_million != 0 && !frame.empty() &&
        splitmix64(corrupt_rng_) % 1'000'000 <
            options_.corrupt_tx_per_million) {
      // One flipped byte anywhere in the encoded frame: magic, varint
      // header or payload — the peer's decode_frame must reject it (or,
      // for a payload hit that survives framing, the wire::Router must).
      const std::uint64_t roll = splitmix64(corrupt_rng_);
      frame[roll % frame.size()] ^=
          std::uint8_t(1 + (roll >> 32) % 255);
      frames_corrupt_tx_.fetch_add(1, std::memory_order_relaxed);
    }
    const sockaddr_in sa = unpack_addr(peer->second);
    UNIDIR_CHECK_MSG(fd_ >= 0, "RealRuntime: peer send without a socket");
    // Best-effort, as UDP is: a full socket buffer or transient error is a
    // dropped datagram; protocol retransmission owns recovery.
    (void)::sendto(fd_, frame.data(), frame.size(), 0,
                   reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (is_local_ && is_local_(to)) {
    loopback_messages_.fetch_add(1, std::memory_order_relaxed);
    ++stats_.scheduled;
    enqueue_local(Incoming{from, to, channel, std::move(payload)});
    return;
  }
  frames_no_peer_.fetch_add(1, std::memory_order_relaxed);
  if (warned_no_peer_.insert(to).second) {
    UNIDIR_WARN("RealRuntime: dropping send to unaddressable process "
                << to << " (no peer entry, not local)");
  }
}

void RealRuntime::enqueue_local(Incoming in) {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_.push_back(std::move(in));
  }
  inbox_cv_.notify_one();
}

// ---- socket ----------------------------------------------------------------

void RealRuntime::open_socket() {
  const auto [host, port] = split_host_port(options_.listen);
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  UNIDIR_REQUIRE_MSG(fd_ >= 0, "RealRuntime: socket() failed: " +
                                   std::string(std::strerror(errno)));
  sockaddr_in sa = unpack_addr(resolve_ipv4(host, port));
  UNIDIR_REQUIRE_MSG(
      ::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) == 0,
      "RealRuntime: bind(" + options_.listen +
          ") failed: " + std::string(std::strerror(errno)));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  UNIDIR_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
               0);
  bound_port_ = ntohs(bound.sin_port);
  // Bounded receive timeout: the receiver thread wakes periodically to
  // check stop() — the portable way to unblock a UDP recvfrom.
  timeval tv{};
  tv.tv_usec = static_cast<suseconds_t>(kMaxWaitSliceNs / 1000);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void RealRuntime::receive_loop() {
  std::vector<std::uint8_t> buf(65536);
  while (!stopped()) {
    const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0, nullptr,
                                 nullptr);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      if (stopped()) break;
      UNIDIR_WARN("RealRuntime: recvfrom failed: " << std::strerror(errno));
      break;
    }
    auto frame =
        decode_frame(ByteSpan(buf.data(), static_cast<std::size_t>(n)));
    if (!frame) {
      frames_malformed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    enqueue_local(Incoming{frame->from, frame->to, frame->channel,
                           Payload(std::move(frame->payload))});
  }
}

// ---- event loop ------------------------------------------------------------

bool RealRuntime::step() {
  // Due timers first (they were armed strictly earlier than any message
  // that could race them on a single loop), skipping cancel tombstones.
  const std::uint64_t now_ns = elapsed_ns();
  while (!timer_heap_.empty()) {
    const TimerEntry top = timer_heap_.front();
    const auto fn_it = timer_fns_.find(top.id);
    if (fn_it == timer_fns_.end()) {  // cancelled: drop silently
      std::pop_heap(timer_heap_.begin(), timer_heap_.end());
      timer_heap_.pop_back();
      continue;
    }
    if (top.deadline_ns > now_ns) break;
    std::pop_heap(timer_heap_.begin(), timer_heap_.end());
    timer_heap_.pop_back();
    std::function<void()> fn = std::move(fn_it->second);
    timer_fns_.erase(fn_it);
    ++stats_.executed;
    fn();
    return true;
  }
  Incoming in;
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    if (inbox_.empty()) return false;
    in = std::move(inbox_.front());
    inbox_.pop_front();
  }
  ++stats_.executed;
  if (deliver_) deliver_(in.from, in.to, in.channel, in.payload);
  return true;
}

bool RealRuntime::idle() {
  while (!timer_heap_.empty() &&
         timer_fns_.find(timer_heap_.front().id) == timer_fns_.end()) {
    std::pop_heap(timer_heap_.begin(), timer_heap_.end());
    timer_heap_.pop_back();
  }
  if (!timer_heap_.empty()) return false;
  std::lock_guard<std::mutex> lock(inbox_mu_);
  return inbox_.empty();
}

void RealRuntime::wait_for_work() {
  std::uint64_t wait_ns = kMaxWaitSliceNs;
  if (!timer_heap_.empty()) {
    const std::uint64_t now_ns = elapsed_ns();
    const std::uint64_t deadline = timer_heap_.front().deadline_ns;
    wait_ns = deadline <= now_ns ? 0 : std::min(deadline - now_ns, wait_ns);
  }
  if (wait_ns == 0) return;
  std::unique_lock<std::mutex> lock(inbox_mu_);
  inbox_cv_.wait_for(lock, std::chrono::nanoseconds(wait_ns),
                     [this] { return !inbox_.empty() || stopped(); });
}

std::size_t RealRuntime::run(std::size_t max_events) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t n = 0;
  while (!stopped() && n < max_events) {
    if (step()) {
      ++n;
      continue;
    }
    if (fd_ < 0 && idle()) break;  // loopback-only worlds can drain
    wait_for_work();
  }
  stats_.run_wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return n;
}

bool RealRuntime::run_until(const std::function<bool()>& pred,
                            std::size_t max_events) {
  const auto t0 = std::chrono::steady_clock::now();
  bool held = pred();
  std::size_t n = 0;
  while (!held && !stopped() && n < max_events) {
    if (step()) {
      ++n;
      held = pred();
      continue;
    }
    if (fd_ < 0 && idle()) {
      held = pred();
      break;
    }
    wait_for_work();
    // Predicates may watch state flipped by another thread (a test's done
    // flag), not just loop events — re-check after every wakeup.
    held = pred();
  }
  stats_.run_wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return held;
}

RuntimeStats RealRuntime::stats() const {
  RuntimeStats s = stats_;
  // Frames arrive on the receiver thread; fold them into `scheduled` here
  // so the figure covers socket traffic too.
  s.scheduled += frames_received_.load(std::memory_order_relaxed);
  return s;
}

UdpTransportStats RealRuntime::udp_stats() const {
  UdpTransportStats s;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_malformed = frames_malformed_.load(std::memory_order_relaxed);
  s.frames_no_peer = frames_no_peer_.load(std::memory_order_relaxed);
  s.loopback_messages = loopback_messages_.load(std::memory_order_relaxed);
  s.frames_corrupt_tx = frames_corrupt_tx_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace unidir::runtime
