// Datagram framing for the real-time UDP transport.
//
// One frame per datagram: a magic marker, the global sender/receiver
// ProcessIds, the channel, and the length-prefixed protocol payload —
// encoded with the same serde primitives as every wire message, and
// decoded through the same hardened contract (DecodeError-only failures,
// exact consume). A frame that fails any check is dropped and counted by
// the transport; the payload inside a valid frame then flows into
// Process::dispatch and the typed wire::Router boundary exactly as a
// simulator delivery would, so protocol handlers only ever see bytes that
// cleared BOTH hardening layers.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "common/types.h"

namespace unidir::runtime {

/// Frame marker ("UF1" + version). A stray datagram on our port is
/// overwhelmingly likely to miss it and be dropped before any field decode.
inline constexpr std::uint64_t kFrameMagic = 0x1F554631ULL;

struct Frame {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Channel channel = 0;
  Bytes payload;
};

/// Serializes one frame. The result is a complete datagram body.
Bytes encode_frame(ProcessId from, ProcessId to, Channel channel,
                   ByteSpan payload);

/// Decodes one datagram. Returns nullopt — never throws — on a missing
/// magic, truncated field, out-of-range id, or trailing bytes.
std::optional<Frame> decode_frame(ByteSpan datagram);

}  // namespace unidir::runtime
