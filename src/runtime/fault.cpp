#include "runtime/fault.h"

#include <charconv>
#include <sstream>
#include <utility>

namespace unidir::runtime {

namespace {

constexpr std::uint64_t kMillion = 1'000'000;

/// Strict integer parse of a full token (no sign, no trailing junk).
std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t at = 0;
  while (at <= s.size()) {
    const std::size_t next = s.find(sep, at);
    if (next == std::string_view::npos) {
      out.push_back(s.substr(at));
      break;
    }
    out.push_back(s.substr(at, next - at));
    at = next + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

void PartitionEpoch::encode(serde::Writer& w) const {
  w.uvarint(start);
  w.uvarint(end);
  w.uvarint(groups.size());
  for (const auto& group : groups) {
    w.uvarint(group.size());
    for (ProcessId p : group) w.uvarint(p);
  }
}

PartitionEpoch PartitionEpoch::decode(serde::Reader& r) {
  PartitionEpoch e;
  e.start = r.uvarint();
  e.end = r.uvarint();
  const std::uint64_t n_groups = r.uvarint();
  e.groups.reserve(n_groups);
  for (std::uint64_t g = 0; g < n_groups; ++g) {
    std::vector<ProcessId> group(r.uvarint());
    for (ProcessId& p : group) p = ProcessId(r.uvarint());
    e.groups.push_back(std::move(group));
  }
  return e;
}

void FaultPlan::encode(serde::Writer& w) const {
  w.uvarint(seed);
  w.uvarint(drop_per_million);
  w.uvarint(duplicate_per_million);
  w.uvarint(delay_per_million);
  w.uvarint(corrupt_per_million);
  w.uvarint(delay_min_ticks);
  w.uvarint(delay_max_ticks);
  w.uvarint(partitions.size());
  for (const auto& e : partitions) e.encode(w);
}

FaultPlan FaultPlan::decode(serde::Reader& r) {
  FaultPlan plan;
  plan.seed = r.uvarint();
  plan.drop_per_million = std::uint32_t(r.uvarint());
  plan.duplicate_per_million = std::uint32_t(r.uvarint());
  plan.delay_per_million = std::uint32_t(r.uvarint());
  plan.corrupt_per_million = std::uint32_t(r.uvarint());
  plan.delay_min_ticks = r.uvarint();
  plan.delay_max_ticks = r.uvarint();
  const std::uint64_t n = r.uvarint();
  plan.partitions.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    plan.partitions.push_back(PartitionEpoch::decode(r));
  return plan;
}

std::string FaultPlan::to_text() const {
  std::ostringstream os;
  os << "seed=" << seed << "\n";
  os << "drop=" << drop_per_million << "\n";
  os << "duplicate=" << duplicate_per_million << "\n";
  os << "delay=" << delay_per_million << "\n";
  os << "delay_min=" << delay_min_ticks << "\n";
  os << "delay_max=" << delay_max_ticks << "\n";
  os << "corrupt=" << corrupt_per_million << "\n";
  for (const auto& e : partitions) {
    os << "partition=" << e.start << ":" << e.end << ":";
    for (std::size_t g = 0; g < e.groups.size(); ++g) {
      if (g != 0) os << "|";
      for (std::size_t i = 0; i < e.groups[g].size(); ++i) {
        if (i != 0) os << ",";
        os << e.groups[g][i];
      }
    }
    os << "\n";
  }
  return os.str();
}

std::optional<FaultPlan> FaultPlan::parse_text(std::string_view text) {
  FaultPlan plan;
  for (std::string_view line : split(text, '\n')) {
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));

    if (key == "partition") {
      const auto fields = split(value, ':');
      if (fields.size() != 3) return std::nullopt;
      PartitionEpoch e;
      const auto start = parse_u64(trim(fields[0]));
      const auto end = parse_u64(trim(fields[1]));
      if (!start || !end || *end <= *start) return std::nullopt;
      e.start = *start;
      e.end = *end;
      for (std::string_view group_text : split(fields[2], '|')) {
        std::vector<ProcessId> group;
        for (std::string_view id_text : split(group_text, ',')) {
          const auto id = parse_u64(trim(id_text));
          if (!id) return std::nullopt;
          group.push_back(ProcessId(*id));
        }
        e.groups.push_back(std::move(group));
      }
      plan.partitions.push_back(std::move(e));
      continue;
    }

    const auto v = parse_u64(value);
    if (!v) return std::nullopt;
    if (key == "seed") plan.seed = *v;
    else if (key == "drop") plan.drop_per_million = std::uint32_t(*v);
    else if (key == "duplicate") plan.duplicate_per_million = std::uint32_t(*v);
    else if (key == "delay") plan.delay_per_million = std::uint32_t(*v);
    else if (key == "delay_min") plan.delay_min_ticks = *v;
    else if (key == "delay_max") plan.delay_max_ticks = *v;
    else if (key == "corrupt") plan.corrupt_per_million = std::uint32_t(*v);
    // Unknown keys are ignored so plans can grow fields without breaking
    // older binaries reading them.
  }
  if (plan.delay_max_ticks < plan.delay_min_ticks) return std::nullopt;
  return plan;
}

FaultyTransport::FaultyTransport(Transport& inner, Clock& clock,
                                 FaultPlan plan)
    : inner_(inner), clock_(clock), plan_(std::move(plan)),
      rng_(plan_.seed) {}

bool FaultyTransport::partitioned(ProcessId a, ProcessId b, Time at) const {
  for (const auto& e : plan_.partitions) {
    if (at < e.start || at >= e.end) continue;
    int group_a = -1, group_b = -1;
    for (std::size_t g = 0; g < e.groups.size(); ++g) {
      for (ProcessId p : e.groups[g]) {
        if (p == a) group_a = int(g);
        if (p == b) group_b = int(g);
      }
    }
    // Unlisted processes are unrestricted; listed ones only reach their
    // own group and the unlisted.
    if (group_a != -1 && group_b != -1 && group_a != group_b) return true;
  }
  return false;
}

void FaultyTransport::send(ProcessId from, ProcessId to, Channel channel,
                           Payload payload) {
  if (partitioned(from, to, clock_.now())) {
    ++stats_.partitioned;
    return;
  }
  if (plan_.drop_per_million != 0 &&
      rng_.chance(plan_.drop_per_million, kMillion)) {
    ++stats_.dropped;
    return;
  }
  if (plan_.corrupt_per_million != 0 && !payload.empty() &&
      rng_.chance(plan_.corrupt_per_million, kMillion)) {
    Bytes& bytes = payload.mutate();
    bytes[rng_.below(bytes.size())] ^=
        std::uint8_t(1 + rng_.below(255));  // never a no-op flip
    ++stats_.corrupted;
  }
  if (plan_.duplicate_per_million != 0 &&
      rng_.chance(plan_.duplicate_per_million, kMillion)) {
    ++stats_.duplicated;
    inner_.send(from, to, channel, payload);
  }
  if (plan_.delay_per_million != 0 &&
      rng_.chance(plan_.delay_per_million, kMillion)) {
    const Time spread = plan_.delay_max_ticks - plan_.delay_min_ticks;
    const Time delay =
        plan_.delay_min_ticks + (spread == 0 ? 0 : rng_.below(spread + 1));
    ++stats_.delayed;
    // The deferred send re-enters the INNER transport directly: the fault
    // decision was already made, and re-rolling on fire would skew rates.
    clock_.arm(delay, [this, from, to, channel,
                       payload = std::move(payload)]() {
      inner_.send(from, to, channel, payload);
    });
    return;
  }
  ++stats_.forwarded;
  inner_.send(from, to, channel, std::move(payload));
}

}  // namespace unidir::runtime
