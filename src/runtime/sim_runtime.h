// SimRuntime: the deterministic discrete-event simulator behind the
// runtime::Runtime interface.
//
// This is a thin adapter, by design: the Simulator's slab-heap/time-wheel
// event queue and the adversary-scheduled Network are untouched, so every
// fingerprint, transcript and record/replay trace produced through this
// backend is byte-identical to what the pre-runtime World produced. The
// only work added here is (a) wrapping timer closures for the cancel()
// contract and (b) wall-time accounting around the run loops — which moved
// HERE from SimulatorStats precisely so the simulator's own counters stay
// deterministic (see runtime.h and DESIGN.md §13).
//
// Sim-only features (the adversary, held-message control, the decision
// observer, NetworkStats) are reached through simulator()/network(); code
// that uses them is by definition sim-only and may not run on RealRuntime.
#pragma once

#include <memory>
#include <unordered_set>
#include <utility>

#include "runtime/runtime.h"
#include "sim/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace unidir::runtime {

class SimRuntime final : public Runtime {
 public:
  /// `seed` feeds the network's scheduling Rng exactly as the pre-runtime
  /// World constructor did (seed ^ A5A5…), so worlds built over an
  /// explicit SimRuntime reproduce legacy executions bit-for-bit.
  SimRuntime(std::uint64_t seed, std::unique_ptr<sim::Adversary> adversary);

  sim::Simulator& simulator() { return simulator_; }
  const sim::Simulator& simulator() const { return simulator_; }
  sim::Network& network() { return network_; }
  const sim::Network& network() const { return network_; }

  Clock& clock() override { return clock_; }
  Transport& transport() override { return transport_; }

  std::size_t run(std::size_t max_events) override;
  bool run_until(const std::function<bool()>& pred,
                 std::size_t max_events) override;

  RuntimeStats stats() const override;
  bool real_time() const override { return false; }

 private:
  class SimClock final : public Clock {
   public:
    explicit SimClock(sim::Simulator& simulator) : simulator_(simulator) {}

    Time now() const override { return simulator_.now(); }
    TimerId arm(Time delay, std::function<void()> fn) override;
    void cancel(TimerId id) override;

   private:
    /// Removes `id` from the cancelled set if present. The empty-set fast
    /// path keeps the common case (nobody ever cancels) at one branch.
    bool consume_cancel(TimerId id);

    sim::Simulator& simulator_;
    TimerId next_timer_ = kNoTimer;
    std::unordered_set<TimerId> cancelled_;
  };

  class SimTransport final : public Transport {
   public:
    explicit SimTransport(sim::Network& network) : network_(network) {}

    void send(ProcessId from, ProcessId to, Channel channel,
              Payload payload) override {
      network_.send(from, to, channel, std::move(payload));
    }

    void set_deliver(DeliverFn fn) override;

   private:
    sim::Network& network_;
  };

  sim::Simulator simulator_;
  sim::Network network_;
  SimClock clock_;
  SimTransport transport_;
  std::uint64_t run_wall_ns_ = 0;
};

}  // namespace unidir::runtime
