#include "agreement/smr.h"

#include <sstream>

namespace unidir::agreement {

void Command::encode(serde::Writer& w) const {
  w.uvarint(client);
  w.uvarint(request_id);
  w.bytes(op);
}

Command Command::decode(serde::Reader& r) {
  Command c;
  c.client = serde::read<ProcessId>(r);
  c.request_id = r.uvarint();
  c.op = r.bytes();
  return c;
}

void Reply::encode(serde::Writer& w) const {
  w.uvarint(request_id);
  w.bytes(result);
}

Reply Reply::decode(serde::Reader& r) {
  Reply rep;
  rep.request_id = r.uvarint();
  rep.result = r.bytes();
  return rep;
}

std::optional<std::string> check_execution_consistency(
    const std::vector<std::pair<ProcessId,
                                const std::vector<ExecutionRecord>*>>& logs) {
  for (std::size_t i = 0; i < logs.size(); ++i) {
    for (std::size_t j = i + 1; j < logs.size(); ++j) {
      const auto& [pi, li] = logs[i];
      const auto& [pj, lj] = logs[j];
      const std::size_t common = std::min(li->size(), lj->size());
      for (std::size_t k = 0; k < common; ++k) {
        if (!((*li)[k] == (*lj)[k])) {
          std::ostringstream os;
          os << "replicas " << pi << " and " << pj
             << " diverge at execution index " << k << ": ("
             << (*li)[k].command.client << "," << (*li)[k].command.request_id
             << ") vs (" << (*lj)[k].command.client << ","
             << (*lj)[k].command.request_id << ")";
          return os.str();
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Bytes> ExecutionDeduper::lookup(const Command& cmd) const {
  auto it = clients_.find(cmd.client);
  if (it == clients_.end()) return std::nullopt;
  auto rt = it->second.find(cmd.request_id);
  if (rt == it->second.end()) return std::nullopt;
  return rt->second;
}

void ExecutionDeduper::record(const Command& cmd, const Bytes& result) {
  clients_[cmd.client].emplace(cmd.request_id, result);
}

}  // namespace unidir::agreement
