#include "agreement/smr.h"

#include <sstream>

#include "common/check.h"

namespace unidir::agreement {

void Command::encode(serde::Writer& w) const {
  w.uvarint(client);
  w.uvarint(request_id);
  w.bytes(op);
}

Command Command::decode(serde::Reader& r) {
  Command c;
  c.client = serde::read<ProcessId>(r);
  c.request_id = r.uvarint();
  c.op = r.bytes();
  return c;
}

void Reply::encode(serde::Writer& w) const {
  w.uvarint(request_id);
  w.bytes(result);
}

Reply Reply::decode(serde::Reader& r) {
  Reply rep;
  rep.request_id = r.uvarint();
  rep.result = r.bytes();
  return rep;
}

void ExecutionRecord::encode(serde::Writer& w) const {
  command.encode(w);
  w.bytes(result);
}

ExecutionRecord ExecutionRecord::decode(serde::Reader& r) {
  ExecutionRecord rec;
  rec.command = Command::decode(r);
  rec.result = r.bytes();
  return rec;
}

namespace {

crypto::Digest chain_step(const crypto::Digest& prev,
                          const ExecutionRecord& rec) {
  serde::Writer w;
  w.bytes(crypto::digest_bytes(prev));
  rec.encode(w);
  return crypto::Sha256::hash(w.take());
}

}  // namespace

void ExecutionLog::append(ExecutionRecord rec) {
  const crypto::Digest& prev = chain_.empty() ? base_digest_ : chain_.back();
  chain_.push_back(chain_step(prev, rec));
  records_.push_back(std::move(rec));
}

const ExecutionRecord& ExecutionLog::at(std::uint64_t index) const {
  UNIDIR_REQUIRE_MSG(index >= base_ && index < size(),
                     "ExecutionLog::at outside retained range");
  return records_[index - base_];
}

crypto::Digest ExecutionLog::digest_through(std::uint64_t count) const {
  UNIDIR_REQUIRE_MSG(count >= base_ && count <= size(),
                     "ExecutionLog::digest_through outside retained range");
  if (count == base_) return base_digest_;
  return chain_[count - base_ - 1];
}

void ExecutionLog::prune_to(std::uint64_t count) {
  if (count <= base_) return;
  if (count > size()) count = size();
  const std::uint64_t drop = count - base_;
  base_digest_ = chain_[drop - 1];
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(drop));
  chain_.erase(chain_.begin(),
               chain_.begin() + static_cast<std::ptrdiff_t>(drop));
  base_ = count;
}

void ExecutionLog::encode(serde::Writer& w) const {
  w.uvarint(base_);
  w.bytes(crypto::digest_bytes(base_digest_));
  serde::write(w, records_);
}

ExecutionLog ExecutionLog::decode(serde::Reader& r) {
  ExecutionLog log;
  log.base_ = r.uvarint();
  const Bytes digest = r.bytes();
  if (digest.size() != crypto::kSha256DigestSize)
    throw serde::DecodeError("ExecutionLog: bad base digest size");
  log.base_digest_ = crypto::digest_from_bytes(digest);
  log.records_ = serde::read<std::vector<ExecutionRecord>>(r);
  // The per-record chain is derived state: recompute instead of trusting
  // the wire.
  log.chain_.reserve(log.records_.size());
  crypto::Digest prev = log.base_digest_;
  for (const ExecutionRecord& rec : log.records_) {
    prev = chain_step(prev, rec);
    log.chain_.push_back(prev);
  }
  return log;
}

std::optional<std::string> check_execution_consistency(
    const std::vector<std::pair<ProcessId, const ExecutionLog*>>& logs) {
  for (std::size_t i = 0; i < logs.size(); ++i) {
    for (std::size_t j = i + 1; j < logs.size(); ++j) {
      const auto& [pi, li] = logs[i];
      const auto& [pj, lj] = logs[j];
      const std::uint64_t lo = std::max(li->base(), lj->base());
      const std::uint64_t hi = std::min(li->size(), lj->size());
      if (lo > hi) continue;  // disjoint ranges: nothing comparable
      if (li->digest_through(lo) != lj->digest_through(lo)) {
        std::ostringstream os;
        os << "replicas " << pi << " and " << pj
           << " diverge in their pruned prefix (chain digests through "
           << lo << " differ)";
        return os.str();
      }
      for (std::uint64_t k = lo; k < hi; ++k) {
        if (!(li->at(k) == lj->at(k))) {
          std::ostringstream os;
          os << "replicas " << pi << " and " << pj
             << " diverge at execution index " << k << ": ("
             << li->at(k).command.client << "," << li->at(k).command.request_id
             << ") vs (" << lj->at(k).command.client << ","
             << lj->at(k).command.request_id << ")";
          return os.str();
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Bytes> ExecutionDeduper::lookup(const Command& cmd) const {
  auto it = clients_.find(cmd.client);
  if (it == clients_.end()) return std::nullopt;
  auto rt = it->second.find(cmd.request_id);
  if (rt == it->second.end()) return std::nullopt;
  return rt->second;
}

void ExecutionDeduper::record(const Command& cmd, const Bytes& result) {
  clients_[cmd.client].emplace(cmd.request_id, result);
}

std::vector<std::pair<ProcessId, std::uint64_t>> ExecutionDeduper::keys()
    const {
  std::vector<std::pair<ProcessId, std::uint64_t>> out;
  for (const auto& [client, replies] : clients_)
    for (const auto& [rid, result] : replies) out.emplace_back(client, rid);
  return out;
}

void ExecutionDeduper::encode(serde::Writer& w) const {
  serde::write(w, clients_);
}

ExecutionDeduper ExecutionDeduper::decode(serde::Reader& r) {
  ExecutionDeduper d;
  d.clients_ =
      serde::read<std::map<ProcessId, std::map<std::uint64_t, Bytes>>>(r);
  return d;
}

void StateBundle::encode(serde::Writer& w) const {
  log.encode(w);
  w.bytes(machine_snapshot);
  dedup.encode(w);
}

StateBundle StateBundle::decode(serde::Reader& r) {
  StateBundle b;
  b.log = ExecutionLog::decode(r);
  b.machine_snapshot = r.bytes();
  b.dedup = ExecutionDeduper::decode(r);
  return b;
}

}  // namespace unidir::agreement
