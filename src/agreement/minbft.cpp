#include "agreement/minbft.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"

namespace unidir::agreement {

namespace {

Bytes prepare_binding(ViewNum view, const Command& cmd) {
  serde::Writer w;
  w.str("minbft-prep");
  w.uvarint(view);
  cmd.encode(w);
  return w.take();
}

Bytes commit_binding(ViewNum view, SeqNum primary_counter,
                     const Command& cmd) {
  serde::Writer w;
  w.str("minbft-comm");
  w.uvarint(view);
  w.uvarint(primary_counter);
  cmd.encode(w);
  return w.take();
}

/// Digest of the whole batch: what one UI attests to in batched mode.
/// Hashing the serialized command vector (length included) makes batch
/// boundaries part of the attestation — a batch cannot be split or merged
/// without invalidating the UI.
Bytes batch_digest(const std::vector<Command>& cmds) {
  serde::Writer w;
  serde::write(w, cmds);
  return crypto::digest_bytes(crypto::Sha256::hash(w.take()));
}

Bytes batch_prepare_binding(ViewNum view, const std::vector<Command>& cmds) {
  serde::Writer w;
  w.str("minbft-bprep");
  w.uvarint(view);
  w.bytes(batch_digest(cmds));
  return w.take();
}

Bytes batch_commit_binding(ViewNum view, SeqNum primary_counter,
                           const std::vector<Command>& cmds) {
  serde::Writer w;
  w.str("minbft-bcomm");
  w.uvarint(view);
  w.uvarint(primary_counter);
  w.bytes(batch_digest(cmds));
  return w.take();
}

Bytes checkpoint_binding(std::uint64_t executed, const Bytes& digest) {
  serde::Writer w;
  w.str("minbft-cp");
  w.uvarint(executed);
  w.bytes(digest);
  return w.take();
}

using VcEntry = MinBftVcEntry;

Bytes view_change_binding(ViewNum target, std::uint64_t stable,
                          const std::vector<VcEntry>& entries,
                          const std::vector<Command>& pending) {
  serde::Writer w;
  w.str("minbft-vc");
  w.uvarint(target);
  w.uvarint(stable);
  serde::write(w, entries);
  serde::write(w, pending);
  return w.take();
}

Bytes recover_binding() {
  serde::Writer w;
  w.str("minbft-recover");
  return w.take();
}

constexpr std::string_view kDurableKey = "minbft/state";
constexpr unsigned kMaxStateAttempts = 4;

/// Everything a replica writes to its DurableStore: the recovery image.
struct DurableImage {
  ViewNum view = 0;
  SeqNum view_base = 0;
  SeqNum next_exec = 0;
  std::map<ProcessId, SeqNum> ui_high;
  std::uint64_t stable = 0;
  std::uint64_t exec_floor = 0;
  ExecutionLog log;
  Bytes machine_snapshot;
  ExecutionDeduper dedup;

  void encode(serde::Writer& w) const {
    w.uvarint(view);
    w.uvarint(view_base);
    w.uvarint(next_exec);
    serde::write(w, ui_high);
    w.uvarint(stable);
    w.uvarint(exec_floor);
    log.encode(w);
    w.bytes(machine_snapshot);
    dedup.encode(w);
  }
  static DurableImage decode(serde::Reader& r) {
    DurableImage img;
    img.view = r.uvarint();
    img.view_base = r.uvarint();
    img.next_exec = r.uvarint();
    img.ui_high = serde::read<std::map<ProcessId, SeqNum>>(r);
    img.stable = r.uvarint();
    img.exec_floor = r.uvarint();
    img.log = ExecutionLog::decode(r);
    img.machine_snapshot = r.bytes();
    img.dedup = ExecutionDeduper::decode(r);
    return img;
  }
};

}  // namespace

namespace minbft_wire {

struct Prepare {
  static constexpr wire::MsgDesc kDesc{1, "minbft-prepare"};

  ViewNum view = 0;
  Command cmd;
  trusted::UniqueIdentifier ui;

  void encode(serde::Writer& w) const {
    w.uvarint(view);
    cmd.encode(w);
    ui.encode(w);
  }
  static Prepare decode(serde::Reader& r) {
    Prepare p;
    p.view = r.uvarint();
    p.cmd = Command::decode(r);
    p.ui = trusted::UniqueIdentifier::decode(r);
    return p;
  }
};

struct Commit {
  static constexpr wire::MsgDesc kDesc{2, "minbft-commit"};

  ViewNum view = 0;
  Command cmd;
  trusted::UniqueIdentifier primary_ui;
  trusted::UniqueIdentifier replica_ui;

  void encode(serde::Writer& w) const {
    w.uvarint(view);
    cmd.encode(w);
    primary_ui.encode(w);
    replica_ui.encode(w);
  }
  static Commit decode(serde::Reader& r) {
    Commit c;
    c.view = r.uvarint();
    c.cmd = Command::decode(r);
    c.primary_ui = trusted::UniqueIdentifier::decode(r);
    c.replica_ui = trusted::UniqueIdentifier::decode(r);
    return c;
  }
};

struct Checkpoint {
  static constexpr wire::MsgDesc kDesc{3, "minbft-checkpoint"};

  std::uint64_t executed = 0;
  Bytes digest;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(executed);
    w.bytes(digest);
    sig.encode(w);
  }
  static Checkpoint decode(serde::Reader& r) {
    Checkpoint c;
    c.executed = r.uvarint();
    c.digest = r.bytes();
    c.sig = crypto::Signature::decode(r);
    return c;
  }
};

struct ViewChange {
  static constexpr wire::MsgDesc kDesc{4, "minbft-view-change"};

  ViewNum target = 0;
  std::uint64_t stable = 0;        // reporter's stable checkpoint
  std::vector<VcEntry> entries;    // accepted slots, with order info
  std::vector<Command> pending;    // buffered requests never slotted
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(target);
    w.uvarint(stable);
    serde::write(w, entries);
    serde::write(w, pending);
    sig.encode(w);
  }
  static ViewChange decode(serde::Reader& r) {
    ViewChange v;
    v.target = r.uvarint();
    v.stable = r.uvarint();
    v.entries = serde::read<std::vector<VcEntry>>(r);
    v.pending = serde::read<std::vector<Command>>(r);
    v.sig = crypto::Signature::decode(r);
    return v;
  }
};

struct NewView {
  static constexpr wire::MsgDesc kDesc{5, "minbft-new-view"};

  ViewNum target = 0;
  std::uint64_t executed = 0;  // the new primary's execution count
  crypto::Signature sig;       // over ("minbft-nv", target, executed)

  static Bytes binding(ViewNum target, std::uint64_t executed) {
    serde::Writer w;
    w.str("minbft-nv");
    w.uvarint(target);
    w.uvarint(executed);
    return w.take();
  }

  void encode(serde::Writer& w) const {
    w.uvarint(target);
    w.uvarint(executed);
    sig.encode(w);
  }
  static NewView decode(serde::Reader& r) {
    NewView v;
    v.target = r.uvarint();
    v.executed = r.uvarint();
    v.sig = crypto::Signature::decode(r);
    return v;
  }
};

struct StateRequest {
  static constexpr wire::MsgDesc kDesc{6, "minbft-state-request"};

  std::uint64_t have = 0;  // requester's execution count

  void encode(serde::Writer& w) const { w.uvarint(have); }
  static StateRequest decode(serde::Reader& r) {
    StateRequest req;
    req.have = r.uvarint();
    return req;
  }
};

struct StateReply {
  static constexpr wire::MsgDesc kDesc{7, "minbft-state-reply"};

  ViewNum view = 0;
  SeqNum view_base = 0;
  SeqNum next_exec = 0;
  std::map<ProcessId, SeqNum> ui_high;
  std::uint64_t stable = 0;
  std::uint64_t exec_floor = 0;
  StateBundle core;
  crypto::Signature sig;  // over ("minbft-state", body)

  void encode_body(serde::Writer& w) const {
    w.uvarint(view);
    w.uvarint(view_base);
    w.uvarint(next_exec);
    serde::write(w, ui_high);
    w.uvarint(stable);
    w.uvarint(exec_floor);
    core.encode(w);
  }
  Bytes binding() const {
    serde::Writer w;
    w.str("minbft-state");
    encode_body(w);
    return w.take();
  }

  void encode(serde::Writer& w) const {
    encode_body(w);
    sig.encode(w);
  }
  static StateReply decode(serde::Reader& r) {
    StateReply rep;
    rep.view = r.uvarint();
    rep.view_base = r.uvarint();
    rep.next_exec = r.uvarint();
    rep.ui_high = serde::read<std::map<ProcessId, SeqNum>>(r);
    rep.stable = r.uvarint();
    rep.exec_floor = r.uvarint();
    rep.core = StateBundle::decode(r);
    rep.sig = crypto::Signature::decode(r);
    return rep;
  }
};

struct Recover {
  static constexpr wire::MsgDesc kDesc{8, "minbft-recover"};

  trusted::UniqueIdentifier ui;  // one fresh UI: where the stream resumes

  void encode(serde::Writer& w) const { ui.encode(w); }
  static Recover decode(serde::Reader& r) {
    Recover rc;
    rc.ui = trusted::UniqueIdentifier::decode(r);
    return rc;
  }
};

/// Batched-mode PREPARE: one UI attests the digest of the whole command
/// vector, amortizing the trusted-counter step across the batch (the
/// paper's per-attestation cost argument; dsnet's MinBFT does the same).
struct BatchPrepare {
  static constexpr wire::MsgDesc kDesc{9, "minbft-batch-prepare"};

  ViewNum view = 0;
  std::vector<Command> cmds;
  trusted::UniqueIdentifier ui;

  void encode(serde::Writer& w) const {
    w.uvarint(view);
    serde::write(w, cmds);
    ui.encode(w);
  }
  static BatchPrepare decode(serde::Reader& r) {
    BatchPrepare p;
    p.view = r.uvarint();
    p.cmds = serde::read<std::vector<Command>>(r);
    p.ui = trusted::UniqueIdentifier::decode(r);
    return p;
  }
};

/// Batched-mode COMMIT. Like the singleton COMMIT it carries the full
/// PREPARE content, so it can open the slot at replicas the BATCH-PREPARE
/// never reached.
struct BatchCommit {
  static constexpr wire::MsgDesc kDesc{10, "minbft-batch-commit"};

  ViewNum view = 0;
  std::vector<Command> cmds;
  trusted::UniqueIdentifier primary_ui;
  trusted::UniqueIdentifier replica_ui;

  void encode(serde::Writer& w) const {
    w.uvarint(view);
    serde::write(w, cmds);
    primary_ui.encode(w);
    replica_ui.encode(w);
  }
  static BatchCommit decode(serde::Reader& r) {
    BatchCommit c;
    c.view = r.uvarint();
    c.cmds = serde::read<std::vector<Command>>(r);
    c.primary_ui = trusted::UniqueIdentifier::decode(r);
    c.replica_ui = trusted::UniqueIdentifier::decode(r);
    return c;
  }
};

}  // namespace minbft_wire

using namespace minbft_wire;

void MinBftVcEntry::encode(serde::Writer& w) const {
  w.uvarint(view);
  w.uvarint(counter);
  cmd.encode(w);
}

MinBftVcEntry MinBftVcEntry::decode(serde::Reader& r) {
  MinBftVcEntry e;
  e.view = r.uvarint();
  e.counter = r.uvarint();
  e.cmd = Command::decode(r);
  return e;
}

Bytes MinBftReplica::encode_prepare_for_test(UsigDirectory& usigs,
                                             ProcessId as, ViewNum view,
                                             const Command& cmd) {
  Prepare p;
  p.view = view;
  p.cmd = cmd;
  p.ui = usigs.create_ui(as, prepare_binding(view, cmd));
  return wire::encode_tagged(p);
}

Bytes MinBftReplica::encode_batch_prepare_for_test(
    UsigDirectory& usigs, ProcessId as, ViewNum view,
    const std::vector<Command>& cmds) {
  BatchPrepare p;
  p.view = view;
  p.cmds = cmds;
  p.ui = usigs.create_ui(as, batch_prepare_binding(view, cmds));
  return wire::encode_tagged(p);
}

MinBftReplica::MinBftReplica(Options options, UsigDirectory& usigs,
                             std::unique_ptr<StateMachine> machine)
    : options_(std::move(options)),
      usigs_(usigs),
      machine_(std::move(machine)),
      request_router_(*this, kClientRequestCh),
      protocol_router_(*this, kMinBftCh) {
  UNIDIR_REQUIRE(machine_ != nullptr);
  UNIDIR_REQUIRE_MSG(options_.replicas.size() >= 2 * options_.f + 1,
                     "MinBFT requires n >= 2f+1");
  if (options_.commit_quorum == 0) options_.commit_quorum = options_.f + 1;
  UNIDIR_REQUIRE_MSG(options_.commit_quorum >= options_.f + 1 &&
                         options_.commit_quorum <= options_.replicas.size(),
                     "commit quorum must be in [f+1, n]");
  request_router_.on<Command>([this](ProcessId from, Command cmd) {
    on_request(from, std::move(cmd));
  });
  protocol_router_.set_peer_filter(
      [this](ProcessId p) { return is_replica(p); });
  protocol_router_.on<Prepare>([this](ProcessId from, Prepare p) {
    handle_prepare(from, std::move(p));
  });
  protocol_router_.on<Commit>([this](ProcessId from, Commit c) {
    handle_commit(from, std::move(c));
  });
  protocol_router_.on<Checkpoint>([this](ProcessId from, Checkpoint cp) {
    handle_checkpoint(from, std::move(cp));
  });
  protocol_router_.on<ViewChange>([this](ProcessId from, ViewChange vc) {
    handle_view_change(from, std::move(vc));
  });
  protocol_router_.on<NewView>([this](ProcessId from, NewView nv) {
    handle_new_view(from, std::move(nv));
  });
  protocol_router_.on<StateRequest>([this](ProcessId from, StateRequest req) {
    handle_state_request(from, std::move(req));
  });
  protocol_router_.on<StateReply>([this](ProcessId from, StateReply rep) {
    handle_state_reply(from, std::move(rep));
  });
  protocol_router_.on<Recover>([this](ProcessId from, Recover rc) {
    handle_recover(from, std::move(rc));
  });
  protocol_router_.on<BatchPrepare>([this](ProcessId from, BatchPrepare p) {
    handle_batch_prepare(from, std::move(p));
  });
  protocol_router_.on<BatchCommit>([this](ProcessId from, BatchCommit c) {
    handle_batch_commit(from, std::move(c));
  });
  initial_snapshot_ = machine_->snapshot();
}

void MinBftReplica::on_start() {
  UNIDIR_CHECK_MSG(is_replica(id()),
                   "replica id must appear in Options::replicas");
}

bool MinBftReplica::is_replica(ProcessId p) const {
  return std::find(options_.replicas.begin(), options_.replicas.end(), p) !=
         options_.replicas.end();
}

// ---- client requests ----------------------------------------------------------

void MinBftReplica::on_request(ProcessId from, Command cmd) {
  if (cmd.client != from) return;  // clients speak only for themselves

  if (const auto cached = dedup_.lookup(cmd)) {
    reply_to(cmd, *cached);
    return;
  }
  const bool fresh = pending_.emplace(cmd.key(), cmd).second;
  if (fresh) arm_request_timer(cmd);
  if (!in_view_change_ && is_primary()) {
    if (batched()) {
      enqueue_batch(cmd);
      maybe_flush_batch();
    } else {
      propose(cmd);
    }
  }
}

void MinBftReplica::propose(const Command& cmd) {
  // A command may only occupy one slot per view.
  for (const auto& [counter, slot] : slots_)
    for (const Command& slotted : slot.cmds)
      if (slotted.key() == cmd.key()) return;

  Prepare p;
  p.view = view_;
  p.cmd = cmd;
  p.ui = usigs_.create_ui(id(), prepare_binding(view_, cmd));
  // Our own UI consumption advances our own stream: messages from peers
  // embedding this UI must not wait for us to "receive" it.
  ui_high_[id()] = p.ui.counter;
  protocol_router_.broadcast(p);
  // Our own PREPARE is our commit vote.
  accept_slot(p.view, {p.cmd}, p.ui);
  try_execute();
}

void MinBftReplica::enqueue_batch(const Command& cmd) {
  // Admission, not dedup-against-execution: view-change re-proposals must
  // re-batch even already-executed commands (see maybe_assume_primacy).
  if (slotted_keys_.contains(cmd.key())) return;
  if (!queued_keys_.insert(cmd.key()).second) return;
  batch_queue_.push_back(cmd);
}

std::size_t MinBftReplica::inflight_slots() const {
  if (next_exec_counter_ == 0) return slots_.size();
  return static_cast<std::size_t>(std::distance(
      slots_.lower_bound(next_exec_counter_), slots_.end()));
}

void MinBftReplica::maybe_flush_batch() {
  if (!batched() || batch_flushing_) return;
  if (in_view_change_ || !is_primary()) return;
  batch_flushing_ = true;
  while (!batch_queue_.empty() &&
         inflight_slots() < options_.pipeline_depth &&
         (batch_queue_.size() >= options_.batch_size ||
          options_.batch_timeout == 0 || batch_ripe_)) {
    std::vector<Command> cmds;
    const std::size_t take =
        std::min<std::size_t>(options_.batch_size, batch_queue_.size());
    cmds.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      queued_keys_.erase(batch_queue_.front().key());
      cmds.push_back(std::move(batch_queue_.front()));
      batch_queue_.pop_front();
    }
    propose_batch(std::move(cmds));
  }
  batch_flushing_ = false;
  if (batch_queue_.empty()) {
    batch_ripe_ = false;
    return;
  }
  // A partial batch waits for batch_timeout before going out underfull;
  // once ripe it (and anything queued behind a full pipeline) flushes at
  // the next opportunity.
  if (!batch_ripe_ && !batch_timer_armed_) {
    batch_timer_armed_ = true;
    set_timer(options_.batch_timeout, [this] {
      batch_timer_armed_ = false;
      if (batch_queue_.empty()) return;
      batch_ripe_ = true;
      maybe_flush_batch();
    });
  }
}

void MinBftReplica::propose_batch(std::vector<Command> cmds) {
  BatchPrepare p;
  p.view = view_;
  p.cmds = std::move(cmds);
  p.ui = usigs_.create_ui(id(), batch_prepare_binding(view_, p.cmds));
  ui_high_[id()] = p.ui.counter;  // see propose()
  protocol_router_.broadcast(p);
  // As in the singleton path, the primary's BATCH-PREPARE is its vote.
  accept_slot(p.view, p.cmds, p.ui);
  try_execute();
}

// ---- protocol messages ----------------------------------------------------------

bool MinBftReplica::accept_slot(ViewNum view,
                                const std::vector<Command>& cmds,
                                const trusted::UniqueIdentifier& primary_ui) {
  if (view != view_ || in_view_change_) return false;
  auto it = slots_.find(primary_ui.counter);
  if (it != slots_.end()) {
    // USIG uniqueness: a second, different batch under the same counter
    // cannot verify; matching content just merges.
    return it->second.cmds == cmds;
  }
  if (view_base_counter_ == 0) {
    view_base_counter_ = primary_ui.counter;
    next_exec_counter_ = primary_ui.counter;
  } else if (primary_ui.counter < view_base_counter_) {
    return false;  // before this view's window
  }
  Slot slot;
  slot.cmds = cmds;
  slot.primary_ui = primary_ui;
  slot.committers.insert(primary_of(view_));
  slot.accepted_at = world().now();
  slots_.emplace(primary_ui.counter, std::move(slot));
  // One archive entry per command: batch members share (view, counter) in
  // batch order, so a new primary can rebuild proposal order command by
  // command even if it only ever saw parts of the history.
  for (const Command& cmd : cmds) {
    vc_archive_.push_back({view, primary_ui.counter, cmd});
    if (batched()) slotted_keys_.insert(cmd.key());
  }
  return true;
}

void MinBftReplica::sequenced(ProcessId sender, SeqNum counter,
                              std::function<void()> action) {
  SeqNum& high = ui_high_[sender];
  if (counter <= high) {
    action();  // already due; handlers are idempotent
    return;
  }
  if (counter > high + 1) {
    ui_waiting_[sender][counter].push_back(std::move(action));
    return;
  }
  high = counter;
  action();
  drain_ui(sender);  // the gap closure may have unblocked buffered actions
}

void MinBftReplica::drain_ui(ProcessId sender) {
  auto& waiting = ui_waiting_[sender];
  while (!waiting.empty()) {
    SeqNum& high = ui_high_[sender];  // re-fetch: actions can move it
    auto it = waiting.begin();
    if (it->first > high + 1) return;
    if (it->first == high + 1) high = it->first;
    std::vector<std::function<void()>> actions = std::move(it->second);
    waiting.erase(it);
    for (auto& fn : actions) fn();
  }
}

void MinBftReplica::raise_ui_high(ProcessId sender, SeqNum to) {
  SeqNum& high = ui_high_[sender];
  if (to > high) high = to;
  drain_ui(sender);
}

void MinBftReplica::handle_prepare(ProcessId from, Prepare p) {
  if (from == id()) return;
  // UI validity is checked at arrival (a forged UI must not advance the
  // sender's stream); all protocol-state checks wait until the counter is
  // due, so that semantically stale-but-genuine UIs still advance it.
  if (!usigs_.verify(from, p.ui, prepare_binding(p.view, p.cmd))) return;
  sequenced(from, p.ui.counter, [this, from, p]() {
    when_in_view(p.view, [this, from, p]() {
      if (from != primary_of(view_)) return;
      if (!accept_slot(p.view, {p.cmd}, p.ui)) return;
      maybe_send_own_commit(p.ui.counter);
      // The request is now in flight under this view; make sure a timer
      // guards it even if the client's REQUEST never reached us directly.
      if (!dedup_.lookup(p.cmd) &&
          pending_.emplace(p.cmd.key(), p.cmd).second)
        arm_request_timer(p.cmd);
      try_execute();
    });
  });
}

void MinBftReplica::handle_commit(ProcessId from, Commit c) {
  if (from == id()) return;
  const ProcessId prepare_author = primary_of(c.view);
  // A COMMIT carries two attestations (the embedded PREPARE's and the
  // sender's); check them as one batch so their hashing shares the
  // multi-buffer lanes. Unlike the old early-return pair, both UIs are
  // always checked — same verdicts, one round trip through the backend.
  const Bytes prepare_bind = prepare_binding(c.view, c.cmd);
  const Bytes commit_bind =
      commit_binding(c.view, c.primary_ui.counter, c.cmd);
  UsigVerifyJob vj[2] = {
      {prepare_author, &c.primary_ui, &prepare_bind, false},
      {from, &c.replica_ui, &commit_bind, false},
  };
  usigs_.verify_batch(vj, 2);
  world().wire_stats().note_verify_batch(kMinBftCh, 2);
  if (!vj[0].ok || !vj[1].ok) return;
  // Double sequencing: the commit is ordered in the sender's UI stream,
  // and the embedded PREPARE in the primary's.
  sequenced(from, c.replica_ui.counter, [this, from, c, prepare_author]() {
    sequenced(prepare_author, c.primary_ui.counter, [this, from, c]() {
      when_in_view(c.view, [this, from, c]() {
        if (from == primary_of(view_)) return;  // its vote is its PREPARE
        // A COMMIT carries the full PREPARE, so it can open the slot (and
        // prompt our own vote) even if the PREPARE itself never reached us.
        if (!accept_slot(c.view, {c.cmd}, c.primary_ui)) return;
        slots_.at(c.primary_ui.counter).committers.insert(from);
        maybe_send_own_commit(c.primary_ui.counter);
        try_execute();
      });
    });
  });
}

void MinBftReplica::handle_batch_prepare(ProcessId from, BatchPrepare p) {
  if (from == id()) return;
  if (p.cmds.empty()) return;  // an attested empty batch orders nothing
  if (!usigs_.verify(from, p.ui, batch_prepare_binding(p.view, p.cmds)))
    return;
  sequenced(from, p.ui.counter, [this, from, p]() {
    when_in_view(p.view, [this, from, p]() {
      if (from != primary_of(view_)) return;
      if (!accept_slot(p.view, p.cmds, p.ui)) return;
      maybe_send_own_commit(p.ui.counter);
      // Guard every batch member with a timer, as the singleton path does
      // for its one command (see handle_prepare).
      for (const Command& cmd : p.cmds)
        if (!dedup_.lookup(cmd) && pending_.emplace(cmd.key(), cmd).second)
          arm_request_timer(cmd);
      try_execute();
    });
  });
}

void MinBftReplica::handle_batch_commit(ProcessId from, BatchCommit c) {
  if (from == id()) return;
  if (c.cmds.empty()) return;
  const ProcessId prepare_author = primary_of(c.view);
  // Both attestations as one batch, as in handle_commit.
  const Bytes prepare_bind = batch_prepare_binding(c.view, c.cmds);
  const Bytes commit_bind =
      batch_commit_binding(c.view, c.primary_ui.counter, c.cmds);
  UsigVerifyJob vj[2] = {
      {prepare_author, &c.primary_ui, &prepare_bind, false},
      {from, &c.replica_ui, &commit_bind, false},
  };
  usigs_.verify_batch(vj, 2);
  world().wire_stats().note_verify_batch(kMinBftCh, 2);
  if (!vj[0].ok || !vj[1].ok) return;
  sequenced(from, c.replica_ui.counter, [this, from, c, prepare_author]() {
    sequenced(prepare_author, c.primary_ui.counter, [this, from, c]() {
      when_in_view(c.view, [this, from, c]() {
        if (from == primary_of(view_)) return;  // its vote is its PREPARE
        if (!accept_slot(c.view, c.cmds, c.primary_ui)) return;
        slots_.at(c.primary_ui.counter).committers.insert(from);
        maybe_send_own_commit(c.primary_ui.counter);
        try_execute();
      });
    });
  });
}

void MinBftReplica::when_in_view(ViewNum view, std::function<void()> action) {
  if (view < view_) return;  // stale
  if (view == view_ && !in_view_change_) {
    action();
    return;
  }
  view_waiting_[view].push_back(std::move(action));
}

void MinBftReplica::maybe_send_own_commit(SeqNum primary_counter) {
  if (is_primary()) return;
  Slot& slot = slots_.at(primary_counter);
  if (!slot.committers.insert(id()).second) return;
  if (batched()) {
    BatchCommit c;
    c.view = view_;
    c.cmds = slot.cmds;
    c.primary_ui = slot.primary_ui;
    c.replica_ui = usigs_.create_ui(
        id(), batch_commit_binding(view_, primary_counter, slot.cmds));
    ui_high_[id()] = c.replica_ui.counter;  // see propose()
    protocol_router_.broadcast(c);
    return;
  }
  Commit c;
  c.view = view_;
  c.cmd = slot.cmds.front();
  c.primary_ui = slot.primary_ui;
  c.replica_ui = usigs_.create_ui(
      id(), commit_binding(view_, primary_counter, slot.cmds.front()));
  ui_high_[id()] = c.replica_ui.counter;  // see propose()
  protocol_router_.broadcast(c);
}

void MinBftReplica::try_execute() {
  while (next_exec_counter_ != 0) {
    auto it = slots_.find(next_exec_counter_);
    if (it == slots_.end()) break;
    Slot& slot = it->second;
    if (slot.executed) {
      ++next_exec_counter_;
      continue;
    }
    if (slot.committers.size() < options_.commit_quorum) break;
    // Below a NEW-VIEW's execution floor, a fresh command would land at
    // the wrong log index; wait for state transfer. Dedup'd re-executions
    // never append, so they stay allowed (and keep clients served). A
    // batch executes only once *every* member is settled or executable.
    if (log_.size() < exec_floor_) {
      const bool all_deduped =
          std::all_of(slot.cmds.begin(), slot.cmds.end(),
                      [this](const Command& cmd) {
                        return dedup_.lookup(cmd).has_value();
                      });
      if (!all_deduped) break;
    }
    // Advance the cursor before executing: execute() may hit a checkpoint
    // boundary and persist(), and the durable image must record the
    // *post*-execution cursor. An image saying "log holds k entries, next
    // slot to execute = the one producing entry k" re-executes that
    // counter after recovery — harmless stall with durable devices, but a
    // self-inflicted equivocation slot once counters are volatile.
    ++next_exec_counter_;
    execute(slot);
  }
  // Executions free pipeline room; admit whatever is queued behind it.
  if (batched()) maybe_flush_batch();
}

void MinBftReplica::execute(Slot& slot) {
  slot.executed = true;
  if (batched()) {
    // Atomicity witness for the explorer: which requests this slot
    // committed as one batch, in execution order (see the batch-atomicity
    // invariant). Only emitted in batched mode, so unbatched transcripts —
    // and hence fingerprints — are unchanged.
    serde::Writer w;
    w.uvarint(view_);
    w.uvarint(slot.primary_ui.counter);
    w.uvarint(slot.cmds.size());
    for (const Command& cmd : slot.cmds) {
      w.uvarint(cmd.client);
      w.uvarint(cmd.request_id);
    }
    output("smr-batch", w.take());
  }
  for (const Command& cmd : slot.cmds) {
    Bytes result;
    if (const auto cached = dedup_.lookup(cmd)) {
      // Exactly-once: re-proposed after a view change, or a retry that
      // landed in a later batch than its first commit.
      result = *cached;
    } else {
      result = machine_->apply(cmd.op);
      dedup_.record(cmd, result);
      log_.append({cmd, result});
      const Time latency = world().now() - slot.accepted_at;
      world().metrics().histogram("smr.commit_latency_ticks").record(latency);
      world().tracer().complete("commit", "smr", id(), slot.accepted_at,
                                latency, "counter", slot.primary_ui.counter);
      output("smr-exec", serde::encode(cmd));
      maybe_checkpoint();
    }
    pending_.erase(cmd.key());
    reply_to(cmd, result);
  }
}

void MinBftReplica::reply_to(const Command& cmd, const Bytes& result) {
  Reply reply;
  reply.request_id = cmd.request_id;
  reply.result = result;
  wire::send(*this, cmd.client, kClientReplyCh, reply);
}

// ---- checkpoints ----------------------------------------------------------------

void MinBftReplica::maybe_checkpoint() {
  if (options_.checkpoint_interval == 0) return;
  if (log_.size() % options_.checkpoint_interval != 0) return;
  Checkpoint cp;
  cp.executed = log_.size();
  cp.digest = crypto::digest_bytes(machine_->digest());
  cp.sig = signer().sign(checkpoint_binding(cp.executed, cp.digest));
  protocol_router_.broadcast(cp);
  // A checkpoint boundary is also the durability boundary: crash recovery
  // resumes from the image written here (see DESIGN.md §9).
  persist();
  note_checkpoint_vote(cp.executed, cp.digest, id());
}

void MinBftReplica::handle_checkpoint(ProcessId from, Checkpoint cp) {
  if (cp.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(cp.sig,
                             checkpoint_binding(cp.executed, cp.digest)))
    return;
  note_checkpoint_vote(cp.executed, cp.digest, from);
}

void MinBftReplica::note_checkpoint_vote(std::uint64_t executed,
                                         const Bytes& digest,
                                         ProcessId voter) {
  if (executed <= stable_checkpoint_) return;  // already stable
  auto& voters = cp_votes_[executed][digest];
  voters.insert(voter);
  if (voters.size() < options_.f + 1) return;
  stable_checkpoint_ = executed;
  world().metrics()
      .histogram("smr.checkpoint_gap_ticks")
      .record(world().now() - last_checkpoint_at_);
  last_checkpoint_at_ = world().now();
  world().tracer().instant("checkpoint-stable", "smr", id(), world().now(),
                           "executed", executed);
  prune_stable();
  persist();
}

void MinBftReplica::prune_stable() {
  cp_votes_.erase(cp_votes_.begin(),
                  cp_votes_.upper_bound(stable_checkpoint_));
  // The archive exists to realign peers during view changes; below the
  // stable checkpoint f+1 replicas hold the history durably, and laggards
  // are realigned by state transfer instead — so both the executed prefix
  // and the matching archive entries can go.
  const std::uint64_t upto =
      std::min<std::uint64_t>(stable_checkpoint_, log_.size());
  if (upto <= log_.base()) return;
  std::set<std::pair<ProcessId, std::uint64_t>> settled;
  for (std::uint64_t k = log_.base(); k < upto; ++k)
    settled.insert(log_.at(k).command.key());
  std::erase_if(vc_archive_, [&](const VcEntry& e) {
    return settled.contains(e.cmd.key());
  });
  log_.prune_to(upto);
}

// ---- view change ----------------------------------------------------------------

void MinBftReplica::arm_request_timer(const Command& cmd) {
  const auto key = cmd.key();
  const ViewNum armed_view = view_;
  set_timer(vc_timeout(), [this, key, armed_view] {
    if (!pending_.contains(key)) return;  // executed meanwhile
    if (in_view_change_) return;          // one attempt at a time
    // Still pending after a full timeout in the same view: the primary is
    // not making progress for us.
    if (view_ == armed_view) start_view_change(view_ + 1);
  });
}

void MinBftReplica::start_view_change(ViewNum target) {
  if (target <= view_) return;
  if (!in_view_change_) {
    // Escalations re-enter here with the flag already set; the episode's
    // duration is measured from its first attempt.
    vc_started_at_ = world().now();
    world().tracer().instant("view-change-start", "smr", id(), world().now(),
                             "target", target);
  }
  in_view_change_ = true;
  vc_target_ = target;
  ++view_changes_;

  ViewChange vc;
  vc.target = target;
  vc.stable = stable_checkpoint_;
  // Report every accepted slot not yet settled by a stable checkpoint
  // (with its original order) plus any buffered client requests that never
  // made it into a slot.
  vc.entries = vc_archive_;
  for (const auto& [key, cmd] : pending_) vc.pending.push_back(cmd);
  vc.sig = signer().sign(
      view_change_binding(target, vc.stable, vc.entries, vc.pending));
  protocol_router_.broadcast(vc);
  vc_msgs_[target][id()] = VcReport{vc.entries, vc.pending, vc.stable};
  maybe_assume_primacy(target);

  // If this attempt stalls, either escalate (when f+1 replicas agree the
  // view is broken — the next primary may be dead too) or abandon and
  // rejoin the current view (when we are alone: a spurious timeout, e.g.
  // pre-GST straggling, must not strand us outside a healthy view).
  // The attempt timer backs off with every consecutive failure: repeated
  // failed views mean the cluster needs longer to heal (restarting quorum,
  // partition epoch), and re-firing at a fixed period just burns messages.
  set_timer(vc_timeout(), [this, target] {
    if (!in_view_change_ || vc_target_ != target) return;
    ++vc_backoff_;
    if (vc_msgs_[target].size() >= options_.f + 1) {
      start_view_change(target + 1);
    } else {
      abandon_view_change();
    }
  });
}

void MinBftReplica::abandon_view_change() {
  in_view_change_ = false;
  world().metrics().add("smr.view_changes_abandoned");
  // Replay whatever the attempt made us buffer for the view we never left.
  auto it = view_waiting_.find(view_);
  if (it != view_waiting_.end()) {
    std::vector<std::function<void()>> actions = std::move(it->second);
    view_waiting_.erase(it);
    for (auto& fn : actions) fn();
  }
  // Anything still unserved gets a fresh clock (and hence a fresh chance
  // to demand a view change, now or under a later, supported attempt).
  for (const auto& [key, cmd] : pending_) arm_request_timer(cmd);
}

void MinBftReplica::handle_view_change(ProcessId from, ViewChange vc) {
  if (vc.target <= view_) return;
  if (vc.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(
          vc.sig, view_change_binding(vc.target, vc.stable, vc.entries,
                                      vc.pending)))
    return;
  vc_msgs_[vc.target][from] =
      VcReport{std::move(vc.entries), std::move(vc.pending), vc.stable};

  // Join: f+1 replicas want a higher view, so at least one correct one
  // does; we follow even if our own timer has not fired.
  if (vc_msgs_[vc.target].size() >= options_.f + 1 &&
      (!in_view_change_ || vc_target_ < vc.target))
    start_view_change(vc.target);
  maybe_assume_primacy(vc.target);
}

void MinBftReplica::maybe_assume_primacy(ViewNum target) {
  if (primary_of(target) != id()) return;
  if (target <= view_) return;
  // Merge quorum: n - f reports (= f + 1 at MinBFT's native n = 2f + 1).
  // The count must intersect every commit quorum — commit_quorum + (n - f)
  // > n whenever commit_quorum > f — or a slot committed at a replica
  // outside the reports vanishes from the new view's re-proposals and the
  // logs fork. At n > 2f + 1 (the bench's n = 4, f = 1) f + 1 reports do
  // not intersect a commit quorum of f + 1; pipelined slots keep enough
  // proposals in flight at view-change time to hit that hole constantly.
  const std::size_t merge_quorum = std::max<std::size_t>(
      options_.f + 1, options_.replicas.size() - options_.f);
  auto it = vc_msgs_.find(target);
  if (it == vc_msgs_.end() || it->second.size() < merge_quorum) return;

  // Archives are pruned below stable checkpoints, so re-proposals can only
  // realign peers above the reported stable frontier. A primary still
  // below it (it just recovered, or simply lagged) must state-transfer up
  // to the frontier before taking over.
  std::uint64_t frontier = stable_checkpoint_;
  for (const auto& [reporter, report] : it->second)
    frontier = std::max(frontier, report.stable);
  if (log_.size() < frontier) {
    deferred_primacy_ = target;
    begin_state_sync();
    return;
  }
  deferred_primacy_.reset();

  // Announce and take over. The announced execution count becomes every
  // entering replica's execution floor (see exec_floor_).
  NewView nv;
  nv.target = target;
  nv.executed = log_.size();
  nv.sig = signer().sign(NewView::binding(target, nv.executed));
  protocol_router_.broadcast(nv);
  enter_view(target);

  // Re-propose in a consistent order: every reported slot, ranked by its
  // most RECENT reported (view, counter) — newest view first, counter
  // order within a view — then never-slotted requests in deterministic
  // key order. Exactly-once is preserved by per-client deduplication at
  // execution time.
  //
  // Why newest view first: the order must extend every correct replica's
  // execution order above the stable frontier. If some replica executed A
  // before B there, B's commit quorum intersects this merge quorum, so a
  // reporter accepted B's latest slot — and per-primary USIG sequencing
  // makes within-view accepts prefixes of the proposal stream, so that
  // reporter accepted A's slot in the same view too (agendas re-propose A
  // before B inductively). Hence A's newest reported view >= B's, and
  // ranking views downward never inverts an executed pair. Ascending
  // original (view, counter) — the obvious order — is WRONG: a stale slot
  // from an old view that never committed (so was never executed, never
  // pruned) sorts ahead of newer slots, and a replica that executed one of
  // those newer slots pre-view-change holds its command at an earlier log
  // position than peers replaying the agenda — divergent logs (found by
  // the batching sweep under pipelined view changes).
  //
  // Batch members share their slot's (view, counter); stable sort keeps
  // their first-reported (= batch) order.
  struct Ranked {
    ViewNum view;
    SeqNum counter;
    Command cmd;
  };
  std::map<std::pair<ProcessId, std::uint64_t>, std::size_t> index;
  std::vector<Ranked> ranked;
  std::map<std::pair<ProcessId, std::uint64_t>, Command> loose;
  for (const auto& [reporter, report] : it->second) {
    for (const VcEntry& e : report.entries) {
      auto [pos, fresh] = index.emplace(e.cmd.key(), ranked.size());
      if (fresh) {
        ranked.push_back({e.view, e.counter, e.cmd});
      } else {
        Ranked& r = ranked[pos->second];
        if (std::tie(e.view, e.counter) > std::tie(r.view, r.counter)) {
          r.view = e.view;
          r.counter = e.counter;
        }
      }
    }
    for (const Command& cmd : report.pending) loose.emplace(cmd.key(), cmd);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     if (a.view != b.view) return a.view > b.view;
                     return a.counter < b.counter;
                   });
  std::set<std::pair<ProcessId, std::uint64_t>> seen;
  auto consider = [&](const Command& cmd) {
    if (!seen.insert(cmd.key()).second) return;
    // Re-propose even commands this replica has already executed: a
    // correct replica may enter this view having committed less than the
    // primary did (enter_view drops per-view slot progress), and only the
    // full archive in its original order realigns it. Skipping executed
    // commands would hand laggards a residual sequence whose positions
    // depend on the primary's own execution history — divergent logs
    // (found by the byte-mutation fuzz sweep). Exactly-once is preserved
    // by dedup at execution time.
    if (!dedup_.lookup(cmd) && pending_.emplace(cmd.key(), cmd).second)
      arm_request_timer(cmd);
    if (batched())
      enqueue_batch(cmd);
    else
      propose(cmd);
  };
  for (const Ranked& r : ranked) consider(r.cmd);
  for (const auto& [key, cmd] : loose) consider(cmd);
  // Batched mode re-proposes through the same queue/flush machinery, so
  // re-proposals regroup into fresh batches under the new view's keys.
  if (batched()) maybe_flush_batch();
}

void MinBftReplica::handle_new_view(ProcessId from, NewView nv) {
  if (nv.target <= view_) return;
  if (from != primary_of(nv.target)) return;
  if (nv.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(nv.sig,
                             NewView::binding(nv.target, nv.executed)))
    return;
  exec_floor_ = std::max(exec_floor_, nv.executed);
  enter_view(nv.target);
  // Pending requests restart their clocks under the new primary.
  for (const auto& [key, cmd] : pending_) arm_request_timer(cmd);
  // Below the floor the primary's re-proposals cannot realign us (they sit
  // above its stable checkpoint); fetch the missing prefix explicitly.
  if (log_.size() < exec_floor_) begin_state_sync();
}

void MinBftReplica::enter_view(ViewNum v) {
  if (in_view_change_) {
    const Time dur = world().now() - vc_started_at_;
    world().metrics().histogram("smr.view_change_ticks").record(dur);
    world().tracer().complete("view-change", "smr", id(), vc_started_at_, dur,
                              "view", v);
  }
  view_ = v;
  in_view_change_ = false;
  vc_backoff_ = 0;  // a view actually entered resets the failure streak
  slots_.clear();
  view_base_counter_ = 0;
  next_exec_counter_ = 0;
  // Per-view batching state dies with the view: queued commands stay in
  // pending_ (and in peers' view-change reports), so the new primary —
  // whoever it is — re-admits them.
  batch_queue_.clear();
  queued_keys_.clear();
  slotted_keys_.clear();
  batch_ripe_ = false;
  if (deferred_primacy_ && *deferred_primacy_ <= v) deferred_primacy_.reset();
  persist();  // view entry is a durability boundary (see DESIGN.md §9)
  // Replay protocol messages that arrived for this view before we entered
  // it, and drop anything for views that can no longer happen.
  auto stale_end = view_waiting_.lower_bound(v);
  view_waiting_.erase(view_waiting_.begin(), stale_end);
  auto it = view_waiting_.find(v);
  if (it == view_waiting_.end()) return;
  std::vector<std::function<void()>> actions = std::move(it->second);
  view_waiting_.erase(it);
  for (auto& fn : actions) fn();
}

// ---- crash recovery (DESIGN.md §9) ----------------------------------------------

void MinBftReplica::persist() {
  DurableImage img;
  img.view = view_;
  img.view_base = view_base_counter_;
  img.next_exec = next_exec_counter_;
  img.ui_high = ui_high_;
  img.stable = stable_checkpoint_;
  img.exec_floor = exec_floor_;
  img.log = log_;
  img.machine_snapshot = machine_->snapshot();
  img.dedup = dedup_;
  world().durable(id()).put_value(std::string(kDurableKey), img);
}

void MinBftReplica::on_recover(sim::DurableStore& durable) {
  // Everything volatile is gone; rebuild from the durable image (or from
  // scratch when we crashed before the first checkpoint).
  view_ = 0;
  in_view_change_ = false;
  vc_target_ = 0;
  vc_backoff_ = 0;
  slots_.clear();
  view_base_counter_ = 0;
  next_exec_counter_ = 0;
  ui_high_.clear();
  ui_waiting_.clear();
  view_waiting_.clear();
  pending_.clear();
  dedup_ = {};
  log_ = {};
  stable_checkpoint_ = 0;
  cp_votes_.clear();
  vc_archive_.clear();
  vc_msgs_.clear();
  exec_floor_ = 0;
  deferred_primacy_.reset();
  state_probe_ = false;
  state_attempts_ = 0;
  batch_queue_.clear();
  queued_keys_.clear();
  slotted_keys_.clear();
  batch_ripe_ = false;
  batch_timer_armed_ = false;
  batch_flushing_ = false;
  machine_->restore(initial_snapshot_);
  if (const auto img =
          durable.get_value<DurableImage>(std::string(kDurableKey))) {
    view_ = img->view;
    view_base_counter_ = img->view_base;
    next_exec_counter_ = img->next_exec;
    ui_high_ = img->ui_high;
    stable_checkpoint_ = img->stable;
    exec_floor_ = img->exec_floor;
    log_ = img->log;
    machine_->restore(img->machine_snapshot);
    dedup_ = img->dedup;
  }
  ++recoveries_;
  world().metrics().add("smr.recoveries");
  vc_started_at_ = 0;
  state_sync_started_at_ = 0;
  last_checkpoint_at_ = world().now();

  // Burn one fresh UI to announce where our stream resumes. Counters we
  // consumed before the crash but never delivered would otherwise leave a
  // permanent gap in every peer's sequential-UI tracking; the attested
  // counter lets them skip it. (With a *volatile* trusted counter this UI
  // reuses old values — the announcement raises nothing at peers, our
  // stale counters collide with already-processed ones, and equivocation
  // becomes possible: the negative experiment in the recovery sweeps.)
  Recover rc;
  rc.ui = usigs_.create_ui(id(), recover_binding());
  ui_high_[id()] = rc.ui.counter;
  protocol_router_.broadcast(rc);

  // Catch up past the image: peers may have executed (and pruned) far
  // beyond our last durable checkpoint.
  begin_state_sync();
}

void MinBftReplica::handle_recover(ProcessId from, Recover rc) {
  if (from == id()) return;
  if (!usigs_.verify(from, rc.ui, recover_binding())) return;
  raise_ui_high(from, rc.ui.counter);
}

bool MinBftReplica::needs_state() const {
  return log_.size() < exec_floor_ || deferred_primacy_.has_value();
}

void MinBftReplica::begin_state_sync() {
  if (!state_probe_) state_sync_started_at_ = world().now();
  state_probe_ = true;
  state_attempts_ = 0;
  send_state_request();
  arm_state_retry();
}

void MinBftReplica::send_state_request() {
  StateRequest req;
  req.have = log_.size();
  protocol_router_.broadcast(req);
}

void MinBftReplica::arm_state_retry() {
  // Bounded exponential backoff: replies can be lost (in-flight drops when
  // we crash again, crashed responders), but retransmission must not keep
  // the world from quiescing, so give up after a few rounds — the next
  // view change or checkpoint restarts the hunt if we still lag.
  if (state_attempts_ >= kMaxStateAttempts) {
    state_probe_ = false;
    world().metrics().add("smr.state_sync_abandoned");
    return;
  }
  const Time delay = (options_.view_change_timeout / 2 + 1)
                     << state_attempts_;
  set_timer(delay, [this] {
    if (!state_probe_) return;
    ++state_attempts_;
    send_state_request();
    arm_state_retry();
  });
}

void MinBftReplica::handle_state_request(ProcessId from, StateRequest req) {
  if (from == id()) return;
  if (log_.size() <= req.have) return;  // nothing the requester lacks
  StateReply rep;
  rep.view = view_;
  rep.view_base = view_base_counter_;
  rep.next_exec = next_exec_counter_;
  rep.ui_high = ui_high_;
  rep.stable = stable_checkpoint_;
  rep.exec_floor = exec_floor_;
  rep.core.log = log_;
  rep.core.machine_snapshot = machine_->snapshot();
  rep.core.dedup = dedup_;
  rep.sig = signer().sign(rep.binding());
  wire::send(*this, from, kMinBftCh, rep);
}

void MinBftReplica::handle_state_reply(ProcessId from, StateReply rep) {
  if (from == id()) return;
  // Signed by the responding replica: a Byzantine network cannot forge a
  // bundle, only replay one — and stale bundles are ignored below.
  if (rep.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(rep.sig, rep.binding())) return;
  install_bundle(rep);
}

void MinBftReplica::install_bundle(const StateReply& b) {
  const ViewNum was_view = view_;
  if (b.core.log.size() > log_.size()) {
    log_ = b.core.log;
    machine_->restore(b.core.machine_snapshot);
    dedup_ = b.core.dedup;
    if (batched()) {
      // Witness for the batch-atomicity checker: these commands' effects
      // arrived via state transfer, so no "smr-exec" output will ever
      // record them. Batched mode only — unbatched transcripts (and their
      // golden fingerprints) must not change.
      serde::Writer iw;
      const auto installed = dedup_.keys();
      iw.uvarint(installed.size());
      for (const auto& [client, rid] : installed) {
        iw.uvarint(client);
        iw.uvarint(rid);
      }
      output("smr-install", iw.take());
    }
  }
  if (b.stable > stable_checkpoint_) stable_checkpoint_ = b.stable;
  exec_floor_ = std::max(exec_floor_, b.exec_floor);
  if (b.view > view_) {
    // Adopt the responder's view wholesale: our per-view window is void.
    view_ = b.view;
    in_view_change_ = false;
    slots_.clear();
    view_base_counter_ = b.view_base;
    next_exec_counter_ = b.next_exec;
  } else if (b.view == view_ && !in_view_change_) {
    if (view_base_counter_ == 0) {
      view_base_counter_ = b.view_base;
      next_exec_counter_ = b.next_exec;
    } else if (b.next_exec > next_exec_counter_) {
      // The responder executed further into this view than we did; every
      // slot it passed is in the installed log (or dedup'd), so resuming
      // from its cursor skips nothing uncommitted.
      next_exec_counter_ = b.next_exec;
    }
  }
  prune_stable();
  persist();
  if (view_ > was_view) {
    if (deferred_primacy_ && *deferred_primacy_ <= view_)
      deferred_primacy_.reset();
    // Mirror enter_view's buffered-action replay for the adopted view.
    view_waiting_.erase(view_waiting_.begin(),
                        view_waiting_.lower_bound(view_));
    auto it = view_waiting_.find(view_);
    if (it != view_waiting_.end()) {
      std::vector<std::function<void()>> actions = std::move(it->second);
      view_waiting_.erase(it);
      for (auto& fn : actions) fn();
    }
    for (const auto& [key, cmd] : pending_) arm_request_timer(cmd);
  }
  // Adopt the responder's record of every peer's stream position: it
  // processed those counters, so their effects are inside the installed
  // log; stragglers below the new frontier still run via the idempotent
  // already-due path when they arrive.
  for (const auto& [p, h] : b.ui_high)
    if (p != id()) raise_ui_high(p, h);
  try_execute();
  // Requests that arrived before the install but were executed elsewhere
  // are settled by the bundle; drop them, or their timers would hunt for a
  // view change nothing needs, forever.
  for (auto it = pending_.begin(); it != pending_.end();)
    it = dedup_.lookup(it->second) ? pending_.erase(it) : ++it;
  if (!needs_state() && state_probe_) {
    state_probe_ = false;
    const Time dur = world().now() - state_sync_started_at_;
    world().metrics().histogram("smr.state_sync_ticks").record(dur);
    world().tracer().complete("state-sync", "smr", id(),
                              state_sync_started_at_, dur, "have",
                              log_.size());
  }
  if (deferred_primacy_) maybe_assume_primacy(*deferred_primacy_);
}

}  // namespace unidir::agreement
