// PBFT-style state machine replication (Castro & Liskov, OSDI'99) — the
// no-trusted-hardware baseline: n = 3f+1 replicas, three communication
// phases, quadratic message complexity.
//
// Normal operation (view v, primary = replicas[v mod n]):
//
//   client   → all : REQUEST(cmd)
//   primary  → all : PRE-PREPARE(v, s, cmd)            signed
//   replica  → all : PREPARE(v, s, digest)             signed, non-primary
//   *prepared* at 2f PREPAREs matching the PRE-PREPARE
//   replica  → all : COMMIT(v, s, digest)              signed
//   *committed* at 2f+1 COMMITs; execute in s order; reply; client waits
//   for f+1 matching replies.
//
// Compare MinBFT (minbft.h): the 2f+1 quorums and the extra PREPARE phase
// are exactly the cost of having no non-equivocation device — the primary
// could assign one sequence number to two commands, and the prepare phase
// exists to catch that. bench_minbft_vs_pbft measures the difference.
//
// The view change follows the same simplified certificate-carrying scheme
// as MinBftReplica (see that header and DESIGN.md), with PBFT-sized
// quorums (2f+1 view-change messages).
//
// Crash recovery (DESIGN.md §9) mirrors MinBftReplica: a durable image at
// checkpoint/view boundaries, STATE-REQUEST/STATE-REPLY checkpoint state
// transfer, a NEW-VIEW execution floor, and primacy deferral below the
// reported stable frontier. PBFT has no trusted device, so there is no
// RECOVER announcement; instead an honest restarted *primary* must not
// reuse a sequence number it already assigned (that would be equivocation
// by amnesia — caught by the prepare phase, but a needless stall), so the
// primary journals (view, next sequence) durably on every propose.
#pragma once

#include <algorithm>
#include <deque>
#include <set>

#include "agreement/client.h"
#include "agreement/smr.h"
#include "sim/world.h"
#include "wire/router.h"

namespace unidir::agreement {

/// Accepted pre-prepare archived for view changes (same role as
/// MinBftVcEntry).
struct PbftVcEntry {
  ViewNum view = 0;
  SeqNum seq = 0;
  Command cmd;

  void encode(serde::Writer& w) const;
  static PbftVcEntry decode(serde::Reader& r);
};

/// PBFT's typed wire messages; defined in pbft.cpp, routed by tag through
/// the replica's wire::Router.
namespace pbft_wire {
struct PrePrepare;
struct Prepare;
struct Commit;
struct Checkpoint;
struct ViewChange;
struct NewView;
struct StateRequest;
struct StateReply;
struct BatchPrePrepare;
}  // namespace pbft_wire

class PbftReplica final : public sim::Process {
 public:
  struct Options {
    std::vector<ProcessId> replicas;  // ids in rank order; includes self
    std::size_t f = 0;
    Time view_change_timeout = 300;
    SeqNum checkpoint_interval = 16;
    /// Max client requests amortized into one slot. With the defaults
    /// (batch_size = 1, pipeline_depth = 1) the replica runs the original
    /// one-command-per-slot wire protocol bit-for-bit; any other setting
    /// switches proposals to BATCH-PRE-PREPARE, where the PREPARE/COMMIT
    /// votes carry the batch digest.
    std::size_t batch_size = 1;
    /// How long (ticks) a non-empty partial batch may wait for more
    /// requests before the primary flushes it anyway. 0 = never hold.
    Time batch_timeout = 4;
    /// Max proposed-but-unexecuted slots the primary keeps in flight.
    std::size_t pipeline_depth = 1;
  };

  PbftReplica(Options options, std::unique_ptr<StateMachine> machine);

  ViewNum view() const { return view_; }
  bool is_primary() const { return primary_of(view_) == id(); }
  const ExecutionLog& execution_log() const { return log_; }
  std::uint64_t executed_count() const { return log_.size(); }
  crypto::Digest state_digest() const { return machine_->digest(); }
  std::uint64_t stable_checkpoint() const { return stable_checkpoint_; }
  std::uint64_t view_changes_seen() const { return view_changes_; }
  /// Times this replica came back from a crash.
  std::uint64_t recoveries() const { return recoveries_; }
  /// Slots retained for view-change reports (pruned below stable).
  std::size_t vc_archive_size() const { return vc_archive_.size(); }

  /// Builds a signed PRE-PREPARE wire message outside any replica —
  /// exposed so adversarial tests can drive Byzantine primaries by hand.
  static Bytes encode_preprepare_for_test(const crypto::Signer& signer,
                                          ViewNum view, SeqNum seq,
                                          const Command& cmd);
  /// Batched analogue: one signature over the batch digest, so tests can
  /// plant batches (including malformed ones).
  static Bytes encode_batch_preprepare_for_test(
      const crypto::Signer& signer, ViewNum view, SeqNum seq,
      const std::vector<Command>& cmds);

 protected:
  void on_start() override;
  void on_recover(sim::DurableStore& durable) override;

 private:
  struct Slot {
    std::vector<Command> cmds;  // the batch, in execution order (size 1 unbatched)
    Bytes digest;  // digest of the command (or batch), as voted on
    bool have_preprepare = false;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool executed = false;
    Time accepted_at = 0;  // when this replica first saw the pre-prepare
    std::map<Bytes, std::set<ProcessId>> prepares;  // digest -> voters
    std::map<Bytes, std::set<ProcessId>> commits;
  };

  bool batched() const {
    return options_.batch_size > 1 || options_.pipeline_depth > 1;
  }

  ProcessId primary_of(ViewNum v) const {
    return options_.replicas[static_cast<std::size_t>(v) %
                             options_.replicas.size()];
  }
  std::size_t n() const { return options_.replicas.size(); }
  bool is_replica(ProcessId p) const;

  void on_request(ProcessId from, Command cmd);
  void handle_preprepare(ProcessId from, pbft_wire::PrePrepare pp);
  void handle_batch_preprepare(ProcessId from,
                               pbft_wire::BatchPrePrepare pp);
  void handle_prepare(ProcessId from, pbft_wire::Prepare v);
  void handle_commit(ProcessId from, pbft_wire::Commit v);
  void handle_checkpoint(ProcessId from, pbft_wire::Checkpoint cp);
  void handle_view_change(ProcessId from, pbft_wire::ViewChange vc);
  void handle_new_view(ProcessId from, pbft_wire::NewView nv);
  void handle_state_request(ProcessId from, pbft_wire::StateRequest req);
  void handle_state_reply(ProcessId from, pbft_wire::StateReply rep);

  // crash recovery (see DESIGN.md §9)
  void persist();
  /// Journals (view, next sequence) on every propose, so a restarted
  /// honest primary never reassigns a used sequence number.
  void persist_journal();
  void prune_stable();
  void note_checkpoint_vote(std::uint64_t executed, const Bytes& digest,
                            ProcessId voter);
  void install_bundle(const pbft_wire::StateReply& b);
  bool needs_state() const;
  void begin_state_sync();
  void send_state_request();
  void arm_state_retry();

  /// Same role as MinBftReplica::when_in_view: run now if `view` is
  /// current and stable, buffer for a future view, drop if past.
  void when_in_view(ViewNum view, std::function<void()> action);

  void propose(const Command& cmd);
  /// Batched proposal path (see Options::batch_size): queue admission,
  /// flush policy, and the BATCH-PRE-PREPARE broadcast itself.
  void enqueue_batch(const Command& cmd);
  void maybe_flush_batch();
  void propose_batch(std::vector<Command> cmds);
  /// Proposed-but-unexecuted slots (the primary's in-flight window).
  std::size_t inflight_slots() const {
    return next_propose_seq_ > next_exec_seq_
               ? static_cast<std::size_t>(next_propose_seq_ - next_exec_seq_)
               : 0;
  }
  void step(SeqNum seq);
  void try_execute();
  void execute(Slot& slot, SeqNum seq);
  void reply_to(const Command& cmd, const Bytes& result);
  void maybe_checkpoint();

  void arm_request_timer(const Command& cmd);
  void start_view_change(ViewNum target);
  /// Gives up an unsupported view-change attempt and rejoins the current
  /// view (replaying the messages buffered during the attempt).
  void abandon_view_change();
  void maybe_assume_primacy(ViewNum target);
  void enter_view(ViewNum v);

  Options options_;
  std::unique_ptr<StateMachine> machine_;
  Bytes initial_snapshot_;  // pristine machine state, for blank recoveries

  /// Decode boundaries: client requests, and replica-to-replica protocol
  /// traffic (with a replicas-only admission filter).
  wire::Router request_router_;
  wire::Router protocol_router_;

  ViewNum view_ = 0;
  bool in_view_change_ = false;
  ViewNum vc_target_ = 0;
  // Consecutive failed view-change attempts since the last successful view
  // entry; doubles the view-change timers up to 64x (see MinBftReplica).
  std::uint32_t vc_backoff_ = 0;
  Time vc_timeout() const {
    return options_.view_change_timeout
           << std::min<std::uint32_t>(vc_backoff_, 6);
  }

  std::map<SeqNum, Slot> slots_;  // current-view slots by sequence number
  SeqNum next_propose_seq_ = 1;   // primary's next sequence number
  SeqNum next_exec_seq_ = 1;      // next slot to execute (per view)

  std::map<std::pair<ProcessId, std::uint64_t>, Command> pending_;
  ExecutionDeduper dedup_;
  ExecutionLog log_;

  // Batched-mode primary state (same semantics as MinBftReplica's).
  std::deque<Command> batch_queue_;
  std::set<std::pair<ProcessId, std::uint64_t>> queued_keys_;
  std::set<std::pair<ProcessId, std::uint64_t>> slotted_keys_;
  bool batch_ripe_ = false;
  bool batch_timer_armed_ = false;
  bool batch_flushing_ = false;

  std::uint64_t stable_checkpoint_ = 0;
  std::map<std::uint64_t, std::map<Bytes, std::set<ProcessId>>> cp_votes_;

  struct VcReport {
    std::vector<PbftVcEntry> entries;
    std::vector<Command> pending;
    std::uint64_t stable = 0;  // reporter's stable checkpoint
  };
  /// Every accepted slot not yet covered by a stable checkpoint.
  std::vector<PbftVcEntry> vc_archive_;
  std::map<ViewNum, std::map<ProcessId, VcReport>> vc_msgs_;
  std::map<ViewNum, std::vector<std::function<void()>>> view_waiting_;
  std::uint64_t view_changes_ = 0;

  // Crash-recovery state (same semantics as MinBftReplica's).
  std::uint64_t recoveries_ = 0;
  std::uint64_t exec_floor_ = 0;
  std::optional<ViewNum> deferred_primacy_;
  bool state_probe_ = false;
  unsigned state_attempts_ = 0;

  // Observability anchors: virtual-time starts for in-progress episodes,
  // recorded into World::metrics() when the episode ends.
  Time vc_started_at_ = 0;
  Time state_sync_started_at_ = 0;
  Time last_checkpoint_at_ = 0;
};

}  // namespace unidir::agreement
