#include "agreement/dolev_strong.h"

#include "common/check.h"
#include "common/serde.h"

namespace unidir::agreement {

namespace {

struct ChainWire {
  static constexpr wire::MsgDesc kDesc{1, "dolev-strong-chain"};

  Bytes value;
  std::vector<std::pair<ProcessId, crypto::Signature>> signatures;

  void encode(serde::Writer& w) const {
    w.bytes(value);
    serde::write(w, signatures);
  }
  static ChainWire decode(serde::Reader& r) {
    ChainWire c;
    c.value = r.bytes();
    c.signatures =
        serde::read<std::vector<std::pair<ProcessId, crypto::Signature>>>(r);
    return c;
  }
};

}  // namespace

DolevStrongBroadcast::DolevStrongBroadcast(sim::Process& host,
                                           Options options)
    : host_(host), options_(options), router_(host, options.channel) {
  UNIDIR_REQUIRE(options_.round_length >= 2);
  // The envelope's `from` is irrelevant: a chain speaks for itself via
  // its signatures (any process may relay any chain).
  router_.on<ChainWire>([this](ProcessId, ChainWire wire) {
    on_chain(Chain{std::move(wire.value), std::move(wire.signatures)});
  });
}

Bytes DolevStrongBroadcast::link_binding(const Bytes& value) const {
  serde::Writer w;
  w.str("dolev-strong");
  w.uvarint(options_.sender);
  w.uvarint(options_.channel);
  w.bytes(value);
  return w.take();
}

void DolevStrongBroadcast::run(std::optional<Bytes> input,
                               CommitFn on_commit) {
  UNIDIR_REQUIRE_MSG(host_.world().now() == 0,
                     "Dolev-Strong rounds are aligned from virtual time 0");
  UNIDIR_REQUIRE_MSG((host_.id() == options_.sender) == input.has_value(),
                     "exactly the designated sender provides an input");
  on_commit_ = std::move(on_commit);

  if (input) {
    // Round 1: the sender's one-signature chain. The sender extracts its
    // own value immediately (it trivially accepted it).
    Chain chain;
    chain.value = std::move(*input);
    chain.signatures.emplace_back(
        host_.id(), host_.signer().sign(link_binding(chain.value)));
    extracted_.insert(chain.value);
    router_.broadcast(ChainWire{chain.value, chain.signatures});
  }

  // End-of-round processing for rounds 1..f+1.
  for (std::size_t i = 1; i <= options_.f + 1; ++i)
    host_.set_timer(static_cast<Time>(i) * options_.round_length,
                    [this, i] { end_of_round(i); });
}

bool DolevStrongBroadcast::valid_chain(const Chain& chain,
                                       std::size_t min_len) const {
  const sim::World& w = host_.world();
  const Bytes binding = link_binding(chain.value);
  std::set<ProcessId> signers;
  for (const auto& [pid, sig] : chain.signatures) {
    if (pid >= w.size()) return false;
    if (sig.key != w.key_of(pid)) return false;
    if (!w.keys().verify(sig, binding)) return false;
    signers.insert(pid);
  }
  if (!signers.contains(options_.sender)) return false;
  if (signers.contains(host_.id())) return false;  // a loop adds nothing
  return signers.size() >= min_len;
}

void DolevStrongBroadcast::on_chain(Chain chain) {
  if (committed_) return;
  // The round this message arrived in (1-based; boundaries belong to the
  // next round, matching the lock-step windows).
  const Time now = host_.world().now();
  const std::size_t round =
      static_cast<std::size_t>(now / options_.round_length) + 1;
  if (round > options_.f + 1) return;  // too late to matter

  // The classic acceptance rule: a chain seen in round r needs >= r
  // distinct signatures, the sender's among them.
  if (!valid_chain(chain, round)) return;
  if (extracted_.contains(chain.value)) return;
  // Relaying more than two distinct values changes no one's outcome
  // (everyone already commits ⊥ at two) — the standard traffic bound.
  if (extracted_.size() >= 2) return;
  extracted_.insert(chain.value);
  pending_relays_.push_back(std::move(chain));
}

void DolevStrongBroadcast::end_of_round(std::size_t round) {
  if (committed_) return;
  if (round >= options_.f + 1) {
    finish();
    return;
  }
  // Start of round `round + 1`: relay every newly extracted value with our
  // signature appended.
  std::vector<Chain> relays = std::move(pending_relays_);
  pending_relays_.clear();
  for (Chain& chain : relays) relay(chain);
}

void DolevStrongBroadcast::relay(const Chain& chain) {
  Chain extended = chain;
  extended.signatures.emplace_back(
      host_.id(), host_.signer().sign(link_binding(extended.value)));
  router_.broadcast(ChainWire{extended.value, extended.signatures});
}

void DolevStrongBroadcast::finish() {
  committed_ = true;
  if (extracted_.size() == 1) {
    value_ = *extracted_.begin();
  } else {
    value_ = std::nullopt;  // ⊥: silence or proven equivocation
  }
  host_.output("ds-commit", value_ ? *value_ : bytes_of("<bot>"));
  if (on_commit_) on_commit_(value_);
}

// ---- strong agreement -------------------------------------------------------------

StrongAgreement::StrongAgreement(sim::Process& host, Options options)
    : host_(host), options_(options) {
  UNIDIR_REQUIRE_MSG(options_.n >= 2 * options_.f + 1,
                     "strong agreement needs n >= 2f+1 (under synchrony)");
  for (std::size_t s = 0; s < options_.n; ++s) {
    DolevStrongBroadcast::Options o;
    o.sender = static_cast<ProcessId>(s);
    o.f = options_.f;
    o.round_length = options_.round_length;
    o.channel = options_.channel_base + static_cast<sim::Channel>(s);
    instances_.push_back(
        std::make_unique<DolevStrongBroadcast>(host, o));
  }
}

void StrongAgreement::run(Bytes input, CommitFn on_commit) {
  on_commit_ = std::move(on_commit);
  for (std::size_t s = 0; s < options_.n; ++s) {
    const bool mine = static_cast<ProcessId>(s) == host_.id();
    instances_[s]->run(
        mine ? std::optional<Bytes>(input) : std::nullopt,
        [this](const std::optional<Bytes>& v) {
          if (v) ++tally_[*v];
          ++done_;
          maybe_finish();
        });
  }
}

void StrongAgreement::maybe_finish() {
  if (committed_ || done_ < options_.n) return;
  committed_ = true;
  // Plurality vote over the broadcast outcomes; deterministic tie-break
  // by byte order. With n >= 2f+1 and all correct inputs equal to v, v
  // collects >= n−f > f votes while no other value can exceed f.
  std::size_t best = 0;
  for (const auto& [v, count] : tally_) {
    if (count > best || (count == best && (value_.empty() || v < value_))) {
      best = count;
      value_ = v;
    }
  }
  host_.output("sa-commit", value_);
  if (on_commit_) on_commit_(value_);
}

}  // namespace unidir::agreement
