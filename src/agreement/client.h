// SMR client: submits operations to a replica group and accepts a result
// once f+1 replicas report the same reply (at least one of them correct).
// Protocol-agnostic: works against MinBFT and PBFT alike.
//
// Supports closed-loop operation (one request at a time, the default) and
// pipelining (`max_outstanding` > 1) for throughput experiments.
#pragma once

#include <deque>
#include <functional>
#include <set>

#include "agreement/smr.h"
#include "sim/world.h"
#include "wire/channels.h"
#include "wire/router.h"

namespace unidir::agreement {

/// Channel conventions shared by replicas and clients. The values live in
/// wire/channels.h, the library-wide channel registry.
inline constexpr sim::Channel kClientRequestCh = wire::kClientRequestCh;
inline constexpr sim::Channel kClientReplyCh = wire::kClientReplyCh;
inline constexpr sim::Channel kMinBftCh = wire::kMinBftCh;
inline constexpr sim::Channel kPbftCh = wire::kPbftCh;

class SmrClient final : public sim::Process {
 public:
  struct Options {
    std::vector<ProcessId> replicas;
    std::size_t f = 0;
    /// Re-broadcast an unanswered request after this many ticks
    /// (0 disables). Resends are what let a request survive a primary
    /// that crashed before proposing it. Consecutive resends of one
    /// request back off exponentially from this base.
    Time resend_timeout = 400;
    /// Total send attempts per request before the client gives up
    /// (0 = retry forever). Bounding attempts is what lets a run quiesce
    /// when a quorum is durably unreachable.
    std::size_t max_attempts = 0;
    /// Upper bound, in ticks, on the deterministic random jitter added to
    /// every backed-off resend (0 = none, the default — existing goldens
    /// hold). Jitter is drawn from the process rng, so sim runs stay
    /// seed-reproducible; its job is to de-synchronize a client fleet
    /// hammering a recovering cluster in lockstep.
    Time resend_jitter = 0;
    /// Requests allowed in flight simultaneously (pipeline depth).
    std::size_t max_outstanding = 1;
    /// Think time: ticks to wait after a request completes (or is
    /// abandoned) before issuing the next queued one (0 = back-to-back,
    /// the default). Real-mode chaos runs use this to stretch a workload
    /// across a kill/restart window instead of finishing in one burst.
    Time think_ticks = 0;
  };

  explicit SmrClient(Options options);

  using DoneFn = std::function<void(const Bytes& result)>;

  /// Submits an operation; issued when a pipeline slot frees up.
  void submit(Bytes op, DoneFn done = nullptr);

  std::uint64_t completed() const { return completed_; }
  /// Requests abandoned after exhausting Options::max_attempts.
  std::uint64_t gave_up() const { return gave_up_; }
  std::size_t outstanding() const { return in_flight_.size(); }
  /// Per-request latency in virtual ticks, completion order.
  const std::vector<Time>& latencies() const { return latencies_; }

 protected:
  void on_start() override;

 private:
  struct QueuedOp {
    Bytes op;
    DoneFn done;
  };
  struct InFlight {
    Command cmd;
    DoneFn done;
    Time issued_at = 0;
    std::size_t attempts = 0;  // sends so far (first send included)
    std::map<Bytes, std::set<ProcessId>> votes;  // result -> replicas
  };

  void issue_ready();
  void issue_after_think();
  void send_request(const Command& cmd);
  void arm_resend(std::uint64_t request_id);
  void on_reply(ProcessId from, Reply reply);

  Options options_;
  wire::Router reply_router_;
  std::deque<QueuedOp> queue_;
  bool started_ = false;
  std::uint64_t next_request_id_ = 0;
  std::map<std::uint64_t, InFlight> in_flight_;  // by request_id
  std::uint64_t completed_ = 0;
  std::uint64_t gave_up_ = 0;
  std::vector<Time> latencies_;
};

}  // namespace unidir::agreement
