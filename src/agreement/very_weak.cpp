#include "agreement/very_weak.h"

namespace unidir::agreement {

VeryWeakAgreement::VeryWeakAgreement(sim::Process& host,
                                     rounds::RoundDriver& driver)
    : host_(host), driver_(driver) {}

void VeryWeakAgreement::run(Bytes input, CommitFn on_commit) {
  driver_.start_round(
      input, [this, input, on_commit = std::move(on_commit)](
                 RoundNum, const std::vector<rounds::Received>& received) {
        committed_ = true;
        bool conflicting = false;
        for (const rounds::Received& r : received)
          if (r.message != input) conflicting = true;
        value_ = conflicting ? std::nullopt : std::optional<Bytes>(input);
        host_.output("vwa-commit", value_ ? *value_ : bytes_of("<bot>"));
        if (on_commit) on_commit(value_);
      });
}

}  // namespace unidir::agreement
