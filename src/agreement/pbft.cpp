#include "agreement/pbft.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"

namespace unidir::agreement {

namespace {

Bytes command_digest(const Command& cmd) {
  const crypto::Digest d = crypto::Sha256::hash(serde::encode(cmd));
  return crypto::digest_bytes(d);
}

Bytes preprepare_binding(ViewNum view, SeqNum seq, const Command& cmd) {
  serde::Writer w;
  w.str("pbft-pp");
  w.uvarint(view);
  w.uvarint(seq);
  cmd.encode(w);
  return w.take();
}

/// Digest of the whole batch; the PREPARE/COMMIT votes of a batched slot
/// carry this instead of a single command's digest, so batch boundaries
/// are part of what the quorum agrees on.
Bytes batch_digest(const std::vector<Command>& cmds) {
  serde::Writer w;
  serde::write(w, cmds);
  return crypto::digest_bytes(crypto::Sha256::hash(w.take()));
}

Bytes batch_preprepare_binding(ViewNum view, SeqNum seq,
                               const std::vector<Command>& cmds) {
  serde::Writer w;
  w.str("pbft-bpp");
  w.uvarint(view);
  w.uvarint(seq);
  w.bytes(batch_digest(cmds));
  return w.take();
}

Bytes vote_binding(std::string_view phase, ViewNum view, SeqNum seq,
                   const Bytes& digest) {
  serde::Writer w;
  w.str(phase);
  w.uvarint(view);
  w.uvarint(seq);
  w.bytes(digest);
  return w.take();
}

Bytes checkpoint_binding(std::uint64_t executed, const Bytes& digest) {
  serde::Writer w;
  w.str("pbft-cp");
  w.uvarint(executed);
  w.bytes(digest);
  return w.take();
}

Bytes view_change_binding(ViewNum target, std::uint64_t stable,
                          const std::vector<PbftVcEntry>& entries,
                          const std::vector<Command>& pending) {
  serde::Writer w;
  w.str("pbft-vc");
  w.uvarint(target);
  w.uvarint(stable);
  serde::write(w, entries);
  serde::write(w, pending);
  return w.take();
}

constexpr std::string_view kDurableKey = "pbft/state";
constexpr std::string_view kJournalKey = "pbft/journal";
constexpr unsigned kMaxStateAttempts = 4;

/// Everything a replica writes to its DurableStore: the recovery image.
struct DurableImage {
  ViewNum view = 0;
  SeqNum next_exec = 0;
  std::uint64_t stable = 0;
  std::uint64_t exec_floor = 0;
  ExecutionLog log;
  Bytes machine_snapshot;
  ExecutionDeduper dedup;

  void encode(serde::Writer& w) const {
    w.uvarint(view);
    w.uvarint(next_exec);
    w.uvarint(stable);
    w.uvarint(exec_floor);
    log.encode(w);
    w.bytes(machine_snapshot);
    dedup.encode(w);
  }
  static DurableImage decode(serde::Reader& r) {
    DurableImage img;
    img.view = r.uvarint();
    img.next_exec = r.uvarint();
    img.stable = r.uvarint();
    img.exec_floor = r.uvarint();
    img.log = ExecutionLog::decode(r);
    img.machine_snapshot = r.bytes();
    img.dedup = ExecutionDeduper::decode(r);
    return img;
  }
};

}  // namespace

namespace pbft_wire {

struct PrePrepare {
  static constexpr wire::MsgDesc kDesc{1, "pbft-pre-prepare"};

  ViewNum view = 0;
  SeqNum seq = 0;
  Command cmd;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(view);
    w.uvarint(seq);
    cmd.encode(w);
    sig.encode(w);
  }
  static PrePrepare decode(serde::Reader& r) {
    PrePrepare p;
    p.view = r.uvarint();
    p.seq = r.uvarint();
    p.cmd = Command::decode(r);
    p.sig = crypto::Signature::decode(r);
    return p;
  }
};

/// PREPARE and COMMIT share a shape; each phase is its own tagged type
/// over the common body.
struct VoteBody {
  ViewNum view = 0;
  SeqNum seq = 0;
  Bytes digest;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(view);
    w.uvarint(seq);
    w.bytes(digest);
    sig.encode(w);
  }
  static VoteBody decode(serde::Reader& r) {
    VoteBody v;
    v.view = r.uvarint();
    v.seq = r.uvarint();
    v.digest = r.bytes();
    v.sig = crypto::Signature::decode(r);
    return v;
  }
};

struct Prepare : VoteBody {
  static constexpr wire::MsgDesc kDesc{2, "pbft-prepare"};
  static Prepare decode(serde::Reader& r) { return {VoteBody::decode(r)}; }
};

struct Commit : VoteBody {
  static constexpr wire::MsgDesc kDesc{3, "pbft-commit"};
  static Commit decode(serde::Reader& r) { return {VoteBody::decode(r)}; }
};

struct Checkpoint {
  static constexpr wire::MsgDesc kDesc{4, "pbft-checkpoint"};

  std::uint64_t executed = 0;
  Bytes digest;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(executed);
    w.bytes(digest);
    sig.encode(w);
  }
  static Checkpoint decode(serde::Reader& r) {
    Checkpoint c;
    c.executed = r.uvarint();
    c.digest = r.bytes();
    c.sig = crypto::Signature::decode(r);
    return c;
  }
};

struct ViewChange {
  static constexpr wire::MsgDesc kDesc{5, "pbft-view-change"};

  ViewNum target = 0;
  std::uint64_t stable = 0;  // reporter's stable checkpoint
  std::vector<PbftVcEntry> entries;
  std::vector<Command> pending;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(target);
    w.uvarint(stable);
    serde::write(w, entries);
    serde::write(w, pending);
    sig.encode(w);
  }
  static ViewChange decode(serde::Reader& r) {
    ViewChange v;
    v.target = r.uvarint();
    v.stable = r.uvarint();
    v.entries = serde::read<std::vector<PbftVcEntry>>(r);
    v.pending = serde::read<std::vector<Command>>(r);
    v.sig = crypto::Signature::decode(r);
    return v;
  }
};

struct NewView {
  static constexpr wire::MsgDesc kDesc{6, "pbft-new-view"};

  ViewNum target = 0;
  std::uint64_t executed = 0;  // the new primary's execution count
  crypto::Signature sig;

  static Bytes binding(ViewNum target, std::uint64_t executed) {
    serde::Writer w;
    w.str("pbft-nv");
    w.uvarint(target);
    w.uvarint(executed);
    return w.take();
  }

  void encode(serde::Writer& w) const {
    w.uvarint(target);
    w.uvarint(executed);
    sig.encode(w);
  }
  static NewView decode(serde::Reader& r) {
    NewView v;
    v.target = r.uvarint();
    v.executed = r.uvarint();
    v.sig = crypto::Signature::decode(r);
    return v;
  }
};

struct StateRequest {
  static constexpr wire::MsgDesc kDesc{7, "pbft-state-request"};

  std::uint64_t have = 0;  // requester's execution count

  void encode(serde::Writer& w) const { w.uvarint(have); }
  static StateRequest decode(serde::Reader& r) {
    StateRequest req;
    req.have = r.uvarint();
    return req;
  }
};

struct StateReply {
  static constexpr wire::MsgDesc kDesc{8, "pbft-state-reply"};

  ViewNum view = 0;
  SeqNum next_exec = 0;
  std::uint64_t stable = 0;
  std::uint64_t exec_floor = 0;
  StateBundle core;
  crypto::Signature sig;  // over ("pbft-state", body)

  void encode_body(serde::Writer& w) const {
    w.uvarint(view);
    w.uvarint(next_exec);
    w.uvarint(stable);
    w.uvarint(exec_floor);
    core.encode(w);
  }
  Bytes binding() const {
    serde::Writer w;
    w.str("pbft-state");
    encode_body(w);
    return w.take();
  }

  void encode(serde::Writer& w) const {
    encode_body(w);
    sig.encode(w);
  }
  static StateReply decode(serde::Reader& r) {
    StateReply rep;
    rep.view = r.uvarint();
    rep.next_exec = r.uvarint();
    rep.stable = r.uvarint();
    rep.exec_floor = r.uvarint();
    rep.core = StateBundle::decode(r);
    rep.sig = crypto::Signature::decode(r);
    return rep;
  }
};

/// Batched-mode PRE-PREPARE: one signed proposal covers the whole command
/// vector; the quorum's PREPARE/COMMIT votes then carry the batch digest.
struct BatchPrePrepare {
  static constexpr wire::MsgDesc kDesc{9, "pbft-batch-pre-prepare"};

  ViewNum view = 0;
  SeqNum seq = 0;
  std::vector<Command> cmds;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(view);
    w.uvarint(seq);
    serde::write(w, cmds);
    sig.encode(w);
  }
  static BatchPrePrepare decode(serde::Reader& r) {
    BatchPrePrepare p;
    p.view = r.uvarint();
    p.seq = r.uvarint();
    p.cmds = serde::read<std::vector<Command>>(r);
    p.sig = crypto::Signature::decode(r);
    return p;
  }
};

}  // namespace pbft_wire

using namespace pbft_wire;

void PbftVcEntry::encode(serde::Writer& w) const {
  w.uvarint(view);
  w.uvarint(seq);
  cmd.encode(w);
}

PbftVcEntry PbftVcEntry::decode(serde::Reader& r) {
  PbftVcEntry e;
  e.view = r.uvarint();
  e.seq = r.uvarint();
  e.cmd = Command::decode(r);
  return e;
}

Bytes PbftReplica::encode_preprepare_for_test(const crypto::Signer& signer,
                                              ViewNum view, SeqNum seq,
                                              const Command& cmd) {
  PrePrepare pp;
  pp.view = view;
  pp.seq = seq;
  pp.cmd = cmd;
  pp.sig = signer.sign(preprepare_binding(view, seq, cmd));
  return wire::encode_tagged(pp);
}

Bytes PbftReplica::encode_batch_preprepare_for_test(
    const crypto::Signer& signer, ViewNum view, SeqNum seq,
    const std::vector<Command>& cmds) {
  BatchPrePrepare pp;
  pp.view = view;
  pp.seq = seq;
  pp.cmds = cmds;
  pp.sig = signer.sign(batch_preprepare_binding(view, seq, cmds));
  return wire::encode_tagged(pp);
}

PbftReplica::PbftReplica(Options options,
                         std::unique_ptr<StateMachine> machine)
    : options_(std::move(options)),
      machine_(std::move(machine)),
      request_router_(*this, kClientRequestCh),
      protocol_router_(*this, kPbftCh) {
  UNIDIR_REQUIRE(machine_ != nullptr);
  UNIDIR_REQUIRE_MSG(options_.replicas.size() >= 3 * options_.f + 1,
                     "PBFT requires n >= 3f+1");
  request_router_.on<Command>([this](ProcessId from, Command cmd) {
    on_request(from, std::move(cmd));
  });
  protocol_router_.set_peer_filter(
      [this](ProcessId p) { return is_replica(p); });
  protocol_router_.on<PrePrepare>([this](ProcessId from, PrePrepare pp) {
    handle_preprepare(from, std::move(pp));
  });
  protocol_router_.on<Prepare>([this](ProcessId from, Prepare v) {
    handle_prepare(from, std::move(v));
  });
  protocol_router_.on<Commit>([this](ProcessId from, Commit v) {
    handle_commit(from, std::move(v));
  });
  protocol_router_.on<Checkpoint>([this](ProcessId from, Checkpoint cp) {
    handle_checkpoint(from, std::move(cp));
  });
  protocol_router_.on<ViewChange>([this](ProcessId from, ViewChange vc) {
    handle_view_change(from, std::move(vc));
  });
  protocol_router_.on<NewView>([this](ProcessId from, NewView nv) {
    handle_new_view(from, std::move(nv));
  });
  protocol_router_.on<StateRequest>([this](ProcessId from, StateRequest req) {
    handle_state_request(from, std::move(req));
  });
  protocol_router_.on<StateReply>([this](ProcessId from, StateReply rep) {
    handle_state_reply(from, std::move(rep));
  });
  protocol_router_.on<BatchPrePrepare>(
      [this](ProcessId from, BatchPrePrepare pp) {
        handle_batch_preprepare(from, std::move(pp));
      });
  initial_snapshot_ = machine_->snapshot();
}

void PbftReplica::on_start() {
  UNIDIR_CHECK_MSG(is_replica(id()),
                   "replica id must appear in Options::replicas");
}

bool PbftReplica::is_replica(ProcessId p) const {
  return std::find(options_.replicas.begin(), options_.replicas.end(), p) !=
         options_.replicas.end();
}

// ---- client requests -----------------------------------------------------------

void PbftReplica::on_request(ProcessId from, Command cmd) {
  if (cmd.client != from) return;
  if (const auto cached = dedup_.lookup(cmd)) {
    reply_to(cmd, *cached);
    return;
  }
  const bool fresh = pending_.emplace(cmd.key(), cmd).second;
  if (fresh) arm_request_timer(cmd);
  if (!in_view_change_ && is_primary()) {
    if (batched()) {
      enqueue_batch(cmd);
      maybe_flush_batch();
    } else {
      propose(cmd);
    }
  }
}

void PbftReplica::propose(const Command& cmd) {
  for (const auto& [seq, slot] : slots_)
    for (const Command& slotted : slot.cmds)
      if (slotted.key() == cmd.key()) return;

  PrePrepare pp;
  pp.view = view_;
  pp.seq = next_propose_seq_++;
  pp.cmd = cmd;
  pp.sig = signer().sign(preprepare_binding(pp.view, pp.seq, cmd));
  // Journal before the broadcast can take effect: once any replica saw
  // this sequence number, we must never assign it again, restart or not.
  persist_journal();
  protocol_router_.broadcast(pp);

  Slot& slot = slots_[pp.seq];
  slot.cmds = {cmd};
  slot.digest = command_digest(cmd);
  slot.have_preprepare = true;
  slot.accepted_at = world().now();
  vc_archive_.push_back({view_, pp.seq, cmd});
  step(pp.seq);
}

void PbftReplica::enqueue_batch(const Command& cmd) {
  // Admission, not dedup-against-execution: view-change re-proposals must
  // re-batch even already-executed commands (see maybe_assume_primacy).
  if (slotted_keys_.contains(cmd.key())) return;
  if (!queued_keys_.insert(cmd.key()).second) return;
  batch_queue_.push_back(cmd);
}

void PbftReplica::maybe_flush_batch() {
  if (!batched() || batch_flushing_) return;
  if (in_view_change_ || !is_primary()) return;
  batch_flushing_ = true;
  while (!batch_queue_.empty() &&
         inflight_slots() < options_.pipeline_depth &&
         (batch_queue_.size() >= options_.batch_size ||
          options_.batch_timeout == 0 || batch_ripe_)) {
    std::vector<Command> cmds;
    const std::size_t take =
        std::min<std::size_t>(options_.batch_size, batch_queue_.size());
    cmds.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      queued_keys_.erase(batch_queue_.front().key());
      cmds.push_back(std::move(batch_queue_.front()));
      batch_queue_.pop_front();
    }
    propose_batch(std::move(cmds));
  }
  batch_flushing_ = false;
  if (batch_queue_.empty()) {
    batch_ripe_ = false;
    return;
  }
  // A partial batch waits for batch_timeout before going out underfull;
  // once ripe it (and anything queued behind a full pipeline) flushes at
  // the next opportunity.
  if (!batch_ripe_ && !batch_timer_armed_) {
    batch_timer_armed_ = true;
    set_timer(options_.batch_timeout, [this] {
      batch_timer_armed_ = false;
      if (batch_queue_.empty()) return;
      batch_ripe_ = true;
      maybe_flush_batch();
    });
  }
}

void PbftReplica::propose_batch(std::vector<Command> cmds) {
  BatchPrePrepare pp;
  pp.view = view_;
  pp.seq = next_propose_seq_++;
  pp.cmds = std::move(cmds);
  pp.sig = signer().sign(batch_preprepare_binding(pp.view, pp.seq, pp.cmds));
  // Journal before the broadcast can take effect (see propose()).
  persist_journal();
  protocol_router_.broadcast(pp);

  Slot& slot = slots_[pp.seq];
  slot.cmds = pp.cmds;
  slot.digest = batch_digest(pp.cmds);
  slot.have_preprepare = true;
  slot.accepted_at = world().now();
  for (const Command& cmd : pp.cmds) {
    vc_archive_.push_back({view_, pp.seq, cmd});
    slotted_keys_.insert(cmd.key());
  }
  step(pp.seq);
}

// ---- protocol messages -----------------------------------------------------------

void PbftReplica::handle_preprepare(ProcessId from, PrePrepare pp) {
  if (from == id() || pp.seq == 0) return;
  if (pp.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(pp.sig,
                             preprepare_binding(pp.view, pp.seq, pp.cmd)))
    return;
  when_in_view(pp.view, [this, from, pp]() {
    if (from != primary_of(view_)) return;
    Slot& slot = slots_[pp.seq];
    if (slot.have_preprepare) return;  // first pre-prepare per slot wins
    slot.cmds = {pp.cmd};
    slot.digest = command_digest(pp.cmd);
    slot.have_preprepare = true;
    slot.accepted_at = world().now();
    vc_archive_.push_back({view_, pp.seq, pp.cmd});

    if (!dedup_.lookup(pp.cmd) &&
        pending_.emplace(pp.cmd.key(), pp.cmd).second)
      arm_request_timer(pp.cmd);

    if (!slot.sent_prepare) {
      slot.sent_prepare = true;
      slot.prepares[slot.digest].insert(id());
      Prepare v;
      v.view = view_;
      v.seq = pp.seq;
      v.digest = slot.digest;
      v.sig = signer().sign(vote_binding("pbft-prepare", v.view, v.seq,
                                         v.digest));
      protocol_router_.broadcast(v);
    }
    step(pp.seq);
  });
}

void PbftReplica::handle_batch_preprepare(ProcessId from, BatchPrePrepare pp) {
  if (from == id() || pp.seq == 0) return;
  if (pp.cmds.empty()) return;  // an empty batch orders nothing
  if (pp.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(
          pp.sig, batch_preprepare_binding(pp.view, pp.seq, pp.cmds)))
    return;
  when_in_view(pp.view, [this, from, pp]() {
    if (from != primary_of(view_)) return;
    Slot& slot = slots_[pp.seq];
    if (slot.have_preprepare) return;  // first pre-prepare per slot wins
    slot.cmds = pp.cmds;
    slot.digest = batch_digest(pp.cmds);
    slot.have_preprepare = true;
    slot.accepted_at = world().now();
    for (const Command& cmd : pp.cmds) {
      vc_archive_.push_back({view_, pp.seq, cmd});
      if (batched()) slotted_keys_.insert(cmd.key());
      // Guard every batch member with a timer, as the singleton path does
      // for its one command.
      if (!dedup_.lookup(cmd) && pending_.emplace(cmd.key(), cmd).second)
        arm_request_timer(cmd);
    }

    if (!slot.sent_prepare) {
      slot.sent_prepare = true;
      slot.prepares[slot.digest].insert(id());
      Prepare v;
      v.view = view_;
      v.seq = pp.seq;
      v.digest = slot.digest;
      v.sig = signer().sign(vote_binding("pbft-prepare", v.view, v.seq,
                                         v.digest));
      protocol_router_.broadcast(v);
    }
    step(pp.seq);
  });
}

void PbftReplica::handle_prepare(ProcessId from, Prepare v) {
  if (from == id()) return;
  if (v.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(
          v.sig, vote_binding("pbft-prepare", v.view, v.seq, v.digest)))
    return;
  when_in_view(v.view, [this, from, v]() {
    if (from == primary_of(view_)) return;  // the primary never prepares
    slots_[v.seq].prepares[v.digest].insert(from);
    step(v.seq);
  });
}

void PbftReplica::handle_commit(ProcessId from, Commit v) {
  if (from == id()) return;
  if (v.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(
          v.sig, vote_binding("pbft-commit", v.view, v.seq, v.digest)))
    return;
  when_in_view(v.view, [this, from, v]() {
    slots_[v.seq].commits[v.digest].insert(from);
    step(v.seq);
  });
}

void PbftReplica::when_in_view(ViewNum view, std::function<void()> action) {
  if (view < view_) return;
  if (view == view_ && !in_view_change_) {
    action();
    return;
  }
  view_waiting_[view].push_back(std::move(action));
}

void PbftReplica::step(SeqNum seq) {
  auto it = slots_.find(seq);
  if (it == slots_.end()) return;
  Slot& slot = it->second;
  if (!slot.have_preprepare) return;

  // prepared: the pre-prepare plus 2f PREPAREs for the same digest
  // (the primary's pre-prepare stands in for its prepare).
  const bool prepared =
      slot.prepares[slot.digest].size() >= 2 * options_.f;
  if (prepared && !slot.sent_commit) {
    slot.sent_commit = true;
    slot.commits[slot.digest].insert(id());
    Commit v;
    v.view = view_;
    v.seq = seq;
    v.digest = slot.digest;
    v.sig = signer().sign(vote_binding("pbft-commit", v.view, v.seq,
                                       v.digest));
    protocol_router_.broadcast(v);
  }
  try_execute();
}

void PbftReplica::try_execute() {
  while (true) {
    auto it = slots_.find(next_exec_seq_);
    if (it == slots_.end()) break;
    Slot& slot = it->second;
    if (slot.executed) {
      ++next_exec_seq_;
      continue;
    }
    if (!slot.have_preprepare || !slot.sent_commit) break;
    if (slot.commits[slot.digest].size() < 2 * options_.f + 1) break;
    // Below a NEW-VIEW's execution floor, fresh commands wait for state
    // transfer (see MinBftReplica::try_execute). A batch executes only
    // once every member is settled or executable.
    if (log_.size() < exec_floor_) {
      const bool all_deduped =
          std::all_of(slot.cmds.begin(), slot.cmds.end(),
                      [this](const Command& cmd) {
                        return dedup_.lookup(cmd).has_value();
                      });
      if (!all_deduped) break;
    }
    // Advance before executing: execute() can persist() at a checkpoint
    // boundary, and the durable image must record the post-execution
    // cursor (see MinBftReplica::try_execute for the recovery hazard).
    const SeqNum seq = next_exec_seq_;
    ++next_exec_seq_;
    execute(slot, seq);
  }
  // Executions free pipeline room; admit whatever is queued behind it.
  if (batched()) maybe_flush_batch();
}

void PbftReplica::execute(Slot& slot, SeqNum seq) {
  slot.executed = true;
  if (batched()) {
    // Atomicity witness for the explorer (see the batch-atomicity
    // invariant); only emitted in batched mode, so unbatched transcripts
    // — and hence fingerprints — are unchanged.
    serde::Writer w;
    w.uvarint(view_);
    w.uvarint(seq);
    w.uvarint(slot.cmds.size());
    for (const Command& cmd : slot.cmds) {
      w.uvarint(cmd.client);
      w.uvarint(cmd.request_id);
    }
    output("smr-batch", w.take());
  }
  for (const Command& cmd : slot.cmds) {
    Bytes result;
    if (const auto cached = dedup_.lookup(cmd)) {
      // Exactly-once: re-proposed after a view change, or a retry that
      // landed in a later batch than its first commit.
      result = *cached;
    } else {
      result = machine_->apply(cmd.op);
      dedup_.record(cmd, result);
      log_.append({cmd, result});
      const Time latency = world().now() - slot.accepted_at;
      world().metrics().histogram("smr.commit_latency_ticks").record(latency);
      world().tracer().complete("commit", "smr", id(), slot.accepted_at,
                                latency, "log_index", log_.size());
      output("smr-exec", serde::encode(cmd));
      maybe_checkpoint();
    }
    pending_.erase(cmd.key());
    reply_to(cmd, result);
  }
}

void PbftReplica::reply_to(const Command& cmd, const Bytes& result) {
  Reply reply;
  reply.request_id = cmd.request_id;
  reply.result = result;
  wire::send(*this, cmd.client, kClientReplyCh, reply);
}

// ---- checkpoints -----------------------------------------------------------------

void PbftReplica::maybe_checkpoint() {
  if (options_.checkpoint_interval == 0) return;
  if (log_.size() % options_.checkpoint_interval != 0) return;
  Checkpoint cp;
  cp.executed = log_.size();
  cp.digest = crypto::digest_bytes(machine_->digest());
  cp.sig = signer().sign(checkpoint_binding(cp.executed, cp.digest));
  protocol_router_.broadcast(cp);
  // A checkpoint boundary is also the durability boundary (DESIGN.md §9).
  persist();
  note_checkpoint_vote(cp.executed, cp.digest, id());
}

void PbftReplica::handle_checkpoint(ProcessId from, Checkpoint cp) {
  if (cp.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(cp.sig,
                             checkpoint_binding(cp.executed, cp.digest)))
    return;
  note_checkpoint_vote(cp.executed, cp.digest, from);
}

void PbftReplica::note_checkpoint_vote(std::uint64_t executed,
                                       const Bytes& digest, ProcessId voter) {
  if (executed <= stable_checkpoint_) return;  // already stable
  auto& voters = cp_votes_[executed][digest];
  voters.insert(voter);
  // PBFT stabilizes a checkpoint at 2f+1 matching votes.
  if (voters.size() < 2 * options_.f + 1) return;
  stable_checkpoint_ = executed;
  world().metrics()
      .histogram("smr.checkpoint_gap_ticks")
      .record(world().now() - last_checkpoint_at_);
  last_checkpoint_at_ = world().now();
  world().tracer().instant("checkpoint-stable", "smr", id(), world().now(),
                           "executed", executed);
  prune_stable();
  persist();
}

void PbftReplica::prune_stable() {
  cp_votes_.erase(cp_votes_.begin(),
                  cp_votes_.upper_bound(stable_checkpoint_));
  // Below stable, 2f+1 replicas hold the history durably and laggards are
  // served by state transfer, so the executed log prefix and the matching
  // view-change archive entries can go (see MinBftReplica::prune_stable).
  const std::uint64_t upto =
      std::min<std::uint64_t>(stable_checkpoint_, log_.size());
  if (upto <= log_.base()) return;
  std::set<std::pair<ProcessId, std::uint64_t>> settled;
  for (std::uint64_t k = log_.base(); k < upto; ++k)
    settled.insert(log_.at(k).command.key());
  std::erase_if(vc_archive_, [&](const PbftVcEntry& e) {
    return settled.contains(e.cmd.key());
  });
  log_.prune_to(upto);
}

// ---- view change -----------------------------------------------------------------

void PbftReplica::arm_request_timer(const Command& cmd) {
  const auto key = cmd.key();
  const ViewNum armed_view = view_;
  set_timer(vc_timeout(), [this, key, armed_view] {
    if (!pending_.contains(key)) return;
    if (in_view_change_) return;
    if (view_ == armed_view) start_view_change(view_ + 1);
  });
}

void PbftReplica::start_view_change(ViewNum target) {
  if (target <= view_) return;
  if (!in_view_change_) {
    // Escalations re-enter here with the flag already set; the episode's
    // duration is measured from its first attempt.
    vc_started_at_ = world().now();
    world().tracer().instant("view-change-start", "smr", id(), world().now(),
                             "target", target);
  }
  in_view_change_ = true;
  vc_target_ = target;
  ++view_changes_;

  ViewChange vc;
  vc.target = target;
  vc.stable = stable_checkpoint_;
  vc.entries = vc_archive_;
  for (const auto& [key, cmd] : pending_) vc.pending.push_back(cmd);
  vc.sig = signer().sign(
      view_change_binding(target, vc.stable, vc.entries, vc.pending));
  protocol_router_.broadcast(vc);
  vc_msgs_[target][id()] = VcReport{vc.entries, vc.pending, vc.stable};
  maybe_assume_primacy(target);

  // Escalate only with f+1 supporters; otherwise abandon the attempt and
  // rejoin the current view (see MinBftReplica::start_view_change). The
  // timer backs off with each consecutive failed attempt.
  set_timer(vc_timeout(), [this, target] {
    if (!in_view_change_ || vc_target_ != target) return;
    ++vc_backoff_;
    if (vc_msgs_[target].size() >= options_.f + 1) {
      start_view_change(target + 1);
    } else {
      abandon_view_change();
    }
  });
}

void PbftReplica::abandon_view_change() {
  in_view_change_ = false;
  world().metrics().add("smr.view_changes_abandoned");
  auto it = view_waiting_.find(view_);
  if (it != view_waiting_.end()) {
    std::vector<std::function<void()>> actions = std::move(it->second);
    view_waiting_.erase(it);
    for (auto& fn : actions) fn();
  }
  for (const auto& [key, cmd] : pending_) arm_request_timer(cmd);
}

void PbftReplica::handle_view_change(ProcessId from, ViewChange vc) {
  if (vc.target <= view_) return;
  if (vc.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(
          vc.sig, view_change_binding(vc.target, vc.stable, vc.entries,
                                      vc.pending)))
    return;
  vc_msgs_[vc.target][from] =
      VcReport{std::move(vc.entries), std::move(vc.pending), vc.stable};

  // Join once f+1 replicas demand a higher view (at least one correct).
  if (vc_msgs_[vc.target].size() >= options_.f + 1 &&
      (!in_view_change_ || vc_target_ < vc.target))
    start_view_change(vc.target);
  maybe_assume_primacy(vc.target);
}

void PbftReplica::maybe_assume_primacy(ViewNum target) {
  if (primary_of(target) != id()) return;
  if (target <= view_) return;
  auto it = vc_msgs_.find(target);
  // PBFT requires a 2f+1 quorum of view-change messages; at n > 4f + 1
  // that no longer intersects every 2f+1 commit quorum, so widen to n - f
  // (a no-op at the native n = 3f + 1, where n - f = 2f + 1).
  const std::size_t merge_quorum = std::max<std::size_t>(
      2 * options_.f + 1, options_.replicas.size() - options_.f);
  if (it == vc_msgs_.end() || it->second.size() < merge_quorum) return;

  // Defer primacy below the reported stable frontier: archives are pruned
  // below it, so re-proposals cannot realign peers there (see
  // MinBftReplica::maybe_assume_primacy).
  std::uint64_t frontier = stable_checkpoint_;
  for (const auto& [reporter, report] : it->second)
    frontier = std::max(frontier, report.stable);
  if (log_.size() < frontier) {
    deferred_primacy_ = target;
    begin_state_sync();
    return;
  }
  deferred_primacy_.reset();

  NewView nv;
  nv.target = target;
  nv.executed = log_.size();
  nv.sig = signer().sign(NewView::binding(target, nv.executed));
  protocol_router_.broadcast(nv);
  enter_view(target);

  // Rank every reported key by its most RECENT (view, seq) — newest view
  // first, seq order within a view, stale old-view strays after — then
  // never-slotted requests last. Ascending original order lets a stale
  // never-committed old-view slot sort ahead of newer executed slots and
  // fork the logs; see MinBftReplica::maybe_assume_primacy for the full
  // argument. Batch members share (view, seq); stable sort keeps their
  // first-reported (= batch) order.
  struct Ranked {
    ViewNum view;
    SeqNum seq;
    Command cmd;
  };
  std::map<std::pair<ProcessId, std::uint64_t>, std::size_t> index;
  std::vector<Ranked> ranked;
  std::map<std::pair<ProcessId, std::uint64_t>, Command> loose;
  for (const auto& [reporter, report] : it->second) {
    for (const PbftVcEntry& e : report.entries) {
      auto [pos, fresh] = index.emplace(e.cmd.key(), ranked.size());
      if (fresh) {
        ranked.push_back({e.view, e.seq, e.cmd});
      } else {
        Ranked& r = ranked[pos->second];
        if (std::tie(e.view, e.seq) > std::tie(r.view, r.seq)) {
          r.view = e.view;
          r.seq = e.seq;
        }
      }
    }
    for (const Command& cmd : report.pending) loose.emplace(cmd.key(), cmd);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     if (a.view != b.view) return a.view > b.view;
                     return a.seq < b.seq;
                   });
  std::set<std::pair<ProcessId, std::uint64_t>> seen;
  auto consider = [&](const Command& cmd) {
    if (!seen.insert(cmd.key()).second) return;
    // Re-propose even commands this replica has already executed: a
    // correct replica may enter this view having committed less than the
    // primary did (enter_view drops per-view slot progress), and only the
    // full archive in its original order realigns it. Skipping executed
    // commands would hand laggards a residual sequence whose positions
    // depend on the primary's own execution history — divergent logs
    // (found by the byte-mutation fuzz sweep). Exactly-once is preserved
    // by dedup at execution time.
    if (!dedup_.lookup(cmd) && pending_.emplace(cmd.key(), cmd).second)
      arm_request_timer(cmd);
    if (batched())
      enqueue_batch(cmd);
    else
      propose(cmd);
  };
  for (const Ranked& r : ranked) consider(r.cmd);
  for (const auto& [key, cmd] : loose) consider(cmd);
  // Batched re-proposals flow through the same queue/flush machinery.
  if (batched()) maybe_flush_batch();
}

void PbftReplica::handle_new_view(ProcessId from, NewView nv) {
  if (nv.target <= view_) return;
  if (from != primary_of(nv.target)) return;
  if (nv.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(nv.sig,
                             NewView::binding(nv.target, nv.executed)))
    return;
  exec_floor_ = std::max(exec_floor_, nv.executed);
  enter_view(nv.target);
  for (const auto& [key, cmd] : pending_) arm_request_timer(cmd);
  if (log_.size() < exec_floor_) begin_state_sync();
}

void PbftReplica::enter_view(ViewNum v) {
  if (in_view_change_) {
    const Time dur = world().now() - vc_started_at_;
    world().metrics().histogram("smr.view_change_ticks").record(dur);
    world().tracer().complete("view-change", "smr", id(), vc_started_at_, dur,
                              "view", v);
  }
  view_ = v;
  in_view_change_ = false;
  vc_backoff_ = 0;  // a view actually entered resets the failure streak
  slots_.clear();
  next_propose_seq_ = 1;
  next_exec_seq_ = 1;
  // Per-view batching state dies with the view: queued commands stay in
  // pending_ (and in peers' view-change reports), so the new primary —
  // whoever it is — re-admits them.
  batch_queue_.clear();
  queued_keys_.clear();
  slotted_keys_.clear();
  batch_ripe_ = false;
  if (deferred_primacy_ && *deferred_primacy_ <= v) deferred_primacy_.reset();
  persist();  // view entry is a durability boundary (see DESIGN.md §9)
  auto stale_end = view_waiting_.lower_bound(v);
  view_waiting_.erase(view_waiting_.begin(), stale_end);
  auto it = view_waiting_.find(v);
  if (it == view_waiting_.end()) return;
  std::vector<std::function<void()>> actions = std::move(it->second);
  view_waiting_.erase(it);
  for (auto& fn : actions) fn();
}

// ---- crash recovery (DESIGN.md §9) ----------------------------------------------

void PbftReplica::persist() {
  DurableImage img;
  img.view = view_;
  img.next_exec = next_exec_seq_;
  img.stable = stable_checkpoint_;
  img.exec_floor = exec_floor_;
  img.log = log_;
  img.machine_snapshot = machine_->snapshot();
  img.dedup = dedup_;
  world().durable(id()).put_value(std::string(kDurableKey), img);
}

void PbftReplica::persist_journal() {
  world().durable(id()).put_value(
      std::string(kJournalKey),
      std::make_pair(view_, next_propose_seq_));
}

void PbftReplica::on_recover(sim::DurableStore& durable) {
  view_ = 0;
  in_view_change_ = false;
  vc_target_ = 0;
  vc_backoff_ = 0;
  slots_.clear();
  next_propose_seq_ = 1;
  next_exec_seq_ = 1;
  pending_.clear();
  dedup_ = {};
  log_ = {};
  stable_checkpoint_ = 0;
  cp_votes_.clear();
  vc_archive_.clear();
  vc_msgs_.clear();
  view_waiting_.clear();
  exec_floor_ = 0;
  deferred_primacy_.reset();
  state_probe_ = false;
  state_attempts_ = 0;
  batch_queue_.clear();
  queued_keys_.clear();
  slotted_keys_.clear();
  batch_ripe_ = false;
  batch_timer_armed_ = false;
  batch_flushing_ = false;
  machine_->restore(initial_snapshot_);
  if (const auto img =
          durable.get_value<DurableImage>(std::string(kDurableKey))) {
    view_ = img->view;
    next_exec_seq_ = img->next_exec;
    stable_checkpoint_ = img->stable;
    exec_floor_ = img->exec_floor;
    log_ = img->log;
    machine_->restore(img->machine_snapshot);
    dedup_ = img->dedup;
  }
  // The propose journal outruns the image (it is written on every
  // propose): if it belongs to the restored view, resume above it so an
  // honest primary never reassigns a sequence number it already used.
  if (const auto journal =
          durable.get_value<std::pair<ViewNum, SeqNum>>(
              std::string(kJournalKey))) {
    if (journal->first == view_)
      next_propose_seq_ = std::max(next_propose_seq_, journal->second);
  }
  ++recoveries_;
  world().metrics().add("smr.recoveries");
  vc_started_at_ = 0;
  state_sync_started_at_ = 0;
  last_checkpoint_at_ = world().now();
  begin_state_sync();
}

bool PbftReplica::needs_state() const {
  return log_.size() < exec_floor_ || deferred_primacy_.has_value();
}

void PbftReplica::begin_state_sync() {
  if (!state_probe_) state_sync_started_at_ = world().now();
  state_probe_ = true;
  state_attempts_ = 0;
  send_state_request();
  arm_state_retry();
}

void PbftReplica::send_state_request() {
  StateRequest req;
  req.have = log_.size();
  protocol_router_.broadcast(req);
}

void PbftReplica::arm_state_retry() {
  // Bounded exponential backoff, as in MinBftReplica::arm_state_retry.
  if (state_attempts_ >= kMaxStateAttempts) {
    state_probe_ = false;
    world().metrics().add("smr.state_sync_abandoned");
    return;
  }
  const Time delay = (options_.view_change_timeout / 2 + 1)
                     << state_attempts_;
  set_timer(delay, [this] {
    if (!state_probe_) return;
    ++state_attempts_;
    send_state_request();
    arm_state_retry();
  });
}

void PbftReplica::handle_state_request(ProcessId from, StateRequest req) {
  if (from == id()) return;
  if (log_.size() <= req.have) return;  // nothing the requester lacks
  StateReply rep;
  rep.view = view_;
  rep.next_exec = next_exec_seq_;
  rep.stable = stable_checkpoint_;
  rep.exec_floor = exec_floor_;
  rep.core.log = log_;
  rep.core.machine_snapshot = machine_->snapshot();
  rep.core.dedup = dedup_;
  rep.sig = signer().sign(rep.binding());
  wire::send(*this, from, kPbftCh, rep);
}

void PbftReplica::handle_state_reply(ProcessId from, StateReply rep) {
  if (from == id()) return;
  if (rep.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(rep.sig, rep.binding())) return;
  install_bundle(rep);
}

void PbftReplica::install_bundle(const StateReply& b) {
  const ViewNum was_view = view_;
  if (b.core.log.size() > log_.size()) {
    log_ = b.core.log;
    machine_->restore(b.core.machine_snapshot);
    dedup_ = b.core.dedup;
    if (batched()) {
      // Witness for the batch-atomicity checker: these commands' effects
      // arrived via state transfer, so no "smr-exec" output will ever
      // record them. Batched mode only — unbatched transcripts (and their
      // golden fingerprints) must not change.
      serde::Writer iw;
      const auto installed = dedup_.keys();
      iw.uvarint(installed.size());
      for (const auto& [client, rid] : installed) {
        iw.uvarint(client);
        iw.uvarint(rid);
      }
      output("smr-install", iw.take());
    }
  }
  if (b.stable > stable_checkpoint_) stable_checkpoint_ = b.stable;
  exec_floor_ = std::max(exec_floor_, b.exec_floor);
  if (b.view > view_) {
    view_ = b.view;
    in_view_change_ = false;
    slots_.clear();
    next_propose_seq_ = 1;
    next_exec_seq_ = b.next_exec;
  } else if (b.view == view_ && !in_view_change_) {
    if (b.next_exec > next_exec_seq_) {
      // The responder executed further into this view; every slot it
      // passed is in the installed log (or dedup'd), so resuming from its
      // cursor skips nothing uncommitted.
      next_exec_seq_ = b.next_exec;
    }
  }
  prune_stable();
  persist();
  if (view_ > was_view) {
    if (deferred_primacy_ && *deferred_primacy_ <= view_)
      deferred_primacy_.reset();
    view_waiting_.erase(view_waiting_.begin(),
                        view_waiting_.lower_bound(view_));
    auto it = view_waiting_.find(view_);
    if (it != view_waiting_.end()) {
      std::vector<std::function<void()>> actions = std::move(it->second);
      view_waiting_.erase(it);
      for (auto& fn : actions) fn();
    }
    for (const auto& [key, cmd] : pending_) arm_request_timer(cmd);
  }
  try_execute();
  // Requests that arrived before the install but were executed elsewhere
  // are settled by the bundle; drop them, or their timers would hunt for a
  // view change nothing needs, forever.
  for (auto it = pending_.begin(); it != pending_.end();)
    it = dedup_.lookup(it->second) ? pending_.erase(it) : ++it;
  if (!needs_state() && state_probe_) {
    state_probe_ = false;
    const Time dur = world().now() - state_sync_started_at_;
    world().metrics().histogram("smr.state_sync_ticks").record(dur);
    world().tracer().complete("state-sync", "smr", id(),
                              state_sync_started_at_, dur, "have",
                              log_.size());
  }
  if (deferred_primacy_) maybe_assume_primacy(*deferred_primacy_);
}

}  // namespace unidir::agreement
