#include "agreement/pbft.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"

namespace unidir::agreement {

namespace {

constexpr std::uint8_t kPrePrepare = 1;
constexpr std::uint8_t kPrepare = 2;
constexpr std::uint8_t kCommit = 3;
constexpr std::uint8_t kCheckpoint = 4;
constexpr std::uint8_t kViewChange = 5;
constexpr std::uint8_t kNewView = 6;

Bytes command_digest(const Command& cmd) {
  const crypto::Digest d = crypto::Sha256::hash(serde::encode(cmd));
  return crypto::digest_bytes(d);
}

Bytes preprepare_binding(ViewNum view, SeqNum seq, const Command& cmd) {
  serde::Writer w;
  w.str("pbft-pp");
  w.uvarint(view);
  w.uvarint(seq);
  cmd.encode(w);
  return w.take();
}

Bytes vote_binding(std::string_view phase, ViewNum view, SeqNum seq,
                   const Bytes& digest) {
  serde::Writer w;
  w.str(phase);
  w.uvarint(view);
  w.uvarint(seq);
  w.bytes(digest);
  return w.take();
}

Bytes checkpoint_binding(std::uint64_t executed, const Bytes& digest) {
  serde::Writer w;
  w.str("pbft-cp");
  w.uvarint(executed);
  w.bytes(digest);
  return w.take();
}

Bytes view_change_binding(ViewNum target,
                          const std::vector<PbftVcEntry>& entries,
                          const std::vector<Command>& pending) {
  serde::Writer w;
  w.str("pbft-vc");
  w.uvarint(target);
  serde::write(w, entries);
  serde::write(w, pending);
  return w.take();
}

struct PrePrepareWire {
  ViewNum view = 0;
  SeqNum seq = 0;
  Command cmd;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(view);
    w.uvarint(seq);
    cmd.encode(w);
    sig.encode(w);
  }
  static PrePrepareWire decode(serde::Reader& r) {
    PrePrepareWire p;
    p.view = r.uvarint();
    p.seq = r.uvarint();
    p.cmd = Command::decode(r);
    p.sig = crypto::Signature::decode(r);
    return p;
  }
};

struct VoteWire {  // PREPARE and COMMIT share shape
  ViewNum view = 0;
  SeqNum seq = 0;
  Bytes digest;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(view);
    w.uvarint(seq);
    w.bytes(digest);
    sig.encode(w);
  }
  static VoteWire decode(serde::Reader& r) {
    VoteWire v;
    v.view = r.uvarint();
    v.seq = r.uvarint();
    v.digest = r.bytes();
    v.sig = crypto::Signature::decode(r);
    return v;
  }
};

struct CheckpointWire {
  std::uint64_t executed = 0;
  Bytes digest;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(executed);
    w.bytes(digest);
    sig.encode(w);
  }
  static CheckpointWire decode(serde::Reader& r) {
    CheckpointWire c;
    c.executed = r.uvarint();
    c.digest = r.bytes();
    c.sig = crypto::Signature::decode(r);
    return c;
  }
};

struct ViewChangeWire {
  ViewNum target = 0;
  std::vector<PbftVcEntry> entries;
  std::vector<Command> pending;
  crypto::Signature sig;

  void encode(serde::Writer& w) const {
    w.uvarint(target);
    serde::write(w, entries);
    serde::write(w, pending);
    sig.encode(w);
  }
  static ViewChangeWire decode(serde::Reader& r) {
    ViewChangeWire v;
    v.target = r.uvarint();
    v.entries = serde::read<std::vector<PbftVcEntry>>(r);
    v.pending = serde::read<std::vector<Command>>(r);
    v.sig = crypto::Signature::decode(r);
    return v;
  }
};

struct NewViewWire {
  ViewNum target = 0;
  crypto::Signature sig;

  static Bytes binding(ViewNum target) {
    serde::Writer w;
    w.str("pbft-nv");
    w.uvarint(target);
    return w.take();
  }

  void encode(serde::Writer& w) const {
    w.uvarint(target);
    sig.encode(w);
  }
  static NewViewWire decode(serde::Reader& r) {
    NewViewWire v;
    v.target = r.uvarint();
    v.sig = crypto::Signature::decode(r);
    return v;
  }
};

template <typename Wire>
Bytes tagged(std::uint8_t tag, const Wire& wire) {
  serde::Writer w;
  w.u8(tag);
  wire.encode(w);
  return w.take();
}

}  // namespace

void PbftVcEntry::encode(serde::Writer& w) const {
  w.uvarint(view);
  w.uvarint(seq);
  cmd.encode(w);
}

PbftVcEntry PbftVcEntry::decode(serde::Reader& r) {
  PbftVcEntry e;
  e.view = r.uvarint();
  e.seq = r.uvarint();
  e.cmd = Command::decode(r);
  return e;
}

Bytes PbftReplica::encode_preprepare_for_test(const crypto::Signer& signer,
                                              ViewNum view, SeqNum seq,
                                              const Command& cmd) {
  PrePrepareWire pp;
  pp.view = view;
  pp.seq = seq;
  pp.cmd = cmd;
  pp.sig = signer.sign(preprepare_binding(view, seq, cmd));
  return tagged(kPrePrepare, pp);
}

PbftReplica::PbftReplica(Options options,
                         std::unique_ptr<StateMachine> machine)
    : options_(std::move(options)), machine_(std::move(machine)) {
  UNIDIR_REQUIRE(machine_ != nullptr);
  UNIDIR_REQUIRE_MSG(options_.replicas.size() >= 3 * options_.f + 1,
                     "PBFT requires n >= 3f+1");
  register_channel(kClientRequestCh,
                   [this](ProcessId from, const Bytes& payload) {
                     on_request(from, payload);
                   });
  register_channel(kPbftCh, [this](ProcessId from, const Bytes& payload) {
    on_protocol(from, payload);
  });
}

void PbftReplica::on_start() {
  UNIDIR_CHECK_MSG(is_replica(id()),
                   "replica id must appear in Options::replicas");
}

bool PbftReplica::is_replica(ProcessId p) const {
  return std::find(options_.replicas.begin(), options_.replicas.end(), p) !=
         options_.replicas.end();
}

// ---- client requests -----------------------------------------------------------

void PbftReplica::on_request(ProcessId from, const Bytes& payload) {
  Command cmd;
  try {
    cmd = serde::decode<Command>(payload);
  } catch (const serde::DecodeError&) {
    return;
  }
  if (cmd.client != from) return;
  if (const auto cached = dedup_.lookup(cmd)) {
    reply_to(cmd, *cached);
    return;
  }
  const bool fresh = pending_.emplace(cmd.key(), cmd).second;
  if (fresh) arm_request_timer(cmd);
  if (!in_view_change_ && is_primary()) propose(cmd);
}

void PbftReplica::propose(const Command& cmd) {
  for (const auto& [seq, slot] : slots_)
    if (slot.cmd.key() == cmd.key()) return;

  PrePrepareWire pp;
  pp.view = view_;
  pp.seq = next_propose_seq_++;
  pp.cmd = cmd;
  pp.sig = signer().sign(preprepare_binding(pp.view, pp.seq, cmd));
  broadcast(kPbftCh, tagged(kPrePrepare, pp));

  Slot& slot = slots_[pp.seq];
  slot.cmd = cmd;
  slot.digest = command_digest(cmd);
  slot.have_preprepare = true;
  vc_archive_.push_back({view_, pp.seq, cmd});
  step(pp.seq);
}

// ---- protocol messages -----------------------------------------------------------

void PbftReplica::on_protocol(ProcessId from, const Bytes& payload) {
  if (!is_replica(from)) return;
  serde::Reader r(payload);
  std::uint8_t tag = 0;
  Bytes body;
  try {
    tag = r.u8();
    body = r.raw(r.remaining());
  } catch (const serde::DecodeError&) {
    return;
  }
  switch (tag) {
    case kPrePrepare: handle_preprepare(from, body); break;
    case kPrepare: handle_prepare(from, body); break;
    case kCommit: handle_commit(from, body); break;
    case kCheckpoint: handle_checkpoint(from, body); break;
    case kViewChange: handle_view_change(from, body); break;
    case kNewView: handle_new_view(from, body); break;
    default: break;
  }
}

void PbftReplica::handle_preprepare(ProcessId from, const Bytes& body) {
  PrePrepareWire pp;
  try {
    pp = serde::decode<PrePrepareWire>(body);
  } catch (const serde::DecodeError&) {
    return;
  }
  if (from == id() || pp.seq == 0) return;
  if (pp.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(pp.sig,
                             preprepare_binding(pp.view, pp.seq, pp.cmd)))
    return;
  when_in_view(pp.view, [this, from, pp]() {
    if (from != primary_of(view_)) return;
    Slot& slot = slots_[pp.seq];
    if (slot.have_preprepare) return;  // first pre-prepare per slot wins
    slot.cmd = pp.cmd;
    slot.digest = command_digest(pp.cmd);
    slot.have_preprepare = true;
    vc_archive_.push_back({view_, pp.seq, pp.cmd});

    if (!dedup_.lookup(pp.cmd) &&
        pending_.emplace(pp.cmd.key(), pp.cmd).second)
      arm_request_timer(pp.cmd);

    if (!slot.sent_prepare) {
      slot.sent_prepare = true;
      slot.prepares[slot.digest].insert(id());
      VoteWire v;
      v.view = view_;
      v.seq = pp.seq;
      v.digest = slot.digest;
      v.sig = signer().sign(vote_binding("pbft-prepare", v.view, v.seq,
                                         v.digest));
      broadcast(kPbftCh, tagged(kPrepare, v));
    }
    step(pp.seq);
  });
}

void PbftReplica::handle_prepare(ProcessId from, const Bytes& body) {
  VoteWire v;
  try {
    v = serde::decode<VoteWire>(body);
  } catch (const serde::DecodeError&) {
    return;
  }
  if (from == id()) return;
  if (v.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(
          v.sig, vote_binding("pbft-prepare", v.view, v.seq, v.digest)))
    return;
  when_in_view(v.view, [this, from, v]() {
    if (from == primary_of(view_)) return;  // the primary never prepares
    slots_[v.seq].prepares[v.digest].insert(from);
    step(v.seq);
  });
}

void PbftReplica::handle_commit(ProcessId from, const Bytes& body) {
  VoteWire v;
  try {
    v = serde::decode<VoteWire>(body);
  } catch (const serde::DecodeError&) {
    return;
  }
  if (from == id()) return;
  if (v.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(
          v.sig, vote_binding("pbft-commit", v.view, v.seq, v.digest)))
    return;
  when_in_view(v.view, [this, from, v]() {
    slots_[v.seq].commits[v.digest].insert(from);
    step(v.seq);
  });
}

void PbftReplica::when_in_view(ViewNum view, std::function<void()> action) {
  if (view < view_) return;
  if (view == view_ && !in_view_change_) {
    action();
    return;
  }
  view_waiting_[view].push_back(std::move(action));
}

void PbftReplica::step(SeqNum seq) {
  auto it = slots_.find(seq);
  if (it == slots_.end()) return;
  Slot& slot = it->second;
  if (!slot.have_preprepare) return;

  // prepared: the pre-prepare plus 2f PREPAREs for the same digest
  // (the primary's pre-prepare stands in for its prepare).
  const bool prepared =
      slot.prepares[slot.digest].size() >= 2 * options_.f;
  if (prepared && !slot.sent_commit) {
    slot.sent_commit = true;
    slot.commits[slot.digest].insert(id());
    VoteWire v;
    v.view = view_;
    v.seq = seq;
    v.digest = slot.digest;
    v.sig = signer().sign(vote_binding("pbft-commit", v.view, v.seq,
                                       v.digest));
    broadcast(kPbftCh, tagged(kCommit, v));
  }
  try_execute();
}

void PbftReplica::try_execute() {
  while (true) {
    auto it = slots_.find(next_exec_seq_);
    if (it == slots_.end()) return;
    Slot& slot = it->second;
    if (slot.executed) {
      ++next_exec_seq_;
      continue;
    }
    if (!slot.have_preprepare || !slot.sent_commit) return;
    if (slot.commits[slot.digest].size() < 2 * options_.f + 1) return;
    execute(slot);
    ++next_exec_seq_;
  }
}

void PbftReplica::execute(Slot& slot) {
  slot.executed = true;
  Bytes result;
  if (const auto cached = dedup_.lookup(slot.cmd)) {
    result = *cached;
  } else {
    result = machine_->apply(slot.cmd.op);
    dedup_.record(slot.cmd, result);
    log_.push_back({slot.cmd, result});
    output("smr-exec", serde::encode(slot.cmd));
    maybe_checkpoint();
  }
  pending_.erase(slot.cmd.key());
  reply_to(slot.cmd, result);
}

void PbftReplica::reply_to(const Command& cmd, const Bytes& result) {
  Reply reply;
  reply.request_id = cmd.request_id;
  reply.result = result;
  send(cmd.client, kClientReplyCh, serde::encode(reply));
}

// ---- checkpoints -----------------------------------------------------------------

void PbftReplica::maybe_checkpoint() {
  if (options_.checkpoint_interval == 0) return;
  if (log_.size() % options_.checkpoint_interval != 0) return;
  CheckpointWire cp;
  cp.executed = log_.size();
  cp.digest = crypto::digest_bytes(machine_->digest());
  cp.sig = signer().sign(checkpoint_binding(cp.executed, cp.digest));
  broadcast(kPbftCh, tagged(kCheckpoint, cp));
  cp_votes_[cp.executed][cp.digest].insert(id());
}

void PbftReplica::handle_checkpoint(ProcessId from, const Bytes& body) {
  CheckpointWire cp;
  try {
    cp = serde::decode<CheckpointWire>(body);
  } catch (const serde::DecodeError&) {
    return;
  }
  if (cp.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(cp.sig,
                             checkpoint_binding(cp.executed, cp.digest)))
    return;
  auto& voters = cp_votes_[cp.executed][cp.digest];
  voters.insert(from);
  // PBFT stabilizes a checkpoint at 2f+1 matching votes.
  if (voters.size() >= 2 * options_.f + 1 &&
      cp.executed > stable_checkpoint_)
    stable_checkpoint_ = cp.executed;
}

// ---- view change -----------------------------------------------------------------

void PbftReplica::arm_request_timer(const Command& cmd) {
  const auto key = cmd.key();
  const ViewNum armed_view = view_;
  set_timer(options_.view_change_timeout, [this, key, armed_view] {
    if (!pending_.contains(key)) return;
    if (in_view_change_) return;
    if (view_ == armed_view) start_view_change(view_ + 1);
  });
}

void PbftReplica::start_view_change(ViewNum target) {
  if (target <= view_) return;
  in_view_change_ = true;
  vc_target_ = target;
  ++view_changes_;

  ViewChangeWire vc;
  vc.target = target;
  vc.entries = vc_archive_;
  for (const auto& [key, cmd] : pending_) vc.pending.push_back(cmd);
  vc.sig =
      signer().sign(view_change_binding(target, vc.entries, vc.pending));
  broadcast(kPbftCh, tagged(kViewChange, vc));
  vc_msgs_[target][id()] = VcReport{vc.entries, vc.pending};
  maybe_assume_primacy(target);

  // Escalate only with f+1 supporters; otherwise abandon the attempt and
  // rejoin the current view (see MinBftReplica::start_view_change).
  set_timer(options_.view_change_timeout, [this, target] {
    if (!in_view_change_ || vc_target_ != target) return;
    if (vc_msgs_[target].size() >= options_.f + 1) {
      start_view_change(target + 1);
    } else {
      abandon_view_change();
    }
  });
}

void PbftReplica::abandon_view_change() {
  in_view_change_ = false;
  auto it = view_waiting_.find(view_);
  if (it != view_waiting_.end()) {
    std::vector<std::function<void()>> actions = std::move(it->second);
    view_waiting_.erase(it);
    for (auto& fn : actions) fn();
  }
  for (const auto& [key, cmd] : pending_) arm_request_timer(cmd);
}

void PbftReplica::handle_view_change(ProcessId from, const Bytes& body) {
  ViewChangeWire vc;
  try {
    vc = serde::decode<ViewChangeWire>(body);
  } catch (const serde::DecodeError&) {
    return;
  }
  if (vc.target <= view_) return;
  if (vc.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(
          vc.sig, view_change_binding(vc.target, vc.entries, vc.pending)))
    return;
  vc_msgs_[vc.target][from] =
      VcReport{std::move(vc.entries), std::move(vc.pending)};

  // Join once f+1 replicas demand a higher view (at least one correct).
  if (vc_msgs_[vc.target].size() >= options_.f + 1 &&
      (!in_view_change_ || vc_target_ < vc.target))
    start_view_change(vc.target);
  maybe_assume_primacy(vc.target);
}

void PbftReplica::maybe_assume_primacy(ViewNum target) {
  if (primary_of(target) != id()) return;
  if (target <= view_) return;
  auto it = vc_msgs_.find(target);
  // PBFT requires a 2f+1 quorum of view-change messages.
  if (it == vc_msgs_.end() || it->second.size() < 2 * options_.f + 1) return;

  NewViewWire nv;
  nv.target = target;
  nv.sig = signer().sign(NewViewWire::binding(target));
  broadcast(kPbftCh, tagged(kNewView, nv));
  enter_view(target);

  std::map<std::tuple<ViewNum, SeqNum>, Command> slotted;
  std::map<std::pair<ProcessId, std::uint64_t>, Command> loose;
  std::set<std::pair<ProcessId, std::uint64_t>> seen;
  for (const auto& [reporter, report] : it->second) {
    for (const PbftVcEntry& e : report.entries)
      slotted.emplace(std::make_tuple(e.view, e.seq), e.cmd);
    for (const Command& cmd : report.pending) loose.emplace(cmd.key(), cmd);
  }
  auto consider = [&](const Command& cmd) {
    if (!seen.insert(cmd.key()).second) return;
    if (dedup_.lookup(cmd)) return;
    if (pending_.emplace(cmd.key(), cmd).second) arm_request_timer(cmd);
    propose(cmd);
  };
  for (const auto& [order, cmd] : slotted) consider(cmd);
  for (const auto& [key, cmd] : loose) consider(cmd);
}

void PbftReplica::handle_new_view(ProcessId from, const Bytes& body) {
  NewViewWire nv;
  try {
    nv = serde::decode<NewViewWire>(body);
  } catch (const serde::DecodeError&) {
    return;
  }
  if (nv.target <= view_) return;
  if (from != primary_of(nv.target)) return;
  if (nv.sig.key != world().key_of(from)) return;
  if (!world().keys().verify(nv.sig, NewViewWire::binding(nv.target))) return;
  enter_view(nv.target);
  for (const auto& [key, cmd] : pending_) arm_request_timer(cmd);
}

void PbftReplica::enter_view(ViewNum v) {
  view_ = v;
  in_view_change_ = false;
  slots_.clear();
  next_propose_seq_ = 1;
  next_exec_seq_ = 1;
  auto stale_end = view_waiting_.lower_bound(v);
  view_waiting_.erase(view_waiting_.begin(), stale_end);
  auto it = view_waiting_.find(v);
  if (it == view_waiting_.end()) return;
  std::vector<std::function<void()>> actions = std::move(it->second);
  view_waiting_.erase(it);
  for (auto& fn : actions) fn();
}

}  // namespace unidir::agreement
