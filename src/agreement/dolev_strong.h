// Dolev–Strong Byzantine broadcast (f+1 bidirectional rounds, any n > f),
// and strong-validity agreement built on it (n >= 2f+1) — the executable
// content of the paper's *bidirectional* power class: what lock-step
// synchrony with transferable signatures can do that unidirectionality
// provably cannot (strong agreement with n <= 3f is impossible under
// unidirectionality; under synchrony n >= 2f+1 suffices).
//
// Protocol (signature chains):
//   round 1:    the sender signs its value and sends ⟨v, σ_s⟩ to all.
//   round i<=f+1: a process that has accepted a value v with a chain of i−1
//               distinct signatures (starting with the sender's) appends
//               its own signature and relays the chain to all.
//   end of round f+1: each process commits the unique accepted value, or
//               ⊥ if it accepted none or more than one.
//
// Correctness anchor: a chain of f+1 signatures contains a correct
// process's, and a correct process relays to ALL; bidirectionality makes
// the relay land within the round, so by round f+1 every accepted value is
// accepted everywhere.
//
// StrongAgreement: every process Dolev–Strong-broadcasts its input in
// parallel; after all instances finish, commit the most frequent committed
// value (ties broken by byte order). With n >= 2f+1 this satisfies STRONG
// validity: if all correct processes share input v, v wins the count.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "crypto/signature.h"
#include "sim/world.h"
#include "wire/channels.h"
#include "wire/router.h"

namespace unidir::agreement {

/// One Dolev–Strong broadcast instance, identified by its designated
/// sender. All processes (including the sender) construct one per
/// instance; rounds are globally aligned lock-step windows of
/// `round_length` ticks, so many instances can share the network.
class DolevStrongBroadcast {
 public:
  struct Options {
    ProcessId sender = 0;
    std::size_t f = 0;
    Time round_length = 8;  // must exceed the network's delay bound
    sim::Channel channel = wire::kDolevStrongCh;
  };

  using CommitFn = std::function<void(const std::optional<Bytes>&)>;

  DolevStrongBroadcast(sim::Process& host, Options options);

  /// Starts the protocol (call from on_start, before virtual time
  /// advances past the first round). `input` must be set iff this process
  /// is the sender. nullopt commit = ⊥.
  void run(std::optional<Bytes> input, CommitFn on_commit);

  bool committed() const { return committed_; }
  const std::optional<Bytes>& value() const { return value_; }
  /// Rounds of the synchronous schedule used: f+1.
  std::size_t rounds() const { return options_.f + 1; }

 private:
  struct Chain {
    Bytes value;
    std::vector<std::pair<ProcessId, crypto::Signature>> signatures;
  };

  Bytes link_binding(const Bytes& value) const;
  bool valid_chain(const Chain& chain, std::size_t max_len) const;
  void on_chain(Chain chain);
  void relay(const Chain& chain);
  void end_of_round(std::size_t round);
  void finish();

  sim::Process& host_;
  Options options_;
  wire::Router router_;
  CommitFn on_commit_;
  std::set<Bytes> extracted_;           // accepted values
  std::vector<Chain> pending_relays_;   // chains to extend next round
  bool committed_ = false;
  std::optional<Bytes> value_;
};

/// Strong-validity agreement under synchrony, n >= 2f+1: parallel
/// Dolev–Strong instances + plurality vote.
class StrongAgreement {
 public:
  struct Options {
    std::size_t n = 0;
    std::size_t f = 0;
    Time round_length = 8;
    /// Channels [base, base+n) are used; the registry reserves
    /// [kStrongAgreementChBase, kStrongAgreementChMax] for this.
    sim::Channel channel_base = wire::kStrongAgreementChBase;
  };

  using CommitFn = std::function<void(const Bytes&)>;

  StrongAgreement(sim::Process& host, Options options);

  void run(Bytes input, CommitFn on_commit);

  bool committed() const { return committed_; }
  const Bytes& value() const { return value_; }

 private:
  void maybe_finish();

  sim::Process& host_;
  Options options_;
  CommitFn on_commit_;
  std::vector<std::unique_ptr<DolevStrongBroadcast>> instances_;
  std::size_t done_ = 0;
  std::map<Bytes, std::size_t> tally_;
  bool committed_ = false;
  Bytes value_;
};

}  // namespace unidir::agreement
