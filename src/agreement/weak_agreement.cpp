#include "agreement/weak_agreement.h"

#include "agreement/state_machines.h"
#include "common/check.h"

namespace unidir::agreement {

Bytes FirstWriteStateMachine::write_op(const Bytes& value) {
  serde::Writer w;
  w.bytes(value);
  return w.take();
}

Bytes FirstWriteStateMachine::apply(const Bytes& op) {
  if (!value_) {
    try {
      serde::Reader r(op);
      Bytes proposed = r.bytes();
      r.expect_done();
      value_ = std::move(proposed);
    } catch (const serde::DecodeError&) {
      // A malformed proposal is a deterministic no-op; the register stays
      // open for the next writer.
      return {};
    }
  }
  return *value_;
}

crypto::Digest FirstWriteStateMachine::digest() const {
  serde::Writer w;
  w.boolean(value_.has_value());
  if (value_) w.bytes(*value_);
  return crypto::Sha256::hash(w.buffer());
}

Bytes FirstWriteStateMachine::snapshot() const {
  return serde::encode(value_);
}

void FirstWriteStateMachine::restore(const Bytes& snap) {
  value_ = serde::decode<std::optional<Bytes>>(snap);
}

WeakAgreementCluster::WeakAgreementCluster(sim::World& world,
                                           UsigDirectory& usigs,
                                           Options options,
                                           std::vector<Bytes> inputs)
    : options_(options) {
  UNIDIR_REQUIRE(options_.n >= 1);
  UNIDIR_REQUIRE_MSG(options_.n >= 2 * options_.f + 1,
                     "weak agreement from non-equivocation needs n >= 2f+1");
  UNIDIR_REQUIRE(inputs.size() == options_.n);

  MinBftReplica::Options ropt;
  ropt.f = options_.f;
  ropt.view_change_timeout = options_.view_change_timeout;
  for (std::size_t i = 0; i < options_.n; ++i)
    ropt.replicas.push_back(static_cast<ProcessId>(i));
  for (std::size_t i = 0; i < options_.n; ++i)
    replicas_.push_back(&world.spawn<MinBftReplica>(
        ropt, usigs, std::make_unique<FirstWriteStateMachine>()));

  commits_.resize(options_.n);
  SmrClient::Options copt;
  copt.replicas = ropt.replicas;
  copt.f = options_.f;
  for (std::size_t i = 0; i < options_.n; ++i) {
    auto& client = world.spawn<SmrClient>(copt);
    clients_.push_back(&client);
    client.submit(FirstWriteStateMachine::write_op(inputs[i]),
                  [this, i](const Bytes& result) { commits_[i] = result; });
  }
}

std::optional<Bytes> WeakAgreementCluster::value_of(std::size_t party) const {
  UNIDIR_REQUIRE(party < commits_.size());
  return commits_[party];
}

bool WeakAgreementCluster::all_committed(const sim::World& world) const {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (world.crashed(clients_[i]->id())) continue;
    if (!commits_[i]) return false;
  }
  return true;
}

}  // namespace unidir::agreement
