// Directory of per-replica USIG (unique sequential identifier generator)
// services.
//
// MinBFT needs, per replica, a device that binds strictly increasing
// counter values to message digests, attested so that any other replica
// can verify. The paper's point is that *any* trusted-log mechanism
// provides this; the directory is therefore an interface with one
// implementation per mechanism:
//
//   SgxUsigDirectory    — the USIG program inside an SGX-style enclave
//                         (the deployment Veronese et al. targeted);
//   TrincUsigDirectory  — the same contract from a TrInc trinket
//                         (Levin et al.'s minimal device).
//
// MinBftReplica is written against the interface and runs unchanged over
// either — executable evidence that the mechanisms sit in one power class.
// By convention, replica code calls create_ui only with its own id
// (modelling that it holds only its own device).
#pragma once

#include <map>
#include <memory>

#include "trusted/trinc.h"
#include "trusted/usig.h"

namespace unidir::agreement {

/// One verification in a UsigDirectory::verify_batch call; `ok` is the
/// output. Pointees must outlive the call.
struct UsigVerifyJob {
  ProcessId p = kNoProcess;
  const trusted::UniqueIdentifier* ui = nullptr;
  const Bytes* message = nullptr;
  bool ok = false;
};

class UsigDirectory {
 public:
  virtual ~UsigDirectory() = default;
  UsigDirectory() = default;
  UsigDirectory(const UsigDirectory&) = delete;
  UsigDirectory& operator=(const UsigDirectory&) = delete;

  /// Certifies `message` under replica `p`'s device, consuming its next
  /// counter value.
  virtual trusted::UniqueIdentifier create_ui(ProcessId p,
                                              const Bytes& message) = 0;

  /// Verifies that `ui` certifies `message` under replica `p`'s device.
  virtual bool verify(ProcessId p, const trusted::UniqueIdentifier& ui,
                      const Bytes& message) const = 0;

  /// Verifies several UIs at once. Results equal calling verify() per job
  /// (handlers may therefore batch the checks of a quorum message without
  /// changing semantics); mechanisms override this when they can amortize
  /// the underlying hashing. The default is the serial loop.
  virtual void verify_batch(UsigVerifyJob* jobs, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i)
      jobs[i].ok = verify(jobs[i].p, *jobs[i].ui, *jobs[i].message);
  }

  /// Models replica `p`'s trusted device going through a host restart
  /// (see DESIGN.md §9). With `durable_state` the device state round-trips
  /// through its serialized form, as if read back from NVRAM/sealed storage
  /// at boot; without it the counters reset while the attestation key
  /// survives — the broken deployment whose equivocation the recovery
  /// sweeps demonstrate. No-op for replicas that never used their device.
  virtual void restart_device(ProcessId p, bool durable_state) = 0;
};

/// USIG inside a simulated SGX enclave (trusted/usig.h).
class SgxUsigDirectory final : public UsigDirectory {
 public:
  explicit SgxUsigDirectory(crypto::KeyRegistry& keys) : keys_(keys) {}

  trusted::UniqueIdentifier create_ui(ProcessId p,
                                      const Bytes& message) override;
  bool verify(ProcessId p, const trusted::UniqueIdentifier& ui,
              const Bytes& message) const override;
  /// Routes all jobs' hashing and attestation checks through the batched
  /// enclave verifier (UsigEnclave::verify_ui_batch).
  void verify_batch(UsigVerifyJob* jobs, std::size_t n) const override;
  void restart_device(ProcessId p, bool durable_state) override;

  /// Direct enclave access (tests that hand-craft Byzantine UIs).
  trusted::UsigEnclave& enclave_for(ProcessId p);

 private:
  crypto::KeyRegistry& keys_;
  std::map<ProcessId, std::unique_ptr<trusted::UsigEnclave>> enclaves_;
};

/// USIG from a TrInc trinket: counter = trinket counter over the message
/// digest. Consecutive use (prev = seq−1) makes the attestation
/// reconstructible from the UniqueIdentifier alone.
class TrincUsigDirectory final : public UsigDirectory {
 public:
  explicit TrincUsigDirectory(crypto::KeyRegistry& keys) : authority_(keys) {}

  trusted::UniqueIdentifier create_ui(ProcessId p,
                                      const Bytes& message) override;
  bool verify(ProcessId p, const trusted::UniqueIdentifier& ui,
              const Bytes& message) const override;
  void restart_device(ProcessId p, bool durable_state) override;

 private:
  trusted::Trinket& trinket_for(ProcessId p);

  trusted::TrincAuthority authority_;
  std::map<ProcessId, std::unique_ptr<trusted::Trinket>> trinkets_;
};

}  // namespace unidir::agreement
