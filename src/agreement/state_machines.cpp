#include "agreement/state_machines.h"

#include "common/check.h"

namespace unidir::agreement {

namespace {

constexpr std::uint8_t kPut = 1;
constexpr std::uint8_t kGet = 2;
constexpr std::uint8_t kDel = 3;
constexpr std::uint8_t kAdd = 4;
constexpr std::uint8_t kRead = 5;

}  // namespace

Bytes KvStateMachine::put_op(std::string_view key, std::string_view value) {
  serde::Writer w;
  w.u8(kPut);
  w.str(key);
  w.str(value);
  return w.take();
}

Bytes KvStateMachine::get_op(std::string_view key) {
  serde::Writer w;
  w.u8(kGet);
  w.str(key);
  return w.take();
}

Bytes KvStateMachine::del_op(std::string_view key) {
  serde::Writer w;
  w.u8(kDel);
  w.str(key);
  return w.take();
}

Bytes KvStateMachine::apply(const Bytes& op) try {
  serde::Reader r(op);
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case kPut: {
      std::string key = r.str();
      std::string value = r.str();
      r.expect_done();
      std::string& slot = table_[key];
      Bytes previous = bytes_of(slot);
      slot = std::move(value);
      return previous;
    }
    case kGet: {
      std::string key = r.str();
      r.expect_done();
      auto it = table_.find(key);
      return it == table_.end() ? Bytes{} : bytes_of(it->second);
    }
    case kDel: {
      std::string key = r.str();
      r.expect_done();
      auto it = table_.find(key);
      if (it == table_.end()) return {};
      Bytes previous = bytes_of(it->second);
      table_.erase(it);
      return previous;
    }
    default:
      // Unknown ops execute as deterministic no-ops: all replicas agree.
      return {};
  }
} catch (const serde::DecodeError&) {
  // The op blob is opaque to the wire layer (it rides inside a valid
  // Command), so a Byzantine network can get corrupted bytes agreed on and
  // executed. Every replica executing the slot holds the same bytes, so a
  // deterministic no-op keeps logs and digests consistent.
  return {};
}

crypto::Digest KvStateMachine::digest() const {
  serde::Writer w;
  for (const auto& [key, value] : table_) {
    w.str(key);
    w.str(value);
  }
  return crypto::Sha256::hash(w.buffer());
}

Bytes KvStateMachine::snapshot() const {
  return serde::encode(table_);
}

void KvStateMachine::restore(const Bytes& snap) {
  table_ = serde::decode<std::map<std::string, std::string>>(snap);
}

Bytes CounterStateMachine::add_op(std::int64_t delta) {
  serde::Writer w;
  w.u8(kAdd);
  w.svarint(delta);
  return w.take();
}

Bytes CounterStateMachine::read_op() {
  serde::Writer w;
  w.u8(kRead);
  return w.take();
}

Bytes CounterStateMachine::apply(const Bytes& op) try {
  serde::Reader r(op);
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case kAdd: {
      value_ += r.svarint();
      r.expect_done();
      return serde::encode(value_);
    }
    case kRead:
      r.expect_done();
      return serde::encode(value_);
    default:
      return {};
  }
} catch (const serde::DecodeError&) {
  return {};  // undecodable op: deterministic no-op (see KvStateMachine)
}

crypto::Digest CounterStateMachine::digest() const {
  return crypto::Sha256::hash(serde::encode(value_));
}

Bytes CounterStateMachine::snapshot() const { return serde::encode(value_); }

void CounterStateMachine::restore(const Bytes& snap) {
  value_ = serde::decode<std::int64_t>(snap);
}

}  // namespace unidir::agreement
