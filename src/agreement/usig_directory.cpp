#include "agreement/usig_directory.h"

#include <vector>

#include "common/check.h"

namespace unidir::agreement {

// ---- SGX-backed -----------------------------------------------------------------

trusted::UsigEnclave& SgxUsigDirectory::enclave_for(ProcessId p) {
  auto it = enclaves_.find(p);
  if (it == enclaves_.end())
    it = enclaves_.emplace(p, std::make_unique<trusted::UsigEnclave>(keys_))
             .first;
  return *it->second;
}

trusted::UniqueIdentifier SgxUsigDirectory::create_ui(ProcessId p,
                                                      const Bytes& message) {
  return enclave_for(p).create_ui(message);
}

bool SgxUsigDirectory::verify(ProcessId p,
                              const trusted::UniqueIdentifier& ui,
                              const Bytes& message) const {
  auto it = enclaves_.find(p);
  if (it == enclaves_.end()) return false;
  return trusted::UsigEnclave::verify_ui(keys_, it->second->key(), ui,
                                         message);
}

void SgxUsigDirectory::verify_batch(UsigVerifyJob* jobs,
                                    std::size_t n) const {
  std::vector<trusted::UsigEnclave::UiVerifyJob> uj;
  std::vector<std::size_t> which;
  uj.reserve(n);
  which.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto it = enclaves_.find(jobs[i].p);
    if (it == enclaves_.end()) {
      jobs[i].ok = false;  // unknown device, as in the serial path
      continue;
    }
    uj.push_back(trusted::UsigEnclave::UiVerifyJob{
        it->second->key(), jobs[i].ui, jobs[i].message, false});
    which.push_back(i);
  }
  if (which.empty()) return;
  trusted::UsigEnclave::verify_ui_batch(keys_, uj.data(), uj.size());
  for (std::size_t k = 0; k < which.size(); ++k)
    jobs[which[k]].ok = uj[k].ok;
}

void SgxUsigDirectory::restart_device(ProcessId p, bool durable_state) {
  auto it = enclaves_.find(p);
  if (it == enclaves_.end()) return;  // device never used: nothing to lose
  if (durable_state) {
    // Round-trip through the sealed blob — the NVRAM boot read — so the
    // serialization path is exercised on every recovery.
    it->second->load_state(it->second->save_state());
  } else {
    it->second->reset_for_power_loss();
  }
}

// ---- TrInc-backed ---------------------------------------------------------------

trusted::Trinket& TrincUsigDirectory::trinket_for(ProcessId p) {
  auto it = trinkets_.find(p);
  if (it == trinkets_.end())
    it = trinkets_
             .emplace(p, std::make_unique<trusted::Trinket>(
                             authority_.make_trinket(p)))
             .first;
  return *it->second;
}

trusted::UniqueIdentifier TrincUsigDirectory::create_ui(ProcessId p,
                                                        const Bytes& message) {
  trusted::Trinket& trinket = trinket_for(p);
  const crypto::Digest digest = crypto::Sha256::hash(message);
  const auto attestation =
      trinket.attest(trinket.last_used() + 1, crypto::digest_bytes(digest));
  UNIDIR_CHECK(attestation.has_value());
  trusted::UniqueIdentifier ui;
  ui.counter = attestation->seq;
  ui.digest = digest;
  ui.sig = attestation->device_sig;
  return ui;
}

bool TrincUsigDirectory::verify(ProcessId p,
                                const trusted::UniqueIdentifier& ui,
                                const Bytes& message) const {
  if (ui.counter == 0) return false;
  if (crypto::Sha256::hash(message) != ui.digest) return false;
  // Reconstruct the attestation this UI must have come from: the directory
  // only ever attests consecutively, so prev = seq − 1.
  trusted::TrincAttestation attestation;
  attestation.owner = p;
  attestation.counter = 0;
  attestation.prev = ui.counter - 1;
  attestation.seq = ui.counter;
  attestation.message = crypto::digest_bytes(ui.digest);
  attestation.device_sig = ui.sig;
  return authority_.check(attestation, p);
}

void TrincUsigDirectory::restart_device(ProcessId p, bool durable_state) {
  auto it = trinkets_.find(p);
  if (it == trinkets_.end()) return;  // device never used: nothing to lose
  if (durable_state) {
    it->second->load_counters(it->second->save_counters());
  } else {
    it->second->reset_for_power_loss();
  }
}

}  // namespace unidir::agreement
