// Weak Byzantine agreement with n >= 2f+1 from non-equivocation +
// transferable signatures — the Preliminaries claim the paper builds on
// ("a system with non-equivocation and transferable signatures can
// tolerate the corruptions of any minority of the processes when solving
// weak Byzantine agreement").
//
// Realization: the n parties run MinBFT (whose USIG is the
// non-equivocation mechanism) over a first-write-wins register; each
// party submits its input; everyone commits the register's final value.
//
//   agreement   — SMR execution consistency: one first write, everywhere.
//   termination — MinBFT liveness under partial synchrony.
//   weak validity — if all parties are correct and share input v, every
//                 proposal is v, so the first write is v.
//
// Under strong validity this would need n > 3f (Malkhi et al.) — which is
// exactly the gap the paper's classification circles.
#pragma once

#include "agreement/minbft.h"
#include "agreement/smr.h"

namespace unidir::agreement {

/// The replicated object: a write-once register. Every op is a write
/// attempt; the first one sticks and every op returns the sticking value.
class FirstWriteStateMachine final : public StateMachine {
 public:
  static Bytes write_op(const Bytes& value);

  Bytes apply(const Bytes& op) override;
  crypto::Digest digest() const override;
  Bytes snapshot() const override;
  void restore(const Bytes& snap) override;

  const std::optional<Bytes>& value() const { return value_; }

 private:
  std::optional<Bytes> value_;
};

/// Spawns and wires a weak-agreement instance: n MinBFT replicas over
/// FirstWriteStateMachine plus one submitting client per party. Query the
/// outcome after running the world to quiescence.
class WeakAgreementCluster {
 public:
  struct Options {
    std::size_t n = 0;  // parties (= replicas); requires n >= 2f+1
    std::size_t f = 0;
    Time view_change_timeout = 300;
  };

  /// Spawns 2n processes (replicas then clients) into `world`. Inputs are
  /// per party; party i's replica is process i, its client process n+i.
  WeakAgreementCluster(sim::World& world, UsigDirectory& usigs,
                       Options options, std::vector<Bytes> inputs);

  /// Party i's committed value, nullopt if its client has not completed.
  /// All completed parties return the same value (agreement).
  std::optional<Bytes> value_of(std::size_t party) const;

  /// True once every non-crashed party committed.
  bool all_committed(const sim::World& world) const;

  MinBftReplica& replica(std::size_t party) { return *replicas_[party]; }

 private:
  Options options_;
  std::vector<MinBftReplica*> replicas_;
  std::vector<SmrClient*> clients_;
  std::vector<std::optional<Bytes>> commits_;
};

}  // namespace unidir::agreement
